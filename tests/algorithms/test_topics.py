"""Topic modelling (Fig 3) and clustering metrics."""

import numpy as np
import pytest

from repro.algorithms.topics import TopicModel, fit_topics, nmi, purity
from repro.generators import generate_tweets


@pytest.fixture(scope="module")
def fitted():
    corpus = generate_tweets(n_docs=600, seed=11)
    dt, vocab = corpus.to_matrix()
    model = fit_topics(dt, vocab, 5, seed=3, max_iter=40)
    return corpus, model


class TestFitTopics:
    def test_recovers_five_topics(self, fitted):
        corpus, model = fitted
        assert purity(model.doc_topics(), corpus.labels) > 0.9

    def test_nmi_high(self, fitted):
        corpus, model = fitted
        assert nmi(model.doc_topics(), corpus.labels) > 0.8

    def test_topic_terms_come_from_right_vocab(self, fitted):
        """Each recovered topic's top terms should be dominated by one
        generating vocabulary (the Fig 3 reading)."""
        from repro.generators.tweets import TOPIC_VOCABS

        corpus, model = fitted
        for t in range(5):
            terms = [w for w, _ in model.topic_terms(t, top=6)]
            best = max(TOPIC_VOCABS,
                       key=lambda name: sum(w in TOPIC_VOCABS[name]
                                            for w in terms))
            frac = sum(w in TOPIC_VOCABS[best] for w in terms) / len(terms)
            assert frac >= 0.5, (t, terms)

    def test_report_shape(self, fitted):
        _, model = fitted
        report = model.report(top=4)
        assert report.count("\n") == 4  # 5 lines
        assert "topic 1" in report

    def test_topic_index_bounds(self, fitted):
        _, model = fitted
        with pytest.raises(IndexError):
            model.topic_terms(9)

    def test_vocab_size_checked(self, fitted):
        corpus, _ = fitted
        dt, vocab = corpus.to_matrix()
        with pytest.raises(ValueError):
            fit_topics(dt, vocab[:-1], 3)


class TestMetrics:
    def test_purity_perfect(self):
        t = np.array([0, 0, 1, 1])
        assert purity(t, t) == 1.0
        assert purity(np.array([1, 1, 0, 0]), t) == 1.0  # label-invariant

    def test_purity_random_half(self):
        pred = np.array([0, 1, 0, 1])
        truth = np.array([0, 0, 1, 1])
        assert purity(pred, truth) == 0.5

    def test_purity_empty(self):
        assert purity(np.array([]), np.array([])) == 0.0

    def test_purity_shape_mismatch(self):
        with pytest.raises(ValueError):
            purity(np.array([0]), np.array([0, 1]))

    def test_nmi_perfect_and_permuted(self):
        t = np.array([0, 0, 1, 1, 2, 2])
        assert nmi(t, t) == pytest.approx(1.0)
        assert nmi((t + 1) % 3, t) == pytest.approx(1.0)

    def test_nmi_independent_near_zero(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, 4000)
        b = rng.integers(0, 4, 4000)
        assert nmi(a, b) < 0.05

    def test_nmi_degenerate_single_cluster(self):
        pred = np.zeros(4, dtype=int)
        truth = np.array([0, 1, 0, 1])
        assert nmi(pred, truth) == 0.0

    def test_nmi_shape_mismatch(self):
        with pytest.raises(ValueError):
            nmi(np.array([0]), np.array([0, 1]))
