"""k-truss beyond the paper example: networkx oracle, properties,
incremental-vs-recompute agreement."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.truss import (
    edge_support,
    ktruss,
    ktruss_recompute,
    truss_decomposition,
    truss_numbers,
)
from repro.generators import complete_graph, erdos_renyi, planted_clique
from repro.schemas import (
    adjacency_from_incidence,
    edge_list_from_adjacency,
    incidence_unoriented,
)


def incidence_of(a):
    return incidence_unoriented(a.nrows, edge_list_from_adjacency(a))


def nx_of(a):
    g = nx.Graph()
    g.add_nodes_from(range(a.nrows))
    g.add_edges_from(map(tuple, edge_list_from_adjacency(a)))
    return g


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_random_graphs(self, seed, k):
        a = erdos_renyi(25, 0.25, seed=seed)
        e = incidence_of(a)
        ours = ktruss(e, k)
        ref = nx.k_truss(nx_of(a), k)
        ours_edges = {frozenset(map(int, row))
                      for row in ours.indices.reshape(-1, 2)} if ours.nrows \
            else set()
        ref_edges = {frozenset(e) for e in ref.edges()}
        assert ours_edges == ref_edges

    def test_planted_clique_survives(self):
        a, members = planted_clique(40, 8, p=0.05, seed=1)
        e = incidence_of(a)
        e7 = ktruss(e, 7)  # an 8-clique is a maximal ... 8-truss ⊇ 7-truss
        surviving = set(np.unique(e7.indices).tolist())
        assert set(members.tolist()) <= surviving


class TestProperties:
    def test_complete_graph_is_n_truss(self):
        e = incidence_of(complete_graph(6))
        assert ktruss(e, 6).nrows == e.nrows  # K6: every edge in 4 triangles
        assert ktruss(e, 7).nrows == 0

    def test_truss_nesting(self):
        """k-truss ⊆ (k−1)-truss (paper §III-B)."""
        a = erdos_renyi(30, 0.3, seed=7)
        e = incidence_of(a)
        prev = {frozenset(map(int, r)) for r in e.indices.reshape(-1, 2)}
        for k in (3, 4, 5, 6):
            ek = ktruss(e, k)
            cur = {frozenset(map(int, r))
                   for r in ek.indices.reshape(-1, 2)} if ek.nrows else set()
            assert cur <= prev
            prev = cur

    def test_every_graph_is_a_2truss(self):
        """k=2 support threshold is 0 — but the API starts at 3."""
        with pytest.raises(ValueError):
            ktruss(incidence_of(erdos_renyi(10, 0.2, seed=1)), 2)

    def test_triangle_free_graph_has_empty_3truss(self):
        from repro.generators import cycle_graph

        e = incidence_of(cycle_graph(8))
        assert ktruss(e, 3).nrows == 0

    def test_result_is_a_valid_ktruss(self):
        """Fixpoint check: every surviving edge has support ≥ k−2."""
        a = erdos_renyi(30, 0.3, seed=11)
        e3 = ktruss(incidence_of(a), 4)
        if e3.nrows:
            assert (edge_support(e3) >= 2).all()

    @pytest.mark.parametrize("seed", range(4))
    def test_incremental_equals_recompute(self, seed):
        """§IV Discussion: the update trick must not change results."""
        a = erdos_renyi(24, 0.3, seed=seed)
        e = incidence_of(a)
        for k in (3, 4):
            assert ktruss(e, k).equal(ktruss_recompute(e, k))


class TestDecomposition:
    def test_keys_are_contiguous_from_3(self):
        a = erdos_renyi(25, 0.35, seed=3)
        decomp = truss_decomposition(incidence_of(a))
        ks = sorted(decomp)
        assert ks == list(range(3, 3 + len(ks)))

    def test_matches_direct_ktruss(self):
        a = erdos_renyi(25, 0.35, seed=4)
        e = incidence_of(a)
        decomp = truss_decomposition(e)
        for k, ek in decomp.items():
            assert ek.equal(ktruss(e, k))

    def test_truss_numbers_vs_networkx(self):
        a = erdos_renyi(20, 0.35, seed=5)
        e = incidence_of(a)
        numbers = truss_numbers(e)
        g = nx_of(a)
        pairs = e.indices.reshape(-1, 2)
        for k in (3, 4, 5):
            ref = {frozenset(t) for t in nx.k_truss(g, k).edges()}
            ours = {frozenset(map(int, pairs[i]))
                    for i in range(len(pairs)) if numbers[i] >= k}
            assert ours == ref

    def test_empty_graph(self):
        e = incidence_unoriented(5, [])
        assert truss_decomposition(e) == {}


class TestValidation:
    def test_weighted_incidence_rejected(self):
        e = incidence_unoriented(3, [(0, 1)], weights=[2.0])
        with pytest.raises(ValueError, match="unweighted"):
            ktruss(e, 3)

    def test_support_on_paper_graph(self, fig1_inc):
        assert edge_support(fig1_inc).tolist() == [1, 1, 1, 1, 2, 0]
