"""Centrality family vs networkx oracles + analytic cases."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.centrality import (
    betweenness_centrality,
    degree_centrality,
    eigenvector_centrality,
    katz_centrality,
    pagerank,
)
from repro.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    rmat_graph,
    star_graph,
)
from repro.schemas import edge_list_from_adjacency
from repro.sparse import from_edges, zeros


def nx_of(a, directed=False):
    g = nx.DiGraph() if directed else nx.Graph()
    g.add_nodes_from(range(a.nrows))
    rows = a.row_ids()
    g.add_weighted_edges_from(
        (int(u), int(v), float(w)) for u, v, w in zip(rows, a.indices, a.values))
    return g


class TestDegree:
    def test_modes(self):
        a = from_edges(3, [(0, 1), (0, 2), (2, 1)])
        assert degree_centrality(a, "out").tolist() == [2, 0, 1]
        assert degree_centrality(a, "in").tolist() == [0, 2, 1]
        assert degree_centrality(a, "total").tolist() == [2, 2, 2]

    def test_weighted(self):
        a = from_edges(2, [(0, 1)], weights=[5.0])
        assert degree_centrality(a, "out", weighted=True)[0] == 5.0
        assert degree_centrality(a, "out", weighted=False)[0] == 1.0

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            degree_centrality(star_graph(3), "sideways")


class TestEigenvector:
    @pytest.mark.parametrize("graph", [star_graph(8), cycle_graph(7),
                                       complete_graph(5)],
                             ids=["star", "cycle", "complete"])
    def test_matches_networkx(self, graph):
        ours = eigenvector_centrality(graph, tol=1e-14, seed=1)
        ref = nx.eigenvector_centrality_numpy(nx_of(graph))
        ref = np.abs(np.array([ref[i] for i in range(graph.nrows)]))
        ref /= np.linalg.norm(ref)
        assert np.allclose(ours, ref, atol=1e-5)

    def test_random_graph(self):
        a = erdos_renyi(40, 0.2, seed=3)
        ours = eigenvector_centrality(a, tol=1e-14, seed=1)
        ref = nx.eigenvector_centrality_numpy(nx_of(a))
        ref = np.abs(np.array([ref[i] for i in range(40)]))
        ref /= np.linalg.norm(ref)
        assert np.allclose(ours, ref, atol=1e-4)

    def test_star_hub_dominates(self):
        x = eigenvector_centrality(star_graph(9), seed=2)
        assert np.argmax(x) == 0

    def test_empty_graph(self):
        x = eigenvector_centrality(zeros(4, 4))
        assert (x == 0).all()


class TestKatz:
    def test_matches_series_sum(self):
        """x = Σ_{k≥1} α^{k-1} A^k 1 (our accumulation) — check against
        explicit truncated series."""
        a = cycle_graph(6)
        alpha = 0.2
        ours = katz_centrality(a, alpha=alpha, tol=1e-14)
        dense = a.to_dense()
        acc = np.zeros(6)
        d = np.ones(6)
        for k in range(200):
            d = dense @ d
            acc += alpha ** k * d
        assert np.allclose(ours, acc, rtol=1e-8)

    def test_diverges_raises(self):
        a = complete_graph(6)  # lambda_max = 5
        with pytest.raises(RuntimeError):
            katz_centrality(a, alpha=0.5, max_iter=500)

    def test_alpha_positive(self):
        with pytest.raises(ValueError):
            katz_centrality(cycle_graph(4), alpha=0.0)

    def test_symmetric_graph_uniform(self):
        x = katz_centrality(cycle_graph(8), alpha=0.3)
        assert np.allclose(x, x[0])


class TestPageRank:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx_undirected(self, seed):
        a = erdos_renyi(30, 0.2, seed=seed)
        ours = pagerank(a, jump=0.15)
        ref = nx.pagerank(nx_of(a), alpha=0.85, tol=1e-12)
        assert np.allclose(ours, [ref[i] for i in range(30)], atol=1e-8)

    def test_matches_networkx_directed_with_dangling(self):
        a = from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 2)])  # 4 dangles
        ours = pagerank(a, jump=0.15)
        ref = nx.pagerank(nx_of(a, directed=True), alpha=0.85, tol=1e-12,
                          max_iter=5000)
        assert np.allclose(ours, [ref[i] for i in range(5)], atol=1e-8)

    def test_sums_to_one(self):
        a = rmat_graph(6, edge_factor=4, seed=5)
        assert pagerank(a).sum() == pytest.approx(1.0)

    def test_jump_validated(self):
        with pytest.raises(ValueError):
            pagerank(cycle_graph(4), jump=1.0)

    def test_uniform_on_regular_graph(self):
        pr = pagerank(cycle_graph(10))
        assert np.allclose(pr, 0.1)


class TestBetweenness:
    @pytest.mark.parametrize("graph,ident", [
        (path_graph(6), "path"), (star_graph(7), "star"),
        (cycle_graph(8), "cycle")])
    def test_structured_vs_networkx(self, graph, ident):
        ours = betweenness_centrality(graph)
        ref = nx.betweenness_centrality(nx_of(graph), normalized=False)
        assert np.allclose(ours, [ref[i] for i in range(graph.nrows)])

    @pytest.mark.parametrize("seed", range(3))
    def test_random_vs_networkx(self, seed):
        a = erdos_renyi(20, 0.25, seed=seed)
        ours = betweenness_centrality(a)
        ref = nx.betweenness_centrality(nx_of(a), normalized=False)
        assert np.allclose(ours, [ref[i] for i in range(20)], atol=1e-9)

    def test_normalized(self):
        a = star_graph(6)
        ours = betweenness_centrality(a, normalized=True)
        ref = nx.betweenness_centrality(nx_of(a), normalized=True)
        assert np.allclose(ours, [ref[i] for i in range(6)])

    def test_subset_sources_approximation(self):
        a = erdos_renyi(15, 0.3, seed=9)
        full = betweenness_centrality(a)
        approx = betweenness_centrality(a, sources=np.arange(15))
        assert np.allclose(full, approx)
