"""BFS / DFS / connected components vs networkx and classic baselines."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.baselines import bfs_classic, connected_components_classic
from repro.algorithms.traversal import bfs, bfs_tree, connected_components, dfs
from repro.generators import (
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    rmat_graph,
    star_graph,
)
from repro.schemas import edge_list_from_adjacency
from repro.sparse import from_edges, zeros


def nx_of(a):
    g = nx.Graph()
    g.add_nodes_from(range(a.nrows))
    g.add_edges_from(map(tuple, edge_list_from_adjacency(a)))
    return g


class TestBFS:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_vs_networkx(self, seed):
        a = erdos_renyi(40, 0.08, seed=seed)
        d = bfs(a, 0)
        ref = nx.single_source_shortest_path_length(nx_of(a), 0)
        for v in range(40):
            assert d[v] == ref.get(v, -1)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_classic(self, seed):
        a = rmat_graph(7, edge_factor=4, seed=seed)
        assert np.array_equal(bfs(a, 3), bfs_classic(a, 3))

    def test_unreachable_marked(self):
        a = from_edges(4, [(0, 1)], undirected=True)
        d = bfs(a, 0)
        assert d.tolist() == [0, 1, -1, -1]

    def test_directed(self):
        a = from_edges(3, [(0, 1), (1, 2)])
        assert bfs(a, 0, directed=True).tolist() == [0, 1, 2]
        assert bfs(a, 2, directed=True).tolist() == [-1, -1, 0]

    def test_source_bounds(self):
        with pytest.raises(IndexError):
            bfs(cycle_graph(4), 9)

    def test_negative_source_wraps(self):
        d = bfs(path_graph(4), -1)
        assert d.tolist() == [3, 2, 1, 0]

    def test_single_vertex(self):
        assert bfs(zeros(1, 1), 0).tolist() == [0]


class TestBFSTree:
    @pytest.mark.parametrize("seed", range(4))
    def test_parents_consistent_with_distances(self, seed):
        a = erdos_renyi(30, 0.1, seed=seed)
        dist, parent = bfs_tree(a, 0)
        assert np.array_equal(dist, bfs(a, 0))
        for v in range(30):
            if dist[v] > 0:
                p = parent[v]
                assert dist[p] == dist[v] - 1
                assert a.get(p, v) != 0.0
            elif dist[v] == 0:
                assert parent[v] == v
            else:
                assert parent[v] == -1

    def test_min_parent_deterministic(self):
        a = star_graph(4)  # vertices 1..3 all reached from 0
        _, parent = bfs_tree(a, 1)  # 1 → 0 → {2, 3}
        assert parent.tolist() == [1, 1, 0, 0]


class TestDFS:
    def test_preorder_on_path(self):
        order = dfs(path_graph(5), 0)
        assert order.tolist() == [0, 1, 2, 3, 4]

    def test_visits_reachable_only(self):
        a = from_edges(5, [(0, 1), (2, 3)], undirected=True)
        assert set(dfs(a, 0).tolist()) == {0, 1}

    def test_smallest_neighbour_first(self):
        a = star_graph(4)
        assert dfs(a, 0).tolist() == [0, 1, 2, 3]

    def test_directed(self):
        a = from_edges(3, [(0, 1), (2, 0)])
        assert dfs(a, 0, directed=True).tolist() == [0, 1]

    def test_matches_networkx_node_set(self):
        a = erdos_renyi(25, 0.1, seed=2)
        ours = set(dfs(a, 0).tolist())
        ref = set(nx.dfs_preorder_nodes(nx_of(a), 0))
        assert ours == ref


class TestConnectedComponents:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_vs_networkx(self, seed):
        a = erdos_renyi(40, 0.05, seed=seed)
        labels = connected_components(a)
        comps = list(nx.connected_components(nx_of(a)))
        # same partition: labels agree exactly with min-vertex of each comp
        for comp in comps:
            ids = {labels[v] for v in comp}
            assert ids == {min(comp)}

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_union_find_baseline(self, seed):
        a = rmat_graph(6, edge_factor=2, seed=seed)
        assert np.array_equal(connected_components(a),
                              connected_components_classic(a))

    def test_fully_disconnected(self):
        labels = connected_components(zeros(5, 5))
        assert labels.tolist() == [0, 1, 2, 3, 4]

    def test_fully_connected(self):
        assert (connected_components(grid_graph(3, 3)) == 0).all()
