"""Jaccard: networkx oracle, dense-naive agreement, validation."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.jaccard import jaccard, jaccard_dense, jaccard_pair
from repro.algorithms.baselines import jaccard_classic
from repro.generators import complete_graph, erdos_renyi, star_graph
from repro.schemas import edge_list_from_adjacency
from repro.sparse import from_dense, from_edges


def nx_of(a):
    g = nx.Graph()
    g.add_nodes_from(range(a.nrows))
    g.add_edges_from(map(tuple, edge_list_from_adjacency(a)))
    return g


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        a = erdos_renyi(22, 0.25, seed=seed)
        j = jaccard(a)
        g = nx_of(a)
        pairs = [(u, v) for u in range(22) for v in range(u + 1, 22)]
        ref = dict(((u, v), c) for u, v, c in
                   nx.jaccard_coefficient(g, pairs))
        for (u, v), c in ref.items():
            assert j.get(u, v) == pytest.approx(c), (u, v)

    @pytest.mark.parametrize("seed", range(3))
    def test_against_classic_baseline(self, seed):
        a = erdos_renyi(18, 0.3, seed=seed + 100)
        j = jaccard(a)
        ref = jaccard_classic(a)
        ours = {(int(i), int(jj)): v for i, jj, v in
                zip(j.row_ids(), j.indices, j.values) if i < jj}
        assert set(ours) == set(ref)
        for k, v in ref.items():
            assert ours[k] == pytest.approx(v)

    @pytest.mark.parametrize("seed", range(3))
    def test_triangular_equals_dense_naive(self, seed):
        """Algorithm 2 == the A²AND./A²OR formulation it optimises."""
        a = erdos_renyi(15, 0.3, seed=seed + 50)
        tri = jaccard(a).to_dense()
        dense = jaccard_dense(a)
        assert np.allclose(tri, dense)


class TestStructuredGraphs:
    def test_complete_graph(self):
        """In K_n any two vertices share n−2 neighbours of n total."""
        n = 6
        j = jaccard(complete_graph(n))
        expect = (n - 2) / n
        vals = j.values
        assert np.allclose(vals, expect)

    def test_star_leaves_identical(self):
        """All leaves of a star have Jaccard 1 with each other."""
        j = jaccard(star_graph(5))
        for u in range(1, 5):
            for v in range(u + 1, 5):
                assert j.get(u, v) == pytest.approx(1.0)

    def test_star_hub_leaf_zero(self):
        """Hub and leaf share no neighbours → no stored entry."""
        j = jaccard(star_graph(5))
        assert j.get(0, 1) == 0.0

    def test_values_in_unit_interval(self):
        a = erdos_renyi(30, 0.4, seed=9)
        j = jaccard(a)
        assert (j.values > 0).all() and (j.values <= 1).all()


class TestPairAndValidation:
    def test_pair_oracle(self, fig1_adj):
        assert jaccard_pair(fig1_adj, 1, 3) == pytest.approx(2 / 3)
        assert jaccard_pair(fig1_adj, 0, 1) == pytest.approx(1 / 5)

    def test_isolated_pair_zero(self):
        a = from_edges(4, [(0, 1)], undirected=True)
        assert jaccard_pair(a, 2, 3) == 0.0

    def test_weighted_rejected(self):
        a = from_edges(3, [(0, 1)], weights=[2.0], undirected=True)
        with pytest.raises(ValueError, match="unweighted"):
            jaccard(a)

    def test_self_loop_rejected(self):
        a = from_dense(np.array([[1.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError, match="self loops"):
            jaccard(a)

    def test_directed_rejected(self):
        a = from_edges(3, [(0, 1)])
        with pytest.raises(ValueError, match="undirected"):
            jaccard(a)
