"""Algorithm 4 (Newton–Schulz inverse) and Algorithms 3/5 (NMF)."""

import numpy as np
import pytest

from repro.algorithms.inverse import (
    newton_schulz_inverse,
    newton_schulz_inverse_dense,
)
from repro.algorithms.nmf import nmf, nmf_reconstruction_error
from repro.sparse import from_dense, zeros


def spd(rng, n, cond=10.0):
    """Random symmetric positive-definite matrix (Gram-like, what
    Algorithm 5 actually inverts)."""
    q = rng.random((n, n))
    return q @ q.T + cond * np.eye(n)


class TestNewtonSchulzDense:
    @pytest.mark.parametrize("n", [1, 2, 5, 12, 30])
    def test_spd_matches_numpy(self, rng, n):
        a = spd(rng, n)
        x, iters = newton_schulz_inverse_dense(a)
        assert np.allclose(x, np.linalg.inv(a), atol=1e-8)
        assert iters >= 1

    def test_nonsymmetric_diagonally_dominant(self, rng):
        a = rng.random((8, 8)) + 8 * np.eye(8)
        x, _ = newton_schulz_inverse_dense(a)
        assert np.allclose(a @ x, np.eye(8), atol=1e-8)

    def test_general_nonsingular(self, rng):
        """Ben-Israel seeding converges for any nonsingular matrix."""
        for _ in range(5):
            a = rng.random((6, 6)) - 0.5
            if abs(np.linalg.det(a)) < 1e-3:
                continue
            x, _ = newton_schulz_inverse_dense(a, max_iter=2000)
            assert np.allclose(x @ a, np.eye(6), atol=1e-6)

    def test_singular_raises(self):
        a = np.ones((3, 3))
        with pytest.raises(RuntimeError):
            newton_schulz_inverse_dense(a, max_iter=100)

    def test_zero_matrix_raises(self):
        with pytest.raises(ValueError):
            newton_schulz_inverse_dense(np.zeros((2, 2)))

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError):
            newton_schulz_inverse_dense(np.ones((2, 3)))

    def test_identity_one_step(self):
        x, iters = newton_schulz_inverse_dense(np.eye(4))
        assert np.allclose(x, np.eye(4))


class TestNewtonSchulzSparse:
    def test_matches_dense_version(self, rng):
        a = spd(rng, 10)
        xs, _ = newton_schulz_inverse(from_dense(a), eps=1e-12)
        assert np.allclose(xs.to_dense(), np.linalg.inv(a), atol=1e-7)

    def test_kernel_only_trace(self, rng):
        """The sparse variant uses only Matrix kernels — spot-check the
        result satisfies A·X ≈ I."""
        a = from_dense(spd(rng, 6))
        x, _ = newton_schulz_inverse(a)
        prod = a.mxm(x).to_dense()
        assert np.allclose(prod, np.eye(6), atol=1e-8)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            newton_schulz_inverse(zeros(3, 3))

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError):
            newton_schulz_inverse(zeros(2, 3))


class TestNMF:
    def factorable(self, rng, m=30, n=20, k=4, noise=0.01):
        """Low-rank non-negative matrix with known structure."""
        w = rng.random((m, k)) * (rng.random((m, k)) < 0.5)
        h = rng.random((k, n))
        a = w @ h + noise * rng.random((m, n))
        return from_dense(a)

    def test_reconstruction_improves(self, rng):
        a = self.factorable(rng)
        res = nmf(a, 4, seed=1, max_iter=60)
        assert res.errors[-1] < res.errors[0]
        assert res.errors[-1] < 0.25

    def test_factors_nonnegative(self, rng):
        a = self.factorable(rng)
        res = nmf(a, 4, seed=2)
        assert (res.w >= 0).all() and (res.h >= 0).all()

    def test_shapes(self, rng):
        a = self.factorable(rng, m=12, n=9, k=3)
        res = nmf(a, 3, seed=3)
        assert res.w.shape == (12, 3) and res.h.shape == (3, 9)

    def test_newton_schulz_matches_lstsq_quality(self, rng):
        """§IV ablation: the kernel-only inverse path must not degrade
        the factorisation materially."""
        a = self.factorable(rng)
        e_ns = nmf_reconstruction_error(a, nmf(a, 4, seed=4,
                                               solver="newton_schulz"))
        e_ls = nmf_reconstruction_error(a, nmf(a, 4, seed=4, solver="lstsq"))
        assert abs(e_ns - e_ls) < 0.05

    def test_rank_one_exact(self, rng):
        w = rng.random((10, 1)) + 0.1
        h = rng.random((1, 8)) + 0.1
        a = from_dense(w @ h)
        res = nmf(a, 1, seed=5, eps=1e-8, max_iter=200)
        assert nmf_reconstruction_error(a, res) < 1e-3

    def test_errors_monotone_ish(self, rng):
        """ALS is not strictly monotone with clamping, but the error
        must trend down (final < 1.1 × min)."""
        a = self.factorable(rng)
        res = nmf(a, 4, seed=6, max_iter=50)
        assert res.errors[-1] <= 1.1 * res.errors.min()

    def test_validation(self, rng):
        a = self.factorable(rng, m=5, n=4)
        with pytest.raises(ValueError):
            nmf(a, 0)
        with pytest.raises(ValueError):
            nmf(a, 99)
        with pytest.raises(ValueError):
            nmf(a, 2, solver="qr")
        with pytest.raises(ValueError):
            nmf(zeros(0, 4), 1)

    def test_deterministic_given_seed(self, rng):
        a = self.factorable(rng)
        r1 = nmf(a, 3, seed=7)
        r2 = nmf(a, 3, seed=7)
        assert np.array_equal(r1.w, r2.w) and np.array_equal(r1.h, r2.h)
