"""Similarity and prediction classes (Table I rows 4 and 6)."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.prediction import (
    adamic_adar_scores,
    emerging_communities,
    katz_link_scores,
    link_prediction,
)
from repro.algorithms.similarity import (
    common_neighbors,
    cosine_similarity,
    is_isomorphic,
    neighbor_matching,
)
from repro.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.schemas import edge_list_from_adjacency
from repro.sparse import from_edges


def nx_of(a):
    g = nx.Graph()
    g.add_nodes_from(range(a.nrows))
    g.add_edges_from(map(tuple, edge_list_from_adjacency(a)))
    return g


class TestCommonNeighborsCosine:
    def test_common_neighbors_vs_networkx(self):
        a = erdos_renyi(20, 0.25, seed=1)
        cn = common_neighbors(a)
        g = nx_of(a)
        for u in range(20):
            for v in range(u + 1, 20):
                ref = len(list(nx.common_neighbors(g, u, v)))
                assert cn.get(u, v) == ref

    def test_cosine_range_and_symmetry(self):
        a = erdos_renyi(20, 0.3, seed=2)
        s = cosine_similarity(a)
        assert (s.values > 0).all() and (s.values <= 1 + 1e-12).all()
        assert s.equal(s.T)

    def test_cosine_identical_neighbourhoods(self):
        s = cosine_similarity(star_graph(5))
        assert s.get(1, 2) == pytest.approx(1.0)


class TestIsomorphism:
    def test_iso_pairs(self):
        ok, mapping = is_isomorphic(cycle_graph(6), cycle_graph(6))
        assert ok and len(mapping) == 6

    def test_mapping_is_valid(self):
        a = erdos_renyi(10, 0.4, seed=3)
        # relabel vertices with a permutation
        perm = np.random.default_rng(4).permutation(10)
        edges = edge_list_from_adjacency(a)
        b = from_edges(10, [(perm[u], perm[v]) for u, v in edges],
                       undirected=True)
        ok, mapping = is_isomorphic(a, b)
        assert ok
        ad, bd = a.to_dense(), b.to_dense()
        for u in range(10):
            for v in range(10):
                assert ad[u, v] == bd[mapping[u], mapping[v]]

    def test_non_iso_same_degree_sequence(self):
        # C6 vs two triangles: both 2-regular on 6 vertices
        two_triangles = from_edges(
            6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
            undirected=True)
        ok, _ = is_isomorphic(cycle_graph(6), two_triangles)
        assert not ok

    def test_different_sizes(self):
        ok, _ = is_isomorphic(cycle_graph(5), cycle_graph(6))
        assert not ok

    def test_path_vs_star(self):
        ok, _ = is_isomorphic(path_graph(4), star_graph(4))
        assert not ok

    def test_size_cap(self):
        with pytest.raises(ValueError):
            is_isomorphic(cycle_graph(100), cycle_graph(100), max_nodes=50)


class TestNeighborMatching:
    def test_self_similarity_symmetric_output(self):
        a = cycle_graph(5)
        s = neighbor_matching(a, a)
        assert s.shape == (5, 5)
        # regular graph: all vertices equally similar
        assert np.allclose(s, s[0, 0])

    def test_hub_matches_hub(self):
        s = neighbor_matching(star_graph(5), star_graph(6), iterations=20)
        # hub of A (0) should be most similar to hub of B (0)
        assert np.argmax(s[0]) == 0


class TestLinkPrediction:
    def test_common_neighbors_on_cycle(self):
        preds = link_prediction(cycle_graph(6), method="common_neighbors",
                                top=10)
        # 2-hop pairs have exactly one common neighbour
        assert all(v == 1.0 for _, _, v in preds)
        assert (0, 2, 1.0) in preds

    def test_no_edges_predicted(self):
        a = erdos_renyi(15, 0.3, seed=5)
        dense = a.to_dense()
        for method in ("common_neighbors", "jaccard", "adamic_adar",
                       "katz", "preferential_attachment"):
            for i, j, _ in link_prediction(a, method=method, top=20):
                assert dense[i, j] == 0 and i < j

    def test_adamic_adar_vs_networkx(self):
        a = erdos_renyi(18, 0.25, seed=6)
        aa = adamic_adar_scores(a)
        g = nx_of(a)
        pairs = [(u, v) for u in range(18) for v in range(u + 1, 18)]
        for u, v, ref in nx.adamic_adar_index(g, pairs):
            assert aa.get(u, v) == pytest.approx(ref), (u, v)

    def test_katz_scores_positive_and_symmetric(self):
        k = katz_link_scores(cycle_graph(7), beta=0.1, hops=3)
        assert (k.values > 0).all()
        assert k.equal(k.T)

    def test_katz_validation(self):
        with pytest.raises(ValueError):
            katz_link_scores(cycle_graph(4), beta=1.5)
        with pytest.raises(ValueError):
            katz_link_scores(cycle_graph(4), hops=0)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            link_prediction(cycle_graph(4), method="astrology")

    def test_jaccard_complete_graph_no_candidates(self):
        assert link_prediction(complete_graph(5), method="jaccard") == []


class TestEmergingCommunities:
    def test_detects_forming_clique(self):
        before = cycle_graph(9)
        # add a clique on {0,1,2,3} in the "after" snapshot
        extra = [(0, 2), (0, 3), (1, 3)]
        edges = edge_list_from_adjacency(before).tolist() + extra
        after = from_edges(9, edges, undirected=True)
        top = emerging_communities(before, after, top=4)
        assert {v for v, _ in top} <= {0, 1, 2, 3}
        assert len(top) == 4

    def test_no_growth_no_output(self):
        a = cycle_graph(6)
        assert emerging_communities(a, a) == []

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            emerging_communities(cycle_graph(5), cycle_graph(6))
