"""Truncated SVD / PCA via kernel products vs numpy dense references."""

import numpy as np
import pytest

from repro.algorithms.factor import pca, truncated_svd
from repro.sparse import from_dense, zeros


def low_rank(rng, m, n, r, noise=1e-3):
    u = rng.standard_normal((m, r))
    v = rng.standard_normal((r, n))
    s = np.geomspace(10.0, 1.0, r)
    dense = (u * s) @ v + noise * rng.standard_normal((m, n))
    # sparsify a bit so the kernel path matters
    dense[np.abs(dense) < 0.05] = 0.0
    return dense


class TestTruncatedSVD:
    def test_singular_values_match_numpy(self, rng):
        dense = low_rank(rng, 40, 30, 5)
        a = from_dense(dense)
        res = truncated_svd(a, 5, seed=1)
        ref = np.linalg.svd(dense, compute_uv=False)[:5]
        assert np.allclose(res.s, ref, rtol=1e-4)

    def test_reconstruction_captures_low_rank(self, rng):
        dense = low_rank(rng, 50, 35, 4, noise=1e-6)
        a = from_dense(dense)
        res = truncated_svd(a, 4, seed=2)
        approx = (res.u * res.s) @ res.vt
        rel = np.linalg.norm(approx - dense) / np.linalg.norm(dense)
        assert rel < 1e-3

    def test_factors_orthonormal(self, rng):
        dense = low_rank(rng, 30, 30, 6)
        res = truncated_svd(from_dense(dense), 6, seed=3)
        assert np.allclose(res.u.T @ res.u, np.eye(6), atol=1e-8)
        assert np.allclose(res.vt @ res.vt.T, np.eye(6), atol=1e-8)

    def test_rectangular_both_ways(self, rng):
        for shape in [(20, 50), (50, 20)]:
            dense = low_rank(rng, *shape, 3)
            res = truncated_svd(from_dense(dense), 3, seed=4)
            ref = np.linalg.svd(dense, compute_uv=False)[:3]
            assert np.allclose(res.s, ref, rtol=1e-3)

    def test_validation(self, rng):
        a = from_dense(low_rank(rng, 10, 8, 2))
        with pytest.raises(ValueError):
            truncated_svd(a, 0)
        with pytest.raises(ValueError):
            truncated_svd(a, 9)
        with pytest.raises(ValueError):
            truncated_svd(a, 2, n_iter=-1)

    def test_deterministic(self, rng):
        a = from_dense(low_rank(rng, 20, 20, 3))
        r1 = truncated_svd(a, 3, seed=7)
        r2 = truncated_svd(a, 3, seed=7)
        assert np.array_equal(r1.s, r2.s)


class TestPCA:
    def test_matches_numpy_eig_of_covariance(self, rng):
        dense = low_rank(rng, 60, 12, 4)
        a = from_dense(dense)
        res = pca(a, 3, seed=1)
        centred = dense - dense.mean(axis=0)
        cov = centred.T @ centred / (len(dense) - 1)
        vals, vecs = np.linalg.eigh(cov)
        ref_var = vals[::-1][:3]
        assert np.allclose(res.explained_variance, ref_var, rtol=1e-4)
        # directions match up to sign
        for i in range(3):
            dot = abs(res.components[i] @ vecs[:, ::-1][:, i])
            assert dot == pytest.approx(1.0, abs=1e-4)

    def test_scores_are_centred_projections(self, rng):
        dense = low_rank(rng, 30, 10, 3)
        a = from_dense(dense)
        res = pca(a, 2, seed=2)
        centred = dense - dense.mean(axis=0)
        assert np.allclose(res.scores, centred @ res.components.T, atol=1e-8)

    def test_mean_is_column_mean(self, rng):
        dense = low_rank(rng, 25, 8, 2)
        res = pca(from_dense(dense), 2, seed=3)
        assert np.allclose(res.mean, dense.mean(axis=0))

    def test_variance_sorted_descending(self, rng):
        dense = low_rank(rng, 40, 15, 6)
        res = pca(from_dense(dense), 5, seed=4)
        assert (np.diff(res.explained_variance) <= 1e-12).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            pca(zeros(1, 5), 1)
        with pytest.raises(ValueError):
            pca(zeros(5, 5), 6)
