"""The paper's §III-B and Fig 2 worked examples, matrix by matrix.

These tests pin the implementation to the numbers printed in the paper:
the Fig 1 incidence matrix E, the A = EᵀE − diag(d) decomposition, the
support computation R = EA and s = (R==2)·1, the k=3 truss result, and
every Jaccard coefficient in Fig 2.
"""

import numpy as np
import pytest

from repro.algorithms.jaccard import jaccard
from repro.algorithms.truss import INDICATOR_EQ2, edge_support, ktruss
from repro.semiring.builtin import PLUS_MONOID
from repro.sparse import mxm
from repro.sparse.reduce import reduce_cols, reduce_rows
from repro.sparse.select import offdiag

E_PAPER = np.array([
    [1, 1, 0, 0, 0],
    [0, 1, 1, 0, 0],
    [1, 0, 0, 1, 0],
    [0, 0, 1, 1, 0],
    [1, 0, 1, 0, 0],
    [0, 1, 0, 0, 1],
], dtype=float)

ETE_PAPER = np.array([
    [3, 1, 1, 1, 0],
    [1, 3, 1, 0, 1],
    [1, 1, 3, 1, 0],
    [1, 0, 1, 2, 0],
    [0, 1, 0, 0, 1],
], dtype=float)

R_PAPER = np.array([
    [1, 1, 2, 1, 1],
    [2, 1, 1, 1, 1],
    [1, 1, 2, 1, 0],
    [2, 1, 1, 1, 0],
    [1, 2, 1, 2, 0],
    [1, 1, 1, 0, 1],
], dtype=float)

R_AFTER_PAPER = np.array([
    [1, 1, 2, 1, 0],
    [2, 1, 1, 1, 0],
    [1, 1, 2, 1, 0],
    [2, 1, 1, 1, 0],
    [1, 2, 1, 2, 0],
], dtype=float)


class TestSectionIIIBWalkthrough:
    def test_incidence_matrix(self, fig1_inc):
        assert np.array_equal(fig1_inc.to_dense(), E_PAPER)

    def test_ete_matches_printed_sum(self, fig1_inc):
        """The paper prints EᵀE as A + diag(3,3,3,2,1)."""
        ete = mxm(fig1_inc.T, fig1_inc)
        assert np.array_equal(ete.to_dense(), ETE_PAPER)

    def test_degree_diagonal(self, fig1_inc):
        d = reduce_cols(fig1_inc, PLUS_MONOID)
        assert d.tolist() == [3, 3, 3, 2, 1]
        ete = mxm(fig1_inc.T, fig1_inc)
        assert np.array_equal(ete.diag(), d)

    def test_adjacency_from_identity(self, fig1_inc, fig1_adj):
        ete = mxm(fig1_inc.T, fig1_inc)
        assert offdiag(ete).prune().equal(fig1_adj)

    def test_r_equals_ea(self, fig1_inc, fig1_adj):
        r = mxm(fig1_inc, fig1_adj)
        assert np.array_equal(r.to_dense(), R_PAPER)

    def test_support_vector(self, fig1_inc):
        """R has one 2 in rows e1..e4, two in e5, none in e6 (the
        paper's printed s omits one entry — 6 edges give 6 supports)."""
        s = edge_support(fig1_inc)
        assert s.tolist() == [1, 1, 1, 1, 2, 0]

    def test_eq2_indicator_pattern(self, fig1_inc, fig1_adj):
        r = mxm(fig1_inc, fig1_adj)
        ind = r.apply(INDICATOR_EQ2)
        expected = (R_PAPER == 2).astype(float)
        assert np.array_equal(ind.prune().to_dense(), expected)

    def test_x_is_edge_six(self, fig1_inc):
        s = edge_support(fig1_inc)
        assert np.flatnonzero(s < 1).tolist() == [5]  # x = {6}, 1-indexed

    def test_three_truss_is_first_five_edges(self, fig1_inc):
        e3 = ktruss(fig1_inc, 3)
        assert np.array_equal(e3.to_dense(), E_PAPER[:5])

    def test_r_update_after_removal(self, fig1_inc, fig1_adj):
        """After deleting e6, R(xᶜ,:) − E[EₓᵀEₓ − diag(dₓ)] equals the
        paper's printed 5×5 update, and the 2-pattern is unchanged."""
        e_kept = fig1_inc.extract(rows=[0, 1, 2, 3, 4])
        ex = fig1_inc.extract(rows=[5])
        r = mxm(fig1_inc, fig1_adj).extract(rows=[0, 1, 2, 3, 4])
        update = mxm(e_kept, offdiag(mxm(ex.T, ex)).prune())
        r_new = (r - update).prune()
        assert np.array_equal(r_new.to_dense(), R_AFTER_PAPER)

    def test_four_truss_is_empty(self, fig1_inc):
        assert ktruss(fig1_inc, 4).nrows == 0


class TestFig2Jaccard:
    #: Fig 2's final matrix (1-indexed in the paper): J12=1/5, J13=1/2,
    #: J14=1/4, J15=1/3, J23=1/5, J24=2/3, J34=1/4, J35=1/3.
    EXPECTED = {
        (0, 1): 1 / 5, (0, 2): 1 / 2, (0, 3): 1 / 4, (0, 4): 1 / 3,
        (1, 2): 1 / 5, (1, 3): 2 / 3, (2, 3): 1 / 4, (2, 4): 1 / 3,
    }

    def test_all_coefficients(self, fig1_adj):
        j = jaccard(fig1_adj)
        for (a, b), v in self.EXPECTED.items():
            assert j.get(a, b) == pytest.approx(v), (a, b)

    def test_symmetry(self, fig1_adj):
        j = jaccard(fig1_adj)
        assert j.equal(j.T)

    def test_no_other_entries(self, fig1_adj):
        j = jaccard(fig1_adj)
        assert j.nnz == 2 * len(self.EXPECTED)
        assert np.allclose(j.diag(), 0.0)

    def test_intermediate_u_squared(self, fig1_adj):
        """Fig 2 prints U² explicitly."""
        from repro.sparse import triu

        u = triu(fig1_adj, 1)
        u2 = mxm(u, u)
        expected = np.zeros((5, 5))
        expected[0, 2] = expected[0, 3] = expected[0, 4] = 1
        expected[1, 3] = 1
        assert np.array_equal(u2.to_dense(), expected)

    def test_intermediate_uut_utu(self, fig1_adj):
        from repro.sparse import triu

        u = triu(fig1_adj, 1)
        uut = mxm(u, u.T).to_dense()
        utu = mxm(u.T, u).to_dense()
        assert np.array_equal(uut, np.array([
            [3, 1, 1, 0, 0],
            [1, 2, 0, 0, 0],
            [1, 0, 1, 0, 0],
            [0, 0, 0, 0, 0],
            [0, 0, 0, 0, 0]], dtype=float))
        assert np.array_equal(utu, np.array([
            [0, 0, 0, 0, 0],
            [0, 1, 1, 1, 0],
            [0, 1, 2, 1, 1],
            [0, 1, 1, 2, 0],
            [0, 0, 1, 0, 1]], dtype=float))

    def test_numerator_matrix(self, fig1_adj):
        """Fig 2's pre-division J (common-neighbour counts, strictly
        upper): rows as printed."""
        from repro.sparse import triu
        from repro.sparse.select import offdiag as od

        u = triu(fig1_adj, 1)
        j = mxm(u, u).ewise_add(triu(mxm(u, u.T))).ewise_add(
            triu(mxm(u.T, u)))
        j = od(j).prune()
        expected = np.array([
            [0, 1, 2, 1, 1],
            [0, 0, 1, 2, 0],
            [0, 0, 0, 1, 1],
            [0, 0, 0, 0, 0],
            [0, 0, 0, 0, 0]], dtype=float)
        assert np.array_equal(j.to_dense(), expected)
