"""Shortest-path family: tropical kernels vs networkx/scipy oracles."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse.csgraph as csgraph

from repro.algorithms.baselines import dijkstra
from repro.algorithms.shortestpath import (
    apsp_min_plus,
    astar,
    bellman_ford,
    floyd_warshall,
    johnson,
)
from repro.generators import grid_graph
from repro.sparse import from_coo, from_dense, zeros


def random_digraph(rng, n, density=0.2, low=0.5, high=6.0, negative=False):
    dense = np.where(rng.random((n, n)) < density,
                     rng.uniform(low, high, (n, n)), 0.0)
    np.fill_diagonal(dense, 0.0)
    if negative:
        # sprinkle a few negative edges but keep it cycle-safe via DAG-ish
        # structure: negatives only go from lower to higher index
        neg = (rng.random((n, n)) < 0.05) & (np.triu(np.ones((n, n)), 1) > 0)
        dense = np.where(neg, -rng.uniform(0.1, 1.0, (n, n)), dense)
    return from_dense(dense), dense


def scipy_apsp(dense):
    g = np.where(dense != 0, dense, 0.0)
    return csgraph.shortest_path(g, method="FW", directed=True)


class TestBellmanFord:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_vs_scipy(self, seed):
        rng = np.random.default_rng(seed)
        a, dense = random_digraph(rng, 25)
        ref = csgraph.shortest_path(dense, method="BF", directed=True,
                                    indices=0)
        assert np.allclose(bellman_ford(a, 0), ref, equal_nan=True)

    def test_negative_weights_ok(self):
        rng = np.random.default_rng(3)
        a, dense = random_digraph(rng, 15, negative=True)
        ref = csgraph.shortest_path(dense, method="BF", directed=True,
                                    indices=0)
        assert np.allclose(bellman_ford(a, 0), ref)

    def test_negative_cycle_detected(self):
        a = from_coo(3, 3, [0, 1, 2], [1, 2, 0], [1.0, -3.0, 1.0])
        with pytest.raises(ValueError, match="negative cycle"):
            bellman_ford(a, 0)

    def test_unreachable_inf(self):
        a = from_coo(3, 3, [0], [1], [2.0])
        d = bellman_ford(a, 0)
        assert d[1] == 2.0 and np.isinf(d[2])

    def test_explicit_zero_weight_edge(self):
        """Tropical semiring: a 0-weight edge must be a *stored* 0."""
        a = from_coo(2, 2, [0], [1], [0.0])
        assert bellman_ford(a, 0).tolist() == [0.0, 0.0]


class TestAPSP:
    @pytest.mark.parametrize("seed", range(4))
    def test_min_plus_squaring_vs_scipy(self, seed):
        rng = np.random.default_rng(seed + 10)
        a, dense = random_digraph(rng, 18)
        assert np.allclose(apsp_min_plus(a), scipy_apsp(dense))

    @pytest.mark.parametrize("seed", range(4))
    def test_floyd_warshall_vs_scipy(self, seed):
        rng = np.random.default_rng(seed + 20)
        a, dense = random_digraph(rng, 18)
        assert np.allclose(floyd_warshall(a), scipy_apsp(dense))

    def test_all_three_agree(self):
        rng = np.random.default_rng(42)
        a, dense = random_digraph(rng, 15)
        fw = floyd_warshall(a)
        assert np.allclose(apsp_min_plus(a), fw)
        assert np.allclose(johnson(a), fw)

    def test_johnson_negative_weights(self):
        rng = np.random.default_rng(5)
        a, dense = random_digraph(rng, 12, negative=True)
        assert np.allclose(johnson(a), floyd_warshall(a))

    def test_floyd_warshall_negative_cycle(self):
        a = from_coo(2, 2, [0, 1], [1, 0], [1.0, -3.0])
        with pytest.raises(ValueError, match="negative cycle"):
            floyd_warshall(a)

    def test_empty_graph(self):
        assert apsp_min_plus(zeros(0, 0)).shape == (0, 0)
        d = apsp_min_plus(zeros(3, 3))
        assert np.isinf(d[0, 1]) and d[0, 0] == 0.0


class TestDijkstraBaseline:
    @pytest.mark.parametrize("seed", range(4))
    def test_vs_bellman_ford(self, seed):
        rng = np.random.default_rng(seed + 30)
        a, _ = random_digraph(rng, 20)
        assert np.allclose(dijkstra(a, 0), bellman_ford(a, 0))

    def test_rejects_negative(self):
        a = from_coo(2, 2, [0], [1], [-1.0])
        with pytest.raises(ValueError):
            dijkstra(a, 0)


class TestAStar:
    def test_grid_with_manhattan_heuristic(self):
        rows, cols = 6, 7
        a = grid_graph(rows, cols)
        target = rows * cols - 1
        tr, tc = divmod(target, cols)
        coords = np.array([divmod(v, cols) for v in range(rows * cols)])
        h = (np.abs(coords[:, 0] - tr) + np.abs(coords[:, 1] - tc)).astype(float)
        dist, path = astar(a, 0, target, heuristic=h)
        assert dist == (rows - 1) + (cols - 1)
        assert path[0] == 0 and path[-1] == target
        # path is connected
        for u, v in zip(path, path[1:]):
            assert a.get(u, v) != 0.0

    def test_zero_heuristic_is_dijkstra(self):
        rng = np.random.default_rng(8)
        a, _ = random_digraph(rng, 20)
        ref = dijkstra(a, 0)
        for t in (3, 7, 15):
            d, _ = astar(a, 0, t)
            assert d == pytest.approx(ref[t]) or (np.isinf(d) and np.isinf(ref[t]))

    def test_unreachable(self):
        a = from_coo(3, 3, [0], [1], [1.0])
        d, path = astar(a, 0, 2)
        assert np.isinf(d) and path == []

    def test_rejects_negative(self):
        a = from_coo(2, 2, [0], [1], [-1.0])
        with pytest.raises(ValueError):
            astar(a, 0, 1)

    def test_heuristic_shape_checked(self):
        a = grid_graph(2, 2)
        with pytest.raises(ValueError):
            astar(a, 0, 3, heuristic=np.zeros(2))
