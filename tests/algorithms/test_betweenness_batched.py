"""Batched (multi-source block) betweenness vs the per-source version."""

import numpy as np
import pytest

from repro.algorithms.centrality import (
    betweenness_batched,
    betweenness_centrality,
)
from repro.generators import (
    barabasi_albert,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.sparse import from_edges


class TestBatchedBetweenness:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("batch", [1, 5, 32])
    def test_matches_per_source(self, seed, batch):
        a = erdos_renyi(24, 0.2, seed=seed)
        assert np.allclose(betweenness_batched(a, batch_size=batch),
                           betweenness_centrality(a))

    @pytest.mark.parametrize("graph", [path_graph(7), star_graph(8),
                                       cycle_graph(9)],
                             ids=["path", "star", "cycle"])
    def test_structured(self, graph):
        assert np.allclose(betweenness_batched(graph, batch_size=4),
                           betweenness_centrality(graph))

    def test_directed(self):
        a = from_edges(5, [(0, 1), (1, 2), (2, 3), (0, 3), (3, 4)])
        assert np.allclose(
            betweenness_batched(a, batch_size=2, directed=True),
            betweenness_centrality(a, directed=True))

    def test_normalized(self):
        a = barabasi_albert(20, 2, seed=1)
        assert np.allclose(
            betweenness_batched(a, batch_size=8, normalized=True),
            betweenness_centrality(a, normalized=True))

    def test_disconnected(self):
        a = from_edges(6, [(0, 1), (1, 2), (3, 4)], undirected=True)
        assert np.allclose(betweenness_batched(a, batch_size=3),
                           betweenness_centrality(a))

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            betweenness_batched(cycle_graph(4), batch_size=0)
