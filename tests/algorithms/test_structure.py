"""Triangles, k-core, SCC, Borůvka MSF, multi-source BFS vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.structure import (
    bfs_multi_source,
    boruvka_msf,
    kcore,
    strongly_connected_components,
    triangle_count,
)
from repro.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    fig1_graph,
    path_graph,
    star_graph,
)
from repro.schemas import edge_list_from_adjacency
from repro.sparse import from_dense, from_edges, zeros


def nx_of(a):
    g = nx.Graph()
    g.add_nodes_from(range(a.nrows))
    g.add_edges_from(map(tuple, edge_list_from_adjacency(a)))
    return g


class TestTriangles:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_vs_networkx(self, seed):
        a = erdos_renyi(30, 0.2, seed=seed)
        total, per_vertex = triangle_count(a)
        ref = nx.triangles(nx_of(a))
        assert per_vertex.tolist() == [ref[v] for v in range(30)]
        assert total == sum(ref.values()) // 3

    def test_complete_graph(self):
        total, per_vertex = triangle_count(complete_graph(6))
        assert total == 20  # C(6,3)
        assert (per_vertex == 10).all()  # C(5,2)

    def test_fig1(self):
        total, per_vertex = triangle_count(fig1_graph())
        assert total == 2  # {1,2,3} and {1,3,4}
        assert per_vertex.tolist() == [2, 1, 2, 1, 0]

    def test_triangle_free(self):
        total, per_vertex = triangle_count(cycle_graph(8))
        assert total == 0 and (per_vertex == 0).all()


class TestKCore:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_vs_networkx(self, seed):
        a = erdos_renyi(25, 0.2, seed=seed)
        ref = nx.core_number(nx_of(a))
        assert kcore(a).tolist() == [ref[v] for v in range(25)]

    def test_complete(self):
        assert (kcore(complete_graph(5)) == 4).all()

    def test_star(self):
        c = kcore(star_graph(6))
        assert (c == 1).all()

    def test_isolated_vertices(self):
        assert (kcore(zeros(4, 4)) == 0).all()

    def test_ba_graph(self):
        a = barabasi_albert(60, 3, seed=1)
        ref = nx.core_number(nx_of(a))
        assert kcore(a).tolist() == [ref[v] for v in range(60)]


class TestSCC:
    def test_simple_cycle_plus_tail(self):
        a = from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
        labels = strongly_connected_components(a)
        assert labels[0] == labels[1] == labels[2] == 0
        assert labels[3] == 3 and labels[4] == 4

    @pytest.mark.parametrize("seed", range(4))
    def test_random_vs_networkx(self, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((15, 15)) < 0.12).astype(float)
        np.fill_diagonal(dense, 0.0)
        a = from_dense(dense)
        labels = strongly_connected_components(a)
        g = nx.from_numpy_array(dense, create_using=nx.DiGraph)
        for comp in nx.strongly_connected_components(g):
            assert {labels[v] for v in comp} == {min(comp)}

    def test_dag_all_singletons(self):
        a = from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert strongly_connected_components(a).tolist() == [0, 1, 2, 3]

    def test_empty(self):
        assert strongly_connected_components(zeros(0, 0)).size == 0


class TestBoruvka:
    @pytest.mark.parametrize("seed", range(5))
    def test_weight_matches_networkx(self, seed):
        rng = np.random.default_rng(seed)
        n = 20
        upper = np.triu(np.where(rng.random((n, n)) < 0.3,
                                 rng.uniform(1, 10, (n, n)), 0.0), 1)
        dense = upper + upper.T
        a = from_dense(dense)
        edges, total = boruvka_msf(a)
        g = nx.from_numpy_array(dense)
        ref = nx.minimum_spanning_tree(g).size(weight="weight")
        assert total == pytest.approx(ref)

    def test_forest_on_disconnected(self):
        a = from_edges(5, [(0, 1), (2, 3)], weights=[2.0, 3.0],
                       undirected=True)
        edges, total = boruvka_msf(a)
        assert total == 5.0 and len(edges) == 2

    def test_tree_edge_count(self):
        a = erdos_renyi(25, 0.3, seed=1)
        w = a.with_values(np.arange(1.0, a.nnz + 1.0))
        w = w.ewise_add(w.T, op=np.maximum)  # symmetric positive weights
        edges, _ = boruvka_msf(w)
        n_comp = len(set(
            __import__("repro.algorithms.traversal",
                       fromlist=["connected_components"])
            .connected_components(a).tolist()))
        assert len(edges) == 25 - n_comp

    def test_rejects_directed_and_nonpositive(self):
        with pytest.raises(ValueError):
            boruvka_msf(from_edges(3, [(0, 1)]))
        a = from_edges(3, [(0, 1)], weights=[-1.0], undirected=True)
        with pytest.raises(ValueError):
            boruvka_msf(a)


class TestMultiSourceBFS:
    def test_nearest_seed_distance(self):
        a = path_graph(10)
        d = bfs_multi_source(a, [0, 9])
        assert d.tolist() == [0, 1, 2, 3, 4, 4, 3, 2, 1, 0]

    def test_single_source_matches_bfs(self):
        from repro.algorithms.traversal import bfs

        a = erdos_renyi(25, 0.1, seed=2)
        assert np.array_equal(bfs_multi_source(a, [3]), bfs(a, 3))

    def test_matches_table_bfs(self):
        """Matrix multi-source == Graphulo table BFS."""
        from repro.dbsim import Connector, table_bfs
        from repro.dbsim.server import Instance

        a = fig1_graph()
        conn = Connector(Instance())
        conn.create_table("edges")
        rows, cols, _ = a.to_coo()
        with conn.batch_writer("edges") as w:
            for u, v in zip(rows, cols):
                w.put(f"v{u}", "", f"v{v}", 1)
        d = bfs_multi_source(a, [3, 4])
        td = table_bfs(conn, "edges", ["v3", "v4"], hops=5)
        for v in range(5):
            assert td.get(f"v{v}", -1) == d[v]

    def test_validation(self):
        with pytest.raises(ValueError):
            bfs_multi_source(cycle_graph(4), [])
