"""Personalized PageRank and walk statistics vs networkx/numpy."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.walks import hitting_mass, personalized_pagerank, walk_counts
from repro.generators import cycle_graph, erdos_renyi, fig1_graph, star_graph
from repro.schemas import edge_list_from_adjacency
from repro.sparse import from_edges, zeros


def nx_of(a):
    g = nx.Graph()
    g.add_nodes_from(range(a.nrows))
    g.add_edges_from(map(tuple, edge_list_from_adjacency(a)))
    return g


class TestPersonalizedPageRank:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx(self, seed):
        a = erdos_renyi(20, 0.25, seed=seed)
        seeds = {2: 1.0, 7: 2.0}
        ours = personalized_pagerank(a, personalization=seeds)
        ref = nx.pagerank(nx_of(a), alpha=0.85, tol=1e-12,
                          personalization=seeds)
        assert np.allclose(ours, [ref.get(i, 0) for i in range(20)],
                           atol=1e-8)

    def test_uniform_equals_classic(self):
        from repro.algorithms.centrality import pagerank

        a = fig1_graph()
        assert np.allclose(personalized_pagerank(a), pagerank(a), atol=1e-10)

    def test_seed_list_form(self):
        a = cycle_graph(8)
        by_list = personalized_pagerank(a, personalization=[0, 4])
        by_dict = personalized_pagerank(a, personalization={0: 1.0, 4: 1.0})
        assert np.allclose(by_list, by_dict)

    def test_mass_concentrates_near_seeds(self):
        a = cycle_graph(20)
        pr = personalized_pagerank(a, personalization=[0], jump=0.3)
        assert pr[0] == pr.max()
        assert pr[10] == pr.min()

    def test_sums_to_one(self):
        a = star_graph(9)
        assert personalized_pagerank(a, [3]).sum() == pytest.approx(1.0)

    def test_validation(self):
        a = cycle_graph(4)
        with pytest.raises(ValueError):
            personalized_pagerank(a, jump=1.0)
        with pytest.raises(ValueError):
            personalized_pagerank(a, personalization={0: 0.0})
        with pytest.raises(IndexError):
            personalized_pagerank(a, personalization=[99])


class TestWalkCounts:
    def test_matches_matrix_power(self, rng):
        a = erdos_renyi(12, 0.3, seed=1)
        dense = a.to_dense()
        x = walk_counts(a, 3, start=0)
        ref = np.linalg.matrix_power(dense, 3)[0]
        assert np.allclose(x, ref)

    def test_length_zero_is_indicator(self):
        a = cycle_graph(5)
        x = walk_counts(a, 0, start=2)
        assert x.tolist() == [0, 0, 1, 0, 0]

    def test_all_starts_total(self):
        a = cycle_graph(6)
        x = walk_counts(a, 2)
        assert np.allclose(x, (np.ones(6) @ np.linalg.matrix_power(
            a.to_dense(), 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            walk_counts(cycle_graph(4), -1)


class TestHittingMass:
    def test_starts_at_uniform_share(self):
        a = cycle_graph(10)
        m = hitting_mass(a, [0, 1], steps=0)
        assert m.tolist() == [pytest.approx(0.2)]

    def test_mass_conserved(self):
        a = erdos_renyi(15, 0.3, seed=2)
        m = hitting_mass(a, list(range(15)), steps=5)
        assert np.allclose(m, 1.0)  # all vertices = whole distribution

    def test_regular_graph_stationary(self):
        a = cycle_graph(8)
        m = hitting_mass(a, [0], steps=10)
        assert np.allclose(m, 1 / 8)  # uniform is stationary on cycles

    def test_validation(self):
        with pytest.raises(ValueError):
            hitting_mass(cycle_graph(4), [0], steps=-1)
        with pytest.raises(IndexError):
            hitting_mass(cycle_graph(4), [9], steps=1)
