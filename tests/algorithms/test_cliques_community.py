"""Subgraph detection (cliques, nomination) and community detection."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.cliques import (
    bron_kerbosch,
    max_clique,
    planted_clique_eigen,
    vertex_nomination,
)
from repro.algorithms.community import (
    label_propagation,
    nmf_communities,
    spectral_bipartition,
)
from repro.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    planted_clique,
    planted_partition,
    star_graph,
)
from repro.schemas import edge_list_from_adjacency
from repro.sparse import zeros


def nx_of(a):
    g = nx.Graph()
    g.add_nodes_from(range(a.nrows))
    g.add_edges_from(map(tuple, edge_list_from_adjacency(a)))
    return g


class TestBronKerbosch:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        a = erdos_renyi(18, 0.3, seed=seed)
        ours = {frozenset(c) for c in bron_kerbosch(a)}
        ref = {frozenset(c) for c in nx.find_cliques(nx_of(a))}
        assert ours == ref

    def test_complete_graph_single_clique(self):
        cliques = bron_kerbosch(complete_graph(5))
        assert cliques == [set(range(5))]

    def test_empty_graph_singletons(self):
        cliques = bron_kerbosch(zeros(3, 3))
        assert sorted(map(sorted, cliques)) == [[0], [1], [2]]

    def test_max_clique_planted(self):
        a, members = planted_clique(35, 9, p=0.1, seed=2)
        mc = max_clique(a)
        assert set(members.tolist()) <= mc
        assert len(mc) >= 9

    def test_max_clique_empty(self):
        from repro.sparse import zeros as z

        assert max_clique(z(0, 0)) == set()


class TestPlantedCliqueEigen:
    @pytest.mark.parametrize("seed", range(4))
    def test_recovers_most_of_clique(self, seed):
        n, k = 80, 15
        a, members = planted_clique(n, k, p=0.1, seed=seed)
        cand = planted_clique_eigen(a, k)
        overlap = len(set(cand.tolist()) & set(members.tolist()))
        assert overlap >= int(0.8 * k)

    def test_size_validated(self):
        a, _ = planted_clique(10, 3, seed=1)
        with pytest.raises(ValueError):
            planted_clique_eigen(a, 0)
        with pytest.raises(ValueError):
            planted_clique_eigen(a, 11)


class TestVertexNomination:
    def test_clique_members_nominated_from_cues(self):
        a, members = planted_clique(60, 12, p=0.06, seed=3)
        cues = members[:4].tolist()
        noms = [v for v, _ in vertex_nomination(a, cues, top=8)]
        hidden = set(members.tolist()) - set(cues)
        hits = len(set(noms) & hidden)
        assert hits >= 6

    def test_cues_never_nominated(self):
        a = complete_graph(6)
        noms = [v for v, _ in vertex_nomination(a, [0, 1], top=10)]
        assert 0 not in noms and 1 not in noms

    def test_validation(self):
        a = cycle_graph(5)
        with pytest.raises(ValueError):
            vertex_nomination(a, [])
        with pytest.raises(IndexError):
            vertex_nomination(a, [99])
        with pytest.raises(ValueError):
            vertex_nomination(a, [0], mix=2.0)


class TestSpectralBipartition:
    @pytest.mark.parametrize("seed", range(4))
    def test_recovers_planted_partition(self, seed):
        a, labels = planted_partition([15, 15], 0.5, 0.03, seed=seed)
        pred, _ = spectral_bipartition(a)
        agree = max((pred == labels).mean(), (pred != labels).mean())
        assert agree > 0.9

    def test_two_cliques_exact(self):
        from repro.sparse import from_edges

        edges = ([(u, v) for u in range(4) for v in range(u + 1, 4)] +
                 [(u, v) for u in range(4, 8) for v in range(u + 1, 8)] +
                 [(0, 4)])
        a = from_edges(8, edges, undirected=True)
        pred, fiedler = spectral_bipartition(a)
        assert len(set(pred[:4])) == 1 and len(set(pred[4:])) == 1
        assert pred[0] != pred[4]

    def test_tiny_graph(self):
        pred, f = spectral_bipartition(zeros(1, 1))
        assert pred.tolist() == [0]


class TestNMFCommunities:
    def test_two_blocks(self):
        a, labels = planted_partition([12, 12], 0.8, 0.05, seed=5)
        pred = nmf_communities(a, 2, seed=1)
        agree = max((pred == labels).mean(), (pred != labels).mean())
        assert agree > 0.85


class TestLabelPropagation:
    def test_two_cliques_split(self):
        from repro.sparse import from_edges

        edges = ([(u, v) for u in range(5) for v in range(u + 1, 5)] +
                 [(u, v) for u in range(5, 10) for v in range(u + 1, 10)])
        a = from_edges(10, edges, undirected=True)
        labels = label_propagation(a)
        assert len(set(labels[:5])) == 1
        assert len(set(labels[5:])) == 1
        assert labels[0] != labels[5]

    def test_isolated_vertices_keep_labels(self):
        labels = label_propagation(zeros(4, 4))
        assert labels.tolist() == [0, 1, 2, 3]

    def test_star_converges(self):
        labels = label_propagation(star_graph(7), max_iter=50)
        assert len(labels) == 7
