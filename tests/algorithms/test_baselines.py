"""Classical baselines vs networkx (they serve as oracles elsewhere, so
they get their own oracle checks here)."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.baselines import (
    bfs_classic,
    connected_components_classic,
    dijkstra,
    jaccard_classic,
    ktruss_classic,
    pagerank_classic,
    triangle_support_classic,
)
from repro.generators import erdos_renyi
from repro.schemas import edge_list_from_adjacency
from repro.sparse import from_dense


def nx_of(a):
    g = nx.Graph()
    g.add_nodes_from(range(a.nrows))
    g.add_edges_from(map(tuple, edge_list_from_adjacency(a)))
    return g


class TestBfsClassic:
    def test_vs_networkx(self):
        a = erdos_renyi(30, 0.1, seed=1)
        d = bfs_classic(a, 0)
        ref = nx.single_source_shortest_path_length(nx_of(a), 0)
        assert all(d[v] == ref.get(v, -1) for v in range(30))


class TestDijkstra:
    def test_vs_networkx_weighted(self, rng):
        dense = np.where(rng.random((20, 20)) < 0.2,
                         rng.uniform(0.5, 4.0, (20, 20)), 0.0)
        np.fill_diagonal(dense, 0.0)
        a = from_dense(dense)
        g = nx.from_numpy_array(dense, create_using=nx.DiGraph)
        ref = nx.single_source_dijkstra_path_length(g, 0)
        d = dijkstra(a, 0)
        for v in range(20):
            assert d[v] == pytest.approx(ref.get(v, np.inf))


class TestPagerankClassic:
    def test_vs_kernel_pagerank(self):
        from repro.algorithms.centrality import pagerank

        a = erdos_renyi(15, 0.3, seed=2)
        assert np.allclose(pagerank_classic(a), pagerank(a), atol=1e-9)


class TestTriangleSupport:
    def test_vs_kernel_support(self, fig1_inc):
        from repro.algorithms.truss import edge_support
        from repro.generators.classic import fig1_edges

        classic = triangle_support_classic(fig1_edges(), 5)
        assert np.array_equal(classic, edge_support(fig1_inc).astype(int))


class TestKtrussClassic:
    @pytest.mark.parametrize("k", [3, 4])
    def test_vs_networkx(self, k):
        a = erdos_renyi(20, 0.3, seed=3)
        edges = edge_list_from_adjacency(a)
        surviving = ktruss_classic(edges, 20, k)
        ours = {frozenset(map(int, e)) for e in surviving}
        ref = {frozenset(e) for e in nx.k_truss(nx_of(a), k).edges()}
        assert ours == ref

    def test_k_validated(self):
        with pytest.raises(ValueError):
            ktruss_classic(np.zeros((0, 2), dtype=int), 3, 2)


class TestJaccardClassic:
    def test_vs_networkx(self):
        a = erdos_renyi(15, 0.3, seed=4)
        ours = jaccard_classic(a)
        g = nx_of(a)
        pairs = [(u, v) for u in range(15) for v in range(u + 1, 15)]
        for u, v, ref in nx.jaccard_coefficient(g, pairs):
            assert ours.get((u, v), 0.0) == pytest.approx(ref)


class TestComponentsClassic:
    def test_vs_networkx(self):
        a = erdos_renyi(30, 0.05, seed=5)
        labels = connected_components_classic(a)
        for comp in nx.connected_components(nx_of(a)):
            assert {labels[v] for v in comp} == {min(comp)}
