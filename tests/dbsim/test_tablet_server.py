"""Tablets (flush/compact/split) and the Instance/TabletServer fleet."""

import pytest

from repro.dbsim.iterators import SummingCombiner
from repro.dbsim.key import Cell, Key, Range
from repro.dbsim.server import Instance, TableConfig
from repro.dbsim.sstable import SSTable
from repro.dbsim.tablet import Tablet


def write_rows(tablet, rows, value="1"):
    for r in rows:
        tablet.write(Key(r, "", "q"), value)


class TestTablet:
    def test_scan_sorted(self):
        t = Tablet(Range())
        write_rows(t, ["c", "a", "b"])
        assert [c.key.row for c in t.scan()] == ["a", "b", "c"]

    def test_write_outside_extent_rejected(self):
        t = Tablet(Range("m", None))
        with pytest.raises(ValueError, match="outside"):
            t.write(Key("a"), "1")

    def test_last_write_wins(self):
        t = Tablet(Range())
        t.write(Key("r", "", "q"), "old")
        t.write(Key("r", "", "q"), "new")
        out = t.scan()
        assert len(out) == 1 and out[0].value == "new"

    def test_flush_moves_to_sstable(self):
        t = Tablet(Range())
        write_rows(t, ["a", "b"])
        t.flush()
        assert len(t.memtable) == 0 and len(t.sstables) == 1
        assert [c.key.row for c in t.scan()] == ["a", "b"]

    def test_flush_empty_noop(self):
        t = Tablet(Range())
        t.flush()
        assert t.sstables == [] and t.stats.flushes == 0

    def test_auto_flush_on_size(self):
        t = Tablet(Range(), flush_bytes=100)
        write_rows(t, [f"row{i:04d}" for i in range(20)])
        assert t.stats.flushes >= 1

    def test_reads_merge_memtable_and_runs(self):
        t = Tablet(Range())
        write_rows(t, ["a"])
        t.flush()
        write_rows(t, ["b"])
        assert [c.key.row for c in t.scan()] == ["a", "b"]

    def test_update_across_flush_respects_recency(self):
        t = Tablet(Range())
        t.write(Key("r", "", "q"), "old")
        t.flush()
        t.write(Key("r", "", "q"), "new")
        out = t.scan()
        assert len(out) == 1 and out[0].value == "new"

    def test_compact_merges_runs(self):
        t = Tablet(Range())
        write_rows(t, ["a"])
        t.flush()
        write_rows(t, ["b"])
        t.flush()
        t.compact()
        assert len(t.sstables) == 1
        assert [c.key.row for c in t.scan()] == ["a", "b"]

    def test_compact_makes_combiner_durable(self):
        t = Tablet(Range(), max_versions=2 ** 31)
        t.write(Key("r", "", "q"), "2")
        t.write(Key("r", "", "q"), "3")
        t.compact(table_iterators=(SummingCombiner,))
        assert t.entry_estimate() == 1
        out = t.scan(table_iterators=(SummingCombiner,))
        assert out[0].value == "5"

    def test_split(self):
        t = Tablet(Range())
        write_rows(t, ["a", "b", "m", "z"])
        left, right = t.split("m")
        assert [c.key.row for c in left.scan()] == ["a", "b"]
        assert [c.key.row for c in right.scan()] == ["m", "z"]
        assert left.extent == Range(None, "m")
        assert right.extent == Range("m", None)

    def test_split_row_outside_extent(self):
        t = Tablet(Range("a", "c"))
        with pytest.raises(ValueError):
            t.split("x")

    def test_scan_clipped_to_extent(self):
        t = Tablet(Range("b", "d"))
        write_rows(t, ["b", "c"])
        out = t.scan(Range())  # full-range request clips to extent
        assert [c.key.row for c in out] == ["b", "c"]
        assert t.scan(Range("x", None)) == []


class TestSSTable:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            SSTable([Cell(Key("b"), "1"), Cell(Key("a"), "2")])

    def test_overlap_metadata(self):
        run = SSTable([Cell(Key("c"), "1"), Cell(Key("f"), "2")])
        assert run.overlaps(Range("a", "d"))
        assert run.overlaps(Range("f", None))
        assert not run.overlaps(Range("g", None))
        assert not run.overlaps(Range(None, "c"))

    def test_empty_never_overlaps(self):
        assert not SSTable([]).overlaps(Range())


class TestInstance:
    def test_create_and_list(self):
        inst = Instance()
        inst.create_table("t1")
        inst.create_table("t2")
        assert inst.list_tables() == ["t1", "t2"]

    def test_duplicate_create_rejected(self):
        inst = Instance()
        inst.create_table("t")
        with pytest.raises(ValueError):
            inst.create_table("t")

    def test_missing_table_raises(self):
        inst = Instance()
        with pytest.raises(KeyError):
            inst.tablets("nope")

    def test_delete_table(self):
        inst = Instance()
        inst.create_table("t")
        inst.delete_table("t")
        assert not inst.table_exists("t")
        assert all(not s.tablets for s in inst.servers)

    def test_splits_create_tablets_and_rebalance(self):
        inst = Instance(n_servers=2)
        inst.create_table("t", splits=["g", "p"])
        assert inst.splits("t") == ["g", "p"]
        assert len(inst.tablets("t")) == 3
        hosted = sum(len(s.tablets) for s in inst.servers)
        assert hosted == 3

    def test_locate(self):
        inst = Instance()
        inst.create_table("t", splits=["m"])
        assert inst.locate("t", "a").extent == Range(None, "m")
        assert inst.locate("t", "z").extent == Range("m", None)

    def test_duplicate_split_noop(self):
        inst = Instance()
        inst.create_table("t", splits=["m"])
        inst.add_split("t", "m")
        assert inst.splits("t") == ["m"]

    def test_split_preserves_data(self):
        inst = Instance()
        inst.create_table("t")
        tablet = inst.locate("t", "a")
        for r in ["a", "k", "z"]:
            tablet.write(Key(r, "", "q"), "1")
        inst.add_split("t", "k")
        rows = []
        for tb in inst.tablets("t"):
            rows.extend(c.key.row for c in tb.scan())
        assert sorted(rows) == ["a", "k", "z"]

    def test_server_count_validated(self):
        with pytest.raises(ValueError):
            Instance(n_servers=0)

    def test_total_stats_aggregates(self):
        inst = Instance(n_servers=2)
        inst.create_table("t", splits=["m"])
        inst.locate("t", "a").write(Key("a", "", "q"), "1")
        inst.locate("t", "z").write(Key("z", "", "q"), "1")
        assert inst.total_stats().entries_written == 2

    def test_table_config_used(self):
        inst = Instance()
        inst.create_table("t", TableConfig(max_versions=3))
        assert inst.locate("t", "x").max_versions == 3
