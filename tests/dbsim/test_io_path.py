"""The indexed/batched/cached I/O path: SSTable block indexes + bloom
filters, write_batch / BatchWriter / coalescing BatchScanner, and the
bisect-based tablet locate cache.

The overriding invariant: every fast path must produce scans
bit-identical (keys, values, *timestamps*) to the simple path it
replaces.  Several tests here assert exactly that, alongside the
counters that prove the fast path actually ran.
"""

import random

import pytest

from repro.dbsim.client import Connector
from repro.dbsim.key import Cell, Key, Range
from repro.dbsim.memtable import MemTable
from repro.dbsim.server import Instance
from repro.dbsim.sstable import RowBloomFilter, SSTable
from repro.dbsim.tablet import Tablet
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry


def _cells(spec):
    """[(row, qual, ts, value)] -> sorted [Cell] (family fixed)."""
    out = [Cell(Key(r, "f", q, "", ts), v) for r, q, ts, v in spec]
    return sorted(out, key=lambda c: c.key.sort_tuple())


def _snap(conn, table, rng=Range()):
    """Full fidelity scan snapshot: includes timestamps."""
    return [(c.key.row, c.key.family, c.key.qualifier, c.key.visibility,
             c.key.timestamp, c.value)
            for c in conn.scanner(table).set_range(rng)]


@pytest.fixture
def registry():
    return MetricsRegistry()


def fresh_conn(registry=None, splits=("g", "n", "t"), n_servers=2,
               name="t"):
    conn = Connector(Instance(n_servers=n_servers, metrics=registry))
    conn.create_table(name, splits=list(splits))
    return conn


class TestRowBloomFilter:
    def test_no_false_negatives(self):
        rows = [f"row{i:04d}" for i in range(500)]
        bloom = RowBloomFilter(rows)
        assert all(bloom.may_contain(r) for r in rows)

    def test_mostly_rejects_absent_rows(self):
        bloom = RowBloomFilter(f"row{i:04d}" for i in range(500))
        absent = [f"other{i:04d}" for i in range(500)]
        false_positives = sum(bloom.may_contain(r) for r in absent)
        # 10 bits/key, 3 hashes -> ~1.7% theoretical FP rate
        assert false_positives < 50

    def test_deterministic_across_instances(self):
        a = RowBloomFilter(["x", "y", "z"])
        b = RowBloomFilter(["x", "y", "z"])
        probes = ["x", "q", "veryabsent", "z", ""]
        assert [a.may_contain(p) for p in probes] == \
            [b.may_contain(p) for p in probes]


class TestSSTableIndex:
    def make_run(self, n=500):
        return SSTable(_cells([(f"r{i:05d}", f"q{i % 3}", 1, str(i))
                               for i in range(n)]))

    def test_indexed_seek_matches_linear_scan(self):
        run = self.make_run()
        # every seek target must land exactly where a full scan would
        for start in ["r00000", "r00063", "r00064", "r00065", "r00250",
                      "r0025", "r00499", "zzz", ""]:
            it = run.iterator()
            it.seek(Range(start, None))
            got = it.top().key.row if it.has_top() else None
            want = next((c.key.row for c in run.cells()
                         if c.key.row >= start), None)
            assert got == want, f"seek({start!r})"

    def test_seek_respects_stop_row(self):
        run = self.make_run(200)
        it = run.iterator()
        it.seek(Range("r00100", "r00110"))
        rows = []
        while it.has_top():
            rows.append(it.top().key.row)
            it.advance()
        assert rows == [f"r{i:05d}" for i in range(100, 110)]

    def test_bounds_and_overlaps(self):
        run = self.make_run(100)
        assert run.first_row == "r00000"
        assert run.last_row == "r00099"
        assert run.overlaps(Range("r00050", "r00051"))
        assert not run.overlaps(Range("s", None))
        assert not run.overlaps(Range(None, "r00000"))  # stop is exclusive

    def test_may_contain_row(self):
        run = self.make_run(100)
        assert run.may_contain_row("r00042")
        assert not run.may_contain_row("a")   # below min key
        assert not run.may_contain_row("z")   # above max key

    def test_split_at_is_a_slice(self):
        run = self.make_run(100)
        left, right = run.split_at("r00040")
        assert [c.key.row for c in left.cells()] == \
            [f"r{i:05d}" for i in range(40) for _ in range(1)]
        assert right.cells()[0].key.row == "r00040"  # split row goes right
        assert len(left) + len(right) == len(run)

    def test_unsorted_input_rejected(self):
        cells = _cells([("b", "q", 1, "1"), ("a", "q", 1, "2")])
        SSTable(cells)  # sorted by helper: fine
        with pytest.raises(ValueError):
            SSTable(list(reversed(cells)))


class TestBloomCounters:
    def test_point_lookup_skips_non_matching_runs(self, registry):
        conn = fresh_conn(registry, splits=())
        # three runs with overlapping ROW RANGES (so min/max bounds
        # cannot prune them) but disjoint row sets — only the bloom
        # filter can prove two of them irrelevant to the point lookup
        for batch in (["a1", "z1"], ["a2", "h1", "z2"], ["a3", "z3"]):
            with conn.batch_writer("t") as w:
                for r in batch:
                    w.put(r, "f", "q", "1")
            conn.flush("t")
        out = [c.value for c in
               conn.scanner("t").set_range(Range.exact_row("h1"))]
        assert out == ["1"]
        hits = registry.counter("dbsim.table.t.bloom_hits").value
        misses = registry.counter("dbsim.table.t.bloom_misses").value
        # runs 1 and 3 are proven absent and skipped; run 2 is opened
        assert hits == 2
        assert misses == 1

    def test_full_scans_never_consult_bloom(self, registry):
        conn = fresh_conn(registry, splits=())
        with conn.batch_writer("t") as w:
            w.put("a", "f", "q", "1")
        conn.flush("t")
        list(conn.scanner("t").set_range(Range()))
        assert registry.counter("dbsim.table.t.bloom_hits").value == 0
        assert registry.counter("dbsim.table.t.bloom_misses").value == 0

    def test_index_seeks_counted(self, registry):
        conn = fresh_conn(registry, splits=())
        with conn.batch_writer("t") as w:
            for i in range(10):
                w.put(f"r{i}", "f", "q", "1")
        conn.flush("t")
        before = registry.counter("dbsim.table.t.index_seeks").value
        list(conn.scanner("t").set_range(Range.exact_row("r5")))
        assert registry.counter("dbsim.table.t.index_seeks").value == before + 1


class TestWriteBatch:
    def test_bit_identical_to_cell_at_a_time(self):
        random.seed(11)
        rows = [f"{random.choice('abcdefghijklmnopqrstuvwxyz')}{i % 97}"
                for i in range(2000)]
        conn_a = fresh_conn()
        conn_b = fresh_conn()
        with conn_a.batch_writer("t", buffer_size=500) as w:
            for i, r in enumerate(rows):
                w.put(r, "f", f"q{i % 5}", str(i))
        for i, r in enumerate(rows):  # direct per-cell server writes
            conn_b.instance.locate("t", r).write(Key(r, "f", f"q{i % 5}"),
                                                 str(i))
        assert _snap(conn_a, "t") == _snap(conn_b, "t")

    def test_batch_spanning_flush_bytes_flushes_once(self, registry):
        from repro.dbsim.server import TableConfig

        conn = Connector(Instance(metrics=registry))
        conn.create_table("t", TableConfig(flush_bytes=1000))
        (tablet,) = conn.instance.tablets("t")
        # one batch whose total size crosses flush_bytes several times
        # over must still trigger exactly one flush, at batch end
        cells = [Cell(Key(f"r{i:04d}", "f", "q"), "v" * 50)
                 for i in range(100)]
        tablet.write_batch(cells)
        assert registry.counter("dbsim.table.t.flushes").value == 1
        assert len(tablet.memtable) == 0
        assert len(tablet.sstables) == 1

    def test_batched_mutations_counter(self, registry):
        conn = fresh_conn(registry, splits=())
        with conn.batch_writer("t") as w:
            for i in range(7):
                w.put(f"r{i}", "f", "q", "1")
        assert registry.counter("dbsim.table.t.batched_mutations").value == 7

    def test_extent_violation_rejected(self):
        tablet = Tablet(Range("m", "q"))
        with pytest.raises(ValueError):
            tablet.write_batch([Cell(Key("a", "f", "q"), "1")])
        with pytest.raises(ValueError):
            tablet.write_raw_batch([("z", "f", "q", "", 0, False, "1")])

    def test_explicit_timestamps_preserved(self):
        tablet = Tablet(Range())
        tablet.write_batch([Cell(Key("a", "f", "q", "", 77), "old")])
        (cell,) = tablet.scan(Range.exact_row("a"))
        assert cell.key.timestamp == 77


class TestCrashRecovery:
    def ingest(self, conn, n=200):
        with conn.batch_writer("t", buffer_size=64) as w:
            for i in range(n):
                w.put(f"r{i % 50:03d}", "f", f"q{i % 4}", str(i))

    def test_wal_replay_after_crash_restores_batched_writes(self):
        conn = fresh_conn(splits=("r025",))
        self.ingest(conn)
        before = _snap(conn, "t")
        for server in conn.instance.servers:
            server.crash()
            server.recover(replay_wal=False)  # restart, skip log recovery
        assert _snap(conn, "t") != before  # memtables really were lost
        for server in conn.instance.servers:
            server.recover()  # WALs stayed durable; replay them now
        assert _snap(conn, "t") == before

    def test_recovery_is_idempotent_for_batched_writes(self):
        conn = fresh_conn(splits=("r025",))
        self.ingest(conn)
        before = _snap(conn, "t")
        for server in conn.instance.servers:
            server.crash()
            server.recover()
            server.crash()
            server.recover()  # double replay must not duplicate versions
        assert _snap(conn, "t") == before

    def test_crash_mid_buffer_loses_only_unflushed_client_buffer(self):
        conn = fresh_conn(splits=())
        w = conn.batch_writer("t", buffer_size=10)
        for i in range(25):  # two full flushes + 5 buffered client-side
            w.put(f"r{i:02d}", "f", "q", str(i))
        for server in conn.instance.servers:
            server.crash()
            server.recover()
        # the 20 flushed cells are durable (WAL), the 5 buffered are not
        assert [t[0] for t in _snap(conn, "t")] == \
            [f"r{i:02d}" for i in range(20)]
        w.close()


class TestClippedSeek:
    def test_disjoint_seek_is_explicitly_empty(self):
        tablet = Tablet(Range("m", "q"))
        tablet.write(Key("n", "f", "q"), "1")
        it = tablet.scan_iterator(Range())
        it.seek(Range("a", "b"))  # disjoint from the extent: empty
        assert not it.has_top()
        with pytest.raises(StopIteration):
            it.top()
        it.advance()  # no-op, must not raise
        it.seek(Range("m", "z"))  # reusable after an empty seek
        assert it.has_top()
        assert it.top().key.row == "n"


class TestTabletSplit:
    def test_split_partitions_runs_without_rescan(self):
        tablet = Tablet(Range())
        for i in range(100):
            tablet.write(Key(f"r{i:03d}", "f", "q"), str(i))
        tablet.flush()
        left, right = tablet.split("r050")
        assert left.extent == Range(None, "r050")
        assert right.extent == Range("r050", None)
        assert [c.key.row for c in left.scan()] == \
            [f"r{i:03d}" for i in range(50)]
        assert [c.key.row for c in right.scan()] == \
            [f"r{i:03d}" for i in range(50, 100)]


class TestLocateCache:
    def test_locate_bisects_to_owning_tablet(self):
        conn = fresh_conn(splits=("g", "n", "t"))
        inst = conn.instance
        for row, start in [("a", None), ("g", "g"), ("mzz", "g"),
                           ("n", "n"), ("zzz", "t")]:
            assert inst.locate("t", row).extent.start_row == start

    def test_split_invalidates_the_index(self):
        conn = fresh_conn(splits=("g",))
        inst = conn.instance
        starts, _ = inst.locate_index("t")
        conn.add_split("t", "p")
        starts2, _ = inst.locate_index("t")
        assert starts2 is not starts  # replaced, not mutated: staleness token
        assert starts2 == ["", "g", "p"]
        assert inst.locate("t", "q").extent.start_row == "p"

    def test_index_built_lazily_once(self, registry):
        conn = fresh_conn(registry, splits=("g",))
        inst = conn.instance
        builds = registry.counter("dbsim.locate.index_builds")
        before = builds.value
        for row in ("a", "b", "h", "z"):
            inst.locate("t", row)
        assert builds.value == before + 1  # one rebuild serves all four


class TestBatchScannerCoalescing:
    def setup_graph(self, registry=None):
        """Compacted 4-tablet table: rows v00..v39, one run per tablet."""
        conn = fresh_conn(registry, splits=("v10", "v20", "v30"))
        with conn.batch_writer("t") as w:
            for i in range(40):
                w.put(f"v{i:02d}", "f", f"q{i % 3}", str(i))
        conn.compact("t")
        return conn

    def test_coalesced_output_identical_to_per_range(self):
        conn = self.setup_graph()
        ranges = [Range.exact_row(f"v{i:02d}") for i in range(0, 40, 3)]
        fast = conn.batch_scanner("t", coalesce=True).set_ranges(ranges)
        slow = conn.batch_scanner("t", coalesce=False).set_ranges(ranges)
        snap = lambda bs: [(c.key.row, c.key.qualifier, c.key.timestamp,
                            c.value) for c in bs]
        assert snap(fast) == snap(slow)

    def test_one_stack_seek_per_tablet(self):
        conn = self.setup_graph()
        inst = conn.instance
        # 14 sorted point ranges across all 4 tablets
        ranges = [Range.exact_row(f"v{i:02d}") for i in range(0, 40, 3)]
        before = inst.total_stats().snapshot()
        list(conn.batch_scanner("t", coalesce=True).set_ranges(ranges))
        delta = inst.total_stats().delta(before)
        # compacted: each tablet stack = memtable + 1 run = 2 seeks;
        # 4 tablets -> 8 seeks total, NOT 2 per range (28)
        assert delta.seeks == 2 * 4

    def test_per_range_path_seeks_per_range(self):
        conn = self.setup_graph()
        inst = conn.instance
        ranges = [Range.exact_row(f"v{i:02d}") for i in range(0, 40, 3)]
        before = inst.total_stats().snapshot()
        list(conn.batch_scanner("t", coalesce=False).set_ranges(ranges))
        delta = inst.total_stats().delta(before)
        assert delta.seeks == 2 * len(ranges)

    def test_auto_detection(self):
        conn = self.setup_graph()
        sorted_rngs = [Range.exact_row("v01"), Range.exact_row("v05")]
        unsorted_rngs = [Range.exact_row("v05"), Range.exact_row("v01")]
        assert conn.batch_scanner("t").set_ranges(sorted_rngs) \
            ._use_coalesced()
        assert not conn.batch_scanner("t").set_ranges(unsorted_rngs) \
            ._use_coalesced()

    def test_coalesce_true_requires_sorted_disjoint(self):
        conn = self.setup_graph()
        bs = conn.batch_scanner("t", coalesce=True).set_ranges(
            [Range.exact_row("v05"), Range.exact_row("v01")])
        with pytest.raises(ValueError):
            list(bs)

    def test_bfs_seeks_bounded_per_tablet_per_hop(self):
        from repro.dbsim.graphulo import table_bfs

        conn = fresh_conn(splits=("v2", "v4", "v6"))
        # path graph v0 -> v1 -> ... -> v7 across 4 tablets
        with conn.batch_writer("t") as w:
            for i in range(7):
                w.put(f"v{i}", "", f"v{i + 1}", "1")
        conn.compact("t")
        inst = conn.instance
        before = inst.total_stats().snapshot()
        dist = table_bfs(conn, "t", ["v0"], hops=7)
        delta = inst.total_stats().delta(before)
        assert dist == {f"v{i}": i for i in range(8)}
        # each hop's frontier fetch touches at most every tablet once:
        # <= 2 stack-child seeks per tablet per hop (memtable + 1 run)
        assert delta.seeks <= 7 * 2 * 4

    def test_batch_scan_trace_span(self):
        conn = self.setup_graph()
        sink = trace.InMemorySink()
        trace.enable(sink)
        try:
            ranges = [Range.exact_row("v01"), Range.exact_row("v05")]
            list(conn.batch_scanner("t").set_ranges(ranges))
        finally:
            trace.disable()
            trace.set_sink(trace.NullSink())
        (span,) = sink.spans("dbsim.batch_scan")
        assert span["attrs"]["table"] == "t"
        assert span["attrs"]["ranges"] == 2
        assert span["attrs"]["coalesced"] is True
        assert span["attrs"]["entries"] == 2


class TestMemTableBulk:
    def test_extend_matches_write_accounting(self):
        cells = _cells([(f"r{i}", "q", i + 1, "val") for i in range(20)])
        a, b = MemTable(), MemTable()
        for c in cells:
            a.write(c)
        b.extend(cells)
        assert a.approximate_bytes == b.approximate_bytes
        assert a.snapshot() == b.snapshot()

    def test_extend_detects_out_of_order(self):
        m = MemTable()
        m.extend(_cells([("b", "q", 1, "1")]))
        m.extend(_cells([("a", "q", 1, "2")]))  # out of order vs last
        assert [c.key.row for c in m.snapshot()] == ["a", "b"]


class TestBatchWriterThresholds:
    def test_max_memory_triggers_flush(self):
        conn = fresh_conn(splits=())
        w = conn.batch_writer("t", buffer_size=10_000, max_memory=200)
        for i in range(3):
            w.put(f"r{i}", "f", "q", "x" * 80)  # >100 bytes each
        assert len(w._buffer) < 3  # memory threshold flushed mid-stream
        w.close()
        assert len(_snap(conn, "t")) == 3

    def test_deletes_route_through_batches(self):
        conn = fresh_conn(splits=("m",))
        with conn.batch_writer("t") as w:
            w.put("a", "f", "q", "1")
            w.put("z", "f", "q", "2")
        with conn.batch_writer("t") as w:
            w.delete("z", "f", "q")
        assert [t[0] for t in _snap(conn, "t")] == ["a"]
