"""The Accumulo-style shell command processor."""

import pytest

from repro.dbsim import Connector
from repro.dbsim.server import Instance
from repro.dbsim.shell import Shell, ShellError


@pytest.fixture
def sh():
    return Shell(Connector(Instance()))


class TestTableLifecycle:
    def test_create_select_list_delete(self, sh):
        assert "created" in sh.execute("createtable t1")
        sh.execute("createtable t2")
        assert sh.execute("tables") == "t1\nt2"
        assert "using" in sh.execute("table t1")
        assert sh.current == "t1"
        sh.execute("deletetable t1")
        assert sh.execute("tables") == "t2"
        assert sh.current is None

    def test_select_missing_table(self, sh):
        with pytest.raises(ShellError, match="no such table"):
            sh.execute("table nope")

    def test_usage_errors(self, sh):
        with pytest.raises(ShellError):
            sh.execute("createtable")
        with pytest.raises(ShellError, match="unknown command"):
            sh.execute("frobnicate x")

    def test_empty_line_noop(self, sh):
        assert sh.execute("") == ""


class TestDataPath:
    def test_insert_scan(self, sh):
        sh.execute("createtable t")
        sh.execute("insert r1 f q1 5")
        sh.execute("insert r2 f q1 7")
        out = sh.execute("scan")
        assert out == "r1 f:q1 []\t5\nr2 f:q1 []\t7"

    def test_range_scan(self, sh):
        sh.execute("createtable t")
        for r in ("a", "b", "c"):
            sh.execute(f"insert {r} f q 1")
        out = sh.execute("scan -b b -e c")
        assert out == "b f:q []\t1"

    def test_delete(self, sh):
        sh.execute("createtable t")
        sh.execute("insert r f q 5")
        sh.execute("delete r f q")
        assert sh.execute("scan") == ""

    def test_visibility_and_auths(self, sh):
        sh.execute("createtable t")
        sh.execute("insert r f q secretvalue -l red")
        sh.execute("insert r f q2 open")
        assert sh.execute("scan") == "r f:q2 []\topen"
        out = sh.execute("scan -s red")
        assert "secretvalue" in out and "[red]" in out

    def test_insert_without_table(self, sh):
        with pytest.raises(ShellError, match="no table selected"):
            sh.execute("insert r f q 1")

    def test_flag_missing_value(self, sh):
        sh.execute("createtable t")
        with pytest.raises(ShellError, match="needs a value"):
            sh.execute("insert r f q 1 -l")


class TestMaintenance:
    def test_flush_compact_du(self, sh):
        sh.execute("createtable t")
        sh.execute("insert r f q 1")
        assert "flushed" in sh.execute("flush")
        assert "compacted" in sh.execute("compact")
        assert "~1 stored entries" in sh.execute("du")

    def test_addsplits(self, sh):
        sh.execute("createtable t")
        sh.execute("addsplits m t")
        assert "2 split(s)" in sh.execute("addsplits m t") or True
        assert len(sh.conn.instance.tablets("t")) == 3

    def test_help_lists_commands(self, sh):
        out = sh.execute("help")
        assert "scan" in out and "createtable" in out
