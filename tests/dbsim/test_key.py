"""Key ordering, cells, ranges, and number encoding."""

import pytest

from repro.dbsim.key import Cell, Key, Range, decode_number, encode_number


class TestKeyOrdering:
    def test_row_major(self):
        assert Key("a") < Key("b")
        assert Key("a", "f2") > Key("a", "f1")
        assert Key("a", "f", "q1") < Key("a", "f", "q2")

    def test_timestamps_descend(self):
        """Newest version sorts first — Accumulo's convention."""
        newer = Key("r", "f", "q", "", 10)
        older = Key("r", "f", "q", "", 5)
        assert newer < older

    def test_same_cell(self):
        a = Key("r", "f", "q", "", 1)
        b = Key("r", "f", "q", "", 9)
        c = Key("r", "f", "q2", "", 1)
        assert a.same_cell(b)
        assert not a.same_cell(c)

    def test_cell_id_excludes_timestamp(self):
        assert Key("r", "f", "q", "v", 1).cell_id() == ("r", "f", "q", "v")

    def test_le(self):
        assert Key("a") <= Key("a")


class TestCell:
    def test_triple_view(self):
        c = Cell(Key("row1", "", "col1"), "5")
        assert c.triple() == ("row1", "col1", "5")


class TestRange:
    def test_half_open(self):
        r = Range("b", "d")
        assert not r.contains_row("a")
        assert r.contains_row("b")
        assert r.contains_row("c")
        assert not r.contains_row("d")

    def test_unbounded(self):
        assert Range().contains_row("anything")
        assert Range(None, "m").contains_row("a")
        assert not Range(None, "m").contains_row("z")

    def test_exact_row(self):
        r = Range.exact_row("abc")
        assert r.contains_row("abc")
        assert not r.contains_row("abcd")
        assert not r.contains_row("abb")

    def test_prefix(self):
        r = Range.prefix("v1")
        assert r.contains_row("v1") and r.contains_row("v1zzz")
        assert not r.contains_row("v2")

    def test_clip_overlap(self):
        out = Range("b", "f").clip(Range("d", "z"))
        assert out == Range("d", "f")

    def test_clip_disjoint_none(self):
        assert Range("a", "b").clip(Range("c", "d")) is None

    def test_clip_with_unbounded(self):
        assert Range(None, "m").clip(Range("d", None)) == Range("d", "m")
        assert Range().clip(Range("a", "b")) == Range("a", "b")


class TestNumberEncoding:
    @pytest.mark.parametrize("x,s", [(1.0, "1"), (2.5, "2.5"), (-3.0, "-3"),
                                     (0.0, "0")])
    def test_encode(self, x, s):
        assert encode_number(x) == s

    @pytest.mark.parametrize("x", [1.0, -2.5, 1e-9, 12345.678, 0.0])
    def test_roundtrip(self, x):
        assert decode_number(encode_number(x)) == x

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_number("abc")
