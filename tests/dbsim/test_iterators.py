"""The SortedKVIterator framework: seek/top/advance contracts, merging,
versioning, combining, filtering, applying."""

import pytest

from repro.dbsim.iterators import (
    ApplyIterator,
    ColumnFilterIterator,
    ListIterator,
    MaxCombiner,
    MergeIterator,
    MinCombiner,
    PredicateFilterIterator,
    SummingCombiner,
    VersioningIterator,
    drain,
)
from repro.dbsim.key import Cell, Key, Range
from repro.dbsim.stats import OpStats


def cells(*triples):
    """Build sorted cells from (row, qual, value[, ts]) tuples."""
    out = [Cell(Key(r, "", q, "", t[3] if len(t) > 3 else 0), v)
           for t in triples for r, q, v in [t[:3]]]
    return sorted(out, key=lambda c: c.key.sort_tuple())


class TestListIterator:
    def test_full_scan(self):
        data = cells(("a", "x", "1"), ("b", "y", "2"))
        assert [c.value for c in drain(ListIterator(data))] == ["1", "2"]

    def test_seek_range(self):
        data = cells(("a", "x", "1"), ("b", "y", "2"), ("c", "z", "3"))
        out = drain(ListIterator(data), Range("b", "c"))
        assert [c.key.row for c in out] == ["b"]

    def test_seek_counts_stats(self):
        stats = OpStats()
        it = ListIterator(cells(("a", "x", "1")), stats=stats)
        drain(it)
        assert stats.seeks == 1 and stats.entries_read == 1

    def test_column_filter_at_seek(self):
        data = cells(("a", "x", "1"), ("a", "y", "2"))
        it = ListIterator(data)
        it.seek(Range(), [("", "y")])
        out = []
        while it.has_top():
            out.append(it.top().key.qualifier)
            it.advance()
        assert out == ["y"]

    def test_family_wildcard(self):
        data = [Cell(Key("a", "f1", "x"), "1"), Cell(Key("a", "f2", "y"), "2")]
        it = ListIterator(sorted(data, key=lambda c: c.key.sort_tuple()))
        it.seek(Range(), [("f2", None)])
        assert it.top().value == "2"

    def test_exhausted_top_raises(self):
        it = ListIterator([])
        it.seek(Range())
        assert not it.has_top()
        with pytest.raises(StopIteration):
            it.top()

    def test_reseek_resets(self):
        data = cells(("a", "x", "1"), ("b", "y", "2"))
        it = ListIterator(data)
        drain(it)
        out = drain(it, Range("b", None))
        assert [c.key.row for c in out] == ["b"]


class TestMergeIterator:
    def test_interleaves_sorted(self):
        l1 = ListIterator(cells(("a", "x", "1"), ("c", "x", "3")))
        l2 = ListIterator(cells(("b", "x", "2"), ("d", "x", "4")))
        out = drain(MergeIterator([l1, l2]))
        assert [c.key.row for c in out] == ["a", "b", "c", "d"]

    def test_tie_prefers_earlier_child(self):
        """Memtable (child 0) wins over sstables on identical keys."""
        l1 = ListIterator([Cell(Key("a", "", "x", "", 5), "new")])
        l2 = ListIterator([Cell(Key("a", "", "x", "", 5), "old")])
        out = drain(MergeIterator([l1, l2]))
        assert out[0].value == "new"

    def test_empty_children(self):
        out = drain(MergeIterator([ListIterator([]), ListIterator([])]))
        assert out == []

    def test_respects_timestamp_order(self):
        l1 = ListIterator([Cell(Key("a", "", "x", "", 1), "old")])
        l2 = ListIterator([Cell(Key("a", "", "x", "", 9), "new")])
        out = drain(MergeIterator([l1, l2]))
        assert [c.value for c in out] == ["new", "old"]


class TestVersioningIterator:
    def make(self, max_versions=1):
        data = [
            Cell(Key("a", "", "x", "", 3), "v3"),
            Cell(Key("a", "", "x", "", 2), "v2"),
            Cell(Key("a", "", "x", "", 1), "v1"),
            Cell(Key("b", "", "x", "", 1), "b1"),
        ]
        return VersioningIterator(ListIterator(data), max_versions)

    def test_keeps_newest(self):
        out = drain(self.make(1))
        assert [c.value for c in out] == ["v3", "b1"]

    def test_max_versions_two(self):
        out = drain(self.make(2))
        assert [c.value for c in out] == ["v3", "v2", "b1"]

    def test_invalid_max_versions(self):
        with pytest.raises(ValueError):
            VersioningIterator(ListIterator([]), 0)


class TestCombiners:
    def versions(self, *vals):
        return [Cell(Key("r", "", "q", "", ts), v)
                for ts, v in zip(range(len(vals), 0, -1), vals)]

    def test_summing(self):
        out = drain(SummingCombiner(ListIterator(self.versions("1", "2", "3"))))
        assert len(out) == 1 and out[0].value == "6"

    def test_min_max(self):
        data = self.versions("5", "2", "9")
        assert drain(MinCombiner(ListIterator(data)))[0].value == "2"
        assert drain(MaxCombiner(ListIterator(data)))[0].value == "9"

    def test_distinct_cells_not_combined(self):
        data = sorted([Cell(Key("r", "", "q1"), "1"),
                       Cell(Key("r", "", "q2"), "2")],
                      key=lambda c: c.key.sort_tuple())
        out = drain(SummingCombiner(ListIterator(data)))
        assert [c.value for c in out] == ["1", "2"]


class TestFiltersApply:
    def test_predicate_filter(self):
        data = cells(("a", "x", "5"), ("b", "y", "50"))
        it = PredicateFilterIterator(ListIterator(data),
                                     lambda c: float(c.value) > 10)
        assert [c.value for c in drain(it)] == ["50"]

    def test_column_filter(self):
        data = cells(("a", "x", "1"), ("a", "y", "2"), ("b", "x", "3"))
        it = ColumnFilterIterator(ListIterator(data), ["x"])
        assert [c.value for c in drain(it)] == ["1", "3"]

    def test_apply_transforms_values(self):
        data = cells(("a", "x", "3"))
        it = ApplyIterator(ListIterator(data), lambda v: v * v)
        assert drain(it)[0].value == "9"

    def test_apply_drops_zero(self):
        data = cells(("a", "x", "2"), ("a", "y", "3"))
        it = ApplyIterator(ListIterator(data), lambda v: 1.0 if v == 2 else 0.0)
        out = drain(it)
        assert len(out) == 1 and out[0].key.qualifier == "x"

    def test_apply_keep_zero(self):
        data = cells(("a", "x", "2"))
        it = ApplyIterator(ListIterator(data), lambda v: 0.0, drop_zero=False)
        assert drain(it)[0].value == "0"


class TestStacking:
    def test_versioning_then_combiner(self):
        """Stack order matters: versioning first keeps only the newest,
        so the combiner sees a single version per cell."""
        data = [
            Cell(Key("r", "", "q", "", 2), "10"),
            Cell(Key("r", "", "q", "", 1), "7"),
        ]
        stacked = SummingCombiner(VersioningIterator(ListIterator(data), 1))
        assert drain(stacked)[0].value == "10"

    def test_combiner_only_sums_all_versions(self):
        data = [
            Cell(Key("r", "", "q", "", 2), "10"),
            Cell(Key("r", "", "q", "", 1), "7"),
        ]
        assert drain(SummingCombiner(ListIterator(data)))[0].value == "17"
