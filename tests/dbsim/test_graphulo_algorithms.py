"""Server-side Jaccard and k-truss vs the matrix implementations."""

import numpy as np
import pytest

from repro.algorithms.jaccard import jaccard
from repro.algorithms.truss import ktruss
from repro.dbsim import (
    Connector,
    table_intersect,
    table_jaccard,
    table_ktruss,
    table_to_assoc,
)
from repro.dbsim.key import decode_number
from repro.dbsim.server import Instance
from repro.generators import erdos_renyi, fig1_graph
from repro.schemas import edge_list_from_adjacency, incidence_unoriented


@pytest.fixture
def conn():
    return Connector(Instance(n_servers=2))


def load_adjacency(conn, a, table):
    conn.create_table(table)
    rows, cols, _ = a.to_coo()
    with conn.batch_writer(table) as w:
        for u, v in zip(rows, cols):
            w.put(f"v{u:04d}", "", f"v{v:04d}", 1)


def vid(key: str) -> int:
    return int(key[1:])


class TestTableIntersect:
    def test_keeps_common_keys(self, conn):
        conn.create_table("L")
        conn.create_table("R")
        with conn.batch_writer("L") as w:
            w.put("a", "", "x", 1)
            w.put("b", "", "y", 2)
        with conn.batch_writer("R") as w:
            w.put("b", "", "y", 9)
            w.put("c", "", "z", 3)
        table_intersect(conn, "L", "R", "out")
        cells = list(conn.scanner("out"))
        assert [(c.key.row, c.value) for c in cells] == [("b", "2")]

    def test_keep_right(self, conn):
        conn.create_table("L")
        conn.create_table("R")
        with conn.batch_writer("L") as w:
            w.put("a", "", "x", 1)
        with conn.batch_writer("R") as w:
            w.put("a", "", "x", 7)
        table_intersect(conn, "L", "R", "out", keep="right")
        assert list(conn.scanner("out"))[0].value == "7"

    def test_disjoint_empty(self, conn):
        conn.create_table("L")
        conn.create_table("R")
        with conn.batch_writer("L") as w:
            w.put("a", "", "x", 1)
        with conn.batch_writer("R") as w:
            w.put("b", "", "x", 1)
        table_intersect(conn, "L", "R", "out")
        assert list(conn.scanner("out")) == []

    def test_keep_validated(self, conn):
        conn.create_table("L")
        conn.create_table("R")
        with pytest.raises(ValueError):
            table_intersect(conn, "L", "R", "out", keep="both")


class TestTableJaccard:
    def test_fig1_matches_paper(self, conn):
        a = fig1_graph()
        load_adjacency(conn, a, "A")
        table_jaccard(conn, "A", "J")
        ref = jaccard(a)
        got = {(vid(c.key.row), vid(c.key.qualifier)):
               decode_number(c.value) for c in conn.scanner("J")}
        assert got[(1, 3)] == pytest.approx(2 / 3)
        for (i, j), v in got.items():
            assert ref.get(i, j) == pytest.approx(v)
        # every nonzero coefficient present (both triangle halves)
        assert len(got) == ref.nnz

    @pytest.mark.parametrize("seed", range(2))
    def test_random_matches_matrix(self, conn, seed):
        a = erdos_renyi(16, 0.3, seed=seed)
        load_adjacency(conn, a, "A")
        table_jaccard(conn, "A", "J")
        ref = jaccard(a)
        got = {(vid(c.key.row), vid(c.key.qualifier)):
               decode_number(c.value) for c in conn.scanner("J")}
        assert len(got) == ref.nnz
        for (i, j), v in got.items():
            assert ref.get(i, j) == pytest.approx(v)

    def test_temp_tables_cleaned(self, conn):
        load_adjacency(conn, fig1_graph(), "A")
        table_jaccard(conn, "A", "J")
        assert all(not t.startswith("_jac") for t in conn.instance.list_tables())


class TestTableKtruss:
    def test_fig1_three_truss(self, conn):
        a = fig1_graph()
        load_adjacency(conn, a, "A")
        table_ktruss(conn, "A", "T3", 3)
        surviving = {(vid(c.key.row), vid(c.key.qualifier))
                     for c in conn.scanner("T3")}
        # matrix version on the incidence form
        e = incidence_unoriented(5, edge_list_from_adjacency(a))
        kept = ktruss(e, 3)
        expected = set()
        for pair in kept.indices.reshape(-1, 2):
            u, v = int(pair[0]), int(pair[1])
            expected.add((u, v))
            expected.add((v, u))
        assert surviving == expected
        assert (4, 1) not in surviving  # edge e6 (v2–v5) removed

    def test_four_truss_empty(self, conn):
        load_adjacency(conn, fig1_graph(), "A")
        table_ktruss(conn, "A", "T4", 4)
        assert list(conn.scanner("T4")) == []

    @pytest.mark.parametrize("k", [3, 4])
    def test_random_matches_matrix(self, conn, k):
        a = erdos_renyi(14, 0.35, seed=7)
        load_adjacency(conn, a, "A")
        table_ktruss(conn, "A", "T", k)
        surviving = {(vid(c.key.row), vid(c.key.qualifier))
                     for c in conn.scanner("T")}
        e = incidence_unoriented(14, edge_list_from_adjacency(a))
        kept = ktruss(e, k)
        expected = set()
        if kept.nrows:
            for pair in kept.indices.reshape(-1, 2):
                u, v = int(pair[0]), int(pair[1])
                expected.add((u, v))
                expected.add((v, u))
        assert surviving == expected

    def test_k_validated(self, conn):
        load_adjacency(conn, fig1_graph(), "A")
        with pytest.raises(ValueError):
            table_ktruss(conn, "A", "T", 2)


class TestTablePageRank:
    def test_fig1_matches_matrix(self, conn):
        from repro.algorithms.centrality import pagerank
        from repro.dbsim import table_pagerank

        a = fig1_graph()
        load_adjacency(conn, a, "A")
        table_pagerank(conn, "A", "PR", jump=0.15, tol=1e-12)
        got = {vid(c.key.row): decode_number(c.value)
               for c in conn.scanner("PR")}
        ref = pagerank(a, jump=0.15)
        for v in range(5):
            assert got[v] == pytest.approx(ref[v], abs=1e-8)

    def test_random_matches_matrix(self, conn):
        from repro.algorithms.centrality import pagerank
        from repro.dbsim import table_pagerank

        a = erdos_renyi(12, 0.3, seed=5)
        load_adjacency(conn, a, "A")
        table_pagerank(conn, "A", "PR", tol=1e-12)
        got = {vid(c.key.row): decode_number(c.value)
               for c in conn.scanner("PR")}
        ref = pagerank(a)
        for v, val in got.items():
            assert val == pytest.approx(ref[v], abs=1e-8)

    def test_sums_to_one(self, conn):
        from repro.dbsim import table_pagerank

        load_adjacency(conn, fig1_graph(), "A")
        table_pagerank(conn, "A", "PR")
        total = sum(decode_number(c.value) for c in conn.scanner("PR"))
        assert total == pytest.approx(1.0)

    def test_temp_tables_cleaned(self, conn):
        from repro.dbsim import table_pagerank

        load_adjacency(conn, fig1_graph(), "A")
        table_pagerank(conn, "A", "PR")
        assert all(not t.startswith("_pr") for t in conn.instance.list_tables())

    def test_empty_table_rejected(self, conn):
        from repro.dbsim import table_pagerank

        conn.create_table("E")
        with pytest.raises(ValueError):
            table_pagerank(conn, "E", "PR")

    def test_jump_validated(self, conn):
        from repro.dbsim import table_pagerank

        load_adjacency(conn, fig1_graph(), "A")
        with pytest.raises(ValueError):
            table_pagerank(conn, "A", "PR", jump=1.0)
