"""Model-based property test: the tablet/table stack vs a sorted-dict
reference model under arbitrary write/flush/compact/split sequences.

The reference model is "last write per (row, qualifier) wins" — exactly
what a max_versions=1 table must present regardless of how writes are
spread across memtable, sorted runs, and split tablets.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbsim.client import Connector
from repro.dbsim.key import Range
from repro.dbsim.server import Instance

ROWS = ["a", "b", "c", "d", "e", "f", "g"]
QUALS = ["q1", "q2"]

op = st.one_of(
    st.tuples(st.just("write"), st.sampled_from(ROWS), st.sampled_from(QUALS),
              st.integers(0, 99)),
    st.tuples(st.just("flush")),
    st.tuples(st.just("compact")),
    st.tuples(st.just("split"), st.sampled_from(ROWS)),
)


@given(ops=st.lists(op, min_size=1, max_size=40))
@settings(max_examples=80, deadline=None)
def test_scan_matches_dict_model(ops):
    conn = Connector(Instance(n_servers=2))
    conn.create_table("t")
    model = {}
    writer = conn.batch_writer("t", buffer_size=1)  # immediate routing
    for o in ops:
        if o[0] == "write":
            _, r, q, v = o
            writer.put(r, "", q, v)
            model[(r, q)] = str(v)
        elif o[0] == "flush":
            conn.flush("t")
        elif o[0] == "compact":
            conn.compact("t")
        else:
            conn.add_split("t", o[1])
    writer.close()
    got = {(c.key.row, c.key.qualifier): c.value for c in conn.scanner("t")}
    assert got == model
    # scans come back in sorted key order regardless of history
    keys = [(c.key.row, c.key.qualifier) for c in conn.scanner("t")]
    assert keys == sorted(keys)


@given(ops=st.lists(op, min_size=1, max_size=30),
       lo=st.sampled_from(ROWS), hi=st.sampled_from(ROWS))
@settings(max_examples=60, deadline=None)
def test_range_scan_matches_model(ops, lo, hi):
    if lo > hi:
        lo, hi = hi, lo
    conn = Connector(Instance())
    conn.create_table("t")
    model = {}
    writer = conn.batch_writer("t", buffer_size=1)
    for o in ops:
        if o[0] == "write":
            _, r, q, v = o
            writer.put(r, "", q, v)
            model[(r, q)] = str(v)
        elif o[0] == "flush":
            conn.flush("t")
        elif o[0] == "compact":
            conn.compact("t")
        else:
            conn.add_split("t", o[1])
    writer.close()
    s = conn.scanner("t").set_range(Range(lo, hi))
    got = {(c.key.row, c.key.qualifier): c.value for c in s}
    expected = {k: v for k, v in model.items() if lo <= k[0] < hi}
    assert got == expected
