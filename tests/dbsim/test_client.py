"""Connector / Scanner / BatchScanner / BatchWriter.

The ``conn`` fixture is parametrized over both
:class:`~repro.dbsim.backend.ConnectorBackend` implementations: the
in-process :class:`~repro.dbsim.server.Instance` and a
:class:`~repro.net.client.RemoteConnector` talking to a live localhost
cluster over the RPC fabric.  Every test in this file runs against
both — the client surface must not care which side of a socket the
tablets live on.
"""

import pytest

from repro.dbsim.client import Connector
from repro.dbsim.key import Range
from repro.dbsim.server import Instance
from repro.net.client import RemoteConnector, RemoteInstance
from repro.net.cluster import LocalCluster


@pytest.fixture(scope="module")
def remote_cluster():
    with LocalCluster(n_servers=2, processes=False) as cluster:
        yield cluster


def _wipe(conn):
    for table in list(conn.instance.list_tables()):
        conn.instance.delete_table(table)


@pytest.fixture(params=["local", "remote"])
def conn(request):
    if request.param == "local":
        c = Connector(Instance(n_servers=2))
    else:
        c = request.getfixturevalue("remote_cluster").connect()
        _wipe(c)  # the cluster outlives each test; tables must not
    c.create_table("t", splits=["m"])
    with c.batch_writer("t") as w:
        for r, q, v in [("a", "c1", 1), ("a", "c2", 2), ("m", "c1", 3),
                        ("z", "c9", 4)]:
            w.put(r, "", q, v)
    yield c
    if isinstance(c, RemoteConnector):
        _wipe(c)
        c.close()


class TestScanner:
    def test_full_scan_sorted_across_tablets(self, conn):
        out = [(c.key.row, c.key.qualifier, c.value)
               for c in conn.scanner("t")]
        assert out == [("a", "c1", "1"), ("a", "c2", "2"), ("m", "c1", "3"),
                       ("z", "c9", "4")]

    def test_range_scan(self, conn):
        s = conn.scanner("t").set_range(Range("a", "m"))
        assert [c.key.row for c in s] == ["a", "a"]

    def test_exact_row(self, conn):
        s = conn.scanner("t").set_range(Range.exact_row("m"))
        assert [c.value for c in s] == ["3"]

    def test_fetch_column(self, conn):
        s = conn.scanner("t").fetch_column("", "c1")
        assert [c.value for c in s] == ["1", "3"]

    def test_scan_iterators_applied(self, conn):
        from repro.dbsim.iterators import ApplyIterator

        s = conn.scanner("t", scan_iterators=(
            lambda src: ApplyIterator(src, lambda v: v * 10),))
        assert [c.value for c in s] == ["10", "20", "30", "40"]


class TestBatchScanner:
    def test_multiple_ranges(self, conn):
        bs = conn.batch_scanner("t").set_ranges(
            [Range.exact_row("z"), Range.exact_row("a")])
        out = [c.key.row for c in bs]
        assert out == ["z", "a", "a"]  # ranges in given order

    def test_requires_ranges(self, conn):
        with pytest.raises(ValueError):
            conn.batch_scanner("t").set_ranges([])


class TestBatchScannerAcrossSplits:
    """Range coalescing when a split lands *inside* a requested range
    after the scanner was set up — the tablet set the coalescer walks
    is stale the moment it is computed, and the results must not be."""

    def _fill(self, conn, n=300):
        conn.create_table("s")
        with conn.batch_writer("s") as w:
            for i in range(n):
                w.put(f"r{i:03d}", "", "c", i)

    def test_split_between_setup_and_iteration(self, conn):
        self._fill(conn)
        bs = conn.batch_scanner("s").set_ranges(
            [Range("r010", "r120"), Range("r150", "r260")])
        conn.instance.add_split("s", "r100")  # inside the first range
        rows = [c.key.row for c in bs]
        assert rows == [f"r{i:03d}" for i in range(10, 120)] + \
                       [f"r{i:03d}" for i in range(150, 260)]

    def test_split_mid_stream(self, conn):
        self._fill(conn)
        bs = conn.batch_scanner("s").set_ranges([Range("r010", "r260")])
        it = iter(bs)
        head = [next(it) for _ in range(10)]
        conn.instance.add_split("s", "r150")  # split while consuming
        rows = [c.key.row for c in head] + [c.key.row for c in it]
        assert rows == [f"r{i:03d}" for i in range(10, 260)]

    def test_stale_route_after_split_self_heals(self, conn):
        self._fill(conn)
        # warm this client's routing, then split through a *different*
        # client so the routing goes stale without this one noticing
        assert sum(1 for _ in conn.scanner("s")) == 300
        inst = conn.instance
        if isinstance(inst, RemoteInstance):
            other = RemoteConnector(inst.manager_addr)
            try:
                other.instance.add_split("s", "r150")
            finally:
                other.close()
        else:
            inst.add_split("s", "r150")
        bs = conn.batch_scanner("s").set_ranges([Range("r100", "r200")])
        assert [c.key.row for c in bs] == \
            [f"r{i:03d}" for i in range(100, 200)]


class TestBatchWriter:
    def test_routes_to_correct_tablet(self, conn):
        inst = conn.instance
        left = inst.locate("t", "a")
        right = inst.locate("t", "z")
        assert len(left.scan()) == 2
        assert len(right.scan()) == 2

    def test_buffer_flush_threshold(self, conn):
        w = conn.batch_writer("t", buffer_size=2)
        w.put("q1", "", "c", 1)
        assert len(w._buffer) == 1
        w.put("q2", "", "c", 1)  # triggers flush
        assert len(w._buffer) == 0
        w.close()

    def test_write_after_close_rejected(self, conn):
        w = conn.batch_writer("t")
        w.close()
        with pytest.raises(RuntimeError):
            w.put("x", "", "c", 1)

    def test_numeric_values_encoded(self, conn):
        with conn.batch_writer("t") as w:
            w.put("num", "", "c", 2.5)
        s = conn.scanner("t").set_range(Range.exact_row("num"))
        assert [c.value for c in s] == ["2.5"]

    def test_buffer_size_validated(self, conn):
        with pytest.raises(ValueError):
            conn.batch_writer("t", buffer_size=0)


class TestTableOps:
    def test_create_delete_exists(self, conn):
        conn.create_table("x")
        assert conn.table_exists("x")
        conn.delete_table("x")
        assert not conn.table_exists("x")

    def test_flush_compact(self, conn):
        conn.flush("t")
        total_runs = sum(len(t.sstables) for t in conn.instance.tablets("t"))
        assert total_runs >= 1
        conn.compact("t")
        for t in conn.instance.tablets("t"):
            assert len(t.sstables) <= 1
