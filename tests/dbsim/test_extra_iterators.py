"""Regex, AgeOff, Apply and RowReduce iterators, directly on stacks."""

import pytest

from repro.dbsim import AgeOffIterator, Connector, RegexFilterIterator
from repro.dbsim.iterators import (ApplyIterator, DeleteFilterIterator,
                                   ListIterator, RowReduceIterator,
                                   VersioningIterator, drain)
from repro.dbsim.key import Cell, Key, Range
from repro.dbsim.server import Instance


def cells(*specs):
    out = [Cell(Key(r, "", q, "", ts), v) for (r, q, v, ts) in specs]
    return sorted(out, key=lambda c: c.key.sort_tuple())


class TestRegexFilter:
    DATA = cells(("user|alice", "age", "30", 1),
                 ("user|bob", "age", "25", 1),
                 ("word|hi", "count", "7", 1))

    def test_row_regex(self):
        it = RegexFilterIterator(ListIterator(self.DATA), row=r"^user\|")
        assert [c.key.row for c in drain(it)] == ["user|alice", "user|bob"]

    def test_qualifier_regex(self):
        it = RegexFilterIterator(ListIterator(self.DATA), qualifier="count")
        assert [c.value for c in drain(it)] == ["7"]

    def test_value_regex(self):
        it = RegexFilterIterator(ListIterator(self.DATA), value=r"^2")
        assert [c.key.row for c in drain(it)] == ["user|bob"]

    def test_combined(self):
        it = RegexFilterIterator(ListIterator(self.DATA),
                                 row="user", value="30")
        assert [c.key.row for c in drain(it)] == ["user|alice"]

    def test_none_matches_all(self):
        it = RegexFilterIterator(ListIterator(self.DATA))
        assert len(drain(it)) == 3

    def test_as_scan_iterator(self):
        conn = Connector(Instance())
        conn.create_table("t")
        with conn.batch_writer("t") as w:
            w.put("apple", "", "q", 1)
            w.put("banana", "", "q", 2)
        s = conn.scanner("t", scan_iterators=(
            lambda src: RegexFilterIterator(src, row="^a"),))
        assert [c.key.row for c in s] == ["apple"]


class TestAgeOff:
    def test_drops_old_timestamps(self):
        data = cells(("a", "q", "old", 1), ("b", "q", "new", 9))
        it = AgeOffIterator(ListIterator(data), cutoff=5)
        assert [c.value for c in drain(it)] == ["new"]

    def test_cutoff_inclusive(self):
        data = cells(("a", "q", "exact", 5))
        it = AgeOffIterator(ListIterator(data), cutoff=5)
        assert drain(it) == []

    def test_compaction_makes_ageoff_permanent(self):
        conn = Connector(Instance())
        conn.create_table("t")
        tablet = conn.instance.locate("t", "a")
        tablet.write(Key("a", "", "q", "", 1), "old")
        tablet.write(Key("b", "", "q", "", 9), "new")
        tablet.compact(table_iterators=(
            lambda src: AgeOffIterator(src, cutoff=5),))
        assert tablet.entry_estimate() == 1
        assert [c.value for c in tablet.scan()] == ["new"]


def tombstone(row, qualifier, ts):
    return Cell(Key(row, "", qualifier, "", ts, True), "")


class TestIteratorEdgeCases:
    """Empty scans, interleaved delete markers, multi-version keys."""

    def test_empty_source(self):
        empty = ListIterator([])
        for it in (RegexFilterIterator(ListIterator([]), row="x"),
                   AgeOffIterator(ListIterator([]), cutoff=5),
                   ApplyIterator(empty, lambda v: v + 1),
                   RowReduceIterator(ListIterator([]), op="sum")):
            assert drain(it) == []
            assert not it.has_top()

    def test_seek_to_empty_range(self):
        data = cells(("a", "q", "1", 1), ("b", "q", "2", 1))
        it = RegexFilterIterator(ListIterator(data), row=".")
        it.seek(Range("x", "z"), None)
        assert not it.has_top()

    def test_delete_markers_interleaved(self):
        """Stacked the way a tablet stacks them — DeleteFilter below —
        the scan iterators only ever see live cells."""
        data = sorted([
            Cell(Key("a", "", "q1", "", 2), "1"),
            tombstone("a", "q2", 3),
            Cell(Key("a", "", "q2", "", 2), "9"),   # older than tombstone
            Cell(Key("b", "", "q1", "", 4), "2"),
            tombstone("b", "q2", 1),                # deletes nothing
            Cell(Key("b", "", "q2", "", 5), "3"),
        ], key=lambda c: c.key.sort_tuple())
        stack = ApplyIterator(DeleteFilterIterator(ListIterator(data)),
                              lambda v: v * 10)
        got = [(c.key.row, c.key.qualifier, c.value) for c in drain(stack)]
        assert got == [("a", "q1", "10"), ("b", "q1", "20"),
                       ("b", "q2", "30")]
        reduced = drain(RowReduceIterator(
            DeleteFilterIterator(ListIterator(data)), op="sum"))
        assert [(c.key.row, c.value) for c in reduced] == \
            [("a", "1"), ("b", "5")]

    def test_multi_version_keys(self):
        data = cells(("a", "q", "3", 3), ("a", "q", "2", 2),
                     ("a", "q", "1", 1), ("b", "q", "7", 5))
        newest = drain(VersioningIterator(ListIterator(data), 1))
        assert [(c.value, c.key.timestamp) for c in newest] == \
            [("3", 3), ("7", 5)]
        two = drain(VersioningIterator(ListIterator(data), 2))
        assert [c.value for c in two] == ["3", "2", "7"]
        # an age-off below versioning can expose an older version
        aged = drain(VersioningIterator(
            AgeOffIterator(ListIterator(data), cutoff=2), 1))
        assert [(c.value, c.key.timestamp) for c in aged] == \
            [("3", 3), ("7", 5)]

    def test_apply_drop_zero_and_keep_zero(self):
        data = cells(("a", "q", "2", 1), ("b", "q", "-2", 1))
        shifted = ApplyIterator(ListIterator(data), lambda v: v + 2)
        assert [c.value for c in drain(shifted)] == ["4"]  # 0 dropped
        kept = ApplyIterator(ListIterator(data), lambda v: v + 2,
                             drop_zero=False)
        assert [c.value for c in drain(kept)] == ["4", "0"]

    def test_apply_preserves_key_and_timestamp(self):
        data = cells(("a", "q", "2.5", 7))
        got = drain(ApplyIterator(ListIterator(data), lambda v: v * 2))
        assert got[0].key == data[0].key
        assert got[0].value == "5"


class TestRowReduce:
    DATA = cells(("a", "x", "1", 1), ("a", "y", "2", 4), ("a", "z", "3", 2),
                 ("b", "x", "5", 3))

    def test_sum_min_max(self):
        for op, want in (("sum", ["6", "5"]), ("min", ["1", "5"]),
                         ("max", ["3", "5"])):
            got = drain(RowReduceIterator(ListIterator(self.DATA), op=op))
            assert [c.value for c in got] == want

    def test_count_mode_ignores_values(self):
        got = drain(RowReduceIterator(ListIterator(self.DATA), op="sum",
                                      count=True))
        assert [(c.key.row, c.value) for c in got] == [("a", "3"), ("b", "1")]

    def test_output_key_shape_and_timestamp(self):
        got = drain(RowReduceIterator(ListIterator(self.DATA), op="sum",
                                      family="f", qualifier="deg"))
        key = got[0].key
        # newest timestamp in the row group keeps the output key
        # deterministic for cross-backend bit-identity
        assert (key.row, key.family, key.qualifier, key.timestamp) == \
            ("a", "f", "deg", 4)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown reduce op"):
            RowReduceIterator(ListIterator([]), op="avg")

    def test_reseek_restarts_fold(self):
        it = RowReduceIterator(ListIterator(self.DATA), op="sum")
        it.seek(Range(), None)
        assert it.top().key.row == "a"
        it.seek(Range("b", None), None)
        out = []
        while it.has_top():
            out.append((it.top().key.row, it.top().value))
            it.advance()
        assert out == [("b", "5")]
