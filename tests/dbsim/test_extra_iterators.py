"""Regex and AgeOff filter iterators."""

import pytest

from repro.dbsim import AgeOffIterator, Connector, RegexFilterIterator
from repro.dbsim.iterators import ListIterator, drain
from repro.dbsim.key import Cell, Key, Range
from repro.dbsim.server import Instance


def cells(*specs):
    out = [Cell(Key(r, "", q, "", ts), v) for (r, q, v, ts) in specs]
    return sorted(out, key=lambda c: c.key.sort_tuple())


class TestRegexFilter:
    DATA = cells(("user|alice", "age", "30", 1),
                 ("user|bob", "age", "25", 1),
                 ("word|hi", "count", "7", 1))

    def test_row_regex(self):
        it = RegexFilterIterator(ListIterator(self.DATA), row=r"^user\|")
        assert [c.key.row for c in drain(it)] == ["user|alice", "user|bob"]

    def test_qualifier_regex(self):
        it = RegexFilterIterator(ListIterator(self.DATA), qualifier="count")
        assert [c.value for c in drain(it)] == ["7"]

    def test_value_regex(self):
        it = RegexFilterIterator(ListIterator(self.DATA), value=r"^2")
        assert [c.key.row for c in drain(it)] == ["user|bob"]

    def test_combined(self):
        it = RegexFilterIterator(ListIterator(self.DATA),
                                 row="user", value="30")
        assert [c.key.row for c in drain(it)] == ["user|alice"]

    def test_none_matches_all(self):
        it = RegexFilterIterator(ListIterator(self.DATA))
        assert len(drain(it)) == 3

    def test_as_scan_iterator(self):
        conn = Connector(Instance())
        conn.create_table("t")
        with conn.batch_writer("t") as w:
            w.put("apple", "", "q", 1)
            w.put("banana", "", "q", 2)
        s = conn.scanner("t", scan_iterators=(
            lambda src: RegexFilterIterator(src, row="^a"),))
        assert [c.key.row for c in s] == ["apple"]


class TestAgeOff:
    def test_drops_old_timestamps(self):
        data = cells(("a", "q", "old", 1), ("b", "q", "new", 9))
        it = AgeOffIterator(ListIterator(data), cutoff=5)
        assert [c.value for c in drain(it)] == ["new"]

    def test_cutoff_inclusive(self):
        data = cells(("a", "q", "exact", 5))
        it = AgeOffIterator(ListIterator(data), cutoff=5)
        assert drain(it) == []

    def test_compaction_makes_ageoff_permanent(self):
        conn = Connector(Instance())
        conn.create_table("t")
        tablet = conn.instance.locate("t", "a")
        tablet.write(Key("a", "", "q", "", 1), "old")
        tablet.write(Key("b", "", "q", "", 9), "new")
        tablet.compact(table_iterators=(
            lambda src: AgeOffIterator(src, cutoff=5),))
        assert tablet.entry_estimate() == 1
        assert [c.value for c in tablet.scan()] == ["new"]
