"""Exact cost-model accounting for a scripted tablet history.

The simulator's claim to benchmark relevance is that its counters are
*deterministic* stand-ins for cluster work (DESIGN.md §2).  This pins
the exact seek/read/write/flush/compaction tallies of a fixed
ingest → flush → scan → compact → scan sequence, through both reporting
surfaces: the per-server ``OpStats`` and the metrics registry.

Ground truth for the numbers (1 server, 1 tablet, 6 distinct rows):

* 6 puts             → entries_written += 6
* flush              → flushes += 1
* full scan          → 2 seeks (memtable iter + 1 sstable), 6 reads
* compact            → internal merge scan: 2 seeks, 6 reads,
                       compactions += 1
* full scan          → 2 seeks, 6 reads (memtable iter + merged run)
"""

import pytest

from repro.dbsim import Connector
from repro.dbsim.server import Instance
from repro.dbsim.stats import MeteredStats, OpStats
from repro.obs.metrics import MetricsRegistry


class TestOpStatsSerialization:
    def test_as_dict_field_order(self):
        d = OpStats(1, 2, 3, 4, 5).as_dict()
        assert list(d) == ["seeks", "entries_read", "entries_written",
                           "flushes", "compactions"]
        assert d["entries_written"] == 3

    def test_dict_round_trip(self):
        s = OpStats(seeks=7, flushes=2)
        assert OpStats.from_dict(s.as_dict()) == s

    def test_from_dict_defaults_missing(self):
        s = OpStats.from_dict({"seeks": 3})
        assert s == OpStats(seeks=3)

    def test_from_dict_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown OpStats"):
            OpStats.from_dict({"seeks": 1, "bogus": 2})

    def test_str_round_trips_through_from_str(self):
        s = OpStats(1, 2, 3, 4, 5)
        assert str(s) == ("seeks=1 entries_read=2 entries_written=3 "
                          "flushes=4 compactions=5")
        assert OpStats.from_str(str(s)) == s


class TestMeteredStats:
    def test_tees_increments_into_registry(self):
        reg = MetricsRegistry()
        base = OpStats()
        m = MeteredStats(base, reg, "p")
        m.seeks += 3
        m.entries_read += 10
        assert base.seeks == 3 and base.entries_read == 10
        assert m.seeks == 3  # reads come from the base
        assert reg.export() == {"p.seeks": 3, "p.entries_read": 10}

    def test_snapshot_delta_pass_through(self):
        reg = MetricsRegistry()
        m = MeteredStats(OpStats(), reg, "p")
        before = m.snapshot()
        m.flushes += 1
        assert m.delta(before) == OpStats(flushes=1)
        assert m.as_dict()["flushes"] == 1


@pytest.fixture
def setup():
    reg = MetricsRegistry()
    inst = Instance(n_servers=1, metrics=reg)
    conn = Connector(inst)
    conn.create_table("t")
    return reg, inst, conn


def ingest(conn, n=6):
    with conn.batch_writer("t") as w:
        for i in range(n):
            w.put(f"r{i}", "", "q", "1")


class TestScriptedSequence:
    def test_exact_counters_via_opstats(self, setup):
        reg, inst, conn = setup

        ingest(conn)
        assert inst.total_stats().as_dict() == {
            "seeks": 0, "entries_read": 0, "entries_written": 6,
            "flushes": 0, "compactions": 0}

        conn.flush("t")
        assert inst.total_stats().flushes == 1

        assert sum(1 for _ in conn.scanner("t")) == 6
        s = inst.total_stats()
        # memtable iterator + one sstable = 2 seeks; 6 entries surfaced
        assert (s.seeks, s.entries_read) == (2, 6)

        conn.compact("t")
        s = inst.total_stats()
        # compaction is itself a metered merge scan over the same data
        assert (s.seeks, s.entries_read, s.compactions) == (4, 12, 1)

        assert sum(1 for _ in conn.scanner("t")) == 6
        assert inst.total_stats().as_dict() == {
            "seeks": 6, "entries_read": 18, "entries_written": 6,
            "flushes": 1, "compactions": 1}

    def test_registry_counters_match_opstats(self, setup):
        reg, inst, conn = setup
        ingest(conn)
        conn.flush("t")
        sum(1 for _ in conn.scanner("t"))
        conn.compact("t")
        sum(1 for _ in conn.scanner("t"))

        export = reg.export()
        total = inst.total_stats().as_dict()
        for field, expected in total.items():
            assert export[f"dbsim.table.t.{field}"] == expected

    def test_gauges_track_memtable_and_sstables(self, setup):
        reg, inst, conn = setup
        ingest(conn)
        export = reg.export()
        assert export["dbsim.table.t.memtable_entries"] == 6
        assert export["dbsim.table.t.memtable_bytes"] > 0
        assert export["dbsim.table.t.sstables"] == 0

        conn.flush("t")
        ingest(conn, 2)  # overwrites r0/r1 in the new memtable
        conn.flush("t")
        export = reg.export()
        assert export["dbsim.table.t.memtable_entries"] == 0
        assert export["dbsim.table.t.memtable_bytes"] == 0
        assert export["dbsim.table.t.sstables"] == 2

        conn.compact("t")
        assert reg.export()["dbsim.table.t.sstables"] == 1

    def test_server_tablet_gauge_follows_splits(self, setup):
        reg, inst, conn = setup
        ingest(conn)
        assert reg.export()["dbsim.server.tserver0.tablets"] == 1
        conn.add_split("t", "r3")
        export = reg.export()
        total_tablets = sum(v for k, v in export.items()
                            if k.startswith("dbsim.server.")
                            and k.endswith(".tablets"))
        assert total_tablets == 2

    def test_gauges_survive_splits(self, setup):
        # a split flushes, then replaces one tablet with two; the
        # per-table gauges must re-aggregate (old contribution
        # withdrawn, children's runs added)
        reg, inst, conn = setup
        ingest(conn)
        conn.add_split("t", "r3")
        export = reg.export()
        assert export["dbsim.table.t.memtable_entries"] == 0
        assert export["dbsim.table.t.sstables"] == 2  # one run per child
        ingest(conn, 2)
        assert reg.export()["dbsim.table.t.memtable_entries"] == 2

    def test_counters_survive_delete_table(self, setup):
        # counters are cumulative work: deleting the table keeps the
        # registry history but withdraws the gauge contributions
        reg, inst, conn = setup
        ingest(conn)
        conn.flush("t")
        conn.delete_table("t")
        export = reg.export()
        assert export["dbsim.table.t.entries_written"] == 6
        assert export["dbsim.table.t.memtable_entries"] == 0
        assert export["dbsim.table.t.sstables"] == 0

    def test_observability_export_shape(self, setup):
        reg, inst, conn = setup
        ingest(conn)
        conn.flush("t")
        out = inst.observability_export()
        assert out["metrics"] == reg.export()
        assert set(out["servers"]) == {"tserver0"}
        assert out["servers"]["tserver0"]["entries_written"] == 6
        assert out["total"]["flushes"] == 1

    def test_shared_registry_isolated_per_instance(self):
        # two instances with private registries must not cross-talk
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        c1 = Connector(Instance(n_servers=1, metrics=r1))
        c2 = Connector(Instance(n_servers=1, metrics=r2))
        c1.create_table("t")
        c2.create_table("t")
        with c1.batch_writer("t") as w:
            w.put("a", "", "q", "1")
        assert r1.export()["dbsim.table.t.entries_written"] == 1
        assert r2.export()["dbsim.table.t.entries_written"] == 0
