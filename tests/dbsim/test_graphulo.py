"""Graphulo server-side ops: TableMult, degree tables, apply/filter, BFS."""

import numpy as np
import pytest

from repro.assoc import AssocArray
from repro.dbsim import (
    Connector,
    apply_to_table,
    assoc_to_table,
    degree_table,
    filter_table,
    table_bfs,
    table_mult,
    table_to_assoc,
)
from repro.dbsim.graphulo import create_combiner_table
from repro.dbsim.key import Range, decode_number
from repro.dbsim.server import Instance
from repro.generators.classic import fig1_edges


@pytest.fixture
def conn():
    return Connector(Instance(n_servers=2))


def random_assoc(rng, rows, cols, density=0.4):
    r, c, v = [], [], []
    for i in range(rows):
        for j in range(cols):
            if rng.random() < density:
                r.append(f"r{i:03d}")
                c.append(f"c{j:03d}")
                v.append(float(rng.integers(1, 9)))
    return AssocArray.from_triples(r, c, np.asarray(v))


class TestTableMult:
    @pytest.mark.parametrize("seed", range(4))
    def test_equals_assoc_matmul(self, conn, seed):
        """TableMult(C, A, B) must equal Aᵀ·B computed client-side."""
        rng = np.random.default_rng(seed)
        a = random_assoc(rng, 8, 6)
        b = random_assoc(rng, 8, 5)
        # shared inner keys: both use r### rows
        assoc_to_table(conn, a, "A")
        assoc_to_table(conn, b, "B")
        table_mult(conn, "A", "B", "C")
        out = table_to_assoc(conn, "C")
        ref = a.T @ b
        assert out.equal(ref)

    def test_accumulates_into_existing_result(self, conn):
        """Running TableMult twice into the same table doubles values —
        the summing-combiner accumulation Graphulo relies on."""
        rng = np.random.default_rng(9)
        a = random_assoc(rng, 6, 4)
        assoc_to_table(conn, a, "A")
        table_mult(conn, "A", "A", "C")
        table_mult(conn, "A", "A", "C")
        out = table_to_assoc(conn, "C")
        assert out.equal((a.T @ a).scale(2.0))

    def test_min_combiner_tropical(self, conn):
        """min-combiner output table + plus multiply = min-plus TableMult."""
        a = AssocArray.from_triples(["k", "k"], ["u", "v"], [1.0, 5.0])
        b = AssocArray.from_triples(["k"], ["w"], [2.0])
        assoc_to_table(conn, a, "A")
        assoc_to_table(conn, b, "B")
        table_mult(conn, "A", "B", "C", mul=lambda x, y: x + y,
                   combiner="min")
        out = table_to_assoc(conn, "C")
        assert out.get("u", "w") == 3.0 and out.get("v", "w") == 7.0

    def test_stats_reported(self, conn):
        rng = np.random.default_rng(1)
        a = random_assoc(rng, 5, 5)
        assoc_to_table(conn, a, "A")
        stats = table_mult(conn, "A", "A", "C")
        assert stats.entries_read > 0 and stats.entries_written > 0

    def test_empty_inner_intersection(self, conn):
        a = AssocArray.from_triples(["x"], ["u"], [1.0])
        b = AssocArray.from_triples(["y"], ["w"], [1.0])
        assoc_to_table(conn, a, "A")
        assoc_to_table(conn, b, "B")
        table_mult(conn, "A", "B", "C")
        assert table_to_assoc(conn, "C").nnz == 0


class TestTableMultEngine:
    """via="engine": bulk scan → adaptive SpGEMM → bulk write."""

    @pytest.mark.parametrize("seed", range(4))
    def test_engine_equals_assoc_matmul(self, conn, seed):
        rng = np.random.default_rng(seed)
        a = random_assoc(rng, 8, 6)
        b = random_assoc(rng, 8, 5)
        assoc_to_table(conn, a, "A")
        assoc_to_table(conn, b, "B")
        stats = table_mult(conn, "A", "B", "C", via="engine")
        assert table_to_assoc(conn, "C").equal(a.T @ b)
        assert stats.entries_read > 0 and stats.entries_written > 0

    def test_engine_matches_stream(self, conn):
        rng = np.random.default_rng(5)
        a = random_assoc(rng, 7, 7)
        assoc_to_table(conn, a, "A")
        table_mult(conn, "A", "A", "C_stream")
        table_mult(conn, "A", "A", "C_engine", via="engine")
        assert table_to_assoc(conn, "C_engine").equal(
            table_to_assoc(conn, "C_stream"))

    def test_engine_min_combiner_tropical(self, conn):
        a = AssocArray.from_triples(["k", "k"], ["u", "v"], [1.0, 5.0])
        b = AssocArray.from_triples(["k"], ["w"], [2.0])
        assoc_to_table(conn, a, "A")
        assoc_to_table(conn, b, "B")
        table_mult(conn, "A", "B", "C", mul=lambda x, y: x + y,
                   combiner="min", via="engine")
        out = table_to_assoc(conn, "C")
        assert out.get("u", "w") == 3.0 and out.get("v", "w") == 7.0

    def test_engine_accumulates(self, conn):
        rng = np.random.default_rng(6)
        a = random_assoc(rng, 6, 4)
        assoc_to_table(conn, a, "A")
        table_mult(conn, "A", "A", "C", via="engine")
        table_mult(conn, "A", "A", "C", via="engine")
        assert table_to_assoc(conn, "C").equal((a.T @ a).scale(2.0))

    def test_engine_empty_intersection(self, conn):
        assoc_to_table(conn, AssocArray.from_triples(["x"], ["u"], [1.0]), "A")
        assoc_to_table(conn, AssocArray.from_triples(["y"], ["w"], [1.0]), "B")
        table_mult(conn, "A", "B", "C", via="engine")
        assert table_to_assoc(conn, "C").nnz == 0

    def test_engine_strategy_kwargs(self, conn):
        rng = np.random.default_rng(7)
        a = random_assoc(rng, 8, 8)
        assoc_to_table(conn, a, "A")
        table_mult(conn, "A", "A", "C", via="engine", strategy="tiled",
                   expansion_budget=4)
        assert table_to_assoc(conn, "C").equal(a.T @ a)

    def test_invalid_via(self, conn):
        rng = np.random.default_rng(8)
        assoc_to_table(conn, random_assoc(rng, 3, 3), "A")
        with pytest.raises(ValueError, match="via"):
            table_mult(conn, "A", "A", "C", via="teleport")


class TestDegreeTable:
    def test_weighted_and_count(self, conn):
        a = AssocArray.from_triples(["r1", "r1", "r2"], ["a", "b", "a"],
                                    [2.0, 3.0, 4.0])
        assoc_to_table(conn, a, "T")
        degree_table(conn, "T", "Tdeg")
        degs = {c.key.row: decode_number(c.value)
                for c in conn.scanner("Tdeg")}
        assert degs == {"r1": 5.0, "r2": 4.0}
        degree_table(conn, "T", "Tcount", count_entries=True)
        counts = {c.key.row: decode_number(c.value)
                  for c in conn.scanner("Tcount")}
        assert counts == {"r1": 2.0, "r2": 1.0}


class TestApplyFilter:
    def test_apply(self, conn):
        a = AssocArray.from_triples(["r"], ["c"], [3.0])
        assoc_to_table(conn, a, "T")
        apply_to_table(conn, "T", "T2", lambda v: v * v)
        assert table_to_assoc(conn, "T2").get("r", "c") == 9.0

    def test_apply_drop_zero(self, conn):
        a = AssocArray.from_triples(["r", "r"], ["c1", "c2"], [2.0, 5.0])
        assoc_to_table(conn, a, "T")
        apply_to_table(conn, "T", "T2", lambda v: 1.0 if v == 2.0 else 0.0)
        out = table_to_assoc(conn, "T2")
        assert out.nnz == 1 and out.get("r", "c1") == 1.0

    def test_filter(self, conn):
        a = AssocArray.from_triples(["r1", "r2"], ["c", "c"], [1.0, 10.0])
        assoc_to_table(conn, a, "T")
        filter_table(conn, "T", "big", lambda c: decode_number(c.value) > 5)
        out = table_to_assoc(conn, "big")
        assert out.nnz == 1 and out.get("r2", "c") == 10.0


class TestTableBFS:
    @pytest.fixture
    def edge_conn(self, conn):
        conn.create_table("edges")
        with conn.batch_writer("edges") as w:
            for u, v in fig1_edges():
                w.put(f"v{u}", "", f"v{v}", 1)
                w.put(f"v{v}", "", f"v{u}", 1)
        return conn

    def test_hop_distances(self, edge_conn):
        d = table_bfs(edge_conn, "edges", ["v0"], hops=3)
        assert d == {"v0": 0, "v1": 1, "v2": 1, "v3": 1, "v4": 2}

    def test_matches_matrix_bfs(self, edge_conn):
        from repro.algorithms.traversal import bfs
        from repro.generators.classic import fig1_graph

        matrix_d = bfs(fig1_graph(), 2)
        table_d = table_bfs(edge_conn, "edges", ["v2"], hops=5)
        for v in range(5):
            assert table_d.get(f"v{v}", -1) == matrix_d[v]

    def test_hop_limit(self, edge_conn):
        d = table_bfs(edge_conn, "edges", ["v0"], hops=1)
        assert "v4" not in d

    def test_multi_seed(self, edge_conn):
        d = table_bfs(edge_conn, "edges", ["v4", "v3"], hops=1)
        assert d["v4"] == 0 and d["v3"] == 0 and d["v1"] == 1

    def test_degree_filter_skips_supernode(self, edge_conn):
        degree_table(edge_conn, "edges", "deg", count_entries=True)
        # v4 has degree 1; requiring >= 2 stops expansion through v4
        d = table_bfs(edge_conn, "edges", ["v4"], hops=2, min_degree=2,
                      degree_table_name="deg")
        assert d == {"v4": 0}

    def test_validation(self, edge_conn):
        with pytest.raises(ValueError):
            table_bfs(edge_conn, "edges", [], hops=1)
        with pytest.raises(ValueError):
            table_bfs(edge_conn, "edges", ["v0"], hops=-1)
        with pytest.raises(ValueError):
            table_bfs(edge_conn, "edges", ["v0"], hops=1, min_degree=1.0)


class TestCombinerTableValidation:
    def test_unknown_combiner(self, conn):
        with pytest.raises(ValueError):
            create_combiner_table(conn, "x", combiner="xor")


class TestD4MBridge:
    def test_roundtrip_with_splits(self, conn):
        rng = np.random.default_rng(4)
        a = random_assoc(rng, 12, 6)
        assoc_to_table(conn, a, "T", n_splits=3)
        assert len(conn.instance.tablets("T")) >= 2
        assert table_to_assoc(conn, "T").equal(a)

    def test_partial_range_read(self, conn):
        a = AssocArray.from_triples(["a", "m", "z"], ["c", "c", "c"],
                                    [1.0, 2.0, 3.0])
        assoc_to_table(conn, a, "T")
        part = table_to_assoc(conn, "T", rng=Range("m", None))
        assert part.row_keys.tolist() == ["m", "z"]

    def test_repeated_ingest_accumulates(self, conn):
        a = AssocArray.from_triples(["r"], ["c"], [2.0])
        assoc_to_table(conn, a, "T")
        assoc_to_table(conn, a, "T")
        assert table_to_assoc(conn, "T").get("r", "c") == 4.0

    def test_empty_table(self, conn):
        conn.create_table("empty")
        assert table_to_assoc(conn, "empty").nnz == 0
