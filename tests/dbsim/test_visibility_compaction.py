"""Interplay of combiners, visibility, deletes, and compaction.

These are the corner cases a multi-tenant accumulating table lives on:
the combiner must fold only within one (row, qual, *visibility*) cell,
compaction must preserve per-compartment sums, and tombstones must not
leak across compartments.
"""

import pytest

from repro.dbsim import Authorizations, Connector
from repro.dbsim.graphulo import create_combiner_table
from repro.dbsim.key import decode_number
from repro.dbsim.server import Instance


@pytest.fixture
def conn():
    c = Connector(Instance())
    create_combiner_table(c, "t")
    return c


def values_for(conn, auths=None):
    return {(c.key.row, c.key.qualifier, c.key.visibility):
            decode_number(c.value)
            for c in conn.scanner("t", authorizations=auths)}


class TestCombinerVisibilityIsolation:
    def test_sums_do_not_cross_compartments(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 1, visibility="red")
            w.put("r", "", "q", 10, visibility="blue")
            w.put("r", "", "q", 1, visibility="red")
        both = Authorizations(["red", "blue"])
        got = values_for(conn, both)
        assert got[("r", "q", "red")] == 2.0
        assert got[("r", "q", "blue")] == 10.0

    def test_compaction_preserves_per_compartment_sums(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 3, visibility="red")
            w.put("r", "", "q", 4, visibility="red")
            w.put("r", "", "q", 7, visibility="blue")
        conn.compact("t")
        both = Authorizations(["red", "blue"])
        got = values_for(conn, both)
        assert got[("r", "q", "red")] == 7.0
        assert got[("r", "q", "blue")] == 7.0
        # compaction physically kept one entry per compartment
        assert conn.instance.table_entry_estimate("t") == 2

    def test_post_compaction_accumulation_continues(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 5, visibility="red")
        conn.compact("t")
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 2, visibility="red")
        got = values_for(conn, Authorizations(["red"]))
        assert got[("r", "q", "red")] == 7.0


class TestDeleteVisibilityIsolation:
    def test_delete_targets_one_compartment(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 1, visibility="red")
            w.put("r", "", "q", 2, visibility="blue")
        with conn.batch_writer("t") as w:
            w.delete("r", "", "q", visibility="red")
        both = Authorizations(["red", "blue"])
        got = values_for(conn, both)
        assert ("r", "q", "red") not in got
        assert got[("r", "q", "blue")] == 2.0

    def test_delete_then_compact_drops_storage(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 1, visibility="red")
        with conn.batch_writer("t") as w:
            w.delete("r", "", "q", visibility="red")
        conn.compact("t")
        assert conn.instance.table_entry_estimate("t") == 0
