"""Deletes/tombstones, cell-level visibility, and WAL crash recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbsim import (
    Authorizations,
    Connector,
    PUBLIC,
    ServerCrashedError,
    VisibilityError,
    check_expression,
    parse_visibility,
)
from repro.dbsim.key import Key, Range
from repro.dbsim.server import Instance


@pytest.fixture
def conn():
    c = Connector(Instance(n_servers=2))
    c.create_table("t")
    return c


def rows_of(scanner):
    return [(c.key.row, c.key.qualifier, c.value) for c in scanner]


class TestDeletes:
    def test_delete_hides_cell(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 5)
        with conn.batch_writer("t") as w:
            w.delete("r", "", "q")
        assert rows_of(conn.scanner("t")) == []

    def test_delete_then_rewrite_visible(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 1)
            w.delete("r", "", "q")
            w.put("r", "", "q", 9)
        assert rows_of(conn.scanner("t")) == [("r", "q", "9")]

    def test_delete_only_addressed_cell(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r", "", "q1", 1)
            w.put("r", "", "q2", 2)
            w.delete("r", "", "q1")
        assert rows_of(conn.scanner("t")) == [("r", "q2", "2")]

    def test_delete_across_flush(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 1)
        conn.flush("t")
        with conn.batch_writer("t") as w:
            w.delete("r", "", "q")
        assert rows_of(conn.scanner("t")) == []
        conn.flush("t")
        assert rows_of(conn.scanner("t")) == []

    def test_compaction_drops_tombstones(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 1)
            w.delete("r", "", "q")
        conn.compact("t")
        tablet = conn.instance.locate("t", "r")
        assert tablet.entry_estimate() == 0  # marker and victim both gone

    def test_delete_does_not_hide_newer_write(self, conn):
        tablet = conn.instance.locate("t", "r")
        tablet.write(Key("r", "", "q", "", 5), "old")
        tablet.write(Key("r", "", "q", "", 7), "new")
        tablet.delete(Key("r", "", "q", "", 6))
        assert rows_of(conn.scanner("t")) == [("r", "q", "new")]


class TestVisibilityExpressions:
    def test_parse_simple(self):
        assert parse_visibility("admin") == "admin"

    def test_and_or(self):
        a = Authorizations(["x", "y"])
        assert a.can_see("x&y")
        assert a.can_see("x|z")
        assert not a.can_see("x&z")
        assert not a.can_see("z")

    def test_parentheses(self):
        a = Authorizations(["eu", "analyst"])
        assert a.can_see("(eu|us)&analyst")
        assert not Authorizations(["analyst"]).can_see("(eu|us)&analyst")

    def test_empty_is_public(self):
        assert PUBLIC.can_see("")
        assert Authorizations(["a"]).can_see("")

    def test_mixed_ops_without_parens_rejected(self):
        with pytest.raises(VisibilityError, match="mix"):
            parse_visibility("a&b|c")

    @pytest.mark.parametrize("bad", ["a&", "&a", "(a", "a)", "a b", "a&&b",
                                     "()", ""])
    def test_malformed_rejected(self, bad):
        if bad == "":
            check_expression(bad)  # empty is legal (public)
        else:
            with pytest.raises(VisibilityError):
                parse_visibility(bad)

    def test_bad_auth_token(self):
        with pytest.raises(VisibilityError):
            Authorizations(["has space"])

    @given(st.sets(st.sampled_from(["a", "b", "c", "d"])))
    @settings(max_examples=30, deadline=None)
    def test_and_requires_all_or_any(self, auths):
        a = Authorizations(auths)
        assert a.can_see("a&b&c") == ({"a", "b", "c"} <= auths)
        assert a.can_see("a|b|c") == bool({"a", "b", "c"} & auths)


class TestVisibilityScanning:
    def test_scan_filters_by_auths(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r1", "", "q", 1, visibility="secret")
            w.put("r2", "", "q", 2)
            w.put("r3", "", "q", 3, visibility="secret&audit")
        public = rows_of(conn.scanner("t"))
        assert public == [("r2", "q", "2")]
        secret = rows_of(conn.scanner(
            "t", authorizations=Authorizations(["secret"])))
        assert [r for r, _, _ in secret] == ["r1", "r2"]
        full = rows_of(conn.scanner(
            "t", authorizations=Authorizations(["secret", "audit"])))
        assert len(full) == 3

    def test_batch_scanner_respects_auths(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r1", "", "q", 1, visibility="pii")
        bs = conn.batch_scanner(
            "t", authorizations=Authorizations(["pii"]))
        bs.set_ranges([Range.exact_row("r1")])
        assert len(list(bs)) == 1
        bs2 = conn.batch_scanner("t")
        bs2.set_ranges([Range.exact_row("r1")])
        assert list(bs2) == []

    def test_write_time_validation(self, conn):
        w = conn.batch_writer("t")
        with pytest.raises(VisibilityError):
            w.put("r", "", "q", 1, visibility="a&")

    def test_same_cell_different_visibility_coexist(self, conn):
        """(row, qual) with distinct visibilities are distinct cells —
        each audience sees its own version."""
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 1, visibility="alpha")
            w.put("r", "", "q", 2, visibility="beta")
        alpha = rows_of(conn.scanner("t",
                                     authorizations=Authorizations(["alpha"])))
        beta = rows_of(conn.scanner("t",
                                    authorizations=Authorizations(["beta"])))
        assert alpha == [("r", "q", "1")] and beta == [("r", "q", "2")]


class TestWALRecovery:
    def test_crash_without_wal_replay_loses_memtable(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 1)
        for server in conn.instance.servers:
            server.crash()
            server.recover(replay_wal=False)  # restart, skip log recovery
        assert rows_of(conn.scanner("t")) == []

    def test_recovery_replays_wal(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r1", "", "q", 1)
            w.put("r2", "", "q", 2)
        for server in conn.instance.servers:
            server.crash()
            server.recover()
        assert rows_of(conn.scanner("t")) == [("r1", "q", "1"),
                                              ("r2", "q", "2")]

    def test_flushed_data_survives_crash_without_replay(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r1", "", "q", 1)
        conn.flush("t")
        with conn.batch_writer("t") as w:
            w.put("r2", "", "q", 2)
        for server in conn.instance.servers:
            server.crash()
            server.recover(replay_wal=False)  # restart, skip log recovery
        assert rows_of(conn.scanner("t")) == [("r1", "q", "1")]
        for server in conn.instance.servers:
            server.recover()  # WALs stayed durable; replay them now
        assert rows_of(conn.scanner("t")) == [("r1", "q", "1"),
                                              ("r2", "q", "2")]

    def test_recovery_preserves_order_and_deletes(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 1)
            w.delete("r", "", "q")
            w.put("r", "", "q", 7)
        for server in conn.instance.servers:
            server.crash()
            server.recover()
        assert rows_of(conn.scanner("t")) == [("r", "q", "7")]

    def test_recovery_idempotent(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 1)
        tablet = conn.instance.locate("t", "r")
        tablet.crash()
        tablet.recover()
        tablet.recover()  # double replay must not duplicate visible data
        assert rows_of(conn.scanner("t")) == [("r", "q", "1")]


class TestCrashedServerErrors:
    """A crashed (not yet recovered) server rejects every data op with
    the typed error a remote client's retry loop keys off."""

    def _crash_all(self, conn):
        for server in conn.instance.servers:
            server.crash()

    def test_scan_on_crashed_server_raises(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 1)
        self._crash_all(conn)
        with pytest.raises(ServerCrashedError):
            list(conn.scanner("t"))

    def test_crash_mid_open_scan_raises(self, conn):
        """A scan already streaming when the server dies must surface
        the typed error, not keep reading the dead server's tablets."""
        with conn.batch_writer("t") as w:
            for i in range(10):
                w.put(f"r{i}", "", "q", i)
        scan = iter(conn.scanner("t"))
        assert next(scan).key.row == "r0"
        self._crash_all(conn)
        with pytest.raises(ServerCrashedError):
            next(scan)

    def test_write_on_crashed_server_raises(self, conn):
        self._crash_all(conn)
        w = conn.batch_writer("t")
        w.put("r", "", "q", 1)
        with pytest.raises(ServerCrashedError):
            w.flush()

    def test_flush_and_compact_on_crashed_server_raise(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 1)
        self._crash_all(conn)
        with pytest.raises(ServerCrashedError):
            conn.flush("t")
        with pytest.raises(ServerCrashedError):
            conn.compact("t")

    def test_recover_restores_service(self, conn):
        with conn.batch_writer("t") as w:
            w.put("r", "", "q", 1)
        self._crash_all(conn)
        for server in conn.instance.servers:
            server.recover()
        assert rows_of(conn.scanner("t")) == [("r", "q", "1")]
