"""Graph and corpus generators: structure, determinism, distributions."""

import numpy as np
import pytest

from repro.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    fig1_edges,
    fig1_graph,
    generate_tweets,
    grid_graph,
    kronecker_graph,
    path_graph,
    planted_clique,
    planted_partition,
    rmat_edges,
    rmat_graph,
    star_graph,
)
from repro.schemas import degrees, is_symmetric


class TestClassic:
    def test_fig1_matches_paper_adjacency(self):
        a = fig1_graph()
        expected = np.array([
            [0, 1, 1, 1, 0],
            [1, 0, 1, 0, 1],
            [1, 1, 0, 1, 0],
            [1, 0, 1, 0, 0],
            [0, 1, 0, 0, 0],
        ], dtype=float)
        assert np.array_equal(a.to_dense(), expected)

    def test_fig1_edge_order(self):
        assert fig1_edges().tolist() == [[0, 1], [1, 2], [0, 3], [2, 3],
                                         [0, 2], [1, 4]]

    def test_path(self):
        a = path_graph(4)
        assert degrees(a).tolist() == [1, 2, 2, 1]

    def test_cycle(self):
        a = cycle_graph(5)
        assert (degrees(a) == 2).all()

    def test_cycle_min_size(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete(self):
        a = complete_graph(5)
        assert (degrees(a) == 4).all() and a.nnz == 20

    def test_star(self):
        a = star_graph(6)
        d = degrees(a)
        assert d[0] == 5 and (d[1:] == 1).all()

    def test_grid(self):
        a = grid_graph(3, 4)
        assert a.nrows == 12
        d = degrees(a)
        assert d.min() == 2 and d.max() == 4
        assert d.sum() == 2 * (3 * 3 + 2 * 4)  # 2 * #edges

    def test_single_vertex(self):
        assert path_graph(1).nnz == 0
        assert star_graph(1).nnz == 0

    @pytest.mark.parametrize("fn", [path_graph, complete_graph, star_graph])
    def test_invalid_n(self, fn):
        with pytest.raises(ValueError):
            fn(0)


class TestRandom:
    def test_erdos_renyi_symmetric_simple(self):
        a = erdos_renyi(40, 0.2, seed=1)
        assert is_symmetric(a)
        assert a.diag().sum() == 0.0

    def test_erdos_renyi_deterministic(self):
        assert erdos_renyi(30, 0.3, seed=5).equal(erdos_renyi(30, 0.3, seed=5))

    def test_erdos_renyi_density(self):
        a = erdos_renyi(100, 0.3, seed=2)
        frac = a.nnz / (100 * 99)
        assert 0.25 < frac < 0.35

    def test_erdos_renyi_p_bounds(self):
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5)

    def test_planted_clique_contains_clique(self):
        a, members = planted_clique(50, 10, p=0.05, seed=3)
        dense = a.to_dense()
        block = dense[np.ix_(members, members)]
        off = block[~np.eye(len(members), dtype=bool)]
        assert (off == 1).all()

    def test_planted_clique_size_check(self):
        with pytest.raises(ValueError):
            planted_clique(5, 10)

    def test_planted_partition_labels(self):
        a, labels = planted_partition([10, 15], 0.9, 0.05, seed=4)
        assert labels.tolist() == [0] * 10 + [1] * 15
        assert is_symmetric(a)

    def test_planted_partition_validation(self):
        with pytest.raises(ValueError):
            planted_partition([], 0.5, 0.1)
        with pytest.raises(ValueError):
            planted_partition([5], 2.0, 0.1)


class TestKronecker:
    def test_exact_power_matches_numpy(self):
        seed = np.array([[0, 1], [1, 1]], dtype=float)
        g = kronecker_graph(seed, 3)
        ref = np.kron(np.kron(seed, seed), seed)
        assert np.array_equal(g.to_dense(), ref)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            kronecker_graph(np.eye(2), 0)

    def test_rmat_shape_and_bounds(self):
        e = rmat_edges(6, edge_factor=8, seed=1)
        assert e.shape == (8 << 6, 2)
        assert e.min() >= 0 and e.max() < 64

    def test_rmat_deterministic(self):
        assert np.array_equal(rmat_edges(5, seed=9), rmat_edges(5, seed=9))

    def test_rmat_probs_validated(self):
        with pytest.raises(ValueError, match="sum to 1"):
            rmat_edges(4, probs=(0.5, 0.5, 0.5, 0.5))

    def test_rmat_graph_simple_symmetric(self):
        a = rmat_graph(6, edge_factor=8, seed=2)
        assert is_symmetric(a)
        assert a.diag().sum() == 0
        assert (a.values == 1.0).all()

    def test_rmat_skew(self):
        """R-MAT should give a heavy-tailed degree distribution: the max
        degree far exceeds the mean."""
        a = rmat_graph(9, edge_factor=8, seed=3)
        d = degrees(a)
        assert d.max() > 4 * max(d.mean(), 1.0)


class TestTweets:
    def test_size_and_labels(self):
        c = generate_tweets(n_docs=500, seed=1)
        assert c.n_docs == 500
        assert len(c.labels) == 500
        assert set(c.labels.tolist()) <= set(range(5))

    def test_deterministic(self):
        a = generate_tweets(n_docs=100, seed=7)
        b = generate_tweets(n_docs=100, seed=7)
        assert a.docs == b.docs and np.array_equal(a.labels, b.labels)

    def test_doc_lengths(self):
        c = generate_tweets(n_docs=200, doc_len_range=(3, 5), seed=2)
        assert all(3 <= len(d) <= 5 for d in c.docs)

    def test_topic_words_dominate(self):
        from repro.generators.tweets import TOPIC_VOCABS

        c = generate_tweets(n_docs=300, background_rate=0.1, seed=3)
        hits = 0
        total = 0
        for doc, lab in zip(c.docs, c.labels):
            vocab = set(TOPIC_VOCABS[c.topic_names[lab]])
            hits += sum(w in vocab for w in doc)
            total += len(doc)
        assert hits / total > 0.8

    def test_to_matrix_counts(self):
        c = generate_tweets(n_docs=50, seed=4)
        m, vocab = c.to_matrix()
        assert m.nrows == 50 and m.ncols == len(vocab)
        assert m.reduce_scalar() == sum(len(d) for d in c.docs)

    def test_to_assoc_exploded_columns(self):
        c = generate_tweets(n_docs=20, seed=5)
        a = c.to_assoc()
        assert all(k.startswith("word|") for k in a.col_keys)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_tweets(n_docs=0)
        with pytest.raises(ValueError):
            generate_tweets(doc_len_range=(5, 2))
        with pytest.raises(ValueError):
            generate_tweets(background_rate=1.0)
        with pytest.raises(ValueError):
            generate_tweets(topic_weights=[1.0])
