"""Barabási–Albert and Watts–Strogatz generators."""

import numpy as np
import pytest

from repro.algorithms.traversal import connected_components
from repro.generators import barabasi_albert, watts_strogatz
from repro.schemas import degrees, is_symmetric


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert(100, 3, seed=1)
        # star seed contributes m edges; each later vertex adds m
        expected_edges = 3 + (100 - 4) * 3
        assert g.nnz == 2 * expected_edges

    def test_simple_symmetric_connected(self):
        g = barabasi_albert(80, 2, seed=2)
        assert is_symmetric(g)
        assert g.diag().sum() == 0
        assert (g.values == 1).all()  # no multi-edges
        assert (connected_components(g) == 0).all()

    def test_heavy_tail(self):
        g = barabasi_albert(400, 2, seed=3)
        d = degrees(g)
        assert d.max() > 6 * d.mean()

    def test_deterministic(self):
        assert barabasi_albert(50, 2, seed=7).equal(
            barabasi_albert(50, 2, seed=7))

    def test_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 0)
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)


class TestWattsStrogatz:
    def test_no_rewiring_is_ring_lattice(self):
        g = watts_strogatz(20, 4, 0.0, seed=1)
        d = degrees(g)
        assert (d == 4).all()
        assert g.get(0, 1) == 1 and g.get(0, 2) == 1 and g.get(0, 3) == 0

    def test_edge_count_preserved_under_rewiring(self):
        for p in (0.0, 0.3, 1.0):
            g = watts_strogatz(40, 4, p, seed=2)
            assert g.nnz == 2 * 40 * 2  # n·k/2 undirected edges

    def test_rewiring_shortens_paths(self):
        """Small-world effect: diameter drops with rewiring."""
        from repro.algorithms.traversal import bfs

        ring = watts_strogatz(60, 4, 0.0, seed=3)
        small = watts_strogatz(60, 4, 0.3, seed=3)
        ecc_ring = bfs(ring, 0).max()
        ecc_small = bfs(small, 0).max()
        assert ecc_small < ecc_ring

    def test_simple_symmetric(self):
        g = watts_strogatz(30, 6, 0.5, seed=4)
        assert is_symmetric(g)
        assert g.diag().sum() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(ValueError):
            watts_strogatz(4, 4, 0.1)   # k >= n
        with pytest.raises(ValueError):
            watts_strogatz(10, 2, 1.5)
