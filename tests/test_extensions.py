"""The paper's §IV / future-work extensions: closeness centrality,
symmetry-exploiting triangular multiply, masked-SpGEMM edge support."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.centrality import closeness_centrality
from repro.algorithms.truss import edge_support, edge_support_masked
from repro.generators import cycle_graph, erdos_renyi, path_graph, star_graph
from repro.schemas import edge_list_from_adjacency, incidence_unoriented
from repro.semiring import MIN_PLUS, PLUS_PAIR
from repro.sparse import from_dense, mxm, mxm_triu, symmetric_square_upper, triu
from repro.sparse import zeros


def nx_of(a):
    g = nx.Graph()
    g.add_nodes_from(range(a.nrows))
    g.add_edges_from(map(tuple, edge_list_from_adjacency(a)))
    return g


class TestClosenessCentrality:
    @pytest.mark.parametrize("graph", [path_graph(7), star_graph(8),
                                       cycle_graph(6)],
                             ids=["path", "star", "cycle"])
    def test_structured_vs_networkx(self, graph):
        ours = closeness_centrality(graph)
        ref = nx.closeness_centrality(nx_of(graph))
        assert np.allclose(ours, [ref[i] for i in range(graph.nrows)])

    @pytest.mark.parametrize("seed", range(3))
    def test_disconnected_vs_networkx(self, seed):
        a = erdos_renyi(25, 0.06, seed=seed)  # usually disconnected
        ours = closeness_centrality(a)
        ref = nx.closeness_centrality(nx_of(a))
        assert np.allclose(ours, [ref[i] for i in range(25)])

    def test_weighted_vs_networkx(self, rng):
        n = 15
        upper = np.triu(np.where(rng.random((n, n)) < 0.3,
                                 rng.uniform(1, 5, (n, n)), 0.0), 1)
        dense = upper + upper.T
        a = from_dense(dense)
        ours = closeness_centrality(a, weighted=True)
        g = nx.from_numpy_array(dense)
        ref = nx.closeness_centrality(g, distance="weight")
        assert np.allclose(ours, [ref[i] for i in range(n)])

    def test_isolated_vertices_zero(self):
        assert (closeness_centrality(zeros(4, 4)) == 0).all()

    def test_no_wf_correction(self):
        """Without Wasserman–Faust, a connected pair in a big graph
        scores as if the graph were just that pair."""
        from repro.sparse import from_edges

        a = from_edges(5, [(0, 1)], undirected=True)
        c = closeness_centrality(a, wf_improved=False)
        assert c[0] == pytest.approx(1.0)


class TestMxmTriu:
    def test_matches_triu_of_full_product(self, random_sparse):
        for seed in range(5):
            a, da = random_sparse(7, 7, seed=seed)
            b, db = random_sparse(7, 7, seed=seed + 100)
            for k in (-1, 0, 1, 2):
                ours = mxm_triu(a, b, k=k)
                assert np.allclose(ours.to_dense(), np.triu(da @ db, k))

    def test_semiring_variant(self, random_sparse):
        a, da = random_sparse(6, 6, seed=7)
        ours = mxm_triu(a, a, semiring=MIN_PLUS, k=0)
        full = mxm(a, a, semiring=MIN_PLUS)
        assert ours.equal(triu(full, 0))

    def test_empty_product(self):
        out = mxm_triu(zeros(3, 3), zeros(3, 3))
        assert out.nnz == 0

    def test_dimension_check(self):
        with pytest.raises(ValueError):
            mxm_triu(zeros(2, 3), zeros(4, 4))

    def test_fewer_products_compressed(self, random_sparse):
        """The point of the §IV feature: strictly less reduce work."""
        from repro.sparse.spgemm import expand_products

        a, _ = random_sparse(10, 10, seed=9)
        rows, cols, _, _ = expand_products(a, a)
        below = int((cols < rows).sum())
        assert below > 0  # there *was* lower-triangle work to skip


class TestSymmetricSquareUpper:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_dense_square(self, seed):
        a = erdos_renyi(15, 0.3, seed=seed)
        dense = a.to_dense()
        upper = symmetric_square_upper(a, k=1)
        assert np.allclose(upper.to_dense(), np.triu(dense @ dense, 1))

    def test_with_diagonal(self):
        a = erdos_renyi(12, 0.3, seed=9)
        dense = a.to_dense()
        upper = symmetric_square_upper(a, k=0)
        assert np.allclose(upper.to_dense(), np.triu(dense @ dense, 0))

    def test_requires_symmetric(self):
        from repro.sparse import from_edges

        with pytest.raises(ValueError, match="symmetric"):
            symmetric_square_upper(from_edges(3, [(0, 1)]))


class TestEdgeSupportMasked:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_incidence_support(self, seed):
        """Masked A²⊙A support == the paper's incidence-matrix support."""
        a = erdos_renyi(20, 0.25, seed=seed)
        edges = edge_list_from_adjacency(a)
        e = incidence_unoriented(20, edges)
        s_inc = edge_support(e)
        s_adj = edge_support_masked(a)
        for idx, (u, v) in enumerate(edges):
            assert s_adj.get(int(u), int(v)) == s_inc[idx]

    def test_support_only_on_edge_pattern(self):
        a = cycle_graph(6)
        s = edge_support_masked(a)
        assert s.nnz <= a.nnz

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            edge_support_masked(zeros(2, 3))
