"""Shared fixtures: the paper's Fig 1 graph, RNG, and random-graph helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators.classic import fig1_edges, fig1_graph
from repro.schemas.incidence import incidence_unoriented
from repro.sparse.construct import from_dense


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden", action="store_true", default=False,
        help="rewrite golden fixture files from the current run "
             "instead of comparing against them")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def fig1_adj():
    """Adjacency matrix of the paper's Figure 1 five-vertex graph."""
    return fig1_graph()


@pytest.fixture
def fig1_inc():
    """Unoriented incidence matrix of the Figure 1 graph, in the
    paper's edge order e1..e6."""
    return incidence_unoriented(5, fig1_edges())


@pytest.fixture
def random_sparse(rng):
    """Factory for random sparse matrices (dense mirror returned too)."""

    def make(m, n, density=0.3, low=1, high=5, seed=None):
        r = np.random.default_rng(seed) if seed is not None else rng
        dense = np.where(r.random((m, n)) < density,
                         r.integers(low, high, (m, n)).astype(float), 0.0)
        return from_dense(dense), dense

    return make


def random_symmetric(rng, n, density=0.3):
    """Random simple undirected 0/1 adjacency matrix + dense mirror."""
    upper = np.triu((rng.random((n, n)) < density).astype(float), k=1)
    dense = upper + upper.T
    return from_dense(dense), dense
