"""Cross-process trace stitching: process attribution, edge digests,
orphan detection, and the stitched-file round trip."""

import json

import pytest

from repro.obs.analyze import TraceAnalysis
from repro.obs.stitch import (StitchedTrace, _process_from_path,
                              stitch_files, stitch_records)

T1 = "a" * 32


def header(process, pid=100):
    return {"kind": "header", "process": process, "pid": pid, "ts": 1.0}


def span(name, span_id, parent_id=None, trace_id=T1, start=0.0, dur=0.01,
         **attrs):
    return {"kind": "span", "name": name, "start_s": start,
            "duration_s": dur, "parent": None, "depth": 0,
            "attrs": dict(attrs), "opstats": {},
            "trace_id": trace_id, "span_id": span_id,
            "parent_id": parent_id}


def two_process_sources():
    """A client call whose server handler span lives in another file."""
    return {
        "client": [header("client"),
                   span("bfs", "c" * 16, start=0.0, dur=0.5),
                   span("rpc.client.call", "a" * 16, "c" * 16,
                        start=0.1, dur=0.2, op="scan")],
        "tserver0": [header("tserver0"),
                     span("rpc.server.scan", "b" * 16, "a" * 16,
                          start=0.15, dur=0.1)],
    }


class TestProcessAttribution:
    def test_header_names_the_process(self):
        st = stitch_records({"fallback": [header("tserver7"),
                                          span("x", "1" * 16)]})
        assert st.processes() == ["tserver7"]

    def test_filename_fallback_without_header(self):
        st = stitch_records({"tserver0": [span("x", "1" * 16)]})
        assert st.processes() == ["tserver0"]

    def test_path_stem_parsing(self):
        assert _process_from_path("/tmp/traces/trace.tserver0.jsonl") == \
            "tserver0"
        assert _process_from_path("trace.manager.jsonl") == "manager"
        assert _process_from_path("weird.log") == "weird.log"

    def test_headers_are_kept_but_not_spans(self):
        st = stitch_records(two_process_sources())
        assert len(st.headers) == 2
        assert all(r["kind"] == "span" for r in st.records)


class TestEdges:
    def test_cross_process_edge_found(self):
        st = stitch_records(two_process_sources())
        assert st.cross_process_edges() == [
            ("client", "rpc.client.call", "tserver0", "rpc.server.scan")]
        assert st.edge_summary() == [
            "client/rpc.client.call -> tserver0/rpc.server.scan x1"]

    def test_same_process_edges_excluded(self):
        st = stitch_records(two_process_sources())
        # bfs -> rpc.client.call is client-internal, not cross-process
        assert len(st.cross_process_edges()) == 1

    def test_multiplicity_counted(self):
        sources = two_process_sources()
        sources["tserver0"].append(
            span("rpc.server.scan", "d" * 16, "a" * 16, start=0.3))
        st = stitch_records(sources)
        assert st.edge_summary() == [
            "client/rpc.client.call -> tserver0/rpc.server.scan x2"]

    def test_forest_parents_across_processes(self):
        st = stitch_records(two_process_sources())
        [root] = st.forest()
        assert root.name == "bfs"
        [call] = root.children
        [handler] = call.children
        assert handler.process == "tserver0"
        assert handler.label == "tserver0:rpc.server.scan"

    def test_orphans_detected(self):
        sources = two_process_sources()
        del sources["client"]  # the parent's file went missing
        st = stitch_records(sources)
        assert [r["name"] for r in st.orphan_spans()] == \
            ["rpc.server.scan"]
        st_full = stitch_records(two_process_sources())
        assert st_full.orphan_spans() == []


class TestPartialSampling:
    """Under head sampling, a tail-promoted server span whose client
    half was sampled away is *expected*, not an orphan."""

    def promoted_sources(self):
        sources = two_process_sources()
        del sources["client"]  # client half head-sampled away
        for record in sources["tserver0"]:
            if record["kind"] == "span":
                record["sampled"] = False  # tail-promoted on the server
        return sources

    def test_sampled_out_parent_is_not_an_orphan(self):
        st = stitch_records(self.promoted_sources())
        assert st.orphan_spans() == []
        assert [r["name"] for r in st.sampled_out_parents()] == \
            ["rpc.server.scan"]
        d = st.as_dict()
        assert d["orphans"] == 0 and d["sampled_out_parents"] == 1

    def test_missing_sampled_parent_is_still_an_orphan(self):
        # the record was head-sampled (no "sampled": false marker), so
        # its parent's process made the same decision: a missing parent
        # here means a file or span was genuinely lost
        sources = two_process_sources()
        del sources["client"]
        st = stitch_records(sources)
        assert len(st.orphan_spans()) == 1
        assert st.sampled_out_parents() == []

    def test_resolved_promoted_spans_are_neither(self):
        # both halves promoted: parent resolves, no special category
        sources = two_process_sources()
        for records in sources.values():
            for record in records:
                if record["kind"] == "span":
                    record["sampled"] = False
        st = stitch_records(sources)
        assert st.orphan_spans() == []
        assert st.sampled_out_parents() == []
        assert len(st.cross_process_edges()) == 1


class TestDeterminism:
    def test_order_independent_of_source_order(self):
        a = stitch_records(two_process_sources())
        flipped = dict(reversed(list(two_process_sources().items())))
        b = stitch_records(flipped)
        assert a.records == b.records
        assert a.edge_summary() == b.edge_summary()


class TestRoundTrip:
    def test_written_file_restitches_and_analyzes(self, tmp_path):
        st = stitch_records(two_process_sources())
        out = tmp_path / "stitched.jsonl"
        st.write(str(out))
        lines = [json.loads(line) for line in
                 out.read_text(encoding="utf-8").splitlines()]
        assert lines[0]["kind"] == "stitch_header"
        assert lines[0]["cross_process_edges"] == 1

        ta = TraceAnalysis.load(str(out))
        assert ta.n_spans == 3
        rpc = ta.rpc_breakdown()
        assert rpc["scan"]["server_spans"] == 1
        assert rpc["scan"]["client_s"] == pytest.approx(0.2)

    def test_stitch_files_uses_filenames(self, tmp_path):
        for who, records in two_process_sources().items():
            path = tmp_path / f"trace.{who}.jsonl"
            path.write_text("".join(json.dumps(r) + "\n" for r in records),
                            encoding="utf-8")
        st = stitch_files(sorted(str(p) for p in tmp_path.iterdir()))
        assert st.processes() == ["client", "tserver0"]
        assert len(st.cross_process_edges()) == 1

    def test_summary_dict(self):
        st = stitch_records(two_process_sources())
        d = st.as_dict()
        assert d == {"spans": 3, "traces": 1,
                     "processes": ["client", "tserver0"],
                     "cross_process_edges": 1, "orphans": 0,
                     "sampled_out_parents": 0}
