"""Exposition: Prometheus text format round-trip, snapshots, deltas."""

import json
import math

import pytest

from repro.obs.expose import (SnapshotDelta, parse_prometheus_text,
                              read_snapshot, sanitize_name, split_labels,
                              to_prometheus, write_snapshot)
from repro.obs.metrics import BUCKET_BOUNDS, MetricsRegistry


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("dbsim.table.A.seeks").inc(5)
    reg.counter("dbsim.table.A.entries_read").inc(100)
    reg.counter("dbsim.table.Bdeg.seeks").inc(2)
    reg.gauge("dbsim.server.tserver0.tablets").set(3)
    reg.gauge("spgemm.tiled.peak_expansion").set(16368)
    reg.counter("dbsim.locate.requests").inc(7)
    h = reg.histogram("scan.latency")
    for v in (0.001, 0.01, 0.2):
        h.observe(v)
    return reg


class TestNaming:
    def test_sanitize(self):
        assert sanitize_name("dbsim.locate.requests") == \
            "dbsim_locate_requests"
        assert sanitize_name("9lives") == "_9lives"
        assert sanitize_name("a-b c") == "a_b_c"

    def test_table_scheme_parses_to_labels(self):
        assert split_labels("dbsim.table.A.entries_read") == \
            ("dbsim_table_entries_read", {"table": "A"})
        # dotted table names keep their dots in the label value
        assert split_labels("dbsim.table.my.graph.seeks") == \
            ("dbsim_table_seeks", {"table": "my.graph"})

    def test_server_scheme(self):
        assert split_labels("dbsim.server.tserver0.tablets") == \
            ("dbsim_server_tablets", {"server": "tserver0"})

    def test_unrecognized_names_are_flattened(self):
        assert split_labels("spgemm.tiled.peak_expansion") == \
            ("spgemm_tiled_peak_expansion", {})


class TestToPrometheus:
    def test_round_trips_through_parser(self, registry):
        text = to_prometheus(registry)
        samples = parse_prometheus_text(text)
        assert samples[("repro_dbsim_table_seeks",
                        (("table", "A"),))] == 5
        assert samples[("repro_dbsim_table_seeks",
                        (("table", "Bdeg"),))] == 2
        assert samples[("repro_dbsim_server_tablets",
                        (("server", "tserver0"),))] == 3
        assert samples[("repro_spgemm_tiled_peak_expansion", ())] == 16368
        assert samples[("repro_scan_latency_count", ())] == 3
        assert samples[("repro_scan_latency_sum",
                        ())] == pytest.approx(0.211)
        # +Inf bucket carries the full count
        assert samples[("repro_scan_latency_bucket",
                        (("le", "+Inf"),))] == 3

    def test_histogram_buckets_are_cumulative(self, registry):
        samples = parse_prometheus_text(to_prometheus(registry))
        buckets = sorted(
            (float(dict(labels)["le"]), v)
            for (name, labels), v in samples.items()
            if name == "repro_scan_latency_bucket")
        counts = [v for _, v in buckets]
        assert counts == sorted(counts)  # monotone
        assert counts[-1] == 3
        assert len(buckets) == len(BUCKET_BOUNDS) + 1

    def test_type_lines_present_and_typed(self, registry):
        text = to_prometheus(registry)
        assert "# TYPE repro_dbsim_table_seeks counter" in text
        assert "# TYPE repro_dbsim_server_tablets gauge" in text
        assert "# TYPE repro_scan_latency histogram" in text

    def test_every_line_is_well_formed(self, registry):
        # parse_prometheus_text raises on any malformed line, so this
        # doubles as the format validation required by the issue
        text = to_prometheus(registry)
        assert parse_prometheus_text(text)

    def test_plain_export_dict_input(self, registry):
        text = to_prometheus(registry.export())
        samples = parse_prometheus_text(text)
        assert samples[("repro_dbsim_table_entries_read",
                        (("table", "A"),))] == 100
        # histogram export dicts render as summaries with quantiles
        assert ("repro_scan_latency",
                (("quantile", "0.5"),)) in samples
        assert samples[("repro_scan_latency_count", ())] == 3

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter('dbsim.table.we"ird.seeks').inc(1)
        samples = parse_prometheus_text(to_prometheus(reg))
        assert samples[("repro_dbsim_table_seeks",
                        (("table", 'we"ird'),))] == 1

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestParser:
    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a valid sample"):
            parse_prometheus_text("no spaces here{")

    def test_rejects_bad_comment(self):
        with pytest.raises(ValueError, match="bad comment"):
            parse_prometheus_text("# FOO bar\n")

    def test_inf_values(self):
        samples = parse_prometheus_text('x_bucket{le="+Inf"} 4\n')
        assert samples[("x_bucket", (("le", "+Inf"),))] == 4


class TestSnapshotFile:
    def test_write_read_round_trip(self, tmp_path, registry):
        path = str(tmp_path / "m.json")
        record = write_snapshot(registry, path, extra={"note": "x"})
        loaded = read_snapshot(path)
        assert loaded["metrics"] == json.loads(
            json.dumps(record["metrics"]))
        assert loaded["note"] == "x"
        assert isinstance(loaded["ts"], float)

    def test_read_missing_or_torn_returns_none(self, tmp_path):
        assert read_snapshot(str(tmp_path / "nope.json")) is None
        torn = tmp_path / "torn.json"
        torn.write_text('{"ts": 1.0, "metr')
        assert read_snapshot(str(torn)) is None
        notdict = tmp_path / "nd.json"
        notdict.write_text("[1, 2]")
        assert read_snapshot(str(notdict)) is None

    def test_instance_snapshot_hook(self, tmp_path):
        from repro.dbsim import Connector
        from repro.dbsim.server import Instance

        inst = Instance(n_servers=2, metrics=MetricsRegistry())
        conn = Connector(inst)
        conn.create_table("A")
        with conn.batch_writer("A") as w:
            w.put("r1", "", "q", "1")
        path = str(tmp_path / "snap.json")
        inst.write_metrics_snapshot(path)
        snap = read_snapshot(path)
        assert snap["metrics"]["dbsim.table.A.entries_written"] == 1
        assert "total" in snap and "servers" in snap


class TestSnapshotDelta:
    def test_deltas_and_rates(self):
        before = {"a": 10, "b": 5, "gone": 1}
        after = {"a": 30, "b": 5, "new": 7}
        d = SnapshotDelta(before, after, seconds=2.0)
        # the vanished series clamps to 0 but stays visible, flagged
        assert d.deltas() == {"a": 20, "gone": 0, "new": 7}
        assert d.resets == {"gone"}
        assert d.deltas(nonzero=False)["b"] == 0
        assert d.rates()["a"] == pytest.approx(10.0)
        assert d.as_dict()["seconds"] == 2.0
        assert d.as_dict()["resets"] == ["gone"]

    def test_clamping_can_be_disabled(self):
        d = SnapshotDelta({"gone": 5}, {}, clamp_resets=False)
        assert d.delta("gone") == -5
        assert d.resets == {"gone"}  # still detected, just not clamped
        assert "resets" not in d.as_dict()

    def test_counter_reset_mid_monitor(self):
        # a monitored process restarts between polls: counters drop back
        # toward zero, then climb again.  The restart interval clamps to
        # zero and is flagged; the next interval is normal arithmetic.
        samples = [
            {"net.server.requests": 900},
            {"net.server.requests": 1000},
            {"net.server.requests": 12},     # restarted, recounting
            {"net.server.requests": 40},
        ]
        d01 = SnapshotDelta(samples[0], samples[1], seconds=1.0)
        assert d01.delta("net.server.requests") == 100
        assert not d01.resets
        d12 = SnapshotDelta(samples[1], samples[2], seconds=1.0)
        assert d12.delta("net.server.requests") == 0
        assert d12.resets == {"net.server.requests"}
        assert d12.rates()["net.server.requests"] == 0.0  # never negative
        d23 = SnapshotDelta(samples[2], samples[3], seconds=1.0)
        assert d23.delta("net.server.requests") == 28
        assert not d23.resets

    def test_histogram_dicts_diff_counts(self):
        before = {"h": {"count": 2, "sum": 1.0}}
        after = {"h": {"count": 5, "sum": 9.0}}
        assert SnapshotDelta(before, after).delta("h") == 3

    def test_rates_require_seconds(self):
        with pytest.raises(ValueError, match="seconds"):
            SnapshotDelta({}, {"a": 1}).rates()
