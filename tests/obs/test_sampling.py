"""Head sampling + tail retention: deterministic decisions, sampled
record format, TailBuffer promotion/eviction, counters, configure."""

import json

import pytest

from repro.obs import sampling, trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import (DEFAULT_TAIL_THRESHOLDS,
                                SAMPLING_COUNTERS, TailBuffer)
from repro.obs.trace import InMemorySink, NullSink, TraceContext, span


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    """Every test starts and ends unsampled on a NullSink with fresh
    deterministic ids."""
    sampling.unconfigure()
    trace.disable()
    trace.set_sink(NullSink())
    trace.seed_ids(1234)
    yield
    sampling.unconfigure()
    trace.disable()
    trace.set_sink(NullSink())
    trace.seed_ids(None)


def run_roots(n, rate, seed=1234):
    """n root spans at the given rate; returns [(trace_id, sampled)]."""
    if not trace.is_enabled():
        trace.enable(InMemorySink())
    trace.seed_ids(seed)
    trace.set_sample_rate(rate)
    out = []
    for _ in range(n):
        with span("op") as sp:
            out.append((sp.trace_id, sp.sampled))
    return out


class TestDecision:
    def test_rate_one_records_everything(self):
        assert all(s for _, s in run_roots(50, 1.0))

    def test_rate_zero_records_nothing(self):
        assert not any(s for _, s in run_roots(50, 0.0))

    def test_fraction_tracks_rate(self):
        decisions = [s for _, s in run_roots(400, 0.5)]
        assert 0.35 < sum(decisions) / len(decisions) < 0.65

    def test_decision_is_pure_function_of_trace_id(self):
        a = run_roots(100, 0.3, seed=99)
        b = run_roots(100, 0.3, seed=99)
        assert a == b  # same seed -> same ids -> same decisions

    def test_rate_is_clamped(self):
        assert trace.set_sample_rate(7.5) == 1.0
        assert trace.set_sample_rate(-1.0) == 0.0
        assert trace.set_sample_rate(0.25) == 0.25
        assert trace.get_sample_rate() == 0.25

    def test_children_inherit_the_root_decision(self):
        trace.enable(InMemorySink())
        trace.set_sample_rate(0.5)
        for _ in range(50):
            with span("root") as root:
                with span("child") as child:
                    assert child.sampled == root.sampled
                    assert child.trace_id == root.trace_id

    def test_remote_context_carries_the_decision(self):
        trace.enable(InMemorySink())
        trace.set_sample_rate(0.0)
        ctx = TraceContext("ab" * 16, "cd" * 8, False)
        with trace.activate(ctx):
            with span("server.handler") as sp:
                assert sp.sampled is False
        ctx = TraceContext("ab" * 16, "cd" * 8, True)
        with trace.activate(ctx):
            with span("server.handler") as sp:
                # parent was head-sampled: record it even at local rate 0
                assert sp.sampled is True


class TestSinkRouting:
    def test_only_sampled_spans_reach_the_sink(self):
        sink = InMemorySink()
        trace.enable(sink)
        trace.set_sample_rate(0.5)
        decisions = []
        for _ in range(100):
            with span("op") as sp:
                decisions.append(sp.sampled)
        assert len(sink.spans("op")) == sum(decisions)

    def test_sampled_record_format_is_unchanged(self):
        # byte-compat: sampled records must not grow a "sampled" key,
        # so golden trace fixtures and analyzers keep working
        sink = InMemorySink()
        trace.enable(sink)
        trace.set_sample_rate(1.0)
        with span("op"):
            pass
        [rec] = sink.spans("op")
        assert "sampled" not in rec
        json.dumps(rec)  # and it still serializes

    def test_promoted_record_is_marked(self):
        sink = InMemorySink()
        trace.enable(sink)
        sampling.configure(0.0, registry=MetricsRegistry())
        with pytest.raises(RuntimeError):
            with span("op"):
                raise RuntimeError("boom")
        [rec] = sink.spans("op")
        assert rec["sampled"] is False
        assert rec["error"] == "RuntimeError: boom"


class TestTailBuffer:
    def make(self, **kw):
        kw.setdefault("registry", MetricsRegistry())
        return TailBuffer(**kw)

    def finished_span(self, name="op", error=None, duration=0.0):
        sp = trace.Span(name)
        sp.__enter__()
        sp.sampled = False
        try:
            if error is not None:
                raise error
        except Exception:
            import sys

            sp.__exit__(*sys.exc_info())
        else:
            sp.__exit__(None, None, None)
        if duration:
            sp.duration_s = duration
        return sp

    def test_quiet_spans_are_buffered_not_emitted(self):
        sink = InMemorySink()
        trace.enable(sink)
        tail = self.make()
        tail.record(self.finished_span())
        assert len(tail) == 1
        assert sink.spans() == []

    def test_error_promotes_the_whole_trace(self):
        sink = InMemorySink()
        trace.enable(sink)
        tail = self.make()
        first = self.finished_span("first")
        second = trace.Span("second")
        second.trace_id = first.trace_id
        second.span_id = trace.new_span_id()
        second.sampled = False
        second.start_s = second.duration_s = 0.0
        second.error = "RuntimeError: boom"
        tail.record(first)
        assert sink.spans() == []
        tail.record(second)
        names = [r["name"] for r in sink.spans()]
        assert names == ["first", "second"]  # finish order kept
        assert all(r["sampled"] is False for r in sink.spans())
        assert len(tail) == 0

    def test_slow_span_promotes(self):
        sink = InMemorySink()
        trace.enable(sink)
        tail = self.make(wall_thresholds={"op": 0.01})
        tail.record(self.finished_span(duration=0.5))
        assert [r["name"] for r in sink.spans()] == ["op"]

    def test_later_spans_of_promoted_trace_pass_through(self):
        sink = InMemorySink()
        trace.enable(sink)
        tail = self.make()
        first = self.finished_span(error=RuntimeError("x"))
        tail.record(first)
        late = trace.Span("late")
        late.trace_id = first.trace_id
        late.span_id = trace.new_span_id()
        late.sampled = False
        late.start_s = late.duration_s = 0.0
        tail.record(late)
        assert [r["name"] for r in sink.spans()] == ["op", "late"]
        assert len(tail) == 0  # passthrough never re-buffers

    def test_capacity_evicts_oldest_whole_trace(self):
        registry = MetricsRegistry()
        tail = self.make(capacity=3, registry=registry)
        spans = [self.finished_span(f"s{i}") for i in range(4)]
        for sp in spans:
            tail.record(sp)
        assert len(tail) == 3
        assert spans[0].trace_id not in tail.pending_traces()
        assert registry.export()["obs.tail_evictions"] == 1

    def test_default_thresholds_cover_rpc(self):
        assert DEFAULT_TAIL_THRESHOLDS["rpc.*"] == 0.25


class TestConfigure:
    def test_counters_preregistered_at_zero(self):
        registry = MetricsRegistry()
        sampling.configure(0.5, registry=registry)
        export = registry.export()
        for name in SAMPLING_COUNTERS:
            assert export[name] == 0

    def test_decision_counters_move(self):
        registry = MetricsRegistry()
        sampling.configure(0.5, registry=registry)
        run = [s for _, s in run_roots(60, 0.5)]
        export = registry.export()
        assert export["obs.sampled_traces"] == sum(run)
        assert export["obs.unsampled_traces"] == len(run) - sum(run)

    def test_unconfigure_restores_always_on(self):
        sampling.configure(0.0, registry=MetricsRegistry())
        assert sampling.active_tail() is not None
        sampling.unconfigure()
        assert sampling.active_tail() is None
        assert trace.get_sample_rate() == 1.0
        with span("op") as sp:
            assert sp.sampled is True

    def test_reconfigure_replaces_tail(self):
        a = sampling.configure(0.5, registry=MetricsRegistry())
        b = sampling.configure(0.1, registry=MetricsRegistry())
        assert sampling.active_tail() is b and a is not b
