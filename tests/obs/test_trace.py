"""Span tracing core: enable/disable, sinks, nesting, OpStats deltas."""

import json
import threading

import pytest

from repro.dbsim.stats import OpStats
from repro.obs import trace
from repro.obs.trace import (InMemorySink, JSONLSink, NullSink, Span,
                             current_span, span)


@pytest.fixture(autouse=True)
def _clean_tracing():
    """Every test starts and ends with tracing off on a NullSink."""
    trace.disable()
    trace.set_sink(NullSink())
    yield
    trace.disable()
    trace.set_sink(NullSink())


class TestSwitch:
    def test_disabled_by_default(self):
        assert not trace.is_enabled()

    def test_disabled_span_is_shared_noop(self):
        s1 = span("a", rows=3)
        s2 = span("b")
        assert s1 is s2  # one shared object, nothing allocated
        with s1 as sp:
            assert sp.set(x=1) is sp  # set() is a no-op that chains

    def test_enable_installs_memory_sink_by_default(self):
        sink = trace.enable()
        assert isinstance(sink, InMemorySink)
        assert trace.is_enabled()

    def test_enable_keeps_existing_non_null_sink(self):
        mine = InMemorySink()
        trace.set_sink(mine)
        assert trace.enable() is mine

    def test_emit_dropped_when_disabled(self):
        sink = InMemorySink()
        trace.set_sink(sink)
        trace.emit({"kind": "x"})
        assert len(sink) == 0
        trace.enable()
        trace.emit({"kind": "x"})
        assert len(sink) == 1

    def test_set_sink_returns_previous(self):
        first = InMemorySink()
        old = trace.set_sink(first)
        assert isinstance(old, NullSink)
        assert trace.set_sink(NullSink()) is first


class TestSpan:
    def test_records_name_duration_attrs(self):
        sink = trace.enable(InMemorySink())
        with span("work", rows=5) as sp:
            sp.set(nnz_out=7)
        [rec] = sink.spans("work")
        assert rec["kind"] == "span"
        assert rec["duration_s"] >= 0
        assert rec["attrs"] == {"rows": 5, "nnz_out": 7}
        assert rec["parent"] is None and rec["depth"] == 0

    def test_nesting_parent_and_depth(self):
        sink = trace.enable(InMemorySink())
        with span("outer"):
            assert current_span().name == "outer"
            with span("inner"):
                assert current_span().name == "inner"
        assert current_span() is None
        inner, outer = sink.records  # inner closes (and emits) first
        assert inner["name"] == "inner"
        assert inner["parent"] == "outer" and inner["depth"] == 1
        assert outer["parent"] is None and outer["depth"] == 0

    def test_opstats_delta_from_object(self):
        sink = trace.enable(InMemorySink())
        stats = OpStats(seeks=10, entries_read=100)
        with span("scan", stats=stats):
            stats.seeks += 2
            stats.entries_read += 30
        [rec] = sink.spans("scan")
        assert rec["opstats"]["seeks"] == 2
        assert rec["opstats"]["entries_read"] == 30
        assert rec["opstats"]["entries_written"] == 0

    def test_opstats_delta_from_callable(self):
        # mirrors Instance.total_stats: a fresh merged snapshot per call
        sink = trace.enable(InMemorySink())
        backing = OpStats()
        with span("op", stats=lambda: backing):
            backing.flushes += 1
        [rec] = sink.spans("op")
        assert rec["opstats"]["flushes"] == 1

    def test_no_stats_source_reports_zeros(self):
        sink = trace.enable(InMemorySink())
        with span("pure"):
            pass
        [rec] = sink.spans("pure")
        assert rec["opstats"] == {"seeks": 0, "entries_read": 0,
                                  "entries_written": 0, "flushes": 0,
                                  "compactions": 0}

    def test_error_captured_and_exception_propagates(self):
        sink = trace.enable(InMemorySink())
        with pytest.raises(ValueError, match="boom"):
            with span("bad"):
                raise ValueError("boom")
        [rec] = sink.spans("bad")
        assert rec["error"] == "ValueError: boom"

    def test_opstats_fields_match_dbsim(self):
        # trace.py duplicates the field list to stay import-free; make
        # sure it cannot drift from the real OpStats dataclass
        assert set(trace.OPSTATS_FIELDS) == set(OpStats().as_dict())

    def test_threads_nest_independently(self):
        trace.enable(InMemorySink())
        seen = {}

        def worker():
            with span("t2"):
                seen["depth"] = current_span().depth

        with span("t1"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["depth"] == 0  # other thread's stack was empty


class TestSinks:
    def test_in_memory_filter_and_clear(self):
        sink = InMemorySink()
        sink.emit({"kind": "span", "name": "a"})
        sink.emit({"kind": "convergence", "name": "a"})
        sink.emit({"kind": "span", "name": "b"})
        assert len(sink.spans()) == 2
        assert [r["name"] for r in sink.spans("b")] == ["b"]
        sink.clear()
        assert len(sink) == 0

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JSONLSink(str(path))
        trace.enable(sink)
        with span("one", idx=1):
            pass
        trace.disable(close=True)
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        rec = json.loads(lines[0])
        assert rec["name"] == "one" and rec["attrs"] == {"idx": 1}

    def test_jsonl_appends(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for _ in range(2):
            sink = JSONLSink(str(path))
            sink.emit({"kind": "span"})
            sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_jsonl_lazy_open(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JSONLSink(str(path))
        sink.close()  # no emit -> file never created
        assert not path.exists()

    def test_jsonl_batches_until_flush_every(self, tmp_path):
        """Records buffer in memory until the batch bound, then land on
        disk in one write — the per-record open/flush is gone."""
        path = tmp_path / "t.jsonl"
        sink = JSONLSink(str(path), flush_every=3)
        sink.emit({"kind": "span", "name": "a"})
        sink.emit({"kind": "span", "name": "b"})
        assert not path.exists()  # still buffered
        sink.emit({"kind": "span", "name": "c"})  # hits the bound
        lines = path.read_text().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["a", "b", "c"]
        sink.close()

    def test_jsonl_explicit_flush(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JSONLSink(str(path), flush_every=64)
        sink.flush()  # nothing emitted yet: stays lazy, no file
        assert not path.exists()
        sink.emit({"kind": "span", "name": "a"})
        assert not path.exists()
        sink.flush()
        assert [json.loads(l)["name"]
                for l in path.read_text().splitlines()] == ["a"]
        sink.close()

    def test_jsonl_close_flushes_partial_batch(self, tmp_path):
        """An interrupted run still leaves a complete trace: every exit
        path closes the sink, and close drains the buffer."""
        path = tmp_path / "t.jsonl"
        sink = JSONLSink(str(path), flush_every=64)
        sink.emit({"kind": "span", "name": "a"})
        sink.emit({"kind": "span", "name": "b"})
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["a", "b"]


class TestInstrumentedCallSites:
    """The kernel/dbsim hot paths emit spans when (and only when) on."""

    def test_mxm_disabled_emits_nothing(self):
        from repro.generators import fig1_graph
        from repro.sparse.spgemm import mxm

        sink = InMemorySink()
        trace.set_sink(sink)
        a = fig1_graph()
        mxm(a, a)
        assert len(sink) == 0

    def test_mxm_span(self):
        from repro.generators import fig1_graph
        from repro.sparse.spgemm import mxm

        sink = trace.enable(InMemorySink())
        a = fig1_graph()
        c = mxm(a, a)
        [rec] = sink.spans("kernel.spgemm")
        assert rec["attrs"]["rows"] == a.nrows
        assert rec["attrs"]["nnz_out"] == c.nnz
        assert rec["attrs"]["semiring"] == "plus_times"

    def test_spmv_spans(self):
        import numpy as np

        from repro.generators import fig1_graph
        from repro.sparse.spmv import mxv, vxm

        sink = trace.enable(InMemorySink())
        a = fig1_graph()
        x = np.ones(a.ncols)
        mxv(a, x)
        vxm(np.ones(a.nrows), a)
        assert len(sink.spans("kernel.spmv")) == 1
        assert len(sink.spans("kernel.vxm")) == 1

    def test_table_mult_span_carries_opstats(self):
        from repro.assoc import AssocArray
        from repro.dbsim import (Connector, Instance, assoc_to_table,
                                 table_mult)
        from repro.obs.metrics import MetricsRegistry

        sink = trace.enable(InMemorySink())
        conn = Connector(Instance(n_servers=1, metrics=MetricsRegistry()))
        a = AssocArray.from_triples(["r1", "r1", "r2"], ["x", "y", "x"],
                                    [1.0, 2.0, 3.0])
        assoc_to_table(conn, a, "A")
        table_mult(conn, "A", "A", "C")
        [rec] = sink.spans("graphulo.table_mult")
        assert rec["opstats"]["entries_read"] > 0
        assert rec["opstats"]["entries_written"] > 0

    def test_tablet_flush_and_compact_spans(self):
        from repro.dbsim.key import Key, Range
        from repro.dbsim.tablet import Tablet

        sink = trace.enable(InMemorySink())
        t = Tablet(Range())
        t.write(Key("a", "", "q"), "1")
        t.flush()
        t.write(Key("b", "", "q"), "1")
        t.flush()
        t.compact()
        flushes = sink.spans("tablet.flush")
        assert len(flushes) == 2
        assert all(f["opstats"]["flushes"] == 1 for f in flushes)
        [comp] = sink.spans("tablet.compact")
        assert comp["opstats"]["compactions"] == 1
        assert comp["attrs"]["entries_out"] == 2
