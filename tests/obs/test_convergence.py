"""Convergence telemetry: the log itself and the algorithm hook-ups."""

import numpy as np
import pytest

from repro.generators import fig1_graph, rmat_graph
from repro.obs import trace
from repro.obs.convergence import ConvergenceLog, ConvergenceRecord
from repro.obs.trace import InMemorySink, NullSink


@pytest.fixture(autouse=True)
def _clean_tracing():
    trace.disable()
    trace.set_sink(NullSink())
    yield
    trace.disable()
    trace.set_sink(NullSink())


class TestConvergenceLog:
    def test_record_and_views(self):
        log = ConvergenceLog("alg")
        log.record(1, 0.5)
        log.record(2, 0.25, step_norm=1.0)
        assert len(log) == 2 and log.iterations == 2
        assert log.residuals == [0.5, 0.25]
        assert log.last_residual == 0.25
        assert log.records[1].extra == {"step_norm": 1.0}

    def test_empty_log(self):
        log = ConvergenceLog()
        assert log.last_residual is None
        assert log.is_monotone()  # vacuously
        assert not log.converged

    def test_is_monotone(self):
        log = ConvergenceLog()
        for i, r in enumerate([3.0, 2.0, 2.0, 1.0]):
            log.record(i, r)
        assert log.is_monotone()
        assert not log.is_monotone(strict=True)
        log.record(5, 4.0)
        assert not log.is_monotone()

    def test_as_dicts_tagged(self):
        log = ConvergenceLog("pr")
        log.record(1, 0.5, extra_key=7)
        [d] = log.as_dicts()
        assert d == {"kind": "convergence", "name": "pr", "iteration": 1,
                     "residual": 0.5, "extra_key": 7}

    def test_emit_goes_to_trace_sink_only_when_enabled(self):
        sink = InMemorySink()
        trace.set_sink(sink)
        log = ConvergenceLog("x")
        log.record(1, 1.0)
        log.emit()
        assert len(sink) == 0
        trace.enable()
        log.emit()
        assert len(trace.get_sink()) == 1

    def test_repr(self):
        log = ConvergenceLog("pr")
        log.record(1, 0.125)
        assert "pr" in repr(log) and "1.250e-01" in repr(log)

    def test_record_dataclass(self):
        r = ConvergenceRecord(3, 0.1, {"a": 1})
        assert r.as_dict() == {"iteration": 3, "residual": 0.1, "a": 1}


class TestAlgorithmHookups:
    """Each iterative algorithm records a sensible trajectory without
    its signature or return value changing."""

    def test_pagerank_residuals_decrease(self):
        from repro.algorithms import pagerank

        a = rmat_graph(6, seed=0)
        log = ConvergenceLog("pagerank")
        pr = pagerank(a, log=log)
        pr_plain = pagerank(a)
        np.testing.assert_allclose(pr, pr_plain)
        assert log.iterations >= 2
        assert log.is_monotone(strict=True)
        assert log.converged

    def test_eigenvector_log(self):
        from repro.algorithms import eigenvector_centrality

        log = ConvergenceLog("eig")
        eigenvector_centrality(fig1_graph(), log=log)
        assert log.iterations >= 1
        assert log.last_residual < 1e-8
        assert log.converged

    def test_katz_log(self):
        from repro.algorithms import katz_centrality

        log = ConvergenceLog("katz")
        katz_centrality(fig1_graph(), log=log)
        assert log.iterations >= 1
        assert log.converged

    def test_newton_schulz_log(self):
        from repro.algorithms.inverse import newton_schulz_inverse_dense

        m = np.array([[4.0, 1.0], [1.0, 3.0]])
        log = ConvergenceLog("ns")
        inv, its = newton_schulz_inverse_dense(m, log=log)
        assert log.iterations == its
        assert log.last_residual < 1e-6
        assert log.converged

    def test_nmf_log_matches_errors(self):
        from repro.algorithms.nmf import nmf
        from repro.sparse import from_coo

        rng = np.random.default_rng(0)
        rows, cols = np.nonzero(rng.random((12, 9)) < 0.5)
        a = from_coo(12, 9, rows, cols, np.ones(len(rows)))
        log = ConvergenceLog("nmf")
        res = nmf(a, k=3, seed=0, log=log)
        assert log.residuals == pytest.approx(list(res.errors))
        assert log.converged == res.converged

    def test_ktruss_log_counts_peeled_edges(self):
        from repro.algorithms import ktruss
        from repro.generators import fig1_edges
        from repro.schemas import incidence_unoriented

        e = incidence_unoriented(5, fig1_edges())
        log = ConvergenceLog("ktruss")
        kept = ktruss(e, 3, log=log)
        assert log.iterations == 1  # single peel round drops edge e6
        assert log.records[0].residual == 1.0
        assert log.records[0].extra["edges_remaining"] == kept.nrows == 5
        assert log.converged
