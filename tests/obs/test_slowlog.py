"""Slow-op log: threshold matching, sink attachment, ring buffer."""

import json

import pytest

from repro.dbsim.stats import OpStats
from repro.obs import InMemorySink, trace
from repro.obs.slowlog import (DEFAULT_OPSTATS_BUDGETS,
                               DEFAULT_WALL_THRESHOLDS, SlowLog)


def span_record(name, duration=0.0, opstats=None, **attrs):
    return {"kind": "span", "name": name, "start_s": 1.0,
            "duration_s": duration, "depth": 0, "parent": None,
            "attrs": attrs,
            "opstats": {"seeks": 0, "entries_read": 0,
                        "entries_written": 0, "flushes": 0,
                        "compactions": 0, **(opstats or {})}}


@pytest.fixture(autouse=True)
def clean_trace():
    yield
    trace.disable()
    trace.set_sink(trace.NullSink())


class TestCheck:
    def test_wall_threshold(self):
        log = SlowLog(wall_thresholds={"kernel.*": 0.05},
                      opstats_budgets={})
        assert log.check(span_record("kernel.spgemm", duration=0.04)) is None
        slow = log.check(span_record("kernel.spgemm", duration=0.2))
        assert slow is not None
        assert slow["kind"] == "slow_op"
        assert "threshold 0.05s" in slow["reasons"][0]
        assert (log.checked, log.caught) == (2, 1)

    def test_opstats_budget(self):
        log = SlowLog(wall_thresholds={},
                      opstats_budgets={"dbsim.*": {"seeks": 10,
                                                   "entries_read": 1000}})
        ok = span_record("dbsim.batch_scan", opstats={"seeks": 10})
        assert log.check(ok) is None  # at the budget is fine
        slow = log.check(span_record("dbsim.batch_scan",
                                     opstats={"seeks": 42,
                                              "entries_read": 2000}))
        assert slow["reasons"] == ["entries_read 2000 > budget 1000",
                                   "seeks 42 > budget 10"]
        assert slow["opstats"]["seeks"] == 42

    def test_exact_name_beats_glob(self):
        log = SlowLog(wall_thresholds={"kernel.*": 10.0,
                                       "kernel.spmv": 0.01},
                      opstats_budgets={})
        assert log.check(span_record("kernel.spmv", duration=0.5))
        assert log.check(span_record("kernel.spgemm", duration=0.5)) is None

    def test_longest_glob_wins(self):
        log = SlowLog(wall_thresholds={"*": 10.0, "kernel.*": 0.01},
                      opstats_budgets={})
        assert log.check(span_record("kernel.spmv", duration=0.5))
        assert log.check(span_record("other", duration=0.5)) is None

    def test_unmatched_and_non_span_pass(self):
        log = SlowLog(wall_thresholds={"kernel.*": 0.01},
                      opstats_budgets={})
        assert log.check(span_record("dbsim.scan", duration=9.0)) is None
        assert log.check({"kind": "convergence", "name": "pagerank"}) is None

    def test_defaults_applied_when_nothing_given(self):
        log = SlowLog()
        assert log.wall_thresholds == DEFAULT_WALL_THRESHOLDS
        assert log.opstats_budgets == DEFAULT_OPSTATS_BUDGETS
        # explicit empty tables disable everything
        assert SlowLog(wall_thresholds={}).opstats_budgets == {}

    def test_error_is_carried(self):
        log = SlowLog(wall_thresholds={"*": 0.01}, opstats_budgets={})
        rec = span_record("x", duration=1.0)
        rec["error"] = "ValueError: boom"
        assert log.check(rec)["error"] == "ValueError: boom"


class TestRingBuffer:
    def test_capacity_bounds_entries(self):
        log = SlowLog(wall_thresholds={"*": 0.0}, opstats_budgets={},
                      capacity=3)
        for i in range(10):
            log.check(span_record(f"s{i}", duration=1.0))
        assert len(log) == 3
        assert [e["name"] for e in log.entries] == ["s7", "s8", "s9"]
        assert log.caught == 10


class TestAttachment:
    def test_catches_injected_opstats_budget_overrun(self, tmp_path):
        """The acceptance path: a live span whose OpStats delta blows
        the budget lands in the ring buffer and the JSONL file."""
        out = tmp_path / "slow.jsonl"
        sink = InMemorySink()
        trace.enable(sink)
        log = SlowLog(opstats_budgets={"dbsim.*": {"seeks": 10}},
                      wall_thresholds={}, path=str(out)).attach()
        stats = OpStats()
        with trace.span("dbsim.batch_scan", stats=stats, table="A"):
            stats.seeks += 50          # injected budget overrun
            stats.entries_read += 5
        with trace.span("dbsim.batch_scan", stats=stats):
            pass                       # delta is zero: within budget
        log.detach()

        assert log.caught == 1
        (entry,) = log.entries
        assert entry["name"] == "dbsim.batch_scan"
        assert entry["reasons"] == ["seeks 50 > budget 10"]
        assert entry["attrs"]["table"] == "A"
        # the offence also landed in the JSONL file, one object per line
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert len(lines) == 1 and lines[0]["kind"] == "slow_op"
        # ... and the original sink still received every span
        assert len(sink.spans("dbsim.batch_scan")) == 2

    def test_detach_restores_sink(self):
        sink = InMemorySink()
        trace.enable(sink)
        log = SlowLog().attach()
        assert trace.get_sink() is not sink
        log.detach()
        assert trace.get_sink() is sink

    def test_double_attach_raises(self):
        trace.enable(InMemorySink())
        log = SlowLog().attach()
        try:
            with pytest.raises(RuntimeError, match="already attached"):
                log.attach()
        finally:
            log.detach()
