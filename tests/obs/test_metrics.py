"""Metrics registry: instruments, get-or-create semantics, export."""

import threading

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               global_registry)


class TestCounter:
    def test_inc(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.export() == 5

    def test_rejects_negative(self):
        c = Counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_thread_safety(self):
        c = Counter("c")

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("g")
        g.set(10)
        g.add(-3)
        assert g.value == 7
        assert g.export() == 7

    def test_set_max_high_water_mark(self):
        g = Gauge("peak")
        g.set_max(5)
        g.set_max(3)   # lower: ignored
        assert g.value == 5
        g.set_max(11)
        assert g.value == 11


class TestHistogram:
    def test_empty_export(self):
        h = Histogram("h")
        assert h.export() == {"count": 0, "sum": 0.0, "min": 0.0,
                              "max": 0.0, "mean": 0.0, "p50": 0.0,
                              "p95": 0.0, "p99": 0.0}

    def test_summary(self):
        h = Histogram("h")
        for v in (2.0, 4.0, 6.0):
            h.observe(v)
        out = h.export()
        assert out["count"] == 3
        assert out["sum"] == 12.0
        assert out["min"] == 2.0 and out["max"] == 6.0
        assert out["mean"] == pytest.approx(4.0)

    def test_bucket_counts_are_cumulative_and_complete(self):
        from repro.obs.metrics import BUCKET_BOUNDS

        h = Histogram("h")
        for v in (0.0005, 0.02, 0.02, 150.0):
            h.observe(v)
        bounds, cumulative = h.bucket_counts()
        assert bounds == BUCKET_BOUNDS
        assert len(cumulative) == len(bounds) + 1
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == 4

    def test_overflow_lands_in_inf_bucket(self):
        from repro.obs.metrics import BUCKET_BOUNDS

        h = Histogram("h")
        h.observe(BUCKET_BOUNDS[-1] * 10)  # beyond the largest bound
        _, cumulative = h.bucket_counts()
        assert cumulative[-2] == 0 and cumulative[-1] == 1

    def test_percentiles_are_clamped_estimates(self):
        h = Histogram("h")
        for _ in range(100):
            h.observe(0.01)
        out = h.export()
        # every observation identical -> estimates collapse to it
        assert out["p50"] == pytest.approx(0.01)
        assert out["p99"] == pytest.approx(0.01)
        assert out["min"] <= out["p50"] <= out["p95"] <= out["p99"] \
            <= out["max"]

    def test_percentiles_order_with_spread_data(self):
        h = Histogram("h")
        for v in [0.001] * 90 + [1.0] * 10:
            h.observe(v)
        out = h.export()
        assert out["p50"] < out["p95"]
        assert out["p50"] == pytest.approx(0.001, rel=0.5)
        assert 0.001 < out["p99"] <= 1.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_export_is_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.gauge("a.level").set(1.5)
        reg.histogram("c.lat").observe(0.25)
        out = reg.export()
        assert list(out) == ["a.level", "b.count", "c.lat"]
        assert out["b.count"] == 2
        assert out["c.lat"]["count"] == 1

    def test_names_len_contains(self):
        reg = MetricsRegistry()
        reg.counter("one")
        reg.counter("two")
        assert reg.names() == ["one", "two"]
        assert len(reg) == 2
        assert "one" in reg and "zero" not in reg

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.export() == {}
        assert reg.counter("x").value == 0

    def test_global_registry_is_singleton(self):
        assert global_registry() is global_registry()
