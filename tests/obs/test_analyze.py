"""Trace analyzer: tree reconstruction, rollups, critical path,
flamegraph export — verified bit-exactly against checked-in goldens."""

import json
import math
import os

import pytest

from repro.obs import InMemorySink, trace
from repro.obs.analyze import (SpanNode, TraceAnalysis, build_tree,
                               critical_path, folded_stacks, percentile,
                               read_records, rollup)

DATA = os.path.join(os.path.dirname(__file__), "data")
GOLDEN_TRACE = os.path.join(DATA, "golden_trace.jsonl")
GOLDEN_ANALYSIS = os.path.join(DATA, "golden_analysis.json")
GOLDEN_FOLDED = os.path.join(DATA, "golden_trace.folded")


def span_record(name, start, duration, depth=0, parent=None, attrs=None,
                opstats=None, error=None):
    rec = {"kind": "span", "name": name, "start_s": start,
           "duration_s": duration, "depth": depth, "parent": parent,
           "attrs": attrs or {},
           "opstats": {"seeks": 0, "entries_read": 0, "entries_written": 0,
                       "flushes": 0, "compactions": 0, **(opstats or {})}}
    if error:
        rec["error"] = error
    return rec


class TestReadRecords:
    def test_from_path_skips_blank_lines(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"kind": "span", "name": "a"}\n\n'
                     '{"kind": "convergence"}\n')
        records = read_records(str(p))
        assert len(records) == 2

    def test_malformed_line_names_lineno(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"kind": "span"}\nnot json\n')
        with pytest.raises(ValueError, match=r":2: invalid trace line"):
            read_records(str(p))

    def test_from_sink_and_iterable(self):
        sink = InMemorySink()
        trace.enable(sink)
        try:
            with trace.span("a"):
                with trace.span("b"):
                    pass
        finally:
            trace.disable()
        assert len(read_records(sink)) == 2
        assert read_records([{"kind": "span"}]) == [{"kind": "span"}]


class TestPercentile:
    def test_nearest_rank_is_exact(self):
        vals = [0.1, 0.2, 0.3, 0.4]
        assert percentile(vals, 50) == 0.2
        assert percentile(vals, 75) == 0.3
        assert percentile(vals, 95) == 0.4
        assert percentile(vals, 100) == 0.4
        assert percentile([7.0], 50) == 7.0
        assert percentile([], 50) == 0.0

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestBuildTree:
    def test_post_order_reconstruction(self):
        records = [
            span_record("child", 1.0, 0.2, depth=1, parent="root"),
            span_record("child", 1.3, 0.3, depth=1, parent="root"),
            span_record("root", 1.0, 1.0),
        ]
        roots = build_tree(records)
        assert len(roots) == 1
        root = roots[0]
        assert [c.name for c in root.children] == ["child", "child"]
        assert root.self_s == pytest.approx(0.5)

    def test_repeated_parents_claim_own_children(self):
        records = [
            span_record("c", 1.0, 0.1, depth=1, parent="r"),
            span_record("r", 1.0, 0.2),
            span_record("c", 2.0, 0.1, depth=1, parent="r"),
            span_record("r", 2.0, 0.2),
        ]
        roots = build_tree(records)
        assert len(roots) == 2
        assert all(len(r.children) == 1 for r in roots)

    def test_orphans_become_roots(self):
        # the parent never closed (interrupted run)
        records = [span_record("c", 1.0, 0.1, depth=1, parent="r")]
        roots = build_tree(records)
        assert [r.name for r in roots] == ["c"]

    def test_non_span_records_ignored(self):
        records = [{"kind": "convergence", "name": "x"},
                   span_record("a", 1.0, 0.1)]
        assert len(build_tree(records)) == 1

    def test_grandchildren_nest(self):
        records = [
            span_record("gc", 1.0, 0.1, depth=2, parent="c"),
            span_record("c", 1.0, 0.2, depth=1, parent="r"),
            span_record("r", 1.0, 0.4),
        ]
        (root,) = build_tree(records)
        assert root.children[0].children[0].name == "gc"
        assert root.children[0].self_s == pytest.approx(0.1)


class TestRollup:
    def test_opstats_sum_and_errors(self):
        records = [
            span_record("s", 1.0, 0.1, opstats={"seeks": 3}),
            span_record("s", 2.0, 0.2, opstats={"seeks": 4},
                        error="ValueError: x"),
        ]
        agg = rollup(build_tree(records))["s"]
        assert agg.count == 2
        assert agg.errors == 1
        assert agg.opstats["seeks"] == 7
        assert agg.total_s == pytest.approx(0.3)


class TestCriticalPath:
    def test_descends_heaviest_child(self):
        records = [
            span_record("light", 1.0, 0.1, depth=1, parent="r"),
            span_record("leaf", 1.2, 0.3, depth=2, parent="heavy"),
            span_record("heavy", 1.2, 0.4, depth=1, parent="r"),
            span_record("r", 1.0, 1.0),
        ]
        (root,) = build_tree(records)
        assert [n.name for n in critical_path(root)] == \
            ["r", "heavy", "leaf"]

    def test_tie_goes_to_earliest_start(self):
        records = [
            span_record("b", 1.5, 0.2, depth=1, parent="r"),
            span_record("a", 1.0, 0.2, depth=1, parent="r"),
            span_record("r", 1.0, 1.0),
        ]
        (root,) = build_tree(records)
        assert [n.name for n in critical_path(root)][1] == "a"


class TestGolden:
    """The acceptance fixture: exact rollup, critical path, and folded
    stacks for a checked-in trace."""

    def test_analysis_matches_golden_bit_exactly(self):
        ta = TraceAnalysis.load(GOLDEN_TRACE)
        produced = json.loads(json.dumps(ta.as_dict()))
        with open(GOLDEN_ANALYSIS) as fh:
            expected = json.load(fh)
        assert produced == expected

    def test_folded_stacks_match_golden(self):
        ta = TraceAnalysis.load(GOLDEN_TRACE)
        with open(GOLDEN_FOLDED) as fh:
            expected = fh.read().splitlines()
        assert ta.folded_stacks() == expected

    def test_hand_computed_anchors(self):
        """Independent spot checks so the golden file can't drift to
        encode a regression."""
        ta = TraceAnalysis.load(GOLDEN_TRACE)
        assert ta.n_records == 6 and ta.n_spans == 5
        bfs = ta.rollups["graphulo.table_bfs"]
        # 0.5s total minus the two children (0.01 + 0.03)
        assert bfs.self_s == pytest.approx(0.46)
        assert bfs.opstats["entries_read"] == 100
        spgemm = ta.rollups["kernel.spgemm"]
        assert (spgemm.count, spgemm.errors) == (2, 1)
        assert spgemm.p50 == 0.1 and spgemm.p95 == 0.2
        path = ta.critical_path()
        assert [n.name for n in path] == \
            ["graphulo.table_bfs", "dbsim.batch_scan"]
        # heaviest rollup first
        assert ta.top(1)[0].name == "graphulo.table_bfs"

    def test_live_trace_round_trips_through_analyzer(self):
        """Spans captured from the real tracer analyze consistently."""
        sink = InMemorySink()
        trace.enable(sink)
        try:
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
                with trace.span("inner"):
                    pass
        finally:
            trace.disable()
        ta = TraceAnalysis(sink.records)
        assert len(ta.roots) == 1
        assert ta.rollups["inner"].count == 2
        outer = ta.rollups["outer"]
        assert outer.total_s >= ta.rollups["inner"].total_s
        assert outer.self_s >= 0.0
        stacks = ta.folded_stacks()
        assert any(line.startswith("outer;inner ") for line in stacks)
