"""SLO health plane: spec validation, p99/error-budget evaluation,
windowed burn rates, report rendering, and spec-file loading."""

import json

import pytest

from repro.obs.expose import SnapshotDelta
from repro.obs.health import (DEFAULT_SLOS, HealthReport, SLOSpec,
                              breaches_for, check_component, evaluate,
                              load_slos)


def export(p99_queue=0.01, p99_service=0.02, requests=100, errors=0):
    return {
        "net.server.requests": requests,
        "net.server.errors": errors,
        "net.server.queue_seconds": {"count": 10, "p99": p99_queue},
        "net.server.service_seconds": {"count": 10, "p99": p99_service},
    }


class TestSLOSpec:
    def test_from_dict_round_trip(self):
        spec = SLOSpec.from_dict({"name": "x", "histogram": "h",
                                  "p99_target_s": 0.1})
        assert spec.name == "x" and spec.p99_target_s == 0.1
        assert spec.as_dict() == {"name": "x", "histogram": "h",
                                  "p99_target_s": 0.1}

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            SLOSpec.from_dict({"name": "x", "p99": 0.1})

    def test_objective_required(self):
        with pytest.raises(ValueError, match="no objective"):
            SLOSpec.from_dict({"name": "x"})

    def test_p99_needs_histogram(self):
        with pytest.raises(ValueError, match="histogram"):
            SLOSpec.from_dict({"name": "x", "p99_target_s": 0.1})


class TestEvaluate:
    def test_healthy_cluster_is_ok(self):
        report = evaluate({"manager": export(),
                           "servers": {"ts0": export()}})
        assert report.ok and report.breaches() == []
        assert report.component_status() == {"manager": "ok", "ts0": "ok"}

    def test_p99_breach_detected(self):
        report = evaluate({"servers": {"ts0": export(p99_queue=5.0)}})
        [breach] = report.breaches()
        assert breach.slo == "rpc.queue.p99" and breach.component == "ts0"
        assert report.component_status()["ts0"] == "breach"

    def test_error_budget_breach_detected(self):
        report = evaluate({"servers": {"ts0": export(requests=100,
                                                     errors=50)}})
        [breach] = report.breaches()
        assert breach.slo == "rpc.errors"
        assert breach.value == pytest.approx(0.5)

    def test_flat_shape_accepted(self):
        # _sample_cluster() returns {component: export} with no nesting
        report = evaluate({"manager": export(), "tserver0": export()})
        assert sorted(report.component_status()) == ["manager", "tserver0"]

    def test_windowed_burn_rate_forgives_old_errors(self):
        # cumulatively over budget, but clean in the window -> ok
        before = {"ts0": export(requests=100, errors=50)}
        after = {"ts0": export(requests=300, errors=50)}
        report = evaluate(after, before=before, seconds=2.0)
        errs = [c for c in report.checks if c.kind == "error_rate"]
        assert all(c.ok for c in errs)
        assert "windowed" in errs[0].detail
        # and the reverse: clean history, error storm in the window
        report = evaluate({"ts0": export(requests=300, errors=40)},
                          before={"ts0": export(requests=290, errors=0)},
                          seconds=2.0)
        assert not report.ok

    def test_no_data_is_vacuously_ok(self):
        report = evaluate({"ts0": {}})
        assert report.ok
        assert report.component_status()["ts0"] == "no-data"
        assert all(c.value is None for c in report.checks)

    def test_glob_histogram_matches_families(self):
        slos = [SLOSpec(name="per-op", histogram="net.server.op.*_seconds",
                        p99_target_s=0.1)]
        exp = {"net.server.op.scan_seconds": {"count": 5, "p99": 0.5},
               "net.server.op.ping_seconds": {"count": 5, "p99": 0.01}}
        checks = check_component("ts0", exp, slos)
        assert [(c.metric, c.ok) for c in checks] == [
            ("net.server.op.ping_seconds", True),
            ("net.server.op.scan_seconds", False)]

    def test_breaches_for_names_only(self):
        assert breaches_for(export(p99_queue=5.0, errors=50)) == \
            ["rpc.errors", "rpc.queue.p99"]
        assert breaches_for(export()) == []
        delta = SnapshotDelta(export(requests=100, errors=50),
                              export(requests=200, errors=50))
        assert breaches_for(export(requests=200, errors=50),
                            delta=delta) == []


class TestReport:
    def test_render_and_dict(self):
        report = evaluate({"ts0": export(p99_service=9.0)})
        text = report.render()
        assert "BREACH" in text and "rpc.service.p99" in text
        assert "1 breach(es)" in text
        d = report.as_dict()
        assert d["ok"] is False and len(d["breaches"]) == 1
        json.dumps(d)  # the CI artifact must serialize

    def test_all_ok_footer(self):
        assert evaluate({"ts0": export()}).render().endswith("all SLOs met")


class TestLoadSlos:
    def test_load_and_validate(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text(json.dumps([
            {"name": "q", "histogram": "net.server.queue_seconds",
             "p99_target_s": 0.5},
            {"name": "e", "error_budget": 0.1},
        ]))
        specs = load_slos(str(path))
        assert [s.name for s in specs] == ["q", "e"]

    def test_empty_or_bad_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        with pytest.raises(ValueError, match="non-empty"):
            load_slos(str(path))
        path.write_text(json.dumps([{"name": "x"}]))
        with pytest.raises(ValueError, match="no objective"):
            load_slos(str(path))


class TestDefaults:
    def test_default_slos_cover_queue_service_errors(self):
        names = {s.name for s in DEFAULT_SLOS}
        assert names == {"rpc.queue.p99", "rpc.service.p99", "rpc.errors"}

    def test_defaults_pass_on_a_quiet_export(self):
        assert HealthReport(check_component("s", export())).ok
