"""Utility modules: rng, validation, timing."""

import numpy as np
import pytest

from repro.util import (
    Timer,
    check_index,
    check_nonnegative,
    check_positive,
    check_same_shape,
    check_square,
    check_type,
    default_rng,
    spawn_rngs,
    timed,
)


class TestRng:
    def test_none_is_deterministic(self):
        assert default_rng().random() == default_rng().random()

    def test_int_seed(self):
        assert default_rng(5).random() == default_rng(5).random()
        assert default_rng(5).random() != default_rng(6).random()

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert default_rng(g) is g

    def test_spawn_independent(self):
        children = spawn_rngs(7, 3)
        vals = [c.random() for c in children]
        assert len(set(vals)) == 3

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_rngs(7, 2)]
        b = [g.random() for g in spawn_rngs(7, 2)]
        assert a == b

    def test_spawn_zero(self):
        assert spawn_rngs(1, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(3), 2)
        assert len(children) == 2


class TestValidation:
    def test_check_type(self):
        check_type(1, int, "x")
        with pytest.raises(TypeError, match="int"):
            check_type("a", int, "x")
        with pytest.raises(TypeError, match="int or float"):
            check_type("a", (int, float), "x")

    def test_check_positive_nonnegative(self):
        check_positive(1, "x")
        check_nonnegative(0, "x")
        with pytest.raises(ValueError):
            check_positive(0, "x")
        with pytest.raises(ValueError):
            check_nonnegative(-1, "x")

    def test_check_index_wraps_and_bounds(self):
        assert check_index(-1, 5) == 4
        assert check_index(2, 5) == 2
        with pytest.raises(IndexError):
            check_index(5, 5)
        with pytest.raises(IndexError):
            check_index(-6, 5)

    def test_check_same_shape(self):
        a = np.zeros((2, 3))
        assert check_same_shape(a, a) == (2, 3)
        with pytest.raises(ValueError):
            check_same_shape(a, np.zeros((3, 2)))

    def test_check_square(self):
        assert check_square(np.zeros((3, 3))) == 3
        with pytest.raises(ValueError):
            check_square(np.zeros((2, 3)))


class TestTiming:
    def test_timer_accumulates(self):
        t = Timer()
        with t.section("a"):
            pass
        with t.section("a"):
            pass
        assert t.counts["a"] == 2 and t.totals["a"] >= 0

    def test_report_format(self):
        t = Timer()
        with t.section("work"):
            pass
        assert "work" in t.report()

    def test_report_orders_by_total_then_name(self):
        t = Timer()
        # identical totals -> alphabetical; larger totals first
        t.totals = {"bbb": 1.0, "aaa": 1.0, "big": 5.0}
        t.counts = {"bbb": 1, "aaa": 1, "big": 1}
        lines = t.report().splitlines()[1:]
        names = [line.split()[0] for line in lines]
        assert names == ["big", "aaa", "bbb"]

    def test_as_dict(self):
        t = Timer()
        with t.section("a"):
            pass
        with t.section("a"):
            pass
        d = t.as_dict()
        assert d["a"]["calls"] == 2
        assert d["a"]["total_s"] == pytest.approx(t.totals["a"])

    def test_merge_accumulates_and_chains(self):
        a, b = Timer(), Timer()
        a.totals = {"x": 1.0}
        a.counts = {"x": 2}
        b.totals = {"x": 0.5, "y": 3.0}
        b.counts = {"x": 1, "y": 4}
        assert a.merge(b) is a
        assert a.totals == {"x": 1.5, "y": 3.0}
        assert a.counts == {"x": 3, "y": 4}
        # the source timer is untouched
        assert b.totals == {"x": 0.5, "y": 3.0}

    def test_merge_empty(self):
        a = Timer()
        a.merge(Timer())
        assert a.totals == {} and a.counts == {}

    def test_timed(self):
        result, best = timed(lambda x: x + 1, 41, repeat=3)
        assert result == 42 and best >= 0

    def test_timed_validates_repeat(self):
        with pytest.raises(ValueError):
            timed(lambda: None, repeat=0)
