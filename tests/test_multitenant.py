"""Multi-tenant analytics: one physical graph table, per-analyst
visibility labels, different server-side results per authorization set.

This exercises the paper's NoSQL motivation end to end: cell-level
security (an Accumulo differentiator) composed with the Graphulo ops —
each analyst's TableMult/BFS sees only their subgraph.
"""

import numpy as np
import pytest

from repro.dbsim import (
    Authorizations,
    Connector,
    degree_table,
    table_bfs,
    table_mult,
    table_to_assoc,
)
from repro.dbsim.key import decode_number
from repro.dbsim.server import Instance


@pytest.fixture
def conn():
    """A graph whose edges are split between two compartments.

    Public spine: v0–v1–v2.  Compartment "red" adds v2–v3, v3–v4;
    compartment "blue" adds v0–v5.
    """
    c = Connector(Instance(n_servers=2))
    c.create_table("edges")
    def put_edge(w, u, v, vis=""):
        w.put(f"v{u}", "", f"v{v}", 1, visibility=vis)
        w.put(f"v{v}", "", f"v{u}", 1, visibility=vis)

    with c.batch_writer("edges") as w:
        put_edge(w, 0, 1)
        put_edge(w, 1, 2)
        put_edge(w, 2, 3, "red")
        put_edge(w, 3, 4, "red")
        put_edge(w, 0, 5, "blue")
    return c


RED = Authorizations(["red"])
BLUE = Authorizations(["blue"])


class TestVisibilityScopedBFS:
    def test_public_sees_spine_only(self, conn):
        d = table_bfs(conn, "edges", ["v0"], hops=5)
        assert set(d) == {"v0", "v1", "v2"}

    def test_red_reaches_red_subgraph(self, conn):
        d = table_bfs(conn, "edges", ["v0"], hops=5, authorizations=RED)
        assert set(d) == {"v0", "v1", "v2", "v3", "v4"}
        assert d["v4"] == 4

    def test_blue_reaches_blue_subgraph(self, conn):
        d = table_bfs(conn, "edges", ["v0"], hops=5, authorizations=BLUE)
        assert set(d) == {"v0", "v1", "v2", "v5"}


class TestVisibilityScopedDegrees:
    def test_degree_tables_differ_per_analyst(self, conn):
        degree_table(conn, "edges", "deg_pub", count_entries=True)
        degree_table(conn, "edges", "deg_red", count_entries=True,
                     authorizations=RED)
        pub = {c.key.row: decode_number(c.value)
               for c in conn.scanner("deg_pub")}
        red = {c.key.row: decode_number(c.value)
               for c in conn.scanner("deg_red")}
        assert pub["v2"] == 1 and red["v2"] == 2
        assert "v3" not in pub and red["v3"] == 2


class TestVisibilityScopedTableMult:
    def test_two_hop_counts_differ(self, conn):
        table_mult(conn, "edges", "edges", "hop_pub")
        table_mult(conn, "edges", "edges", "hop_red", authorizations=RED)
        pub = table_to_assoc(conn, "hop_pub")
        red = table_to_assoc(conn, "hop_red")
        # v2–v4 share neighbour v3 only in the red view
        assert red.get("v2", "v4") == 1.0
        assert pub.get("v2", "v4") == 0.0
        # public spine correlation identical in both views
        assert pub.get("v0", "v2") == red.get("v0", "v2") == 1.0
