"""Odds and ends pinned by the paper text or relied on by subsystems."""

import pickle

import numpy as np
import pytest

from repro.assoc import AssocArray
from repro.sparse import Matrix, Vector, from_dense, from_edges


class TestAdjacencyDefinition:
    def test_self_loop_count_on_diagonal(self):
        """§II-B1: 'A(i, i) = number of self loops'."""
        a = from_edges(3, [(1, 1), (1, 1), (0, 2)])
        assert a.get(1, 1) == 2.0

    def test_parallel_edge_count_off_diagonal(self):
        """§II-B1: 'A(i, j) = # edges from v_i to v_j, if i ≠ j'."""
        a = from_edges(3, [(0, 1)] * 3)
        assert a.get(0, 1) == 3.0

    def test_undirected_self_loop_single_count(self):
        a = from_edges(2, [(0, 0)], undirected=True)
        assert a.get(0, 0) == 1.0


class TestPickling:
    """The parallel layer ships Matrix/Vector across process boundaries."""

    def test_matrix_roundtrip(self, random_sparse):
        m, dense = random_sparse(7, 5, seed=1)
        back = pickle.loads(pickle.dumps(m))
        assert isinstance(back, Matrix)
        assert back.equal(m)
        assert np.array_equal(back.to_dense(), dense)

    def test_vector_roundtrip(self):
        v = Vector(5, [1, 3], [2.0, 4.0])
        back = pickle.loads(pickle.dumps(v))
        assert back.indices.tolist() == [1, 3]
        assert back.values.tolist() == [2.0, 4.0]

    def test_assoc_roundtrip(self):
        a = AssocArray.from_triples(["r1", "r2"], ["c", "c"], [1.0, 2.0])
        back = pickle.loads(pickle.dumps(a))
        assert back.equal(a)


class TestVersionMetadata:
    def test_package_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_subpackages_importable(self):
        import repro

        for name in repro.__all__:
            if name != "__version__":
                assert getattr(repro, name) is not None
