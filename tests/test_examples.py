"""Smoke tests: every shipped example runs end to end (small args)."""

import runpy
import sys

import pytest


def run_example(monkeypatch, path, argv):
    monkeypatch.setattr(sys, "argv", [path] + argv)
    runpy.run_path(path, run_name="__main__")


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        run_example(monkeypatch, "examples/quickstart.py", [])
        out = capsys.readouterr().out
        assert "3-truss keeps 5/6 edges" in out
        assert "J(2,4) = 0.6667" in out

    def test_twitter_topics(self, monkeypatch, capsys):
        run_example(monkeypatch, "examples/twitter_topic_modeling.py",
                    ["--docs", "400"])
        out = capsys.readouterr().out
        assert "purity=" in out and "topic 5" in out

    def test_nosql_analytics(self, monkeypatch, capsys):
        run_example(monkeypatch, "examples/nosql_graph_analytics.py",
                    ["--scale", "5", "--splits", "3"])
        out = capsys.readouterr().out
        assert "matches client-side SpGEMM: True" in out
        assert "degree-filtered BFS" in out

    def test_truss_communities(self, monkeypatch, capsys):
        run_example(monkeypatch, "examples/truss_communities.py",
                    ["--n", "60", "--clique", "10"])
        out = capsys.readouterr().out
        assert "overlap with planted clique: 10/10" in out

    def test_semiring_shortest_paths(self, monkeypatch, capsys):
        run_example(monkeypatch, "examples/semiring_shortest_paths.py", [])
        out = capsys.readouterr().out
        assert "tropical" in out and "widest-path capacity" in out

    def test_multitenant_security(self, monkeypatch, capsys):
        run_example(monkeypatch, "examples/multitenant_security.py", [])
        out = capsys.readouterr().out
        assert "red+blue : v0@0, v1@1, v2@2, v3@3, v4@2, v5@1" in out
        assert "[red&blue]" in out
