"""End-to-end pipelines crossing every layer: generator → schema →
database → server-side kernels → associative arrays → algorithms.

These are the flows the paper describes: ingest a graph into a NoSQL
store under the D4M schema, run GraphBLAS operations server-side, pull
results back as associative arrays, and compare against the pure
matrix pipeline.
"""

import numpy as np
import pytest

from repro.algorithms.jaccard import jaccard
from repro.algorithms.topics import fit_topics, purity
from repro.algorithms.traversal import bfs
from repro.algorithms.truss import ktruss
from repro.assoc import AssocArray
from repro.dbsim import (
    Connector,
    assoc_to_table,
    degree_table,
    table_bfs,
    table_mult,
    table_to_assoc,
)
from repro.dbsim.key import decode_number
from repro.dbsim.server import Instance
from repro.generators import fig1_edges, fig1_graph, generate_tweets, rmat_graph
from repro.schemas import (
    D4MTables,
    adjacency_from_incidence,
    edge_list_from_adjacency,
    incidence_unoriented,
)


@pytest.fixture
def conn():
    return Connector(Instance(n_servers=3))


def graph_to_assoc(a, prefix="v"):
    rows, cols, vals = a.to_coo()
    return AssocArray.from_triples([f"{prefix}{u:05d}" for u in rows],
                                   [f"{prefix}{v:05d}" for v in cols], vals)


class TestDatabaseGraphPipeline:
    def test_degree_pipeline_matches_matrix(self, conn):
        """Ingest RMAT graph → server-side degree table → matrix degrees."""
        a = rmat_graph(6, edge_factor=4, seed=1)
        assoc = graph_to_assoc(a)
        assoc_to_table(conn, assoc, "edges", n_splits=2)
        degree_table(conn, "edges", "deg")
        degs = {c.key.row: decode_number(c.value) for c in conn.scanner("deg")}
        ref = a.reduce_rows()
        for key, d in degs.items():
            assert d == ref[int(key[1:])]

    def test_tablemult_two_hop_matches_matrix(self, conn):
        """Server-side AᵀA == client-side two-hop matrix (A symmetric)."""
        a = rmat_graph(5, edge_factor=3, seed=2)
        assoc = graph_to_assoc(a)
        assoc_to_table(conn, assoc, "A")
        table_mult(conn, "A", "A", "A2")
        out = table_to_assoc(conn, "A2")
        ref = assoc.T @ assoc
        assert out.equal(ref)

    def test_table_bfs_matches_matrix_bfs(self, conn):
        a = rmat_graph(5, edge_factor=3, seed=3)
        assoc = graph_to_assoc(a)
        assoc_to_table(conn, assoc, "edges")
        dist = bfs(a, 0)
        table_dist = table_bfs(conn, "edges", ["v00000"], hops=10)
        for v in range(a.nrows):
            assert table_dist.get(f"v{v:05d}", -1) == dist[v]


class TestD4MTweetPipeline:
    def test_corpus_to_topics(self):
        """Tweets → D4M exploded arrays → doc-term matrix → NMF topics."""
        corpus = generate_tweets(n_docs=400, seed=21)
        assoc = corpus.to_assoc()
        # doc×word assoc → matrix path must match corpus.to_matrix()
        dt, vocab = corpus.to_matrix()
        model = fit_topics(dt, vocab, 5, seed=1, max_iter=30)
        assert purity(model.doc_topics(), corpus.labels) > 0.85
        # the assoc route sees the same totals
        assert assoc.matrix.reduce_scalar() == dt.reduce_scalar()

    def test_d4m_records_roundtrip_through_db(self, conn):
        records = [{"user": f"u{i}", "lang": "en" if i % 2 else "es"}
                   for i in range(10)]
        tables = D4MTables.from_records(records)
        assoc_to_table(conn, tables.tedge, "Tedge")
        back = table_to_assoc(conn, "Tedge")
        assert back.equal(tables.tedge)


class TestTrussJaccardPipeline:
    def test_fig1_through_database(self, conn):
        """Store Fig 1's incidence array in the DB, read it back, run
        Algorithm 1 and Algorithm 2, and reproduce the paper numbers."""
        e = incidence_unoriented(5, fig1_edges())
        rows, cols, vals = e.to_coo()
        assoc = AssocArray.from_triples(
            [f"e{r + 1}" for r in rows], [f"v{c + 1}" for c in cols], vals)
        assoc_to_table(conn, assoc, "E")
        back = table_to_assoc(conn, "E")
        assert back.equal(assoc)
        # reconstruct the incidence Matrix in paper edge order
        e2 = back.matrix  # rows sorted e1..e6 (single digits keep order)
        truss = ktruss(e2, 3)
        assert truss.nrows == 5
        a = adjacency_from_incidence(e2)
        j = jaccard(a)
        assert j.get(1, 3) == pytest.approx(2 / 3)

    def test_truss_of_db_roundtripped_rmat(self, conn):
        a = rmat_graph(5, edge_factor=4, seed=7)
        assoc = graph_to_assoc(a)
        assoc_to_table(conn, assoc, "G")
        back = table_to_assoc(conn, "G")
        # same adjacency after the database round trip
        edges_ref = edge_list_from_adjacency(a)
        e_ref = incidence_unoriented(a.nrows, edges_ref)
        n = len(back.row_keys)
        ids = {k: int(k[1:]) for k in back.row_keys}
        r, c, v = back.triples()
        rebuilt = np.zeros((a.nrows, a.nrows))
        for rk, ck in zip(r, c):
            rebuilt[ids[rk], int(ck[1:])] = 1.0
        assert np.array_equal(rebuilt, a.to_dense())
