"""TSV triple I/O."""

import numpy as np
import pytest

from repro.assoc import AssocArray, read_tsv_triples, write_tsv_triples


class TestRoundtrip:
    def test_write_read(self, tmp_path):
        a = AssocArray.from_triples(["r1", "r2"], ["c1", "c2"], [1.5, 2.0])
        path = tmp_path / "t.tsv"
        n = write_tsv_triples(a, str(path))
        assert n == 2
        b = read_tsv_triples(str(path))
        assert a.equal(b)

    def test_two_column_pattern(self, tmp_path):
        p = tmp_path / "p.tsv"
        p.write_text("r1\tc1\nr1\tc1\n")
        a = read_tsv_triples(str(p))
        assert a.get("r1", "c1") == 2.0  # pattern lines count

    def test_blank_lines_skipped(self, tmp_path):
        p = tmp_path / "b.tsv"
        p.write_text("r\tc\t3\n\n\n")
        assert read_tsv_triples(str(p)).get("r", "c") == 3.0

    def test_empty_file(self, tmp_path):
        p = tmp_path / "e.tsv"
        p.write_text("")
        assert read_tsv_triples(str(p)).nnz == 0

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_tsv_triples(str(tmp_path / "nope.tsv"))

    def test_malformed_field_count(self, tmp_path):
        p = tmp_path / "m.tsv"
        p.write_text("a\tb\tc\td\n")
        with pytest.raises(ValueError, match=":1:"):
            read_tsv_triples(str(p))

    def test_non_numeric_value(self, tmp_path):
        p = tmp_path / "n.tsv"
        p.write_text("a\tb\txyz\n")
        with pytest.raises(ValueError, match="non-numeric"):
            read_tsv_triples(str(p))
