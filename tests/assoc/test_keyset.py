"""Key universes and D4M-flavoured selectors."""

import numpy as np
import pytest

from repro.assoc.keyset import (
    KeyRange,
    lookup,
    select_keys,
    sorted_unique,
    to_key_array,
    union_keys,
)


class TestKeyArrays:
    def test_to_key_array_stringifies(self):
        arr = to_key_array([1, "b", 2.5])
        assert arr.tolist() == ["1", "b", "2.5"]

    def test_to_key_array_rejects_2d(self):
        with pytest.raises(ValueError):
            to_key_array(np.zeros((2, 2)))

    def test_sorted_unique(self):
        assert sorted_unique(["b", "a", "b"]).tolist() == ["a", "b"]

    def test_union(self):
        u = union_keys(np.array(["a", "c"]), np.array(["b", "c"]))
        assert u.tolist() == ["a", "b", "c"]

    def test_lookup(self):
        uni = np.array(["a", "b", "d"])
        pos = lookup(uni, np.array(["d", "a"]))
        assert pos.tolist() == [2, 0]

    def test_lookup_missing_raises(self):
        with pytest.raises(KeyError, match="not present"):
            lookup(np.array(["a", "b"]), np.array(["z"]))

    def test_lookup_empty_universe(self):
        with pytest.raises(KeyError):
            lookup(np.array([], dtype=str), np.array(["a"]))


class TestKeyRange:
    def test_half_open(self):
        uni = np.array(["a", "b", "c", "d"])
        mask = KeyRange("b", "d").mask(uni)
        assert uni[mask].tolist() == ["b", "c"]

    def test_unbounded_sides(self):
        uni = np.array(["a", "b", "c"])
        assert KeyRange(None, "b").mask(uni).tolist() == [True, False, False]
        assert KeyRange("b", None).mask(uni).tolist() == [False, True, True]
        assert KeyRange().mask(uni).all()


class TestSelectKeys:
    uni = np.array(["app|1", "app|2", "word|hi", "word|yo"])

    def test_none_and_colon(self):
        assert select_keys(self.uni, None).tolist() == [0, 1, 2, 3]
        assert select_keys(self.uni, ":").tolist() == [0, 1, 2, 3]

    def test_exact_key(self):
        assert select_keys(self.uni, "word|hi").tolist() == [2]

    def test_prefix_glob(self):
        assert select_keys(self.uni, "word|*").tolist() == [2, 3]

    def test_list_preserves_order(self):
        out = select_keys(self.uni, ["word|yo", "app|1"])
        assert out.tolist() == [3, 0]

    def test_range(self):
        out = select_keys(self.uni, KeyRange("app|", "app|~"))
        assert out.tolist() == [0, 1]

    def test_missing_exact_raises(self):
        with pytest.raises(KeyError):
            select_keys(self.uni, "nope")

    def test_empty_glob(self):
        assert select_keys(self.uni, "zzz*").size == 0
