"""Property-based tests of associative-array algebra (paper §II-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assoc import AssocArray
from repro.semiring import MAX, MIN

keys = st.sampled_from(["a", "b", "c", "d", "e"])
triple = st.tuples(keys, keys, st.integers(1, 9))


def build(triples):
    if not triples:
        return AssocArray.empty()
    r, c, v = zip(*triples)
    return AssocArray.from_triples(list(r), list(c),
                                   np.asarray(v, dtype=float))


@given(ta=st.lists(triple, max_size=12), tb=st.lists(triple, max_size=12))
@settings(max_examples=80, deadline=None)
def test_union_add_commutative(ta, tb):
    a, b = build(ta), build(tb)
    assert a.ewise_add(b).equal(b.ewise_add(a))


@given(ta=st.lists(triple, max_size=10), tb=st.lists(triple, max_size=10),
       tc=st.lists(triple, max_size=10))
@settings(max_examples=60, deadline=None)
def test_union_add_associative(ta, tb, tc):
    a, b, c = build(ta), build(tb), build(tc)
    lhs = a.ewise_add(b).ewise_add(c)
    rhs = a.ewise_add(b.ewise_add(c))
    assert lhs.equal(rhs)


@given(ta=st.lists(triple, max_size=12))
@settings(max_examples=60, deadline=None)
def test_add_empty_is_identity(ta):
    a = build(ta)
    assert a.ewise_add(AssocArray.empty()).equal(a)


@given(ta=st.lists(triple, max_size=12), tb=st.lists(triple, max_size=12))
@settings(max_examples=60, deadline=None)
def test_union_support_is_key_union(ta, tb):
    a, b = build(ta), build(tb)
    s = a.ewise_add(b)
    sa, sb = set(a.to_dict()), set(b.to_dict())
    assert set(s.to_dict()) == sa | sb


@given(ta=st.lists(triple, max_size=12), tb=st.lists(triple, max_size=12))
@settings(max_examples=60, deadline=None)
def test_intersection_support(ta, tb):
    a, b = build(ta), build(tb)
    m = a.ewise_mult(b)
    assert set(m.to_dict()) == set(a.to_dict()) & set(b.to_dict())


@given(ta=st.lists(triple, max_size=12), tb=st.lists(triple, max_size=12))
@settings(max_examples=60, deadline=None)
def test_min_max_add_bounds(ta, tb):
    """min-combine ≤ max-combine entrywise on the union support."""
    a, b = build(ta), build(tb)
    lo = a.ewise_add(b, op=MIN).to_dict()
    hi = a.ewise_add(b, op=MAX).to_dict()
    assert set(lo) == set(hi)
    assert all(lo[k] <= hi[k] for k in lo)


@given(ta=st.lists(triple, max_size=10))
@settings(max_examples=60, deadline=None)
def test_transpose_involution(ta):
    a = build(ta)
    assert a.T.T.equal(a)


@given(ta=st.lists(triple, max_size=10), tb=st.lists(triple, max_size=10))
@settings(max_examples=60, deadline=None)
def test_matmul_transpose_law(ta, tb):
    """(A·B)ᵀ == Bᵀ·Aᵀ under key alignment."""
    a, b = build(ta), build(tb)
    lhs = a.matmul(b).T
    rhs = b.T.matmul(a.T)
    assert lhs.equal(rhs)


@given(ta=st.lists(triple, max_size=8), tb=st.lists(triple, max_size=8),
       tc=st.lists(triple, max_size=8))
@settings(max_examples=40, deadline=None)
def test_matmul_distributes_over_add(ta, tb, tc):
    """A·(B + C) == A·B + A·C — paper: multiplication is a correlation,
    and correlations distribute over unions."""
    a, b, c = build(ta), build(tb), build(tc)
    lhs = a.matmul(b.ewise_add(c))
    rhs = a.matmul(b).ewise_add(a.matmul(c))
    # values match; supports can differ by exact-zero cancellation (none
    # here: all values positive), so exact equality is required
    assert lhs.equal(rhs)


@given(ta=st.lists(triple, max_size=12))
@settings(max_examples=60, deadline=None)
def test_condensed_no_empty_lines(ta):
    """Paper §II-A: associative arrays have no empty rows or columns."""
    a = build(ta)
    if a.nnz == 0:
        return
    assert (a.matrix.row_lengths > 0).all()
    seen = np.zeros(a.matrix.ncols, dtype=bool)
    seen[a.matrix.indices] = True
    assert seen.all()


@given(ta=st.lists(triple, max_size=12))
@settings(max_examples=60, deadline=None)
def test_triples_roundtrip(ta):
    a = build(ta)
    r, c, v = a.triples()
    assert build(list(zip(r, c, v))).equal(a)
