"""AssocArray semantics: key-aligned algebra per paper §II-A."""

import numpy as np
import pytest

from repro.assoc import AssocArray, KeyRange
from repro.semiring import MAX, MAX_MONOID, MIN_PLUS
from repro.semiring.builtin import ONE


def simple():
    return AssocArray.from_triples(
        ["r1", "r1", "r2"], ["cA", "cB", "cA"], [1.0, 2.0, 3.0])


class TestConstruction:
    def test_from_triples(self):
        a = simple()
        assert a.shape == (2, 2) and a.nnz == 3
        assert a.get("r1", "cB") == 2.0

    def test_duplicates_accumulate(self):
        a = AssocArray.from_triples(["r", "r"], ["c", "c"], [1.0, 4.0])
        assert a.get("r", "c") == 5.0

    def test_duplicates_custom_monoid(self):
        a = AssocArray.from_triples(["r", "r"], ["c", "c"], [1.0, 4.0],
                                    dup=MAX_MONOID)
        assert a.get("r", "c") == 4.0

    def test_default_values_count(self):
        a = AssocArray.from_triples(["r", "r"], ["c", "c"])
        assert a.get("r", "c") == 2.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            AssocArray.from_triples(["a"], ["b", "c"])

    def test_keys_sorted_validation(self):
        from repro.sparse import zeros

        with pytest.raises(ValueError, match="sorted"):
            AssocArray(["b", "a"], ["c"], zeros(2, 1))

    def test_shape_validation(self):
        from repro.sparse import zeros

        with pytest.raises(ValueError, match="universe"):
            AssocArray(["a"], ["c"], zeros(2, 1))

    def test_empty(self):
        e = AssocArray.empty()
        assert e.shape == (0, 0) and e.nnz == 0

    def test_numeric_keys_stringified(self):
        a = AssocArray.from_triples([1, 2], [10, 20], [1.0, 2.0])
        assert a.get("1", "10") == 1.0


class TestCondense:
    def test_no_empty_rows_or_cols(self):
        """Paper: associative arrays do not have empty rows/columns."""
        a = simple()
        b = AssocArray.from_triples(["r1"], ["cB"], [-2.0])
        s = a + b  # r1/cB becomes 0 → pruned... value 0 stays stored
        # intersect instead: multiply by pattern that misses r2
        m = a.ewise_mult(AssocArray.from_triples(["r1"], ["cA"], [1.0]))
        assert m.row_keys.tolist() == ["r1"]
        assert m.col_keys.tolist() == ["cA"]


class TestAlgebra:
    def test_union_add(self):
        a = simple()
        b = AssocArray.from_triples(["r2", "r3"], ["cA", "cC"], [10.0, 5.0])
        s = a + b
        assert s.to_dict() == {
            ("r1", "cA"): 1.0, ("r1", "cB"): 2.0,
            ("r2", "cA"): 13.0, ("r3", "cC"): 5.0}

    def test_add_custom_op(self):
        a = AssocArray.from_triples(["r"], ["c"], [2.0])
        b = AssocArray.from_triples(["r"], ["c"], [7.0])
        assert a.ewise_add(b, op=MAX).get("r", "c") == 7.0

    def test_intersection_mult(self):
        a = simple()
        b = AssocArray.from_triples(["r1", "r9"], ["cA", "cZ"], [4.0, 1.0])
        m = a * b
        assert m.to_dict() == {("r1", "cA"): 4.0}

    def test_matmul_correlation(self):
        a = simple()
        g = a.T @ a
        assert g.get("cA", "cA") == 10.0  # 1² + 3²
        assert g.get("cA", "cB") == 2.0

    def test_matmul_disjoint_inner_keys_empty(self):
        a = AssocArray.from_triples(["r"], ["x"], [1.0])
        b = AssocArray.from_triples(["y"], ["c"], [1.0])
        assert (a @ b).nnz == 0

    def test_matmul_semiring(self):
        a = AssocArray.from_triples(["u", "u"], ["m1", "m2"], [1.0, 5.0])
        b = AssocArray.from_triples(["m1", "m2"], ["v", "v"], [2.0, 1.0])
        c = a.matmul(b, semiring=MIN_PLUS)
        assert c.get("u", "v") == 3.0  # min(1+2, 5+1)

    def test_transpose(self):
        a = simple()
        assert a.T.get("cA", "r2") == 3.0
        assert a.T.T.equal(a)

    def test_scale_and_apply(self):
        a = simple()
        assert a.scale(2.0).get("r2", "cA") == 6.0
        assert (a.apply(ONE).matrix.values == 1.0).all()

    def test_sum_rows_cols(self):
        a = simple()
        sr = a.sum_rows()
        assert sr.get("r1", "sum") == 3.0 and sr.get("r2", "sum") == 3.0
        sc = a.sum_cols()
        assert sc.get("sum", "cA") == 4.0 and sc.get("sum", "cB") == 2.0


class TestCatKeyMul:
    def test_provenance_keys(self):
        """D4M CatKeyMul: values are the contributing inner keys."""
        a = AssocArray.from_triples(["d1", "d1", "d2"],
                                    ["w_hi", "w_yo", "w_hi"], [1, 1, 1])
        prov = a.T.matmul_catkeys(a)
        assert prov[("w_hi", "w_hi")] == "d1;d2"
        assert prov[("w_hi", "w_yo")] == "d1"

    def test_custom_separator(self):
        a = AssocArray.from_triples(["d1", "d2"], ["x", "x"], [1, 1])
        prov = a.T.matmul_catkeys(a, sep="|")
        assert prov[("x", "x")] == "d1|d2"

    def test_support_matches_numeric_matmul(self):
        a = AssocArray.from_triples(["r1", "r1", "r2"], ["a", "b", "a"],
                                    [2.0, 3.0, 4.0])
        numeric = a.T @ a
        prov = a.T.matmul_catkeys(a)
        assert set(prov) == set(numeric.to_dict())

    def test_disjoint_inner_empty(self):
        a = AssocArray.from_triples(["r"], ["x"], [1.0])
        b = AssocArray.from_triples(["y"], ["c"], [1.0])
        assert a.matmul_catkeys(b) == {}


class TestSelection:
    def test_extract_exact(self):
        a = simple()
        e = a.extract(rows=["r1"])
        assert e.to_dict() == {("r1", "cA"): 1.0, ("r1", "cB"): 2.0}

    def test_extract_range_and_glob(self):
        a = simple()
        assert a.extract(rows=KeyRange("r2", None)).row_keys.tolist() == ["r2"]
        assert a.extract(cols="c*").nnz == 3

    def test_getitem_sugar(self):
        a = simple()
        assert a["r1", "cA"].get("r1", "cA") == 1.0
        assert a["r2"].nnz == 1

    def test_get_absent_default(self):
        a = simple()
        assert a.get("r2", "cB") == 0.0
        assert a.get("zz", "cB", default=-1) == -1


class TestMisc:
    def test_equal(self):
        assert simple().equal(simple())
        assert not simple().equal(simple().scale(2.0))

    def test_triples_roundtrip(self):
        a = simple()
        r, c, v = a.triples()
        b = AssocArray.from_triples(r, c, v)
        assert a.equal(b)

    def test_pretty_truncation(self):
        a = simple()
        text = a.pretty(max_entries=1)
        assert "more" in text

    def test_repr(self):
        assert "nnz=3" in repr(simple())
