"""Distributed tracing end to end: context propagation over the wire,
cross-process stitching, the golden structural digest, and propagation
under fault injection / retries / dedup replays.

The golden test pins the *structure* of a stitched BFS run — the
sorted cross-process parent→child edges with multiplicities — not
timings or ids, so it is stable across machines.  Regenerate with::

    PYTHONPATH=src python -m pytest tests/net/test_tracing.py \
        -k golden --regen-golden
"""

import glob
import os

import pytest

from repro.assoc import AssocArray
from repro.dbsim.graphulo import create_combiner_table, table_bfs
from repro.dbsim import assoc_to_table
from repro.generators import rmat_graph
from repro.net.cluster import LocalCluster
from repro.obs import sampling as _sampling
from repro.obs import trace as _trace
from repro.obs.stitch import stitch_files
from repro.obs.trace import JSONLSink, NullSink

GOLDEN = os.path.join(os.path.dirname(__file__), "data",
                      "golden_stitched_edges.txt")


@pytest.fixture(autouse=True)
def _clean_tracing():
    _sampling.unconfigure()
    _trace.disable()
    _trace.set_sink(NullSink())
    yield
    _sampling.unconfigure()
    _trace.disable()
    _trace.set_sink(NullSink())


def _small_graph():
    g = rmat_graph(4, edge_factor=4, seed=7)
    rows, cols, vals = g.to_coo()
    width = len(str(g.nrows - 1))
    return AssocArray.from_triples(
        [f"v{u:0{width}d}" for u in rows],
        [f"v{v:0{width}d}" for v in cols], vals)


def _run_traced_bfs(trace_dir, processes=True, n_servers=3,
                    fault_specs=(), fault_seed=0):
    """The acceptance workload: one client-rooted trace covering an
    ingest + BFS through a LocalCluster.  Returns (trace_id, result)."""
    os.makedirs(trace_dir, exist_ok=True)
    _trace.seed_ids(1234)
    _trace.enable(JSONLSink(os.path.join(trace_dir, "trace.client.jsonl"),
                            process="client"))
    a = _small_graph()
    source = str(min(a.row_keys))
    try:
        with LocalCluster(n_servers=n_servers, processes=processes,
                          trace_dir=trace_dir, fault_specs=fault_specs,
                          fault_seed=fault_seed) as cluster:
            conn = cluster.connect()
            try:
                # one enclosing span => every RPC of the workload shares
                # its trace_id (cluster teardown traffic does not)
                with _trace.span("workload") as sp:
                    trace_id = sp.trace_id
                    assoc_to_table(conn, a, "A", n_splits=3)
                    result = table_bfs(conn, "A", [source], 2)
            finally:
                conn.close()
    finally:
        _trace.disable(close=True)
    return trace_id, result


def _stitched(trace_dir):
    return stitch_files(sorted(glob.glob(
        os.path.join(trace_dir, "trace.*.jsonl"))))


class TestGoldenStitchedBFS:
    """ISSUE acceptance: BFS through a 3-server process cluster yields
    per-process traces that stitch into a single forest where every
    ``rpc.server.*`` span parents under the originating client call —
    pinned by a checked-in structural golden."""

    def test_bfs_trace_stitches_to_golden(self, tmp_path, request):
        trace_dir = str(tmp_path / "traces")
        trace_id, result = _run_traced_bfs(trace_dir, processes=True)
        assert result  # BFS reached something

        st = _stitched(trace_dir)
        assert st.processes() == ["client", "manager", "tserver0",
                                  "tserver1", "tserver2"]
        assert st.orphan_spans() == []

        # the workload is ONE stitched forest: a single root (the
        # enclosing client span), with every rpc.server.* span parented
        # under an rpc.client.* span of the process that called it
        workload = [r for r in st.records if r["trace_id"] == trace_id]
        assert workload
        by_id = {r["span_id"]: r for r in workload}
        roots = [r for r in workload if not r["parent_id"]]
        assert [(r["process"], r["name"]) for r in roots] == \
            [("client", "workload")]
        for r in workload:
            if not r["name"].startswith("rpc.server."):
                continue
            parent = by_id[r["parent_id"]]
            assert parent["name"].startswith("rpc.client."), \
                f"{r['name']} parented under {parent['name']}"
            assert parent["process"] != r["process"]

        # structural digest vs the checked-in golden
        lines = _edge_summary_for_trace(st, trace_id)
        if request.config.getoption("--regen-golden"):
            os.makedirs(os.path.dirname(GOLDEN), exist_ok=True)
            with open(GOLDEN, "w", encoding="utf-8") as fh:
                fh.write("\n".join(lines) + "\n")
            pytest.skip("golden regenerated")
        with open(GOLDEN, encoding="utf-8") as fh:
            want = fh.read().splitlines()
        assert lines == want

    def test_stitched_breakdown_reports_server_time(self, tmp_path):
        trace_dir = str(tmp_path / "traces")
        trace_id, _ = _run_traced_bfs(trace_dir, processes=True)
        st = _stitched(trace_dir)
        from repro.obs.analyze import TraceAnalysis, filter_by_trace

        ta = TraceAnalysis(filter_by_trace(st.records, trace_id))
        rpc = ta.rpc_breakdown()
        assert rpc  # the workload is RPC-heavy
        for op in ("write_batch", "scan"):
            row = rpc[op]
            assert row["server_spans"] >= row["count"] > 0
            assert row["server_service_s"] > 0.0
            assert row["client_s"] > 0.0


def _edge_summary_for_trace(st, trace_id):
    """st.edge_summary(), restricted to one trace."""
    by_id = {r["span_id"]: r for r in st.records if r.get("span_id")}
    counts = {}
    for r in st.records:
        if r.get("trace_id") != trace_id:
            continue
        parent = by_id.get(r.get("parent_id") or "")
        if parent is None or parent.get("process") == r.get("process"):
            continue
        edge = (parent["process"], parent["name"],
                r["process"], r["name"])
        counts[edge] = counts.get(edge, 0) + 1
    return [f"{pp}/{pn} -> {cp}/{cn} x{n}"
            for (pp, pn, cp, cn), n in sorted(counts.items())]


class TestSampledPropagation:
    """Head sampling across the wire: the decision rides the TC flag
    byte of every frame, every process agrees without coordination, and
    seeded runs are reproducible.  Seed 42 head-samples the workload
    trace at rate 0.3; seed 1234 drops it (pinned by the assertions)."""

    RATE = 0.3

    @staticmethod
    def _decision(trace_id, rate=0.3):
        # the deterministic head-sampling function, restated
        return int(trace_id[16:], 16) < int(rate * (1 << 64))

    def _run_sampled(self, trace_dir, seed, processes=True):
        os.makedirs(trace_dir, exist_ok=True)
        _trace.seed_ids(seed)
        _sampling.configure(self.RATE)
        _trace.enable(JSONLSink(
            os.path.join(trace_dir, "trace.client.jsonl"),
            process="client"))
        a = _small_graph()
        source = str(min(a.row_keys))
        try:
            with LocalCluster(n_servers=2, processes=processes,
                              trace_dir=trace_dir,
                              sample_rate=self.RATE) as cluster:
                conn = cluster.connect()
                try:
                    with _trace.span("workload") as sp:
                        trace_id, sampled = sp.trace_id, sp.sampled
                        assoc_to_table(conn, a, "A", n_splits=3)
                        result = table_bfs(conn, "A", [source], 2)
                finally:
                    conn.close()
        finally:
            _sampling.unconfigure()
            _trace.disable(close=True)
        assert result
        return trace_id, sampled

    def test_flag_preserved_end_to_end(self, tmp_path):
        trace_dir = str(tmp_path / "traces")
        trace_id, sampled = self._run_sampled(trace_dir, seed=42)
        assert sampled is True  # pinned: seed 42 samples the workload

        st = _stitched(trace_dir)
        workload = [r for r in st.records if r["trace_id"] == trace_id]
        # the sampled trace crossed process boundaries intact: server
        # handler spans exist and stitch under their client calls
        assert any(r["name"].startswith("rpc.server.")
                   and r["process"].startswith("tserver")
                   for r in workload)
        assert st.orphan_spans() == []
        assert st.cross_process_edges()
        # every recorded trace was genuinely head-sampled (or promoted
        # and marked); sampling never leaks silently
        for rec in st.records:
            if rec.get("sampled") is False:
                continue
            assert self._decision(rec["trace_id"]), \
                f"unsampled trace leaked: {rec['name']}"

    def test_dropped_trace_records_nothing(self, tmp_path):
        trace_dir = str(tmp_path / "traces")
        trace_id, sampled = self._run_sampled(trace_dir, seed=1234,
                                              processes=False)
        assert sampled is False  # pinned: seed 1234 drops the workload
        st = _stitched(trace_dir)
        assert [r for r in st.records
                if r["trace_id"] == trace_id] == []

    def test_seeded_sampled_run_is_reproducible(self, tmp_path):
        """Same seed, same rate -> same trace ids, same decisions, same
        stitched structure, run to run."""
        runs = []
        for name in ("a", "b"):
            trace_dir = str(tmp_path / name)
            trace_id, sampled = self._run_sampled(trace_dir, seed=42)
            st = _stitched(trace_dir)
            runs.append({
                "workload": (trace_id, sampled),
                "traces": sorted({r["trace_id"] for r in st.records}),
                "shape": sorted((r["trace_id"], r["process"], r["name"])
                                for r in st.records),
                "edges": st.edge_summary(),
            })
        assert runs[0] == runs[1]

    def test_slow_spans_promoted_despite_rate_zero(self, tmp_path):
        """Tail retention end to end: at sample rate 0 nothing is
        head-sampled, but a delay fault pushes the client's rpc spans
        over the 0.25s threshold, so the whole client-side trace is
        promoted and lands in the file marked ``"sampled": false``.
        (The server's handler span stays fast — the delay is injected
        at response-send time — so its half is legitimately dropped,
        which is exactly the sampled-out-parent shape stitch must not
        call an orphan.)"""
        trace_dir = str(tmp_path / "traces")
        os.makedirs(trace_dir)
        _trace.seed_ids(7)
        _sampling.configure(0.0)
        _trace.enable(JSONLSink(
            os.path.join(trace_dir, "trace.client.jsonl"),
            process="client"))
        try:
            with LocalCluster(n_servers=1, processes=True,
                              fault_specs=["scan:delay:1.0:0.4"],
                              fault_seed=3, trace_dir=trace_dir,
                              sample_rate=0.0) as cluster:
                conn = cluster.connect()
                try:
                    with _trace.span("workload"):
                        conn.create_table("t")
                        with conn.batch_writer("t") as w:
                            for i in range(30):
                                w.put(f"r{i:02d}", "", "c", i)
                        assert sum(1 for _ in conn.scanner("t")) == 30
                finally:
                    conn.close()
        finally:
            _sampling.unconfigure()
            _trace.disable(close=True)

        st = _stitched(trace_dir)
        promoted = [r for r in st.records if r.get("sampled") is False]
        assert promoted and all(r.get("sampled") is False
                                for r in st.records)
        # the slow client scan breached the rpc.* threshold and dragged
        # its whole local trace out of the ring, enclosing span included
        slow = [r for r in promoted if r["name"] == "rpc.client.scan"]
        assert slow and any(r["duration_s"] > 0.25 for r in slow)
        assert any(r["name"] == "workload" for r in promoted)
        # no phantom orphans from the legitimately-dropped server half
        assert st.orphan_spans() == []


class TestPropagationUnderFaults:
    """Corrupted frames, dropped acks, retries and dedup-replayed
    writes must still produce a stitchable trace: no orphaned server
    spans, every server span under a client span."""

    SPECS = ["scan:corrupt:0.3", "write_batch:drop:0.25"]

    @pytest.mark.parametrize("processes", [False, True],
                             ids=["threads", "processes"])
    def test_faulted_workload_stitches_clean(self, tmp_path, processes):
        from repro.obs.metrics import MetricsRegistry

        trace_dir = str(tmp_path / "traces")
        os.makedirs(trace_dir)
        _trace.seed_ids(99)
        _trace.enable(JSONLSink(
            os.path.join(trace_dir, "trace.client.jsonl"),
            process="client"))
        try:
            with LocalCluster(n_servers=2, processes=processes,
                              fault_specs=self.SPECS, fault_seed=11,
                              trace_dir=trace_dir) as cluster:
                registry = MetricsRegistry()
                conn = cluster.connect(metrics=registry)
                try:
                    create_combiner_table(conn, "sums", "sum")
                    with conn.batch_writer("sums", buffer_size=10) as w:
                        for i in range(150):
                            w.put(f"r{i:03d}", "", "n", 1)
                    # dropped acks forced retries; dedup must have kept
                    # writes exactly-once
                    values = [c.value for c in conn.scanner("sums")]
                    assert values == ["1"] * 150
                finally:
                    conn.close()
                export = registry.export()
                assert export["net.client.retries"] > 0
        finally:
            _trace.disable(close=True)

        st = _stitched(trace_dir)
        server_spans = [r for r in st.records
                        if r["name"].startswith("rpc.server.")]
        assert server_spans
        orphans = st.orphan_spans()
        assert [r for r in orphans
                if r["name"].startswith("rpc.server.")] == []
        by_id = {r["span_id"]: r for r in st.records if r.get("span_id")}
        for r in server_spans:
            parent = by_id[r["parent_id"]]
            assert parent["name"].startswith("rpc.client.")
            assert parent["trace_id"] == r["trace_id"]
        if processes:
            # real isolation: the retried/replayed handler spans landed
            # in other processes yet still stitched under their callers
            assert st.cross_process_edges()

    def test_retried_write_shares_one_client_span(self, tmp_path):
        """A dropped ack means >1 server span for 1 client call; both
        attempts must parent under the same rpc.client.call span."""
        from repro.obs.metrics import MetricsRegistry

        trace_dir = str(tmp_path / "traces")
        os.makedirs(trace_dir)
        _trace.seed_ids(7)
        _trace.enable(JSONLSink(
            os.path.join(trace_dir, "trace.client.jsonl"),
            process="client"))
        try:
            with LocalCluster(n_servers=1, processes=False,
                              fault_specs=["write_batch:drop:0.5"],
                              fault_seed=3,
                              trace_dir=trace_dir) as cluster:
                registry = MetricsRegistry()
                conn = cluster.connect(metrics=registry)
                try:
                    conn.create_table("t")
                    with conn.batch_writer("t", buffer_size=5) as w:
                        for i in range(60):
                            w.put(f"r{i:02d}", "", "c", i)
                    assert sum(1 for _ in conn.scanner("t")) == 60
                finally:
                    conn.close()
                assert registry.export()["net.client.retries"] > 0
        finally:
            _trace.disable(close=True)

        st = _stitched(trace_dir)
        parents = {}
        for r in st.records:
            if r["name"] == "rpc.server.write_batch":
                parents.setdefault(r["parent_id"], 0)
                parents[r["parent_id"]] += 1
        assert parents, "no server write_batch spans traced"
        # at least one client call span fathered multiple attempts
        assert max(parents.values()) > 1
        by_id = {r["span_id"]: r for r in st.records if r.get("span_id")}
        assert all(by_id[pid]["name"] == "rpc.client.call"
                   for pid in parents)
