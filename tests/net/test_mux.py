"""The multiplexed transport: request-id routing, admission control,
pipelined writes, stream overrun/resume, and the native-async client.

What wire v3 bought and what must therefore hold:

* responses route by request id, never by arrival order — proven by
  forcing the server to *swap* adjacent unary responses (reorder
  fault) and by interleaving many clients on one socket;
* the server sheds load before running it (``BusyError``) and clients
  retry through it transparently;
* pipelined BatchWriter flushes stay exactly-once and bit-identical
  to an in-process fault-free run, timestamps included, in thread and
  process cluster modes;
* a scan stream that outruns its consumer is killed locally and
  resumes without duplicating or dropping cells.
"""

import asyncio
import threading
import time

import pytest

from repro.dbsim.client import Connector
from repro.dbsim.key import Range
from repro.dbsim.server import Instance
from repro.net import aio as aio_mod
from repro.net import cells, wire
from repro.net.cluster import LocalCluster
from repro.net.server import MAX_CONN_SCANS, SCAN_CHUNK_CELLS
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def cluster():
    """Fault-free 2-server thread-mode cluster (fresh tables per test)."""
    with LocalCluster(n_servers=2, processes=False) as c:
        yield c


def _fresh(cluster, **kw):
    conn = cluster.connect(**kw)
    for table in list(conn.instance.list_tables()):
        conn.instance.delete_table(table)
    return conn


def _reference_cells(n_servers, rows, splits):
    local = Connector(Instance(n_servers=n_servers,
                               metrics=MetricsRegistry()))
    local.create_table("T", splits=splits)
    with local.batch_writer("T", buffer_size=32) as w:
        for r, v in rows:
            w.put(r, "", "c", v)
    return list(local.scanner("T"))


class TestRequestRouting:
    def test_reordered_responses_resolve_by_request_id(self):
        # reorder:1.0 on tablet_info makes the server hold every unary
        # ack until the next one goes out — adjacent responses arrive
        # swapped, so only request-id routing can pair them correctly
        with LocalCluster(n_servers=1, processes=False,
                          fault_specs=["tablet_info:reorder:1.0"],
                          fault_seed=3) as c:
            conn = c.connect(metrics=MetricsRegistry())
            try:
                conn.create_table("t", splits=["m"])
                left, right = conn.instance.tablets("t")
                assert left.addr == right.addr  # one server, one conn
                core = conn.instance.core

                async def both():
                    return await asyncio.gather(
                        core.aio.call(left.addr, wire.TABLET_INFO,
                                      {"table": "t",
                                       "tablet_id": left.tablet_id}),
                        core.aio.call(right.addr, wire.TABLET_INFO,
                                      {"table": "t",
                                       "tablet_id": right.tablet_id}))

                got_left, got_right = core.run(both())
                assert got_left["extent"] == [None, "m"]
                assert got_right["extent"] == ["m", None]
                metrics = conn.instance.cluster_metrics()
                assert metrics["servers"]["tserver0"][
                    "net.server.faults.reorder"] > 0
            finally:
                conn.close()

    def test_one_connection_carries_interleaved_clients(self, cluster):
        # 8 threads of mixed scans and ingest share one RpcCore: the
        # mux must keep them on one socket per server and deliver
        # every response to its caller
        registry = MetricsRegistry()
        conn = _fresh(cluster, metrics=registry)
        try:
            conn.create_table("a")
            conn.create_table("b", splits=["m"])
            with conn.batch_writer("a") as w:
                for i in range(600):
                    w.put(f"r{i:04d}", "", "c", i)
            errors = []

            def scan_loop():
                try:
                    for _ in range(3):
                        n = sum(1 for _ in conn.scanner("a"))
                        assert n == 600
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            def write_loop(k):
                try:
                    with conn.batch_writer("b", buffer_size=50) as w:
                        for i in range(200):
                            w.put(f"w{k}-{i:03d}", "", "c", i)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=scan_loop)
                       for _ in range(4)]
            threads += [threading.Thread(target=write_loop, args=(k,))
                        for k in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert sum(1 for _ in conn.scanner("b")) == 800
            # one persistent connection per server + one to the
            # manager — not one per checkout like the old pool
            assert registry.export()["net.client.pool_misses"] <= 3
        finally:
            conn.close()


class TestAdmissionControl:
    @pytest.fixture()
    def slow_cluster(self):
        # every scan frame delayed: streams stay open long enough for
        # the per-connection scan cap to be the binding constraint
        with LocalCluster(n_servers=1, processes=False,
                          fault_specs=["scan:delay:1:0.02"],
                          fault_seed=1) as c:
            yield c

    def test_scan_flood_sheds_busy_then_recovers(self, slow_cluster):
        conn = slow_cluster.connect(metrics=MetricsRegistry())
        try:
            conn.create_table("t")
            with conn.batch_writer("t") as w:
                for i in range(600):
                    w.put(f"r{i:04d}", "", "c", i)
            proxy = conn.instance.tablets("t")[0]
            core = conn.instance.core
            payload = {"table": "t", "tablet_id": proxy.tablet_id,
                       "range": [None, None], "columns": None,
                       "resume": None}
            flood = MAX_CONN_SCANS + 4

            async def open_all():
                streams = []
                for _ in range(flood):
                    streams.append(await core.aio.open_stream(
                        proxy.addr, wire.SCAN, payload))
                done = busy = 0
                for s in streams:
                    ncells = 0
                    while True:
                        code, pay, _ = await core.aio.stream_get(s, 30.0)
                        if code == wire.CHUNK:
                            ncells += len(cells.block_to_cells(pay.block))
                        elif code == wire.DONE:
                            assert ncells == 600
                            done += 1
                            break
                        else:
                            assert pay["type"] == "BusyError"
                            busy += 1
                            break
                return done, busy

            done, busy = core.run(open_all())
            # the exact split is timing-dependent (shed responses share
            # the faulted send path, so slots can free up mid-flood),
            # but the cap must bite and every admitted stream completes
            assert busy >= 1
            assert done == flood - busy
            metrics = conn.instance.cluster_metrics()
            assert metrics["servers"]["tserver0"][
                "net.server.busy_rejects"] == busy
        finally:
            conn.close()

    def test_facade_scans_retry_through_busy(self, slow_cluster):
        registry = MetricsRegistry()
        conn = slow_cluster.connect(metrics=registry)
        try:
            conn.create_table("t")
            with conn.batch_writer("t") as w:
                for i in range(600):
                    w.put(f"r{i:04d}", "", "c", i)
            counts, errors = [], []

            def one_scan():
                try:
                    counts.append(sum(1 for _ in conn.scanner("t")))
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=one_scan)
                       for _ in range(MAX_CONN_SCANS + 4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert counts == [600] * (MAX_CONN_SCANS + 4)
            # at least one scan was shed and retried to success
            assert registry.export()["net.client.busy_retries"] > 0
        finally:
            conn.close()


class TestPipelinedWrites:
    # 15% of write acks dropped (the batch applied, the ack lost) and
    # 10% delayed: every pipelined flush's exactly-once dedup and
    # ordering discipline gets exercised
    SPECS = ["write_batch:drop:0.15", "write_batch:delay:0.1:0.01"]

    @pytest.mark.parametrize("processes", [False, True],
                             ids=["threads", "processes"])
    def test_pipelined_ingest_bit_identical(self, processes):
        rows = [(f"r{i:03d}", i) for i in range(400)]
        splits = ["r100", "r200"]
        want = _reference_cells(2, rows, splits)
        registry = MetricsRegistry()
        with LocalCluster(n_servers=2, processes=processes,
                          fault_specs=self.SPECS, fault_seed=9) as c:
            conn = c.connect(metrics=registry)
            try:
                conn.create_table("T", splits=splits)
                w = conn.batch_writer("T", buffer_size=32)
                # the remote backend pipelines automatic flushes
                assert w._pipeline is not None
                with w:
                    for r, v in rows:
                        w.put(r, "", "c", v)
                dedup_hits = sum(
                    s.get("net.server.dedup_hits", 0) for s in
                    conn.instance.cluster_metrics()["servers"].values())
                got = list(conn.scanner("T"))
            finally:
                conn.close()
        # cells, order, values, and server-stamped timestamps all match
        # the unpipelined fault-free in-process run
        assert got == want
        export = registry.export()
        assert export["net.client.retries"] > 0
        assert dedup_hits > 0  # dropped acks were replayed, not re-applied

    def test_flush_drains_the_pipeline(self, cluster):
        conn = _fresh(cluster)
        try:
            conn.create_table("t")
            w = conn.batch_writer("t", buffer_size=10)
            for i in range(35):
                w.put(f"r{i:02d}", "", "c", i)
            w.flush()
            # flush() keeps its durability contract: everything is
            # readable before close()
            assert sum(1 for _ in conn.scanner("t")) == 35
            w.close()
        finally:
            conn.close()


class TestStreamFlowControl:
    def test_overrun_kills_stream_and_resume_is_exact(self, cluster,
                                                      monkeypatch):
        # a 2-chunk window + a consumer that stalls at the start makes
        # the reader shed the stream; the iterator must resume from its
        # last delivered key with no gaps and no duplicates
        monkeypatch.setattr(aio_mod, "STREAM_WINDOW_CHUNKS", 2)
        registry = MetricsRegistry()
        conn = _fresh(cluster, metrics=registry)
        try:
            conn.create_table("big")
            # enough cells for well over STREAM_WINDOW_CHUNKS chunks,
            # whatever the server's chunk size is tuned to
            n = 4 * SCAN_CHUNK_CELLS + 500
            with conn.batch_writer("big") as w:
                for i in range(n):
                    w.put(f"r{i:05d}", "", "c", i)
            rows = []
            for i, cell in enumerate(conn.scanner("big")):
                if i == 0:
                    time.sleep(0.3)  # let the server run far ahead
                rows.append(cell.key.row)
            assert rows == [f"r{i:05d}" for i in range(n)]
            export = registry.export()
            assert export["net.client.stream_overruns"] >= 1
            assert export["net.client.scan_resumes"] >= 1
        finally:
            conn.close()

    def test_abandoned_scan_cancels_server_stream(self):
        with LocalCluster(n_servers=1, processes=False,
                          fault_specs=["scan:delay:1:0.05"],
                          fault_seed=2) as c:
            conn = c.connect(metrics=MetricsRegistry())
            try:
                conn.create_table("t")
                with conn.batch_writer("t") as w:
                    for i in range(3000):  # several delayed chunks
                        w.put(f"r{i:05d}", "", "c", i)
                it = iter(conn.scanner("t"))
                assert next(it) is not None
                del it  # abandon mid-stream → CANCEL_SCAN
                deadline = time.time() + 5.0
                while time.time() < deadline:
                    metrics = conn.instance.cluster_metrics()
                    if metrics["servers"]["tserver0"].get(
                            "net.server.op.cancel_scan.bytes_received",
                            0) > 0:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("server never saw the cancel")
                # the connection stays healthy for later work
                assert sum(1 for _ in conn.scanner("t")) == 3000
            finally:
                conn.close()


class TestNativeAsyncClient:
    def test_gathered_calls_and_stream_decode(self, cluster):
        conn = _fresh(cluster)
        try:
            conn.create_table("t", splits=["m"])
            with conn.batch_writer("t") as w:
                for i in range(700):
                    w.put(f"r{i:04d}", "", "c", i)
            want = [c_.key.row for c_ in conn.scanner("t")]
            proxies = conn.instance.tablets("t")
            core = conn.instance.core
            manager = conn.instance.manager_addr

            async def work():
                # 25 concurrent pings multiplex on the manager conn
                await asyncio.gather(*[
                    core.aio.call(manager, wire.PING, {})
                    for _ in range(25)])
                rows = []
                for p in proxies:  # extent order → global key order
                    stream = await core.aio.open_stream(
                        p.addr, wire.SCAN,
                        {"table": "t", "tablet_id": p.tablet_id,
                         "range": [None, None], "columns": None,
                         "resume": None})
                    while True:
                        code, pay, _ = await core.aio.stream_get(
                            stream, 10.0)
                        if code == wire.DONE:
                            break
                        assert code == wire.CHUNK
                        rows.extend(c_.key.row for c_ in
                                    cells.block_to_cells(pay.block))
                return rows

            assert core.run(work()) == want
        finally:
            conn.close()

    def test_compressed_scan_chunks_roundtrip(self, cluster):
        conn = _fresh(cluster, compress=True)
        try:
            conn.create_table("z")
            with conn.batch_writer("z") as w:
                for i in range(2000):
                    w.put(f"r{i:05d}", "fam", "qual", "value" * 10)
            got = [c_.key.row for c_ in conn.scanner("z")]
            assert got == [f"r{i:05d}" for i in range(2000)]
        finally:
            conn.close()
