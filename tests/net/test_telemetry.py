"""Cluster telemetry plane: the ring buffer, summary rows, reset
flagging, the TELEMETRY op, and the ``repro top`` rendering."""

import pytest

from repro.net.cluster import LocalCluster
from repro.net.telemetry import (ClusterTelemetry, _table_activity,
                                 format_bytes, render_top)
from repro.obs.expose import SnapshotDelta


def make_fetch(script):
    """A fetch callable that replays a scripted sample per call."""
    state = {"i": 0}

    def fetch():
        sample = script[min(state["i"], len(script) - 1)]
        state["i"] += 1
        return sample

    return fetch


class TestRing:
    def test_window_caps_history(self):
        tel = ClusterTelemetry(make_fetch([{"s": {"x": 1}}]), window=3)
        for t in range(10):
            tel.sample(now=float(t))
        series = tel.series("s")
        assert len(series) == 3
        assert [ts for ts, _ in series] == [7.0, 8.0, 9.0]

    def test_window_must_hold_two_samples(self):
        with pytest.raises(ValueError, match="window"):
            ClusterTelemetry(window=1)

    def test_sample_without_fetch_rejected(self):
        tel = ClusterTelemetry.from_dict({"window": 5, "series": {}})
        with pytest.raises(RuntimeError, match="fetch"):
            tel.sample()

    def test_delta_needs_two_samples(self):
        tel = ClusterTelemetry(make_fetch([{"s": {"x": 1}},
                                           {"s": {"x": 5}}]))
        tel.sample(now=0.0)
        assert tel.delta("s") is None
        tel.sample(now=2.0)
        d = tel.delta("s")
        assert d.delta("x") == 4
        assert d.rates()["x"] == pytest.approx(2.0)


class TestSummary:
    SCRIPT = [
        {"tserver0": {"net.server.requests": 100,
                      "net.server.bytes_sent": 1000,
                      "net.server.bytes_received": 500,
                      "net.server.inflight": 1,
                      "dbsim.table.A.entries_read": 10}},
        {"tserver0": {"net.server.requests": 120,
                      "net.server.bytes_sent": 3048,
                      "net.server.bytes_received": 700,
                      "net.server.inflight": 2,
                      "dbsim.table.A.entries_read": 90,
                      "dbsim.table.B.entries_read": 15}},
    ]

    def test_rows_before_and_after_second_sample(self):
        tel = ClusterTelemetry(make_fetch(self.SCRIPT))
        tel.sample(now=0.0)
        row = tel.summary()["tserver0"]
        assert row["requests"] == 100 and row["qps"] is None
        tel.sample(now=2.0)
        row = tel.summary()["tserver0"]
        assert row["qps"] == pytest.approx(10.0)
        assert row["tx_bps"] == pytest.approx(1024.0)
        assert row["inflight"] == 2
        assert row["reset"] is False
        assert row["hot_tables"] == ["A", "B"]

    def test_restart_is_flagged_not_negative(self):
        script = [{"s": {"net.server.requests": 500}},
                  {"s": {"net.server.requests": 3}}]  # restarted
        tel = ClusterTelemetry(make_fetch(script))
        tel.sample(now=0.0)
        tel.sample(now=1.0)
        row = tel.summary()["s"]
        assert row["reset"] is True
        assert row["qps"] == 0.0  # clamped, never negative

    def test_table_activity_merges_sources(self):
        d = SnapshotDelta(
            {"dbsim.table.A.entries_read": 0,
             "net.server.table.A.scan_bytes": 0,
             "dbsim.table.B.seeks": 5},
            {"dbsim.table.A.entries_read": 7,
             "net.server.table.A.scan_bytes": 100,
             "dbsim.table.B.seeks": 5})
        assert _table_activity(d) == {"A": 107}


class TestWireForm:
    def test_round_trip(self):
        tel = ClusterTelemetry(make_fetch(TestSummary.SCRIPT))
        tel.sample(now=0.0)
        tel.sample(now=2.0)
        clone = ClusterTelemetry.from_dict(tel.as_dict())
        assert clone.components() == ["tserver0"]
        assert clone.summary() == tel.summary()


class TestRenderTop:
    def test_table_shape_and_reset_marker(self):
        summary = {
            "tserver0": {"requests": 120, "qps": 10.0, "tx_bps": 1024.0,
                         "rx_bps": 100.0, "err_ps": 0.0, "inflight": 2,
                         "reset": False, "hot_tables": ["A", "B"]},
            "tserver1": {"requests": 5, "qps": 0.0, "tx_bps": 0.0,
                         "rx_bps": 0.0, "err_ps": 0.0, "inflight": 0,
                         "reset": True, "hot_tables": []},
        }
        out = render_top(summary, clock="12:00:00")
        lines = out.splitlines()
        assert lines[0] == "-- repro top @ 12:00:00 --"
        assert "SERVER" in lines[1] and "HOT TABLES" in lines[1]
        assert "tserver0" in lines[2] and "A,B" in lines[2]
        assert lines[3].startswith("tserver1*")
        assert lines[-1] == "(* counters reset since last sample)"

    def test_format_bytes(self):
        assert format_bytes(512) == "512"
        assert format_bytes(1536) == "1.5K"
        assert format_bytes(3 << 20) == "3.0M"


class TestTelemetryOp:
    def test_manager_serves_ring_over_rpc(self):
        with LocalCluster(n_servers=2, processes=False) as c:
            conn = c.connect()
            try:
                conn.create_table("t")
                with conn.batch_writer("t") as w:
                    for i in range(20):
                        w.put(f"r{i:02d}", "", "c", i)
                # each call takes a fresh sample server-side, so two
                # polls give every component a rate window
                conn.instance.telemetry(sample=True)
                data = conn.instance.telemetry(sample=True)
            finally:
                conn.close()
            tel = ClusterTelemetry.from_dict(data)
            assert tel.components() == ["manager", "tserver0", "tserver1"]
            summary = tel.summary()
            assert all(row["qps"] is not None
                       for row in summary.values())
            assert summary["manager"]["requests"] > 0
            # the rendering accepts the live summary end to end
            assert "manager" in render_top(summary)

    def test_telemetry_op_carries_health_block(self):
        with LocalCluster(n_servers=1, processes=False) as c:
            conn = c.connect()
            try:
                conn.create_table("t")
                conn.instance.telemetry(sample=True)
                data = conn.instance.telemetry(sample=True)
            finally:
                conn.close()
        health = data["health"]
        assert health["ok"] is True
        assert set(health["components"]) == {"manager", "tserver0"}
        slos = {c["slo"] for c in health["checks"]}
        assert {"rpc.queue.p99", "rpc.service.p99", "rpc.errors"} <= slos
        # from_dict tolerates (and drops) the extra key
        tel = ClusterTelemetry.from_dict(data)
        summary = tel.summary()
        assert summary["tserver0"]["health"] == []  # no breaches
        rendered = render_top(summary)
        assert "HEALTH" in rendered.splitlines()[0]
        assert " ok " in rendered

    def test_health_column_flags_breaches(self):
        summary = {
            "ok-server": {"requests": 10, "qps": 1.0, "tx_bps": 0.0,
                          "rx_bps": 0.0, "err_ps": 0.0, "inflight": 0,
                          "reset": False, "health": [],
                          "hot_tables": []},
            "sick-server": {"requests": 10, "qps": 1.0, "tx_bps": 0.0,
                            "rx_bps": 0.0, "err_ps": 5.0, "inflight": 0,
                            "reset": False,
                            "health": ["rpc.errors", "rpc.queue.p99"],
                            "hot_tables": []},
            "new-server": {"requests": 0, "qps": None, "tx_bps": None,
                           "rx_bps": None, "err_ps": None, "inflight": 0,
                           "reset": False, "health": None,
                           "hot_tables": []},
        }
        lines = render_top(summary).splitlines()
        by_name = {line.split()[0]: line for line in lines[1:]}
        assert " ok " in by_name["ok-server"]
        assert "SLO!2" in by_name["sick-server"]
        assert " ok " not in by_name["new-server"]  # unknown -> "-"

    def test_background_sampler_fills_ring(self):
        import time

        with LocalCluster(n_servers=1, processes=False,
                          telemetry_interval=0.05) as c:
            deadline = time.time() + 5.0
            conn = c.connect()
            try:
                while time.time() < deadline:
                    data = conn.instance.telemetry(sample=False)
                    tel = ClusterTelemetry.from_dict(data)
                    if len(tel.series("tserver0")) >= 2:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("background sampler never produced "
                                "two samples")
            finally:
                conn.close()
