"""Fault-rule parsing, seeded determinism, and frame corruption."""

import socket

import pytest

from repro.net import wire
from repro.net.faults import (
    FaultPlan,
    FaultRule,
    apply_fault,
    corrupt_frame,
)
from repro.obs.metrics import MetricsRegistry


class TestSpecs:
    def test_parse_full_spec(self):
        rule = FaultRule.from_spec("scan:delay:0.05:0.02")
        assert (rule.op, rule.kind, rule.rate, rule.param) == \
            (wire.SCAN, "delay", 0.05, 0.02)

    def test_parse_wildcard(self):
        rule = FaultRule.from_spec("*:reset:0.01")
        assert rule.op is None
        assert rule.param == 0.0

    def test_spec_roundtrip(self):
        for spec in ("scan:delay:0.05:0.02", "*:reset:0.01",
                     "write_batch:drop:0.1"):
            assert FaultRule.from_spec(spec).spec() == spec

    @pytest.mark.parametrize("bad", [
        "scan:delay",              # too few fields
        "scan:delay:0.1:1:extra",  # too many
        "scan:explode:0.1",        # unknown kind
        "nosuchop:drop:0.1",       # unknown op
        "ok:drop:0.1",             # response codes can't be targeted
        "scan:drop:1.5",           # rate out of range
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultRule.from_spec(bad)

    def test_plan_specs_roundtrip(self):
        specs = ["scan:delay:0.05:0.02", "write_batch:drop:0.01"]
        assert FaultPlan.from_specs(specs, seed=9).specs() == specs


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self):
        specs = ["scan:drop:0.3", "*:delay:0.2:0"]
        seq = [wire.SCAN, wire.PING, wire.SCAN, wire.WRITE_BATCH] * 50

        def run():
            plan = FaultPlan.from_specs(specs, seed=7)
            return [getattr(plan.draw(op), "kind", None) for op in seq]

        first, second = run(), run()
        assert first == second
        assert any(first)  # the rates above must actually fire sometimes

    def test_draws_consumed_even_when_not_firing(self):
        # rule matching only SCAN must not shift the RNG stream seen by
        # later requests of other ops — each *matching* rule consumes
        # exactly one draw
        plan_a = FaultPlan.from_specs(["scan:drop:0.0", "*:delay:0.5:0"],
                                      seed=3)
        plan_b = FaultPlan.from_specs(["scan:drop:1.0", "*:delay:0.5:0"],
                                      seed=3)
        seq = [wire.SCAN, wire.PING] * 40
        kinds_a = [getattr(plan_a.draw(op), "kind", None) for op in seq]
        kinds_b = [getattr(plan_b.draw(op), "kind", None) for op in seq]
        # where a drop fired in b the first matching rule wins, but the
        # delay decisions (second rule) line up one for one
        delays_a = [k == "delay" for k in kinds_a]
        delays_b = [k in ("delay", "drop") for k in kinds_b]
        assert [d for op, d in zip(seq, delays_a) if op == wire.PING] == \
            [d for op, d in zip(seq, delays_b) if op == wire.PING]

    def test_zero_rate_never_fires(self):
        plan = FaultPlan.from_specs(["*:drop:0.0"], seed=1)
        assert all(plan.draw(wire.SCAN) is None for _ in range(200))

    def test_unit_rate_always_fires(self):
        plan = FaultPlan.from_specs(["*:drop:1.0"], seed=1)
        assert all(plan.draw(wire.SCAN).kind == "drop"
                   for _ in range(50))


class TestApplication:
    def _deliver(self, rule, frame):
        a, b = socket.socketpair()
        metrics = MetricsRegistry()
        try:
            delivered = apply_fault(rule, a, frame, metrics)
            a.close()
            received = b""
            while True:
                chunk = b.recv(65536)
                if not chunk:
                    break
                received += chunk
            return delivered, received, metrics
        finally:
            b.close()

    def test_corrupt_frame_fails_crc_but_parses(self):
        frame = wire.encode_frame(wire.OK, {"rows": 5})
        damaged = corrupt_frame(frame)
        assert len(damaged) == len(frame)
        # length prefix intact: the stream stays parseable
        assert damaged[:4] == frame[:4]
        with pytest.raises(wire.FrameCorruptError):
            wire.decode_body(damaged[4:])

    def test_drop_delivers_nothing(self):
        frame = wire.encode_frame(wire.OK, {})
        delivered, received, metrics = self._deliver(
            FaultRule(None, "drop", 1.0), frame)
        assert not delivered
        assert received == b""
        assert metrics.export()["net.server.faults.drop"] == 1

    def test_delay_still_delivers_intact(self):
        frame = wire.encode_frame(wire.OK, {"x": 1})
        delivered, received, _ = self._deliver(
            FaultRule(None, "delay", 1.0, param=0.0), frame)
        assert delivered
        assert received == frame

    def test_slowdrip_delivers_every_byte(self):
        frame = wire.encode_frame(wire.OK, {"x": "y" * 40})
        delivered, received, _ = self._deliver(
            FaultRule(None, "slowdrip", 1.0, param=7), frame)
        assert delivered
        assert received == frame

    def test_corrupt_delivers_damaged_copy(self):
        frame = wire.encode_frame(wire.OK, {"x": 1})
        delivered, received, _ = self._deliver(
            FaultRule(None, "corrupt", 1.0), frame)
        assert delivered
        assert received != frame
        assert len(received) == len(frame)

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule(None, "nope", 0.5)
        with pytest.raises(ValueError):
            FaultRule(None, "drop", -0.1)
