"""Framing, codecs and error mapping for the wire protocol (v3)."""

import socket
import struct
import threading
import zlib

import pytest

from repro.dbsim.errors import (
    BusyError,
    NotHostedError,
    ServerCrashedError,
)
from repro.dbsim.iterators import SummingCombiner
from repro.dbsim.key import Cell, Key, Range
from repro.dbsim.server import TableConfig
from repro.net import cells, wire


class TestFrames:
    def test_roundtrip(self):
        frame = wire.encode_frame(wire.SCAN, {"table": "t", "n": 3})
        code, payload, tc, req = wire.decode_body(frame[4:])
        assert code == wire.SCAN
        assert payload == {"table": "t", "n": 3}
        assert tc is None  # no trace context attached
        assert req == 0  # unmultiplexed

    def test_request_id_roundtrip(self):
        frame = wire.encode_frame(wire.OK, {"applied": 7},
                                  req=0x1122334455667788)
        code, payload, tc, req = wire.decode_body(frame[4:])
        assert (code, payload) == (wire.OK, {"applied": 7})
        assert req == 0x1122334455667788

    def test_payload_may_be_any_json_value(self):
        for payload in (None, 7, "x", [1, "a", None], {"k": [1, 2]}):
            code, got, _, _ = wire.decode_body(
                wire.encode_frame(wire.OK, payload)[4:])
            assert got == payload

    def test_trace_context_roundtrip(self):
        # a 2-tuple means "sampled" (the pre-sampling sender shape);
        # the decoder always yields the explicit 3-tuple
        frame = wire.encode_frame(wire.PING, {"x": 1},
                                  tc=("ab" * 16, "cd" * 8), req=9)
        code, payload, got, req = wire.decode_body(frame[4:])
        assert (code, payload, req) == (wire.PING, {"x": 1}, 9)
        assert got == ("ab" * 16, "cd" * 8, True)

    def test_trace_context_sampled_flag_roundtrip(self):
        for sampled in (True, False):
            tc = ("12" * 16, "34" * 8, sampled)
            frame = wire.encode_frame(wire.PING, None, tc=tc)
            _, _, got, _ = wire.decode_body(frame[4:])
            assert got == tc

    def test_corrupt_trace_context_detected(self):
        frame = bytearray(wire.encode_frame(wire.PING, {},
                                            tc=("ab" * 16, "cd" * 8)))
        frame[12] ^= 0xFF  # damage the trace-context block
        with pytest.raises(wire.FrameCorruptError):
            wire.decode_body(bytes(frame[4:]))

    def test_corrupt_request_id_detected(self):
        # the req id sits right before the payload, inside the CRC
        frame = bytearray(wire.encode_frame(wire.OK, {"n": 1}, req=42))
        frame[wire.FRAME_OVERHEAD - 1] ^= 0xFF
        with pytest.raises(wire.FrameCorruptError):
            wire.decode_body(bytes(frame[4:]))

    def test_corrupt_payload_detected(self):
        frame = bytearray(wire.encode_frame(wire.OK, {"rows": 10}))
        frame[-2] ^= 0xFF  # damage the payload in flight
        with pytest.raises(wire.FrameCorruptError):
            wire.decode_body(bytes(frame[4:]))

    def test_wrong_version_rejected(self):
        frame = bytearray(wire.encode_frame(wire.OK, {}))
        frame[4] = wire.WIRE_VERSION + 1
        with pytest.raises(wire.ProtocolError):
            wire.decode_body(bytes(frame[4:]))

    def test_unknown_flags_rejected(self):
        frame = bytearray(wire.encode_frame(wire.OK, {"n": 1}))
        # flip an undefined flag bit and re-CRC so only the flag is bad
        frame[6] |= 0x80
        body = bytes(frame[4:])
        tc_req_payload = body[wire._BODY.size:]
        crc = zlib.crc32(tc_req_payload[wire._TC.size + wire._REQ.size:],
                         zlib.crc32(
                             tc_req_payload[wire._TC.size:
                                            wire._TC.size + wire._REQ.size],
                             zlib.crc32(tc_req_payload[:wire._TC.size])))
        body = wire._BODY.pack(wire.WIRE_VERSION, wire.OK, 0x80 | 0,
                               crc) + tc_req_payload
        with pytest.raises(wire.ProtocolError, match="flags"):
            wire.decode_body(body)

    def test_truncated_body_rejected(self):
        with pytest.raises(wire.ProtocolError):
            wire.decode_body(b"\x01\x02")

    def test_oversized_frame_rejected_before_allocation(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("!I", wire.MAX_FRAME_BYTES + 1))
            with pytest.raises(wire.ProtocolError):
                wire.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_send_recv_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            sent = wire.send_frame(a, wire.PING, {"hello": True}, req=3)
            code, payload, nbytes, _, req = wire.recv_frame(b)
            assert (code, payload, req) == (wire.PING, {"hello": True}, 3)
            assert nbytes == sent
        finally:
            a.close()
            b.close()

    def test_peer_close_mid_frame(self):
        a, b = socket.socketpair()
        try:
            frame = wire.encode_frame(wire.OK, {"big": "x" * 100})
            a.sendall(frame[: len(frame) // 2])
            a.close()
            with pytest.raises(wire.ConnectionClosedError):
                wire.recv_frame(b)
        finally:
            b.close()

    def test_streamed_frames_keep_boundaries(self):
        # many frames written back to back parse one at a time through
        # one reused FrameReader (the recv_into path)
        a, b = socket.socketpair()
        try:
            def writer():
                for i in range(20):
                    wire.send_frame(a, wire.CHUNK, {"i": i}, req=5)
                wire.send_frame(a, wire.DONE, None, req=5)

            t = threading.Thread(target=writer)
            t.start()
            reader = wire.FrameReader(b)
            seen = []
            while True:
                code, payload, _, _, req = reader.read()
                assert req == 5
                if code == wire.DONE:
                    break
                seen.append(payload["i"])
            t.join()
            assert seen == list(range(20))
        finally:
            a.close()
            b.close()


class TestBinaryPayloads:
    MUTS = [
        ("r1", "f", "q", "", 11, False, "v1"),
        ("r2", "", "", "a&b", 0, True, ""),
        ("rösti", "fäm", "qüal", "", -3, False, "välue ☃"),
    ]

    def test_cells_payload_roundtrip(self):
        payload = wire.CellsPayload({"table": "t", "seq": 4},
                                    cells.encode_block(self.MUTS))
        frame = wire.encode_frame(wire.WRITE_BATCH, payload, req=2)
        code, got, _, req = wire.decode_body(frame[4:])
        assert (code, req) == (wire.WRITE_BATCH, 2)
        assert isinstance(got, wire.CellsPayload)
        assert got.meta == {"table": "t", "seq": 4}
        assert cells.decode_mutations(got.block) == self.MUTS

    def test_compressed_payload_roundtrip(self):
        muts = [(f"row{i:05d}", "fam", "qual", "", i, False, "v" * 40)
                for i in range(200)]
        payload = wire.CellsPayload({}, cells.encode_block(muts))
        frame = wire.encode_frame(wire.CHUNK, payload, compress=True)
        # big repetitive payload: zlib must have won
        assert len(frame) < len(cells.encode_block(muts))
        flags = frame[6]
        assert flags & wire.FLAG_ZLIB
        code, got, _, _ = wire.decode_body(frame[4:])
        assert cells.decode_mutations(got.block) == muts

    def test_small_payload_not_compressed(self):
        frame = wire.encode_frame(wire.OK, {"applied": 1}, compress=True)
        assert not frame[6] & wire.FLAG_ZLIB

    def test_incompressible_payload_stays_raw(self):
        import os
        muts = [("r", "f", "q", "", 1, False,
                 os.urandom(600).hex()[:600])]
        # hex of urandom barely compresses; equality either way — the
        # decoder must handle both flag states
        payload = wire.CellsPayload({}, cells.encode_block(muts))
        frame = wire.encode_frame(wire.CHUNK, payload, compress=True)
        code, got, _, _ = wire.decode_body(frame[4:])
        assert cells.decode_mutations(got.block) == muts

    def test_corrupt_compressed_payload_is_typed(self):
        muts = [("r" * 600, "f", "q", "", 1, False, "v")]
        payload = wire.CellsPayload({}, cells.encode_block(muts))
        frame = bytearray(wire.encode_frame(wire.CHUNK, payload,
                                            compress=True))
        frame[-1] ^= 0xFF
        with pytest.raises(wire.FrameCorruptError):
            wire.decode_body(bytes(frame[4:]))


class TestCellBlocks:
    def test_empty_block(self):
        assert cells.decode_mutations(cells.encode_block([])) == []

    def test_columns_zero_copy_views(self):
        block = cells.encode_block([("r", "f", "q", "v1|v2", 9, False,
                                     "val")])
        rows, fams, quals, vis, ts, dels, vals = \
            cells.decode_columns(block)
        assert rows == ["r"] and vals == ["val"]
        assert ts == [9] and dels == [False] and vis == ["v1|v2"]

    def test_cells_roundtrip(self):
        cs = [Cell(Key("r1", "f", "q", "", 4), "x"),
              Cell(Key("r2", "f", "q", "a", 5, delete=True), "")]
        assert cells.block_to_cells(cells.cells_to_block(cs)) == cs

    def test_negative_and_large_timestamps(self):
        muts = [("r", "f", "q", "", -(1 << 62), False, "v"),
                ("r", "f", "q", "", (1 << 62), False, "v")]
        assert cells.decode_mutations(cells.encode_block(muts)) == muts

    def test_truncated_block_is_typed(self):
        block = cells.encode_block([("r", "f", "q", "", 1, False, "v")])
        with pytest.raises(cells.BlockFormatError):
            cells.decode_mutations(block[:-3])

    def test_bad_format_byte_is_typed(self):
        block = bytearray(cells.encode_block([]))
        block[0] = 99
        with pytest.raises(cells.BlockFormatError):
            cells.decode_mutations(bytes(block))


class TestErrorFrames:
    @pytest.mark.parametrize("exc", [
        KeyError("no such table 'x'"),
        ValueError("bad split row"),
        ServerCrashedError("tserver0 is down"),
        NotHostedError("tablet t!0001 is not hosted here"),
        BusyError("admission queue full"),
    ])
    def test_same_type_comes_back(self, exc):
        payload = wire.error_payload(exc)
        with pytest.raises(type(exc)) as ei:
            wire.raise_error(payload)
        assert str(exc.args[0]) in str(ei.value)

    def test_error_from_payload_unraised(self):
        exc = wire.error_from_payload(
            wire.error_payload(BusyError("shed")))
        assert isinstance(exc, BusyError)
        assert "shed" in str(exc)

    def test_unknown_type_degrades_to_rpcerror(self):
        class Weird(Exception):
            pass

        payload = wire.error_payload(Weird("odd"))
        assert payload["type"] == "RpcError"
        with pytest.raises(wire.RpcError, match="odd"):
            wire.raise_error(payload)

    def test_subclass_maps_to_nearest_known(self):
        class MyCrash(ServerCrashedError):
            pass

        payload = wire.error_payload(MyCrash("gone"))
        assert payload["type"] == "ServerCrashedError"


class TestCodecs:
    def test_cell_roundtrip(self):
        cell = Cell(Key("r", "f", "q", "vis", 42, delete=True), "v")
        assert wire.wire_to_cell(wire.cell_to_wire(cell)) == cell

    def test_range_roundtrip(self):
        for rng in (Range(), Range("a", "m"), Range(None, "z"),
                    Range("a", None)):
            got = wire.wire_to_range(wire.range_to_wire(rng))
            assert (got.start_row, got.stop_row) == \
                (rng.start_row, rng.stop_row)

    def test_config_roundtrip_with_named_combiner(self):
        config = TableConfig(max_versions=3,
                             table_iterators=(SummingCombiner,))
        got = wire.wire_to_config(wire.config_to_wire(config))
        assert got.max_versions == 3
        assert got.table_iterators == (SummingCombiner,)

    def test_none_config_passes_through(self):
        assert wire.config_to_wire(None) is None
        assert wire.wire_to_config(None) is None

    def test_arbitrary_table_iterator_rejected_with_clear_error(self):
        config = TableConfig(table_iterators=(lambda src: src,))
        with pytest.raises(ValueError, match="not wire-serializable"):
            wire.config_to_wire(config)

    def test_unknown_iterator_name_rejected(self):
        with pytest.raises(ValueError, match="unknown table iterator"):
            wire.wire_to_config({"max_versions": 1,
                                 "table_iterators": ["median"],
                                 "flush_bytes": 1 << 20})
