"""Framing, codecs and error mapping for the wire protocol."""

import socket
import struct
import threading

import pytest

from repro.dbsim.errors import NotHostedError, ServerCrashedError
from repro.dbsim.iterators import SummingCombiner
from repro.dbsim.key import Cell, Key, Range
from repro.dbsim.server import TableConfig
from repro.net import wire


class TestFrames:
    def test_roundtrip(self):
        frame = wire.encode_frame(wire.SCAN, {"table": "t", "n": 3})
        code, payload, tc = wire.decode_body(frame[4:])
        assert code == wire.SCAN
        assert payload == {"table": "t", "n": 3}
        assert tc is None  # no trace context attached

    def test_payload_may_be_any_json_value(self):
        for payload in (None, 7, "x", [1, "a", None], {"k": [1, 2]}):
            code, got, _ = wire.decode_body(
                wire.encode_frame(wire.OK, payload)[4:])
            assert got == payload

    def test_trace_context_roundtrip(self):
        tc = ("ab" * 16, "cd" * 8)
        frame = wire.encode_frame(wire.PING, {"x": 1}, tc=tc)
        code, payload, got = wire.decode_body(frame[4:])
        assert (code, payload) == (wire.PING, {"x": 1})
        assert got == tc

    def test_corrupt_trace_context_detected(self):
        frame = bytearray(wire.encode_frame(wire.PING, {},
                                            tc=("ab" * 16, "cd" * 8)))
        frame[12] ^= 0xFF  # damage the trace-context block
        with pytest.raises(wire.FrameCorruptError):
            wire.decode_body(bytes(frame[4:]))

    def test_corrupt_payload_detected(self):
        frame = bytearray(wire.encode_frame(wire.OK, {"rows": 10}))
        frame[-2] ^= 0xFF  # damage the payload in flight
        with pytest.raises(wire.FrameCorruptError):
            wire.decode_body(bytes(frame[4:]))

    def test_wrong_version_rejected(self):
        frame = bytearray(wire.encode_frame(wire.OK, {}))
        frame[4] = wire.WIRE_VERSION + 1
        with pytest.raises(wire.ProtocolError):
            wire.decode_body(bytes(frame[4:]))

    def test_truncated_body_rejected(self):
        with pytest.raises(wire.ProtocolError):
            wire.decode_body(b"\x01\x02")

    def test_oversized_frame_rejected_before_allocation(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("!I", wire.MAX_FRAME_BYTES + 1))
            with pytest.raises(wire.ProtocolError):
                wire.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_send_recv_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            sent = wire.send_frame(a, wire.PING, {"hello": True})
            code, payload, nbytes, _ = wire.recv_frame(b)
            assert (code, payload) == (wire.PING, {"hello": True})
            assert nbytes == sent
        finally:
            a.close()
            b.close()

    def test_peer_close_mid_frame(self):
        a, b = socket.socketpair()
        try:
            frame = wire.encode_frame(wire.OK, {"big": "x" * 100})
            a.sendall(frame[: len(frame) // 2])
            a.close()
            with pytest.raises(wire.ConnectionClosedError):
                wire.recv_frame(b)
        finally:
            b.close()

    def test_streamed_frames_keep_boundaries(self):
        # many frames written back to back parse one at a time
        a, b = socket.socketpair()
        try:
            def writer():
                for i in range(20):
                    wire.send_frame(a, wire.CHUNK, {"i": i})
                wire.send_frame(a, wire.DONE, None)

            t = threading.Thread(target=writer)
            t.start()
            seen = []
            while True:
                code, payload, _, _ = wire.recv_frame(b)
                if code == wire.DONE:
                    break
                seen.append(payload["i"])
            t.join()
            assert seen == list(range(20))
        finally:
            a.close()
            b.close()


class TestErrorFrames:
    @pytest.mark.parametrize("exc", [
        KeyError("no such table 'x'"),
        ValueError("bad split row"),
        ServerCrashedError("tserver0 is down"),
        NotHostedError("tablet t!0001 is not hosted here"),
    ])
    def test_same_type_comes_back(self, exc):
        payload = wire.error_payload(exc)
        with pytest.raises(type(exc)) as ei:
            wire.raise_error(payload)
        assert str(exc.args[0]) in str(ei.value)

    def test_unknown_type_degrades_to_rpcerror(self):
        class Weird(Exception):
            pass

        payload = wire.error_payload(Weird("odd"))
        assert payload["type"] == "RpcError"
        with pytest.raises(wire.RpcError, match="odd"):
            wire.raise_error(payload)

    def test_subclass_maps_to_nearest_known(self):
        class MyCrash(ServerCrashedError):
            pass

        payload = wire.error_payload(MyCrash("gone"))
        assert payload["type"] == "ServerCrashedError"


class TestCodecs:
    def test_cell_roundtrip(self):
        cell = Cell(Key("r", "f", "q", "vis", 42, delete=True), "v")
        assert wire.wire_to_cell(wire.cell_to_wire(cell)) == cell

    def test_range_roundtrip(self):
        for rng in (Range(), Range("a", "m"), Range(None, "z"),
                    Range("a", None)):
            got = wire.wire_to_range(wire.range_to_wire(rng))
            assert (got.start_row, got.stop_row) == \
                (rng.start_row, rng.stop_row)

    def test_config_roundtrip_with_named_combiner(self):
        config = TableConfig(max_versions=3,
                             table_iterators=(SummingCombiner,))
        got = wire.wire_to_config(wire.config_to_wire(config))
        assert got.max_versions == 3
        assert got.table_iterators == (SummingCombiner,)

    def test_none_config_passes_through(self):
        assert wire.config_to_wire(None) is None
        assert wire.wire_to_config(None) is None

    def test_arbitrary_table_iterator_rejected_with_clear_error(self):
        config = TableConfig(table_iterators=(lambda src: src,))
        with pytest.raises(ValueError, match="not wire-serializable"):
            wire.config_to_wire(config)

    def test_unknown_iterator_name_rejected(self):
        with pytest.raises(ValueError, match="unknown table iterator"):
            wire.wire_to_config({"max_versions": 1,
                                 "table_iterators": ["median"],
                                 "flush_bytes": 1 << 20})
