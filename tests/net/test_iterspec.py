"""repro.net.iterspec: the wire-serializable push-down spec language.

Three contracts: (1) specs round-trip through their JSON wire form
losslessly; (2) anything outside the whitelist — unknown op or apply
names, bad arguments, misplaced reduce, raw callables — is rejected
with a typed error before any stack is built; (3) a spec executed
server-side is bit-identical (timestamps included) to the same spec
executed client-side, on thread and process clusters, under seeded
drop/delay/corrupt faults.
"""

import json

import pytest

from repro.dbsim.client import Connector
from repro.dbsim.key import Range
from repro.dbsim.server import Instance, TableConfig
from repro.net.cluster import LocalCluster
from repro.net.iterspec import (
    APPLY_OPS,
    IterSpec,
    IterSpecError,
    NonSerializableIteratorError,
    as_wire,
    build_scan_iterators,
    coerce,
)
from repro.obs.metrics import MetricsRegistry

#: seeded drop + delay (+ corrupt, to force scan resumes) fault plan
SPECS = ["write_batch:drop:0.1", "scan:corrupt:0.25", "*:delay:0.05:0.002"]
SEED = 42

#: one spec per op plus composites — the bit-identity catalog
CATALOG = [
    IterSpec().column_filter(["v1", "v4", "v7"]),
    IterSpec().regex(row="v[0-4]$"),
    IterSpec().regex(qualifier="v[02468]", value="^[23]"),
    IterSpec().value_ge(2.0),
    IterSpec().value_ne(1.0),
    IterSpec().age_off(2),
    IterSpec().versions(1),
    IterSpec().combiner("sum"),
    IterSpec().combiner("max"),
    IterSpec().apply("scale", 2.0),
    IterSpec().apply("clip", 1.0, 2.0),
    IterSpec().apply("negate", drop_zero=False),
    IterSpec().reduce("sum", qualifier="deg"),
    IterSpec().reduce("max", family="f", qualifier="m"),
    IterSpec().reduce("sum", count=True),
    IterSpec().value_ge(2.0).apply("square").reduce("min"),
    IterSpec().column_filter(["v1", "v2", "v3"]).combiner("sum"),
]


def _local_conn(n_servers=3):
    return Connector(Instance(n_servers=n_servers,
                              metrics=MetricsRegistry()))


def _ingest(conn):
    """Deterministic multi-version graph table (same write order
    everywhere so logical timestamps line up bit-for-bit)."""
    conn.create_table("E", TableConfig(max_versions=3),
                      splits=["v3", "v6"])
    with conn.batch_writer("E", buffer_size=16) as w:
        for i in range(9):
            for j in range(1, 4):
                w.put(f"v{i}", "", f"v{(i * j + 1) % 9}", 1 + (i + j) % 3)
    # second round over a subset: multi-version keys + a few deletes
    with conn.batch_writer("E", buffer_size=16) as w:
        for i in range(0, 9, 2):
            w.put(f"v{i}", "", f"v{(i + 1) % 9}", 5.0)
        w.delete("v1", "", "v2")
        w.delete("v3", "", "v4")


class TestRoundTrip:
    @pytest.mark.parametrize("spec", CATALOG, ids=repr)
    def test_wire_round_trip_through_json(self, spec):
        wired = json.loads(json.dumps(spec.to_wire()))
        back = IterSpec.from_wire(wired)
        assert back == spec
        assert hash(back) == hash(spec)
        assert back.to_wire() == spec.to_wire()

    def test_empty_spec_is_falsy_and_round_trips(self):
        spec = IterSpec()
        assert not spec and len(spec) == 0
        assert IterSpec.from_wire(spec.to_wire()) == spec
        assert as_wire(None) is None
        assert build_scan_iterators(None) == ()

    def test_builders_return_new_specs(self):
        base = IterSpec().value_gt(1.0)
        grown = base.combiner("sum")
        assert len(base) == 1 and len(grown) == 2
        with pytest.raises(AttributeError):
            base.ops = ()

    def test_factories_match_op_count(self):
        for spec in CATALOG:
            assert len(spec.build_factories()) == len(spec)

    def test_coerce_accepts_spec_wire_and_none(self):
        spec = IterSpec().value_ge(2.0)
        assert coerce(spec) is spec
        assert coerce(spec.to_wire()) == spec
        assert coerce(None) is None


class TestRejection:
    @pytest.mark.parametrize("bad", [
        [{"op": "nope"}],
        [{"qualifiers": ["q"]}],                          # missing op
        ["not-a-dict"],
        {"op": "regex", "row": "x"},                      # not a list
        [{"op": "column", "qualifiers": []}],
        [{"op": "column", "qualifiers": [1, 2]}],
        [{"op": "regex"}],                                # no pattern
        [{"op": "regex", "row": "("}],                    # bad regex
        [{"op": "regex", "row": 3}],
        [{"op": "value_filter", "cmp": "gte", "threshold": 1}],
        [{"op": "value_filter", "cmp": "ge", "threshold": "x"}],
        [{"op": "value_filter", "cmp": "ge", "threshold": True}],
        [{"op": "age_off", "cutoff": 1.5}],
        [{"op": "age_off"}],
        [{"op": "versions", "max_versions": 0}],
        [{"op": "versions", "max_versions": "1"}],
        [{"op": "combiner", "fn": "avg"}],
        [{"op": "apply", "name": "exec"}],                # not whitelisted
        [{"op": "apply", "name": "scale", "args": []}],   # wrong arity
        [{"op": "apply", "name": "abs", "args": ["x"]}],
        [{"op": "apply", "name": "abs", "args": [], "drop_zero": 1}],
        [{"op": "reduce", "fn": "prod"}],
        [{"op": "reduce", "fn": "sum", "qualifier": 7}],
        [{"op": "reduce", "fn": "sum"}, {"op": "combiner", "fn": "sum"}],
    ], ids=lambda b: json.dumps(b)[:48])
    def test_bad_wire_forms_rejected(self, bad):
        with pytest.raises(IterSpecError):
            IterSpec.from_wire(bad)
        with pytest.raises(IterSpecError):
            build_scan_iterators(bad)

    def test_reduce_must_be_last_in_builder_chain(self):
        with pytest.raises(IterSpecError, match="last"):
            IterSpec().reduce("sum").value_ge(1.0)

    def test_callable_iterspec_is_a_typed_error(self):
        with pytest.raises(NonSerializableIteratorError):
            coerce(lambda src: src)

    def test_apply_registry_arities_are_honoured(self):
        for name, (arity, maker) in APPLY_OPS.items():
            fn = maker(*([2.0] * arity))
            assert isinstance(fn(3.0), (int, float))


class TestLocalExecution:
    def test_reduce_spec_folds_rows(self):
        conn = _local_conn()
        _ingest(conn)
        got = list(conn.scanner(
            "E", iterspec=IterSpec().reduce("sum", count=True)))
        assert [c.key.row for c in got] == [f"v{i}" for i in range(9)]
        assert all(c.key.qualifier == "deg" for c in got)

    def test_spec_equals_handwritten_factories(self):
        conn = _local_conn()
        _ingest(conn)
        spec = IterSpec().value_ge(2.0).apply("scale", 2.0)
        want = list(conn.scanner(
            "E", scan_iterators=spec.build_factories()))
        got = list(conn.scanner("E", iterspec=spec))
        assert got == want  # order + timestamps

    def test_scanner_rejects_callable_iterspec(self):
        conn = _local_conn()
        conn.create_table("t")
        with pytest.raises(NonSerializableIteratorError):
            conn.scanner("t", iterspec=lambda src: src)


@pytest.mark.parametrize("processes", [False, True],
                         ids=["threads", "procs"])
class TestRemoteBitIdentity:
    def test_specs_bit_identical_under_faults(self, processes):
        local = _local_conn()
        _ingest(local)
        want = {i: list(local.scanner("E", iterspec=spec))
                for i, spec in enumerate(CATALOG)}

        with LocalCluster(n_servers=3, processes=processes,
                          fault_specs=SPECS, fault_seed=SEED) as c:
            registry = MetricsRegistry()
            conn = c.connect(metrics=registry)
            try:
                _ingest(conn)
                for i, spec in enumerate(CATALOG):
                    per_cell = list(conn.scanner("E", iterspec=spec))
                    columnar = [cl for b in conn.scanner(
                        "E", iterspec=spec).scan_columns()
                        for cl in b.cells()]
                    assert per_cell == want[i], f"spec #{i}: {spec!r}"
                    assert columnar == want[i], f"spec #{i}: {spec!r}"
                servers = conn.instance.cluster_metrics()["servers"]
            finally:
                conn.close()
        stacks = sum(m.get("net.server.pushdown.stacks", 0)
                     for m in servers.values())
        folded = sum(m.get("net.server.pushdown.cells_folded", 0)
                     for m in servers.values())
        assert stacks > 0 and folded > 0

    def test_batch_scanner_spec_bit_identical(self, processes):
        spec = IterSpec().value_ge(2.0).reduce("sum", count=True)
        ranges = [Range.exact_row(f"v{i}") for i in range(0, 9, 2)]

        local = _local_conn()
        _ingest(local)
        wants = {}
        for coalesce in (True, False):
            bs = local.batch_scanner("E", coalesce=coalesce, iterspec=spec)
            bs.set_ranges(ranges)
            wants[coalesce] = list(bs)
        assert wants[True] == wants[False]

        with LocalCluster(n_servers=3, processes=processes,
                          fault_specs=SPECS, fault_seed=SEED) as c:
            conn = c.connect()
            try:
                _ingest(conn)
                for coalesce in (True, False):
                    bs = conn.batch_scanner("E", coalesce=coalesce,
                                            iterspec=spec)
                    bs.set_ranges(ranges)
                    assert list(bs) == wants[coalesce]
                    bs = conn.batch_scanner("E", coalesce=coalesce,
                                            iterspec=spec)
                    bs.set_ranges(ranges)
                    got = [cl for b in bs.scan_columns()
                           for cl in b.cells()]
                    assert got == wants[coalesce]
            finally:
                conn.close()


class TestRemoteErrors:
    def test_bad_spec_rejected_before_any_rpc(self):
        with LocalCluster(n_servers=1, processes=False) as c:
            conn = c.connect()
            try:
                conn.create_table("t")
                with pytest.raises(IterSpecError):
                    list(conn.scanner("t", iterspec=[{"op": "nope"}]))
                with pytest.raises(NonSerializableIteratorError):
                    conn.scanner("t", iterspec=lambda src: src)
            finally:
                conn.close()

    def test_remote_batch_scanner_callables_typed_error(self):
        with LocalCluster(n_servers=1, processes=False) as c:
            conn = c.connect()
            try:
                conn.create_table("t")
                with conn.batch_writer("t") as w:
                    w.put("r", "", "q", 1.0)
                bs = conn.batch_scanner(
                    "t", scan_iterators=(lambda src: src,))
                bs.set_ranges([Range()])
                with pytest.raises(NonSerializableIteratorError,
                                   match="scan iterators"):
                    list(bs.scan_columns())
            finally:
                conn.close()

    def test_server_rejects_unvalidated_wire_spec(self):
        """A malicious client that skips client-side validation gets a
        typed IterSpecError frame back, not a server stack."""
        from repro.net import wire

        with LocalCluster(n_servers=1, processes=False) as c:
            conn = c.connect()
            try:
                conn.create_table("t")
                with conn.batch_writer("t") as w:
                    w.put("r", "", "q", 1.0)
                inst = conn.instance
                proxy = inst.tablets("t")[0]
                core = inst.core

                async def evil():
                    stream = await core.aio.open_stream(
                        proxy.addr, wire.SCAN, {
                            "table": "t", "tablet_id": proxy.tablet_id,
                            "range": [None, None], "columns": None,
                            "resume": None,
                            "iterspec": [{"op": "__import__"}]})
                    code, pay, _ = await core.aio.stream_get(stream, 30.0)
                    return code, pay

                code, pay = core.run(evil())
                assert code == wire.ERROR
                with pytest.raises(IterSpecError):
                    wire.raise_error(pay)
            finally:
                conn.close()
