"""The zero-materialization columnar scan pipeline, end to end.

Bit-identity is the contract: every batch yielded by ``scan_columns``
must materialise to exactly the cells — order and timestamps included —
that the per-cell iterator path produces, on the in-process backend and
on a faulted remote cluster alike, and the Graphulo kernels must emit
bit-identical result tables when fed through the columnar path.
"""

import pytest

from repro.dbsim.client import Connector
from repro.dbsim.graphulo import degree_table, table_bfs, table_mult
from repro.dbsim.server import Instance
from repro.net.cluster import LocalCluster
from repro.net.server import SCAN_CHUNK_CELLS
from repro.obs.metrics import MetricsRegistry

#: seeded drop + delay (+ corrupt, to force scan resumes) fault plan
SPECS = ["write_batch:drop:0.1", "scan:corrupt:0.25", "*:delay:0.05:0.002"]
SEED = 42


def _local_conn(n_servers=3):
    return Connector(Instance(n_servers=n_servers,
                              metrics=MetricsRegistry()))


def _ingest_graph(conn):
    """Deterministic small graph + TableMult operands (same write order
    everywhere so logical timestamps line up bit-for-bit)."""
    conn.create_table("E", splits=["v3", "v6"])
    with conn.batch_writer("E", buffer_size=16) as w:
        for i in range(9):
            for j in range(1, 4):
                w.put(f"v{i}", "", f"v{(i * j + 1) % 9}", 1 + (i + j) % 3)
    conn.create_table("AT", splits=["t3"])
    conn.create_table("B", splits=["t3"])
    with conn.batch_writer("AT", buffer_size=16) as w:
        for t in range(6):
            for u in range(4):
                if (t + u) % 3:
                    w.put(f"t{t}", "", f"u{u}", t + u)
    with conn.batch_writer("B", buffer_size=16) as w:
        for t in range(6):
            for v in range(5):
                if (t * v) % 4 != 1:
                    w.put(f"t{t}", "", f"w{v}", t - v)


def _run_kernels(conn):
    """Run the three columnar-consuming kernels; return everything an
    equality check needs (result cells include timestamps)."""
    table_mult(conn, "AT", "B", "C", via="engine")
    degree_table(conn, "E", "Edeg")
    bfs = table_bfs(conn, "E", ["v0"], hops=3)
    bfs_deg = table_bfs(conn, "E", ["v0", "v4"], hops=2,
                        min_degree=4.0, degree_table_name="Edeg")
    return (list(conn.scanner("C")), list(conn.scanner("Edeg")),
            bfs, bfs_deg)


class TestScanColumnsEquivalence:
    def test_local_scanner_columnar_equals_per_cell(self):
        conn = _local_conn()
        _ingest_graph(conn)
        for table in ("E", "AT", "B"):
            want = list(conn.scanner(table))
            got = [c for b in conn.scanner(table).scan_columns()
                   for c in b.cells()]
            assert got == want  # order + timestamps

    def test_local_batch_scanner_columnar_equals_per_cell(self):
        from repro.dbsim.key import Range
        conn = _local_conn()
        _ingest_graph(conn)
        ranges = [Range.exact_row(f"v{i}") for i in range(0, 9, 2)]
        for coalesce in (True, False):
            bs = conn.batch_scanner("E", coalesce=coalesce)
            bs.set_ranges(ranges)
            want = list(bs)
            bs = conn.batch_scanner("E", coalesce=coalesce)
            bs.set_ranges(ranges)
            got = [c for b in bs.scan_columns() for c in b.cells()]
            assert got == want

    def test_per_cell_scan_iterators_rejected(self):
        conn = _local_conn()
        conn.create_table("t")
        noop = lambda src: src
        with pytest.raises(ValueError, match="scan iterators"):
            list(conn.scanner("t", scan_iterators=(noop,)).scan_columns())
        bs = conn.batch_scanner("t", scan_iterators=(noop,))
        from repro.dbsim.key import Range
        bs.set_ranges([Range()])
        with pytest.raises(ValueError, match="scan iterators"):
            list(bs.scan_columns())

    def test_remote_columnar_equals_per_cell_under_faults(self):
        n = 2 * SCAN_CHUNK_CELLS + 101  # several CHUNK frames per scan
        with LocalCluster(n_servers=3, processes=False,
                          fault_specs=SPECS, fault_seed=SEED) as c:
            registry = MetricsRegistry()
            conn = c.connect(metrics=registry)
            try:
                conn.create_table("t", splits=["r2", "r4", "r6", "r8"])
                with conn.batch_writer("t") as w:
                    for i in range(n):
                        w.put(f"r{i % 10}x{i:05d}", "f", "qé", i)
                want = list(conn.scanner("t"))
                got = [cell for b in conn.scanner("t").scan_columns()
                       for cell in b.cells()]
                assert got == want  # bit-identical incl. timestamps
            finally:
                conn.close()
            export = registry.export()
            assert export["net.client.scan_chunks"] > 0
            assert export["net.client.scan_resumes"] > 0  # faults hit


class TestGraphuloColumnarBitIdentity:
    def test_kernels_thread_cluster_vs_in_process(self):
        local = _local_conn(n_servers=3)
        _ingest_graph(local)
        want = _run_kernels(local)

        with LocalCluster(n_servers=3, processes=False,
                          fault_specs=SPECS, fault_seed=SEED) as c:
            registry = MetricsRegistry()
            conn = c.connect(metrics=registry)
            try:
                _ingest_graph(conn)
                got = _run_kernels(conn)
            finally:
                conn.close()
        assert got == want  # result cells (ts incl.) + both BFS dicts
        assert registry.export()["net.client.scan_chunks"] > 0

    def test_kernels_process_cluster_vs_in_process(self):
        local = _local_conn(n_servers=2)
        _ingest_graph(local)
        want = _run_kernels(local)

        with LocalCluster(n_servers=2, processes=True,
                          fault_specs=SPECS, fault_seed=SEED) as c:
            conn = c.connect()
            try:
                _ingest_graph(conn)
                got = _run_kernels(conn)
            finally:
                conn.close()
        assert got == want
