"""Integration: live clusters, fault injection, crash/recover, and the
bit-identity acceptance scenario.

Thread-mode clusters (``processes=False``) carry most of the load —
same sockets, same wire protocol, no spawn cost.  One test boots real
OS processes end to end.
"""

import threading

import pytest

from repro.cli import main as cli_main
from repro.dbsim.client import Connector
from repro.dbsim.graphulo import create_combiner_table
from repro.dbsim.key import Range
from repro.dbsim.server import Instance, TableConfig
from repro.net.client import RemoteConnector, RetryPolicy
from repro.net.cluster import LocalCluster
from repro.net.server import SCAN_CHUNK_CELLS
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def cluster():
    """Fault-free 2-server thread-mode cluster shared by a module's
    worth of read-mostly tests (each test uses its own tables)."""
    with LocalCluster(n_servers=2, processes=False) as c:
        yield c


def _fresh(cluster, **kw):
    conn = cluster.connect(**kw)
    for table in list(conn.instance.list_tables()):
        conn.instance.delete_table(table)
    return conn


class TestClusterBasics:
    def test_status_reports_every_server(self, cluster):
        conn = _fresh(cluster)
        try:
            status = conn.instance.status()
            assert sorted(status["servers"]) == ["tserver0", "tserver1"]
            assert all(not s["crashed"]
                       for s in status["servers"].values())
        finally:
            conn.close()

    def test_write_scan_roundtrip(self, cluster):
        conn = _fresh(cluster)
        try:
            conn.create_table("t", splits=["m"])
            with conn.batch_writer("t") as w:
                for i in range(40):
                    w.put(f"r{i:02d}", "f", "q", i)
            cells = list(conn.scanner("t"))
            assert [c.key.row for c in cells] == \
                [f"r{i:02d}" for i in range(40)]
            assert [c.value for c in cells] == [str(i) for i in range(40)]
        finally:
            conn.close()

    def test_combiner_config_crosses_the_wire(self, cluster):
        conn = _fresh(cluster)
        try:
            create_combiner_table(conn, "sums", "sum")
            with conn.batch_writer("sums") as w:
                w.put("a", "", "n", 2)
            with conn.batch_writer("sums") as w:
                w.put("a", "", "n", 5)
            assert [c.value for c in conn.scanner("sums")] == ["7"]
        finally:
            conn.close()

    def test_arbitrary_table_iterator_rejected_client_side(self, cluster):
        conn = _fresh(cluster)
        try:
            with pytest.raises(ValueError, match="not wire-serializable"):
                conn.create_table(
                    "bad", TableConfig(table_iterators=(lambda s: s,)))
        finally:
            conn.close()

    def test_crash_recover_preserves_durable_writes(self, cluster):
        conn = _fresh(cluster)
        try:
            conn.create_table("d")
            with conn.batch_writer("d") as w:
                for i in range(60):
                    w.put(f"k{i:02d}", "", "c", i)
            before = list(conn.scanner("d"))
            for name in cluster.server_names:  # memtables lost, WAL kept
                conn.instance.crash_server(name)
            status = conn.instance.status()
            assert all(s["crashed"] for s in status["servers"].values())
            for name in cluster.server_names:
                conn.instance.recover_server(name, True)
            assert list(conn.scanner("d")) == before
        finally:
            conn.close()


class TestFaultedCluster:
    def _run(self, specs, seed, fn):
        with LocalCluster(n_servers=2, processes=False,
                          fault_specs=specs, fault_seed=seed) as c:
            registry = MetricsRegistry()
            conn = c.connect(metrics=registry)
            try:
                fn(conn)
            finally:
                conn.close()
            return registry.export()

    def test_scan_survives_corrupt_frames(self):
        n = 2 * SCAN_CHUNK_CELLS + 100  # several chunk frames per scan

        def work(conn):
            conn.create_table("t")
            with conn.batch_writer("t") as w:
                for i in range(n):
                    w.put(f"r{i:05d}", "", "c", i)
            for _ in range(3):  # plenty of chunk frames for the RNG
                rows = [c.key.row for c in conn.scanner("t")]
                assert rows == [f"r{i:05d}" for i in range(n)]

        export = self._run(["scan:corrupt:0.4"], 5, work)
        assert export["net.client.scan_resumes"] > 0
        # retries (backoff sleeps) only accrue on *consecutive*
        # no-progress failures; since open+first-recv fused into one
        # loop trip, a reopen nearly always lands a chunk run before
        # the next corruption, so resumes — not retries — are the pin
        assert export["net.client.retries"] >= 0

    def test_writes_exactly_once_under_dropped_acks(self):
        # a dropped write_batch ack means the server applied the batch
        # but the client retries it; with a summing table any re-apply
        # would show up as a doubled value
        def work(conn):
            create_combiner_table(conn, "sums", "sum")
            with conn.batch_writer("sums", buffer_size=10) as w:
                for i in range(200):
                    w.put(f"r{i:03d}", "", "n", 1)
            values = [c.value for c in conn.scanner("sums")]
            assert values == ["1"] * 200

        export = self._run(["write_batch:drop:0.25"], 11, work)
        assert export["net.client.retries"] > 0

    def test_slowdrip_and_delay_are_only_slow(self):
        def work(conn):
            conn.create_table("t")
            with conn.batch_writer("t") as w:
                for i in range(50):
                    w.put(f"r{i:02d}", "", "c", i)
            assert sum(1 for _ in conn.scanner("t")) == 50

        self._run(["*:delay:0.2:0.002", "scan:slowdrip:0.3:64"], 2, work)


class TestProcessCluster:
    def test_real_processes_end_to_end(self):
        with LocalCluster(n_servers=2, processes=True) as c:
            conn = c.connect()
            try:
                conn.create_table("t", splits=["h", "p"])
                with conn.batch_writer("t") as w:
                    for i in range(120):
                        w.put(f"r{i:03d}", "", "c", i)
                conn.compact("t")
                assert sum(1 for _ in conn.scanner("t")) == 120
                got = [c_.value for c_ in conn.scanner("t").set_range(
                    Range("r010", "r020"))]
                assert got == [str(i) for i in range(10, 20)]
            finally:
                conn.close()


def _reference_cells(n_servers, rows):
    """The fault-free, in-process ground truth for the acceptance run."""
    local = Connector(Instance(n_servers=n_servers,
                               metrics=MetricsRegistry()))
    local.create_table("T", splits=["r100", "r200"])
    with local.batch_writer("T", buffer_size=40) as w:
        for r, v in rows:
            w.put(r, "", "c", v)
    return list(local.scanner("T"))


class TestAcceptance:
    """The ISSUE's acceptance scenario: seeded drop + delay faults plus
    one server crash/recover in the middle of an ingest, and the table
    still comes out bit-identical (timestamps included) to a fault-free
    in-process run — then the retry/timeout counters show up in
    ``repro stats --prom``."""

    SPECS = ["write_batch:drop:0.1", "scan:delay:0.05:0.005"]

    def test_faulted_ingest_is_bit_identical(self, tmp_path, capsys):
        rows = [(f"r{i:03d}", i) for i in range(300)]
        want = _reference_cells(2, rows)

        with LocalCluster(n_servers=2, processes=True,
                          fault_specs=self.SPECS, fault_seed=42) as c:
            registry = MetricsRegistry()
            conn = c.connect(metrics=registry)
            try:
                conn.create_table("T", splits=["r100", "r200"])
                with conn.batch_writer("T", buffer_size=40) as w:
                    for r, v in rows[:150]:
                        w.put(r, "", "c", v)
                    # crash one server mid-ingest; recover shortly
                    # after, while writes to it are still retrying
                    c.crash("tserver1")
                    timer = threading.Timer(
                        0.5, lambda: c.recover("tserver1", True))
                    timer.start()
                    try:
                        for r, v in rows[150:]:
                            w.put(r, "", "c", v)
                    finally:
                        timer.join()
                got = list(conn.scanner("T"))
            finally:
                conn.close()

            assert got == want  # cells, order, and timestamps
            export = registry.export()
            assert export["net.client.retries"] > 0

            # the counters must be visible through the CLI too
            tsv = tmp_path / "g.tsv"
            tsv.write_text("".join(f"a{i:02d}\tb{(i * 7) % 20:02d}\t1\n"
                                   for i in range(50)), encoding="utf-8")
            rc = cli_main(["stats", str(tsv),
                           "--connect", c.manager_addr_str, "--prom"])
            out = capsys.readouterr().out
            assert rc == 0
            assert "repro_net_client_retries" in out
            assert "repro_net_client_timeouts" in out
            assert "repro_net_client_requests" in out


class TestHealthCli:
    """`repro health` evaluates cluster SLOs over RPC and exits
    nonzero on breach — the CI health gate."""

    def test_healthy_cluster_exits_zero(self, cluster, tmp_path,
                                        capsys):
        conn = _fresh(cluster)
        try:
            conn.create_table("h")
            with conn.batch_writer("h") as w:
                for i in range(20):
                    w.put(f"r{i:02d}", "f", "q", i)
            assert sum(1 for _ in conn.scanner("h")) == 20
        finally:
            conn.close()
        out = tmp_path / "health.json"
        rc = cli_main(["health", "--connect", cluster.manager_addr_str,
                       "--window", "0.1", "--out", str(out)])
        text = capsys.readouterr().out
        assert rc == 0
        assert "rpc.queue.p99" in text and "BREACH" not in text
        import json

        report = json.loads(out.read_text())
        assert report["ok"] is True
        assert {"manager", "tserver0", "tserver1"} <= \
            set(report["components"])

    def test_breached_slo_exits_nonzero(self, cluster, tmp_path,
                                        capsys):
        # a deliberately impossible objective: any observed latency
        # breaches a 0-second p99 target
        slos = tmp_path / "slos.json"
        import json

        slos.write_text(json.dumps([
            {"name": "impossible.p99",
             "histogram": "net.server.service_seconds",
             "p99_target_s": 0.0}]))
        rc = cli_main(["health", "--connect", cluster.manager_addr_str,
                       "--window", "0.1", "--slos", str(slos)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "BREACH" in captured.out
        assert "FAILED" in captured.err

    def test_unreachable_cluster_is_a_cli_error(self, capsys):
        c = LocalCluster(n_servers=1, processes=False).start()
        addr = c.manager_addr_str
        c.stop()
        rc = cli_main(["health", "--connect", addr, "--window", "0.0"])
        assert rc == 2
        assert "unreachable" in capsys.readouterr().err


class TestLifecycle:
    def test_connect_before_start_rejected(self):
        c = LocalCluster(n_servers=1, processes=False)
        with pytest.raises(RuntimeError):
            c.connect()

    def test_stop_is_idempotent(self):
        c = LocalCluster(n_servers=1, processes=False).start()
        c.stop()
        c.stop()

    def test_single_attempt_policy_fails_fast_when_down(self):
        c = LocalCluster(n_servers=1, processes=False).start()
        addr = c.manager_addr_str
        c.stop()
        conn = RemoteConnector(addr, retry=RetryPolicy(attempts=1,
                                                       deadline=1.0))
        try:
            with pytest.raises(Exception):
                conn.table_exists("t")
        finally:
            conn.close()
