"""Edge cases of the columnar cell codec and :class:`ColumnBatch`."""

import random
import string
from array import array

import pytest

from repro.dbsim.key import Cell, Key
from repro.net import cells


def mut(row="r", fam="f", qual="q", vis="", ts=1, delete=False, val="v"):
    return (row, fam, qual, vis, ts, delete, val)


def random_mut(rng: random.Random):
    def s(alphabet, lo=0, hi=8):
        return "".join(rng.choice(alphabet)
                       for _ in range(rng.randint(lo, hi)))
    ascii_ = string.ascii_letters + string.digits
    multibyte = ascii_ + "é漢🜁Ω"
    return (s(multibyte), s(ascii_), s(multibyte), s(ascii_, 0, 2),
            rng.randint(-2 ** 62, 2 ** 62), rng.random() < 0.2,
            s(multibyte, 0, 20))


class TestRoundTrip:
    def test_multibyte_utf8_slow_decode_branch(self):
        # char offsets != byte offsets → the per-entry decode branch
        muts = [mut(row="naïve", qual="漢字", val="🜁🜂🜃"),
                mut(row="ascii", qual="q", val="plain"),
                mut(row="Ωmega", vis="", val="é" * 50)]
        assert cells.decode_mutations(cells.encode_block(muts)) == muts

    def test_zero_cell_block(self):
        block = cells.encode_block([])
        assert cells.decode_mutations(block) == []
        batch = cells.decode_batch(block)
        assert len(batch) == 0 and batch.cells() == []
        assert cells.block_to_cells(block) == []
        # columnar encoder agrees on the empty shape
        assert cells.ColumnBatch.empty().to_block() == block

    def test_all_deletes_block(self):
        muts = [mut(row=f"r{i:03d}", ts=i, delete=True, val="")
                for i in range(100)]  # > _SPLAT_CUTOFF: array pack path
        out = cells.decode_mutations(cells.encode_block(muts))
        assert out == muts
        assert all(d for (_, _, _, _, _, d, _) in out)
        batch = cells.decode_batch(cells.encode_block(muts))
        assert batch.deletes == [True] * 100
        assert all(c.key.delete for c in batch.cells())

    def test_encode_columns_matches_encode_block(self):
        rng = random.Random(7)
        muts = [random_mut(rng) for _ in range(300)]
        cols = list(zip(*muts))
        columnar = cells.encode_columns(
            cols[0], cols[1], cols[2], cols[3],
            array("q", cols[4]), cols[5], cols[6])
        assert columnar == cells.encode_block(muts)
        # bytes/bytearray delete bitmaps encode identically to bools
        bitmap = bytes(1 if d else 0 for d in cols[5])
        assert cells.encode_columns(
            cols[0], cols[1], cols[2], cols[3],
            list(cols[4]), bitmap, cols[6]) == columnar

    def test_encode_columns_does_not_mutate_caller_timestamps(self):
        ts = array("q", range(200))
        before = list(ts)
        cells.encode_columns(["r"] * 200, [""] * 200, ["q"] * 200,
                             [""] * 200, ts, [False] * 200, ["v"] * 200)
        assert list(ts) == before


class TestColumnBatch:
    def test_cells_equivalent_to_block_to_cells(self):
        # property: for arbitrary blocks, the lazy ColumnBatch view
        # materialises exactly what the eager decoder builds
        rng = random.Random(42)
        for trial in range(20):
            muts = [random_mut(rng) for _ in range(rng.randint(0, 120))]
            block = cells.encode_block(muts)
            eager = cells.block_to_cells(block)
            lazy = cells.decode_batch(block).cells()
            assert lazy == eager
            assert [c.key.timestamp for c in lazy] == \
                [c.key.timestamp for c in eager]

    def test_from_cells_round_trip(self):
        cs = [Cell(Key("r1", "f", "q", "", 5, False), "a"),
              Cell(Key("r2", "f", "qé", "", -3, True), "")]
        batch = cells.ColumnBatch.from_cells(cs)
        assert batch.cells() == cs
        assert cells.block_to_cells(batch.to_block()) == cs

    def test_last_key_matches_final_cell(self):
        muts = [mut(row="a", ts=1), mut(row="b", ts=2, delete=True)]
        batch = cells.decode_batch(cells.encode_block(muts))
        assert batch.last_key() == ["b", "f", "q", "", 2, True]

    def test_select_and_extend(self):
        muts = [mut(row=f"r{i}", ts=i) for i in range(6)]
        batch = cells.decode_batch(cells.encode_block(muts))
        picked = batch.select([1, 3, 5])
        assert picked.rows == ["r1", "r3", "r5"]
        assert list(picked.timestamps) == [1, 3, 5]
        assert isinstance(picked.timestamps, array)
        other = cells.decode_batch(cells.encode_block(
            [mut(row="z", ts=99)]))
        picked.extend(other)
        assert picked.rows[-1] == "z" and list(picked.timestamps)[-1] == 99
        assert len(picked) == 4

    def test_equality_includes_timestamps(self):
        a = cells.decode_batch(cells.encode_block([mut(ts=1)]))
        b = cells.decode_batch(cells.encode_block([mut(ts=1)]))
        c = cells.decode_batch(cells.encode_block([mut(ts=2)]))
        assert a == b and a != c


class TestBadBlocks:
    def test_truncated_timestamps_rejected(self):
        block = cells.encode_block([mut(), mut(row="r2")])
        with pytest.raises(cells.BlockFormatError):
            cells.decode_batch(block[:-20])

    def test_truncated_delete_flags_rejected(self):
        block = cells.encode_block([mut(), mut(row="r2")])
        with pytest.raises(cells.BlockFormatError):
            cells.decode_batch(block[:-1])

    def test_bad_format_version_rejected(self):
        block = bytearray(cells.encode_block([mut()]))
        block[0] = 99
        with pytest.raises(cells.BlockFormatError):
            cells.decode_batch(bytes(block))
