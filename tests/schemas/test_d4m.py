"""D4M 2.0 schema: explode, degree table, correlation."""

import numpy as np
import pytest

from repro.schemas import D4MTables, explode_records
from repro.schemas.d4m import DEGREE_COL

RECORDS = [
    {"user": "alice", "word": ["hi", "yo"], "lang": "en"},
    {"user": "bob", "word": "hi", "lang": "en"},
    {"user": "carol", "word": ["hola"], "lang": "es"},
]


class TestExplode:
    def test_explodes_field_value_pairs(self):
        rows, cols = explode_records(RECORDS)
        assert ("r00000000", "word|hi") in zip(rows, cols)
        assert ("r00000000", "word|yo") in zip(rows, cols)
        assert ("r00000002", "lang|es") in zip(rows, cols)

    def test_row_keys_sortable_by_record(self):
        rows, _ = explode_records(RECORDS)
        assert sorted(set(rows)) == ["r00000000", "r00000001", "r00000002"]

    def test_custom_separator_prefix(self):
        rows, cols = explode_records([{"a": 1}], row_prefix="x", sep=":")
        assert rows == ["x00000000"] and cols == ["a:1"]

    def test_empty(self):
        assert explode_records([]) == ([], [])


class TestD4MTables:
    def test_tedge_tedgeT_are_transposes(self):
        t = D4MTables.from_records(RECORDS)
        assert t.tedge.transpose().equal(t.tedge_t)

    def test_degree_counts(self):
        t = D4MTables.from_records(RECORDS)
        assert t.degree("word|hi") == 2.0
        assert t.degree("lang|en") == 2.0
        assert t.degree("word|hola") == 1.0
        assert t.degree("nope|x") == 0.0

    def test_tdeg_column_name(self):
        t = D4MTables.from_records(RECORDS)
        assert t.tdeg.col_keys.tolist() == [DEGREE_COL]

    def test_traw_preserves_records(self):
        t = D4MTables.from_records(RECORDS)
        assert t.traw["r00000001"]["user"] == "bob"

    def test_records_matching(self):
        t = D4MTables.from_records(RECORDS)
        assert t.records_matching("lang|en") == ["r00000000", "r00000001"]
        assert t.records_matching("nope|x") == []

    def test_correlate_words(self):
        """TedgeᵀTedge = co-occurrence: paper's 'multiplication is a
        correlation'."""
        t = D4MTables.from_records(RECORDS)
        corr = t.correlate("word|*", "word|*")
        assert corr.get("word|hi", "word|yo") == 1.0
        assert corr.get("word|hi", "word|hi") == 2.0
        assert corr.get("word|hi", "word|hola") == 0.0

    def test_correlate_across_families(self):
        t = D4MTables.from_records(RECORDS)
        corr = t.correlate("lang|*", "word|*")
        assert corr.get("lang|en", "word|hi") == 2.0
        assert corr.get("lang|es", "word|hola") == 1.0

    def test_empty_records(self):
        t = D4MTables.from_records([])
        assert t.tedge.nnz == 0 and t.traw == {}

    def test_facet(self):
        t = D4MTables.from_records(RECORDS)
        langs = t.facet("word|hi", "lang|*")
        assert langs.get("sum", "lang|en") == 2.0
        assert langs.get("sum", "lang|es") == 0.0

    def test_facet_no_match(self):
        t = D4MTables.from_records(RECORDS)
        assert t.facet("word|zzz*", "lang|*").nnz == 0


class TestCol2Type:
    def test_splits_by_field(self):
        from repro.schemas import col2type

        t = D4MTables.from_records(RECORDS)
        views = col2type(t.tedge)
        assert set(views) == {"user", "word", "lang"}
        assert views["lang"].col_keys.tolist() == ["en", "es"]
        assert views["word"].get("r00000000", "hi") == 1.0
        assert views["word"].get("r00000002", "hola") == 1.0

    def test_totals_preserved(self):
        from repro.schemas import col2type

        t = D4MTables.from_records(RECORDS)
        views = col2type(t.tedge)
        total = sum(v.matrix.reduce_scalar() for v in views.values())
        assert total == t.tedge.matrix.reduce_scalar()

    def test_missing_separator_raises(self):
        from repro.assoc import AssocArray
        from repro.schemas import col2type

        a = AssocArray.from_triples(["r"], ["plain"], [1.0])
        with pytest.raises(ValueError, match="separator"):
            col2type(a)
