"""Incidence schema and the A = EᵀE − diag identity (paper §III-B)."""

import numpy as np
import pytest

from repro.generators.classic import fig1_edges
from repro.generators.random import erdos_renyi
from repro.schemas import (
    adjacency_from_incidence,
    edge_list_from_adjacency,
    incidence_from_edges,
    incidence_oriented,
    incidence_unoriented,
)


class TestUnoriented:
    def test_paper_fig1_matrix(self, fig1_inc):
        expected = np.array([
            [1, 1, 0, 0, 0],
            [0, 1, 1, 0, 0],
            [1, 0, 0, 1, 0],
            [0, 0, 1, 1, 0],
            [1, 0, 1, 0, 0],
            [0, 1, 0, 0, 1],
        ], dtype=float)
        assert np.array_equal(fig1_inc.to_dense(), expected)

    def test_two_entries_per_row(self, fig1_inc):
        assert (fig1_inc.row_lengths == 2).all()

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self loop"):
            incidence_unoriented(3, [(1, 1)])

    def test_weights(self):
        e = incidence_unoriented(3, [(0, 2)], weights=[2.5])
        assert e.get(0, 0) == 2.5 and e.get(0, 2) == 2.5

    def test_empty(self):
        e = incidence_unoriented(4, [])
        assert e.shape == (0, 4)


class TestOriented:
    def test_signs_follow_paper_convention(self):
        """+|e| into the head, −|e| out of the tail."""
        e = incidence_oriented(3, [(0, 2)])
        assert e.get(0, 0) == -1.0 and e.get(0, 2) == 1.0

    def test_rows_sum_to_zero(self):
        e = incidence_oriented(5, [(0, 1), (3, 2), (4, 1)])
        assert np.allclose(e.reduce_rows(), 0.0)

    def test_dispatch(self):
        eo = incidence_from_edges(3, [(0, 1)], oriented=True)
        eu = incidence_from_edges(3, [(0, 1)], oriented=False)
        assert eo.values.min() == -1.0 and eu.values.min() == 1.0

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            incidence_oriented(2, [(0, 0)])


class TestAdjacencyIdentity:
    def test_fig1(self, fig1_adj, fig1_inc):
        assert adjacency_from_incidence(fig1_inc).equal(fig1_adj)

    def test_random_graphs(self):
        """A = EᵀE − diag(EᵀE) on random simple graphs."""
        for seed in range(5):
            a = erdos_renyi(20, 0.2, seed=seed)
            edges = edge_list_from_adjacency(a)
            e = incidence_unoriented(20, edges)
            assert adjacency_from_incidence(e).equal(a.prune())

    def test_diag_of_ete_is_degree(self, fig1_inc, fig1_adj):
        from repro.sparse import mxm

        ete = mxm(fig1_inc.T, fig1_inc)
        assert np.allclose(ete.diag(), fig1_adj.reduce_rows())


class TestEdgeList:
    def test_roundtrip(self, fig1_adj):
        edges = edge_list_from_adjacency(fig1_adj)
        assert len(edges) == 6
        rebuilt = incidence_unoriented(5, edges)
        assert adjacency_from_incidence(rebuilt).equal(fig1_adj)

    def test_each_edge_once(self, fig1_adj):
        edges = edge_list_from_adjacency(fig1_adj)
        assert all(u < v for u, v in edges)
