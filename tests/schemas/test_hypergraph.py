"""Hypergraph incidence schema (paper §II-B2's generality claim)."""

import numpy as np
import pytest

from repro.algorithms.traversal import bfs
from repro.schemas.hypergraph import (
    bipartite_expansion,
    edge_overlap,
    edge_sizes,
    hyper_incidence,
    vertex_cooccurrence,
    vertex_degrees,
)

#: 6 vertices, 3 hyperedges: {0,1,2}, {2,3}, {3,4,5}
H = [[0, 1, 2], [2, 3], [3, 4, 5]]


class TestIncidence:
    def test_shape_and_entries(self):
        e = hyper_incidence(6, H)
        assert e.shape == (3, 6)
        assert e.get(0, 1) == 1.0 and e.get(1, 3) == 1.0
        assert e.get(0, 4) == 0.0

    def test_weights_per_edge(self):
        e = hyper_incidence(3, [[0, 1], [1, 2]], weights=[2.0, 5.0])
        assert e.get(0, 0) == 2.0 and e.get(1, 2) == 5.0

    def test_pairwise_edges_match_simple_incidence(self):
        from repro.generators.classic import fig1_edges
        from repro.schemas.incidence import incidence_unoriented

        pairs = [list(p) for p in fig1_edges()]
        assert hyper_incidence(5, pairs).equal(
            incidence_unoriented(5, fig1_edges()))

    def test_validation(self):
        with pytest.raises(ValueError, match="repeats"):
            hyper_incidence(3, [[0, 0, 1]])
        with pytest.raises(ValueError, match="empty"):
            hyper_incidence(3, [[]])
        with pytest.raises(ValueError, match="out of range"):
            hyper_incidence(2, [[0, 5]])
        with pytest.raises(ValueError, match="align"):
            hyper_incidence(3, [[0, 1]], weights=[1.0, 2.0])


class TestDerivedMatrices:
    def test_cooccurrence_counts_shared_hyperedges(self):
        c = vertex_cooccurrence(hyper_incidence(6, H))
        assert c.get(0, 1) == 1.0       # together in edge 0
        assert c.get(2, 3) == 1.0       # together in edge 1
        assert c.get(0, 4) == 0.0       # never share an edge
        assert c.equal(c.T)
        assert np.allclose(c.diag(), 0.0)

    def test_cooccurrence_multiplicity(self):
        c = vertex_cooccurrence(hyper_incidence(3, [[0, 1], [0, 1, 2]]))
        assert c.get(0, 1) == 2.0

    def test_edge_overlap(self):
        o = edge_overlap(hyper_incidence(6, H))
        assert o.get(0, 1) == 1.0       # share vertex 2
        assert o.get(1, 2) == 1.0       # share vertex 3
        assert o.get(0, 2) == 0.0

    def test_degrees_and_sizes(self):
        e = hyper_incidence(6, H)
        assert vertex_degrees(e).tolist() == [1, 1, 2, 2, 1, 1]
        assert edge_sizes(e).tolist() == [3, 2, 3]


class TestBipartiteExpansion:
    def test_structure(self):
        g, n = bipartite_expansion(hyper_incidence(6, H))
        assert n == 6 and g.shape == (9, 9)
        # vertex 0 connects only to hyperedge-node 6 (= edge 0)
        cols, _ = g.row(0)
        assert cols.tolist() == [6]
        # no vertex-vertex or edge-edge connections
        rows = g.row_ids()
        assert all((r < n) != (c < n) for r, c in zip(rows, g.indices))

    def test_bfs_gives_hypergraph_distance(self):
        """0 → {0,1,2} → 2 → {2,3} → 3: hypergraph distance 2 hops ==
        expansion distance 4."""
        g, n = bipartite_expansion(hyper_incidence(6, H))
        d = bfs(g, 0)
        assert d[3] == 4
        assert d[5] == 6  # three hyperedge hops
        assert d[1] == 2  # same hyperedge
