"""Adjacency-schema helpers."""

import numpy as np
import pytest

from repro.schemas import (
    degrees,
    in_degrees,
    is_symmetric,
    normalize_columns,
    out_degrees,
    symmetrize,
)
from repro.sparse import from_dense, from_edges, zeros


class TestDegrees:
    def test_directed_in_out(self):
        a = from_edges(3, [(0, 1), (0, 2), (1, 2)])
        assert out_degrees(a).tolist() == [2.0, 1.0, 0.0]
        assert in_degrees(a).tolist() == [0.0, 1.0, 2.0]

    def test_weighted_vs_unweighted(self):
        a = from_edges(2, [(0, 1)], weights=[5.0])
        assert out_degrees(a).tolist() == [5.0, 0.0]
        assert out_degrees(a, weighted=False).tolist() == [1.0, 0.0]

    def test_undirected_degrees(self, fig1_adj):
        assert degrees(fig1_adj).tolist() == [3.0, 3.0, 3.0, 2.0, 1.0]

    def test_degrees_rejects_directed(self):
        a = from_edges(3, [(0, 1)])
        with pytest.raises(ValueError, match="symmetric"):
            degrees(a)

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError):
            out_degrees(zeros(2, 3))


class TestSymmetry:
    def test_is_symmetric(self, fig1_adj):
        assert is_symmetric(fig1_adj)
        assert not is_symmetric(from_edges(3, [(0, 1)]))
        assert not is_symmetric(zeros(2, 3))

    def test_symmetrize(self):
        a = from_edges(3, [(0, 1)], weights=[4.0])
        s = symmetrize(a)
        assert s.get(0, 1) == 4.0 and s.get(1, 0) == 4.0

    def test_symmetrize_max_no_double_count(self):
        a = from_dense([[0.0, 2.0], [3.0, 0.0]])
        s = symmetrize(a)
        assert s.get(0, 1) == 3.0 and s.get(1, 0) == 3.0


class TestNormalize:
    def test_columns_stochastic(self, fig1_adj):
        m = normalize_columns(fig1_adj)
        sums = m.reduce_cols()
        assert np.allclose(sums, 1.0)

    def test_zero_column_untouched(self):
        a = from_edges(3, [(0, 1)])
        m = normalize_columns(a)
        assert m.get(0, 1) == 1.0  # column 1 sums to 1
        assert m.reduce_cols()[0] == 0.0  # empty column stays empty
