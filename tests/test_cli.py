"""CLI subcommands, driven through main() with captured stdout."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def graph_tsv(tmp_path):
    """Fig 1 graph as a triple TSV (symmetric, string vertex keys)."""
    from repro.generators import fig1_edges

    path = tmp_path / "fig1.tsv"
    lines = []
    for u, v in fig1_edges():
        lines.append(f"v{u + 1}\tv{v + 1}\t1")
        lines.append(f"v{v + 1}\tv{u + 1}\t1")
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestInfo:
    def test_reports_shape(self, graph_tsv, capsys):
        assert main(["info", graph_tsv]) == 0
        out = capsys.readouterr().out
        assert "5 vertices" in out and "12 stored entries" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "nope.tsv")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: no such file")

    def test_malformed_file(self, tmp_path, capsys):
        p = tmp_path / "bad.tsv"
        p.write_text("a\tb\tc\td\te\n")
        assert main(["pagerank", str(p)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_file(self, tmp_path, capsys):
        p = tmp_path / "empty.tsv"
        p.write_text("")
        assert main(["info", str(p)]) == 2
        assert "no triples" in capsys.readouterr().err


class TestGenerate:
    def test_rmat_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "g.tsv"
        assert main(["generate", "rmat", "--scale", "5", "--out",
                     str(out)]) == 0
        assert out.exists()
        assert main(["info", str(out)]) == 0

    def test_er(self, tmp_path, capsys):
        out = tmp_path / "er.tsv"
        assert main(["generate", "er", "--scale", "5", "--p", "0.2",
                     "--out", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out


class TestBfs:
    def test_hop_levels(self, graph_tsv, capsys):
        assert main(["bfs", graph_tsv, "--source", "v1"]) == 0
        out = capsys.readouterr().out
        assert "reached 5/5" in out
        assert "hop 2: v5" in out

    def test_unknown_source(self, graph_tsv):
        with pytest.raises(SystemExit):
            main(["bfs", graph_tsv, "--source", "nope"])


class TestPagerank:
    def test_ranking(self, graph_tsv, capsys):
        assert main(["pagerank", graph_tsv, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("0.") >= 3
        assert "v2" in out  # the highest-PageRank vertex of Fig 1
        assert "converged in" in out


class TestKtruss:
    def test_fig1(self, graph_tsv, capsys, tmp_path):
        out_file = tmp_path / "truss.tsv"
        assert main(["ktruss", graph_tsv, "--k", "3", "--out",
                     str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "5/6 edges survive" in out
        assert out_file.exists()

    def test_empty_truss(self, graph_tsv, capsys):
        assert main(["ktruss", graph_tsv, "--k", "4"]) == 0
        assert "0/6" in capsys.readouterr().out


class TestJaccard:
    def test_fig2_top_pair(self, graph_tsv, capsys):
        assert main(["jaccard", graph_tsv, "--top", "2"]) == 0
        out = capsys.readouterr().out
        # the largest Fig 2 coefficient is J(2,4) = 2/3
        assert "v2 ~ v4" in out and "0.6667" in out


class TestTriangles:
    def test_fig1_triangle_count(self, graph_tsv, capsys):
        assert main(["triangles", graph_tsv]) == 0
        out = capsys.readouterr().out
        assert "2 triangles" in out
        assert "v1" in out and "v3" in out  # the two 2-triangle vertices


class TestComponents:
    def test_connected_fig1(self, graph_tsv, capsys):
        assert main(["components", graph_tsv]) == 0
        out = capsys.readouterr().out
        assert "1 connected component(s)" in out
        assert "5 vertices" in out

    def test_two_components(self, tmp_path, capsys):
        p = tmp_path / "two.tsv"
        p.write_text("a\tb\t1\nb\ta\t1\nx\ty\t1\ny\tx\t1\n")
        assert main(["components", str(p)]) == 0
        assert "2 connected component(s)" in capsys.readouterr().out


class TestTopics:
    def test_small_demo(self, capsys):
        assert main(["topics", "--docs", "300", "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert "topic 1" in out and "purity=" in out


class TestStats:
    def test_report(self, graph_tsv, capsys):
        assert main(["stats", graph_tsv]) == 0
        out = capsys.readouterr().out
        assert "ingested 12 triples" in out
        assert "dbsim.table.A.entries_written" in out
        assert "total: seeks=" in out

    def test_json(self, graph_tsv, capsys):
        import json

        assert main(["stats", graph_tsv, "--json", "--servers", "1"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["metrics"]["dbsim.table.A.entries_written"] == 12
        assert report["total"]["flushes"] >= 1
        assert set(report["servers"]) == {"tserver0"}


class TestTrace:
    def test_pagerank_trace_jsonl(self, graph_tsv, tmp_path, capsys):
        import json

        trace_file = tmp_path / "pr.jsonl"
        assert main(["pagerank", graph_tsv, "--trace",
                     str(trace_file)]) == 0
        records = [json.loads(line)
                   for line in trace_file.read_text().splitlines()]
        spans = [r for r in records if r["kind"] == "span"]
        conv = [r for r in records if r["kind"] == "convergence"
                and r["name"] == "pagerank"]
        assert spans and conv
        assert all("opstats" in s for s in spans)
        residuals = [r["residual"] for r in conv]
        assert all(b < a for a, b in zip(residuals, residuals[1:]))

    def test_ktruss_trace_jsonl(self, graph_tsv, tmp_path, capsys):
        import json

        trace_file = tmp_path / "kt.jsonl"
        assert main(["ktruss", graph_tsv, "--k", "3", "--trace",
                     str(trace_file)]) == 0
        records = [json.loads(line)
                   for line in trace_file.read_text().splitlines()]
        assert any(r["kind"] == "span" and r["name"] == "kernel.spgemm"
                   for r in records)
        assert any(r["kind"] == "convergence" and r["name"] == "ktruss"
                   for r in records)

    def test_trace_disabled_after_run(self, graph_tsv, tmp_path, capsys):
        from repro.obs import trace

        assert main(["pagerank", graph_tsv, "--trace",
                     str(tmp_path / "t.jsonl")]) == 0
        assert not trace.is_enabled()

    def test_unwritable_trace_path(self, graph_tsv, capsys):
        assert main(["pagerank", graph_tsv, "--trace",
                     "/no/such/dir/t.jsonl"]) == 2
        assert "cannot open trace file" in capsys.readouterr().err

    def test_no_trace_no_file(self, graph_tsv, tmp_path, capsys):
        # graph_tsv lives in tmp_path; no trace file should join it
        assert main(["pagerank", graph_tsv]) == 0
        assert list(tmp_path.glob("*.jsonl")) == []


GOLDEN_TRACE = __file__.rsplit("/", 1)[0] + "/obs/data/golden_trace.jsonl"


class TestAnalyze:
    def test_golden_trace_report(self, capsys):
        assert main(["analyze", GOLDEN_TRACE]) == 0
        out = capsys.readouterr().out
        assert "6 records, 5 spans, 3 root span(s)" in out
        assert "graphulo.table_bfs" in out and "kernel.spgemm" in out
        assert "critical path of longest root (graphulo.table_bfs" in out
        assert "dbsim.batch_scan" in out

    def test_json_output(self, capsys):
        import json

        assert main(["analyze", GOLDEN_TRACE, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["spans"] == 5
        assert [s["name"] for s in report["critical_path"]] == \
            ["graphulo.table_bfs", "dbsim.batch_scan"]

    def test_flamegraph_export(self, tmp_path, capsys):
        out_file = tmp_path / "t.folded"
        assert main(["analyze", GOLDEN_TRACE, "--flamegraph",
                     str(out_file)]) == 0
        lines = out_file.read_text().splitlines()
        assert "kernel.spgemm 300000" in lines
        assert any(";" in line for line in lines)
        assert "folded stacks" in capsys.readouterr().out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.jsonl")]) == 2
        assert capsys.readouterr().err.startswith("error: no such file")

    def test_spanless_trace_fails(self, tmp_path, capsys):
        p = tmp_path / "conv.jsonl"
        p.write_text('{"kind": "convergence", "name": "x"}\n')
        assert main(["analyze", str(p)]) == 2
        assert "holds no spans" in capsys.readouterr().err

    def test_malformed_trace_fails(self, tmp_path, capsys):
        p = tmp_path / "bad.jsonl"
        p.write_text("not json\n")
        assert main(["analyze", str(p)]) == 2
        assert "invalid trace line" in capsys.readouterr().err

    def test_traced_run_round_trips_through_analyze(self, graph_tsv,
                                                    tmp_path, capsys):
        trace_file = tmp_path / "pr.jsonl"
        assert main(["pagerank", graph_tsv, "--trace",
                     str(trace_file)]) == 0
        capsys.readouterr()
        assert main(["analyze", str(trace_file)]) == 0
        assert "kernel.vxm" in capsys.readouterr().out


class TestSlowlog:
    def test_summary_on_stderr(self, graph_tsv, tmp_path, capsys):
        slow = tmp_path / "slow.jsonl"
        assert main(["pagerank", graph_tsv, "--slowlog", str(slow)]) == 0
        err = capsys.readouterr().err
        assert "slow-op log:" in err and str(slow) in err
        # the Fig 1 graph is far under every default budget
        assert "0/" in err

    def test_slowlog_composes_with_trace(self, graph_tsv, tmp_path,
                                         capsys):
        import json

        trace_file = tmp_path / "t.jsonl"
        assert main(["pagerank", graph_tsv, "--trace", str(trace_file),
                     "--slowlog", str(tmp_path / "s.jsonl")]) == 0
        # the slowlog wrapper must not eat the full trace
        records = [json.loads(line)
                   for line in trace_file.read_text().splitlines()]
        assert any(r["kind"] == "span" for r in records)

    def test_unwritable_slowlog_path(self, graph_tsv, capsys):
        assert main(["pagerank", graph_tsv, "--slowlog",
                     "/no/such/dir/s.jsonl"]) == 2
        assert "cannot open slow-op log file" in capsys.readouterr().err


class TestStatsExposition:
    def test_prom_output_parses(self, graph_tsv, capsys):
        from repro.obs.expose import parse_prometheus_text

        assert main(["stats", graph_tsv, "--prom"]) == 0
        samples = parse_prometheus_text(capsys.readouterr().out)
        assert samples[("repro_dbsim_table_entries_written",
                        (("table", "A"),))] == 12

    def test_metrics_json_snapshot(self, graph_tsv, tmp_path, capsys):
        from repro.obs.expose import read_snapshot

        snap_file = tmp_path / "m.json"
        assert main(["stats", graph_tsv, "--metrics-json",
                     str(snap_file)]) == 0
        snap = read_snapshot(str(snap_file))
        assert snap["metrics"]["dbsim.table.A.entries_written"] == 12


class TestMonitor:
    def test_waits_for_missing_snapshot(self, tmp_path, capsys):
        assert main(["monitor", "--metrics-json",
                     str(tmp_path / "nope.json"), "--interval", "0",
                     "--iterations", "1"]) == 0
        assert "waiting for" in capsys.readouterr().out

    def test_baseline_then_idle(self, graph_tsv, tmp_path, capsys):
        snap_file = tmp_path / "m.json"
        assert main(["stats", graph_tsv, "--metrics-json",
                     str(snap_file)]) == 0
        capsys.readouterr()
        assert main(["monitor", "--metrics-json", str(snap_file),
                     "--interval", "0", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "idle" in out

    def test_reports_moving_counters(self, tmp_path, capsys, monkeypatch):
        import time

        from repro.obs.expose import write_snapshot

        snap_file = str(tmp_path / "m.json")
        write_snapshot({"dbsim.table.A.seeks": 10}, snap_file)

        def bump(_seconds):  # the "workload" advances between polls
            write_snapshot({"dbsim.table.A.seeks": 25}, snap_file)

        monkeypatch.setattr(time, "sleep", bump)
        assert main(["monitor", "--metrics-json", snap_file,
                     "--interval", "0", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "1 metric(s) moved" in out
        assert "dbsim.table.A.seeks" in out and "+15" in out
