"""Process-parallel sweep drivers: results must match serial exactly."""

import numpy as np
import pytest

from repro.algorithms.centrality import betweenness_centrality, closeness_centrality
from repro.algorithms.shortestpath import apsp_min_plus
from repro.generators import erdos_renyi
from repro.parallel import (
    chunk_evenly,
    parallel_betweenness,
    parallel_closeness,
    parallel_map,
    parallel_sssp_matrix,
)
from repro.sparse import from_dense


def _square(x):
    return x * x


class TestChunking:
    def test_even_sizes(self):
        chunks = chunk_evenly(list(range(10)), 3)
        assert [len(c) for c in chunks] == [3, 3, 4] or \
               sorted(len(c) for c in chunks) in ([3, 3, 4], [3, 4, 3])
        assert sum(chunks, []) == list(range(10))

    def test_more_chunks_than_items(self):
        chunks = chunk_evenly([1, 2], 5)
        assert [list(c) for c in chunks] == [[1], [2]]

    def test_empty(self):
        assert chunk_evenly([], 3) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_evenly([1], 0)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [(2,), (3,)], workers=1) == [4, 9]

    def test_process_pool_path(self):
        assert parallel_map(_square, [(i,) for i in range(6)],
                            workers=2) == [i * i for i in range(6)]

    def test_order_preserved(self):
        out = parallel_map(_square, [(i,) for i in range(10)], workers=3)
        assert out == [i * i for i in range(10)]

    def test_serial_path_merges_worker_timers(self):
        from repro.util import Timer

        t = Timer()
        out = parallel_map(_square, [(2,), (3,)], workers=1, timer=t)
        assert out == [4, 9]
        assert t.counts["_square"] == 2
        assert t.totals["_square"] >= 0

    def test_pool_path_merges_worker_timers(self):
        from repro.util import Timer

        t = Timer()
        out = parallel_map(_square, [(i,) for i in range(6)], workers=2,
                           timer=t)
        assert out == [i * i for i in range(6)]
        assert t.counts["_square"] == 6

    def test_driver_timer_passthrough(self):
        from repro.util import Timer

        a = erdos_renyi(20, 0.2, seed=1)
        t = Timer()
        serial = parallel_betweenness(a, workers=1)
        timed = parallel_betweenness(a, workers=2, timer=t)
        np.testing.assert_allclose(timed, serial)
        assert t.counts["_betweenness_chunk"] == 2


class TestSharedArrays:
    def test_roundtrip(self):
        from repro.parallel.pool import (
            attach_arrays,
            share_arrays,
            unlink_arrays,
        )

        src = {"x": np.arange(10, dtype=np.float64),
               "y": np.array([[1, 2], [3, 4]], dtype=np.intp),
               "empty": np.zeros(0, dtype=np.float32)}
        handles, meta = share_arrays(src)
        try:
            views, view_handles = attach_arrays(meta)
            try:
                for name, arr in src.items():
                    assert views[name].dtype == arr.dtype
                    assert views[name].shape == arr.shape
                    assert np.array_equal(views[name], arr)
            finally:
                for h in view_handles:
                    h.close()
        finally:
            unlink_arrays(handles)

    def test_shared_not_copied(self):
        from repro.parallel.pool import (
            attach_arrays,
            share_arrays,
            unlink_arrays,
        )

        handles, meta = share_arrays({"x": np.zeros(4)})
        try:
            views, view_handles = attach_arrays(meta)
            views["x"][0] = 42.0
            views2, view_handles2 = attach_arrays(meta)
            assert views2["x"][0] == 42.0  # same segment, not a copy
            for h in view_handles + view_handles2:
                h.close()
        finally:
            unlink_arrays(handles)

    def test_unlink_idempotent(self):
        from repro.parallel.pool import share_arrays, unlink_arrays

        handles, _ = share_arrays({"x": np.ones(3)})
        unlink_arrays(handles)
        unlink_arrays(handles)  # second unlink is a no-op, not an error

    def test_attach_missing_segment_raises(self):
        from repro.parallel.pool import attach_arrays

        with pytest.raises(FileNotFoundError):
            attach_arrays({"x": ("repro_no_such_segment", (3,), "<f8")})


class TestParallelCentrality:
    @pytest.fixture(scope="class")
    def graph(self):
        return erdos_renyi(30, 0.15, seed=3)

    def test_betweenness_matches_serial(self, graph):
        serial = betweenness_centrality(graph)
        for workers in (1, 2, 3):
            par = parallel_betweenness(graph, workers=workers)
            assert np.allclose(par, serial)

    def test_closeness_matches_serial(self, graph):
        serial = closeness_centrality(graph)
        par = parallel_closeness(graph, workers=2)
        assert np.allclose(par, serial)

    def test_weighted_closeness(self, rng):
        n = 15
        upper = np.triu(np.where(rng.random((n, n)) < 0.3,
                                 rng.uniform(1, 4, (n, n)), 0.0), 1)
        a = from_dense(upper + upper.T)
        serial = closeness_centrality(a, weighted=True)
        par = parallel_closeness(a, workers=2, weighted=True)
        assert np.allclose(par, serial)


class TestParallelSSSP:
    def test_matches_minplus_apsp(self, rng):
        n = 20
        dense = np.where(rng.random((n, n)) < 0.2,
                         rng.uniform(0.5, 4.0, (n, n)), 0.0)
        np.fill_diagonal(dense, 0.0)
        a = from_dense(dense)
        par = parallel_sssp_matrix(a, workers=2)
        assert np.allclose(par, apsp_min_plus(a), equal_nan=True)

    def test_source_subset(self, rng):
        a = erdos_renyi(15, 0.3, seed=4)
        out = parallel_sssp_matrix(a, workers=2, sources=[0, 5])
        assert out.shape == (2, 15)
