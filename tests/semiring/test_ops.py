"""Unit tests for the operator classes (UnaryOp/BinaryOp/Monoid/Semiring)."""

import numpy as np
import pytest

from repro.semiring import (
    BinaryOp,
    Monoid,
    Semiring,
    UnaryOp,
    MIN_PLUS,
    PLUS_MONOID,
    MIN_MONOID,
    PLUS,
    TIMES,
)


class TestUnaryOp:
    def test_applies_elementwise(self):
        op = UnaryOp("sq", lambda x: x * x)
        assert np.array_equal(op(np.array([1.0, 2.0, 3.0])), [1.0, 4.0, 9.0])

    def test_scalar_input_promoted(self):
        op = UnaryOp("neg", np.negative)
        assert op(3.0) == -3.0

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            UnaryOp("bad", 42)


class TestBinaryOp:
    def test_ufunc_detected(self):
        assert PLUS.ufunc is np.add
        assert TIMES.ufunc is np.multiply

    def test_call(self):
        assert np.array_equal(PLUS(np.array([1, 2]), np.array([3, 4])), [4, 6])

    def test_from_python_roundtrip(self):
        op = BinaryOp.from_python("mymax", lambda a, b: a if a > b else b)
        out = op(np.array([1.0, 5.0]), np.array([2.0, 3.0]))
        assert np.array_equal(out, [2.0, 5.0])
        assert out.dtype == np.float64

    def test_from_python_supports_reduceat(self):
        op = BinaryOp.from_python("add2", lambda a, b: a + b)
        m = Monoid.from_binaryop(op, identity=0.0)
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        out = m.reduceat(vals, np.array([0, 2]))
        assert np.allclose(out, [3.0, 7.0])

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            BinaryOp("bad", None)


class TestMonoid:
    def test_reduce_all(self):
        assert PLUS_MONOID.reduce(np.array([1.0, 2.0, 3.0])) == 6.0
        assert MIN_MONOID.reduce(np.array([3.0, 1.0, 2.0])) == 1.0

    def test_reduce_empty_returns_identity(self):
        assert PLUS_MONOID.reduce(np.array([])) == 0.0
        assert MIN_MONOID.reduce(np.array([])) == float("inf")

    def test_reduce_axis(self):
        arr = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.array_equal(PLUS_MONOID.reduce(arr, axis=0), [4.0, 6.0])
        assert np.array_equal(PLUS_MONOID.reduce(arr, axis=1), [3.0, 7.0])

    def test_reduce_empty_axis_shape(self):
        arr = np.zeros((0, 3))
        out = PLUS_MONOID.reduce(arr, axis=0)
        assert out.shape == (3,)

    def test_reduceat_segments(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        out = PLUS_MONOID.reduceat(vals, np.array([0, 2, 3]))
        assert np.array_equal(out, [3.0, 3.0, 9.0])

    def test_reduceat_empty_starts(self):
        out = PLUS_MONOID.reduceat(np.array([1.0]), np.array([], dtype=int))
        assert len(out) == 0

    def test_monoid_is_commutative_associative_flags(self):
        assert PLUS_MONOID.commutative and PLUS_MONOID.associative


class TestSemiring:
    def test_zero_and_one(self):
        assert MIN_PLUS.zero == float("inf")
        assert MIN_PLUS.one == 0.0

    def test_requires_monoid_add(self):
        with pytest.raises(TypeError):
            Semiring("bad", PLUS, TIMES)  # PLUS is a BinaryOp, not Monoid

    def test_requires_binop_mul(self):
        with pytest.raises(TypeError):
            Semiring("bad", PLUS_MONOID, lambda a, b: a)

    def test_equality_by_name(self):
        s1 = Semiring("x", PLUS_MONOID, TIMES)
        s2 = Semiring("x", MIN_MONOID, PLUS)
        assert s1 == s2 and hash(s1) == hash(s2)
