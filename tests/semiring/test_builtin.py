"""Built-in operator/semiring behaviour + property-based algebra laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semiring import (
    ABS,
    AINV,
    ANY_PAIR,
    DIV,
    FIRST,
    IDENTITY,
    LAND_MONOID,
    LOR_LAND,
    LOR_MONOID,
    MAX_MIN,
    MAX_MONOID,
    MIN_MONOID,
    MIN_PLUS,
    MINV,
    ONE,
    PAIR,
    PLUS_MONOID,
    PLUS_PAIR,
    PLUS_TIMES,
    SECOND,
    TIMES_MONOID,
    get_semiring,
    list_semirings,
)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)

ALL_MONOIDS = [PLUS_MONOID, TIMES_MONOID, MIN_MONOID, MAX_MONOID]
ALL_SEMIRINGS = [PLUS_TIMES, MIN_PLUS, MAX_MIN, LOR_LAND, PLUS_PAIR, ANY_PAIR]


class TestUnaryBuiltins:
    def test_identity(self):
        x = np.array([1.0, -2.0])
        assert np.array_equal(IDENTITY(x), x)

    def test_ainv_abs(self):
        x = np.array([1.0, -2.0])
        assert np.array_equal(AINV(x), [-1.0, 2.0])
        assert np.array_equal(ABS(x), [1.0, 2.0])

    def test_one(self):
        assert np.array_equal(ONE(np.array([5.0, -3.0])), [1.0, 1.0])

    def test_minv(self):
        assert np.allclose(MINV(np.array([2.0, 4.0])), [0.5, 0.25])

    def test_minv_zero_is_inf(self):
        assert np.isinf(MINV(np.array([0.0]))[0])


class TestBinaryBuiltins:
    def test_first_second(self):
        x, y = np.array([1.0, 2.0]), np.array([3.0, 4.0])
        assert np.array_equal(FIRST(x, y), x)
        assert np.array_equal(SECOND(x, y), y)

    def test_pair_is_one(self):
        out = PAIR(np.array([5.0, 0.0]), np.array([7.0, 2.0]))
        assert np.array_equal(out, [1.0, 1.0])

    def test_div_by_zero_does_not_raise(self):
        out = DIV(np.array([1.0]), np.array([0.0]))
        assert np.isinf(out[0])


class TestMonoidIdentities:
    @pytest.mark.parametrize("monoid", ALL_MONOIDS, ids=lambda m: m.name)
    @given(x=finite)
    @settings(max_examples=25, deadline=None)
    def test_identity_is_neutral(self, monoid, x):
        assert monoid(np.array([x]), np.array([monoid.identity]))[0] == x

    def test_bool_monoid_identities(self):
        assert LOR_MONOID(np.array([True]), np.array([False]))[0]
        assert not LAND_MONOID(np.array([False]), np.array([True]))[0]


class TestAlgebraLaws:
    @pytest.mark.parametrize("monoid", ALL_MONOIDS, ids=lambda m: m.name)
    @given(a=finite, b=finite, c=finite)
    @settings(max_examples=50, deadline=None)
    def test_monoid_commutative_associative(self, monoid, a, b, c):
        A, B, C = (np.array([v]) for v in (a, b, c))
        assert monoid(A, B)[0] == monoid(B, A)[0]
        lhs = monoid(monoid(A, B), C)[0]
        rhs = monoid(A, monoid(B, C))[0]
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-6)

    @pytest.mark.parametrize("sr", [MIN_PLUS, MAX_MIN, LOR_LAND],
                             ids=lambda s: s.name)
    @given(a=finite, b=finite, c=finite)
    @settings(max_examples=50, deadline=None)
    def test_distributivity_exact_semirings(self, sr, a, b, c):
        """⊗ distributes over ⊕ (exact for min/max/bool algebras)."""
        if sr is LOR_LAND:
            a, b, c = bool(a > 0), bool(b > 0), bool(c > 0)
        A, B, C = (np.array([v]) for v in (a, b, c))
        lhs = sr.mul(A, sr.add(B, C))[0]
        rhs = sr.add(sr.mul(A, B), sr.mul(A, C))[0]
        assert lhs == rhs

    @pytest.mark.parametrize("sr", ALL_SEMIRINGS, ids=lambda s: s.name)
    @given(a=finite)
    @settings(max_examples=25, deadline=None)
    def test_zero_annihilates(self, sr, a):
        """x ⊗ 0 == 0 (the property implicit-sparse storage relies on)."""
        if sr is LOR_LAND:
            a = bool(a > 0)
        if sr.mul.name in ("pair",):
            pytest.skip("pair ignores operand values by design")
        out = sr.mul(np.array([a]), np.array([sr.zero]))[0]
        # mul may produce nan for inf*0 in tropical: min-plus uses +,
        # where a + inf = inf == zero. Check against zero.
        assert out == sr.zero or (np.isnan(out) and np.isnan(sr.zero))


class TestRegistry:
    def test_lookup(self):
        assert get_semiring("min_plus") is MIN_PLUS

    def test_unknown_raises_with_names(self):
        with pytest.raises(KeyError, match="plus_times"):
            get_semiring("nope")

    def test_list_sorted(self):
        names = list_semirings()
        assert names == sorted(names)
        assert "lor_land" in names
