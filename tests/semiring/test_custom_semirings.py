"""User-defined semirings through the full kernel stack.

The paper's premise is that analysts write *new* algebras against the
same kernels; these tests define semirings from scratch (including slow
``from_python`` operators) and verify SpGEMM/SpMV/Reduce behave per the
dense definition.
"""

import numpy as np
import pytest

from repro.semiring import BinaryOp, Monoid, Semiring
from repro.sparse import from_dense, mxv, mxm, reduce_rows
from repro.sparse.spgemm import mxm_dense_reference


@pytest.fixture
def log_semiring():
    """Log-sum-exp ⊕ with + ⊗: numerically-stable probability algebra.

    zero = −inf (log 0), one = 0.0 (log 1).
    """
    def lse(a, b):
        return np.logaddexp(a, b)

    add = Monoid("logsumexp", lse, identity=-np.inf, ufunc=np.logaddexp)
    return Semiring("lse_plus", add, BinaryOp("plus", np.add), one=0.0)


@pytest.fixture
def gcd_semiring():
    """(lcm, gcd)-style toy algebra built from plain Python callables."""
    import math

    gcd = BinaryOp.from_python("gcd", lambda a, b: float(
        math.gcd(int(a), int(b))), commutative=True, associative=True)
    add = Monoid.from_binaryop(gcd, identity=0.0)  # gcd(x, 0) = x
    mul = BinaryOp.from_python("times", lambda a, b: float(int(a) * int(b)))
    return Semiring("gcd_times", add, mul, one=1.0)


class TestLogSemiring:
    def test_mxm_matches_probability_product(self, log_semiring, rng):
        """exp of the lse-plus product == ordinary product of exp."""
        p = np.where(rng.random((6, 6)) < 0.5, rng.random((6, 6)), 0.0)
        with np.errstate(divide="ignore"):
            logs = np.log(p)
        a = from_dense(logs, zero=-np.inf)
        out = mxm(a, a, semiring=log_semiring)
        ref = p @ p
        dense = np.exp(out.to_dense(fill=-np.inf))
        assert np.allclose(dense, ref, atol=1e-12)

    def test_mxv(self, log_semiring, rng):
        p = np.where(rng.random((5, 5)) < 0.6, rng.random((5, 5)), 0.0)
        with np.errstate(divide="ignore"):
            a = from_dense(np.log(p), zero=-np.inf)
        x = rng.random(5) + 0.05
        y = mxv(a, np.log(x), semiring=log_semiring)
        assert np.allclose(np.exp(y), p @ x)

    def test_reduce(self, log_semiring, rng):
        p = rng.random((4, 3)) + 0.1
        a = from_dense(np.log(p), zero=-np.inf)
        sums = reduce_rows(a, log_semiring.add)
        assert np.allclose(np.exp(sums), p.sum(axis=1))


class TestPythonCallableSemiring:
    def test_mxm_matches_dense_reference(self, gcd_semiring, rng):
        dense_a = (rng.random((5, 4)) < 0.6) * rng.integers(1, 30, (5, 4))
        dense_b = (rng.random((4, 6)) < 0.6) * rng.integers(1, 30, (4, 6))
        a, b = from_dense(dense_a.astype(float)), from_dense(dense_b.astype(float))
        ours = mxm(a, b, semiring=gcd_semiring)
        ref = mxm_dense_reference(a, b, semiring=gcd_semiring)
        assert np.allclose(ours.to_dense(fill=0.0), ref)

    def test_reduceat_path_used(self, gcd_semiring):
        vals = np.array([12.0, 18.0, 8.0, 12.0])
        out = gcd_semiring.add.reduceat(vals, np.array([0, 2]))
        assert out.tolist() == [6.0, 4.0]

    def test_identity_behaviour(self, gcd_semiring):
        assert gcd_semiring.add(np.array([9.0]),
                                np.array([0.0]))[0] == 9.0


class TestSemiringErrors:
    def test_monoid_without_ufunc_cannot_reduce(self):
        m = Monoid("broken", lambda a, b: a, identity=0.0)
        with pytest.raises(TypeError, match="ufunc"):
            m.reduce(np.array([1.0, 2.0]))
        with pytest.raises(TypeError, match="ufunc"):
            m.reduceat(np.array([1.0]), np.array([0]))
