"""Property-based tests: kernels vs dense references on random inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.semiring import LOR_LAND, MIN_PLUS, PLUS_TIMES
from repro.sparse import (
    ewise_add,
    ewise_mult,
    from_dense,
    mxm,
    mxv,
    triu,
    tril,
)
from repro.sparse.spgemm import mxm_dense_reference


def sparse_dense(max_dim=8):
    """Strategy: dense float arrays with many exact zeros."""
    dims = st.tuples(st.integers(1, max_dim), st.integers(1, max_dim))
    return dims.flatmap(lambda s: arrays(
        np.float64, s,
        elements=st.sampled_from([0.0, 0.0, 0.0, 1.0, 2.0, -1.5, 3.0])))


@given(d=sparse_dense())
@settings(max_examples=60, deadline=None)
def test_roundtrip_dense(d):
    assert np.array_equal(from_dense(d).to_dense(), d)


@given(d=sparse_dense())
@settings(max_examples=60, deadline=None)
def test_transpose_involution(d):
    m = from_dense(d)
    assert np.array_equal(m.T.T.to_dense(), d)
    assert np.array_equal(m.T.to_dense(), d.T)


@given(d=sparse_dense())
@settings(max_examples=60, deadline=None)
def test_triangular_partition(d):
    m = from_dense(d)
    lower = tril(m, -1).to_dense()
    upper = triu(m, 0).to_dense()
    assert np.array_equal(lower + upper, d)


square = st.integers(1, 7).flatmap(lambda n: arrays(
    np.float64, (n, n),
    elements=st.sampled_from([0.0, 0.0, 1.0, 2.0, 5.0])))


@given(da=square, db=square)
@settings(max_examples=60, deadline=None)
def test_spgemm_matches_numpy(da, db):
    if da.shape[1] != db.shape[0]:
        db = np.zeros((da.shape[1], da.shape[1]))
    assert np.allclose(mxm(from_dense(da), from_dense(db)).to_dense(),
                       da @ db)


@given(da=square)
@settings(max_examples=40, deadline=None)
def test_spgemm_min_plus_matches_reference(da):
    a = from_dense(da)
    ours = mxm(a, a, semiring=MIN_PLUS).to_dense(fill=np.inf)
    ref = mxm_dense_reference(a, a, semiring=MIN_PLUS)
    assert np.allclose(ours, ref)


@given(da=square, db=square)
@settings(max_examples=60, deadline=None)
def test_ewise_union_intersection_laws(da, db):
    if da.shape != db.shape:
        db = np.zeros_like(da)
    a, b = from_dense(da), from_dense(db)
    assert np.allclose(ewise_add(a, b).to_dense(), da + db)
    assert np.allclose(ewise_mult(a, b).to_dense(), da * db)
    # commutativity
    assert ewise_add(a, b).equal(ewise_add(b, a))
    assert ewise_mult(a, b).equal(ewise_mult(b, a))


@given(da=square)
@settings(max_examples=40, deadline=None)
def test_mxv_linear(da):
    a = from_dense(da)
    n = da.shape[1]
    x = np.arange(1.0, n + 1)
    y = np.ones(n)
    lhs = mxv(a, x + y)
    rhs = mxv(a, x) + mxv(a, y)
    assert np.allclose(lhs, rhs)


@given(da=square, db=square, dc=square)
@settings(max_examples=30, deadline=None)
def test_spgemm_associative(da, db, dc):
    n = da.shape[0]
    if db.shape != (n, n):
        db = np.zeros((n, n))
    if dc.shape != (n, n):
        dc = np.zeros((n, n))
    a, b, c = from_dense(da), from_dense(db), from_dense(dc)
    lhs = mxm(mxm(a, b), c)
    rhs = mxm(a, mxm(b, c))
    assert np.allclose(lhs.to_dense(), rhs.to_dense())


@given(da=square)
@settings(max_examples=30, deadline=None)
def test_boolean_mxm_idempotent_on_reachability_closure(da):
    """Closing A under boolean products reaches a fixpoint (transitive
    closure) — iterating one more step changes nothing."""
    pattern = (da != 0)
    a = from_dense(pattern.astype(float)).pattern(True)
    closure = a
    for _ in range(da.shape[0]):
        nxt = ewise_add(closure, mxm(closure, closure, semiring=LOR_LAND),
                        op=np.logical_or)
        if nxt.equal(closure):
            break
        closure = nxt
    again = ewise_add(closure, mxm(closure, closure, semiring=LOR_LAND),
                      op=np.logical_or)
    assert again.equal(closure)
