"""SpGEMM: correctness against numpy/scipy for multiple semirings, masks,
and the grouped-arange expansion helper."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.semiring import (
    LOR_LAND,
    MAX_MIN,
    MAX_PLUS,
    MIN_PLUS,
    PLUS_PAIR,
    PLUS_TIMES,
)
from repro.sparse import from_dense, mxm, zeros
from repro.sparse.spgemm import grouped_arange, mxm_dense_reference


class TestGroupedArange:
    def test_basic(self):
        out = grouped_arange(np.array([2, 0, 3]), np.array([5, 9, 1]))
        assert out.tolist() == [5, 6, 1, 2, 3]

    def test_no_starts(self):
        assert grouped_arange(np.array([3, 2])).tolist() == [0, 1, 2, 0, 1]

    def test_empty(self):
        assert grouped_arange(np.array([], dtype=int)).size == 0

    def test_all_zero_counts(self):
        assert grouped_arange(np.array([0, 0])).size == 0


class TestArithmetic:
    def test_matches_scipy(self, rng):
        for _ in range(10):
            m, k, n = rng.integers(1, 15, 3)
            a = sp.random(m, k, density=0.3, random_state=rng.integers(1 << 30))
            b = sp.random(k, n, density=0.3, random_state=rng.integers(1 << 30))
            ours = mxm(from_dense(a.toarray()), from_dense(b.toarray()))
            ref = (a @ b).toarray()
            assert np.allclose(ours.to_dense(), ref)

    def test_empty_result(self):
        a = from_dense([[1.0, 0.0]])
        b = from_dense([[0.0], [1.0]])
        out = mxm(a, b)
        # product hits only implicit zeros in B's first row
        assert np.allclose(out.to_dense(), [[0.0]])

    def test_empty_operands(self):
        out = mxm(zeros(3, 4), zeros(4, 2))
        assert out.shape == (3, 2) and out.nnz == 0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            mxm(zeros(2, 3), zeros(4, 2))

    def test_identity_preserved(self, random_sparse):
        from repro.sparse import identity

        a, da = random_sparse(5, 5, seed=11)
        assert mxm(a, identity(5)).equal(a.prune())
        assert mxm(identity(5), a).equal(a.prune())


class TestSemirings:
    @pytest.mark.parametrize("sr,zero", [
        (MIN_PLUS, np.inf), (MAX_PLUS, -np.inf),
        (MAX_MIN, -np.inf),
    ], ids=lambda x: str(x))
    def test_tropical_family_vs_dense_loop(self, rng, sr, zero):
        for _ in range(5):
            m, k, n = rng.integers(1, 10, 3)
            a = np.where(rng.random((m, k)) < 0.5, rng.random((m, k)) * 9, 0.0)
            b = np.where(rng.random((k, n)) < 0.5, rng.random((k, n)) * 9, 0.0)
            sa, sb = from_dense(a), from_dense(b)
            ours = mxm(sa, sb, semiring=sr).to_dense(fill=zero)
            ref = mxm_dense_reference(sa, sb, semiring=sr)
            assert np.allclose(ours, ref)

    def test_boolean_reachability(self, rng):
        d = (rng.random((8, 8)) < 0.3)
        a = from_dense(d.astype(float)).pattern(True)
        ours = mxm(a, a, semiring=LOR_LAND)
        ref = (d.astype(int) @ d.astype(int)) > 0
        assert np.array_equal(ours.to_dense(fill=False).astype(bool), ref)

    def test_plus_pair_counts_intersections(self, rng):
        """plus_pair SpGEMM of A·Aᵀ counts common neighbours — the
        structural count k-truss style algorithms use."""
        d = (rng.random((7, 7)) < 0.4).astype(float)
        a = from_dense(d)
        ours = mxm(a, a.T, semiring=PLUS_PAIR)
        ref = (d > 0).astype(float) @ (d > 0).astype(float).T
        assert np.allclose(ours.to_dense(), ref)

    def test_min_plus_is_one_hop_relaxation(self):
        inf = np.inf
        d = np.array([[inf, 1.0, inf], [inf, inf, 2.0], [inf, inf, inf]])
        a = from_dense(d, zero=inf)
        two_hop = mxm(a, a, semiring=MIN_PLUS)
        assert two_hop.get(0, 2, default=inf) == 3.0


class TestMask:
    def test_structural_mask_filters_output(self, random_sparse):
        a, da = random_sparse(6, 6, seed=21)
        b, db = random_sparse(6, 6, seed=22)
        mask, dm = random_sparse(6, 6, seed=23)
        out = mxm(a, b, mask=mask)
        ref = np.where(dm != 0, da @ db, 0.0)
        assert np.allclose(out.to_dense(), ref)

    def test_empty_mask_empty_output(self, random_sparse):
        a, _ = random_sparse(4, 4, seed=24)
        out = mxm(a, a, mask=zeros(4, 4))
        assert out.nnz == 0

    def test_mask_shape_checked(self, random_sparse):
        a, _ = random_sparse(4, 4, seed=25)
        with pytest.raises(ValueError, match="mask"):
            mxm(a, a, mask=zeros(3, 3))


class TestDenseReference:
    def test_matches_numpy_arithmetic(self, random_sparse):
        a, da = random_sparse(5, 6, seed=31)
        b, db = random_sparse(6, 4, seed=32)
        assert np.allclose(mxm_dense_reference(a, b, PLUS_TIMES), da @ db)

    def test_dimension_check(self):
        with pytest.raises(ValueError):
            mxm_dense_reference(zeros(2, 3), zeros(4, 4))
