"""Matrix container: canonical-form invariants, accessors, structure ops."""

import numpy as np
import pytest

from repro.sparse import Matrix, from_coo, from_dense, identity, zeros


class TestCanonicalValidation:
    def test_valid_construction(self):
        m = Matrix(2, 3, [0, 1, 2], [1, 0], [5.0, 7.0])
        assert m.shape == (2, 3) and m.nnz == 2

    def test_indptr_length_checked(self):
        with pytest.raises(ValueError, match="indptr"):
            Matrix(2, 2, [0, 1], [0], [1.0])

    def test_indptr_must_span(self):
        with pytest.raises(ValueError):
            Matrix(1, 2, [0, 2], [0], [1.0])

    def test_column_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Matrix(1, 2, [0, 1], [5], [1.0])

    def test_unsorted_columns_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Matrix(1, 3, [0, 2], [2, 0], [1.0, 1.0])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Matrix(1, 3, [0, 2], [1, 1], [1.0, 1.0])

    def test_row_boundary_reset_allowed(self):
        # col index may decrease across a row boundary
        m = Matrix(2, 3, [0, 2, 3], [0, 2, 0], [1.0, 2.0, 3.0])
        assert m.nnz == 3

    def test_negative_shape_rejected(self):
        with pytest.raises(ValueError):
            Matrix(-1, 2, [0], [], [])

    def test_values_alignment_checked(self):
        with pytest.raises(ValueError, match="mismatch"):
            Matrix(1, 2, [0, 1], [0], [1.0, 2.0])


class TestAccessors:
    def test_row(self):
        m = from_dense([[0, 1, 2], [3, 0, 0]])
        cols, vals = m.row(0)
        assert cols.tolist() == [1, 2] and vals.tolist() == [1.0, 2.0]

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            from_dense([[1.0]]).row(3)

    def test_get_present_and_absent(self):
        m = from_dense([[0, 5], [0, 0]])
        assert m.get(0, 1) == 5.0
        assert m.get(1, 0) == 0.0
        assert m.get(1, 0, default=-1) == -1

    def test_get_col_out_of_range(self):
        with pytest.raises(IndexError):
            from_dense([[1.0]]).get(0, 2)

    def test_to_dense_fill(self):
        m = from_dense([[0, 2], [0, 0]])
        d = m.to_dense(fill=np.inf)
        assert d[0, 1] == 2.0 and np.isinf(d[0, 0])

    def test_to_coo_roundtrip(self):
        dense = np.array([[0.0, 1.0], [2.0, 0.0]])
        r, c, v = from_dense(dense).to_coo()
        rebuilt = from_coo(2, 2, r, c, v)
        assert np.array_equal(rebuilt.to_dense(), dense)

    def test_row_lengths_and_ids(self):
        m = from_dense([[1, 1], [0, 0], [1, 0]])
        assert m.row_lengths.tolist() == [2, 0, 1]
        assert m.row_ids().tolist() == [0, 0, 2]

    def test_iter_entries(self):
        m = from_dense([[0, 3], [4, 0]])
        assert list(m.iter_entries()) == [(0, 1, 3.0), (1, 0, 4.0)]


class TestStructureOps:
    def test_transpose_matches_numpy(self, random_sparse):
        m, dense = random_sparse(7, 5, seed=1)
        assert np.array_equal(m.T.to_dense(), dense.T)

    def test_transpose_empty(self):
        z = zeros(3, 4)
        assert z.T.shape == (4, 3) and z.T.nnz == 0

    def test_double_transpose_identity(self, random_sparse):
        m, dense = random_sparse(6, 6, seed=2)
        assert np.array_equal(m.T.T.to_dense(), dense)

    def test_pattern(self):
        m = from_dense([[0, 5], [3, 0]])
        p = m.pattern()
        assert np.array_equal(p.to_dense(), [[0, 1], [1, 0]])

    def test_prune_drops_explicit_zeros(self):
        m = Matrix(1, 3, [0, 3], [0, 1, 2], [1.0, 0.0, 2.0])
        p = m.prune()
        assert p.nnz == 2 and p.get(0, 1) == 0.0

    def test_prune_noop_returns_self(self):
        m = from_dense([[1.0, 2.0]])
        assert m.prune() is m

    def test_with_values_requires_alignment(self):
        m = from_dense([[1, 2]])
        with pytest.raises(ValueError):
            m.with_values(np.array([1.0]))

    def test_identity(self):
        i = identity(3)
        assert np.array_equal(i.to_dense(), np.eye(3))

    def test_identity_custom_one(self):
        i = identity(2, one=0.0)  # min-plus identity matrix
        assert i.nnz == 2 and (i.values == 0.0).all()


class TestOperatorSugar:
    def test_matmul_add_sub_mul(self, random_sparse):
        a, da = random_sparse(4, 4, seed=3)
        b, db = random_sparse(4, 4, seed=4)
        assert np.allclose((a @ b).to_dense(), da @ db)
        assert np.allclose((a + b).to_dense(), da + db)
        assert np.allclose((a - b).to_dense(), da - db)
        assert np.allclose((a * b).to_dense(), da * db)
        assert np.allclose((2.0 * a).to_dense(), 2 * da)

    def test_matmul_vector(self, random_sparse):
        a, da = random_sparse(4, 6, seed=5)
        x = np.arange(6, dtype=float)
        assert np.allclose(a @ x, da @ x)


class TestEqual:
    def test_equal_true(self):
        a = from_dense([[1, 0], [0, 2]])
        b = from_dense([[1, 0], [0, 2]])
        assert a.equal(b)

    def test_equal_ignores_explicit_zeros(self):
        a = Matrix(1, 2, [0, 2], [0, 1], [1.0, 0.0])
        b = Matrix(1, 2, [0, 1], [0], [1.0])
        assert a.equal(b)

    def test_equal_shape_mismatch(self):
        assert not from_dense([[1.0]]).equal(from_dense([[1.0, 0.0]]))

    def test_equal_with_tolerance(self):
        a = from_dense([[1.0]])
        b = from_dense([[1.0 + 1e-12]])
        assert not a.equal(b)
        assert a.equal(b, atol=1e-9)

    def test_repr(self):
        assert "nnz=1" in repr(from_dense([[3.0]]))
