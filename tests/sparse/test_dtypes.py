"""Value-dtype behaviour across kernels (bool patterns, ints, floats)."""

import numpy as np
import pytest

from repro.semiring import LOR_LAND
from repro.sparse import from_coo, from_dense, mxm, mxv, reduce_rows


class TestBooleanMatrices:
    def test_pattern_true_makes_bool(self):
        m = from_dense([[0.0, 2.0], [3.0, 0.0]]).pattern(True)
        assert m.dtype == np.bool_
        assert m.values.all()

    def test_bool_mxm_lor_land(self):
        d = np.array([[True, False], [True, True]])
        a = from_dense(d.astype(float)).pattern(True)
        out = mxm(a, a, semiring=LOR_LAND)
        ref = d @ d
        assert np.array_equal(out.to_dense(fill=False).astype(bool), ref)

    def test_bool_to_dense_fill(self):
        a = from_coo(2, 2, [0], [1], np.array([True]))
        d = a.to_dense(fill=False)
        assert d.dtype == np.bool_
        assert d[0, 1] and not d[0, 0]

    def test_bool_reduce_lor(self):
        from repro.semiring import LOR_MONOID

        a = from_coo(2, 2, [0, 0], [0, 1], np.array([True, False]))
        out = reduce_rows(a, LOR_MONOID)
        assert out.tolist() == [True, False]


class TestIntegerValues:
    def test_int_values_preserved(self):
        a = from_coo(2, 2, [0, 1], [1, 0], np.array([3, 5], dtype=np.int64))
        assert a.dtype == np.int64
        assert a.get(0, 1) == 3

    def test_int_mxm_stays_exact(self):
        d = np.array([[2, 0], [1, 3]], dtype=np.int64)
        a = from_dense(d)
        out = mxm(a, a)
        assert np.array_equal(out.to_dense().astype(np.int64), d @ d)

    def test_int_scale_promotes(self):
        a = from_coo(1, 1, [0], [0], np.array([3], dtype=np.int64))
        out = a.scale(0.5)
        assert out.get(0, 0) == 1.5

    def test_astype(self):
        a = from_coo(1, 2, [0], [1], np.array([2.9]))
        assert a.astype(np.int64).get(0, 1) == 2

    def test_int_mxv(self):
        d = np.array([[1, 2], [0, 3]], dtype=np.int64)
        a = from_dense(d)
        x = np.array([1, 1], dtype=np.int64)
        assert mxv(a, x).tolist() == [3, 3]


class TestMixedOperations:
    def test_ewise_int_float(self):
        ai = from_coo(1, 2, [0, 0], [0, 1], np.array([1, 2], dtype=np.int64))
        af = from_coo(1, 2, [0, 0], [0, 1], np.array([0.5, 0.5]))
        out = ai.ewise_add(af)
        assert out.values.tolist() == [1.5, 2.5]

    def test_tropical_needs_float_inf(self):
        """Min-plus zero is +inf: int matrices densify to float."""
        from repro.semiring import MIN_PLUS

        a = from_coo(2, 2, [0], [1], np.array([3], dtype=np.int64))
        out = mxv(a, np.array([0.0, 0.0]), semiring=MIN_PLUS)
        assert np.isinf(out[1]) and out[0] == 3.0
