"""SpRef / SpAsgn / triangular / diagonal selections."""

import numpy as np
import pytest

from repro.sparse import (
    assign,
    diag,
    extract,
    from_dense,
    offdiag,
    select_values,
    tril,
    triu,
    zeros,
)


class TestExtract:
    def test_matches_numpy_ix(self, random_sparse):
        a, da = random_sparse(8, 9, seed=51)
        rows = [5, 1, 1, 7]
        cols = [0, 3, 8]
        out = extract(a, rows=rows, cols=cols)
        assert np.allclose(out.to_dense(), da[np.ix_(rows, cols)])

    def test_none_selects_all(self, random_sparse):
        a, da = random_sparse(4, 5, seed=52)
        assert np.allclose(extract(a).to_dense(), da)

    def test_slice_selector(self, random_sparse):
        a, da = random_sparse(6, 6, seed=53)
        out = extract(a, rows=slice(1, 4))
        assert np.allclose(out.to_dense(), da[1:4])

    def test_negative_indices(self, random_sparse):
        a, da = random_sparse(5, 5, seed=54)
        out = extract(a, rows=[-1], cols=[-2])
        assert np.allclose(out.to_dense(), da[[-1]][:, [-2]])

    def test_empty_selection(self, random_sparse):
        a, _ = random_sparse(4, 4, seed=55)
        out = extract(a, rows=[])
        assert out.shape == (0, 4)

    def test_duplicate_cols_rejected(self, random_sparse):
        a, _ = random_sparse(4, 4, seed=56)
        with pytest.raises(ValueError, match="duplicate"):
            extract(a, cols=[1, 1])

    def test_out_of_range(self, random_sparse):
        a, _ = random_sparse(4, 4, seed=57)
        with pytest.raises(IndexError):
            extract(a, rows=[9])


class TestAssign:
    def test_matches_numpy(self, random_sparse):
        c, dc = random_sparse(6, 6, seed=61)
        b, db = random_sparse(2, 3, seed=62)
        out = assign(c, b, rows=[1, 4], cols=[0, 2, 5])
        ref = dc.copy()
        ref[np.ix_([1, 4], [0, 2, 5])] = db
        assert np.allclose(out.to_dense(), ref)

    def test_region_cleared_even_for_b_zeros(self):
        """GraphBLAS replace semantics: old entries in the addressed
        region vanish even where B stores nothing."""
        c = from_dense([[7.0, 7.0], [7.0, 7.0]])
        b = zeros(1, 2)
        out = assign(c, b, rows=[0], cols=[0, 1])
        assert np.allclose(out.to_dense(), [[0.0, 0.0], [7.0, 7.0]])

    def test_whole_matrix_replacement(self, random_sparse):
        c, _ = random_sparse(3, 3, seed=63)
        b, db = random_sparse(3, 3, seed=64)
        out = assign(c, b)
        assert np.allclose(out.to_dense(), db)

    def test_shape_mismatch(self, random_sparse):
        c, _ = random_sparse(4, 4, seed=65)
        with pytest.raises(ValueError, match="region"):
            assign(c, zeros(2, 2), rows=[0], cols=[1])

    def test_duplicate_selectors_rejected(self, random_sparse):
        c, _ = random_sparse(4, 4, seed=66)
        with pytest.raises(ValueError, match="duplicate"):
            assign(c, zeros(2, 1), rows=[1, 1], cols=[0])


class TestTriangular:
    def test_triu_tril_match_numpy(self, random_sparse):
        a, da = random_sparse(7, 7, seed=71)
        for k in (-2, -1, 0, 1, 2):
            assert np.allclose(triu(a, k).to_dense(), np.triu(da, k))
            assert np.allclose(tril(a, k).to_dense(), np.tril(da, k))

    def test_split_recombines(self, random_sparse):
        """A == tril(A,-1) + diag + triu(A,1) — Algorithm 2's L+U split."""
        a, da = random_sparse(6, 6, seed=72)
        recombined = tril(a, -1).ewise_add(triu(a, 0))
        assert np.allclose(recombined.to_dense(), da)

    def test_rectangular(self, random_sparse):
        a, da = random_sparse(3, 6, seed=73)
        assert np.allclose(triu(a, 1).to_dense(), np.triu(da, 1))


class TestDiag:
    def test_diag_extraction(self):
        a = from_dense([[1.0, 2.0], [0.0, 5.0]])
        assert diag(a).tolist() == [1.0, 5.0]

    def test_diag_rectangular(self):
        a = from_dense([[1.0, 0.0, 3.0], [0.0, 2.0, 0.0]])
        assert diag(a).tolist() == [1.0, 2.0]

    def test_offdiag_drops_diagonal(self, random_sparse):
        a, da = random_sparse(5, 5, seed=74)
        out = offdiag(a)
        ref = da.copy()
        np.fill_diagonal(ref, 0.0)
        assert np.allclose(out.to_dense(), ref)


class TestSelectValues:
    def test_predicate(self):
        a = from_dense([[1.0, 2.0, 3.0]])
        out = select_values(a, lambda v: v >= 2)
        assert out.nnz == 2 and out.get(0, 0) == 0.0

    def test_eq2_pattern(self):
        """The k-truss (R == 2) selection."""
        a = from_dense([[2.0, 1.0], [3.0, 2.0]])
        out = select_values(a, lambda v: v == 2)
        assert out.nnz == 2

    def test_bad_predicate_shape(self):
        a = from_dense([[1.0, 2.0]])
        with pytest.raises(ValueError):
            select_values(a, lambda v: np.array([True]))
