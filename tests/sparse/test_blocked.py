"""Blocked (tablet-style) SpGEMM: exact agreement with plain mxm."""

import numpy as np
import pytest

from repro.semiring import MIN_PLUS
from repro.sparse import from_dense, mxm, zeros
from repro.sparse.blocked import blocked_mxm, row_blocks, vstack


class TestRowBlocks:
    def test_roundtrip(self, random_sparse):
        a, dense = random_sparse(13, 7, seed=1)
        for n_blocks in (1, 2, 5, 13, 20):
            blocks = row_blocks(a, n_blocks)
            assert vstack(blocks).equal(a)
            assert sum(b.nrows for b in blocks) == 13

    def test_block_contents(self, random_sparse):
        a, dense = random_sparse(10, 6, seed=2)
        blocks = row_blocks(a, 2)
        assert np.allclose(blocks[0].to_dense(), dense[:5])
        assert np.allclose(blocks[1].to_dense(), dense[5:])

    def test_validation(self, random_sparse):
        a, _ = random_sparse(4, 4, seed=3)
        with pytest.raises(ValueError):
            row_blocks(a, 0)
        with pytest.raises(ValueError):
            vstack([])

    def test_vstack_mismatched_cols(self):
        with pytest.raises(ValueError):
            vstack([zeros(2, 3), zeros(2, 4)])


class TestBlockedMxm:
    @pytest.mark.parametrize("n_blocks", [1, 3, 8])
    def test_equals_plain_mxm(self, random_sparse, n_blocks):
        a, _ = random_sparse(12, 9, seed=4)
        b, _ = random_sparse(9, 7, seed=5)
        assert blocked_mxm(a, b, n_blocks=n_blocks).equal(mxm(a, b))

    def test_semiring(self, random_sparse):
        a, _ = random_sparse(8, 8, seed=6)
        out = blocked_mxm(a, a, n_blocks=3, semiring=MIN_PLUS)
        assert out.equal(mxm(a, a, semiring=MIN_PLUS))

    def test_parallel_workers(self, random_sparse):
        a, _ = random_sparse(16, 10, seed=7)
        b, _ = random_sparse(10, 5, seed=8)
        out = blocked_mxm(a, b, n_blocks=4, workers=2)
        assert out.equal(mxm(a, b))

    def test_parallel_builtin_semiring(self, random_sparse):
        a, _ = random_sparse(10, 10, seed=9)
        out = blocked_mxm(a, a, n_blocks=4, workers=2, semiring=MIN_PLUS)
        assert out.equal(mxm(a, a, semiring=MIN_PLUS))

    def test_parallel_custom_semiring_rejected(self, random_sparse):
        from repro.semiring import PLUS_MONOID, Semiring, TIMES

        a, _ = random_sparse(6, 6, seed=10)
        custom = Semiring("my_custom", PLUS_MONOID, TIMES)
        with pytest.raises(ValueError, match="built-in"):
            blocked_mxm(a, a, workers=2, semiring=custom)

    def test_empty_matrix(self):
        out = blocked_mxm(zeros(5, 4), zeros(4, 3), n_blocks=2)
        assert out.shape == (5, 3) and out.nnz == 0


class TestSharedMemoryPath:
    def _bit_identical(self, c, ref):
        assert np.array_equal(c.indptr, ref.indptr)
        assert np.array_equal(c.indices, ref.indices)
        assert np.array_equal(c.values, ref.values)

    def test_shm_bit_identical_to_mxm(self, random_sparse):
        a, _ = random_sparse(20, 12, seed=11)
        b, _ = random_sparse(12, 9, seed=12)
        ref = mxm(a, b)
        self._bit_identical(
            blocked_mxm(a, b, n_blocks=4, workers=2, share_b=True), ref)

    def test_pickled_fallback_bit_identical(self, random_sparse):
        a, _ = random_sparse(14, 8, seed=13)
        b, _ = random_sparse(8, 6, seed=14)
        self._bit_identical(
            blocked_mxm(a, b, n_blocks=3, workers=2, share_b=False),
            mxm(a, b))

    def test_strategy_forwarded(self, random_sparse):
        a, _ = random_sparse(16, 10, seed=15)
        b, _ = random_sparse(10, 7, seed=16)
        ref = mxm(a, b)
        for strategy in ("esc", "hash", "tiled", "auto"):
            out = blocked_mxm(a, b, n_blocks=4, workers=2,
                              strategy=strategy, expansion_budget=8)
            self._bit_identical(out, ref)

    def test_timer_merges_worker_chunks(self, random_sparse):
        from repro.util import Timer

        a, _ = random_sparse(16, 10, seed=17)
        b, _ = random_sparse(10, 5, seed=18)
        t = Timer()
        out = blocked_mxm(a, b, n_blocks=4, workers=2, timer=t)
        assert out.equal(mxm(a, b))
        assert t.counts["_mxm_block_shm"] == 4

    def test_trace_span(self, random_sparse):
        from repro.obs import InMemorySink, trace

        a, _ = random_sparse(10, 8, seed=19)
        b, _ = random_sparse(8, 6, seed=20)
        sink = InMemorySink()
        trace.enable(sink)
        try:
            blocked_mxm(a, b, n_blocks=2, workers=1)
        finally:
            trace.disable()
        (span,) = sink.spans("kernel.spgemm.blocked")
        attrs = span["attrs"]
        assert attrs["n_blocks"] == 2 and attrs["workers"] == 1
        assert attrs["shared_memory"] is False
        assert attrs["strategy"] == "auto"
        assert attrs["nnz_out"] == mxm(a, b).nnz
