"""SpEWiseX (intersection) and eWiseAdd (union) semantics."""

import numpy as np
import pytest

from repro.semiring import MAX, MIN, MINUS
from repro.sparse import ewise_add, ewise_mult, from_dense, zeros


class TestEwiseMult:
    def test_matches_numpy(self, random_sparse):
        a, da = random_sparse(6, 7, seed=41)
        b, db = random_sparse(6, 7, seed=42)
        assert np.allclose(ewise_mult(a, b).to_dense(), da * db)

    def test_intersection_support_only(self):
        a = from_dense([[1.0, 2.0, 0.0]])
        b = from_dense([[0.0, 3.0, 4.0]])
        out = ewise_mult(a, b)
        assert out.nnz == 1 and out.get(0, 1) == 6.0

    def test_custom_op(self):
        a = from_dense([[5.0]])
        b = from_dense([[2.0]])
        assert ewise_mult(a, b, op=MIN).get(0, 0) == 2.0
        assert ewise_mult(a, b, op=MAX).get(0, 0) == 5.0

    def test_disjoint_supports_empty(self):
        a = from_dense([[1.0, 0.0]])
        b = from_dense([[0.0, 1.0]])
        assert ewise_mult(a, b).nnz == 0

    def test_shape_check(self):
        with pytest.raises(ValueError):
            ewise_mult(zeros(2, 2), zeros(2, 3))

    def test_empty_operands(self):
        out = ewise_mult(zeros(3, 3), zeros(3, 3))
        assert out.nnz == 0


class TestEwiseAdd:
    def test_matches_numpy(self, random_sparse):
        a, da = random_sparse(6, 7, seed=43)
        b, db = random_sparse(6, 7, seed=44)
        assert np.allclose(ewise_add(a, b).to_dense(), da + db)

    def test_union_semantics(self):
        """Paper §II-A: summation performs a union of non-zero keys."""
        a = from_dense([[1.0, 0.0]])
        b = from_dense([[0.0, 2.0]])
        out = ewise_add(a, b)
        assert out.nnz == 2
        assert out.get(0, 0) == 1.0 and out.get(0, 1) == 2.0

    def test_noncommutative_op_order(self):
        a = from_dense([[5.0]])
        b = from_dense([[2.0]])
        assert ewise_add(a, b, op=MINUS).get(0, 0) == 3.0

    def test_one_side_empty(self, random_sparse):
        a, da = random_sparse(4, 4, seed=45)
        out = ewise_add(a, zeros(4, 4))
        assert np.allclose(out.to_dense(), da)
        out = ewise_add(zeros(4, 4), a)
        assert np.allclose(out.to_dense(), da)

    def test_min_union_keeps_singletons(self):
        """min over a union keeps present-in-one values as-is (no
        phantom zero participates) — crucial for tropical updates."""
        a = from_dense([[9.0, 0.0]])
        b = from_dense([[4.0, 7.0]])
        out = ewise_add(a, b, op=MIN)
        assert out.get(0, 0) == 4.0 and out.get(0, 1) == 7.0

    def test_shape_check(self):
        with pytest.raises(ValueError):
            ewise_add(zeros(2, 2), zeros(3, 2))
