"""Matrix TSV and MatrixMarket I/O."""

import numpy as np
import pytest
import scipy.io

from repro.sparse import (
    from_dense,
    read_matrix_market,
    read_tsv_matrix,
    write_matrix_market,
    write_tsv_matrix,
    zeros,
)


class TestTsvMatrix:
    def test_roundtrip(self, random_sparse, tmp_path):
        m, dense = random_sparse(7, 9, seed=1)
        path = str(tmp_path / "m.tsv")
        n = write_tsv_matrix(m, path)
        assert n == m.nnz
        back = read_tsv_matrix(path)
        assert back.equal(m)
        assert back.shape == (7, 9)

    def test_empty_matrix_keeps_shape(self, tmp_path):
        path = str(tmp_path / "z.tsv")
        write_tsv_matrix(zeros(3, 5), path)
        back = read_tsv_matrix(path)
        assert back.shape == (3, 5) and back.nnz == 0

    def test_missing_header(self, tmp_path):
        p = tmp_path / "bad.tsv"
        p.write_text("0\t0\t1.0\n")
        with pytest.raises(ValueError, match="shape"):
            read_tsv_matrix(str(p))

    def test_bad_field_count(self, tmp_path):
        p = tmp_path / "bad.tsv"
        p.write_text("# shape 1 1\n0\t0\n")
        with pytest.raises(ValueError, match="3 tab"):
            read_tsv_matrix(str(p))

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_tsv_matrix(str(tmp_path / "nope.tsv"))


class TestMatrixMarket:
    def test_roundtrip(self, random_sparse, tmp_path):
        m, _ = random_sparse(6, 8, seed=2)
        path = str(tmp_path / "m.mtx")
        write_matrix_market(m, path, comment="test matrix")
        assert read_matrix_market(path).equal(m)

    def test_scipy_can_read_ours(self, random_sparse, tmp_path):
        m, dense = random_sparse(5, 5, seed=3)
        path = str(tmp_path / "ours.mtx")
        write_matrix_market(m, path)
        ref = scipy.io.mmread(path).toarray()
        assert np.allclose(ref, dense)

    def test_we_can_read_scipy(self, random_sparse, tmp_path):
        import scipy.sparse as sp

        _, dense = random_sparse(6, 4, seed=4)
        path = str(tmp_path / "theirs.mtx")
        scipy.io.mmwrite(path, sp.coo_matrix(dense))
        back = read_matrix_market(path)
        assert np.allclose(back.to_dense(), dense)

    def test_rejects_non_mm(self, tmp_path):
        p = tmp_path / "x.mtx"
        p.write_text("hello\n")
        with pytest.raises(ValueError, match="MatrixMarket"):
            read_matrix_market(str(p))

    def test_rejects_truncated(self, tmp_path):
        p = tmp_path / "x.mtx"
        p.write_text("%%MatrixMarket matrix coordinate real general\n"
                     "2 2 2\n1 1 1.0\n")
        with pytest.raises(ValueError, match="truncated"):
            read_matrix_market(str(p))
