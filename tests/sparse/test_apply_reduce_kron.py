"""Apply / Scale / Reduce / Kron kernels."""

import numpy as np
import pytest

from repro.semiring import (
    ABS,
    AINV,
    MAX_MONOID,
    MIN,
    MIN_MONOID,
    PLUS_MONOID,
    UnaryOp,
)
from repro.sparse import (
    apply,
    from_dense,
    kron,
    reduce_cols,
    reduce_rows,
    reduce_scalar,
    scale,
    zeros,
)


class TestApply:
    def test_unary_on_stored_entries_only(self):
        a = from_dense([[0.0, -2.0], [3.0, 0.0]])
        out = apply(a, ABS)
        assert out.get(0, 1) == 2.0 and out.get(0, 0) == 0.0
        assert out.nnz == a.nnz  # pattern unchanged

    def test_eq2_indicator(self):
        """Paper §III-B: map 2 → 1 and everything else → 0."""
        ind = UnaryOp("eq2", lambda v: (v == 2).astype(float))
        a = from_dense([[2.0, 1.0, 2.0]])
        out = apply(a, ind)
        assert out.values.tolist() == [1.0, 0.0, 1.0]

    def test_requires_unaryop(self):
        with pytest.raises(TypeError):
            apply(from_dense([[1.0]]), lambda v: v)


class TestScale:
    def test_default_times(self, random_sparse):
        a, da = random_sparse(4, 5, seed=81)
        assert np.allclose(scale(a, 3.0).to_dense(), 3.0 * da)

    def test_custom_op(self):
        a = from_dense([[5.0, 1.0]])
        out = scale(a, 3.0, op=MIN)
        assert out.values.tolist() == [3.0, 1.0]

    def test_empty(self):
        assert scale(zeros(2, 2), 5.0).nnz == 0


class TestReduce:
    def test_rows_matches_numpy(self, random_sparse):
        a, da = random_sparse(6, 7, seed=82)
        assert np.allclose(reduce_rows(a), da.sum(axis=1))

    def test_cols_matches_numpy(self, random_sparse):
        a, da = random_sparse(6, 7, seed=83)
        assert np.allclose(reduce_cols(a), da.sum(axis=0))

    def test_scalar(self, random_sparse):
        a, da = random_sparse(5, 5, seed=84)
        assert reduce_scalar(a) == pytest.approx(da.sum())

    def test_empty_rows_identity(self):
        a = from_dense([[0.0, 0.0], [1.0, 2.0]])
        assert reduce_rows(a, MIN_MONOID).tolist() == [np.inf, 1.0]
        assert reduce_rows(a, MAX_MONOID)[0] == -np.inf

    def test_min_max_monoids(self, random_sparse):
        a, da = random_sparse(5, 6, seed=85)
        mask = da != 0
        ref_min = np.where(mask.any(axis=1),
                           np.where(mask, da, np.inf).min(axis=1), np.inf)
        assert np.allclose(reduce_rows(a, MIN_MONOID), ref_min)

    def test_sparse_output(self):
        a = from_dense([[0.0, 0.0], [1.0, 2.0]])
        v = reduce_rows(a, PLUS_MONOID, dense=False)
        assert v.indices.tolist() == [1] and v.values.tolist() == [3.0]
        vc = reduce_cols(a, PLUS_MONOID, dense=False)
        assert vc.indices.tolist() == [0, 1]

    def test_empty_matrix_scalar_identity(self):
        assert reduce_scalar(zeros(3, 3)) == 0.0
        assert reduce_scalar(zeros(3, 3), MIN_MONOID) == np.inf


class TestKron:
    def test_matches_numpy(self, random_sparse):
        a, da = random_sparse(3, 4, seed=86)
        b, db = random_sparse(2, 3, seed=87)
        assert np.allclose(kron(a, b).to_dense(), np.kron(da, db))

    def test_empty_operand(self, random_sparse):
        a, _ = random_sparse(3, 3, seed=88)
        out = kron(a, zeros(2, 2))
        assert out.shape == (6, 6) and out.nnz == 0

    def test_kron_with_identity(self, random_sparse):
        from repro.sparse import identity

        a, da = random_sparse(3, 3, seed=89)
        out = kron(identity(2), a)
        ref = np.kron(np.eye(2), da)
        assert np.allclose(out.to_dense(), ref)
