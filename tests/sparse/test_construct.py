"""Constructors: COO ingestion/dedup, dense, edges, identity, diag."""

import numpy as np
import pytest

from repro.semiring import MAX_MONOID, MIN_MONOID
from repro.sparse import diag_matrix, from_coo, from_dense, from_edges, zeros


class TestFromCoo:
    def test_basic(self):
        m = from_coo(2, 3, [0, 1], [2, 0], [5.0, 7.0])
        assert m.get(0, 2) == 5.0 and m.get(1, 0) == 7.0

    def test_duplicates_sum_by_default(self):
        m = from_coo(2, 2, [0, 0, 0], [1, 1, 1], [1.0, 2.0, 3.0])
        assert m.get(0, 1) == 6.0 and m.nnz == 1

    def test_duplicates_custom_monoid(self):
        m = from_coo(1, 1, [0, 0], [0, 0], [5.0, 2.0], dup=MIN_MONOID)
        assert m.get(0, 0) == 2.0
        m = from_coo(1, 1, [0, 0], [0, 0], [5.0, 2.0], dup=MAX_MONOID)
        assert m.get(0, 0) == 5.0

    def test_unsorted_input(self):
        m = from_coo(3, 3, [2, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0])
        assert m.get(2, 0) == 1.0 and m.get(0, 2) == 2.0

    def test_default_values_are_ones(self):
        m = from_coo(2, 2, [0, 1], [1, 0])
        assert (m.values == 1.0).all()

    def test_empty(self):
        m = from_coo(4, 5, [], [])
        assert m.shape == (4, 5) and m.nnz == 0

    def test_bounds_checked(self):
        with pytest.raises(ValueError, match="row index"):
            from_coo(2, 2, [5], [0], [1.0])
        with pytest.raises(ValueError, match="col index"):
            from_coo(2, 2, [0], [5], [1.0])

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            from_coo(2, 2, [0, 1], [0], [1.0])
        with pytest.raises(ValueError):
            from_coo(2, 2, [0], [0], [1.0, 2.0])


class TestFromDense:
    def test_roundtrip(self, rng):
        dense = np.where(rng.random((6, 7)) < 0.4, rng.random((6, 7)), 0.0)
        assert np.array_equal(from_dense(dense).to_dense(), dense)

    def test_custom_zero(self):
        dense = np.array([[np.inf, 3.0], [np.inf, np.inf]])
        m = from_dense(dense, zero=np.inf)
        assert m.nnz == 1 and m.get(0, 1) == 3.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            from_dense(np.arange(4))


class TestFromEdges:
    def test_directed(self):
        m = from_edges(3, [(0, 1), (2, 0)])
        assert m.get(0, 1) == 1.0 and m.get(2, 0) == 1.0 and m.get(1, 0) == 0.0

    def test_undirected_mirrors(self):
        m = from_edges(3, [(0, 1)], undirected=True)
        assert m.get(0, 1) == 1.0 and m.get(1, 0) == 1.0

    def test_undirected_self_loop_not_doubled(self):
        m = from_edges(2, [(0, 0)], undirected=True)
        assert m.get(0, 0) == 1.0

    def test_parallel_edges_accumulate(self):
        """Paper §II-B1: A(i,j) counts edges from v_i to v_j."""
        m = from_edges(2, [(0, 1), (0, 1)])
        assert m.get(0, 1) == 2.0

    def test_weights(self):
        m = from_edges(2, [(0, 1)], weights=[2.5])
        assert m.get(0, 1) == 2.5

    def test_empty_edges(self):
        m = from_edges(3, [])
        assert m.nnz == 0 and m.shape == (3, 3)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            from_edges(3, [(0, 1, 2)])


class TestDiagZeros:
    def test_diag_matrix(self):
        d = diag_matrix([1.0, 0.0, 3.0])
        assert d.nnz == 2
        assert np.array_equal(d.to_dense(), np.diag([1.0, 0.0, 3.0]))

    def test_diag_requires_1d(self):
        with pytest.raises(ValueError):
            diag_matrix(np.eye(2))

    def test_zeros(self):
        z = zeros(2, 3)
        assert z.shape == (2, 3) and z.nnz == 0
