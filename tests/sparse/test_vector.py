"""Vector container and its union/intersection algebra."""

import numpy as np
import pytest

from repro.semiring import MAX, MIN, MIN_MONOID
from repro.sparse import Vector


class TestConstruction:
    def test_canonical_enforced(self):
        with pytest.raises(ValueError):
            Vector(5, [3, 1], [1.0, 2.0])  # unsorted
        with pytest.raises(ValueError):
            Vector(5, [1, 1], [1.0, 2.0])  # duplicate
        with pytest.raises(ValueError):
            Vector(2, [5], [1.0])          # out of range

    def test_from_coo_dedups(self):
        v = Vector.from_coo(5, [3, 1, 3], [1.0, 2.0, 4.0])
        assert v.indices.tolist() == [1, 3]
        assert v.values.tolist() == [2.0, 5.0]

    def test_from_coo_custom_dup(self):
        v = Vector.from_coo(5, [0, 0], [7.0, 3.0], dup=MIN_MONOID)
        assert v.values.tolist() == [3.0]

    def test_from_dense(self):
        v = Vector.from_dense([0.0, 5.0, 0.0, 2.0])
        assert v.indices.tolist() == [1, 3]

    def test_from_dense_custom_zero(self):
        v = Vector.from_dense([np.inf, 1.0], zero=np.inf)
        assert v.indices.tolist() == [1]

    def test_sparse_ones_dedups(self):
        v = Vector.sparse_ones(5, [3, 1, 3])
        assert v.indices.tolist() == [1, 3] and (v.values == 1.0).all()

    def test_to_dense_fill(self):
        v = Vector(3, [1], [4.0])
        assert v.to_dense(fill=np.inf).tolist() == [np.inf, 4.0, np.inf]

    def test_get(self):
        v = Vector(3, [1], [4.0])
        assert v.get(1) == 4.0 and v.get(0) == 0.0 and v.get(2, -1) == -1


class TestAlgebra:
    def test_ewise_add_union(self):
        a = Vector(4, [0, 2], [1.0, 2.0])
        b = Vector(4, [2, 3], [5.0, 7.0])
        out = a.ewise_add(b)
        assert out.indices.tolist() == [0, 2, 3]
        assert out.values.tolist() == [1.0, 7.0, 7.0]

    def test_ewise_add_min(self):
        a = Vector(3, [0], [9.0])
        b = Vector(3, [0, 1], [4.0, 1.0])
        out = a.ewise_add(b, op=MIN)
        assert out.values.tolist() == [4.0, 1.0]

    def test_ewise_mult_intersection(self):
        a = Vector(4, [0, 2], [2.0, 3.0])
        b = Vector(4, [2, 3], [5.0, 7.0])
        out = a.ewise_mult(b)
        assert out.indices.tolist() == [2] and out.values.tolist() == [15.0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Vector(3, [], []).ewise_add(Vector(4, [], []))
        with pytest.raises(ValueError):
            Vector(3, [], []).ewise_mult(Vector(4, [], []))

    def test_reduce(self):
        v = Vector(5, [1, 3], [2.0, 5.0])
        assert v.reduce() == 7.0
        assert v.reduce(MIN_MONOID) == 2.0

    def test_select_complement(self):
        v = Vector(5, [1, 3], [1.0, 1.0])
        assert v.select_complement().tolist() == [0, 2, 4]

    def test_select_complement_masked(self):
        v = Vector(5, [1], [1.0])
        mask = np.array([True, True, False, True, False])
        assert v.select_complement(mask).tolist() == [0, 3]
