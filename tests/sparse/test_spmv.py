"""SpMV / vxm / SpMSpV / sparse×dense against numpy references."""

import numpy as np
import pytest

from repro.semiring import LOR_LAND, MIN_PLUS, PLUS_TIMES
from repro.sparse import Vector, from_dense, mxd, mxv, mxv_sparse, vxm, zeros


class TestMxv:
    def test_matches_numpy(self, random_sparse, rng):
        for _ in range(8):
            m, n = rng.integers(1, 12, 2)
            a, da = random_sparse(m, n)
            x = rng.random(n)
            assert np.allclose(mxv(a, x), da @ x)

    def test_empty_rows_get_zero(self):
        a = from_dense([[0.0, 0.0], [1.0, 2.0]])
        y = mxv(a, np.ones(2))
        assert y.tolist() == [0.0, 3.0]

    def test_min_plus_empty_rows_get_inf(self):
        a = from_dense([[0.0, 0.0], [1.0, 2.0]])
        y = mxv(a, np.zeros(2), semiring=MIN_PLUS)
        assert np.isinf(y[0]) and y[1] == 1.0

    def test_shape_check(self):
        with pytest.raises(ValueError):
            mxv(zeros(2, 3), np.ones(4))

    def test_empty_matrix(self):
        y = mxv(zeros(3, 2), np.ones(2))
        assert y.tolist() == [0.0, 0.0, 0.0]


class TestVxm:
    def test_matches_numpy(self, random_sparse, rng):
        for _ in range(8):
            m, n = rng.integers(1, 12, 2)
            a, da = random_sparse(m, n)
            x = rng.random(m)
            assert np.allclose(vxm(x, a), x @ da)

    def test_equivalent_to_transpose_mxv(self, random_sparse, rng):
        a, _ = random_sparse(6, 4, seed=7)
        x = rng.random(6)
        assert np.allclose(vxm(x, a), mxv(a.T, x))

    def test_shape_check(self):
        with pytest.raises(ValueError):
            vxm(np.ones(3), zeros(2, 3))

    def test_min_plus_scatter(self):
        inf = np.inf
        a = from_dense(np.array([[inf, 2.0], [inf, inf]]), zero=inf)
        y = vxm(np.array([1.0, 5.0]), a, semiring=MIN_PLUS)
        assert np.isinf(y[0]) and y[1] == 3.0


class TestMxvSparse:
    def test_matches_dense_mxv(self, random_sparse, rng):
        for _ in range(8):
            m, n = rng.integers(2, 14, 2)
            a, da = random_sparse(m, n)
            support = np.flatnonzero(rng.random(n) < 0.5)
            vals = rng.random(len(support))
            x = Vector(n, support, vals)
            ours = mxv_sparse(a, x)
            ref = da @ x.to_dense()
            assert np.allclose(ours.to_dense(), ref)

    def test_empty_frontier(self, random_sparse):
        a, _ = random_sparse(4, 4, seed=8)
        out = mxv_sparse(a, Vector(4, [], []))
        assert out.nnz == 0

    def test_no_hits(self):
        a = from_dense([[0.0, 1.0], [0.0, 0.0]])
        out = mxv_sparse(a, Vector(2, [0], [1.0]))  # column 0 never stored
        assert out.nnz == 0

    def test_boolean_frontier_expansion(self):
        a = from_dense([[0, 1, 1], [0, 0, 1], [0, 0, 0]]).pattern(True)
        # frontier {1,2} pulled through row adjacency
        out = mxv_sparse(a, Vector.sparse_ones(3, [1, 2], one=True),
                         semiring=LOR_LAND)
        assert out.indices.tolist() == [0, 1]

    def test_type_and_shape_checks(self, random_sparse):
        a, _ = random_sparse(3, 3, seed=9)
        with pytest.raises(TypeError):
            mxv_sparse(a, np.ones(3))
        with pytest.raises(ValueError):
            mxv_sparse(a, Vector(5, [0], [1.0]))


class TestMxd:
    def test_matches_numpy(self, random_sparse, rng):
        a, da = random_sparse(8, 6, seed=10)
        d = rng.random((6, 3))
        assert np.allclose(mxd(a, d), da @ d)

    def test_empty_matrix(self):
        out = mxd(zeros(3, 2), np.ones((2, 4)))
        assert out.shape == (3, 4) and (out == 0).all()

    def test_empty_rows_stay_zero(self):
        a = from_dense([[0.0, 0.0], [1.0, 1.0]])
        out = mxd(a, np.ones((2, 2)))
        assert np.allclose(out, [[0.0, 0.0], [2.0, 2.0]])

    def test_shape_check(self):
        with pytest.raises(ValueError):
            mxd(zeros(2, 3), np.ones((4, 2)))
