"""Adaptive SpGEMM engine: tile planning, strategy dispatch, bit-identity.

Every strategy (esc / hash / tiled / auto, at any budget) must produce
byte-for-byte identical CSR arrays — the engine is a pure execution-plan
choice, never a numerical one.  Property tests drive random matrices and
random budgets through all paths against the monolithic ESC kernel and
the dense reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.obs import InMemorySink, trace
from repro.semiring import MIN_PLUS, PLUS_PAIR
from repro.sparse import from_dense, mxm, zeros
from repro.sparse.matrix import Matrix
from repro.sparse.spgemm import (
    mxm_dense_reference,
    plan_tiles,
    predict_row_flops,
    set_expansion_probe,
)


def assert_bit_identical(c, ref):
    """CSR equality down to the last bit and dtype — not allclose."""
    assert c.shape == ref.shape
    assert np.array_equal(c.indptr, ref.indptr)
    assert np.array_equal(c.indices, ref.indices)
    assert np.array_equal(c.values, ref.values)
    assert c.values.dtype == ref.values.dtype
    assert c.indices.dtype == ref.indices.dtype


class TestFlopPrediction:
    def test_exact_expansion_size(self, random_sparse):
        a, _ = random_sparse(7, 5, seed=1)
        b, _ = random_sparse(5, 6, seed=2)
        flops = predict_row_flops(a, b)
        assert flops.shape == (7,)
        b_len = np.diff(b.indptr)
        for i in range(7):
            cols, _ = a.row(i)
            assert flops[i] == int(b_len[cols].sum())

    def test_empty_a(self):
        assert predict_row_flops(zeros(3, 4), zeros(4, 2)).tolist() == [0, 0, 0]


class TestPlanTiles:
    def test_covers_rows_in_order(self):
        tiles = plan_tiles(np.array([3, 3, 3, 3]), budget=6)
        assert tiles == [(0, 2), (2, 4)]

    def test_tiles_partition(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            flops = rng.integers(0, 50, rng.integers(1, 30))
            budget = int(rng.integers(1, 120))
            tiles = plan_tiles(flops, budget)
            assert tiles[0][0] == 0 and tiles[-1][1] == len(flops)
            for (l0, h0), (l1, _) in zip(tiles, tiles[1:]):
                assert h0 == l1
            for lo, hi in tiles:
                # within budget unless the tile is a single oversized row
                assert flops[lo:hi].sum() <= budget or hi - lo == 1

    def test_oversized_row_gets_own_tile(self):
        assert plan_tiles(np.array([100, 1, 1]), budget=10) == [
            (0, 1), (1, 3)]

    def test_empty(self):
        assert plan_tiles(np.array([], dtype=np.int64), budget=5) == []

    def test_bad_budget(self):
        with pytest.raises(ValueError, match="budget"):
            plan_tiles(np.array([1]), budget=0)


class TestStrategyDispatch:
    def test_invalid_strategy(self, random_sparse):
        a, _ = random_sparse(4, 4, seed=3)
        with pytest.raises(ValueError, match="strategy"):
            mxm(a, a, strategy="quantum")

    def test_matrix_method_passthrough(self, random_sparse):
        a, _ = random_sparse(6, 6, seed=4)
        ref = mxm(a, a, strategy="esc")
        assert_bit_identical(a.mxm(a, strategy="tiled", expansion_budget=3),
                             ref)

    @pytest.mark.parametrize("strategy", ["hash", "tiled", "auto"])
    def test_empty_operands(self, strategy):
        out = mxm(zeros(3, 4), zeros(4, 2), strategy=strategy)
        assert out.shape == (3, 2) and out.nnz == 0

    @pytest.mark.parametrize("strategy", ["hash", "tiled", "auto"])
    def test_empty_rows_and_empty_result(self, strategy):
        # row 0 of A only hits implicit zeros of B; row 2 of A is empty
        a = from_dense([[1.0, 0.0], [0.0, 2.0], [0.0, 0.0]])
        b = from_dense([[0.0], [3.0]])
        ref = mxm(a, b, strategy="esc")
        assert_bit_identical(mxm(a, b, strategy=strategy,
                                 expansion_budget=1), ref)


class TestBudgetProbe:
    def test_tiled_peak_never_exceeds_budget(self, random_sparse):
        a, _ = random_sparse(40, 30, seed=5, density=0.3)
        b, _ = random_sparse(30, 25, seed=6, density=0.3)
        row_flops = predict_row_flops(a, b)
        for budget in (1, 7, 64, 10**9):
            sizes = []
            prev = set_expansion_probe(sizes.append)
            try:
                c = mxm(a, b, strategy="tiled", expansion_budget=budget)
            finally:
                set_expansion_probe(prev)
            assert sizes, "probe never fired"
            # the only legal over-budget tile is a single oversized row
            assert max(sizes) <= max(budget, int(row_flops.max()))
            assert_bit_identical(c, mxm(a, b, strategy="esc"))

    def test_probe_restores(self):
        marker = lambda n: None
        prev = set_expansion_probe(marker)
        assert set_expansion_probe(prev) is marker


class TestMaskOverflowGuard:
    def test_huge_mask_rejected(self):
        # 4 * (2^61 + 1) - 1 > int64 max: flat keys would silently wrap
        wide = (1 << 61) + 1
        empty = np.zeros(0, dtype=np.intp)
        a = Matrix(4, 1, np.zeros(5, dtype=np.intp), empty,
                   np.zeros(0), _validate=False)
        b = Matrix(1, wide, np.zeros(2, dtype=np.intp), empty,
                   np.zeros(0), _validate=False)
        mask = Matrix(4, wide, np.zeros(5, dtype=np.intp), empty,
                      np.zeros(0), _validate=False)
        with pytest.raises(ValueError, match="int64"):
            mxm(a, b, mask=mask)

    def test_hash_flat_key_guard(self):
        wide = (np.iinfo(np.intp).max // 2) + 1
        empty = np.zeros(0, dtype=np.intp)
        a = Matrix(4, 1, np.zeros(5, dtype=np.intp), empty,
                   np.zeros(0), _validate=False)
        b = Matrix(1, wide, np.zeros(2, dtype=np.intp), empty,
                   np.zeros(0), _validate=False)
        with pytest.raises(ValueError, match="tiled"):
            mxm(a, b, strategy="hash")


class TestTraceAttrs:
    def test_span_records_dispatch(self, random_sparse):
        a, _ = random_sparse(12, 12, seed=7, density=0.4)
        sink = InMemorySink()
        trace.enable(sink)
        try:
            mxm(a, a, strategy="tiled", expansion_budget=5)
            mxm(a, a, strategy="esc")
        finally:
            trace.disable()
        spans = sink.spans("kernel.spgemm")
        assert len(spans) == 2
        tiled, esc = spans[0]["attrs"], spans[1]["attrs"]
        assert tiled["strategy"] == "tiled"
        assert tiled["n_tiles"] > 1
        assert tiled["tiles_esc"] == tiled["n_tiles"]
        assert tiled["tiles_hash"] == 0
        assert tiled["expansion_budget"] == 5
        assert 0 < tiled["peak_expansion"]
        assert tiled["nnz_out"] == esc["nnz_out"]
        assert esc["strategy"] == "esc" and esc["n_tiles"] == 1


# -- property tests: all strategies, random budgets, bit-for-bit --------------

def sparse_pair():
    """Strategy: (dense A, dense B) with compatible shapes, many zeros."""
    elements = st.sampled_from([0.0, 0.0, 0.0, 1.0, 2.0, -1.5, 0.25, 7.0])
    dims = st.tuples(st.integers(1, 10), st.integers(1, 8),
                     st.integers(1, 10))
    return dims.flatmap(lambda mkn: st.tuples(
        arrays(np.float64, (mkn[0], mkn[1]), elements=elements),
        arrays(np.float64, (mkn[1], mkn[2]), elements=elements)))


@given(ab=sparse_pair(),
       strategy=st.sampled_from(["hash", "tiled", "auto"]),
       budget=st.integers(1, 200))
@settings(max_examples=120, deadline=None)
def test_strategies_bit_identical_to_esc(ab, strategy, budget):
    da, db = ab
    a, b = from_dense(da), from_dense(db)
    ref = mxm(a, b, strategy="esc")
    out = mxm(a, b, strategy=strategy, expansion_budget=budget)
    assert_bit_identical(out, ref)
    assert np.allclose(out.to_dense(), mxm_dense_reference(a, b))


@given(ab=sparse_pair(),
       strategy=st.sampled_from(["hash", "tiled", "auto"]),
       budget=st.integers(1, 60))
@settings(max_examples=80, deadline=None)
def test_masked_strategies_bit_identical(ab, strategy, budget):
    da, db = ab
    a, b = from_dense(da), from_dense(db)
    # mask with a deterministic-but-irregular stored pattern
    dm = np.zeros((da.shape[0], db.shape[1]))
    dm.flat[::2] = 1.0
    mask = from_dense(dm)
    ref = mxm(a, b, mask=mask, strategy="esc")
    out = mxm(a, b, mask=mask, strategy=strategy, expansion_budget=budget)
    assert_bit_identical(out, ref)


@given(ab=sparse_pair(), budget=st.integers(1, 40))
@settings(max_examples=60, deadline=None)
def test_min_plus_tiled_bit_identical(ab, budget):
    da, db = ab
    a, b = from_dense(da), from_dense(db)
    ref = mxm(a, b, semiring=MIN_PLUS, strategy="esc")
    for strategy in ("tiled", "hash", "auto"):
        out = mxm(a, b, semiring=MIN_PLUS, strategy=strategy,
                  expansion_budget=budget)
        assert_bit_identical(out, ref)


@given(da=arrays(np.float64, (7, 7),
                 elements=st.sampled_from([0.0, 0.0, 1.0, 3.0])),
       budget=st.integers(1, 30))
@settings(max_examples=60, deadline=None)
def test_plus_pair_square_bit_identical(da, budget):
    a = from_dense(da)
    ref = mxm(a, a.T, semiring=PLUS_PAIR, strategy="esc")
    out = mxm(a, a.T, semiring=PLUS_PAIR, strategy="auto",
              expansion_budget=budget)
    assert_bit_identical(out, ref)
