"""Process-parallel drivers for embarrassingly parallel sweeps.

The paper's execution model parallelises across tablet servers; on one
machine the analogous resource is cores.  Per the HPC guidance, only
the *outer* loops are parallelised — per-source centrality sweeps and
parameter sweeps — while the inner kernels stay vectorised NumPy.  Work
is distributed with ``concurrent.futures.ProcessPoolExecutor``;
:class:`repro.sparse.Matrix` pickles cheaply (slots + ndarrays).
"""

from repro.parallel.pool import (
    chunk_evenly,
    parallel_betweenness,
    parallel_closeness,
    parallel_map,
    parallel_sssp_matrix,
)

__all__ = [
    "chunk_evenly",
    "parallel_betweenness",
    "parallel_closeness",
    "parallel_map",
    "parallel_sssp_matrix",
]
