"""Process-pool sweep drivers and shared-memory array hand-off.

All worker functions are module level (picklable); each takes one
self-contained argument tuple, computes a chunk, and the driver
combines chunk results.  ``workers=1`` short-circuits to serial
execution — no pool, no pickling — which is also the safe default for
small inputs where process startup would dominate.

For fan-outs where every task reads the *same* large arrays (e.g. the
B operand of a blocked SpGEMM), pickling the arrays once per task is
the dominant cost.  :func:`share_arrays` publishes a dict of ndarrays
into ``multiprocessing.shared_memory`` segments once; workers call
:func:`attach_arrays` on the picklable metadata and get zero-copy
views.  The owner releases the segments with :func:`unlink_arrays`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sparse.matrix import Matrix
from repro.util.timing import Timer
from repro.util.validation import check_positive, check_square


def chunk_evenly(items: Sequence, n_chunks: int) -> List[Sequence]:
    """Split ``items`` into ≤ n_chunks contiguous, size-balanced chunks."""
    check_positive(n_chunks, "n_chunks")
    n = len(items)
    if n == 0:
        return []
    n_chunks = min(n_chunks, n)
    bounds = np.linspace(0, n, n_chunks + 1).astype(int)
    return [items[bounds[i]:bounds[i + 1]] for i in range(n_chunks)
            if bounds[i] < bounds[i + 1]]


def _timed_call(fn: Callable, args: Sequence):
    """Worker-side wrapper: run one chunk under a fresh Timer and ship
    both back (Timer is a picklable dataclass of dicts)."""
    t = Timer()
    with t.section(getattr(fn, "__name__", "chunk")):
        result = fn(*args)
    return result, t


def parallel_map(fn: Callable, args_list: Sequence, workers: int = 1,
                 timer: Optional[Timer] = None) -> List:
    """Map a picklable function over argument tuples, preserving order.

    With ``timer`` given, each chunk runs under a per-worker
    :class:`~repro.util.timing.Timer` that is merged back into it
    (section name = the worker function's name), so callers see
    aggregate chunk time and call counts across the pool.
    """
    check_positive(workers, "workers")
    if workers == 1 or len(args_list) <= 1:
        if timer is None:
            return [fn(*args) for args in args_list]
        results = []
        for args in args_list:
            result, t = _timed_call(fn, args)
            timer.merge(t)
            results.append(result)
        return results
    with ProcessPoolExecutor(max_workers=workers) as pool:
        if timer is None:
            futures = [pool.submit(fn, *args) for args in args_list]
            return [f.result() for f in futures]
        futures = [pool.submit(_timed_call, fn, args) for args in args_list]
        results = []
        for f in futures:
            result, t = f.result()
            timer.merge(t)
            results.append(result)
        return results


# -- shared-memory array hand-off --------------------------------------------

#: picklable description of one shared segment: (shm name, shape, dtype str)
ShmMeta = Dict[str, Tuple[str, Tuple[int, ...], str]]


def share_arrays(arrays: Dict[str, np.ndarray]
                 ) -> Tuple[List[shared_memory.SharedMemory], ShmMeta]:
    """Copy each array into a named shared-memory segment.

    Returns the live segment handles (keep them referenced until every
    worker is done, then pass to :func:`unlink_arrays`) and the
    picklable metadata workers feed to :func:`attach_arrays`.
    """
    handles: List[shared_memory.SharedMemory] = []
    meta: ShmMeta = {}
    try:
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            shm = shared_memory.SharedMemory(create=True,
                                             size=max(arr.nbytes, 1))
            handles.append(shm)
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[...] = arr
            meta[name] = (shm.name, arr.shape, arr.dtype.str)
    except Exception:
        unlink_arrays(handles)
        raise
    return handles, meta


def attach_arrays(meta: ShmMeta
                  ) -> Tuple[Dict[str, np.ndarray],
                             List[shared_memory.SharedMemory]]:
    """Zero-copy views onto segments published by :func:`share_arrays`.

    The returned handles must stay referenced while the views are in
    use, then be ``close()``d (never unlinked — the sharing process
    owns the segments).
    """
    arrays: Dict[str, np.ndarray] = {}
    handles: List[shared_memory.SharedMemory] = []
    try:
        for name, (shm_name, shape, dtype) in meta.items():
            shm = _attach_untracked(shm_name)
            handles.append(shm)
            arrays[name] = np.ndarray(shape, dtype=np.dtype(dtype),
                                      buffer=shm.buf)
    except Exception:
        for h in handles:
            h.close()
        raise
    return arrays, handles


def unlink_arrays(handles: Sequence[shared_memory.SharedMemory]) -> None:
    """Close and destroy segments created by :func:`share_arrays`."""
    for shm in handles:
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # already gone — unlink is best-effort
            pass


def _attach_untracked(shm_name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker side effects.

    Before Python 3.13 (bpo-38119) merely *attaching* registers the
    segment for unlink-at-exit: a pool worker exiting would then tear
    down (or warn about) memory the sharing process still owns.
    Attached segments are owned elsewhere, so registration is
    suppressed for the duration of the attach.
    """
    try:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None
        try:
            return shared_memory.SharedMemory(name=shm_name, create=False)
        finally:
            resource_tracker.register = original
    except ImportError:  # pragma: no cover - tracker is CPython-standard
        return shared_memory.SharedMemory(name=shm_name, create=False)


# -- module-level chunk workers (must be picklable) --------------------------

def _betweenness_chunk(a: Matrix, sources: np.ndarray) -> np.ndarray:
    from repro.algorithms.centrality import betweenness_centrality

    # per-chunk partial sums; undirected halving is applied once by the
    # driver, so ask for the raw directed accumulation here
    deltas = betweenness_centrality(a, directed=True, sources=sources)
    return deltas


def _closeness_chunk(a: Matrix, vertices: np.ndarray,
                     weighted: bool) -> np.ndarray:
    from repro.algorithms.shortestpath import bellman_ford
    from repro.algorithms.traversal import bfs

    n = a.nrows
    out = np.zeros(n)
    for v in vertices:
        if weighted:
            d = bellman_ford(a, int(v))
            reach = np.isfinite(d)
        else:
            d = bfs(a, int(v)).astype(np.float64)
            reach = d >= 0
        total = float(d[reach].sum())
        k = int(reach.sum())
        if k <= 1 or total <= 0:
            continue
        c = (k - 1) / total
        if n > 1:
            c *= (k - 1) / (n - 1)
        out[int(v)] = c
    return out


def _sssp_chunk(a: Matrix, sources: np.ndarray) -> np.ndarray:
    from repro.algorithms.baselines import dijkstra

    return np.vstack([dijkstra(a, int(s)) for s in sources])


# -- drivers -------------------------------------------------------------------

def parallel_betweenness(a: Matrix, workers: int = 1,
                         directed: bool = False,
                         timer: Optional[Timer] = None) -> np.ndarray:
    """Exact betweenness with the per-source sweep spread over a
    process pool.  Matches
    :func:`repro.algorithms.centrality.betweenness_centrality`.
    """
    n = check_square(a, "adjacency matrix")
    chunks = chunk_evenly(np.arange(n), workers)
    partials = parallel_map(_betweenness_chunk,
                            [(a, c) for c in chunks], workers=workers,
                            timer=timer)
    total = np.sum(partials, axis=0) if partials else np.zeros(n)
    if not directed:
        total /= 2.0
    return total


def parallel_closeness(a: Matrix, workers: int = 1,
                       weighted: bool = False,
                       timer: Optional[Timer] = None) -> np.ndarray:
    """Closeness centrality (Wasserman–Faust corrected), chunked by
    source vertex across processes."""
    n = check_square(a, "adjacency matrix")
    chunks = chunk_evenly(np.arange(n), workers)
    partials = parallel_map(_closeness_chunk,
                            [(a, c, weighted) for c in chunks],
                            workers=workers, timer=timer)
    return np.sum(partials, axis=0) if partials else np.zeros(n)


def parallel_sssp_matrix(a: Matrix, workers: int = 1,
                         sources: Optional[Sequence[int]] = None,
                         timer: Optional[Timer] = None) -> np.ndarray:
    """Distance matrix rows for ``sources`` (default: all) via
    per-source Dijkstra spread over processes — the classical APSP
    counterpart to :func:`repro.algorithms.shortestpath.apsp_min_plus`.
    """
    n = check_square(a, "adjacency matrix")
    src = np.arange(n) if sources is None else np.asarray(sources, dtype=np.intp)
    chunks = chunk_evenly(src, workers)
    blocks = parallel_map(_sssp_chunk, [(a, c) for c in chunks],
                          workers=workers, timer=timer)
    if not blocks:
        return np.zeros((0, n))
    return np.vstack(blocks)
