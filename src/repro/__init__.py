"""Graphulo reproduction: linear-algebra graph kernels for NoSQL databases.

Reproduces Gadepally et al., *"Graphulo: Linear Algebra Graph Kernels
for NoSQL Databases"* (IPDPSW 2015, arXiv:1508.07372):

* :mod:`repro.semiring` — semiring algebra (tropical, boolean, ...);
* :mod:`repro.sparse` — the GraphBLAS kernel substrate (SpGEMM,
  SpM{Sp}V, SpEWiseX, SpRef, SpAsgn, Scale, Apply, Reduce);
* :mod:`repro.assoc` — D4M associative arrays;
* :mod:`repro.schemas` — adjacency / incidence / D4M graph schemas;
* :mod:`repro.dbsim` — a simulated Accumulo (sorted KV tablets,
  server-side iterators, Graphulo TableMult);
* :mod:`repro.algorithms` — the paper's algorithms recast in kernel
  form (k-truss, Jaccard, centrality, NMF, traversal, shortest paths,
  similarity, prediction, community detection);
* :mod:`repro.generators` — graphs and the synthetic tweet corpus;
* :mod:`repro.obs` — observability: span tracing, metrics registry,
  convergence telemetry (see docs/OBSERVABILITY.md).

Quickstart::

    from repro.generators import fig1_graph, fig1_edges
    from repro.schemas import incidence_unoriented
    from repro.algorithms import ktruss, jaccard

    E = incidence_unoriented(5, fig1_edges())
    E3 = ktruss(E, k=3)          # paper Algorithm 1
    J = jaccard(fig1_graph())    # paper Algorithm 2
"""

from repro import (algorithms, assoc, dbsim, generators, obs, schemas,
                   semiring, sparse, util)

__version__ = "1.0.0"

__all__ = [
    "algorithms",
    "assoc",
    "dbsim",
    "generators",
    "obs",
    "schemas",
    "semiring",
    "sparse",
    "util",
    "__version__",
]
