"""k-truss subgraph detection — the paper's Algorithm 1, verbatim.

A k-truss is a subgraph in which every edge is supported by at least
k−2 triangles.  The paper's linear-algebraic formulation works on the
*unoriented incidence matrix* ``E`` (rows = edges):

* support: ``R = E·A`` counts, for edge e=(u,v) and vertex w, the walks
  from e's endpoints into w; entries equal to **2** mark triangles
  (w adjacent to both u and v), so ``s = (R == 2)·1`` is the per-edge
  support vector;
* removal: dropping the rows ``x`` of under-supported edges and using
  ``A = EᵀE − diag(EᵀE)`` lets ``R`` be *updated* instead of recomputed:
  ``R ← R(xᶜ,:) − E·[Eₓᵀ Eₓ − diag(dₓ)]`` (the paper's §IV Discussion
  efficiency point — benchmarked against :func:`ktruss_recompute`).

Input graphs must be simple (no self loops, no multi-edges); the
triangle count via the "==2" trick relies on 0/1 entries.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.obs.convergence import ConvergenceLog
from repro.semiring import UnaryOp
from repro.semiring.builtin import PLUS_MONOID
from repro.sparse.matrix import Matrix
from repro.sparse.reduce import reduce_cols, reduce_rows
from repro.sparse.select import offdiag
from repro.sparse.spgemm import mxm

#: Apply-kernel function mapping 2 → 1 and everything else → 0 (paper §III-B).
INDICATOR_EQ2 = UnaryOp("eq2", lambda v: (v == 2).astype(np.float64))


def _check_incidence(e: Matrix) -> None:
    if e.nnz and not np.all(e.values == 1):
        raise ValueError(
            "k-truss expects an unweighted unoriented incidence matrix "
            "(all stored values 1)")
    lens = e.row_lengths
    if np.any(lens[lens > 0] != 2):
        raise ValueError("each incidence-matrix row must touch exactly 2 vertices")


def edge_support(e: Matrix) -> np.ndarray:
    """Triangle support of every edge: ``s = ((E·A) == 2)·1``."""
    _check_incidence(e)
    a = offdiag(mxm(e.T, e)).prune()
    r = mxm(e, a)
    return reduce_rows(r.apply(INDICATOR_EQ2), PLUS_MONOID)


def edge_support_masked(a: Matrix) -> Matrix:
    """Per-edge triangle support via masked SpGEMM on the adjacency
    matrix: ``S = (A ⊕.pair A) ⊙ mask(A)`` — support of edge (u, v) is
    the (u, v) entry of A² restricted to A's pattern.

    This is the §IV optimisation in spirit: instead of computing all of
    ``R = E·A`` and then selecting the 2s, the mask restricts work to
    positions that are actually edges (Graphulo's production k-truss
    takes this adjacency-based route).  Returns a matrix on A's pattern
    whose values are supports; pair it with
    ``A = EᵀE − diag`` to get the incidence-based vector.
    """
    from repro.semiring.builtin import PLUS_PAIR

    if a.nrows != a.ncols:
        raise ValueError(f"adjacency matrix must be square, got {a.shape}")
    p = a.pattern()
    return mxm(p, p, semiring=PLUS_PAIR, mask=p)


def ktruss(e: Matrix, k: int,
           log: Optional[ConvergenceLog] = None) -> Matrix:
    """Algorithm 1: incidence matrix of the k-truss of ``E``'s graph.

    Uses the incremental support update; every step is a GraphBLAS
    kernel (SpGEMM, SpRef, Apply, Reduce, eWiseAdd).  ``log`` records
    one entry per peel round: residual = edges removed that round, with
    the surviving edge count as an extra.
    """
    if k < 3:
        raise ValueError(f"k must be >= 3 (every graph is a 2-truss), got {k}")
    _check_incidence(e)

    # initialization (paper's pseudocode, line for line)
    d = reduce_cols(e, PLUS_MONOID)                 # d = sum(E)
    a = offdiag(mxm(e.T, e)).prune()                # A = EᵀE − diag(d)
    r = mxm(e, a)                                   # R = EA
    s = reduce_rows(r.apply(INDICATOR_EQ2), PLUS_MONOID)   # s = (R==2)·1
    x = np.flatnonzero(s < k - 2)                   # x = find(s < k−2)

    rounds = 0
    while len(x):
        rounds += 1
        xc = np.setdiff1d(np.arange(e.nrows), x, assume_unique=True)
        ex = e.extract(rows=x)                      # Ex = E(x, :)
        e = e.extract(rows=xc)                      # E = E(xc, :)
        dx = reduce_cols(ex, PLUS_MONOID)           # dx = sum(Ex)
        r = r.extract(rows=xc)                      # R = R(xc, :)
        # R = R − E[ExᵀEx − diag(dx)]
        update = mxm(e, offdiag(mxm(ex.T, ex)).prune())
        r = (r - update).prune()
        s = reduce_rows(r.apply(INDICATOR_EQ2), PLUS_MONOID)
        if log is not None:
            log.record(rounds, residual=float(len(x)),
                       edges_remaining=int(e.nrows))
        x = np.flatnonzero(s < k - 2)
    if log is not None:
        log.converged = True
    return e


def ktruss_recompute(e: Matrix, k: int) -> Matrix:
    """Algorithm 1 without the incremental trick: ``R = E·A`` is fully
    recomputed from the surviving edges each round (the naive variant
    the paper's Discussion says the update avoids).  Ablation baseline.
    """
    if k < 3:
        raise ValueError(f"k must be >= 3 (every graph is a 2-truss), got {k}")
    _check_incidence(e)
    while True:
        if e.nrows == 0:
            return e
        s = edge_support(e)
        x = np.flatnonzero(s < k - 2)
        if len(x) == 0:
            return e
        xc = np.setdiff1d(np.arange(e.nrows), x, assume_unique=True)
        e = e.extract(rows=xc)


def truss_decomposition(e: Matrix) -> Dict[int, Matrix]:
    """Full truss decomposition (paper §III-B): run k=3 on the graph,
    feed the result to k=4, ... until the incidence matrix is empty.

    Returns ``{k: incidence matrix of the maximal k-truss}`` for every k
    with a non-empty truss (k ≥ 3).
    """
    _check_incidence(e)
    out: Dict[int, Matrix] = {}
    k = 3
    current = e
    while current.nrows:
        current = ktruss(current, k)
        if current.nrows == 0:
            break
        out[k] = current
        k += 1
    return out


def truss_numbers(e: Matrix) -> np.ndarray:
    """Per-edge truss number: the largest k whose k-truss retains the
    edge (2 for edges in no triangle).  Edge identity follows ``E``'s
    row order via the (vertex, vertex) pair it stores.
    """
    _check_incidence(e)
    def edge_keys(mat: Matrix) -> np.ndarray:
        pairs = mat.indices.reshape(-1, 2)
        return pairs[:, 0] * mat.ncols + pairs[:, 1]

    numbers = np.full(e.nrows, 2, dtype=np.int64)
    base_keys = edge_keys(e)
    for k, ek in truss_decomposition(e).items():
        still = np.isin(base_keys, edge_keys(ek))
        numbers[still] = k
    return numbers
