"""Graph algorithms recast as GraphBLAS kernel compositions (paper §III).

One module per Table I algorithm class:

==========================  =====================================
Class (Table I)             Module
==========================  =====================================
Exploration & Traversal     :mod:`repro.algorithms.traversal`
Subgraph Detection          :mod:`repro.algorithms.truss`,
                            :mod:`repro.algorithms.cliques`
Centrality                  :mod:`repro.algorithms.centrality`
Similarity                  :mod:`repro.algorithms.jaccard`,
                            :mod:`repro.algorithms.similarity`
Community Detection         :mod:`repro.algorithms.nmf`,
                            :mod:`repro.algorithms.topics`,
                            :mod:`repro.algorithms.community`
Prediction                  :mod:`repro.algorithms.prediction`
Shortest Path               :mod:`repro.algorithms.shortestpath`
==========================  =====================================

:mod:`repro.algorithms.baselines` holds the classical (pointer-chasing)
implementations the benchmark harness compares against.
"""

from repro.algorithms.traversal import bfs, bfs_tree, connected_components
from repro.algorithms.truss import (
    ktruss,
    ktruss_recompute,
    truss_decomposition,
    edge_support,
)
from repro.algorithms.jaccard import jaccard, jaccard_dense
from repro.algorithms.centrality import (
    betweenness_batched,
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    eigenvector_centrality,
    katz_centrality,
    pagerank,
)
from repro.algorithms.inverse import newton_schulz_inverse
from repro.algorithms.nmf import nmf, nmf_reconstruction_error
from repro.algorithms.topics import TopicModel, fit_topics, purity, nmi
from repro.algorithms.shortestpath import (
    apsp_min_plus,
    astar,
    bellman_ford,
    floyd_warshall,
    johnson,
)
from repro.algorithms.similarity import (
    common_neighbors,
    cosine_similarity,
    is_isomorphic,
    neighbor_matching,
)
from repro.algorithms.prediction import (
    adamic_adar_scores,
    katz_link_scores,
    link_prediction,
    emerging_communities,
)
from repro.algorithms.cliques import (
    bron_kerbosch,
    max_clique,
    planted_clique_eigen,
    vertex_nomination,
)
from repro.algorithms.community import (
    label_propagation,
    nmf_communities,
    spectral_bipartition,
)
from repro.algorithms.factor import pca, truncated_svd
from repro.algorithms.walks import (
    hitting_mass,
    personalized_pagerank,
    walk_counts,
)
from repro.algorithms.structure import (
    bfs_multi_source,
    boruvka_msf,
    kcore,
    strongly_connected_components,
    triangle_count,
)

__all__ = [
    "bfs",
    "bfs_tree",
    "connected_components",
    "ktruss",
    "ktruss_recompute",
    "truss_decomposition",
    "edge_support",
    "jaccard",
    "jaccard_dense",
    "betweenness_batched",
    "betweenness_centrality",
    "closeness_centrality",
    "degree_centrality",
    "eigenvector_centrality",
    "katz_centrality",
    "pagerank",
    "newton_schulz_inverse",
    "nmf",
    "nmf_reconstruction_error",
    "TopicModel",
    "fit_topics",
    "purity",
    "nmi",
    "apsp_min_plus",
    "astar",
    "bellman_ford",
    "floyd_warshall",
    "johnson",
    "common_neighbors",
    "cosine_similarity",
    "is_isomorphic",
    "neighbor_matching",
    "adamic_adar_scores",
    "katz_link_scores",
    "link_prediction",
    "emerging_communities",
    "bron_kerbosch",
    "max_clique",
    "planted_clique_eigen",
    "vertex_nomination",
    "label_propagation",
    "nmf_communities",
    "spectral_bipartition",
    "pca",
    "truncated_svd",
    "bfs_multi_source",
    "boruvka_msf",
    "kcore",
    "strongly_connected_components",
    "triangle_count",
    "hitting_mass",
    "personalized_pagerank",
    "walk_counts",
]
