"""Non-negative matrix factorisation — the paper's Algorithms 3 & 5.

Alternating least squares with non-negativity by clamping:

    solve  ``WᵀW · H = Wᵀ·A``   for H, clamp H ≥ 0
    solve  ``H·Hᵀ · Wᵀ = H·Aᵀ`` for W, clamp W ≥ 0

until ``‖A − W·H‖_F`` stops improving / drops below tolerance.  Per the
paper, the normal-equation solves invert the small k×k Gram matrices
with Algorithm 4 (Newton–Schulz, :mod:`repro.algorithms.inverse`) so the
whole factorisation uses only GraphBLAS-expressible operations
(SpRef/SpAsgn, SpGEMM, Scale, SpEWiseX, Reduce).  A ``solver="lstsq"``
ablation swaps in ``numpy.linalg.lstsq`` to quantify what the
kernel-only restriction costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.algorithms.inverse import newton_schulz_inverse_dense
from repro.obs.convergence import ConvergenceLog
from repro.sparse.matrix import Matrix
from repro.sparse.spmv import mxd
from repro.util.rng import SeedLike, default_rng

_SOLVERS = ("newton_schulz", "lstsq")


@dataclass
class NMFResult:
    """Factorisation output: ``A ≈ W @ H`` with per-iteration errors."""

    w: np.ndarray           # (m, k), non-negative
    h: np.ndarray           # (k, n), non-negative
    errors: np.ndarray      # Frobenius reconstruction error per iteration
    iterations: int
    converged: bool


def _frobenius_error(a: Matrix, w: np.ndarray, h: np.ndarray) -> float:
    """‖A − W·H‖_F without densifying A.

    ``‖A − WH‖²_F = ‖A‖²_F − 2·Σ_(i,j)∈A A_ij (WH)_ij + ‖WH‖²_F`` where
    ``‖WH‖²_F = trace((WᵀW)(HHᵀ))`` — everything is either a reduction
    over A's stored entries or k×k dense algebra.
    """
    a_sq = float(np.sum(np.square(a.values)))
    rows = a.row_ids()
    cross = float(np.sum(a.values * np.einsum(
        "ij,ji->i", w[rows, :], h[:, a.indices]))) if a.nnz else 0.0
    gram = (w.T @ w) @ (h @ h.T)
    wh_sq = float(np.trace(gram))
    return float(np.sqrt(max(a_sq - 2.0 * cross + wh_sq, 0.0)))


def nmf(a: Matrix, k: int, eps: float = 1e-3, max_iter: int = 200,
        solver: str = "newton_schulz", seed: SeedLike = None,
        ridge: float = 1e-7,
        log: Optional[ConvergenceLog] = None) -> NMFResult:
    """Algorithm 5: factor sparse ``A`` (m×n) into ``W`` (m×k) and
    ``H`` (k×n), both non-negative.

    Parameters
    ----------
    k:
        Number of topics/factors.
    eps:
        Stop when the *relative* Frobenius error ``‖A − WH‖_F / ‖A‖_F``
        improves by less than ``eps`` between iterations, or is below
        ``eps`` outright.
    solver:
        ``"newton_schulz"`` (paper-faithful, Algorithm 4 inverse) or
        ``"lstsq"`` (ablation).
    ridge:
        Relative Tikhonov term added to the Gram matrices (scaled by
        their mean diagonal), which are otherwise singular whenever a
        factor column dies (all-zero) — the clamping step makes that a
        real occurrence.
    log:
        Optional :class:`~repro.obs.convergence.ConvergenceLog`;
        records the relative reconstruction error per ALS sweep
        (duplicating ``NMFResult.errors`` into the telemetry stream).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if min(a.shape) < 1:
        raise ValueError(f"cannot factor an empty matrix of shape {a.shape}")
    if k > min(a.shape):
        raise ValueError(f"k={k} exceeds min(A.shape)={min(a.shape)}")
    if solver not in _SOLVERS:
        raise ValueError(f"solver must be one of {_SOLVERS}, got {solver!r}")
    rng = default_rng(seed)
    m, n = a.shape
    w = rng.random((m, k)) + 0.01        # W = random m×k (paper init)
    at = a.T
    a_norm = float(np.sqrt(np.sum(np.square(a.values)))) or 1.0

    def solve(gram: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        scale = max(float(np.trace(gram)) / k, 1e-12)
        gram = gram + (ridge * scale + 1e-12) * np.eye(k)
        if solver == "newton_schulz":
            inv, _ = newton_schulz_inverse_dense(gram, eps=1e-11,
                                                 max_iter=500)
            return inv @ rhs
        return np.linalg.lstsq(gram, rhs, rcond=None)[0]

    errors = []
    prev_rel = np.inf
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        # Solve WᵀW H = Wᵀ A  →  H = (WᵀW)⁻¹ (Aᵀ W)ᵀ ; clamp at 0.
        wta = mxd(at, w).T                       # Wᵀ A, shape (k, n)
        h = solve(w.T @ w, wta)
        np.maximum(h, 0.0, out=h)
        # Solve H Hᵀ Wᵀ = H Aᵀ  →  Wᵀ = (HHᵀ)⁻¹ (A Hᵀ)ᵀ ; clamp at 0.
        aht = mxd(a, h.T)                        # A Hᵀ, shape (m, k)
        wt = solve(h @ h.T, aht.T)
        w = wt.T
        np.maximum(w, 0.0, out=w)

        rel = _frobenius_error(a, w, h) / a_norm
        errors.append(rel)
        if log is not None:
            log.record(it, residual=rel)
        if rel < eps or prev_rel - rel < eps * max(rel, 1e-30):
            converged = True
            break
        prev_rel = rel
    if log is not None:
        log.converged = converged
    return NMFResult(w=w, h=h, errors=np.asarray(errors), iterations=it,
                     converged=converged)


def nmf_reconstruction_error(a: Matrix, result: NMFResult) -> float:
    """Relative Frobenius reconstruction error of a factorisation."""
    a_norm = float(np.sqrt(np.sum(np.square(a.values)))) or 1.0
    return _frobenius_error(a, result.w, result.h) / a_norm
