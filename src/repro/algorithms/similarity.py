"""Similarity (Table I class 4): neighbour matching, cosine, isomorphism.

Jaccard similarity (the paper's worked §III-C algorithm) lives in
:mod:`repro.algorithms.jaccard`; this module adds the other Table I
examples: common-neighbour / cosine matrices as SpGEMM compositions and
a graph-isomorphism check (spectral invariants + backtracking).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.semiring.builtin import PLUS_MONOID, PLUS_PAIR
from repro.sparse.matrix import Matrix
from repro.sparse.reduce import reduce_rows
from repro.sparse.select import offdiag
from repro.sparse.spgemm import mxm
from repro.util.validation import check_square


def common_neighbors(a: Matrix) -> Matrix:
    """``C(i,j) = |N(i) ∩ N(j)|`` for i ≠ j: one SpGEMM on the plus-pair
    structural semiring (weights ignored) with the diagonal dropped."""
    check_square(a, "adjacency matrix")
    return offdiag(mxm(a, a.T, semiring=PLUS_PAIR)).prune()


def cosine_similarity(a: Matrix) -> Matrix:
    """Cosine similarity of adjacency rows:
    ``S = D^{-1/2} A Aᵀ D^{-1/2}`` with D the diagonal of ``AAᵀ``."""
    check_square(a, "adjacency matrix")
    g = mxm(a, a.T)
    norms = np.sqrt(reduce_rows(a.ewise_mult(a), PLUS_MONOID))
    s = offdiag(g).prune()
    rows = s.row_ids()
    denom = norms[rows] * norms[s.indices]
    ok = denom > 0
    vals = np.zeros(s.nnz)
    vals[ok] = s.values[ok] / denom[ok]
    return s.with_values(vals).prune()


def neighbor_matching(a: Matrix, b: Matrix, iterations: int = 10,
                      eps: float = 1e-6) -> np.ndarray:
    """Neighbour-matching similarity between the vertices of two graphs
    (Table I's "Neighbor Matching"): iterate
    ``S ← normalize(A · S · Bᵀ + Aᵀ · S · B)`` from the all-ones matrix —
    vertices are similar when their neighbourhoods are similar.

    Returns a dense ``(n_a, n_b)`` similarity array in [0, 1].
    """
    check_square(a, "graph A")
    check_square(b, "graph B")
    s = np.ones((a.nrows, b.nrows))
    from repro.sparse.spmv import mxd

    bt = b.T
    at = a.T
    for _ in range(iterations):
        # A S Bᵀ: rows via sparse-dense products on each side
        forward = mxd(a, mxd(bt, s.T).T)
        backward = mxd(at, mxd(b, s.T).T)
        new = forward + backward
        norm = np.abs(new).max()
        if norm == 0:
            return new
        new /= norm
        if np.abs(new - s).max() < eps:
            return new
        s = new
    return s


def _invariants(a: Matrix) -> Tuple:
    """Cheap isomorphism invariants: size, degree sequence, sorted
    adjacency spectrum (rounded)."""
    deg = np.sort(reduce_rows(a.pattern(), PLUS_MONOID))
    spec = np.sort(np.linalg.eigvalsh(a.pattern().to_dense()))
    return a.nrows, a.nnz, tuple(deg.tolist()), tuple(np.round(spec, 8).tolist())


def is_isomorphic(a: Matrix, b: Matrix,
                  max_nodes: int = 64) -> Tuple[bool, Optional[Dict[int, int]]]:
    """Graph isomorphism test for undirected simple graphs.

    Invariant screening (degree sequence + spectrum) rejects most
    non-isomorphic pairs outright; surviving pairs get an exact
    degree-partitioned backtracking search (exponential worst case,
    bounded by ``max_nodes``).  Returns ``(answer, mapping-or-None)``.
    """
    check_square(a, "graph A")
    check_square(b, "graph B")
    if a.nrows != b.nrows or a.nnz != b.nnz:
        return False, None
    if _invariants(a) != _invariants(b):
        return False, None
    n = a.nrows
    if n > max_nodes:
        raise ValueError(
            f"exact isomorphism search capped at {max_nodes} vertices, got {n}")
    ad = a.pattern().to_dense().astype(bool)
    bd = b.pattern().to_dense().astype(bool)
    deg_a = ad.sum(axis=1)
    deg_b = bd.sum(axis=1)
    # order A's vertices by rarity of degree for faster pruning
    order = np.argsort([-(deg_a == deg_a[i]).sum() for i in range(n)])[::-1]
    order = sorted(range(n), key=lambda i: (np.sum(deg_a == deg_a[i]), -deg_a[i]))
    mapping: Dict[int, int] = {}
    used = np.zeros(n, dtype=bool)

    def backtrack(k: int) -> bool:
        if k == n:
            return True
        u = order[k]
        for v in range(n):
            if used[v] or deg_b[v] != deg_a[u]:
                continue
            ok = True
            for w, x in mapping.items():
                if ad[u, w] != bd[v, x]:
                    ok = False
                    break
            if ok:
                mapping[u] = v
                used[v] = True
                if backtrack(k + 1):
                    return True
                del mapping[u]
                used[v] = False
        return False

    if backtrack(0):
        return True, dict(mapping)
    return False, None
