"""Community detection (Table I class 5) beyond topic modelling.

* :func:`nmf_communities` — Algorithm 5 applied to the adjacency matrix:
  factor ``A ≈ W·H`` and assign each vertex its argmax factor (the
  paper's "tweets corresponding to these topics form a community"
  reading, applied to graphs).
* :func:`spectral_bipartition` — Fiedler-vector split of the graph
  Laplacian (the PCA/SVD family Table I lists).
* :func:`label_propagation` — semiring-style iterative majority
  labelling (fast baseline).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.algorithms.nmf import nmf
from repro.semiring.builtin import PLUS_MONOID
from repro.sparse.matrix import Matrix
from repro.sparse.reduce import reduce_rows
from repro.util.rng import SeedLike
from repro.util.validation import check_square


def nmf_communities(a: Matrix, k: int, seed: SeedLike = None,
                    max_iter: int = 100) -> np.ndarray:
    """Assign each vertex to one of ``k`` overlappable communities by
    NMF on the adjacency matrix (argmax over W's factors)."""
    check_square(a, "adjacency matrix")
    result = nmf(a, k, seed=seed, max_iter=max_iter)
    return np.argmax(result.w, axis=1)


def spectral_bipartition(a: Matrix) -> Tuple[np.ndarray, np.ndarray]:
    """Split an undirected graph by the sign of the Fiedler vector
    (second-smallest Laplacian eigenvector).

    Returns ``(labels ∈ {0,1}, fiedler_vector)``.  Dense ``eigh`` is
    used for the eigenproblem — the detection-scale graphs this targets
    are small; the Laplacian itself is assembled from kernel reductions.
    """
    n = check_square(a, "adjacency matrix")
    if n < 2:
        return np.zeros(n, dtype=np.int64), np.zeros(n)
    p = a.pattern()
    d = reduce_rows(p, PLUS_MONOID)
    lap = np.diag(d) - p.to_dense()
    vals, vecs = np.linalg.eigh(lap)
    fiedler = vecs[:, 1]
    labels = (fiedler >= 0).astype(np.int64)
    return labels, fiedler


def label_propagation(a: Matrix, max_iter: int = 100,
                      seed: SeedLike = None) -> np.ndarray:
    """Synchronous label propagation: each round every vertex adopts
    the most frequent label among its neighbours (ties → smallest
    label), until a fixpoint or ``max_iter``.

    Deterministic given the seed (which only randomises the vertex
    *update order*-independent initial labels = vertex ids, so the seed
    is unused today but kept for API stability).
    """
    n = check_square(a, "adjacency matrix")
    labels = np.arange(n, dtype=np.int64)
    dense = a.pattern().to_dense().astype(bool)
    for _ in range(max_iter):
        new = labels.copy()
        for v in range(n):
            neigh = labels[dense[v]]
            if len(neigh) == 0:
                continue
            counts = np.bincount(neigh, minlength=n)
            best = counts.max()
            new[v] = int(np.flatnonzero(counts == best)[0])
        if np.array_equal(new, labels):
            break
        labels = new
    # relabel to contiguous component-min ids
    _, inv = np.unique(labels, return_inverse=True)
    return labels
