"""Subgraph detection & vertex nomination (Table I class 2) beyond
k-truss: planted-clique detection, exact clique search, nomination.

* :func:`planted_clique_eigen` — the eigen-analysis detector the paper
  cites (ref [11]): a planted clique of size ≳ √n concentrates in the
  principal eigenvector of the (centred) adjacency matrix.
* :func:`bron_kerbosch` / :func:`max_clique` — exact enumeration
  baseline (pivoting); clique existence is what k-truss bounds.
* :func:`vertex_nomination` — rank vertices by kernel-computed affinity
  to a cue set (ref [10]'s context score): one SpMV for direct links
  plus one for shared-neighbour evidence.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

import numpy as np

from repro.semiring.builtin import PLUS_MONOID, PLUS_PAIR, PLUS_TIMES
from repro.sparse.matrix import Matrix
from repro.sparse.reduce import reduce_rows
from repro.sparse.spgemm import mxm
from repro.sparse.spmv import mxv
from repro.util.validation import check_square


def planted_clique_eigen(a: Matrix, clique_size: int) -> np.ndarray:
    """Nominate the ``clique_size`` vertices most likely to form a
    planted clique: the top entries of the principal eigenvector of the
    degree-centred adjacency matrix ``A − d·dᵀ/(2m)`` (modularity-style
    centring removes the background degree signal).

    Returns the candidate vertex ids, sorted ascending.
    """
    n = check_square(a, "adjacency matrix")
    if not 1 <= clique_size <= n:
        raise ValueError(f"clique_size must be in [1, {n}], got {clique_size}")
    d = reduce_rows(a.pattern(), PLUS_MONOID)
    two_m = d.sum()
    dense = a.pattern().to_dense()
    if two_m > 0:
        dense = dense - np.outer(d, d) / two_m
    # dense symmetric eigenvector (the centred matrix is dense by
    # construction; n here is the detection-problem scale, not the DB scale)
    vals, vecs = np.linalg.eigh(dense)
    lead = vecs[:, np.argmax(vals)]
    lead = lead if np.abs(lead.max()) >= np.abs(lead.min()) else -lead
    return np.sort(np.argsort(-lead, kind="stable")[:clique_size])


def bron_kerbosch(a: Matrix) -> List[Set[int]]:
    """All maximal cliques (Bron–Kerbosch with pivoting)."""
    n = check_square(a, "adjacency matrix")
    neigh = [set(a.row(u)[0].tolist()) - {u} for u in range(n)]
    out: List[Set[int]] = []

    def expand(r: Set[int], p: Set[int], x: Set[int]) -> None:
        if not p and not x:
            out.append(set(r))
            return
        pivot = max(p | x, key=lambda u: len(neigh[u] & p))
        for v in list(p - neigh[pivot]):
            expand(r | {v}, p & neigh[v], x & neigh[v])
            p.discard(v)
            x.add(v)

    expand(set(), set(range(n)), set())
    return out


def max_clique(a: Matrix) -> Set[int]:
    """A maximum clique (largest of the maximal cliques; smallest
    vertex set wins ties for determinism)."""
    cliques = bron_kerbosch(a)
    if not cliques:
        return set()
    best = max(len(c) for c in cliques)
    return min((c for c in cliques if len(c) == best),
               key=lambda c: sorted(c))


def vertex_nomination(a: Matrix, cues: Sequence[int],
                      top: int = 10, mix: float = 0.5) -> List[Tuple[int, float]]:
    """Rank non-cue vertices by affinity to the cue set.

    Score = ``mix``·(normalised direct links to cues: one SpMV) +
    (1−mix)·(normalised shared neighbours with cues: one SpGEMM-backed
    SpMV on the plus-pair semiring).
    """
    n = check_square(a, "adjacency matrix")
    cues = np.asarray(cues, dtype=np.intp)
    if len(cues) == 0:
        raise ValueError("need at least one cue vertex")
    if cues.min() < 0 or cues.max() >= n:
        raise IndexError("cue vertex out of range")
    if not 0.0 <= mix <= 1.0:
        raise ValueError(f"mix must be in [0, 1], got {mix}")
    indicator = np.zeros(n)
    indicator[cues] = 1.0
    direct = mxv(a.pattern(), indicator, semiring=PLUS_TIMES)
    shared = mxv(mxm(a.pattern(), a.pattern(), semiring=PLUS_PAIR).offdiag(),
                 indicator, semiring=PLUS_TIMES)

    def norm(x: np.ndarray) -> np.ndarray:
        m = x.max()
        return x / m if m > 0 else x

    score = mix * norm(direct) + (1.0 - mix) * norm(shared)
    score[cues] = -np.inf  # cues are given, not nominated
    order = np.argsort(-score, kind="stable")[:top]
    return [(int(v), float(score[v])) for v in order if np.isfinite(score[v])]
