"""Centrality (paper §III-A): degree, eigenvector, Katz, PageRank,
betweenness — all as iterated GraphBLAS matrix–vector products.

The iterative methods share the paper's stopping rule: stop when
``|x_{k+1}ᵀ x_k| / (‖x_{k+1}‖₂ ‖x_k‖₂)`` is within ``tol`` of 1 (the
successive iterates have aligned directions).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.obs.convergence import ConvergenceLog
from repro.semiring.builtin import PLUS_MONOID, PLUS_TIMES
from repro.sparse.matrix import Matrix
from repro.sparse.reduce import reduce_cols, reduce_rows
from repro.sparse.spmv import mxv, vxm
from repro.util.rng import SeedLike, default_rng
from repro.util.validation import check_square


def _aligned(x_new: np.ndarray, x_old: np.ndarray, tol: float) -> bool:
    """The paper's convergence test: cosine of successive iterates ≈ 1."""
    denom = np.linalg.norm(x_new) * np.linalg.norm(x_old)
    if denom == 0:
        return True
    return abs(float(x_new @ x_old)) / denom >= 1.0 - tol


def degree_centrality(a: Matrix, mode: str = "out",
                      weighted: bool = False) -> np.ndarray:
    """Degree centrality: one row or column Reduce of the adjacency
    matrix (paper: "computed via a row or column reduction")."""
    check_square(a, "adjacency matrix")
    m = a if weighted else a.pattern()
    if mode == "out":
        return reduce_rows(m, PLUS_MONOID)
    if mode == "in":
        return reduce_cols(m, PLUS_MONOID)
    if mode == "total":
        return reduce_rows(m, PLUS_MONOID) + reduce_cols(m, PLUS_MONOID)
    raise ValueError(f"mode must be 'in', 'out' or 'total', got {mode!r}")


def eigenvector_centrality(a: Matrix, tol: float = 1e-10,
                           max_iter: int = 1000, shift: float = 1.0,
                           seed: SeedLike = None,
                           log: Optional[ConvergenceLog] = None) -> np.ndarray:
    """Power method on A: ``x_{k+1} = A·x_k`` from a random positive
    start, normalised each step, until directions align (paper §III-A).

    ``shift`` iterates on ``A + shift·I`` instead (same principal
    eigenvector for a non-negative A, realised as one extra axpy per
    step).  The default 1.0 breaks the period-2 oscillation the plain
    iteration exhibits on bipartite graphs, where the extreme
    eigenvalues ±λ_max tie in modulus and the paper's stopping rule
    never fires; pass ``shift=0.0`` for the paper-verbatim iteration.

    ``log`` (optional :class:`~repro.obs.convergence.ConvergenceLog`)
    records ``1 − |cos|`` of successive iterates per step.

    Returns the (2-norm-normalised, non-negative) principal eigenvector.
    """
    n = check_square(a, "adjacency matrix")
    if shift < 0:
        raise ValueError(f"shift must be >= 0, got {shift}")
    if a.nnz == 0:
        return np.zeros(n)  # no edges: centrality is all zero
    rng = default_rng(seed)
    x = rng.random(n) + 0.1  # random positive start, entries in (0, 1.1)
    x /= np.linalg.norm(x)
    for it in range(1, max_iter + 1):
        x_new = mxv(a, x, semiring=PLUS_TIMES) + shift * x
        norm = np.linalg.norm(x_new)
        if norm == 0:
            return x_new  # graph with no edges: centrality is all zero
        x_new /= norm
        if log is not None:
            denom = np.linalg.norm(x_new) * np.linalg.norm(x)
            align = abs(float(x_new @ x)) / denom if denom else 1.0
            log.record(it, residual=1.0 - align)
        if _aligned(x_new, x, tol):
            x = x_new
            if log is not None:
                log.converged = True
            break
        x = x_new
    return np.abs(x)


def katz_centrality(a: Matrix, alpha: float = 0.1, tol: float = 1e-10,
                    max_iter: int = 1000,
                    log: Optional[ConvergenceLog] = None) -> np.ndarray:
    """Katz centrality exactly as the paper iterates it:

        ``d_{k+1} = A·d_k``;  ``x_{k+1} = x_k + α^k · d_{k+1}``

    with ``d_0 = 1`` (so x accumulates α-discounted k-hop path counts).
    ``alpha`` must satisfy α < 1/λ_max for the series to converge; a
    diverging iteration raises ``RuntimeError``.  ``log`` records the
    relative ∞-norm of each added term.
    """
    n = check_square(a, "adjacency matrix")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    d = np.ones(n)
    x = np.zeros(n)
    alpha_k = 1.0  # α^k for k = 0
    for it in range(1, max_iter + 1):
        d = mxv(a, d, semiring=PLUS_TIMES)
        term = alpha_k * d
        x_new = x + term
        term_norm = float(np.max(np.abs(term)))
        if not np.isfinite(x_new).all() or term_norm > 1e100:
            raise RuntimeError(
                f"Katz iteration diverged: alpha={alpha} is not < 1/lambda_max")
        rel = term_norm / max(float(np.max(np.abs(x_new))), 1.0)
        if log is not None:
            log.record(it, residual=rel)
        if term_norm <= tol * max(float(np.max(np.abs(x_new))), 1.0):
            if log is not None:
                log.converged = True
            return x_new
        x = x_new
        alpha_k *= alpha
    raise RuntimeError(
        f"Katz did not converge in {max_iter} iterations (alpha={alpha} too "
        f"close to 1/lambda_max?)")


def pagerank(a: Matrix, jump: float = 0.15, tol: float = 1e-12,
             max_iter: int = 1000,
             log: Optional[ConvergenceLog] = None) -> np.ndarray:
    """PageRank as the paper formulates it: the principal eigenvector of

        ``(α/N)·1_{N×N} + (1−α)·Aᵀ·D⁻¹``

    with α the jump probability and D the out-degree diagonal, via the
    power method.  Multiplication by the all-ones matrix is emulated by
    summing the iterate and broadcasting (paper §III-A).  Dangling
    vertices (zero out-degree) donate their mass uniformly, keeping the
    iteration stochastic; result sums to 1.

    ``log`` (optional :class:`~repro.obs.convergence.ConvergenceLog`)
    records the L1 change of the rank vector per power step — the
    residual the paper's convergence plots track.
    """
    n = check_square(a, "adjacency matrix")
    if not 0.0 <= jump < 1.0:
        raise ValueError(f"jump probability must be in [0, 1), got {jump}")
    if n == 0:
        return np.zeros(0)
    out_deg = reduce_rows(a, PLUS_MONOID)
    dangling = out_deg == 0
    inv = np.zeros(n)
    inv[~dangling] = 1.0 / out_deg[~dangling]
    # A_hat = Aᵀ D⁻¹ realised by scaling A's rows then transposing lazily:
    # (Aᵀ D⁻¹) x = vxm(x ∘ invdeg, A)
    x = np.full(n, 1.0 / n)
    for it in range(1, max_iter + 1):
        walk = vxm(x * inv, a, semiring=PLUS_TIMES)
        walk += x[dangling].sum() / n       # dangling mass, spread uniformly
        x_new = jump / n + (1.0 - jump) * walk
        residual = float(np.abs(x_new - x).sum())
        if log is not None:
            log.record(it, residual=residual)
        if residual <= tol:
            if log is not None:
                log.converged = True
            return x_new
        x = x_new
    return x


def betweenness_batched(a: Matrix, batch_size: int = 16,
                        directed: bool = False,
                        normalized: bool = False) -> np.ndarray:
    """Betweenness with *batched* sources — the linear-algebraic form of
    Brandes from the paper's ref [9] (Kepner & Gilbert ch. 6).

    ``batch_size`` BFS trees advance simultaneously: the frontier is an
    (n × b) dense block, each level is one sparse×dense product
    (``mxd``), and the backward dependency sweep reuses the same block
    shape.  Identical output to :func:`betweenness_centrality`, fewer
    and fatter kernel invocations — the trade that matters when each
    kernel call is a server-side database operation.
    """
    n = check_square(a, "adjacency matrix")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    from repro.sparse.spmv import mxd

    at = a.T if directed else a
    total = np.zeros(n)
    for start in range(0, n, batch_size):
        sources = np.arange(start, min(start + batch_size, n))
        b = len(sources)
        sigma = np.zeros((n, b))
        sigma[sources, np.arange(b)] = 1.0
        depth = np.full((n, b), -1, dtype=np.int64)
        depth[sources, np.arange(b)] = 0
        frontier = sigma.copy()
        levels = [depth == 0]
        lvl = 0
        while frontier.any():
            lvl += 1
            contrib = mxd(at, frontier)          # one kernel per level
            fresh = (contrib > 0) & (depth < 0)
            if not fresh.any():
                break
            depth[fresh] = lvl
            sigma[fresh] = contrib[fresh]
            frontier = np.where(fresh, sigma, 0.0)
            levels.append(fresh)
        delta = np.zeros((n, b))
        for fresh in reversed(levels[1:]):
            w = np.zeros((n, b))
            w[fresh] = (1.0 + delta[fresh]) / sigma[fresh]
            pulled = mxd(a, w)
            lvl_of = np.where(fresh.any(axis=0),
                              (depth * fresh).max(axis=0), 0)
            prev_mask = depth == (lvl_of[None, :] - 1)
            delta[prev_mask] += (sigma * pulled)[prev_mask]
        delta[sources, np.arange(b)] = 0.0
        total += delta.sum(axis=1)
    if not directed:
        total /= 2.0
    if normalized:
        denom = (n - 1) * (n - 2) if directed else (n - 1) * (n - 2) / 2.0
        if denom > 0:
            total = total / denom
    return total


def closeness_centrality(a: Matrix, weighted: bool = False,
                         wf_improved: bool = True) -> np.ndarray:
    """Closeness centrality — the metric the paper defers to future work
    (§III-A: "Other metrics, such as closeness centrality, will be the
    subject of future work").

    ``c(v) = (reachable − 1) / Σ_u d(v, u)``, with the Wasserman–Faust
    correction ``× (reachable − 1)/(n − 1)`` for disconnected graphs
    (``wf_improved``, matching networkx).  Distances come from the
    kernel substrate: boolean BFS (unweighted) or min-plus Bellman–Ford
    relaxation (weighted), one source per SpMV sweep.
    """
    from repro.algorithms.shortestpath import bellman_ford
    from repro.algorithms.traversal import bfs

    n = check_square(a, "adjacency matrix")
    out = np.zeros(n)
    for v in range(n):
        if weighted:
            d = bellman_ford(a, v)
            reach = np.isfinite(d)
        else:
            d = bfs(a, v).astype(np.float64)
            reach = d >= 0
        total = float(d[reach].sum())
        k = int(reach.sum())  # includes v itself
        if k <= 1 or total <= 0:
            continue
        c = (k - 1) / total
        if wf_improved and n > 1:
            c *= (k - 1) / (n - 1)
        out[v] = c
    return out


def betweenness_centrality(a: Matrix, directed: bool = False,
                           normalized: bool = False,
                           sources: Optional[np.ndarray] = None) -> np.ndarray:
    """Betweenness via Brandes' algorithm in linear-algebraic form
    (paper ref [9]): per source, a forward BFS accumulating shortest-path
    counts σ with SpMV, then a backward dependency sweep, each level one
    (masked) SpMV.

    ``sources`` restricts to a subset (approximate/batched betweenness);
    default is exact (all sources).  Undirected graphs halve the total.
    """
    n = check_square(a, "adjacency matrix")
    at = a.T if directed else a
    deltas = np.zeros(n)
    source_list = np.arange(n) if sources is None else np.asarray(sources)
    for s in source_list:
        # forward phase: levels of the BFS DAG with path counts sigma
        sigma = np.zeros(n)
        sigma[s] = 1.0
        depth = np.full(n, -1, dtype=np.int64)
        depth[s] = 0
        frontier = np.zeros(n)
        frontier[s] = 1.0
        levels = [np.array([s])]
        lvl = 0
        while True:
            lvl += 1
            contrib = mxv(at, frontier, semiring=PLUS_TIMES)
            fresh = np.flatnonzero((contrib > 0) & (depth < 0))
            if len(fresh) == 0:
                break
            depth[fresh] = lvl
            sigma[fresh] = contrib[fresh]
            frontier = np.zeros(n)
            frontier[fresh] = sigma[fresh]
            levels.append(fresh)
        # backward phase: delta accumulates dependencies level by level
        delta = np.zeros(n)
        for fresh in reversed(levels[1:]):
            w = np.zeros(n)
            w[fresh] = (1.0 + delta[fresh]) / sigma[fresh]
            # pull along out-edges: y_v = Σ_w A(v, w) · x_w
            pulled = mxv(a, w, semiring=PLUS_TIMES)
            prev_mask = depth == (depth[fresh[0]] - 1)
            delta[prev_mask] += sigma[prev_mask] * pulled[prev_mask]
        delta[s] = 0.0
        deltas += delta
    if not directed:
        deltas /= 2.0
    if normalized:
        denom = (n - 1) * (n - 2) if directed else (n - 1) * (n - 2) / 2.0
        if denom > 0:
            deltas = deltas / denom
    return deltas
