"""Matrix inverse by iteration — the paper's Algorithm 4.

Newton–Schulz iteration ``X_{t+1} = X_t · (2·I − A·X_t)`` seeded with
``X_1 = Aᵀ / (‖A‖_row · ‖A‖_col)`` (Ben-Israel & Cohen's start, which
guarantees convergence for any nonsingular A because it puts every
eigenvalue of ``A·X_1`` inside the unit disk around 1... for the
matrices arising in Algorithm 5 — Gram matrices ``WᵀW``/``HHᵀ`` — A is
symmetric positive definite and convergence is quadratic).

The paper uses this so the least-squares solves inside NMF need only
GraphBLAS kernels; both a kernel-level (sparse Matrix) and a dense
NumPy variant are provided — NMF uses the dense one on its small k×k
Gram matrices.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from typing import Optional

from repro.obs.convergence import ConvergenceLog
from repro.semiring.builtin import MAX_MONOID, PLUS_MONOID
from repro.sparse.construct import identity
from repro.sparse.matrix import Matrix
from repro.sparse.reduce import reduce_cols, reduce_rows
from repro.sparse.spgemm import mxm
from repro.util.validation import check_square


def newton_schulz_inverse(a: Matrix, eps: float = 1e-10,
                          max_iter: int = 200,
                          log: Optional[ConvergenceLog] = None
                          ) -> Tuple[Matrix, int]:
    """Algorithm 4 on the kernel substrate.

    Returns ``(X ≈ A⁻¹, iterations)``.  Raises ``RuntimeError`` when the
    iteration fails to contract within ``max_iter`` steps (singular or
    ill-conditioned input).  ``log`` records the relative Frobenius step
    ``‖X_{t+1} − X_t‖_F / ‖X_{t+1}‖_F`` per iteration.

    Kernel trace per step: one SpGEMM ``A·X``, one Scale/eWiseAdd for
    ``2I − AX``, one SpGEMM for the update, one Reduce for the Frobenius
    check.
    """
    n = check_square(a, "matrix")
    if a.nnz == 0:
        raise ValueError("cannot invert an all-zero matrix")
    # ‖A‖_row = max_i Σ_j |A_ij| ;  ‖A‖_col = max_j Σ_i |A_ij|
    abs_a = a.with_values(np.abs(a.values))
    row_norm = float(MAX_MONOID.reduce(reduce_rows(abs_a, PLUS_MONOID)))
    col_norm = float(MAX_MONOID.reduce(reduce_cols(abs_a, PLUS_MONOID)))
    x = a.T.scale(1.0 / (row_norm * col_norm))
    eye2 = identity(n, one=2.0)
    for t in range(1, max_iter + 1):
        ax = mxm(a, x)
        x_next = mxm(x, eye2 - ax)
        diff = x_next - x
        frob = float(np.sqrt(np.sum(np.square(diff.values)))) if diff.nnz else 0.0
        x_norm = float(np.sqrt(np.sum(np.square(x_next.values)))) or 1.0
        if not np.isfinite(frob):
            raise RuntimeError(
                "Newton-Schulz diverged (matrix singular or too ill-conditioned)")
        x = x_next
        if log is not None:
            log.record(t, residual=frob / x_norm)
        # relative step criterion: ‖X_{t+1} − X_t‖_F ≤ ε·‖X_{t+1}‖_F
        # (the paper's absolute test, made scale-invariant so it neither
        # stops early on small-norm inverses nor spins on large ones)
        if frob <= eps * x_norm:
            # guard against silent convergence to a non-inverse fixpoint
            # (singular A): verify the residual before declaring victory
            residual = mxm(a, x) - identity(n)
            rnorm = float(np.max(np.abs(residual.values))) if residual.nnz else 0.0
            if rnorm > 1e-6:
                raise RuntimeError(
                    f"Newton-Schulz stalled with residual ‖AX−I‖∞={rnorm:.2e}: "
                    "matrix is singular or too ill-conditioned")
            if log is not None:
                log.converged = True
            return x, t
    raise RuntimeError(
        f"Newton-Schulz did not reach eps={eps} in {max_iter} iterations")


def newton_schulz_inverse_dense(a: np.ndarray, eps: float = 1e-12,
                                max_iter: int = 200,
                                log: Optional[ConvergenceLog] = None
                                ) -> Tuple[np.ndarray, int]:
    """Algorithm 4 on dense arrays — used for the small Gram matrices
    inside NMF (Algorithm 5), where densifying is the honest cost model
    anyway (the paper's §IV discussion concedes these become dense)."""
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {a.shape}")
    n = a.shape[0]
    row_norm = np.abs(a).sum(axis=1).max()
    col_norm = np.abs(a).sum(axis=0).max()
    if row_norm == 0 or col_norm == 0:
        raise ValueError("cannot invert an all-zero matrix")
    x = a.T / (row_norm * col_norm)
    eye2 = 2.0 * np.eye(n)
    for t in range(1, max_iter + 1):
        x_next = x @ (eye2 - a @ x)
        frob = float(np.linalg.norm(x_next - x))
        x_norm = float(np.linalg.norm(x_next)) or 1.0
        if not np.isfinite(frob):
            raise RuntimeError(
                "Newton-Schulz diverged (matrix singular or too ill-conditioned)")
        x = x_next
        if log is not None:
            log.record(t, residual=frob / x_norm)
        if frob <= eps * x_norm:  # relative step (see sparse variant)
            rnorm = float(np.max(np.abs(a @ x - np.eye(n))))
            if rnorm > 1e-6:
                raise RuntimeError(
                    f"Newton-Schulz stalled with residual ‖AX−I‖∞={rnorm:.2e}: "
                    "matrix is singular or too ill-conditioned")
            if log is not None:
                log.converged = True
            return x, t
    raise RuntimeError(
        f"Newton-Schulz did not reach eps={eps} in {max_iter} iterations")
