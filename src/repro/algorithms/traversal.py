"""Exploration & traversal (Table I class 1) in kernel form.

BFS is the canonical GraphBLAS loop: repeated SpMSpV of the (transposed)
adjacency matrix against a sparse frontier under a structural semiring,
masking out visited vertices.  Connected components and a BFS parent
tree fall out of the same loop with different semirings.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.semiring.builtin import ANY_PAIR, MIN_SECOND
from repro.sparse.matrix import Matrix
from repro.sparse.spmv import mxv, mxv_sparse
from repro.sparse.vector import Vector
from repro.util.validation import check_index, check_square


def bfs(a: Matrix, source: int, directed: bool = False) -> np.ndarray:
    """Breadth-first distances from ``source``.

    Returns an int array of hop counts; unreachable vertices get −1.
    ``a`` is interpreted as ``A(u, v) = edge u→v``; pass
    ``directed=False`` (default) for symmetric adjacency matrices where
    the transpose can be skipped.

    Kernel trace per level: one SpMSpV over the ANY-PAIR structural
    semiring + one complement mask (SpEWiseX with the negated visited
    set, realised as an index filter).
    """
    n = check_square(a, "adjacency matrix")
    source = check_index(source, n, "source")
    at = a if not directed else a.T
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = Vector.sparse_ones(n, [source])
    level = 0
    while frontier.nnz:
        level += 1
        nxt = mxv_sparse(at, frontier, semiring=ANY_PAIR)
        # mask: keep only undiscovered vertices
        fresh = nxt.indices[dist[nxt.indices] < 0]
        if len(fresh) == 0:
            break
        dist[fresh] = level
        frontier = Vector.sparse_ones(n, fresh)
    return dist


def bfs_tree(a: Matrix, source: int,
             directed: bool = False) -> Tuple[np.ndarray, np.ndarray]:
    """BFS distances *and* a parent tree.

    Parents come from the (min, second) semiring: frontier values carry
    the frontier vertex ids, ⊗=second forwards the id across each edge,
    ⊕=min picks the smallest-id parent deterministically.  The source's
    parent is itself; unreachable vertices get parent −1.
    """
    n = check_square(a, "adjacency matrix")
    source = check_index(source, n, "source")
    at = a if not directed else a.T
    dist = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    parent[source] = source
    frontier = Vector(n, np.array([source], dtype=np.intp),
                      np.array([float(source)]))
    level = 0
    while frontier.nnz:
        level += 1
        nxt = mxv_sparse(at, frontier, semiring=MIN_SECOND)
        keep = dist[nxt.indices] < 0
        fresh = nxt.indices[keep]
        if len(fresh) == 0:
            break
        dist[fresh] = level
        parent[fresh] = nxt.values[keep].astype(np.int64)
        frontier = Vector(n, fresh, fresh.astype(np.float64), _validate=False)
    return dist, parent


def connected_components(a: Matrix) -> np.ndarray:
    """Component labels of an undirected graph via min-label propagation.

    Every vertex starts labelled with its own id; each round replaces a
    vertex's label with the min over itself and its neighbours (one
    dense SpMV under (min, second)); fixpoint in at most diameter
    rounds.  Returns the minimum vertex id of each component.
    """
    n = check_square(a, "adjacency matrix")
    labels = np.arange(n, dtype=np.float64)
    while True:
        neighbour_min = mxv(a, labels, semiring=MIN_SECOND)
        new = np.minimum(labels, neighbour_min)
        if np.array_equal(new, labels):
            break
        labels = new
    return labels.astype(np.int64)


def dfs(a: Matrix, source: int, directed: bool = False) -> np.ndarray:
    """Depth-first preorder from ``source`` (Table I lists DFS).

    DFS's stack discipline is inherently sequential, so this walks CSR
    rows directly (the "classical baseline on sparse storage" form);
    neighbours are visited in ascending vertex order.  Returns the
    preorder vertex sequence (reachable vertices only).
    """
    n = check_square(a, "adjacency matrix")
    source = check_index(source, n, "source")
    del directed  # row u already lists out-neighbours A(u, ·) either way
    seen = np.zeros(n, dtype=bool)
    order = []
    stack = [source]
    while stack:
        v = stack.pop()
        if seen[v]:
            continue
        seen[v] = True
        order.append(v)
        cols, _ = a.row(v)
        # push descending so the smallest neighbour is popped first
        stack.extend(int(c) for c in cols[::-1] if not seen[c])
    return np.asarray(order, dtype=np.int64)
