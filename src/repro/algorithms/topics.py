"""Topic modelling on doc×term matrices via NMF — the Fig 3 experiment.

``fit_topics`` runs Algorithm 5 on a document–term count matrix and
reports, per topic, the dominant terms (rows of H) and per document the
dominant topic (columns of W) — the structure the paper reads off its
Twitter run.  ``purity``/``nmi`` score recovered topics against ground
truth when it exists (our synthetic corpus keeps its labels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.algorithms.nmf import NMFResult, nmf
from repro.sparse.matrix import Matrix
from repro.util.rng import SeedLike


@dataclass
class TopicModel:
    """A fitted topic model over a doc×term matrix."""

    result: NMFResult
    vocabulary: List[str]

    @property
    def n_topics(self) -> int:
        return self.result.w.shape[1]

    def doc_topics(self) -> np.ndarray:
        """Dominant topic index of every document (argmax of W rows)."""
        return np.argmax(self.result.w, axis=1)

    def topic_terms(self, topic: int, top: int = 10) -> List[Tuple[str, float]]:
        """The ``top`` highest-weight terms of one topic (H row)."""
        if not 0 <= topic < self.n_topics:
            raise IndexError(f"topic {topic} out of range for {self.n_topics}")
        h = self.result.h[topic]
        order = np.argsort(h)[::-1][:top]
        return [(self.vocabulary[i], float(h[i])) for i in order if h[i] > 0]

    def report(self, top: int = 8) -> str:
        """Fig 3-style text report: one line of top terms per topic."""
        lines = []
        counts = np.bincount(self.doc_topics(), minlength=self.n_topics)
        for t in range(self.n_topics):
            terms = ", ".join(w for w, _ in self.topic_terms(t, top=top))
            lines.append(f"topic {t + 1} ({counts[t]:>6} docs): {terms}")
        return "\n".join(lines)


def fit_topics(doc_term: Matrix, vocabulary: Sequence[str], k: int,
               solver: str = "newton_schulz", seed: SeedLike = None,
               max_iter: int = 60, eps: float = 1e-4) -> TopicModel:
    """Fit a k-topic NMF model to a doc×term count matrix."""
    if len(vocabulary) != doc_term.ncols:
        raise ValueError(
            f"vocabulary size {len(vocabulary)} != term count {doc_term.ncols}")
    result = nmf(doc_term, k, solver=solver, seed=seed, max_iter=max_iter,
                 eps=eps)
    return TopicModel(result=result, vocabulary=list(vocabulary))


def purity(predicted: np.ndarray, truth: np.ndarray) -> float:
    """Cluster purity: fraction of documents whose cluster's majority
    true label matches their own.  1.0 = perfect recovery."""
    predicted = np.asarray(predicted)
    truth = np.asarray(truth)
    if predicted.shape != truth.shape:
        raise ValueError("predicted/truth length mismatch")
    if len(predicted) == 0:
        return 0.0
    total = 0
    for c in np.unique(predicted):
        members = truth[predicted == c]
        total += np.bincount(members).max()
    return total / len(predicted)


def nmi(predicted: np.ndarray, truth: np.ndarray) -> float:
    """Normalised mutual information between two labelings (0..1)."""
    predicted = np.asarray(predicted)
    truth = np.asarray(truth)
    if predicted.shape != truth.shape:
        raise ValueError("predicted/truth length mismatch")
    n = len(predicted)
    if n == 0:
        return 0.0
    pu, pi = np.unique(predicted, return_inverse=True)
    tu, ti = np.unique(truth, return_inverse=True)
    joint = np.zeros((len(pu), len(tu)))
    np.add.at(joint, (pi, ti), 1.0)
    joint /= n
    pp = joint.sum(axis=1)
    pt = joint.sum(axis=0)
    nz = joint > 0
    mi = float(np.sum(joint[nz] * np.log(
        joint[nz] / (pp[:, None] * pt[None, :])[nz])))

    def entropy(p: np.ndarray) -> float:
        p = p[p > 0]
        return float(-np.sum(p * np.log(p)))

    hp, ht = entropy(pp), entropy(pt)
    if hp == 0.0 or ht == 0.0:
        return 1.0 if np.array_equal(pi, ti) else 0.0
    return mi / np.sqrt(hp * ht)
