"""Random-walk analytics: personalized PageRank and walk statistics.

Personalized PageRank replaces the uniform jump of §III-A's PageRank
with a restart distribution concentrated on seed vertices — the walk
view of vertex nomination (rank vertices by their stationary mass when
the walker keeps teleporting back to the cue set).  Same SpMV power
iteration, different jump vector.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.semiring.builtin import PLUS_MONOID, PLUS_TIMES
from repro.sparse.matrix import Matrix
from repro.sparse.reduce import reduce_rows
from repro.sparse.spmv import vxm
from repro.util.validation import check_index, check_square


def _restart_vector(n: int, personalization) -> np.ndarray:
    if personalization is None:
        return np.full(n, 1.0 / n)
    r = np.zeros(n)
    if isinstance(personalization, dict):
        for v, w in personalization.items():
            r[check_index(int(v), n, "seed")] = float(w)
    else:
        for v in np.atleast_1d(personalization):
            r[check_index(int(v), n, "seed")] = 1.0
    total = r.sum()
    if total <= 0:
        raise ValueError("personalization must have positive total weight")
    return r / total


def personalized_pagerank(a: Matrix, personalization=None,
                          jump: float = 0.15, tol: float = 1e-12,
                          max_iter: int = 1000) -> np.ndarray:
    """PageRank with restarts into ``personalization`` (seed list or
    ``{vertex: weight}``; ``None`` = classic uniform PageRank).

    Power iteration ``x ← (1−α)·AᵀD⁻¹x + (α + (1−α)·dangling)·r``,
    one vxm kernel per step; converges in L1 like the classic variant.
    """
    n = check_square(a, "adjacency matrix")
    if not 0.0 <= jump < 1.0:
        raise ValueError(f"jump must be in [0, 1), got {jump}")
    if n == 0:
        return np.zeros(0)
    r = _restart_vector(n, personalization)
    out_deg = reduce_rows(a, PLUS_MONOID)
    dangling = out_deg == 0
    inv = np.zeros(n)
    inv[~dangling] = 1.0 / out_deg[~dangling]
    x = r.copy()
    for _ in range(max_iter):
        walk = vxm(x * inv, a, semiring=PLUS_TIMES)
        lost = x[dangling].sum()
        x_new = (1.0 - jump) * walk + (jump + (1.0 - jump) * lost) * r
        if np.abs(x_new - x).sum() <= tol:
            return x_new
        x = x_new
    return x


def walk_counts(a: Matrix, length: int, start: Optional[int] = None) -> np.ndarray:
    """Number of length-``length`` walks: from ``start`` to every vertex
    (one SpMV per step), or between all pairs when ``start`` is None
    (``A^length`` diagonal-free dense view is NOT built — returns the
    per-target vector / per-vertex totals).

    Walk counting is the arithmetic-semiring member of the paper's
    semiring family (Katz centrality without the discount).
    """
    n = check_square(a, "adjacency matrix")
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    if start is not None:
        x = np.zeros(n)
        x[check_index(start, n, "start")] = 1.0
    else:
        x = np.ones(n)
    for _ in range(length):
        x = vxm(x, a, semiring=PLUS_TIMES)
    return x


def hitting_mass(a: Matrix, targets: Sequence[int], steps: int,
                 jump: float = 0.0) -> np.ndarray:
    """Probability a ``steps``-step random walk (uniform start) is *at*
    one of ``targets`` at each step — the detection statistic behind
    diffusion-based vertex nomination.

    Returns an array of length ``steps + 1`` (index 0 = start).
    """
    n = check_square(a, "adjacency matrix")
    targets = np.asarray([check_index(t, n, "target")
                          for t in np.atleast_1d(targets)], dtype=np.intp)
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    out_deg = reduce_rows(a, PLUS_MONOID)
    inv = np.zeros(n)
    nz = out_deg > 0
    inv[nz] = 1.0 / out_deg[nz]
    x = np.full(n, 1.0 / n)
    masses = [float(x[targets].sum())]
    for _ in range(steps):
        walk = vxm(x * inv, a, semiring=PLUS_TIMES)
        walk += x[~nz].sum() / n  # dangling mass spread uniformly
        x = (1.0 - jump) * walk + jump / n
        masses.append(float(x[targets].sum()))
    return np.asarray(masses)
