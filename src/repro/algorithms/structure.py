"""Further structural kernels: triangles, k-core, SCC, Borůvka MST.

These round out the Table I classes with the other standard
linear-algebraic graph computations (all are classic GraphBLAS
showcases):

* triangle counting — one masked plus-pair SpGEMM (``(A ⊕.pair A) ⊙ A``);
* k-core — iterated degree Reduce + SpRef peeling;
* strongly connected components — forward × backward boolean closures;
* minimum spanning forest — Borůvka rounds on (min, second) SpMV.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.semiring.builtin import LOR_LAND, PLUS_MONOID, PLUS_PAIR
from repro.sparse.matrix import Matrix
from repro.sparse.reduce import reduce_rows
from repro.sparse.spgemm import mxm
from repro.sparse.spmv import mxv, mxv_sparse
from repro.sparse.vector import Vector
from repro.util.validation import check_index, check_square


def triangle_count(a: Matrix) -> Tuple[int, np.ndarray]:
    """Triangles of an undirected simple graph.

    ``T = (A ⊕.pair A) ⊙ A`` counts, per edge, its supporting triangles;
    each triangle contributes to 6 stored positions (3 edges × 2
    orientations), so the global count is ``Σ T / 6`` and the
    per-vertex count is the row sum / 2.

    Returns ``(total, per_vertex)``.
    """
    check_square(a, "adjacency matrix")
    p = a.pattern()
    t = mxm(p, p, semiring=PLUS_PAIR, mask=p)
    per_vertex = reduce_rows(t, PLUS_MONOID) / 2.0
    total = int(round(float(per_vertex.sum()) / 3.0))
    return total, per_vertex.astype(np.int64)


def kcore(a: Matrix) -> np.ndarray:
    """Core number of every vertex (largest k such that the vertex
    survives in the maximal subgraph of minimum degree k).

    Peeling loop: repeatedly Reduce degrees, remove all vertices below
    the current k, re-extract the subgraph (SpRef) — each round is one
    Reduce + one extract, the paper's kernel-composition style.
    """
    n = check_square(a, "adjacency matrix")
    core = np.zeros(n, dtype=np.int64)
    alive = np.arange(n)
    sub = a.pattern()
    k = 0
    while len(alive):
        deg = reduce_rows(sub, PLUS_MONOID)
        peel = np.flatnonzero(deg <= k)
        if len(peel) == 0:
            k = int(deg.min())  # jump straight to the next threshold
            continue
        core[alive[peel]] = k
        keep = np.flatnonzero(deg > k)
        alive = alive[keep]
        sub = sub.extract(rows=keep, cols=keep)
    return core


def strongly_connected_components(a: Matrix, max_iter: int = None) -> np.ndarray:
    """SCC labels of a digraph via forward/backward boolean reachability.

    The classic FW–BW idea restricted to full closures: the reachability
    closure R (boolean squaring) and its transpose identify mutually
    reachable pairs; labels are the min vertex id of each SCC.
    ``O(n³ log n)`` bit-work — appropriate at the detection scales the
    paper targets, with every step a boolean SpGEMM.
    """
    n = check_square(a, "adjacency matrix")
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    from repro.sparse.construct import identity
    from repro.sparse.ewise import ewise_add

    closure = ewise_add(a.pattern(True), identity(n, one=True),
                        op=np.logical_or)
    rounds = max_iter or int(np.ceil(np.log2(max(n, 2)))) + 1
    for _ in range(rounds):
        nxt = ewise_add(closure, mxm(closure, closure, semiring=LOR_LAND),
                        op=np.logical_or)
        if nxt.equal(closure):
            break
        closure = nxt
    mutual = closure.ewise_mult(closure.T, op=np.logical_and)
    # label = min j with mutual(i, j): first stored index per row
    labels = np.empty(n, dtype=np.int64)
    for i in range(n):
        cols, _ = mutual.row(i)
        labels[i] = cols[0]  # diagonal guarantees non-empty
    return labels


def boruvka_msf(a: Matrix) -> Tuple[np.ndarray, float]:
    """Minimum spanning forest by Borůvka rounds.

    Each round, every component finds its minimum outgoing edge — for
    vertices that is one (min, …) reduction over rows restricted to
    cross-component edges — then components merge.  Returns
    ``(edges (m,2) array, total weight)``; ties broken by (weight, u, v)
    for determinism.  The graph must be undirected with positive
    weights.
    """
    n = check_square(a, "adjacency matrix")
    if a.nnz and a.values.min() <= 0:
        raise ValueError("Boruvka requires positive edge weights")
    if not a.equal(a.T):
        raise ValueError("Boruvka requires an undirected (symmetric) graph")
    comp = np.arange(n)
    chosen = set()
    total = 0.0
    rows_all = a.row_ids()
    cols_all = a.indices
    vals_all = a.values
    while True:
        cross = comp[rows_all] != comp[cols_all]
        if not cross.any():
            break
        r, c, v = rows_all[cross], cols_all[cross], vals_all[cross]
        # per-component minimum outgoing edge: lexsort by (comp, w, u, v)
        order = np.lexsort((c, r, v, comp[r]))
        r, c, v = r[order], c[order], v[order]
        firsts = np.flatnonzero(np.r_[True, np.diff(comp[r]) != 0])
        merged_any = False
        for idx in firsts:
            u, w_vert, w = int(r[idx]), int(c[idx]), float(v[idx])
            cu, cv = comp[u], comp[w_vert]
            if cu == cv:
                continue
            edge = (min(u, w_vert), max(u, w_vert))
            if edge not in chosen:
                chosen.add(edge)
                total += w
            comp[comp == max(cu, cv)] = min(cu, cv)
            merged_any = True
        if not merged_any:
            break
    edges = np.asarray(sorted(chosen), dtype=np.intp).reshape(-1, 2)
    return edges, total


def bfs_multi_source(a: Matrix, sources, directed: bool = False) -> np.ndarray:
    """BFS hop distances from the *nearest* of several seeds — one
    shared frontier, the multi-seed variant Graphulo's table BFS exposes
    (and :func:`repro.dbsim.graphulo.table_bfs` mirrors)."""
    from repro.semiring.builtin import ANY_PAIR

    n = check_square(a, "adjacency matrix")
    sources = np.asarray([check_index(s, n, "source") for s in
                          np.atleast_1d(sources)], dtype=np.intp)
    if len(sources) == 0:
        raise ValueError("need at least one source")
    at = a if not directed else a.T
    dist = np.full(n, -1, dtype=np.int64)
    dist[sources] = 0
    frontier = Vector.sparse_ones(n, sources)
    level = 0
    while frontier.nnz:
        level += 1
        nxt = mxv_sparse(at, frontier, semiring=ANY_PAIR)
        fresh = nxt.indices[dist[nxt.indices] < 0]
        if len(fresh) == 0:
            break
        dist[fresh] = level
        frontier = Vector.sparse_ones(n, fresh)
    return dist
