"""Jaccard coefficients — the paper's Algorithm 2, verbatim.

For an unweighted undirected simple graph, ``J_ij = |N(i) ∩ N(j)| /
|N(i) ∪ N(j)|``.  The naive form ``A²_AND ./ A²_OR`` is dense; Algorithm
2 exploits (a) symmetry — only the upper triangle is computed — and (b)
the split ``A = L + U`` with ``L = Uᵀ``:

    ``A² = (U²)ᵀ + U² + UᵀU + UUᵀ``

so the strictly-upper part of the intersection count is
``J = U² + triu(UUᵀ) + triu(UᵀU)`` (minus its diagonal), and the union
count follows from degrees: ``|N(i) ∪ N(j)| = d_i + d_j − J_ij``.
"""

from __future__ import annotations

import numpy as np

from repro.semiring.builtin import LAND, LOR, PLUS_MONOID
from repro.sparse.matrix import Matrix
from repro.sparse.reduce import reduce_rows
from repro.sparse.select import offdiag, triu
from repro.sparse.spgemm import mxm, mxm_dense_reference
from repro.util.validation import check_square


def _check_simple_undirected(a: Matrix) -> None:
    if a.nnz:
        if not np.all(a.values == 1):
            raise ValueError("Jaccard expects an unweighted (0/1) adjacency matrix")
        if np.any(a.indices == a.row_ids()):
            raise ValueError("Jaccard expects no self loops")
    if not a.equal(a.T):
        raise ValueError("Jaccard expects an undirected (symmetric) graph")


def jaccard(a: Matrix) -> Matrix:
    """Algorithm 2: sparse matrix of Jaccard indices (full, symmetric).

    Returns J with ``J_ij`` stored for every vertex pair sharing at
    least one neighbour or edge context (i ≠ j); kernel trace: three
    SpGEMMs on the triangular factor, two triu selects, one Reduce for
    degrees, one SpEWiseX-style value division, one transpose-add.
    """
    check_square(a, "adjacency matrix")
    _check_simple_undirected(a)

    d = reduce_rows(a, PLUS_MONOID)                        # d = sum(A)
    u = triu(a, 1)                                         # U = triu(A)
    x = mxm(u, u.T)                                        # X = UUᵀ
    y = mxm(u.T, u)                                        # Y = UᵀU
    j = mxm(u, u).ewise_add(triu(x)).ewise_add(triu(y))    # J = U²+triu(X)+triu(Y)
    j = offdiag(j).prune()                                 # J = J − diag(J)
    # J_ij ← J_ij / (d_i + d_j − J_ij), on nonzero entries only
    rows = j.row_ids()
    denom = d[rows] + d[j.indices] - j.values
    j = j.with_values(j.values / denom)
    return j.ewise_add(j.T)                                # J = J + Jᵀ


def jaccard_dense(a: Matrix) -> np.ndarray:
    """Naive dense form ``A²_AND ./ A²_OR`` (paper §III-C) — the
    baseline Algorithm 2 improves on.  ⊗ is AND for the numerator and OR
    for the denominator; output is a dense array with zero diagonal.
    """
    check_square(a, "adjacency matrix")
    _check_simple_undirected(a)
    from repro.semiring import Semiring
    from repro.semiring.builtin import PLUS_LAND

    num = mxm_dense_reference(a, a, semiring=PLUS_LAND)
    # OR as ⊗ breaks the annihilator axiom (0 OR 1 = 1) — the paper's own
    # §IV caveat; it is only sound here because the dense reference sees
    # every position, implicit zeros included.
    lor_sr = Semiring("plus_lor", PLUS_MONOID, LOR, one=True)
    den = mxm_dense_reference(a, a, semiring=lor_sr)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(den > 0, num / den, 0.0)
    np.fill_diagonal(out, 0.0)
    return out


def jaccard_pair(a: Matrix, i: int, j: int) -> float:
    """Set-based Jaccard for one vertex pair (oracle/baseline)."""
    check_square(a, "adjacency matrix")
    ni = set(a.row(i)[0].tolist())
    nj = set(a.row(j)[0].tolist())
    union = ni | nj
    if not union:
        return 0.0
    return len(ni & nj) / len(union)
