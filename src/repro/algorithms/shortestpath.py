"""Shortest paths (Table I class 7) on the tropical semiring.

The min-plus semiring turns path relaxation into matrix algebra:

* Bellman–Ford — ``d ← min(d, Aᵀ ⊕.⊗ d)`` is one min-plus SpMV per
  relaxation round;
* all-pairs — ``D^(2t) = D^(t) ⊕.⊗ D^(t)`` squares the distance matrix
  ⌈log₂ n⌉ times (the linear-algebra Floyd–Warshall equivalent);
* Johnson — Bellman–Ford potentials + per-source Dijkstra on the
  reweighted graph (Dijkstra's priority queue is inherently sequential,
  so it lives in :mod:`repro.algorithms.baselines`);
* A* — heuristic-guided point-to-point search (classical form).

Graphs are weighted adjacency matrices with ``A(u, v) = w(u→v)``;
missing entries mean "no edge" (tropical zero = +inf).  Zero-weight
edges must be stored explicitly (use a stored 0.0 value).
"""

from __future__ import annotations

import heapq
from typing import Optional, Tuple

import numpy as np

from repro.semiring.builtin import MIN_PLUS
from repro.sparse.construct import from_coo
from repro.sparse.matrix import Matrix
from repro.sparse.spgemm import mxm
from repro.sparse.spmv import mxv
from repro.util.validation import check_index, check_square

_INF = float("inf")


def bellman_ford(a: Matrix, source: int) -> np.ndarray:
    """Single-source shortest distances by min-plus SpMV relaxation.

    Handles negative edge weights; raises ``ValueError`` on a negative
    cycle reachable from the source (detected by an n-th improving
    round, the classical certificate).
    """
    n = check_square(a, "adjacency matrix")
    source = check_index(source, n, "source")
    at = a.T
    d = np.full(n, _INF)
    d[source] = 0.0
    for _ in range(n - 1):
        relaxed = np.minimum(d, mxv(at, d, semiring=MIN_PLUS))
        if np.array_equal(relaxed, d, equal_nan=False):
            return d
        d = relaxed
    final = np.minimum(d, mxv(at, d, semiring=MIN_PLUS))
    if not np.array_equal(final, d):
        raise ValueError("graph contains a negative cycle reachable from source")
    return d


def _distance_matrix(a: Matrix) -> Matrix:
    """Adjacency → tropical distance matrix: add explicit 0 diagonal
    (multiplicative identity of min-plus)."""
    n = a.nrows
    diag = from_coo(n, n, np.arange(n), np.arange(n), np.zeros(n))
    # union-add with MIN keeps any negative self loop, else 0
    from repro.semiring.builtin import MIN

    return a.ewise_add(diag, op=MIN)


def apsp_min_plus(a: Matrix) -> np.ndarray:
    """All-pairs shortest paths by repeated min-plus squaring:
    ``D^(1) = A ⊕ I₀``, then ⌈log₂(n−1)⌉ SpGEMM squarings.

    Assumes no negative cycles (distances would diverge); ``O(n³ log n)``
    work but only ~log n kernel invocations — the formulation the paper's
    thesis needs, since each squaring is one server-side TableMult.
    """
    n = check_square(a, "adjacency matrix")
    if n == 0:
        return np.zeros((0, 0))
    d = _distance_matrix(a)
    hops = 1
    while hops < n - 1:
        d = mxm(d, d, semiring=MIN_PLUS)
        hops *= 2
    return d.to_dense(fill=_INF)


def floyd_warshall(a: Matrix) -> np.ndarray:
    """Classical Floyd–Warshall (vectorised over the inner two loops) —
    the dense APSP baseline for :func:`apsp_min_plus`.

    Raises ``ValueError`` if a negative cycle exists (negative diagonal).
    """
    n = check_square(a, "adjacency matrix")
    d = a.to_dense(fill=_INF)
    np.fill_diagonal(d, np.minimum(np.diag(d), 0.0))
    for k in range(n):
        # d_ij = min(d_ij, d_ik + d_kj): one outer-sum broadcast per pivot
        via = d[:, k][:, None] + d[k, :][None, :]
        np.minimum(d, via, out=d)
    if n and np.diag(d).min() < 0:
        raise ValueError("graph contains a negative cycle")
    return d


def johnson(a: Matrix) -> np.ndarray:
    """Johnson's APSP: Bellman–Ford potentials h from a virtual source,
    reweight ``w'(u,v) = w + h_u − h_v ≥ 0``, then Dijkstra per source.

    Matches Floyd–Warshall output on negative-weight (cycle-free)
    graphs at ``O(n·m·log n)`` cost; the Bellman–Ford phase runs on the
    min-plus kernels.
    """
    n = check_square(a, "adjacency matrix")
    if n == 0:
        return np.zeros((0, 0))
    # virtual source n with 0-weight edges to all vertices
    rows, cols, vals = a.to_coo()
    aug = from_coo(n + 1, n + 1,
                   np.concatenate([rows, np.full(n, n)]),
                   np.concatenate([cols, np.arange(n)]),
                   np.concatenate([vals, np.zeros(n)]))
    h = bellman_ford(aug, n)[:n]
    # reweight: w'(u,v) = w(u,v) + h_u − h_v  (all ≥ 0)
    rw = vals + h[rows] - h[cols]
    if len(rw) and rw.min() < -1e-9:
        raise AssertionError("reweighting produced a negative edge")
    reweighted = from_coo(n, n, rows, cols, np.maximum(rw, 0.0))
    from repro.algorithms.baselines import dijkstra

    out = np.empty((n, n))
    for s in range(n):
        out[s] = dijkstra(reweighted, s) - h[s] + h
    return out


def astar(a: Matrix, source: int, target: int,
          heuristic: Optional[np.ndarray] = None) -> Tuple[float, list]:
    """A* point-to-point search with an admissible heuristic vector
    ``heuristic[v] ≤ dist(v, target)`` (defaults to all-zero ≡ Dijkstra).

    Returns ``(distance, path)``; ``(inf, [])`` when unreachable.
    Nonnegative edge weights required.
    """
    n = check_square(a, "adjacency matrix")
    source = check_index(source, n, "source")
    target = check_index(target, n, "target")
    if a.nnz and a.values.min() < 0:
        raise ValueError("A* requires nonnegative edge weights")
    if heuristic is None:
        h = np.zeros(n)
    else:
        h = np.asarray(heuristic, dtype=np.float64)
        if h.shape != (n,):
            raise ValueError(f"heuristic must have shape ({n},)")
    dist = np.full(n, _INF)
    dist[source] = 0.0
    parent = np.full(n, -1, dtype=np.int64)
    done = np.zeros(n, dtype=bool)
    heap = [(h[source], source)]
    while heap:
        _, u = heapq.heappop(heap)
        if done[u]:
            continue
        if u == target:
            break
        done[u] = True
        cols, vals = a.row(u)
        for v, w in zip(cols, vals):
            nd = dist[u] + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd + h[v], int(v)))
    if not np.isfinite(dist[target]):
        return _INF, []
    path = [int(target)]
    while path[-1] != source:
        path.append(int(parent[path[-1]]))
    return float(dist[target]), path[::-1]
