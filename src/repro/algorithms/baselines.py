"""Classical (pointer-chasing) implementations of the paper's algorithms.

The benchmark harness compares each linear-algebraic formulation against
the algorithm a systems programmer would write without GraphBLAS —
queues, dicts, and heaps over CSR rows.  Tests also use these as
independent oracles alongside networkx.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.sparse.matrix import Matrix
from repro.util.validation import check_index, check_square


def bfs_classic(a: Matrix, source: int) -> np.ndarray:
    """Queue-based BFS distances (−1 = unreachable)."""
    n = check_square(a, "adjacency matrix")
    source = check_index(source, n, "source")
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    q = deque([source])
    while q:
        u = q.popleft()
        for v in a.row(u)[0]:
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                q.append(int(v))
    return dist


def dijkstra(a: Matrix, source: int) -> np.ndarray:
    """Binary-heap Dijkstra distances (nonnegative weights)."""
    n = check_square(a, "adjacency matrix")
    source = check_index(source, n, "source")
    if a.nnz and a.values.min() < 0:
        raise ValueError("Dijkstra requires nonnegative edge weights")
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap = [(0.0, source)]
    done = np.zeros(n, dtype=bool)
    while heap:
        du, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        cols, vals = a.row(u)
        for v, w in zip(cols, vals):
            nd = du + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, int(v)))
    return dist


def pagerank_classic(a: Matrix, jump: float = 0.15, tol: float = 1e-12,
                     max_iter: int = 1000) -> np.ndarray:
    """Per-edge Python-loop PageRank (the cost the SpMV form avoids)."""
    n = check_square(a, "adjacency matrix")
    if n == 0:
        return np.zeros(0)
    out_deg = np.zeros(n)
    edges: List[Tuple[int, int, float]] = []
    for u in range(n):
        cols, vals = a.row(u)
        out_deg[u] = vals.sum()
        edges.extend((u, int(v), float(w)) for v, w in zip(cols, vals))
    x = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        new = np.full(n, jump / n)
        dangling = 0.0
        for u in range(n):
            if out_deg[u] == 0:
                dangling += x[u]
        for (u, v, w) in edges:
            new[v] += (1 - jump) * x[u] * w / out_deg[u]
        new += (1 - jump) * dangling / n
        if np.abs(new - x).sum() <= tol:
            return new
        x = new
    return x


def triangle_support_classic(edges: np.ndarray, n: int) -> np.ndarray:
    """Per-edge triangle counts via neighbour-set intersection."""
    neigh: List[Set[int]] = [set() for _ in range(n)]
    for u, v in edges:
        neigh[int(u)].add(int(v))
        neigh[int(v)].add(int(u))
    return np.asarray([len(neigh[int(u)] & neigh[int(v)]) for u, v in edges],
                      dtype=np.int64)


def ktruss_classic(edges: np.ndarray, n: int, k: int) -> np.ndarray:
    """Set-based k-truss: repeatedly delete edges with support < k−2.

    Returns the surviving ``(m', 2)`` edge array (original edge order).
    """
    if k < 3:
        raise ValueError(f"k must be >= 3, got {k}")
    edges = [tuple(map(int, e)) for e in np.asarray(edges)]
    neigh: List[Set[int]] = [set() for _ in range(n)]
    for u, v in edges:
        neigh[u].add(v)
        neigh[v].add(u)
    alive = set(edges)
    changed = True
    while changed:
        changed = False
        for (u, v) in list(alive):
            if len(neigh[u] & neigh[v]) < k - 2:
                alive.discard((u, v))
                neigh[u].discard(v)
                neigh[v].discard(u)
                changed = True
    return np.asarray([e for e in edges if e in alive],
                      dtype=np.intp).reshape(-1, 2)


def jaccard_classic(a: Matrix) -> Dict[Tuple[int, int], float]:
    """Set-intersection Jaccard for all vertex pairs with J > 0."""
    n = check_square(a, "adjacency matrix")
    neigh = [set(a.row(u)[0].tolist()) for u in range(n)]
    out: Dict[Tuple[int, int], float] = {}
    for i in range(n):
        # only pairs sharing a neighbour or an edge can have J > 0
        candidates: Set[int] = set()
        for w in neigh[i]:
            candidates |= neigh[w]
        candidates |= neigh[i]
        for j in candidates:
            if j <= i:
                continue
            inter = len(neigh[i] & neigh[j])
            if inter == 0:
                continue
            union = len(neigh[i] | neigh[j])
            out[(i, j)] = inter / union
    return out


def connected_components_classic(a: Matrix) -> np.ndarray:
    """Union-find components labelled by minimum member id."""
    n = check_square(a, "adjacency matrix")
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    rows = a.row_ids()
    for u, v in zip(rows, a.indices):
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    return np.asarray([find(i) for i in range(n)], dtype=np.int64)
