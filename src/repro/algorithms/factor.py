"""Low-rank factorisations: truncated SVD and PCA (Table I lists both
as Community Detection examples alongside NMF).

Randomised subspace iteration (Halko–Martinsson–Tropp): all touches of
the big sparse matrix are kernel operations (``mxd`` sparse×dense
products); the only dense algebra is on thin (n×k) blocks — the same
work split Algorithm 5 uses, so these run under the Graphulo execution
model too.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.sparse.matrix import Matrix
from repro.sparse.reduce import reduce_cols
from repro.sparse.spmv import mxd
from repro.semiring.builtin import PLUS_MONOID
from repro.util.rng import SeedLike, default_rng


@dataclass
class SVDResult:
    """``A ≈ U @ diag(s) @ Vt`` with orthonormal U (m×k), Vt (k×n)."""

    u: np.ndarray
    s: np.ndarray
    vt: np.ndarray


def truncated_svd(a: Matrix, k: int, n_iter: int = 4, oversample: int = 8,
                  seed: SeedLike = None) -> SVDResult:
    """Rank-k randomised SVD of a sparse matrix.

    Power/subspace iteration with ``n_iter`` passes sharpens the
    spectrum separation; ``oversample`` extra probe vectors stabilise
    the range capture.  Accuracy on matrices with decaying spectra is
    within float tolerance of ``numpy.linalg.svd``'s leading block.
    """
    m, n = a.shape
    if not 1 <= k <= min(m, n):
        raise ValueError(f"k must be in [1, {min(m, n)}], got {k}")
    if n_iter < 0:
        raise ValueError(f"n_iter must be >= 0, got {n_iter}")
    rng = default_rng(seed)
    p = min(k + oversample, min(m, n))
    at = a.T
    g = rng.standard_normal((n, p))
    y = mxd(a, g)                       # A·G      (sparse × dense kernel)
    q, _ = np.linalg.qr(y)
    for _ in range(n_iter):
        z = mxd(at, q)                  # Aᵀ·Q
        z, _ = np.linalg.qr(z)
        y = mxd(a, z)                   # A·Z
        q, _ = np.linalg.qr(y)
    b = mxd(at, q).T                    # B = Qᵀ·A  (p × n, small)
    ub, s, vt = np.linalg.svd(b, full_matrices=False)
    u = q @ ub
    return SVDResult(u=u[:, :k], s=s[:k], vt=vt[:k, :])


@dataclass
class PCAResult:
    """Principal components of the rows of A."""

    components: np.ndarray        # (k, n) orthonormal directions
    explained_variance: np.ndarray
    mean: np.ndarray              # column means used for centring
    scores: np.ndarray            # (m, k) projections of the rows


def pca(a: Matrix, k: int, n_iter: int = 4, seed: SeedLike = None) -> PCAResult:
    """PCA of A's rows *without densifying the centring*.

    The centred matrix is ``A − 1·mᵀ``; its products against a thin
    block ``G`` expand as ``A·G − 1·(mᵀG)``, so each subspace-iteration
    step stays one sparse kernel product plus a rank-one dense
    correction.
    """
    m, n = a.shape
    if not 1 <= k <= min(m, n):
        raise ValueError(f"k must be in [1, {min(m, n)}], got {k}")
    if m < 2:
        raise ValueError("PCA needs at least two rows")
    rng = default_rng(seed)
    mean = np.asarray(reduce_cols(a, PLUS_MONOID), dtype=np.float64) / m
    at = a.T

    def centred_mm(g: np.ndarray) -> np.ndarray:
        # (A − 1 mᵀ) G = A·G − 1·(mᵀ G)
        return mxd(a, g) - np.outer(np.ones(m), mean @ g)

    def centred_t_mm(q: np.ndarray) -> np.ndarray:
        # (A − 1 mᵀ)ᵀ Q = Aᵀ·Q − m·(1ᵀ Q)
        return mxd(at, q) - np.outer(mean, q.sum(axis=0))

    p = min(k + 8, min(m, n))
    g = rng.standard_normal((n, p))
    q, _ = np.linalg.qr(centred_mm(g))
    for _ in range(n_iter):
        z, _ = np.linalg.qr(centred_t_mm(q))
        q, _ = np.linalg.qr(centred_mm(z))
    b = centred_t_mm(q).T
    _, s, vt = np.linalg.svd(b, full_matrices=False)
    components = vt[:k]
    explained = (s[:k] ** 2) / (m - 1)
    scores = centred_mm(components.T)
    return PCAResult(components=components, explained_variance=explained,
                     mean=mean, scores=scores)
