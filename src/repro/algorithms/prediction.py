"""Prediction (Table I class 6): link prediction and emerging communities.

Link-prediction scores are kernel compositions over the adjacency
matrix: common neighbours (``A²`` off the support), Jaccard, Adamic–Adar
(``A · diag(1/log d) · A``), truncated Katz (``Σ β^t A^t``), and
preferential attachment — ref [14]'s classic score family.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.algorithms.jaccard import jaccard
from repro.semiring.builtin import PLUS_MONOID, PLUS_PAIR
from repro.sparse.construct import diag_matrix
from repro.sparse.matrix import Matrix
from repro.sparse.reduce import reduce_rows
from repro.sparse.select import offdiag
from repro.sparse.spgemm import mxm
from repro.util.validation import check_square

_SCORES = ("common_neighbors", "jaccard", "adamic_adar", "katz",
           "preferential_attachment")


def _nonedge_entries(a: Matrix, scores: Matrix) -> List[Tuple[int, int, float]]:
    """Stored score entries at non-edge, non-diagonal positions (i < j)."""
    edge_keys = set(zip(a.row_ids().tolist(), a.indices.tolist()))
    out = []
    rows = scores.row_ids()
    for i, j, v in zip(rows, scores.indices, scores.values):
        if i < j and (int(i), int(j)) not in edge_keys and v > 0:
            out.append((int(i), int(j), float(v)))
    return out


def adamic_adar_scores(a: Matrix) -> Matrix:
    """Adamic–Adar: ``S = A · diag(1/log d) · A`` — common neighbours
    weighted down by their degree (d > 1 required to contribute)."""
    check_square(a, "adjacency matrix")
    d = reduce_rows(a.pattern(), PLUS_MONOID)
    w = np.zeros_like(d)
    big = d > 1
    w[big] = 1.0 / np.log(d[big])
    return offdiag(mxm(mxm(a.pattern(), diag_matrix(w)), a.pattern())).prune()


def katz_link_scores(a: Matrix, beta: float = 0.05, hops: int = 4) -> Matrix:
    """Truncated Katz index ``Σ_{t=1..hops} β^t A^t`` (path-count score)."""
    check_square(a, "adjacency matrix")
    if not 0 < beta < 1:
        raise ValueError(f"beta must be in (0, 1), got {beta}")
    if hops < 1:
        raise ValueError(f"hops must be >= 1, got {hops}")
    term = a.pattern()
    total = term.scale(beta)
    power = term
    scale = beta
    for _ in range(hops - 1):
        power = mxm(power, a.pattern())
        scale *= beta
        total = total.ewise_add(power.scale(scale))
    return offdiag(total).prune()


def link_prediction(a: Matrix, method: str = "jaccard",
                    top: int = 10, **kwargs) -> List[Tuple[int, int, float]]:
    """Rank non-adjacent vertex pairs by a similarity score.

    Returns the ``top`` highest-scoring ``(i, j, score)`` candidate
    links (i < j), ties broken by vertex ids for determinism.
    """
    check_square(a, "adjacency matrix")
    if method not in _SCORES:
        raise ValueError(f"method must be one of {_SCORES}, got {method!r}")
    if method == "common_neighbors":
        scores = offdiag(mxm(a.pattern(), a.pattern(),
                             semiring=PLUS_PAIR)).prune()
    elif method == "jaccard":
        scores = jaccard(a.pattern())
    elif method == "adamic_adar":
        scores = adamic_adar_scores(a)
    elif method == "katz":
        scores = katz_link_scores(a, **kwargs)
    else:  # preferential_attachment: d_i * d_j for candidate pairs
        d = reduce_rows(a.pattern(), PLUS_MONOID)
        # candidates = 2-hop pairs (sparse), scored by degree product
        two_hop = offdiag(mxm(a.pattern(), a.pattern(),
                              semiring=PLUS_PAIR)).prune()
        rows = two_hop.row_ids()
        scores = two_hop.with_values(d[rows] * d[two_hop.indices])
    ranked = _nonedge_entries(a, scores)
    ranked.sort(key=lambda t: (-t[2], t[0], t[1]))
    return ranked[:top]


def emerging_communities(a_before: Matrix, a_after: Matrix,
                         top: int = 5) -> List[Tuple[int, float]]:
    """Emerging-community detection (Table I's second Prediction
    example): rank vertices by the *growth* of their triangle count
    between two graph snapshots — ``Δ = diag(A₂³) − diag(A₁³)`` scaled
    by 1/2 — surfacing where dense structure is forming.
    """
    check_square(a_before, "snapshot A")
    check_square(a_after, "snapshot B")
    if a_before.shape != a_after.shape:
        raise ValueError(
            f"snapshots must share a vertex set: {a_before.shape} vs "
            f"{a_after.shape}")

    def tri(m: Matrix) -> np.ndarray:
        p = m.pattern()
        return mxm(mxm(p, p), p).diag() / 2.0

    delta = tri(a_after) - tri(a_before)
    order = np.argsort(-delta, kind="stable")[:top]
    return [(int(v), float(delta[v])) for v in order if delta[v] > 0]
