"""Sorted string-key universes and D4M-flavoured key selection.

Keys are NumPy unicode arrays kept sorted and unique; selection supports
exact key lists, lexicographic ranges (:class:`KeyRange`, matching NoSQL
range scans), and trailing-``*`` prefix globs (D4M's ``"word|*"``
idiom for exploded column families).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

import numpy as np


def to_key_array(keys: Iterable) -> np.ndarray:
    """Normalise an iterable of keys to a 1-D unicode array (as given,
    not deduplicated — callers decide)."""
    arr = np.asarray(list(keys) if not isinstance(keys, np.ndarray) else keys)
    if arr.ndim != 1:
        raise ValueError("keys must be one-dimensional")
    return arr.astype(str)


def sorted_unique(keys: Iterable) -> np.ndarray:
    """Sorted, duplicate-free key universe."""
    return np.unique(to_key_array(keys))


def union_keys(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Union of two sorted key universes (still sorted unique)."""
    return np.union1d(a, b)


def lookup(universe: np.ndarray, keys: np.ndarray, what: str = "key") -> np.ndarray:
    """Positions of ``keys`` in the sorted ``universe``; KeyError if absent."""
    keys = np.asarray(keys)
    if keys.size == 0:
        return np.empty(0, dtype=np.intp)
    pos = np.searchsorted(universe, keys)
    pos_c = np.minimum(pos, len(universe) - 1) if len(universe) else pos
    if len(universe) == 0 or not np.all(universe[pos_c] == keys):
        if len(universe):
            missing = keys[universe[pos_c] != keys]
        else:
            missing = keys
        raise KeyError(f"{what}(s) not present: {missing[:5].tolist()}")
    return pos_c.astype(np.intp)


@dataclass(frozen=True)
class KeyRange:
    """Lexicographic half-open key range ``[start, stop)``.

    ``start=None`` / ``stop=None`` leave that side unbounded — the same
    semantics as a NoSQL range scan, which is what makes associative-
    array sub-referencing cheap on a sorted key-value store.
    """

    start: Optional[str] = None
    stop: Optional[str] = None

    def mask(self, universe: np.ndarray) -> np.ndarray:
        m = np.ones(len(universe), dtype=bool)
        if self.start is not None:
            m &= universe >= self.start
        if self.stop is not None:
            m &= universe < self.stop
        return m


Selector = Union[None, KeyRange, str, Sequence]


def select_keys(universe: np.ndarray, selector: Selector) -> np.ndarray:
    """Indices into ``universe`` chosen by ``selector``.

    * ``None`` / ``":"`` — everything;
    * ``KeyRange`` — lexicographic range;
    * a string ending in ``*`` — prefix glob (``"word|*"``);
    * any other string — that exact key;
    * a sequence — those exact keys, in the given order.
    """
    if selector is None:
        return np.arange(len(universe), dtype=np.intp)
    if isinstance(selector, KeyRange):
        return np.flatnonzero(selector.mask(universe))
    if isinstance(selector, str):
        if selector == ":":
            return np.arange(len(universe), dtype=np.intp)
        if selector.endswith("*"):
            prefix = selector[:-1]
            # prefix glob == range [prefix, prefix + chr(0x10FFFF))
            return np.flatnonzero(
                KeyRange(prefix, prefix + chr(0x10FFFF)).mask(universe))
        return lookup(universe, to_key_array([selector]))
    return lookup(universe, to_key_array(selector))
