"""The AssocArray datatype.

Implements the paper's associative-array semantics (§II-A): entries
carry global row/column string labels; addition unions key sets;
multiplication correlates along the shared key dimension; there are no
empty rows or columns (arrays are *condensed* — their key universes are
exactly the keys with stored entries).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.assoc.keyset import (
    Selector,
    lookup,
    select_keys,
    to_key_array,
    union_keys,
)
from repro.semiring import BinaryOp, Monoid, Semiring
from repro.semiring.builtin import PLUS_MONOID
from repro.sparse.construct import from_coo, zeros
from repro.sparse.matrix import Matrix


class AssocArray:
    """A 2-D associative array: ``(row key, col key) → value``.

    Normally built via :meth:`from_triples`; the raw constructor expects
    sorted-unique key universes aligned with a :class:`Matrix`.
    """

    __slots__ = ("row_keys", "col_keys", "matrix")

    def __init__(self, row_keys, col_keys, matrix: Matrix,
                 _validate: bool = True):
        self.row_keys = to_key_array(row_keys)
        self.col_keys = to_key_array(col_keys)
        self.matrix = matrix
        if _validate:
            if matrix.shape != (len(self.row_keys), len(self.col_keys)):
                raise ValueError(
                    f"matrix shape {matrix.shape} != key universe sizes "
                    f"({len(self.row_keys)}, {len(self.col_keys)})")
            for name, keys in (("row", self.row_keys), ("col", self.col_keys)):
                if len(keys) > 1 and np.any(keys[:-1] >= keys[1:]):
                    raise ValueError(f"{name} keys must be sorted and unique")

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_triples(cls, rows: Iterable, cols: Iterable, values=None,
                     dup: Optional[Monoid] = None) -> "AssocArray":
        """Build from parallel (row key, col key[, value]) sequences.

        Values default to 1 (pattern array — the D4M ingest convention);
        duplicates combine under ``dup`` (default plus, i.e. counting).
        """
        rk = to_key_array(rows)
        ck = to_key_array(cols)
        if rk.shape != ck.shape:
            raise ValueError("rows and cols must have equal length")
        if values is None:
            vals = np.ones(len(rk), dtype=np.float64)
        else:
            vals = np.asarray(values, dtype=np.float64)
            if vals.shape != rk.shape:
                raise ValueError("values must align with rows/cols")
        row_universe = np.unique(rk)
        col_universe = np.unique(ck)
        ri = lookup(row_universe, rk)
        ci = lookup(col_universe, ck)
        m = from_coo(len(row_universe), len(col_universe), ri, ci, vals,
                     dup=dup or PLUS_MONOID)
        return cls(row_universe, col_universe, m, _validate=False).condense()

    @classmethod
    def empty(cls) -> "AssocArray":
        return cls(np.empty(0, dtype=str), np.empty(0, dtype=str),
                   zeros(0, 0), _validate=False)

    # -- basic properties ---------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return self.matrix.shape

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    def triples(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(row keys, col keys, values)`` of all stored entries."""
        r, c, v = self.matrix.to_coo()
        return self.row_keys[r], self.col_keys[c], v

    def to_dict(self) -> dict:
        """``{(row key, col key): value}`` — small-array test helper."""
        r, c, v = self.triples()
        return {(str(a), str(b)): x for a, b, x in zip(r, c, v)}

    def get(self, row: str, col: str, default=0.0):
        """Value at a key pair, or ``default`` when absent."""
        try:
            (ri,) = lookup(self.row_keys, to_key_array([row]))
            (ci,) = lookup(self.col_keys, to_key_array([col]))
        except KeyError:
            return default
        return self.matrix.get(int(ri), int(ci), default)

    def condense(self) -> "AssocArray":
        """Drop key-universe entries with no stored entries (paper:
        associative arrays have no empty rows or columns)."""
        keep_r = self.matrix.row_lengths > 0
        seen_c = np.zeros(self.matrix.ncols, dtype=bool)
        seen_c[self.matrix.indices] = True
        if keep_r.all() and seen_c.all():
            return self
        sub = self.matrix.extract(rows=np.flatnonzero(keep_r),
                                  cols=np.flatnonzero(seen_c))
        return AssocArray(self.row_keys[keep_r], self.col_keys[seen_c], sub,
                          _validate=False)

    # -- key alignment -------------------------------------------------------------

    def _expand_to(self, row_universe: np.ndarray,
                   col_universe: np.ndarray) -> Matrix:
        """Re-index this array's matrix into larger key universes."""
        rmap = lookup(row_universe, self.row_keys)
        cmap = lookup(col_universe, self.col_keys)
        r, c, v = self.matrix.to_coo()
        return from_coo(len(row_universe), len(col_universe),
                        rmap[r], cmap[c], v)

    # -- algebra ---------------------------------------------------------------------

    def ewise_add(self, other: "AssocArray", op: Optional[BinaryOp] = None) -> "AssocArray":
        """Union add: key universes union; common keys combine with
        ``op`` (default plus).  Paper §II-A: "summation ... performs a
        union of their underlying non-zero keys"."""
        ru = union_keys(self.row_keys, other.row_keys)
        cu = union_keys(self.col_keys, other.col_keys)
        m = self._expand_to(ru, cu).ewise_add(other._expand_to(ru, cu), op=op)
        return AssocArray(ru, cu, m, _validate=False).condense()

    def ewise_mult(self, other: "AssocArray", op: Optional[BinaryOp] = None) -> "AssocArray":
        """Intersection multiply on matching key pairs (default times)."""
        ru = union_keys(self.row_keys, other.row_keys)
        cu = union_keys(self.col_keys, other.col_keys)
        m = self._expand_to(ru, cu).ewise_mult(other._expand_to(ru, cu), op=op)
        return AssocArray(ru, cu, m, _validate=False).condense()

    def matmul(self, other: "AssocArray",
               semiring: Optional[Semiring] = None) -> "AssocArray":
        """Key-aligned SpGEMM: correlate ``self``'s columns with
        ``other``'s rows over the union of the inner key universes."""
        inner = union_keys(self.col_keys, other.row_keys)
        a = self._expand_to(self.row_keys, inner)
        b = other._expand_to(inner, other.col_keys)
        return AssocArray(self.row_keys, other.col_keys,
                          a.mxm(b, semiring=semiring),
                          _validate=False).condense()

    def matmul_catkeys(self, other: "AssocArray", sep: str = ";") -> dict:
        """D4M's ``CatKeyMul``: matrix multiply that returns, per output
        key pair, the *list of inner keys* that contributed — provenance
        for a correlation ("these documents connect word A to word B").

        Returns ``{(row key, col key): "k1;k2;..."}`` with contributing
        inner keys sorted and joined by ``sep``.  (String-valued, so it
        returns a dict rather than a numeric AssocArray.)
        """
        from repro.sparse.spgemm import grouped_arange

        inner_universe = union_keys(self.col_keys, other.row_keys)
        a = self._expand_to(self.row_keys, inner_universe)
        b = other._expand_to(inner_universe, other.col_keys)
        b_row_len = np.diff(b.indptr)
        counts = b_row_len[a.indices]
        out_rows = np.repeat(a.row_ids(), counts)
        inner = np.repeat(a.indices, counts)          # contributing t
        gather = grouped_arange(counts, starts=b.indptr[a.indices])
        out_cols = b.indices[gather]
        result: dict = {}
        order = np.lexsort((inner, out_cols, out_rows))
        for idx in order:
            key = (str(self.row_keys[out_rows[idx]]),
                   str(other.col_keys[out_cols[idx]]))
            name = str(inner_universe[inner[idx]])
            if key in result:
                result[key] = result[key] + sep + name
            else:
                result[key] = name
        return result

    def transpose(self) -> "AssocArray":
        return AssocArray(self.col_keys, self.row_keys, self.matrix.T,
                          _validate=False)

    @property
    def T(self) -> "AssocArray":
        return self.transpose()

    def sum_rows(self, monoid: Optional[Monoid] = None) -> "AssocArray":
        """Reduce each row to a single column keyed ``"sum"``."""
        vec = self.matrix.reduce_rows(monoid or PLUS_MONOID)
        m = from_coo(self.shape[0], 1, np.arange(self.shape[0]),
                     np.zeros(self.shape[0], dtype=np.intp), vec)
        return AssocArray(self.row_keys, np.array(["sum"]), m,
                          _validate=False).condense()

    def sum_cols(self, monoid: Optional[Monoid] = None) -> "AssocArray":
        """Reduce each column to a single row keyed ``"sum"``."""
        return self.transpose().sum_rows(monoid).transpose()

    def scale(self, scalar, op: Optional[BinaryOp] = None) -> "AssocArray":
        return AssocArray(self.row_keys, self.col_keys,
                          self.matrix.scale(scalar, op=op), _validate=False)

    def apply(self, op) -> "AssocArray":
        return AssocArray(self.row_keys, self.col_keys, self.matrix.apply(op),
                          _validate=False)

    # -- selection ----------------------------------------------------------------------

    def extract(self, rows: Selector = None, cols: Selector = None) -> "AssocArray":
        """Sub-reference by key selectors (exact keys, :class:`KeyRange`,
        ``"prefix*"`` globs, or ``":"``); result is condensed."""
        ri = select_keys(self.row_keys, rows)
        ci = select_keys(self.col_keys, cols)
        return AssocArray(self.row_keys[ri], self.col_keys[ci],
                          self.matrix.extract(rows=ri, cols=ci),
                          _validate=False).condense()

    def __getitem__(self, key) -> "AssocArray":
        if isinstance(key, tuple) and len(key) == 2:
            return self.extract(rows=key[0], cols=key[1])
        return self.extract(rows=key)

    # -- operator sugar --------------------------------------------------------------------

    def __add__(self, other: "AssocArray") -> "AssocArray":
        return self.ewise_add(other)

    def __mul__(self, other):
        if isinstance(other, AssocArray):
            return self.ewise_mult(other)
        return self.scale(other)

    def __rmul__(self, scalar):
        return self.scale(scalar)

    def __matmul__(self, other: "AssocArray") -> "AssocArray":
        return self.matmul(other)

    def equal(self, other: "AssocArray") -> bool:
        a, b = self.condense(), other.condense()
        return (np.array_equal(a.row_keys, b.row_keys)
                and np.array_equal(a.col_keys, b.col_keys)
                and a.matrix.equal(b.matrix))

    def __repr__(self) -> str:
        return (f"AssocArray({self.shape[0]} rows × {self.shape[1]} cols, "
                f"nnz={self.nnz})")

    def pretty(self, max_entries: int = 25) -> str:
        """Human-readable triple listing (truncated)."""
        r, c, v = self.triples()
        lines = [f"{self!r}"]
        for i in range(min(len(r), max_entries)):
            lines.append(f"  ({r[i]!s}, {c[i]!s}) -> {v[i]}")
        if len(r) > max_entries:
            lines.append(f"  ... {len(r) - max_entries} more")
        return "\n".join(lines)
