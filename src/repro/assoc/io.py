"""Triple-file I/O for associative arrays (D4M-style TSV exchange)."""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.assoc.array import AssocArray
from repro.semiring import Monoid


def write_tsv_triples(a: AssocArray, path: str) -> int:
    """Write ``row<TAB>col<TAB>value`` lines; returns entries written."""
    rows, cols, vals = a.triples()
    with open(path, "w", encoding="utf-8") as fh:
        for r, c, v in zip(rows, cols, vals):
            fh.write(f"{r}\t{c}\t{v}\n")
    return len(rows)


def read_tsv_triples(path: str, dup: Optional[Monoid] = None) -> AssocArray:
    """Read an AssocArray from ``row<TAB>col<TAB>value`` lines.

    Missing third column means value 1 (pattern ingest).  Malformed
    lines raise with the offending line number.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    rows, cols, vals = [], [], []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) == 2:
                r, c = parts
                v = 1.0
            elif len(parts) == 3:
                r, c = parts[0], parts[1]
                try:
                    v = float(parts[2])
                except ValueError as exc:
                    raise ValueError(
                        f"{path}:{lineno}: non-numeric value {parts[2]!r}"
                    ) from exc
            else:
                raise ValueError(
                    f"{path}:{lineno}: expected 2 or 3 tab-separated fields, "
                    f"got {len(parts)}")
            rows.append(r)
            cols.append(c)
            vals.append(v)
    if not rows:
        return AssocArray.empty()
    return AssocArray.from_triples(rows, cols, np.asarray(vals), dup=dup)
