"""D4M-style associative arrays (paper §II-A).

An :class:`AssocArray` is a map from (row key, column key) pairs to a
semiring value set — "a generalization of sparse matrices" whose entries
always carry their global row and column *labels* and which has no empty
rows or columns.  Algebra on associative arrays performs key alignment:
summation unions key sets; multiplication correlates along the shared
dimension (paper: "addition of two arrays represents a union, and the
multiplication of two arrays represents a correlation").

Internally each array is a sorted string-key universe pair plus a
:class:`repro.sparse.Matrix`, matching the paper's methodology of
encoding associative arrays as sparse matrices for algorithmic work.
"""

from repro.assoc.keyset import KeyRange, select_keys, to_key_array, union_keys
from repro.assoc.array import AssocArray
from repro.assoc.io import read_tsv_triples, write_tsv_triples

__all__ = [
    "AssocArray",
    "KeyRange",
    "select_keys",
    "to_key_array",
    "union_keys",
    "read_tsv_triples",
    "write_tsv_triples",
]
