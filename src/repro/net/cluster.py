"""Boot and drive a localhost dbsim cluster.

:class:`LocalCluster` spawns N tablet-server processes plus one
manager process (multiprocessing ``spawn``), wires them together, and
hands out :class:`~repro.net.client.RemoteConnector`\\ s.  It also
exposes the failure-simulation controls tests build scenarios from:
``crash(i)`` / ``recover(i)`` flip one server's crash flag over RPC
(memtables lost, WAL durable — exactly the in-process semantics), and
fault plans passed at construction ride into every server process.

``processes=False`` runs the same services on daemon threads inside
the calling process — same sockets, same wire protocol, none of the
spawn cost; used by fine-grained unit tests, while integration tests
and the CLI run real processes.

Used by the ``repro serve`` / ``repro cluster`` CLI commands and by
``tests/net``.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Union

from repro.net.client import (
    Addr,
    RemoteConnector,
    RetryPolicy,
    format_addr,
)
from repro.net.server import (
    ManagerProcess,
    ManagerService,
    TabletServerProcess,
    TabletServerService,
)
from repro.net.faults import FaultPlan
from repro.obs import sampling as _sampling
from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry


class LocalCluster:
    """N tablet servers + 1 manager on 127.0.0.1, as processes or
    in-process service threads.  Context manager::

        with LocalCluster(n_servers=3).start() as cluster:
            conn = cluster.connect()
            ...
    """

    def __init__(self, n_servers: int = 3,
                 fault_specs: Sequence[str] = (), fault_seed: int = 0,
                 trace_dir: Optional[str] = None,
                 processes: bool = True,
                 host: str = "127.0.0.1", manager_port: int = 0,
                 telemetry_interval: float = 0.0,
                 sample_rate: float = 1.0):
        if n_servers < 1:
            raise ValueError(f"need at least one tablet server, "
                             f"got {n_servers}")
        self.n_servers = n_servers
        self.host = host
        self.manager_port = manager_port
        self.fault_specs = list(fault_specs)
        self.fault_seed = fault_seed
        self.trace_dir = trace_dir
        self.processes = processes
        self.telemetry_interval = telemetry_interval
        self.sample_rate = sample_rate
        self.server_names = [f"tserver{i}" for i in range(n_servers)]
        self._servers: List = []          # process handles or services
        self._manager = None
        self.server_addrs: List[Addr] = []
        self.manager_addr: Optional[Addr] = None
        self._started = False
        self._owns_trace = False
        self._owns_sampling = False

    # -- lifecycle --------------------------------------------------------

    def _trace_path(self, who: str) -> Optional[str]:
        if not self.trace_dir:
            return None
        os.makedirs(self.trace_dir, exist_ok=True)
        return os.path.join(self.trace_dir, f"trace.{who}.jsonl")

    def start(self) -> "LocalCluster":
        if self._started:
            raise RuntimeError("cluster already started")
        if self.processes:
            self._start_processes()
        else:
            self._start_threads()
        self._started = True
        return self

    def _start_processes(self) -> None:
        for i, name in enumerate(self.server_names):
            proc = TabletServerProcess(
                name, fault_specs=self.fault_specs,
                # salt per server: same seed on every server would make
                # the fault streams fire in lockstep
                fault_seed=self.fault_seed + i,
                trace_path=self._trace_path(name), host=self.host,
                sample_rate=self.sample_rate)
            self.server_addrs.append(proc.start())
            self._servers.append(proc)
        self._manager = ManagerProcess(
            list(zip(self.server_names, self.server_addrs)),
            trace_path=self._trace_path("manager"),
            host=self.host, port=self.manager_port,
            telemetry_interval=self.telemetry_interval,
            sample_rate=self.sample_rate)
        self.manager_addr = self._manager.start()

    def _start_threads(self) -> None:
        # thread-mode services share this process, so they share one
        # trace file (each child process gets its own in process mode);
        # never stomp a tracer the caller already enabled (CLI --trace)
        if self.trace_dir and not _trace.is_enabled():
            _trace.enable(_trace.JSONLSink(self._trace_path("cluster"),
                                           process="cluster"))
            self._owns_trace = True
        # one process -> one sampling config; only install it if the
        # caller (CLI / test) hasn't already
        if self.sample_rate < 1.0 and _sampling.active_tail() is None:
            _sampling.configure(self.sample_rate)
            self._owns_sampling = True
        for i, name in enumerate(self.server_names):
            faults = (FaultPlan.from_specs(self.fault_specs,
                                           seed=self.fault_seed + i)
                      if self.fault_specs else None)
            service = TabletServerService(name, faults=faults)
            self.server_addrs.append(service.start(host=self.host))
            self._servers.append(service)
        self._manager = ManagerService(
            list(zip(self.server_names, self.server_addrs)),
            telemetry_interval=self.telemetry_interval)
        self.manager_addr = self._manager.start(host=self.host,
                                                port=self.manager_port)

    def stop(self) -> None:
        if not self._started:
            return
        try:
            # best effort: orderly shutdown through the manager tears
            # down the server listeners too
            conn = self.connect(retry=RetryPolicy(attempts=1,
                                                  deadline=2.0))
            try:
                conn.instance.shutdown_cluster()
            finally:
                conn.close()
        except Exception:  # noqa: BLE001 - teardown is best-effort
            pass
        if self.processes:
            self._manager.stop()
            for proc in self._servers:
                proc.stop()
        else:
            self._manager.stop()
            for service in self._servers:
                service.stop()
        if self._owns_trace:
            _trace.disable(close=True)
            self._owns_trace = False
        if self._owns_sampling:
            _sampling.unconfigure()
            self._owns_sampling = False
        self._started = False

    def __enter__(self) -> "LocalCluster":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- clients ----------------------------------------------------------

    def connect(self, metrics: Optional[MetricsRegistry] = None,
                retry: Optional[RetryPolicy] = None,
                seed: int = 0, compress: bool = False) -> RemoteConnector:
        """A fresh client.  ``compress=True`` turns on per-frame zlib
        for cell payloads (scan chunks, write batches)."""
        if self.manager_addr is None:
            raise RuntimeError("cluster is not started")
        return RemoteConnector(self.manager_addr, metrics=metrics,
                               retry=retry, seed=seed, compress=compress)

    @property
    def manager_addr_str(self) -> str:
        if self.manager_addr is None:
            raise RuntimeError("cluster is not started")
        return format_addr(self.manager_addr)

    # -- failure simulation -----------------------------------------------

    def _name(self, server: Union[int, str]) -> str:
        if isinstance(server, int):
            return self.server_names[server]
        return server

    def crash(self, server: Union[int, str]) -> None:
        """Simulated crash of one server: its memtables are lost, its
        WALs survive, and every data op against it fails typed until
        :meth:`recover`."""
        conn = self.connect(retry=RetryPolicy(attempts=2))
        try:
            conn.instance.crash_server(self._name(server))
        finally:
            conn.close()

    def recover(self, server: Union[int, str],
                replay_wal: bool = True) -> None:
        conn = self.connect(retry=RetryPolicy(attempts=2))
        try:
            conn.instance.recover_server(self._name(server), replay_wal)
        finally:
            conn.close()
