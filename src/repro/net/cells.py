"""Packed binary encoding for cell and mutation batches on the wire.

The hot frames of the RPC fabric — scan ``CHUNK`` payloads and
``WRITE_BATCH`` mutation batches — carry thousands of cells per frame.
Encoding each one as a JSON 7-list spends most of the frame on quoting
and most of the decode on building throwaway Python lists.  This module
packs the same 7-tuples columnar instead::

    !BI                 format version, cell count N
    5 × string column   (row, family, qualifier, visibility, value):
        !{N}I           per-entry byte lengths
        ...             the N UTF-8 entries, concatenated
    !{N}q               timestamps (int64)
    {N}s                delete flags (one byte each, 0/1)

Length-prefixed column arrays decode with two ``struct.unpack_from``
calls per column plus one ``memoryview`` slice per string — no
intermediate list-of-lists, no JSON tokenizer — and the decoder returns
*columns*, which is exactly the shape the engine's bulk paths
(``AssocArray.from_triples``, ``write_raw_batch``) want.  Encoding a
10k-cell chunk is one ``b"".join`` of precomputed parts.

The encoded block is a frame *payload*; :mod:`repro.net.wire` marks it
with ``FLAG_CELLS`` (and optionally ``FLAG_ZLIB`` for per-chunk
compression) so the receiving side never guesses at the format.

Everything crossing this codec is the raw mutation shape ``(row,
family, qualifier, visibility, timestamp, delete, value)`` — cells and
mutations share it (a mutation is just a cell whose timestamp the
server may restamp), so one codec serves both directions.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Tuple

from repro.dbsim.key import Cell, Key

#: bump when the block layout changes; verified on every decode
BLOCK_FORMAT = 1

_HDR = struct.Struct("!BI")

#: (row, family, qualifier, visibility, timestamp, delete, value)
MutTuple = Tuple[str, str, str, str, int, bool, str]

#: indexes of the five string components within a mutation tuple, in
#: block order (timestamps and delete flags are packed separately)
_STR_FIELDS = (0, 1, 2, 3, 6)


class BlockFormatError(ValueError):
    """The block bytes do not parse as a known cell-block layout."""


def encode_block(muts: Sequence[MutTuple]) -> bytes:
    """Pack mutation/cell 7-tuples into one binary block."""
    n = len(muts)
    parts: List[bytes] = [_HDR.pack(BLOCK_FORMAT, n)]
    if n:
        lens_fmt = f"!{n}I"
        for field in _STR_FIELDS:
            encoded = [m[field].encode("utf-8") for m in muts]
            parts.append(struct.pack(lens_fmt, *map(len, encoded)))
            parts.extend(encoded)
        parts.append(struct.pack(f"!{n}q", *(m[4] for m in muts)))
        parts.append(bytes(1 if m[5] else 0 for m in muts))
    return b"".join(parts)


def decode_columns(buf) -> Tuple[List[str], List[str], List[str],
                                 List[str], List[int], List[bool],
                                 List[str]]:
    """Unpack a block into parallel columns ``(rows, families,
    qualifiers, visibilities, timestamps, deletes, values)``.

    ``buf`` may be ``bytes``, ``bytearray`` or ``memoryview``; string
    bytes are sliced out of a single memoryview (no per-column copy of
    the blob) and decoded straight to ``str``.
    """
    view = memoryview(buf)
    if len(view) < _HDR.size:
        raise BlockFormatError(f"cell block too short: {len(view)} bytes")
    fmt, n = _HDR.unpack_from(view, 0)
    if fmt != BLOCK_FORMAT:
        raise BlockFormatError(f"cell block format {fmt} != supported "
                               f"{BLOCK_FORMAT}")
    off = _HDR.size
    str_cols: List[List[str]] = []
    try:
        lens_fmt = f"!{n}I"
        lens_size = 4 * n
        for _ in _STR_FIELDS:
            lens = struct.unpack_from(lens_fmt, view, off)
            off += lens_size
            total = sum(lens)
            col: List[str]
            if not total:
                # empty column (family/visibility are usually all "")
                col = [""] * n
            else:
                blob = str(view[off:off + total], "utf-8")
                col = []
                append = col.append
                pos = 0
                if len(blob) == total:
                    # pure ASCII: char offsets == byte offsets, so the
                    # column decodes with ONE utf-8 pass + str slices
                    for ln in lens:
                        append(blob[pos:pos + ln])
                        pos += ln
                else:
                    raw = view[off:off + total]
                    for ln in lens:
                        append(str(raw[pos:pos + ln], "utf-8"))
                        pos += ln
            off += total
            str_cols.append(col)
        timestamps = list(struct.unpack_from(f"!{n}q", view, off))
        off += 8 * n
        flags = view[off:off + n]
        if len(flags) != n:
            raise struct.error("truncated delete flags")
        deletes = [b != 0 for b in flags]
    except (struct.error, ValueError, UnicodeDecodeError) as exc:
        raise BlockFormatError(f"undecodable cell block: {exc}") from exc
    rows, fams, quals, vis, vals = str_cols
    return rows, fams, quals, vis, timestamps, deletes, vals


def decode_mutations(buf) -> List[MutTuple]:
    """Unpack a block into the row-major 7-tuples the tablet write
    path applies."""
    rows, fams, quals, vis, ts, dels, vals = decode_columns(buf)
    return list(zip(rows, fams, quals, vis, ts, dels, vals))


def cells_to_block(cells: Iterable[Cell]) -> bytes:
    """Encode finished cells (timestamps already stamped)."""
    return encode_block([
        (c.key.row, c.key.family, c.key.qualifier, c.key.visibility,
         c.key.timestamp, c.key.delete, c.value)
        for c in cells])


def block_to_cells(buf) -> List[Cell]:
    """Decode a block back into :class:`~repro.dbsim.key.Cell`\\ s.

    Builds the frozen dataclasses the way pickle does — ``__new__``
    plus a ``__dict__`` fill — because the generated ``__init__`` of a
    frozen dataclass pays one guarded ``object.__setattr__`` per field,
    which at tens of thousands of cells per scan chunk is the single
    hottest line of the client decode path.
    """
    rows, fams, quals, vis, ts, dels, vals = decode_columns(buf)
    key_new, cell_new = Key.__new__, Cell.__new__
    out: List[Cell] = []
    append = out.append
    for r, f, q, v, t, d, val in zip(rows, fams, quals, vis, ts, dels,
                                     vals):
        key = key_new(Key)
        key.__dict__.update(row=r, family=f, qualifier=q, visibility=v,
                            timestamp=t, delete=d)
        cell = cell_new(Cell)
        cell.__dict__.update(key=key, value=val)
        append(cell)
    return out
