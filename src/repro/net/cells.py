"""Packed binary encoding for cell and mutation batches on the wire.

The hot frames of the RPC fabric — scan ``CHUNK`` payloads and
``WRITE_BATCH`` mutation batches — carry thousands of cells per frame.
Encoding each one as a JSON 7-list spends most of the frame on quoting
and most of the decode on building throwaway Python lists.  This module
packs the same 7-tuples columnar instead::

    !BI                 format version, cell count N
    5 × string column   (row, family, qualifier, visibility, value):
        !{N}I           per-entry byte lengths
        ...             the N UTF-8 entries, concatenated
    !{N}q               timestamps (int64)
    {N}s                delete flags (one byte each, 0/1)

Length-prefixed column arrays decode with two ``struct.unpack_from``
calls per column plus one ``memoryview`` slice per string — no
intermediate list-of-lists, no JSON tokenizer — and the decoder returns
*columns*, which is exactly the shape the engine's bulk paths
(``AssocArray.from_triples``, ``write_raw_batch``) want.  Encoding a
10k-cell chunk is one ``b"".join`` of precomputed parts.

The columnar shape now has a first-class carrier: :class:`ColumnBatch`
holds the seven parallel columns (timestamps as ``array('q')``) and is
what the scan pipeline moves end to end — tablet drain, CHUNK encode,
client decode, engine consumption — materialising ``Cell`` objects only
when a caller actually iterates per cell (:meth:`ColumnBatch.cells`).

The encoded block is a frame *payload*; :mod:`repro.net.wire` marks it
with ``FLAG_CELLS`` (and optionally ``FLAG_ZLIB`` for per-chunk
compression) so the receiving side never guesses at the format.

Everything crossing this codec is the raw mutation shape ``(row,
family, qualifier, visibility, timestamp, delete, value)`` — cells and
mutations share it (a mutation is just a cell whose timestamp the
server may restamp), so one codec serves both directions.
"""

from __future__ import annotations

import struct
import sys
from array import array
from itertools import accumulate
from typing import Iterable, List, Sequence, Tuple

from repro.dbsim.key import Cell, Key

#: bump when the block layout changes; verified on every decode
BLOCK_FORMAT = 1

_HDR = struct.Struct("!BI")

#: (row, family, qualifier, visibility, timestamp, delete, value)
MutTuple = Tuple[str, str, str, str, int, bool, str]

#: indexes of the five string components within a mutation tuple, in
#: block order (timestamps and delete flags are packed separately)
_STR_FIELDS = (0, 1, 2, 3, 6)

_LITTLE = sys.byteorder == "little"
#: array typecodes are only usable as wire codecs when their itemsize
#: matches the block layout exactly (4-byte lengths, 8-byte timestamps)
_ARR_I4 = array("I").itemsize == 4
_ARR_Q8 = array("q").itemsize == 8
#: below this count a ``struct.pack`` splat beats array+byteswap setup
_SPLAT_CUTOFF = 64


class BlockFormatError(ValueError):
    """The block bytes do not parse as a known cell-block layout."""


def _pack_u32(values, n: int) -> bytes:
    """Big-endian uint32 array; ``values`` may be any iterable of n
    ints.  Large columns go through ``array`` + ``byteswap`` (both C
    loops) instead of splatting n arguments into ``struct.pack``."""
    if n >= _SPLAT_CUTOFF and _ARR_I4:
        arr = array("I", values)
        if _LITTLE:
            arr.byteswap()
        return arr.tobytes()
    return struct.pack("!%dI" % n, *values)


def _pack_i64(values, n: int) -> bytes:
    """Big-endian int64 array (copies, so a caller's ``array('q')`` is
    never byteswapped in place)."""
    if n >= _SPLAT_CUTOFF and _ARR_Q8:
        arr = array("q", values)
        if _LITTLE:
            arr.byteswap()
        return arr.tobytes()
    return struct.pack("!%dq" % n, *values)


def encode_block(muts: Sequence[MutTuple]) -> bytes:
    """Pack mutation/cell 7-tuples into one binary block.

    One pass over ``muts`` fills the five per-column byte lists, the
    timestamp list and the delete bitmap together; each column is then
    one length-array pack plus one ``b"".join``.
    """
    n = len(muts)
    if not n:
        return _HDR.pack(BLOCK_FORMAT, 0)
    rows: List[bytes] = []
    fams: List[bytes] = []
    quals: List[bytes] = []
    viss: List[bytes] = []
    vals: List[bytes] = []
    ts: List[int] = []
    flags = bytearray(n)
    i = 0
    for row, fam, qual, vis, t, d, val in muts:
        rows.append(row.encode("utf-8"))
        fams.append(fam.encode("utf-8"))
        quals.append(qual.encode("utf-8"))
        viss.append(vis.encode("utf-8"))
        vals.append(val.encode("utf-8"))
        ts.append(t)
        if d:
            flags[i] = 1
        i += 1
    parts: List[bytes] = [_HDR.pack(BLOCK_FORMAT, n)]
    for col in (rows, fams, quals, viss, vals):
        parts.append(_pack_u32(map(len, col), n))
        parts.append(b"".join(col))
    parts.append(_pack_i64(ts, n))
    parts.append(bytes(flags))
    return b"".join(parts)


def encode_columns(rows: Sequence[str], families: Sequence[str],
                   qualifiers: Sequence[str], visibilities: Sequence[str],
                   timestamps, deletes, values: Sequence[str]) -> bytes:
    """Pack seven parallel columns into one binary block — the columnar
    twin of :func:`encode_block` (no per-cell tuples anywhere).

    ``timestamps`` may be any int sequence (``array('q')`` included);
    ``deletes`` may be a bool sequence or a ``bytes``/``bytearray``
    bitmap.
    """
    n = len(rows)
    if not n:
        return _HDR.pack(BLOCK_FORMAT, 0)
    parts: List[bytes] = [_HDR.pack(BLOCK_FORMAT, n)]
    for col in (rows, families, qualifiers, visibilities, values):
        blob = "".join(col)
        data = blob.encode("utf-8")
        if len(data) == len(blob):
            # pure ASCII: byte lengths == str lengths, so the column
            # encodes with ONE join + ONE encode instead of n encodes
            parts.append(_pack_u32(map(len, col), n))
        else:
            enc = [s.encode("utf-8") for s in col]
            parts.append(_pack_u32(map(len, enc), n))
            data = b"".join(enc)
        parts.append(data)
    parts.append(_pack_i64(timestamps, n))
    if isinstance(deletes, (bytes, bytearray)):
        parts.append(bytes(deletes))
    else:
        parts.append(bytes(1 if d else 0 for d in deletes))
    return b"".join(parts)


def _parse(buf) -> Tuple[List[str], List[str], List[str], List[str],
                         array, List[bool], List[str]]:
    """Shared block parser: columns out, timestamps as ``array('q')``."""
    view = memoryview(buf)
    if len(view) < _HDR.size:
        raise BlockFormatError(f"cell block too short: {len(view)} bytes")
    fmt, n = _HDR.unpack_from(view, 0)
    if fmt != BLOCK_FORMAT:
        raise BlockFormatError(f"cell block format {fmt} != supported "
                               f"{BLOCK_FORMAT}")
    off = _HDR.size
    str_cols: List[List[str]] = []
    try:
        lens_fmt = f"!{n}I"
        lens_size = 4 * n
        for _ in _STR_FIELDS:
            lens = struct.unpack_from(lens_fmt, view, off)
            off += lens_size
            total = sum(lens)
            col: List[str]
            if not total:
                # empty column (family/visibility are usually all "")
                col = [""] * n
            else:
                blob = str(view[off:off + total], "utf-8")
                if len(blob) == total:
                    # pure ASCII: char offsets == byte offsets, so the
                    # column decodes with ONE utf-8 pass + str slices;
                    # map(getitem, map(slice, ...)) keeps the per-entry
                    # work in C instead of interpreter dispatch
                    if total == n and max(lens) == 1:
                        # every entry is one char (family/qualifier
                        # columns usually are): list() splits in C
                        col = list(blob)
                    else:
                        bounds = list(accumulate(lens, initial=0))
                        col = list(map(blob.__getitem__,
                                       map(slice, bounds, bounds[1:])))
                else:
                    raw = view[off:off + total]
                    col = []
                    append = col.append
                    pos = 0
                    for ln in lens:
                        append(str(raw[pos:pos + ln], "utf-8"))
                        pos += ln
            off += total
            str_cols.append(col)
        if len(view) - off < 8 * n:
            raise struct.error("truncated timestamps")
        if _ARR_Q8:
            timestamps = array("q")
            timestamps.frombytes(view[off:off + 8 * n])
            if _LITTLE:
                timestamps.byteswap()
        else:  # pragma: no cover - exotic ABI
            timestamps = array("q", struct.unpack_from(f"!{n}q", view,
                                                       off))
        off += 8 * n
        flags = view[off:off + n]
        if len(flags) != n:
            raise struct.error("truncated delete flags")
        # scans carry no deletes (versioning eats them server-side), so
        # the all-zero bitmap short-circuits in C via any()
        deletes = [b != 0 for b in flags] if any(flags) else [False] * n
    except (struct.error, ValueError, UnicodeDecodeError) as exc:
        raise BlockFormatError(f"undecodable cell block: {exc}") from exc
    rows, fams, quals, vis, vals = str_cols
    return rows, fams, quals, vis, timestamps, deletes, vals


class ColumnBatch:
    """A batch of cells kept as seven parallel columns.

    This is the unit the zero-materialization scan path moves: the
    tablet drains its merge iterator into one, the server encodes the
    CHUNK block straight from it, the client decodes the block back
    into one, and the engine's bulk consumers (``from_triples``,
    ``degree_table``, BFS frontiers) read the columns directly.
    ``Cell``/``Key`` dataclasses exist only if someone calls
    :meth:`cells`.
    """

    __slots__ = ("rows", "families", "qualifiers", "visibilities",
                 "timestamps", "deletes", "values")

    def __init__(self, rows: List[str], families: List[str],
                 qualifiers: List[str], visibilities: List[str],
                 timestamps: array, deletes: List[bool],
                 values: List[str]):
        self.rows = rows
        self.families = families
        self.qualifiers = qualifiers
        self.visibilities = visibilities
        self.timestamps = timestamps
        self.deletes = deletes
        self.values = values

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ColumnBatch):
            return NotImplemented
        return (self.rows == other.rows
                and self.families == other.families
                and self.qualifiers == other.qualifiers
                and self.visibilities == other.visibilities
                and list(self.timestamps) == list(other.timestamps)
                and self.deletes == other.deletes
                and self.values == other.values)

    @classmethod
    def empty(cls) -> "ColumnBatch":
        return cls([], [], [], [], array("q"), [], [])

    @classmethod
    def from_cells(cls, cells: Iterable[Cell]) -> "ColumnBatch":
        rows: List[str] = []
        fams: List[str] = []
        quals: List[str] = []
        viss: List[str] = []
        ts: List[int] = []
        dels: List[bool] = []
        vals: List[str] = []
        for c in cells:
            k = c.key
            rows.append(k.row)
            fams.append(k.family)
            quals.append(k.qualifier)
            viss.append(k.visibility)
            ts.append(k.timestamp)
            dels.append(k.delete)
            vals.append(c.value)
        return cls(rows, fams, quals, viss, array("q", ts), dels, vals)

    def cells(self) -> List[Cell]:
        """Materialise per-cell objects — the lazy escape hatch.

        Same pickle-style ``__new__`` + ``__dict__`` construction as
        :func:`block_to_cells` (and bit-identical to it)."""
        key_new, cell_new = Key.__new__, Cell.__new__
        out: List[Cell] = []
        append = out.append
        for r, f, q, v, t, d, val in zip(self.rows, self.families,
                                         self.qualifiers,
                                         self.visibilities,
                                         self.timestamps, self.deletes,
                                         self.values):
            key = key_new(Key)
            key.__dict__.update(row=r, family=f, qualifier=q,
                                visibility=v, timestamp=t, delete=d)
            cell = cell_new(Cell)
            cell.__dict__.update(key=key, value=val)
            append(cell)
        return out

    def to_block(self) -> bytes:
        return encode_columns(self.rows, self.families, self.qualifiers,
                              self.visibilities, self.timestamps,
                              self.deletes, self.values)

    def last_key(self) -> List:
        """Resume token ``[row, family, qualifier, visibility,
        timestamp, delete]`` of the final entry."""
        i = len(self.rows) - 1
        return [self.rows[i], self.families[i], self.qualifiers[i],
                self.visibilities[i], self.timestamps[i],
                self.deletes[i]]

    def select(self, indices: Sequence[int]) -> "ColumnBatch":
        """A new batch holding only the entries at ``indices``."""
        rows, fams = self.rows, self.families
        quals, viss = self.qualifiers, self.visibilities
        ts, dels, vals = self.timestamps, self.deletes, self.values
        return ColumnBatch([rows[i] for i in indices],
                           [fams[i] for i in indices],
                           [quals[i] for i in indices],
                           [viss[i] for i in indices],
                           array("q", (ts[i] for i in indices)),
                           [dels[i] for i in indices],
                           [vals[i] for i in indices])

    def extend(self, other: "ColumnBatch") -> None:
        """Append ``other``'s entries in place (chunk coalescing)."""
        self.rows.extend(other.rows)
        self.families.extend(other.families)
        self.qualifiers.extend(other.qualifiers)
        self.visibilities.extend(other.visibilities)
        self.timestamps.extend(other.timestamps)
        self.deletes.extend(other.deletes)
        self.values.extend(other.values)


def decode_batch(buf) -> ColumnBatch:
    """Unpack a block into a :class:`ColumnBatch` (no ``Cell``\\ s)."""
    return ColumnBatch(*_parse(buf))


def decode_columns(buf) -> Tuple[List[str], List[str], List[str],
                                 List[str], List[int], List[bool],
                                 List[str]]:
    """Unpack a block into parallel columns ``(rows, families,
    qualifiers, visibilities, timestamps, deletes, values)``.

    ``buf`` may be ``bytes``, ``bytearray`` or ``memoryview``; string
    bytes are sliced out of a single memoryview (no per-column copy of
    the blob) and decoded straight to ``str``.  Timestamps come back as
    a plain ``List[int]``; bulk callers that can use ``array('q')``
    directly should prefer :func:`decode_batch`.
    """
    rows, fams, quals, vis, ts, dels, vals = _parse(buf)
    return rows, fams, quals, vis, ts.tolist(), dels, vals


def decode_mutations(buf) -> List[MutTuple]:
    """Unpack a block into the row-major 7-tuples the tablet write
    path applies."""
    rows, fams, quals, vis, ts, dels, vals = _parse(buf)
    return list(zip(rows, fams, quals, vis, ts, dels, vals))


def cells_to_block(cells: Iterable[Cell]) -> bytes:
    """Encode finished cells (timestamps already stamped)."""
    return encode_block([
        (c.key.row, c.key.family, c.key.qualifier, c.key.visibility,
         c.key.timestamp, c.key.delete, c.value)
        for c in cells])


def block_to_cells(buf) -> List[Cell]:
    """Decode a block back into :class:`~repro.dbsim.key.Cell`\\ s.

    Builds the frozen dataclasses the way pickle does — ``__new__``
    plus a ``__dict__`` fill — because the generated ``__init__`` of a
    frozen dataclass pays one guarded ``object.__setattr__`` per field,
    which at tens of thousands of cells per scan chunk is the single
    hottest line of the client decode path.
    """
    return ColumnBatch(*_parse(buf)).cells()
