"""Wire-serializable iterator-stack specs — server-side push-down.

The paper's central mechanism is that graph kernels run *inside* the
tablet servers' iterator stacks, not client-side over raw cells.  This
module is the spec language that makes that safe over RPC: a scan
request may attach a declarative, validated description of an iterator
chain — column projection, regex / numeric-predicate / age-off
filters, versioning limits, the Summing/Min/Max combiners, named Apply
ops, and a Reduce/fold terminal — and the server constructs the
matching :mod:`repro.dbsim.iterators` chain from a whitelist of op
names.  **No code ever crosses the wire**: the spec is plain JSON
(a list of ``{"op": name, ...}`` dicts), every name and argument is
validated on both ends, and anything outside the whitelist is rejected
with a typed :class:`IterSpecError` before a stack is built.

Because both backends build the chain from the *same* factories, a
spec executed server-side is bit-identical (timestamps included) to
the client-side execution of the equivalent iterators — the contract
the test suite enforces under fault injection.

Spec grammar (wire form — ``IterSpec.to_wire()`` / ``from_wire()``)::

    [{"op": "column",       "qualifiers": ["q1", ...]},
     {"op": "regex",        "row": R?, "qualifier": Q?, "value": V?},
     {"op": "value_filter", "cmp": "gt|ge|lt|le|eq|ne", "threshold": x},
     {"op": "age_off",      "cutoff": ts},
     {"op": "versions",     "max_versions": n},
     {"op": "combiner",     "fn": "sum|min|max"},
     {"op": "apply",        "name": N, "args": [...], "drop_zero": b},
     {"op": "reduce",       "fn": "sum|min|max", "family": f,
                            "qualifier": q, "count": b}]

Ops apply top-to-bottom in list order; ``reduce`` (one output cell per
row — Graphulo's fold terminal, ``fn`` naming the semiring ⊕) must be
the last op.  Apply ops come from the :data:`APPLY_OPS` registry of
named unary numeric functions.
"""

from __future__ import annotations

import operator
import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.dbsim.iterators import (
    AgeOffIterator,
    ApplyIterator,
    ColumnFilterIterator,
    MaxCombiner,
    MinCombiner,
    PredicateFilterIterator,
    RegexFilterIterator,
    RowReduceIterator,
    SortedKVIterator,
    VersioningIterator,
    SummingCombiner,
)

IteratorFactory = Callable[[SortedKVIterator], SortedKVIterator]


class IterSpecError(ValueError):
    """An iterator spec failed validation: unknown op or apply name,
    missing / mistyped argument, or a misplaced ``reduce`` terminal.
    Raised client-side at build time and server-side before a stack is
    installed — the server never executes an unvalidated spec."""


class NonSerializableIteratorError(ValueError):
    """A user-supplied scan iterator (arbitrary local callable) cannot
    run server-side: only whitelisted iterspec op names cross the wire.
    Run the callable client-side via ``Scanner`` iteration, or express
    the stack as an :class:`IterSpec`."""


# -- named Apply ops --------------------------------------------------------

#: name → (arity, maker(*args) → unary fn).  The only value transforms
#: a spec may name; arbitrary callables never cross the wire.
APPLY_OPS: Dict[str, Tuple[int, Callable[..., Callable[[float], float]]]] = {
    "abs": (0, lambda: abs),
    "negate": (0, lambda: lambda v: -v),
    "sign": (0, lambda: lambda v: (v > 0) - (v < 0)),
    "square": (0, lambda: lambda v: v * v),
    "invert": (0, lambda: lambda v: 1.0 / v if v else 0.0),
    "scale": (1, lambda k: lambda v: v * k),
    "add": (1, lambda k: lambda v: v + k),
    "pow": (1, lambda k: lambda v: v ** k),
    "clip": (2, lambda lo, hi: lambda v: min(max(v, lo), hi)),
}

_CMPS = {"gt": operator.gt, "ge": operator.ge, "lt": operator.lt,
         "le": operator.le, "eq": operator.eq, "ne": operator.ne}

_MONOIDS = ("sum", "min", "max")

_COMBINERS = {"sum": SummingCombiner, "min": MinCombiner, "max": MaxCombiner}


# -- validation -------------------------------------------------------------


def _want(op: dict, field: str, kinds, what: str):
    if field not in op:
        raise IterSpecError(f"op {op.get('op')!r} missing field {field!r}")
    val = op[field]
    if not isinstance(val, kinds) or isinstance(val, bool) and bool not in (
            kinds if isinstance(kinds, tuple) else (kinds,)):
        raise IterSpecError(
            f"op {op.get('op')!r} field {field!r} must be {what}, "
            f"got {val!r}")
    return val


def _check_column(op: dict) -> dict:
    quals = _want(op, "qualifiers", (list, tuple), "a list of strings")
    if not quals or not all(isinstance(q, str) for q in quals):
        raise IterSpecError(
            f"column op needs a non-empty list of string qualifiers, "
            f"got {quals!r}")
    return {"op": "column", "qualifiers": [str(q) for q in quals]}


def _check_regex(op: dict) -> dict:
    out: dict = {"op": "regex"}
    any_set = False
    for field in ("row", "qualifier", "value"):
        pat = op.get(field)
        if pat is None:
            out[field] = None
            continue
        if not isinstance(pat, str):
            raise IterSpecError(
                f"regex op field {field!r} must be a string pattern, "
                f"got {pat!r}")
        try:
            re.compile(pat)
        except re.error as exc:
            raise IterSpecError(
                f"regex op field {field!r} does not compile: {exc}")
        out[field] = pat
        any_set = True
    if not any_set:
        raise IterSpecError("regex op needs at least one of "
                            "row/qualifier/value")
    return out


def _is_num(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def _check_value_filter(op: dict) -> dict:
    cmp = _want(op, "cmp", str, "a comparison name")
    if cmp not in _CMPS:
        raise IterSpecError(f"unknown value_filter cmp {cmp!r}; "
                            f"known: {sorted(_CMPS)}")
    threshold = op.get("threshold")
    if not _is_num(threshold):
        raise IterSpecError(f"value_filter threshold must be a number, "
                            f"got {threshold!r}")
    return {"op": "value_filter", "cmp": cmp, "threshold": threshold}


def _check_age_off(op: dict) -> dict:
    cutoff = op.get("cutoff")
    if not isinstance(cutoff, int) or isinstance(cutoff, bool):
        raise IterSpecError(f"age_off cutoff must be an integer "
                            f"timestamp, got {cutoff!r}")
    return {"op": "age_off", "cutoff": cutoff}


def _check_versions(op: dict) -> dict:
    mv = op.get("max_versions")
    if not isinstance(mv, int) or isinstance(mv, bool) or mv < 1:
        raise IterSpecError(f"versions max_versions must be an integer "
                            f">= 1, got {mv!r}")
    return {"op": "versions", "max_versions": mv}


def _check_combiner(op: dict) -> dict:
    fn = _want(op, "fn", str, "a combiner name")
    if fn not in _COMBINERS:
        raise IterSpecError(f"unknown combiner fn {fn!r}; "
                            f"known: {sorted(_COMBINERS)}")
    return {"op": "combiner", "fn": fn}


def _check_apply(op: dict) -> dict:
    name = _want(op, "name", str, "an apply-op name")
    if name not in APPLY_OPS:
        raise IterSpecError(f"unknown apply op {name!r}; "
                            f"known: {sorted(APPLY_OPS)}")
    arity, _ = APPLY_OPS[name]
    args = op.get("args", [])
    if not isinstance(args, (list, tuple)) or len(args) != arity \
            or not all(_is_num(a) for a in args):
        raise IterSpecError(
            f"apply op {name!r} takes {arity} numeric arg(s), "
            f"got {args!r}")
    drop_zero = op.get("drop_zero", True)
    if not isinstance(drop_zero, bool):
        raise IterSpecError(f"apply drop_zero must be a bool, "
                            f"got {drop_zero!r}")
    return {"op": "apply", "name": name, "args": list(args),
            "drop_zero": drop_zero}


def _check_reduce(op: dict) -> dict:
    fn = _want(op, "fn", str, "a monoid name")
    if fn not in _MONOIDS:
        raise IterSpecError(f"unknown reduce fn {fn!r}; "
                            f"known: {sorted(_MONOIDS)}")
    family = op.get("family", "")
    qualifier = op.get("qualifier", "deg")
    if not isinstance(family, str) or not isinstance(qualifier, str):
        raise IterSpecError(f"reduce family/qualifier must be strings, "
                            f"got {family!r}/{qualifier!r}")
    count = op.get("count", False)
    if not isinstance(count, bool):
        raise IterSpecError(f"reduce count must be a bool, got {count!r}")
    return {"op": "reduce", "fn": fn, "family": family,
            "qualifier": qualifier, "count": count}


_CHECKS = {
    "column": _check_column,
    "regex": _check_regex,
    "value_filter": _check_value_filter,
    "age_off": _check_age_off,
    "versions": _check_versions,
    "combiner": _check_combiner,
    "apply": _check_apply,
    "reduce": _check_reduce,
}


# -- factory builders -------------------------------------------------------


def _numeric_pred(cmp: str, threshold: float) -> Callable:
    fn = _CMPS[cmp]

    def pred(cell) -> bool:
        try:
            val = float(cell.value)
        except (TypeError, ValueError):
            return False  # non-numeric cells never satisfy a value cmp
        return fn(val, threshold)

    return pred


def _build(op: dict) -> IteratorFactory:
    kind = op["op"]
    if kind == "column":
        quals = tuple(op["qualifiers"])
        return lambda src: ColumnFilterIterator(src, quals)
    if kind == "regex":
        return lambda src: RegexFilterIterator(
            src, row=op["row"], qualifier=op["qualifier"],
            value=op["value"])
    if kind == "value_filter":
        pred = _numeric_pred(op["cmp"], op["threshold"])
        return lambda src: PredicateFilterIterator(src, pred)
    if kind == "age_off":
        cutoff = op["cutoff"]
        return lambda src: AgeOffIterator(src, cutoff)
    if kind == "versions":
        mv = op["max_versions"]
        return lambda src: VersioningIterator(src, mv)
    if kind == "combiner":
        return _COMBINERS[op["fn"]]
    if kind == "apply":
        arity, maker = APPLY_OPS[op["name"]]
        fn = maker(*op["args"])
        drop_zero = op["drop_zero"]
        return lambda src: ApplyIterator(src, fn, drop_zero=drop_zero)
    if kind == "reduce":
        return lambda src: RowReduceIterator(
            src, op=op["fn"], family=op["family"],
            qualifier=op["qualifier"], count=op["count"])
    raise IterSpecError(f"unknown op {kind!r}")  # pragma: no cover


# -- the spec ---------------------------------------------------------------


class IterSpec:
    """An immutable, validated iterator-stack spec.

    Build fluently — each method returns a *new* spec with one more op
    appended (validation runs on every append)::

        spec = (IterSpec()
                .column_filter(["w"])
                .value_gt(2.0)
                .reduce("sum", qualifier="deg", count=True))

    ``to_wire()`` / ``from_wire()`` round-trip the JSON wire form;
    ``build_factories()`` yields the ``scan_iterators`` factory tuple
    both backends install — the same chain code either way, which is
    what makes local and remote execution bit-identical.
    """

    __slots__ = ("ops",)

    def __init__(self, ops: Sequence[dict] = ()):
        normalized: List[dict] = []
        n = len(ops)
        for i, op in enumerate(ops):
            if not isinstance(op, dict):
                raise IterSpecError(f"spec op #{i} must be a dict, "
                                    f"got {op!r}")
            kind = op.get("op")
            check = _CHECKS.get(kind)
            if check is None:
                raise IterSpecError(f"unknown iterspec op {kind!r}; "
                                    f"known: {sorted(_CHECKS)}")
            if kind == "reduce" and i != n - 1:
                raise IterSpecError("reduce must be the last op in a spec")
            normalized.append(check(op))
        object.__setattr__(self, "ops", tuple(normalized))

    def __setattr__(self, name, value):  # immutable after __init__
        raise AttributeError("IterSpec is immutable")

    # -- fluent builders ----------------------------------------------------

    def _with(self, op: dict) -> "IterSpec":
        return IterSpec(self.ops + (op,))

    def column_filter(self, qualifiers: Sequence[str]) -> "IterSpec":
        return self._with({"op": "column", "qualifiers": list(qualifiers)})

    def regex(self, row: Optional[str] = None,
              qualifier: Optional[str] = None,
              value: Optional[str] = None) -> "IterSpec":
        return self._with({"op": "regex", "row": row,
                           "qualifier": qualifier, "value": value})

    def where_value(self, cmp: str, threshold: float) -> "IterSpec":
        return self._with({"op": "value_filter", "cmp": cmp,
                           "threshold": threshold})

    def value_gt(self, t: float) -> "IterSpec":
        return self.where_value("gt", t)

    def value_ge(self, t: float) -> "IterSpec":
        return self.where_value("ge", t)

    def value_lt(self, t: float) -> "IterSpec":
        return self.where_value("lt", t)

    def value_le(self, t: float) -> "IterSpec":
        return self.where_value("le", t)

    def value_eq(self, t: float) -> "IterSpec":
        return self.where_value("eq", t)

    def value_ne(self, t: float) -> "IterSpec":
        return self.where_value("ne", t)

    def age_off(self, cutoff: int) -> "IterSpec":
        return self._with({"op": "age_off", "cutoff": cutoff})

    def versions(self, max_versions: int) -> "IterSpec":
        return self._with({"op": "versions", "max_versions": max_versions})

    def combiner(self, fn: str = "sum") -> "IterSpec":
        return self._with({"op": "combiner", "fn": fn})

    def apply(self, name: str, *args: float,
              drop_zero: bool = True) -> "IterSpec":
        return self._with({"op": "apply", "name": name,
                           "args": list(args), "drop_zero": drop_zero})

    def reduce(self, fn: str = "sum", family: str = "",
               qualifier: str = "deg", count: bool = False) -> "IterSpec":
        return self._with({"op": "reduce", "fn": fn, "family": family,
                           "qualifier": qualifier, "count": count})

    # -- wire + execution ---------------------------------------------------

    def to_wire(self) -> List[dict]:
        """The JSON-serializable wire form (a list of op dicts)."""
        return [dict(op) for op in self.ops]

    @classmethod
    def from_wire(cls, obj: Any) -> "IterSpec":
        """Validate a wire form back into a spec (raises
        :class:`IterSpecError` on anything outside the whitelist)."""
        if not isinstance(obj, (list, tuple)):
            raise IterSpecError(f"iterspec wire form must be a list of "
                                f"op dicts, got {type(obj).__name__}")
        return cls(obj)

    def build_factories(self) -> Tuple[IteratorFactory, ...]:
        """The ``scan_iterators`` factory tuple this spec describes."""
        return tuple(_build(op) for op in self.ops)

    # -- ergonomics ---------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __eq__(self, other) -> bool:
        return isinstance(other, IterSpec) and self.ops == other.ops

    def __hash__(self) -> int:
        import json
        return hash(json.dumps(self.to_wire(), sort_keys=True))

    def __repr__(self) -> str:
        return f"IterSpec({list(self.ops)!r})"


# -- module helpers ---------------------------------------------------------


def as_wire(spec: Optional[Any]) -> Optional[List[dict]]:
    """Normalize ``spec`` (an :class:`IterSpec`, a wire-form list, or
    ``None``) to the wire form carried in a SCAN payload."""
    if spec is None:
        return None
    if isinstance(spec, IterSpec):
        return spec.to_wire()
    return IterSpec.from_wire(spec).to_wire()


def coerce(spec: Optional[Any]) -> Optional[IterSpec]:
    """Normalize ``spec`` to an :class:`IterSpec` (or ``None``)."""
    if spec is None or isinstance(spec, IterSpec):
        return spec
    if callable(spec):
        raise NonSerializableIteratorError(
            f"scan iterators must be wire-serializable IterSpecs on the "
            f"remote backend; got a local callable {spec!r} which cannot "
            f"cross the wire")
    return IterSpec.from_wire(spec)


def build_scan_iterators(obj: Any) -> Tuple[IteratorFactory, ...]:
    """Server-side entry point: validate a wire form and return the
    factory tuple to install as ``scan_iterators`` (empty for None)."""
    if obj is None:
        return ()
    return IterSpec.from_wire(obj).build_factories()
