"""Cluster telemetry plane: ring-buffered per-server metric history.

:class:`ClusterTelemetry` periodically samples a *fetch* callable that
returns ``{component_name: registry_export_dict}`` — on the manager
that is one ``METRICS`` fan-out over every tablet server plus the
manager's own registry — and keeps the last ``window`` samples per
component in a ring buffer.  The manager serves the whole ring over
the ``TELEMETRY`` op, which is what ``repro top`` renders as a live
per-server cluster view (QPS, bytes/s, queue depth, hot tables).

Derived views are computed from :class:`~repro.obs.expose.
SnapshotDelta` between consecutive samples, so counter resets from a
crash/recover show up as flagged restarts, never negative rates.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import health as _health
from repro.obs.expose import SnapshotDelta

#: metric names the summary rows are built from
_REQUESTS = "net.server.requests"
_BYTES_SENT = "net.server.bytes_sent"
_BYTES_RECEIVED = "net.server.bytes_received"
_INFLIGHT = "net.server.inflight"
_ERRORS = "net.server.errors"

#: adaptive scan-compression decision counters (``repro top`` SCAN-ZIP
#: column: compressed / skipped-small / skipped-by-trial)
_SCAN_COMPRESS = ("net.server.scan_compress.compressed",
                  "net.server.scan_compress.skipped_small",
                  "net.server.scan_compress.skipped_trial")

#: iterator push-down counters (``repro top`` PUSHDOWN column:
#: installed stacks / cells folded server-side)
_PUSHDOWN = ("net.server.pushdown.stacks",
             "net.server.pushdown.cells_folded")

#: per-table activity sources mined for the "hot tables" column:
#: (prefix, suffixes) — names look like ``<prefix><table>.<suffix>``
_TABLE_SOURCES = (
    ("dbsim.table.", ("entries_read", "entries_written", "seeks")),
    ("net.server.table.", ("scan_bytes",)),
)


def _table_activity(delta: SnapshotDelta) -> Dict[str, float]:
    """Per-table activity score over one interval (sum of counter
    deltas from every per-table source)."""
    scores: Dict[str, float] = {}
    for name in set(delta.before) | set(delta.after):
        for prefix, suffixes in _TABLE_SOURCES:
            if not name.startswith(prefix):
                continue
            rest = name[len(prefix):]
            if "." not in rest:
                continue
            table, metric = rest.rsplit(".", 1)
            if metric in suffixes:
                scores[table] = scores.get(table, 0) + delta.delta(name)
    return {t: s for t, s in scores.items() if s > 0}


def format_bytes(n: float) -> str:
    """``1536`` → ``'1.5K'`` (single-letter suffixes, fits a column)."""
    for suffix in ("", "K", "M", "G", "T"):
        if abs(n) < 1024:
            return f"{n:.0f}{suffix}" if suffix == "" else f"{n:.1f}{suffix}"
        n /= 1024
    return f"{n:.1f}P"


class ClusterTelemetry:
    """Ring-buffered time series of per-component metric exports.

    ``fetch`` returns ``{component: export_dict}`` for one tick;
    :meth:`sample` appends a timestamped entry to each component's ring
    (capped at ``window`` samples).  The class is also the wire form:
    :meth:`as_dict` / :meth:`from_dict` round-trip through JSON for the
    ``TELEMETRY`` op.
    """

    def __init__(self, fetch: Optional[Callable[[], Dict[str, dict]]] = None,
                 window: int = 120):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self._fetch = fetch
        self.window = window
        self._series: Dict[str, deque] = {}
        self._lock = threading.Lock()

    # -- collection -------------------------------------------------------

    def sample(self, now: Optional[float] = None) -> float:
        """Take one sample via ``fetch``; returns its timestamp."""
        if self._fetch is None:
            raise RuntimeError("this ClusterTelemetry has no fetch "
                               "callable (it was rebuilt from the wire)")
        ts = time.time() if now is None else now
        exports = self._fetch()
        with self._lock:
            for component, export in exports.items():
                ring = self._series.get(component)
                if ring is None:
                    ring = self._series[component] = deque(
                        maxlen=self.window)
                ring.append((ts, export))
        return ts

    def ingest(self, component: str, export: dict,
               now: Optional[float] = None) -> None:
        """Append one sample directly (client-side fallback polling)."""
        ts = time.time() if now is None else now
        with self._lock:
            ring = self._series.get(component)
            if ring is None:
                ring = self._series[component] = deque(maxlen=self.window)
            ring.append((ts, export))

    # -- access -----------------------------------------------------------

    def components(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def series(self, component: str) -> List[Tuple[float, dict]]:
        with self._lock:
            return list(self._series.get(component, ()))

    def latest(self, component: str) -> Optional[Tuple[float, dict]]:
        with self._lock:
            ring = self._series.get(component)
            return ring[-1] if ring else None

    def delta(self, component: str) -> Optional[SnapshotDelta]:
        """Change over the most recent sampling interval (needs >= 2
        samples)."""
        with self._lock:
            ring = self._series.get(component)
            if not ring or len(ring) < 2:
                return None
            (t0, before), (t1, after) = ring[-2], ring[-1]
        return SnapshotDelta(before, after, seconds=max(t1 - t0, 1e-9))

    # -- derived views ----------------------------------------------------

    def summary(self, hot_tables: int = 3) -> Dict[str, Dict[str, Any]]:
        """One row per component for the ``repro top`` display.

        With fewer than two samples for a component, rate fields come
        back ``None`` (totals are still reported)."""
        out: Dict[str, Dict[str, Any]] = {}
        for component in self.components():
            latest = self.latest(component)
            if latest is None:
                continue
            _, export = latest
            d = self.delta(component)
            row: Dict[str, Any] = {
                "requests": export.get(_REQUESTS, 0),
                "bytes_sent": export.get(_BYTES_SENT, 0),
                "bytes_received": export.get(_BYTES_RECEIVED, 0),
                "inflight": export.get(_INFLIGHT, 0),
                "qps": None,
                "tx_bps": None,
                "rx_bps": None,
                "err_ps": None,
                "reset": False,
                "health": None,
                "hot_tables": [],
                "scan_compress": [export.get(name, 0)
                                  for name in _SCAN_COMPRESS],
                "pushdown": [export.get(name, 0) for name in _PUSHDOWN],
            }
            if d is not None:
                rates = d.rates(nonzero=False)
                row["qps"] = rates.get(_REQUESTS, 0.0)
                row["tx_bps"] = rates.get(_BYTES_SENT, 0.0)
                row["rx_bps"] = rates.get(_BYTES_RECEIVED, 0.0)
                row["err_ps"] = rates.get(_ERRORS, 0.0)
                row["reset"] = bool(d.resets)
                row["health"] = _health.breaches_for(export, delta=d)
                activity = _table_activity(d)
                row["hot_tables"] = sorted(
                    activity, key=lambda t: (-activity[t], t))[:hot_tables]
            out[component] = row
        return out

    def health(self, slos=None) -> Dict[str, Any]:
        """SLO evaluation of each component's latest sample (windowed
        error burn rates when >= 2 samples exist), in the
        :meth:`~repro.obs.health.HealthReport.as_dict` shape.  This is
        the ``health`` block of the ``TELEMETRY`` op response."""
        checks = []
        for component in self.components():
            latest = self.latest(component)
            if latest is None:
                continue
            _, export = latest
            checks.extend(_health.check_component(
                component, export,
                slos=_health.DEFAULT_SLOS if slos is None else slos,
                delta=self.delta(component)))
        return _health.HealthReport(checks).as_dict()

    # -- wire form --------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "window": self.window,
                "series": {component: [[ts, export]
                                       for ts, export in ring]
                           for component, ring in self._series.items()},
            }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClusterTelemetry":
        tel = cls(fetch=None, window=max(int(data.get("window", 120)), 2))
        for component, samples in data.get("series", {}).items():
            for ts, export in samples:
                tel.ingest(component, export, now=ts)
        return tel


def render_top(summary: Dict[str, Dict[str, Any]],
               clock: Optional[str] = None) -> str:
    """Render a :meth:`ClusterTelemetry.summary` as the fixed-width
    table ``repro top`` prints (one row per component)."""
    header = (f"{'SERVER':<12} {'QPS':>8} {'TX/s':>9} {'RX/s':>9} "
              f"{'INFLIGHT':>8} {'ERR/s':>7} {'REQS':>9} "
              f"{'SCAN-ZIP':>10} {'PUSHDOWN':>10} {'HEALTH':>7}  HOT TABLES")
    lines = []
    if clock:
        lines.append(f"-- repro top @ {clock} --")
    lines.append(header)
    for component, row in sorted(summary.items()):
        def rate(key: str, fmt: str = "{:.1f}") -> str:
            value = row.get(key)
            return "-" if value is None else fmt.format(value)

        tx = ("-" if row.get("tx_bps") is None
              else format_bytes(row["tx_bps"]))
        rx = ("-" if row.get("rx_bps") is None
              else format_bytes(row["rx_bps"]))
        hot = ",".join(row.get("hot_tables") or []) or "-"
        zc = row.get("scan_compress") or [0, 0, 0]
        # compressed/skipped-small/skipped-by-trial scan chunks
        zip_col = "/".join(str(v) for v in zc) if any(zc) else "-"
        pd = row.get("pushdown") or [0, 0]
        # installed stacks / cells folded server-side
        pd_col = "/".join(str(v) for v in pd) if any(pd) else "-"
        breaches = row.get("health")
        # "-" until two samples exist, "ok" when every SLO holds,
        # "SLO!n" counting distinct breached objectives otherwise
        health_col = ("-" if breaches is None
                      else f"SLO!{len(breaches)}" if breaches else "ok")
        name = component + ("*" if row.get("reset") else "")
        lines.append(
            f"{name:<12} {rate('qps'):>8} {tx:>9} {rx:>9} "
            f"{row.get('inflight', 0):>8} {rate('err_ps'):>7} "
            f"{row.get('requests', 0):>9} {zip_col:>10} {pd_col:>10} "
            f"{health_col:>7}  {hot}")
    if any(row.get("reset") for row in summary.values()):
        lines.append("(* counters reset since last sample)")
    return "\n".join(lines)
