"""Seeded, in-path fault injection for the RPC fabric.

A :class:`FaultPlan` is an ordered list of :class:`FaultRule`\\ s, each
matching an op-code (or ``*``) with a firing probability.  The server
consults the plan **at response time** — after the handler has run —
which is the interesting place to fail: a dropped ``write_batch``
response means the write *was applied* but the client never heard, so
its retry exercises the exactly-once dedup path rather than a trivial
re-send.

Fault kinds (``param`` meaning in parentheses):

========== ==============================================================
drop       swallow the response and close the connection (—)
delay      sleep ``param`` seconds before responding (seconds)
reset      close the connection abruptly before responding (—)
corrupt    flip one payload byte so the client's CRC check fails (—)
slowdrip   trickle the response ``param`` bytes at a time (chunk size)
reorder    hold this response; deliver it *after* the connection's next
           outbound response (—)
========== ==============================================================

``reorder`` exists to attack the multiplexer: on a wire-v3 connection
responses for different request ids may legally arrive in any order,
so the client must route by id, never by arrival.  The server's send
path applies it only to *unary* responses (``OK``/``ERROR``) — frames
inside one scan's ``CHUNK`` stream are ordered by contract and are
never swapped.  :func:`apply_fault` itself delivers a reorder frame
normally (the swap needs a second frame and lives in the server's
per-connection sender).

Rules parse from compact spec strings (CLI ``--fault``, cluster
configs)::

    scan:delay:0.05:0.02      # 5% of scan responses delayed 20ms
    write_batch:drop:0.01     # 1% of write acks swallowed
    *:reset:0.005             # 0.5% of everything reset

Determinism: the plan owns one ``random.Random(seed)``; with a fixed
seed, a fixed request sequence sees a fixed fault sequence.  Each
fired fault bumps ``net.server.faults.<kind>`` on the server's
metrics registry.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.net import wire

_KINDS = ("drop", "delay", "reset", "corrupt", "slowdrip", "reorder")
#: kinds that replace the response entirely (vs. decorate its delivery)
TERMINAL_KINDS = ("drop", "reset")

_NAME_TO_OP = {name: code for code, name in wire.OP_NAMES.items()}


@dataclass(frozen=True)
class FaultRule:
    """One match → maybe-fire rule."""

    op: Optional[int]  #: op-code to match; None matches every request
    kind: str          #: one of drop/delay/reset/corrupt/slowdrip
    rate: float        #: firing probability in [0, 1]
    param: float = 0.0  #: kind-specific (delay seconds, drip chunk bytes)

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")

    @classmethod
    def from_spec(cls, spec: str) -> "FaultRule":
        """Parse ``op:kind:rate[:param]`` (op may be ``*``)."""
        parts = spec.split(":")
        if len(parts) not in (3, 4):
            raise ValueError(
                f"bad fault spec {spec!r}: want op:kind:rate[:param]")
        op_name, kind, rate = parts[0], parts[1], float(parts[2])
        param = float(parts[3]) if len(parts) == 4 else 0.0
        if op_name == "*":
            op = None
        else:
            op = _NAME_TO_OP.get(op_name)
            if op is None or op >= wire.OK:
                raise ValueError(f"bad fault spec {spec!r}: unknown op "
                                 f"{op_name!r}")
        return cls(op=op, kind=kind, rate=rate, param=param)

    def spec(self) -> str:
        op = "*" if self.op is None else wire.OP_NAMES[self.op]
        out = f"{op}:{self.kind}:{self.rate:g}"
        return f"{out}:{self.param:g}" if self.param else out


class FaultPlan:
    """The rules plus the seeded RNG that decides when they fire."""

    def __init__(self, rules: Sequence[FaultRule] = (), seed: int = 0):
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self._rng = random.Random(seed)
        # concurrent responder threads share one plan; serialize draws
        # so the RNG stream stays a function of the draw *sequence*
        self._lock = threading.Lock()

    @classmethod
    def from_specs(cls, specs: Sequence[str], seed: int = 0) -> "FaultPlan":
        return cls([FaultRule.from_spec(s) for s in specs], seed=seed)

    def specs(self) -> List[str]:
        return [r.spec() for r in self.rules]

    def draw(self, op: int) -> Optional[FaultRule]:
        """The first matching rule that fires for this request, if any.

        Every matching rule consumes exactly one RNG draw whether or
        not it fires, so the fault sequence depends only on the request
        sequence — not on which earlier faults happened to fire.
        """
        hit: Optional[FaultRule] = None
        with self._lock:
            for rule in self.rules:
                if rule.op is not None and rule.op != op:
                    continue
                fired = self._rng.random() < rule.rate
                if fired and hit is None:
                    hit = rule
        return hit


def corrupt_frame(frame: bytes) -> bytes:
    """Flip one bit in the CRC-covered region (trace-context block or
    payload) so verification fails — never the length prefix, because
    the stream must stay parseable."""
    from repro.net import wire
    if len(frame) > wire.FRAME_OVERHEAD:  # damage the first payload byte
        idx = wire.FRAME_OVERHEAD
    else:  # no payload bytes; damage the trace-context block instead
        idx = wire.FRAME_OVERHEAD - 1
    return frame[:idx] + bytes([frame[idx] ^ 0x01]) + frame[idx + 1:]


def apply_fault(rule: FaultRule, sock, frame: bytes,
                metrics=None) -> bool:
    """Deliver (or destroy) ``frame`` according to ``rule``.

    Returns True if the response was delivered (possibly corrupted or
    dripped) and the connection may continue; False if the connection
    must be torn down (drop / reset).
    """
    if metrics is not None:
        metrics.counter(f"net.server.faults.{rule.kind}").inc()
    if rule.kind == "drop":
        return False  # swallow silently; caller closes the socket
    if rule.kind == "reset":
        try:  # RST if the platform lets us, plain close otherwise
            import socket as _socket
            sock.setsockopt(_socket.SOL_SOCKET, _socket.SO_LINGER,
                            b"\x01\x00\x00\x00\x00\x00\x00\x00")
        except OSError:
            pass
        return False
    if rule.kind == "delay":
        time.sleep(rule.param)
        sock.sendall(frame)
        return True
    if rule.kind == "corrupt":
        sock.sendall(corrupt_frame(frame))
        return True
    if rule.kind == "slowdrip":
        step = max(int(rule.param), 1)
        for i in range(0, len(frame), step):
            sock.sendall(frame[i:i + step])
            time.sleep(0.001)
        return True
    if rule.kind == "reorder":
        # the swap itself lives in the server's per-connection sender
        # (it needs a second frame to swap with); standalone delivery
        # degrades to a normal send
        sock.sendall(frame)
        return True
    raise AssertionError(f"unhandled fault kind {rule.kind!r}")
