"""The asyncio multiplexed RPC core under the blocking client facade.

One :class:`_MuxConn` per server address carries every in-flight RPC
this client has against that server: requests go out tagged with a
connection-scoped request id (wire v3), a single reader task routes
response frames back to their callers by id, and hundreds of calls
share the socket instead of checking sockets in and out of a pool.
:class:`AsyncRpcCore` owns the connections plus the retry loop; the
synchronous ``RpcCore`` in :mod:`repro.net.client` is a thin facade
that drives this core from a private event-loop thread, so
``RemoteInstance``/``RemoteConnector`` and everything above them stay
blocking APIs.

Failure semantics on a multiplexed connection:

* a **timeout** abandons only its own request id (the eventual
  response is dropped as a stale frame) — the connection and every
  other in-flight request keep going;
* a **corrupt frame** fails the whole connection: the request id is
  inside the CRC-covered region, so nothing about the frame can be
  trusted, and every pending request gets
  :class:`~repro.net.wire.FrameCorruptError` and retries on a fresh
  socket;
* a **closed/reset** connection likewise fails all pending requests
  with :class:`~repro.net.wire.ConnectionClosedError`;
* a :class:`~repro.dbsim.errors.BusyError` response (server admission
  control shed the request before running it) retries after backoff —
  always safe, the server applied nothing.

Scan streams are queues fed by the reader task.  The reader must never
block on a slow scan consumer (the same connection carries write acks
— blocking would deadlock the pipeline), so an overfull stream queue
kills *that stream* with :class:`StreamOverrunError`; the scan
iterator above resumes from its last delivered key on a fresh stream.
"""

from __future__ import annotations

import asyncio
import random
import socket
import time
from typing import Any, Dict, Optional, Tuple, Union

from repro.dbsim.errors import BusyError, NotHostedError, ServerCrashedError
from repro.net import wire
from repro.obs.metrics import MetricsRegistry

Addr = Tuple[str, int]


def parse_addr(addr: Union[str, Addr]) -> Addr:
    """``"host:port"`` → ``(host, port)`` (tuples pass through)."""
    if isinstance(addr, tuple):
        return addr
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"bad address {addr!r}: want host:port")
    return host, int(port)


def format_addr(addr: Addr) -> str:
    return f"{addr[0]}:{addr[1]}"


class RetryPolicy:
    """Deadline + backoff knobs for one client.

    ``attempts`` bounds tries per RPC (and per scan-stream reopen);
    ``deadline`` is the per-RPC response timeout in seconds.  Backoff
    is decorrelated jitter: ``sleep = min(cap, uniform(base, 3·prev))``
    — retries spread out instead of thundering in lockstep.
    """

    def __init__(self, attempts: int = 8, base: float = 0.02,
                 cap: float = 0.5, deadline: float = 5.0,
                 connect_timeout: float = 5.0):
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self.attempts = attempts
        self.base = base
        self.cap = cap
        self.deadline = deadline
        self.connect_timeout = connect_timeout

    def next_sleep(self, prev: Optional[float], rng: random.Random) -> float:
        if prev is None:
            return self.base
        return min(self.cap, rng.uniform(self.base, prev * 3))


class StreamOverrunError(RuntimeError):
    """A scan stream outran its consumer and was locally killed so the
    connection's reader never blocks.  Resume from the last delivered
    key — nothing was lost, only not-yet-delivered chunks dropped."""


#: chunks a scan stream may buffer ahead of its consumer before the
#: reader kills it (each chunk is SCAN_CHUNK_CELLS cells)
STREAM_WINDOW_CHUNKS = 64


class _Stream:
    """One scan's response-frame queue, fed by the connection reader."""

    __slots__ = ("req", "opname", "queue", "ended")

    def __init__(self, req: int, opname: str):
        self.req = req
        self.opname = opname
        self.queue: asyncio.Queue = asyncio.Queue()
        self.ended = False

    def push(self, code: int, payload: Any, nread: int) -> str:
        """Reader-task side.  Returns ``"ok"`` (stream continues),
        ``"end"`` (terminal frame queued) or ``"overrun"``."""
        if self.ended:
            return "end"
        if self.queue.qsize() >= STREAM_WINDOW_CHUNKS:
            self.fail(StreamOverrunError(
                f"scan stream req={self.req} buffered "
                f"{STREAM_WINDOW_CHUNKS} undelivered chunks"))
            return "overrun"
        self.queue.put_nowait((code, payload, nread))
        if code in (wire.DONE, wire.ERROR):
            self.ended = True
            return "end"
        return "ok"

    def fail(self, exc: BaseException) -> None:
        """Queue ``exc`` after any already-buffered chunks — the
        consumer drains real progress first, then sees the failure."""
        if self.ended:
            return
        self.ended = True
        self.queue.put_nowait(exc)

    async def get(self, timeout: float) -> Tuple[int, Any, int]:
        item = await asyncio.wait_for(self.queue.get(), timeout)
        if isinstance(item, BaseException):
            self.queue.put_nowait(item)  # stays terminal for re-reads
            raise item
        return item

    async def get_many(self, timeout: float) -> list:
        """Await one frame, then drain whatever else the reader already
        queued — one consumer wakeup delivers every buffered CHUNK
        instead of paying a loop round-trip per frame.

        Buffered progress is delivered before failure: if an exception
        sits behind queued frames, those frames are returned now and
        the exception re-queues for the *next* call.
        """
        first = await asyncio.wait_for(self.queue.get(), timeout)
        if isinstance(first, BaseException):
            self.queue.put_nowait(first)  # stays terminal for re-reads
            raise first
        items = [first]
        if first[0] in (wire.DONE, wire.ERROR):
            return items
        spins = 0
        while True:
            try:
                item = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                # Opportunistic coalescing: the next frame's bytes are
                # often already on the socket, but the selector poll and
                # the reader task that turn them into queued frames
                # haven't had a loop iteration yet.  A few zero-delay
                # yields cost microseconds and can save the consumer a
                # whole cross-thread wakeup for the follow-on frame.
                if spins >= 3:
                    return items
                spins += 1
                await asyncio.sleep(0)
                continue
            spins = 0
            if isinstance(item, BaseException):
                self.queue.put_nowait(item)  # surfaced on the next call
                return items
            items.append(item)
            if item[0] in (wire.DONE, wire.ERROR):
                return items


class _MuxConn:
    """One persistent multiplexed connection to one server."""

    def __init__(self, addr: Addr, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, metrics: MetricsRegistry,
                 on_close) -> None:
        self.addr = addr
        self.closed = False
        self._reader = reader
        self._writer = writer
        self._metrics = metrics
        self._on_close = on_close
        self._wlock = asyncio.Lock()
        self._next_req = 0
        #: req → ("unary", future, opname) | ("stream", _Stream)
        self._pending: Dict[int, tuple] = {}
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._read_loop())

    # -- registration -----------------------------------------------------

    def _new_req(self) -> int:
        self._next_req += 1
        return self._next_req

    def register_unary(self, opname: str) -> Tuple[int, asyncio.Future]:
        req = self._new_req()
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[req] = ("unary", fut, opname)
        return req, fut

    def register_stream(self, opname: str) -> _Stream:
        req = self._new_req()
        stream = _Stream(req, opname)
        self._pending[req] = ("stream", stream)
        return stream

    def abandon(self, req: int) -> None:
        """Forget a request (timeout / cancelled scan); its eventual
        response frames count as ``net.client.stale_frames``."""
        self._pending.pop(req, None)

    # -- I/O ---------------------------------------------------------------

    async def send(self, code: int, payload: Any, tc=None, req: int = 0,
                   compress: bool = False) -> int:
        data = wire.encode_frame(code, payload, tc=tc, req=req,
                                 compress=compress)
        async with self._wlock:
            if self.closed:
                raise wire.ConnectionClosedError(
                    f"connection to {format_addr(self.addr)} is closed")
            self._writer.write(data)
            await self._writer.drain()
        return len(data)

    async def _read_loop(self) -> None:
        counters = self._metrics.counter
        try:
            while True:
                hdr = await self._reader.readexactly(wire._LEN.size)
                (length,) = wire._LEN.unpack(hdr)
                if length > wire.MAX_FRAME_BYTES:
                    raise wire.ProtocolError(
                        f"frame length {length} exceeds "
                        f"{wire.MAX_FRAME_BYTES} byte cap")
                body = await self._reader.readexactly(length)
                code, payload, _tc, req = wire.decode_body(body)
                nread = wire._LEN.size + length
                counters("net.client.bytes_received").inc(nread)
                entry = self._pending.get(req)
                if entry is None:
                    # an abandoned request's late response (timeout,
                    # cancelled scan, reorder fault past a retry)
                    counters("net.client.stale_frames").inc()
                    continue
                if entry[0] == "unary":
                    _, fut, opname = entry
                    del self._pending[req]
                    counters(
                        f"net.client.op.{opname}.bytes_received").inc(nread)
                    if not fut.done():
                        fut.set_result((code, payload, nread))
                else:
                    stream = entry[1]
                    counters(f"net.client.op.{stream.opname}"
                             f".bytes_received").inc(nread)
                    if stream.push(code, payload, nread) != "ok":
                        del self._pending[req]
        except wire.FrameCorruptError as exc:
            # the req id is inside the corrupted region: nothing on
            # this connection can be attributed any more
            self._fail(exc)
        except wire.ProtocolError as exc:
            self._fail(exc)
        except (asyncio.IncompleteReadError, wire.ConnectionClosedError,
                OSError):
            self._fail(wire.ConnectionClosedError(
                f"connection to {format_addr(self.addr)} lost"))
        except asyncio.CancelledError:
            self._fail(wire.ConnectionClosedError("client shutting down"))
            raise

    def _fail(self, exc: BaseException) -> None:
        if self.closed:
            return
        self.closed = True
        pending, self._pending = self._pending, {}
        for entry in pending.values():
            if entry[0] == "unary":
                fut = entry[1]
                if not fut.done():
                    fut.set_exception(exc)
            else:
                entry[1].fail(exc)
        try:
            self._writer.close()
        except Exception:  # noqa: BLE001 - teardown is best-effort
            pass
        self._on_close(self)

    async def aclose(self) -> None:
        task = self._task
        self._fail(wire.ConnectionClosedError("connection closed"))
        if task is not None and not task.done():
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass


class AsyncRpcCore:
    """Connection management + the retry loop, entirely on one loop.

    The public surface (``call`` / ``open_stream`` / ``cancel_stream``
    / ``aclose``) is what the sync facade schedules onto the loop
    thread; a native-async client may drive it directly.  Mutating
    requests arrive here already stamped with ``(session, seq)`` — the
    facade owns session identity so retries and pipelined flushes
    re-send the same sequence numbers the server dedups on.
    """

    def __init__(self, metrics: MetricsRegistry, retry: RetryPolicy,
                 seed: int = 0):
        self.metrics = metrics
        self.retry = retry
        self._rng = random.Random(seed)
        self._conns: Dict[Addr, _MuxConn] = {}
        self._dials: Dict[Addr, asyncio.Future] = {}

    # -- connections -------------------------------------------------------

    def _deregister(self, conn: _MuxConn) -> None:
        if self._conns.get(conn.addr) is conn:
            del self._conns[conn.addr]
            self.metrics.counter("net.client.pool_evictions").inc()

    async def _dial(self, addr: Addr) -> _MuxConn:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(addr[0], addr[1]),
            self.retry.connect_timeout)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = _MuxConn(addr, reader, writer, self.metrics,
                        on_close=self._deregister)
        conn.start()
        self._conns[addr] = conn
        return conn

    async def conn(self, addr: Addr) -> _MuxConn:
        """The live connection to ``addr`` (dialing at most once per
        address however many callers race here)."""
        counters = self.metrics.counter
        existing = self._conns.get(addr)
        if existing is not None and not existing.closed:
            counters("net.client.pool_hits").inc()
            return existing
        dial = self._dials.get(addr)
        if dial is None or dial.done():
            counters("net.client.pool_misses").inc()
            dial = asyncio.ensure_future(self._dial(addr))
            self._dials[addr] = dial
            # a lone failed dial must not warn about an unretrieved
            # exception after every waiter has moved on
            dial.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None)
        else:
            counters("net.client.pool_hits").inc()
        try:
            return await asyncio.shield(dial)
        finally:
            if self._dials.get(addr) is dial and dial.done():
                del self._dials[addr]

    # -- unary RPCs --------------------------------------------------------

    async def call(self, addr: Addr, op: int, payload: Any, tc=None,
                   compress: bool = False) -> Any:
        """One RPC with the full retry taxonomy; mirrors the wire-v2
        blocking client's behaviour plus BUSY backoff."""
        counters = self.metrics.counter
        hist = self.metrics.histogram("net.client.rpc_seconds")
        opname = wire.OP_NAMES.get(op, hex(op))
        sleep: Optional[float] = None
        last_exc: Optional[BaseException] = None
        for attempt in range(self.retry.attempts):
            if attempt:
                sleep = self.retry.next_sleep(sleep, self._rng)
                await asyncio.sleep(sleep)
                counters("net.client.retries").inc()
            counters("net.client.requests").inc()
            t0 = time.perf_counter()
            conn: Optional[_MuxConn] = None
            req = 0
            try:
                conn = await self.conn(addr)
                req, fut = conn.register_unary(opname)
                nsent = await conn.send(op, payload, tc=tc, req=req,
                                        compress=compress)
                counters("net.client.bytes_sent").inc(nsent)
                counters(f"net.client.op.{opname}.bytes_sent").inc(nsent)
                code, resp, _nread = await asyncio.wait_for(
                    fut, self.retry.deadline)
            except (asyncio.TimeoutError, TimeoutError) as exc:
                counters("net.client.timeouts").inc()
                if conn is not None and req:
                    conn.abandon(req)
                last_exc = exc
                continue
            except wire.FrameCorruptError as exc:
                last_exc = exc  # connection already failed itself
                continue
            except wire.ProtocolError:
                raise  # version skew / garbage framing: not transient
            except (wire.ConnectionClosedError, OSError) as exc:
                last_exc = exc
                continue
            hist.observe(time.perf_counter() - t0)
            if code == wire.OK:
                return resp
            if code == wire.ERROR:
                try:
                    wire.raise_error(resp)
                except ServerCrashedError as exc:
                    last_exc = exc  # server will come back: retry
                    continue
                except BusyError as exc:
                    # admission shed: never ran server-side, so backing
                    # off and re-sending is always safe
                    counters("net.client.busy_retries").inc()
                    last_exc = exc
                    continue
                except NotHostedError:
                    counters("net.client.relocates").inc()
                    raise  # caller re-locates and re-routes
                except Exception:
                    counters("net.client.errors").inc()
                    raise
            raise wire.ProtocolError(
                f"unexpected response op-code {code:#x} to {opname}")
        counters("net.client.errors").inc()
        raise wire.RpcError(
            f"{opname} to {format_addr(addr)} failed after "
            f"{self.retry.attempts} attempts") from last_exc

    # -- scan streams ------------------------------------------------------

    async def open_stream(self, addr: Addr, op: int, payload: Any,
                          tc=None) -> _Stream:
        """Send a streaming request; frames arrive on the returned
        :class:`_Stream` (no retry here — the scan iterator owns the
        resume/retry policy because only it knows the resume key)."""
        counters = self.metrics.counter
        opname = wire.OP_NAMES.get(op, hex(op))
        conn = await self.conn(addr)
        stream = conn.register_stream(opname)
        counters("net.client.requests").inc()
        try:
            nsent = await conn.send(op, payload, tc=tc, req=stream.req)
        except BaseException:
            conn.abandon(stream.req)
            raise
        counters("net.client.bytes_sent").inc(nsent)
        counters(f"net.client.op.{opname}.bytes_sent").inc(nsent)
        return stream

    async def stream_get(self, stream: _Stream,
                         timeout: float) -> Tuple[int, Any, int]:
        return await stream.get(timeout)

    async def stream_get_many(self, stream: _Stream,
                              timeout: float) -> list:
        """All frames the stream has buffered (at least one); the bulk
        twin of :meth:`stream_get` — see :meth:`_Stream.get_many`."""
        return await stream.get_many(timeout)

    async def cancel_stream(self, addr: Addr, stream: _Stream) -> None:
        """Stop caring about a stream: deregister it and tell the
        server (best-effort) to stop producing chunks for it."""
        conn = self._conns.get(addr)
        if conn is None:
            return
        conn.abandon(stream.req)
        if not conn.closed:
            try:
                await conn.send(wire.CANCEL_SCAN, {"req": stream.req})
            except (wire.ConnectionClosedError, OSError):
                pass

    async def aclose(self) -> None:
        dials = list(self._dials.values())
        self._dials.clear()
        for dial in dials:
            dial.cancel()
        conns = list(self._conns.values())
        self._conns.clear()
        for conn in conns:
            await conn.aclose()
