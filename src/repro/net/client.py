"""The remote side of the client API: RemoteConnector and friends.

:class:`RemoteConnector` subclasses :class:`~repro.dbsim.client.
Connector` and swaps its backend for a :class:`RemoteInstance` that
speaks the :mod:`repro.net.wire` protocol to a manager + tablet-server
fleet.  Scanner, BatchScanner and BatchWriter are reused *unchanged*:
they only ever touch ``conn.instance`` (the
:class:`~repro.dbsim.backend.ConnectorBackend` contract), and
``RemoteInstance`` hands them :class:`TabletProxy` objects wherever the
local backend hands them :class:`~repro.dbsim.tablet.Tablet`\\ s.

Transport: :class:`RpcCore` is a *blocking facade* over the
:class:`~repro.net.aio.AsyncRpcCore` multiplexer — one persistent
wire-v3 connection per server, every in-flight RPC interleaved on it
by request id, driven by a private event-loop thread that starts
lazily on first use.  Callers block exactly as before; under the hood
a scan stream, a pipelined flush and a locate RPC share one socket.

Reliability model:

* every RPC has a response deadline; transport failures (closed
  connection, timeout, CRC-corrupt frame),
  :class:`~repro.dbsim.errors.ServerCrashedError` and
  :class:`~repro.dbsim.errors.BusyError` (server admission control)
  retry with exponential backoff + decorrelated jitter (seeded);
* mutating RPCs carry a ``(session, seq)`` pair the server dedups on
  over a bounded per-session window, so retried *and pipelined*
  ``write_batch`` frames whose acks were lost are applied exactly
  once;
* :class:`~repro.dbsim.errors.NotHostedError` (a split migrated the
  tablet, or the location cache is stale) triggers a re-``locate``
  through the manager and re-routing — mid-batch for writes, mid-stream
  (with a resume key) for scans;
* write batches and scan chunks travel as packed binary cell blocks
  (:mod:`repro.net.cells`), not JSON.

:class:`WritePipeline` overlaps BatchWriter flushes: flush N+1 is
serialized and sent while flush N's acks are still in flight, one
flush deep — draining the previous flush before submitting the next
preserves per-tablet apply order, which is what keeps server-stamped
timestamps bit-identical to unpipelined writes.

Everything counts into ``net.client.*`` metrics and (when tracing is
enabled) emits ``rpc.client.*`` spans.
"""

from __future__ import annotations

import asyncio
import bisect
import concurrent.futures
import os
import random
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.dbsim.client import Connector
from repro.dbsim.errors import BusyError, NotHostedError, ServerCrashedError
from repro.dbsim.iterators import Columns, ListIterator, SortedKVIterator, drain
from repro.dbsim.key import Cell, Range
from repro.dbsim.server import TableConfig
from repro.dbsim.stats import OpStats
from repro.net import cells as _cells
from repro.net import iterspec as _iterspec
from repro.net import wire
from repro.net.aio import (
    Addr,
    AsyncRpcCore,
    RetryPolicy,
    StreamOverrunError,
    format_addr,
    parse_addr,
)
from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry, global_registry

__all__ = [
    "Addr", "RetryPolicy", "RpcCore", "RemoteInstance", "RemoteConnector",
    "TabletProxy", "WritePipeline", "format_addr", "parse_addr",
]


class _LoopRunner:
    """A private asyncio event loop on a daemon thread.

    Started lazily on first use so constructing an ``RpcCore`` stays
    free (the manager builds one inside every spawned child process);
    ``run`` blocks the calling thread on a coroutine, ``submit``
    returns a concurrent future (the write pipeline's overlap).
    """

    def __init__(self, name: str):
        self._name = name
        self._lock = threading.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def loop(self) -> asyncio.AbstractEventLoop:
        loop = self._loop
        if loop is not None:
            return loop
        with self._lock:
            if self._loop is None:
                loop = asyncio.new_event_loop()
                started = threading.Event()

                def _run() -> None:
                    asyncio.set_event_loop(loop)
                    loop.call_soon(started.set)
                    loop.run_forever()

                thread = threading.Thread(target=_run, name=self._name,
                                          daemon=True)
                thread.start()
                started.wait()
                self._thread = thread
                self._loop = loop
            return self._loop

    def submit(self, coro) -> concurrent.futures.Future:
        return asyncio.run_coroutine_threadsafe(coro, self.loop())

    def run(self, coro):
        return self.submit(coro).result()

    def stop(self) -> None:
        with self._lock:
            loop, self._loop = self._loop, None
            thread, self._thread = self._thread, None
        if loop is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=5.0)
        if not loop.is_running():
            loop.close()


class RpcCore:
    """Blocking facade over the async multiplexed core.

    One core per :class:`RemoteInstance` (the manager process also owns
    one for server fan-out).  ``mutate`` stamps mutating requests with
    this core's session id and a monotonically increasing sequence
    number; a retry re-sends the *same* sequence number, which is what
    lets the server replay the cached ack instead of re-applying.
    ``submit_mutate`` is the pipelined variant: the sequence number is
    stamped at submission (not completion), so in-flight batches keep
    their order identity.

    Never call the blocking surface from the loop thread (it would
    deadlock); native-async callers use :attr:`aio` directly.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 retry: Optional[RetryPolicy] = None, seed: int = 0):
        self.metrics = metrics if metrics is not None else global_registry()
        self.retry = retry if retry is not None else RetryPolicy()
        self.session = os.urandom(8).hex()
        self._rng = random.Random(seed)
        self._seq = 0
        self._lock = threading.Lock()
        self._addr_strs: Dict[Addr, str] = {}
        self._runner = _LoopRunner("repro-net-loop")
        self.aio = AsyncRpcCore(self.metrics, self.retry, seed=seed)
        # pre-register the health counters so a metrics export always
        # shows them (at 0), not only after the first retry/timeout
        for name in ("requests", "retries", "timeouts", "relocates",
                     "errors", "busy_retries", "pool_evictions",
                     "stale_frames", "sampled_out"):
            self.metrics.counter(f"net.client.{name}")
        # cached: bumped per unsampled call span on the hot path
        self._sampled_out = self.metrics.counter("net.client.sampled_out")

    # -- plumbing ---------------------------------------------------------

    def next_seq(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def _addr_str(self, addr: Addr) -> str:
        s = self._addr_strs.get(addr)
        if s is None:
            s = self._addr_strs[addr] = format_addr(addr)
        return s

    def run(self, coro):
        """Run a coroutine on this core's loop thread and block."""
        return self._runner.run(coro)

    def close(self) -> None:
        if self._runner._loop is not None:
            try:
                self._runner.run(self.aio.aclose())
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass
        self._runner.stop()

    # -- RPCs -------------------------------------------------------------

    def _stamp(self, payload):
        """Copy ``payload`` with this core's session + a fresh seq (the
        dedup identity), for dict and binary-cell payloads alike."""
        if isinstance(payload, wire.CellsPayload):
            meta = dict(payload.meta)
            meta["session"] = self.session
            meta["seq"] = self.next_seq()
            return wire.CellsPayload(meta, payload.block)
        stamped = dict(payload)
        stamped["session"] = self.session
        stamped["seq"] = self.next_seq()
        return stamped

    def mutate(self, addr: Addr, op: int, payload,
               compress: bool = False) -> dict:
        """A mutating RPC: stamped for exactly-once dedup, then sent
        through the same retry loop as ``call``."""
        return self.call(addr, op, self._stamp(payload), compress=compress)

    def call(self, addr: Addr, op: int, payload,
             compress: bool = False) -> dict:
        if not _trace.ENABLED:
            return self._runner.run(
                self.aio.call(addr, op, payload, compress=compress))
        with _trace.span("rpc.client.call", op=wire.OP_NAMES.get(op, op),
                         server=self._addr_str(addr)) as sp:
            # every attempt (retries included) carries this span's
            # identity, so even a server span reached on the Nth try
            # parents under the one client call; the context's sampled
            # bit tells the server whether to record its half
            if not sp.sampled:
                self._sampled_out.inc()
            result = self._runner.run(
                self.aio.call(addr, op, payload, tc=sp.context,
                              compress=compress))
            sp.attrs["session"] = self.session
            return result

    def submit_mutate(self, addr: Addr, op: int, payload,
                      compress: bool = False) -> concurrent.futures.Future:
        """Pipelined ``mutate``: stamp now, send now, ack later.  The
        returned future resolves to the response dict; the caller owns
        draining (and thereby per-tablet ordering)."""
        stamped = self._stamp(payload)
        sp = None
        tc = None
        if _trace.ENABLED:
            # detached span: the ack lands on the loop thread, not in
            # this thread's span stack
            sp = _trace.start_span(
                "rpc.client.call", op=wire.OP_NAMES.get(op, op),
                server=self._addr_str(addr), session=self.session)
            tc = sp.context
            if not sp.sampled:
                self._sampled_out.inc()
        fut = self._runner.submit(
            self.aio.call(addr, op, stamped, tc=tc, compress=compress))
        if sp is not None:
            fut.add_done_callback(lambda _f: sp.finish())
        return fut

    # -- scan streams -----------------------------------------------------

    def open_stream(self, addr: Addr, payload: dict, tc=None) -> "_SyncStream":
        stream = self._runner.run(
            self.aio.open_stream(addr, wire.SCAN, payload, tc=tc))
        return _SyncStream(self, addr, stream)


class _SyncStream:
    """Blocking view of one multiplexed scan stream."""

    __slots__ = ("_core", "_addr", "_stream")

    def __init__(self, core: RpcCore, addr: Addr, stream):
        self._core = core
        self._addr = addr
        self._stream = stream

    def recv(self, timeout: float) -> Tuple[int, object, int]:
        """Next ``(code, payload, nread)`` frame; raises the stream's
        failure (overrun, corrupt, closed) or ``TimeoutError``."""
        return self._core.run(self._core.aio.stream_get(
            self._stream, timeout))

    def recv_many(self, timeout: float) -> list:
        """Every frame the stream has buffered (at least one) in a
        single loop round-trip — with chunks arriving faster than the
        consumer drains them, one blocking hop delivers a whole run of
        CHUNKs instead of paying a loop wakeup per frame."""
        return self._core.run(self._core.aio.stream_get_many(
            self._stream, timeout))

    @property
    def ended(self) -> bool:
        return self._stream.ended

    def mark_ended(self) -> None:
        """The consumer learned out-of-band (a ``last``-marked CHUNK)
        that no more data is coming: flag the stream terminal so close
        skips the cancel round-trip and the reader drops the trailing
        DONE frame as it arrives."""
        self._stream.ended = True

    def cancel(self) -> None:
        """Abandon the stream; tells the server to stop producing."""
        try:
            self._core.run(self._core.aio.cancel_stream(
                self._addr, self._stream))
        except Exception:  # noqa: BLE001 - cancellation is best-effort
            pass


# -- scan streaming ---------------------------------------------------------


#: how many segments the pump keeps open ahead of the consumer — their
#: servers scan in parallel while the head segment's batches are being
#: decoded, so crossing a tablet boundary rarely waits on the network
_SCAN_FANOUT = 3

#: how long a round waits for a follow-on segment's frames before
#: handing back what it has — long enough to catch a segment that has
#: been producing in parallel and is a hair behind the head, short
#: enough that one slow server cannot stall delivery of ready batches
_SPLICE_WAIT = 0.01


class _Segment:
    """One (server, tablet) leg of a possibly re-planned scan.

    ``stream``/``span`` are the leg's live transport attachments: the
    pump fans out opens ahead of consumption, so a segment can hold an
    open (buffering) stream long before it becomes the head.
    """

    __slots__ = ("addr", "tablet_id", "extent", "stream", "span")

    def __init__(self, addr: Addr, tablet_id: str, extent: Range):
        self.addr = addr
        self.tablet_id = tablet_id
        self.extent = extent
        self.stream: Optional[_SyncStream] = None
        self.span = None


def _seg_run_complete(frames: list) -> bool:
    """Did this frame run *cleanly* finish its segment?  True on a
    trailing DONE or ``last``-marked CHUNK.  An ERROR ends the stream
    but not the segment (it will be resumed), so it is not complete —
    and the round must not splice a later segment's frames after it."""
    if not frames:
        return False
    code, payload, _ = frames[-1]
    if code == wire.DONE:
        return True
    return code == wire.CHUNK and bool(payload.meta.get("last"))


class _RemoteScanStream:
    """The resumable ColumnBatch pump behind every remote scan.

    Owns the whole stream lifecycle over a sequence of binary CHUNK
    frames: open/retry/backoff, mid-stream resume, split re-planning,
    spans and counters.  :meth:`next_batch` returns decoded
    :class:`~repro.net.cells.ColumnBatch`\\ es — one per consumer
    wakeup, coalescing every CHUNK the connection reader had already
    buffered — and never materialises a ``Cell``.

    A pump may span many segments (one per tablet).  It fans out: the
    next :data:`_SCAN_FANOUT` segments' streams are opened ahead of
    consumption so their servers scan in parallel, and one event-loop
    round delivers as many consecutive completed segments as have
    arrived.  Delivery order is strictly segment order — fan-out
    changes when servers *produce*, never when the consumer *sees*.

    The stream is resumable at batch granularity: the resume key
    advances to the last entry of each CHUNK as it is decoded, and any
    mid-stream failure (timeout, reset, corrupt frame, server crash,
    local queue overrun) reopens the stream asking the server to skip
    everything at or before that key.  Batch granularity is exactly as
    correct as the old per-cell resume because a reopen only ever
    happens while pulling the *next* batch — everything in already
    returned batches has been handed to the caller.  A
    ``NotHostedError`` instead re-locates through the manager and
    re-plans the remaining row-range over the new tablet layout — which
    is how a scan survives a split or migration that happens under it.
    """

    def __init__(self, inst: "RemoteInstance", table: str, clip: Range,
                 segments: Sequence[_Segment], iterspec=None, auths=None):
        self._inst = inst
        self._table = table
        self._clip = clip  # construction range (∩ proxy extent if per-tablet)
        #: wire-form push-down spec attached to every segment open
        #: (validated client-side up front — a bad spec fails here, not
        #: as an ERROR frame N segments into the scan)
        self._iterspec = _iterspec.as_wire(iterspec)
        #: scan authorizations shipped with the spec so the server can
        #: run its visibility filter *under* the pushed-down chain
        self._auths = list(auths) if auths is not None else None
        self._home = list(segments)  # the layout the pump was planned on
        self._segments: List[_Segment] = []
        self._effective: Optional[Range] = None
        self._columns: Columns = None
        self._resume: Optional[list] = None
        self._finished = True
        self._opened = False  # has this pump ever opened a stream?

    def reset(self, rng: Range, columns: Columns = None) -> None:
        self._close()
        self._resume = None
        self._opened = False  # a fresh seek is not a resume
        self._columns = list(columns) if columns else None
        self._effective = self._clip.clip(rng)
        self._segments = []
        if self._effective is not None:
            for seg in self._home:
                if seg.extent.clip(self._effective) is not None:
                    seg.stream = None
                    seg.span = None
                    self._segments.append(seg)
        self._finished = not self._segments

    # -- streaming --------------------------------------------------------

    async def _aopen(self, seg: _Segment, parent_ctx) -> None:
        """Open ``seg``'s stream (loop side; no waiting for frames)."""
        core = self._inst.core
        payload = {
            "table": self._table,
            "tablet_id": seg.tablet_id,
            "range": wire.range_to_wire(self._effective),
            "columns": ([list(c) for c in self._columns]
                        if self._columns else None),
            "resume": self._resume,
            "compress": self._inst.compress,
        }
        if self._iterspec is not None:
            payload["iterspec"] = self._iterspec
            if self._auths is not None:
                payload["auths"] = self._auths
        tc = None
        if _trace.ENABLED:
            # detached: a scan stream stays open across iterator pulls,
            # so its span cannot be lexically scoped.  ``parent_ctx``
            # carries the consumer thread's span stack across into the
            # loop thread.  Closed by _close_segment on completion,
            # resume, or re-plan.
            seg.span = _trace.start_span(
                "rpc.client.scan", parent=parent_ctx, op="scan",
                table=self._table, server=format_addr(seg.addr))
            tc = seg.span.context
        stream = await core.aio.open_stream(seg.addr, wire.SCAN, payload,
                                            tc=tc)
        seg.stream = _SyncStream(core, seg.addr, stream)
        self._opened = True

    async def _fanout(self, base: int, parent_ctx) -> None:
        """Open any unopened streams among segments ``base`` through
        ``base + _SCAN_FANOUT - 1``.  Only a head (``base == 0``) open
        failure propagates — an eager open that fails will fail again,
        visibly, once that segment becomes the head."""
        for i, seg in enumerate(self._segments[base:base + _SCAN_FANOUT]):
            if seg.stream is not None:
                continue
            if base == 0 and i == 0:
                await self._aopen(seg, parent_ctx)
            else:
                try:
                    await self._aopen(seg, parent_ctx)
                except Exception:  # noqa: BLE001 - surfaces once it is head
                    if seg.span is not None:
                        seg.span.finish()
                        seg.span = None
                    break

    async def _round(self, parent_ctx) -> list:
        """One event-loop submission: fan out opens for the next few
        segments (their servers scan in parallel), await the head
        segment's frame run, then — while each run *cleanly* completes
        its segment — splice on the follow-on segments' runs, waiting
        at most :data:`_SPLICE_WAIT` each since they have been
        producing concurrently the whole time.  The consumer gets a
        whole multi-segment run per cross-thread wakeup instead of
        paying a GIL-contended loop round trip per tablet boundary.

        A run ending in ERROR (or a splice-side failure) stops the
        splice: later segments' frames must never be delivered before
        an earlier segment has resumed and finished."""
        core = self._inst.core
        await self._fanout(0, parent_ctx)
        frames = await self._segments[0].stream._stream.get_many(
            core.retry.deadline)
        run, k = frames, 1
        while k < len(self._segments) and _seg_run_complete(run):
            await self._fanout(k, parent_ctx)  # slide the open-ahead window
            nxt = self._segments[k].stream
            if nxt is None:
                break
            try:
                run = await nxt._stream.get_many(_SPLICE_WAIT)
            except Exception:  # noqa: BLE001 - requeued; raised once head
                break
            frames.extend(run)
            k += 1
        return frames

    def next_batch(self) -> Optional[_cells.ColumnBatch]:
        """The next non-empty batch (every buffered CHUNK merged), or
        ``None`` once the scan is exhausted."""
        core = self._inst.core
        counters = core.metrics.counter
        sleep: Optional[float] = None
        attempts = 0
        while not self._finished:
            parent_ctx = _trace.current_context() if _trace.ENABLED else None
            try:
                if self._segments[0].stream is None:
                    if attempts:
                        sleep = core.retry.next_sleep(sleep, core._rng)
                        time.sleep(sleep)
                        counters("net.client.retries").inc()
                    if self._opened:
                        # any reopen mid-scan is a resume, even when
                        # chunk progress reset the attempt budget
                        counters("net.client.scan_resumes").inc()
                    attempts += 1
                frames = core.run(self._round(parent_ctx))
            except StreamOverrunError:
                # the reader shed this stream rather than stall the
                # connection; everything delivered so far is good —
                # resume just past it
                counters("net.client.stream_overruns").inc()
                self._bail(counters, attempts)
                continue
            except wire.FrameCorruptError:
                self._bail(counters, attempts)
                continue
            except (asyncio.TimeoutError, socket.timeout, TimeoutError):
                counters("net.client.timeouts").inc()
                self._bail(counters, attempts)
                continue
            except (wire.ProtocolError, OSError) as exc:
                if isinstance(exc, wire.ProtocolError):
                    self._close()
                    raise
                self._close_head()
                self._check_budget(counters, attempts, exc)
                continue
            batch: Optional[_cells.ColumnBatch] = None
            seg_done = False
            for code, payload, nread in frames:
                if code == wire.CHUNK:
                    attempts = 0  # progress: reset the retry budget
                    seg_done = False
                    decoded = _cells.decode_batch(payload.block)
                    counters("net.client.scan_chunks").inc()
                    if len(decoded):
                        # the resume key advances per decoded chunk so
                        # an error later in this same frame run reopens
                        # past everything about to be returned
                        self._resume = decoded.last_key()
                        if batch is None:
                            batch = decoded
                        else:
                            batch.extend(decoded)
                    head = self._segments[0]
                    if head.span is not None:
                        attrs = head.span.attrs
                        attrs["chunks"] = attrs.get("chunks", 0) + 1
                        attrs["bytes"] = attrs.get("bytes", 0) + nread
                    if payload.meta.get("last"):
                        # server marked its final chunk: complete the
                        # segment now instead of paying another wakeup
                        # for the DONE frame (which the ended stream
                        # drops on arrival)
                        if head.stream is not None:
                            head.stream.mark_ended()
                        seg_done = True
                        self._complete_segment()
                elif code == wire.DONE:
                    if seg_done:
                        seg_done = False  # already completed via "last"
                    else:
                        self._complete_segment()
                    attempts = 0
                elif code == wire.ERROR:
                    self._close_head()
                    try:
                        wire.raise_error(payload)
                    except ServerCrashedError as exc:
                        self._check_budget(counters, attempts, exc)
                    except BusyError as exc:
                        counters("net.client.busy_retries").inc()
                        self._check_budget(counters, attempts, exc)
                    except NotHostedError:
                        counters("net.client.relocates").inc()
                        self._replan()
                        attempts = 0
                else:
                    self._close()
                    raise wire.ProtocolError(
                        f"unexpected frame {code:#x} in scan stream")
            if batch is not None:
                return batch
        return None

    def _complete_segment(self) -> None:
        self._close_head()
        self._segments.pop(0)
        if not self._segments:
            self._finished = True

    def _bail(self, counters, attempts: int) -> None:
        self._close_head()
        self._check_budget(counters, attempts,
                           wire.RpcError("scan stream interrupted"))

    def _check_budget(self, counters, attempts: int,
                      exc: BaseException) -> None:
        if attempts >= self._inst.core.retry.attempts:
            counters("net.client.errors").inc()
            raise wire.RpcError(
                f"scan of {self._table!r} failed after {attempts} "
                f"attempts") from exc

    def _replan(self) -> None:
        """The tablet moved (split/migration): rebuild the remaining
        segments from a fresh locate index."""
        self._close()  # fanned-out streams were planned on the old layout
        self._inst.invalidate(self._table)
        remaining = Range(
            self._resume[0] if self._resume else self._effective.start_row,
            self._effective.stop_row)
        _, proxies = self._inst.locate_index(self._table)
        self._segments = [
            _Segment(p.addr, p.tablet_id, p.extent) for p in proxies
            if p.extent.clip(remaining) is not None]
        if not self._segments:
            self._finished = True

    @staticmethod
    def _close_segment(seg: _Segment) -> None:
        span, seg.span = seg.span, None
        if span is not None:
            span.finish()
        stream, seg.stream = seg.stream, None
        if stream is not None and not stream.ended:
            stream.cancel()

    def _close_head(self) -> None:
        if self._segments:
            self._close_segment(self._segments[0])

    def _close(self) -> None:
        for seg in self._segments:
            self._close_segment(seg)

    def __del__(self):  # abandoned mid-stream: stop the server's work
        try:
            self._close()
        except Exception:
            pass


class _RemoteScanIterator(SortedKVIterator):
    """Per-cell seek/has_top/top/advance view over the batch pump.

    This is now a *thin materializing layer*: the pump moves
    ColumnBatches; cells are built lazily one batch at a time, only
    because this consumer genuinely wants ``Cell`` objects.  Bulk
    consumers skip this class entirely via
    :meth:`TabletProxy.scan_columns`.

    Client-side scan iterators (visibility filter, user iterators) are
    layered on top by :meth:`TabletProxy.scan_iterator`; the cells seen
    here are post-versioning server output.
    """

    def __init__(self, inst: "RemoteInstance", table: str, clip: Range,
                 segments: Sequence[_Segment], iterspec=None, auths=None):
        self._pump = _RemoteScanStream(inst, table, clip, segments,
                                       iterspec=iterspec, auths=auths)
        self._cells: List[Cell] = []
        self._pos = 0

    def seek(self, rng: Range, columns: Columns = None) -> None:
        self._pump.reset(rng, columns)
        self._cells = []
        self._pos = 0

    def has_top(self) -> bool:
        while self._pos >= len(self._cells):
            batch = self._pump.next_batch()
            if batch is None:
                return False
            self._cells = batch.cells()
            self._pos = 0
        return True

    def top(self) -> Cell:
        if not self.has_top():
            raise StopIteration("iterator exhausted")
        return self._cells[self._pos]

    def advance(self) -> None:
        if self.has_top():
            self._pos += 1


# -- the backend ------------------------------------------------------------


class TabletProxy:
    """Client-side stand-in for one remote tablet.

    Implements the :class:`~repro.dbsim.backend.TabletBackend` contract
    Scanner/BatchScanner/BatchWriter program against, turning each call
    into RPCs against the hosting server.
    """

    def __init__(self, inst: "RemoteInstance", table: str, tablet_id: str,
                 extent: Range, addr: Addr):
        self._inst = inst
        self._table = table
        self.tablet_id = tablet_id
        self.extent = extent
        self.addr = addr

    def __repr__(self) -> str:
        return (f"TabletProxy({self._table}/{self.tablet_id} "
                f"@ {format_addr(self.addr)})")

    # -- reads ------------------------------------------------------------

    def scan_iterator(self, rng: Range,
                      table_iterators: Sequence = (),
                      scan_iterators: Sequence = (),
                      iterspec=None, auths=None) -> SortedKVIterator:
        # table_iterators are deliberately ignored: the server applies
        # the table's configured stack (it owns the authoritative
        # config); scan-time iterators run client-side over the stream,
        # while ``iterspec`` ships to the server and runs inside the
        # tablet's SortedKVIterator stack (push-down).
        clip = self.extent.clip(rng)
        if clip is None:
            return ListIterator([])
        stack: SortedKVIterator = _RemoteScanIterator(
            self._inst, self._table, clip,
            [_Segment(self.addr, self.tablet_id, self.extent)],
            iterspec=iterspec, auths=auths)
        for factory in scan_iterators:
            stack = factory(stack)
        return stack

    def scan_columns(self, rng: Range = Range(), columns: Columns = None,
                     table_iterators: Sequence = (),
                     scan_iterators: Sequence = (), iterspec=None,
                     auths=None):
        """Bulk columnar read: a generator of
        :class:`~repro.net.cells.ColumnBatch` straight off the CHUNK
        stream — no per-cell objects anywhere on the client.

        ``table_iterators`` are ignored for the same reason as in
        :meth:`scan_iterator` (the server applies the authoritative
        table stack); scan-time iterators are per-cell by contract and
        therefore unsupported on the bulk path — push a spec down via
        ``iterspec`` instead (the server folds its stream before the
        bytes hit the socket, framing stays columnar).
        """
        if scan_iterators:
            raise _iterspec.NonSerializableIteratorError(
                "scan_columns cannot run client-side (local-callable) "
                "scan iterators; pass a wire-serializable iterspec, or "
                "use scan_iterator() for per-cell stacks")
        clip = self.extent.clip(rng)
        if clip is None:
            return iter(())
        pump = _RemoteScanStream(
            self._inst, self._table, clip,
            [_Segment(self.addr, self.tablet_id, self.extent)],
            iterspec=iterspec, auths=auths)
        pump.reset(rng, columns)

        def batches():
            while True:
                batch = pump.next_batch()
                if batch is None:
                    return
                yield batch

        return batches()

    def scan(self, rng: Range = Range(), columns: Columns = None,
             table_iterators: Sequence = (),
             scan_iterators: Sequence = (), iterspec=None,
             auths=None) -> List[Cell]:
        it = self.scan_iterator(rng, table_iterators, scan_iterators,
                                iterspec=iterspec, auths=auths)
        return drain(it, rng, columns)

    # -- writes -----------------------------------------------------------

    def _batch_payload(self, muts: List[tuple]) -> wire.CellsPayload:
        return wire.CellsPayload(
            {"table": self._table, "tablet_id": self.tablet_id},
            _cells.encode_block(muts))

    def write_raw_batch(self, mutations) -> int:
        muts = [tuple(m) for m in mutations]
        if not muts:
            return 0
        try:
            resp = self._inst.core.mutate(
                self.addr, wire.WRITE_BATCH, self._batch_payload(muts),
                compress=self._inst.compress)
            return resp["applied"]
        except NotHostedError:
            return self._rebin(muts)

    def submit_raw_batch(self, mutations) -> Tuple[
            concurrent.futures.Future, List[tuple]]:
        """Pipelined ``write_raw_batch``: the batch is stamped and sent
        now; the returned future resolves to the ack.  The caller must
        drain it (``WritePipeline`` owns the ordering discipline)."""
        muts = [tuple(m) for m in mutations]
        fut = self._inst.core.submit_mutate(
            self.addr, wire.WRITE_BATCH, self._batch_payload(muts),
            compress=self._inst.compress)
        return fut, muts

    def _rebin(self, muts: List[tuple]) -> int:
        """This tablet split (or migrated) under the writer: re-route
        its share of the batch through a fresh locate index, preserving
        mutation order per new owner (timestamps stay bit-identical —
        order within each owning tablet is what the clock stamps)."""
        self._inst.invalidate(self._table)
        starts, tablets = self._inst.locate_index(self._table)
        groups: List[Tuple[TabletProxy, List[tuple]]] = []
        by_tablet: dict = {}
        for mut in muts:
            idx = bisect.bisect_right(starts, mut[0]) - 1
            tablet = tablets[max(idx, 0)]
            group = by_tablet.get(tablet.tablet_id)
            if group is None:
                group = by_tablet[tablet.tablet_id] = []
                groups.append((tablet, group))
            group.append(mut)
        return sum(tablet.write_raw_batch(g) for tablet, g in groups)

    # -- introspection ----------------------------------------------------

    def info(self) -> dict:
        return self._inst.core.call(self.addr, wire.TABLET_INFO, {
            "table": self._table, "tablet_id": self.tablet_id})

    @property
    def sstables(self) -> Tuple["_RunInfo", ...]:
        """Snapshot of the remote tablet's sorted runs (sizes only)."""
        return tuple(_RunInfo(n) for n in self.info()["sstables"])

    def entry_estimate(self) -> int:
        return self.info()["entries"]


class WritePipeline:
    """One-flush-deep pipelined writes for a BatchWriter.

    ``submit(groups)`` first drains the *previous* flush's in-flight
    acks, then fires the new flush's per-tablet batches concurrently.
    The one-deep discipline is the correctness lever: a tablet's batch
    from flush N is acked before its batch from flush N+1 is sent, so
    the server's per-tablet logical clock stamps timestamps in exactly
    the order an unpipelined writer would (bit-identical scans).
    Within one flush, batches go to *distinct* tablets, whose clocks
    are independent — those overlap freely.

    A batch that lands on a split tablet surfaces ``NotHostedError``
    at drain time and is re-binned synchronously through a fresh
    locate index, preserving exactly-once (the failed batch applied
    nothing server-side).
    """

    def __init__(self, inst: "RemoteInstance"):
        self._inst = inst
        #: (proxy, muts, future) triples of the flush in flight
        self._inflight: List[Tuple[TabletProxy, List[tuple],
                                   concurrent.futures.Future]] = []

    def submit(self, groups) -> None:
        self.drain()
        inflight = self._inflight
        for proxy, muts in groups:
            fut, kept = proxy.submit_raw_batch(muts)
            inflight.append((proxy, kept, fut))

    def drain(self) -> int:
        """Block until every in-flight batch is acked (re-binning
        relocated ones); raises the first hard failure."""
        inflight, self._inflight = self._inflight, []
        applied = 0
        first_exc: Optional[BaseException] = None
        for proxy, muts, fut in inflight:
            try:
                applied += fut.result()["applied"]
            except NotHostedError:
                try:
                    applied += proxy._rebin(muts)
                except Exception as exc:  # noqa: BLE001 - keep draining
                    if first_exc is None:
                        first_exc = exc
            except Exception as exc:  # noqa: BLE001 - keep draining
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc
        return applied

    def close(self) -> None:
        self.drain()


class _RunInfo:
    """Shape of one remote sorted run (length only)."""

    __slots__ = ("entries",)

    def __init__(self, entries: int):
        self.entries = entries

    def __len__(self) -> int:
        return self.entries

    def __repr__(self) -> str:
        return f"_RunInfo(entries={self.entries})"


class _TableCache:
    __slots__ = ("version", "starts", "proxies", "config")

    def __init__(self, version: int, starts: List[str],
                 proxies: List[TabletProxy], config: TableConfig):
        self.version = version
        self.starts = starts
        self.proxies = proxies
        self.config = config


class RemoteInstance:
    """The :class:`~repro.dbsim.backend.ConnectorBackend` that speaks
    the wire protocol: table ops go to the manager; the data path goes
    straight to tablet servers through cached :class:`TabletProxy`
    routing (one ``locate`` RPC per table until something moves).

    ``compress=True`` turns on per-frame zlib for cell payloads (scan
    chunks and write batches) — worth it over real networks, usually
    not over loopback."""

    def __init__(self, manager_addr: Union[str, Addr],
                 metrics: Optional[MetricsRegistry] = None,
                 retry: Optional[RetryPolicy] = None, seed: int = 0,
                 compress: bool = False):
        self.manager_addr = parse_addr(manager_addr)
        self.core = RpcCore(metrics=metrics, retry=retry, seed=seed)
        self.compress = compress
        self._cache: Dict[str, _TableCache] = {}

    # -- locate cache -----------------------------------------------------

    def invalidate(self, name: Optional[str] = None) -> None:
        if name is None:
            self._cache.clear()
        else:
            self._cache.pop(name, None)

    def _table(self, name: str) -> _TableCache:
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        resp = self.core.call(self.manager_addr, wire.LOCATE,
                              {"table": name})
        proxies = [
            TabletProxy(self, name, t["tablet_id"],
                        wire.wire_to_range(t["extent"]),
                        parse_addr(t["addr"]))
            for t in resp["tablets"]]
        starts = [p.extent.start_row or "" for p in proxies]
        cached = _TableCache(resp["version"], starts, proxies,
                             wire.wire_to_config(resp["config"]))
        self._cache[name] = cached
        return cached

    # -- table lifecycle --------------------------------------------------

    def create_table(self, name: str, config: Optional[TableConfig] = None,
                     splits: Sequence[str] = ()) -> None:
        self.core.mutate(self.manager_addr, wire.CREATE_TABLE, {
            "name": name, "config": wire.config_to_wire(config),
            "splits": list(splits)})
        self.invalidate(name)

    def delete_table(self, name: str) -> None:
        self.core.mutate(self.manager_addr, wire.DELETE_TABLE,
                         {"name": name})
        self.invalidate(name)

    def table_exists(self, name: str) -> bool:
        return self.core.call(self.manager_addr, wire.TABLE_EXISTS,
                              {"name": name})["exists"]

    def list_tables(self) -> List[str]:
        return self.core.call(self.manager_addr, wire.LIST_TABLES,
                              {})["tables"]

    def config(self, name: str) -> TableConfig:
        return self._table(name).config

    # -- writes -----------------------------------------------------------

    def write_pipeline(self) -> WritePipeline:
        """A fresh pipelined-flush handle (BatchWriter plugs in here
        via duck typing — the local backend has no such method, so
        local writers stay sequential)."""
        return WritePipeline(self)

    # -- tablet location --------------------------------------------------

    def add_split(self, name: str, split_row: str) -> None:
        self.core.mutate(self.manager_addr, wire.ADD_SPLIT,
                         {"table": name, "row": split_row})
        self.invalidate(name)

    def splits(self, name: str) -> List[str]:
        return self.core.call(self.manager_addr, wire.SPLITS,
                              {"table": name})["splits"]

    def tablets(self, name: str) -> List[TabletProxy]:
        return list(self._table(name).proxies)

    def locate_index(self, name: str) -> Tuple[List[str],
                                               List[TabletProxy]]:
        cached = self._table(name)
        return cached.starts, cached.proxies

    def locate(self, name: str, row: str) -> TabletProxy:
        starts, proxies = self.locate_index(name)
        idx = bisect.bisect_right(starts, row) - 1
        return proxies[max(idx, 0)]

    def tablets_for_range(self, name: str, rng: Range) -> List[TabletProxy]:
        starts, proxies = self.locate_index(name)
        lo = 0 if rng.start_row is None else \
            max(bisect.bisect_right(starts, rng.start_row) - 1, 0)
        out: List[TabletProxy] = []
        for proxy in proxies[lo:]:
            if (rng.stop_row is not None
                    and proxy.extent.start_row is not None
                    and proxy.extent.start_row >= rng.stop_row):
                break
            if proxy.extent.clip(rng) is not None:
                out.append(proxy)
        return out

    def scan_columns(self, table: str, rng: Range = Range(),
                     columns: Columns = None, iterspec=None, auths=None):
        """Native bulk columnar scan: ONE pump spanning every tablet
        overlapping ``rng``, yielding
        :class:`~repro.net.cells.ColumnBatch`\\ es in global key order.

        This is the fabric's preferred bulk read path — the pump fans
        out stream opens across the tablets' servers so they scan in
        parallel, where the per-tablet ``TabletProxy.scan_columns``
        necessarily pays a serial open-and-drain round per tablet.
        ``Scanner.scan_columns`` dispatches here when the backend
        offers it (client-side visibility filtering stays with the
        caller).  ``iterspec`` pushes a validated iterator stack into
        every tablet server the pump touches — each server filters and
        folds its own merged stream before bytes hit the socket."""
        proxies = self.tablets_for_range(table, rng)
        if not proxies:
            return
        pump = _RemoteScanStream(
            self, table, rng,
            [_Segment(p.addr, p.tablet_id, p.extent) for p in proxies],
            iterspec=iterspec, auths=auths)
        pump.reset(rng, columns)
        while True:
            batch = pump.next_batch()
            if batch is None:
                return
            yield batch

    # -- maintenance ------------------------------------------------------

    def flush_table(self, name: str) -> None:
        self.core.call(self.manager_addr, wire.FLUSH, {"table": name})

    def compact_table(self, name: str) -> None:
        self.core.call(self.manager_addr, wire.COMPACT, {"table": name})

    # -- cluster control (no local-backend analogue) ----------------------

    def crash_server(self, server: str) -> None:
        """Simulate a crash of the named tablet server (memtables lost;
        data ops fail typed until :meth:`recover_server`)."""
        self.core.call(self.manager_addr, wire.CRASH, {"server": server})

    def recover_server(self, server: str, replay_wal: bool = True) -> None:
        self.core.call(self.manager_addr, wire.RECOVER,
                       {"server": server, "replay_wal": replay_wal})

    def status(self) -> dict:
        return self.core.call(self.manager_addr, wire.STATUS, {})

    def cluster_metrics(self) -> dict:
        """Per-process metric exports: ``{"manager": {...},
        "servers": {name: {...}}}``."""
        return self.core.call(self.manager_addr, wire.METRICS, {})

    def telemetry(self, sample: bool = True) -> dict:
        """The manager's ring-buffered telemetry history (wire form of
        :class:`~repro.net.telemetry.ClusterTelemetry`).  ``sample=True``
        asks the manager to take a fresh cluster sample first, so
        polling works even with the background sampler off."""
        return self.core.call(self.manager_addr, wire.TELEMETRY,
                              {"sample": sample})

    def shutdown_cluster(self) -> None:
        self.core.call(self.manager_addr, wire.SHUTDOWN, {})

    # -- observability ----------------------------------------------------

    def total_stats(self) -> OpStats:
        resp = self.core.call(self.manager_addr, wire.STATS, {})
        return OpStats.from_dict(resp["total"])

    def table_entry_estimate(self, name: str) -> int:
        return sum(p.entry_estimate() for p in self._table(name).proxies)

    def close(self) -> None:
        self.core.close()


class RemoteConnector(Connector):
    """A :class:`~repro.dbsim.client.Connector` whose backend is a
    cluster on the other side of a socket.  Everything a Connector can
    do — including the Graphulo kernels built on it — works unchanged;
    construction is the only difference::

        conn = RemoteConnector("127.0.0.1:40123")
    """

    def __init__(self, manager_addr: Union[str, Addr, RemoteInstance],
                 metrics: Optional[MetricsRegistry] = None,
                 retry: Optional[RetryPolicy] = None, seed: int = 0,
                 compress: bool = False):
        if isinstance(manager_addr, RemoteInstance):
            inst = manager_addr
        else:
            inst = RemoteInstance(manager_addr, metrics=metrics,
                                  retry=retry, seed=seed, compress=compress)
        super().__init__(inst)

    def close(self) -> None:
        self.instance.close()

    def __enter__(self) -> "RemoteConnector":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
