"""The remote side of the client API: RemoteConnector and friends.

:class:`RemoteConnector` subclasses :class:`~repro.dbsim.client.
Connector` and swaps its backend for a :class:`RemoteInstance` that
speaks the :mod:`repro.net.wire` protocol to a manager + tablet-server
fleet.  Scanner, BatchScanner and BatchWriter are reused *unchanged*:
they only ever touch ``conn.instance`` (the
:class:`~repro.dbsim.backend.ConnectorBackend` contract), and
``RemoteInstance`` hands them :class:`TabletProxy` objects wherever the
local backend hands them :class:`~repro.dbsim.tablet.Tablet`\\ s.

Reliability model:

* every RPC has a socket deadline; transport failures (closed
  connection, timeout, CRC-corrupt frame) and
  :class:`~repro.dbsim.errors.ServerCrashedError` retry with
  exponential backoff + decorrelated jitter (seeded);
* mutating RPCs carry a ``(session, seq)`` pair the server deduplicates
  on, so a retried ``write_batch`` whose ack was dropped is applied
  exactly once;
* :class:`~repro.dbsim.errors.NotHostedError` (a split migrated the
  tablet, or the location cache is stale) triggers a re-``locate``
  through the manager and re-routing — mid-batch for writes, mid-stream
  (with a resume key) for scans;
* connections are pooled per server address and reused across RPCs.

Everything counts into ``net.client.*`` metrics and (when tracing is
enabled) emits ``rpc.client.*`` spans.
"""

from __future__ import annotations

import bisect
import os
import random
import socket
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.dbsim.client import Connector
from repro.dbsim.errors import NotHostedError, ServerCrashedError
from repro.dbsim.iterators import Columns, ListIterator, SortedKVIterator, drain
from repro.dbsim.key import Cell, Range
from repro.dbsim.server import TableConfig
from repro.dbsim.stats import OpStats
from repro.net import wire
from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry, global_registry

Addr = Tuple[str, int]


def parse_addr(addr: Union[str, Addr]) -> Addr:
    """``"host:port"`` → ``(host, port)`` (tuples pass through)."""
    if isinstance(addr, tuple):
        return addr
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"bad address {addr!r}: want host:port")
    return host, int(port)


def format_addr(addr: Addr) -> str:
    return f"{addr[0]}:{addr[1]}"


class RetryPolicy:
    """Deadline + backoff knobs for one client.

    ``attempts`` bounds tries per RPC (and per scan-stream reopen);
    ``deadline`` is the per-RPC socket timeout in seconds.  Backoff is
    decorrelated jitter: ``sleep = min(cap, uniform(base, 3·prev))`` —
    retries spread out instead of thundering in lockstep.
    """

    def __init__(self, attempts: int = 8, base: float = 0.02,
                 cap: float = 0.5, deadline: float = 5.0,
                 connect_timeout: float = 5.0):
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self.attempts = attempts
        self.base = base
        self.cap = cap
        self.deadline = deadline
        self.connect_timeout = connect_timeout

    def next_sleep(self, prev: Optional[float], rng: random.Random) -> float:
        if prev is None:
            return self.base
        return min(self.cap, rng.uniform(self.base, prev * 3))


class _ConnPool:
    """Idle sockets per server address (LIFO: reuse the warmest)."""

    def __init__(self):
        self._idle: Dict[Addr, List[socket.socket]] = {}
        self._lock = threading.Lock()

    def get(self, addr: Addr) -> Optional[socket.socket]:
        with self._lock:
            stack = self._idle.get(addr)
            return stack.pop() if stack else None

    def put(self, addr: Addr, sock: socket.socket) -> None:
        with self._lock:
            self._idle.setdefault(addr, []).append(sock)

    def close_all(self) -> None:
        with self._lock:
            socks = [s for stack in self._idle.values() for s in stack]
            self._idle.clear()
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass


class RpcCore:
    """Shared RPC machinery: pooling, deadlines, retries, write dedup.

    One core per :class:`RemoteInstance` (the manager process also owns
    one for server fan-out).  ``mutate`` stamps mutating requests with
    this core's session id and a monotonically increasing sequence
    number; a retry re-sends the *same* sequence number, which is what
    lets the server replay the cached ack instead of re-applying.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 retry: Optional[RetryPolicy] = None, seed: int = 0):
        self.metrics = metrics if metrics is not None else global_registry()
        self.retry = retry if retry is not None else RetryPolicy()
        self.session = os.urandom(8).hex()
        self._rng = random.Random(seed)
        self._pool = _ConnPool()
        self._seq = 0
        self._lock = threading.Lock()
        self._addr_strs: Dict[Addr, str] = {}
        # pre-register the health counters so a metrics export always
        # shows them (at 0), not only after the first retry/timeout
        for name in ("requests", "retries", "timeouts", "relocates",
                     "errors"):
            self.metrics.counter(f"net.client.{name}")

    # -- plumbing ---------------------------------------------------------

    def next_seq(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def _connect(self, addr: Addr) -> socket.socket:
        sock = socket.create_connection(
            addr, timeout=self.retry.connect_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def checkout(self, addr: Addr) -> socket.socket:
        sock = self._pool.get(addr)
        if sock is not None:
            self.metrics.counter("net.client.pool_hits").inc()
            return sock
        self.metrics.counter("net.client.pool_misses").inc()
        return self._connect(addr)

    def checkin(self, addr: Addr, sock: socket.socket) -> None:
        self._pool.put(addr, sock)

    def close(self) -> None:
        self._pool.close_all()

    # -- RPCs -------------------------------------------------------------

    def mutate(self, addr: Addr, op: int, payload: dict) -> dict:
        """A mutating RPC: stamped for exactly-once dedup, then sent
        through the same retry loop as ``call``."""
        stamped = dict(payload)
        stamped["session"] = self.session
        stamped["seq"] = self.next_seq()
        return self.call(addr, op, stamped)

    def call(self, addr: Addr, op: int, payload: dict) -> dict:
        if not _trace.ENABLED:
            return self._call(addr, op, payload)
        addr_str = self._addr_strs.get(addr)
        if addr_str is None:
            addr_str = self._addr_strs[addr] = format_addr(addr)
        with _trace.span("rpc.client.call", op=wire.OP_NAMES.get(op, op),
                         server=addr_str) as sp:
            # every attempt (retries included) carries this span's
            # identity, so even a server span reached on the Nth try
            # parents under the one client call
            result = self._call(addr, op, payload, tc=sp.context)
            sp.attrs["session"] = self.session
            return result

    def _call(self, addr: Addr, op: int, payload: dict,
              tc: Optional[_trace.TraceContext] = None) -> dict:
        counters = self.metrics.counter
        hist = self.metrics.histogram("net.client.rpc_seconds")
        opname = wire.OP_NAMES.get(op, hex(op))
        sleep: Optional[float] = None
        last_exc: Optional[BaseException] = None
        for attempt in range(self.retry.attempts):
            if attempt:
                sleep = self.retry.next_sleep(sleep, self._rng)
                time.sleep(sleep)
                counters("net.client.retries").inc()
            counters("net.client.requests").inc()
            t0 = time.perf_counter()
            sock: Optional[socket.socket] = None
            try:
                sock = self.checkout(addr)
                sock.settimeout(self.retry.deadline)
                nsent = wire.send_frame(sock, op, payload, tc=tc)
                counters("net.client.bytes_sent").inc(nsent)
                counters(f"net.client.op.{opname}.bytes_sent").inc(nsent)
                code, resp, nread, _ = wire.recv_frame(sock)
                counters("net.client.bytes_received").inc(nread)
                counters(f"net.client.op.{opname}.bytes_received").inc(nread)
            except wire.FrameCorruptError as exc:
                self._scrap(sock)
                last_exc = exc
                continue
            except (socket.timeout, TimeoutError) as exc:
                counters("net.client.timeouts").inc()
                self._scrap(sock)
                last_exc = exc
                continue
            except (wire.ProtocolError, OSError) as exc:
                # includes ConnectionClosedError / refused / reset
                self._scrap(sock)
                if isinstance(exc, wire.ProtocolError):
                    raise  # version skew / garbage framing: not transient
                last_exc = exc
                continue
            hist.observe(time.perf_counter() - t0)
            if code == wire.OK:
                self.checkin(addr, sock)
                return resp
            if code == wire.ERROR:
                self.checkin(addr, sock)  # the connection itself is fine
                try:
                    wire.raise_error(resp)
                except ServerCrashedError as exc:
                    last_exc = exc  # server will come back: retry
                    continue
                except NotHostedError:
                    counters("net.client.relocates").inc()
                    raise  # caller re-locates and re-routes
                except Exception:
                    counters("net.client.errors").inc()
                    raise
            self._scrap(sock)
            raise wire.ProtocolError(
                f"unexpected response op-code {code:#x} to "
                f"{wire.OP_NAMES.get(op, op)}")
        counters("net.client.errors").inc()
        raise wire.RpcError(
            f"{wire.OP_NAMES.get(op, op)} to {format_addr(addr)} failed "
            f"after {self.retry.attempts} attempts") from last_exc

    @staticmethod
    def _scrap(sock: Optional[socket.socket]) -> None:
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass


# -- scan streaming ---------------------------------------------------------


class _Segment:
    """One (server, tablet) leg of a possibly re-planned scan."""

    __slots__ = ("addr", "tablet_id", "extent")

    def __init__(self, addr: Addr, tablet_id: str, extent: Range):
        self.addr = addr
        self.tablet_id = tablet_id
        self.extent = extent


class _RemoteScanIterator(SortedKVIterator):
    """The raw server-side cell stream behind a remote scan stack.

    Presents the standard seek/has_top/top/advance contract over a
    sequence of CHUNK frames.  The stream is resumable: every consumed
    cell updates the resume key, and any mid-stream failure (timeout,
    reset, corrupt frame, server crash) reopens the stream asking the
    server to skip everything at or before that key.  A
    ``NotHostedError`` instead re-locates through the manager and
    re-plans the remaining row-range over the new tablet layout — which
    is how a scan survives a split or migration that happens under it.

    Client-side scan iterators (visibility filter, user iterators) are
    layered on top by :meth:`TabletProxy.scan_iterator`; the cells seen
    here are post-versioning server output.
    """

    def __init__(self, inst: "RemoteInstance", table: str, clip: Range,
                 segment: _Segment):
        self._inst = inst
        self._table = table
        self._clip = clip  # construction range ∩ proxy extent
        self._home = segment
        self._segments: List[_Segment] = []
        self._effective: Optional[Range] = None
        self._columns: Columns = None
        self._buffer: deque = deque()
        self._resume: Optional[list] = None
        self._finished = True
        self._sock: Optional[socket.socket] = None
        self._span = None  # detached rpc.client.scan span per open stream

    # -- iterator contract ------------------------------------------------

    def seek(self, rng: Range, columns: Columns = None) -> None:
        self._close(reusable=False)
        self._buffer.clear()
        self._resume = None
        self._columns = list(columns) if columns else None
        self._effective = self._clip.clip(rng)
        self._finished = self._effective is None
        self._segments = [] if self._finished else [self._home]

    def has_top(self) -> bool:
        while not self._buffer and not self._finished:
            self._pump()
        return bool(self._buffer)

    def top(self) -> Cell:
        if not self.has_top():
            raise StopIteration("iterator exhausted")
        return self._buffer[0]

    def advance(self) -> None:
        if not self.has_top():
            return
        cell = self._buffer.popleft()
        k = cell.key
        self._resume = [k.row, k.family, k.qualifier, k.visibility,
                        k.timestamp, k.delete]

    # -- streaming --------------------------------------------------------

    def _open(self) -> None:
        seg = self._segments[0]
        core = self._inst.core
        sock = core.checkout(seg.addr)
        sock.settimeout(core.retry.deadline)
        payload = {
            "table": self._table,
            "tablet_id": seg.tablet_id,
            "range": wire.range_to_wire(self._effective),
            "columns": ([list(c) for c in self._columns]
                        if self._columns else None),
            "resume": self._resume,
        }
        tc = None
        if _trace.ENABLED:
            # detached: a scan stream stays open across iterator pulls,
            # so its span cannot be lexically scoped.  _close() finishes
            # it; a resume/re-plan opens a fresh one.
            self._span = _trace.start_span(
                "rpc.client.scan", op="scan", table=self._table,
                server=format_addr(seg.addr))
            tc = self._span.context
        core.metrics.counter("net.client.requests").inc()
        nsent = wire.send_frame(sock, wire.SCAN, payload, tc=tc)
        core.metrics.counter("net.client.bytes_sent").inc(nsent)
        core.metrics.counter("net.client.op.scan.bytes_sent").inc(nsent)
        self._sock = sock

    def _pump(self) -> None:
        """Receive frames until the buffer has cells, the current
        segment completes, or the scan is re-planned."""
        core = self._inst.core
        counters = core.metrics.counter
        sleep: Optional[float] = None
        attempts = 0
        while not self._buffer and not self._finished:
            seg = self._segments[0]
            try:
                if self._sock is None:
                    if attempts:
                        sleep = core.retry.next_sleep(sleep, core._rng)
                        time.sleep(sleep)
                        counters("net.client.retries").inc()
                        counters("net.client.scan_resumes").inc()
                    attempts += 1
                    self._open()
                code, payload, nread, _ = wire.recv_frame(self._sock)
                counters("net.client.bytes_received").inc(nread)
                counters("net.client.op.scan.bytes_received").inc(nread)
            except wire.FrameCorruptError:
                self._bail(counters, attempts)
                continue
            except (socket.timeout, TimeoutError):
                counters("net.client.timeouts").inc()
                self._bail(counters, attempts)
                continue
            except (wire.ProtocolError, OSError) as exc:
                self._close(reusable=False)
                if isinstance(exc, wire.ProtocolError):
                    raise
                self._check_budget(counters, attempts, exc)
                continue
            if code == wire.CHUNK:
                attempts = 0  # progress: reset the retry budget
                self._buffer.extend(wire.wire_to_cell(c) for c in payload)
                counters("net.client.scan_chunks").inc()
                if self._span is not None:
                    attrs = self._span.attrs
                    attrs["chunks"] = attrs.get("chunks", 0) + 1
                    attrs["bytes"] = attrs.get("bytes", 0) + nread
            elif code == wire.DONE:
                self._close(reusable=True)
                self._segments.pop(0)
                if not self._segments:
                    self._finished = True
                attempts = 0
            elif code == wire.ERROR:
                self._close(reusable=False)
                try:
                    wire.raise_error(payload)
                except ServerCrashedError as exc:
                    self._check_budget(counters, attempts, exc)
                except NotHostedError:
                    counters("net.client.relocates").inc()
                    self._replan(seg)
                    attempts = 0
            else:
                self._close(reusable=False)
                raise wire.ProtocolError(
                    f"unexpected frame {code:#x} in scan stream")

    def _bail(self, counters, attempts: int) -> None:
        self._close(reusable=False)
        self._check_budget(counters, attempts,
                           wire.RpcError("scan stream interrupted"))

    def _check_budget(self, counters, attempts: int,
                      exc: BaseException) -> None:
        if attempts >= self._inst.core.retry.attempts:
            counters("net.client.errors").inc()
            raise wire.RpcError(
                f"scan of {self._table!r} failed after {attempts} "
                f"attempts") from exc

    def _replan(self, failed: _Segment) -> None:
        """The tablet moved (split/migration): rebuild the remaining
        segments from a fresh locate index."""
        self._inst.invalidate(self._table)
        remaining = Range(
            self._resume[0] if self._resume else self._effective.start_row,
            self._effective.stop_row)
        _, proxies = self._inst.locate_index(self._table)
        self._segments = [
            _Segment(p.addr, p.tablet_id, p.extent) for p in proxies
            if p.extent.clip(remaining) is not None]
        if not self._segments:
            self._finished = True

    def _close(self, reusable: bool) -> None:
        span, self._span = self._span, None
        if span is not None:
            span.finish()
        sock, self._sock = self._sock, None
        if sock is None:
            return
        if reusable and self._segments:
            self._inst.core.checkin(self._segments[0].addr, sock)
        else:
            try:
                sock.close()
            except OSError:
                pass

    def __del__(self):  # abandoned mid-stream: don't leak the socket
        try:
            self._close(reusable=False)
        except Exception:
            pass


# -- the backend ------------------------------------------------------------


class TabletProxy:
    """Client-side stand-in for one remote tablet.

    Implements the :class:`~repro.dbsim.backend.TabletBackend` contract
    Scanner/BatchScanner/BatchWriter program against, turning each call
    into RPCs against the hosting server.
    """

    def __init__(self, inst: "RemoteInstance", table: str, tablet_id: str,
                 extent: Range, addr: Addr):
        self._inst = inst
        self._table = table
        self.tablet_id = tablet_id
        self.extent = extent
        self.addr = addr

    def __repr__(self) -> str:
        return (f"TabletProxy({self._table}/{self.tablet_id} "
                f"@ {format_addr(self.addr)})")

    # -- reads ------------------------------------------------------------

    def scan_iterator(self, rng: Range,
                      table_iterators: Sequence = (),
                      scan_iterators: Sequence = ()) -> SortedKVIterator:
        # table_iterators are deliberately ignored: the server applies
        # the table's configured stack (it owns the authoritative
        # config); scan-time iterators run client-side over the stream.
        clip = self.extent.clip(rng)
        if clip is None:
            return ListIterator([])
        stack: SortedKVIterator = _RemoteScanIterator(
            self._inst, self._table, clip,
            _Segment(self.addr, self.tablet_id, self.extent))
        for factory in scan_iterators:
            stack = factory(stack)
        return stack

    def scan(self, rng: Range = Range(), columns: Columns = None,
             table_iterators: Sequence = (),
             scan_iterators: Sequence = ()) -> List[Cell]:
        it = self.scan_iterator(rng, table_iterators, scan_iterators)
        return drain(it, rng, columns)

    # -- writes -----------------------------------------------------------

    def write_raw_batch(self, mutations) -> int:
        muts = [list(m) for m in mutations]
        if not muts:
            return 0
        try:
            resp = self._inst.core.mutate(self.addr, wire.WRITE_BATCH, {
                "table": self._table, "tablet_id": self.tablet_id,
                "mutations": muts})
            return resp["applied"]
        except NotHostedError:
            return self._rebin(muts)

    def _rebin(self, muts: List[list]) -> int:
        """This tablet split (or migrated) under the writer: re-route
        its share of the batch through a fresh locate index, preserving
        mutation order per new owner (timestamps stay bit-identical —
        order within each owning tablet is what the clock stamps)."""
        self._inst.invalidate(self._table)
        starts, tablets = self._inst.locate_index(self._table)
        groups: List[Tuple[TabletProxy, List[list]]] = []
        by_tablet: dict = {}
        for mut in muts:
            idx = bisect.bisect_right(starts, mut[0]) - 1
            tablet = tablets[max(idx, 0)]
            group = by_tablet.get(tablet.tablet_id)
            if group is None:
                group = by_tablet[tablet.tablet_id] = []
                groups.append((tablet, group))
            group.append(mut)
        return sum(tablet.write_raw_batch(g) for tablet, g in groups)

    # -- introspection ----------------------------------------------------

    def info(self) -> dict:
        return self._inst.core.call(self.addr, wire.TABLET_INFO, {
            "table": self._table, "tablet_id": self.tablet_id})

    @property
    def sstables(self) -> Tuple["_RunInfo", ...]:
        """Snapshot of the remote tablet's sorted runs (sizes only)."""
        return tuple(_RunInfo(n) for n in self.info()["sstables"])

    def entry_estimate(self) -> int:
        return self.info()["entries"]


class _RunInfo:
    """Shape of one remote sorted run (length only)."""

    __slots__ = ("entries",)

    def __init__(self, entries: int):
        self.entries = entries

    def __len__(self) -> int:
        return self.entries

    def __repr__(self) -> str:
        return f"_RunInfo(entries={self.entries})"


class _TableCache:
    __slots__ = ("version", "starts", "proxies", "config")

    def __init__(self, version: int, starts: List[str],
                 proxies: List[TabletProxy], config: TableConfig):
        self.version = version
        self.starts = starts
        self.proxies = proxies
        self.config = config


class RemoteInstance:
    """The :class:`~repro.dbsim.backend.ConnectorBackend` that speaks
    the wire protocol: table ops go to the manager; the data path goes
    straight to tablet servers through cached :class:`TabletProxy`
    routing (one ``locate`` RPC per table until something moves)."""

    def __init__(self, manager_addr: Union[str, Addr],
                 metrics: Optional[MetricsRegistry] = None,
                 retry: Optional[RetryPolicy] = None, seed: int = 0):
        self.manager_addr = parse_addr(manager_addr)
        self.core = RpcCore(metrics=metrics, retry=retry, seed=seed)
        self._cache: Dict[str, _TableCache] = {}

    # -- locate cache -----------------------------------------------------

    def invalidate(self, name: Optional[str] = None) -> None:
        if name is None:
            self._cache.clear()
        else:
            self._cache.pop(name, None)

    def _table(self, name: str) -> _TableCache:
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        resp = self.core.call(self.manager_addr, wire.LOCATE,
                              {"table": name})
        proxies = [
            TabletProxy(self, name, t["tablet_id"],
                        wire.wire_to_range(t["extent"]),
                        parse_addr(t["addr"]))
            for t in resp["tablets"]]
        starts = [p.extent.start_row or "" for p in proxies]
        cached = _TableCache(resp["version"], starts, proxies,
                             wire.wire_to_config(resp["config"]))
        self._cache[name] = cached
        return cached

    # -- table lifecycle --------------------------------------------------

    def create_table(self, name: str, config: Optional[TableConfig] = None,
                     splits: Sequence[str] = ()) -> None:
        self.core.mutate(self.manager_addr, wire.CREATE_TABLE, {
            "name": name, "config": wire.config_to_wire(config),
            "splits": list(splits)})
        self.invalidate(name)

    def delete_table(self, name: str) -> None:
        self.core.mutate(self.manager_addr, wire.DELETE_TABLE,
                         {"name": name})
        self.invalidate(name)

    def table_exists(self, name: str) -> bool:
        return self.core.call(self.manager_addr, wire.TABLE_EXISTS,
                              {"name": name})["exists"]

    def list_tables(self) -> List[str]:
        return self.core.call(self.manager_addr, wire.LIST_TABLES,
                              {})["tables"]

    def config(self, name: str) -> TableConfig:
        return self._table(name).config

    # -- tablet location --------------------------------------------------

    def add_split(self, name: str, split_row: str) -> None:
        self.core.mutate(self.manager_addr, wire.ADD_SPLIT,
                         {"table": name, "row": split_row})
        self.invalidate(name)

    def splits(self, name: str) -> List[str]:
        return self.core.call(self.manager_addr, wire.SPLITS,
                              {"table": name})["splits"]

    def tablets(self, name: str) -> List[TabletProxy]:
        return list(self._table(name).proxies)

    def locate_index(self, name: str) -> Tuple[List[str],
                                               List[TabletProxy]]:
        cached = self._table(name)
        return cached.starts, cached.proxies

    def locate(self, name: str, row: str) -> TabletProxy:
        starts, proxies = self.locate_index(name)
        idx = bisect.bisect_right(starts, row) - 1
        return proxies[max(idx, 0)]

    def tablets_for_range(self, name: str, rng: Range) -> List[TabletProxy]:
        starts, proxies = self.locate_index(name)
        lo = 0 if rng.start_row is None else \
            max(bisect.bisect_right(starts, rng.start_row) - 1, 0)
        out: List[TabletProxy] = []
        for proxy in proxies[lo:]:
            if (rng.stop_row is not None
                    and proxy.extent.start_row is not None
                    and proxy.extent.start_row >= rng.stop_row):
                break
            if proxy.extent.clip(rng) is not None:
                out.append(proxy)
        return out

    # -- maintenance ------------------------------------------------------

    def flush_table(self, name: str) -> None:
        self.core.call(self.manager_addr, wire.FLUSH, {"table": name})

    def compact_table(self, name: str) -> None:
        self.core.call(self.manager_addr, wire.COMPACT, {"table": name})

    # -- cluster control (no local-backend analogue) ----------------------

    def crash_server(self, server: str) -> None:
        """Simulate a crash of the named tablet server (memtables lost;
        data ops fail typed until :meth:`recover_server`)."""
        self.core.call(self.manager_addr, wire.CRASH, {"server": server})

    def recover_server(self, server: str, replay_wal: bool = True) -> None:
        self.core.call(self.manager_addr, wire.RECOVER,
                       {"server": server, "replay_wal": replay_wal})

    def status(self) -> dict:
        return self.core.call(self.manager_addr, wire.STATUS, {})

    def cluster_metrics(self) -> dict:
        """Per-process metric exports: ``{"manager": {...},
        "servers": {name: {...}}}``."""
        return self.core.call(self.manager_addr, wire.METRICS, {})

    def telemetry(self, sample: bool = True) -> dict:
        """The manager's ring-buffered telemetry history (wire form of
        :class:`~repro.net.telemetry.ClusterTelemetry`).  ``sample=True``
        asks the manager to take a fresh cluster sample first, so
        polling works even with the background sampler off."""
        return self.core.call(self.manager_addr, wire.TELEMETRY,
                              {"sample": sample})

    def shutdown_cluster(self) -> None:
        self.core.call(self.manager_addr, wire.SHUTDOWN, {})

    # -- observability ----------------------------------------------------

    def total_stats(self) -> OpStats:
        resp = self.core.call(self.manager_addr, wire.STATS, {})
        return OpStats.from_dict(resp["total"])

    def table_entry_estimate(self, name: str) -> int:
        return sum(p.entry_estimate() for p in self._table(name).proxies)

    def close(self) -> None:
        self.core.close()


class RemoteConnector(Connector):
    """A :class:`~repro.dbsim.client.Connector` whose backend is a
    cluster on the other side of a socket.  Everything a Connector can
    do — including the Graphulo kernels built on it — works unchanged;
    construction is the only difference::

        conn = RemoteConnector("127.0.0.1:40123")
    """

    def __init__(self, manager_addr: Union[str, Addr, RemoteInstance],
                 metrics: Optional[MetricsRegistry] = None,
                 retry: Optional[RetryPolicy] = None, seed: int = 0):
        if isinstance(manager_addr, RemoteInstance):
            inst = manager_addr
        else:
            inst = RemoteInstance(manager_addr, metrics=metrics,
                                  retry=retry, seed=seed)
        super().__init__(inst)

    def close(self) -> None:
        self.instance.close()

    def __enter__(self) -> "RemoteConnector":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
