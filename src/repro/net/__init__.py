"""repro.net: a TCP RPC fabric for dbsim tablet servers.

Promotes :mod:`repro.dbsim` from an in-process simulator to a
multi-process client/server system with a real network boundary — the
part of the Graphulo story (client ↔ tablet-server round trips,
partial failure, retries) a single process cannot model:

* :mod:`repro.net.wire` — length-prefixed framed protocol: versioned
  op-codes, CRC-checked JSON payloads, streaming scan chunks, and
  structured error frames that map server-side exceptions back to the
  same typed errors the in-process backend raises;
* :mod:`repro.net.faults` — seeded in-path fault injector (drop /
  delay / reset / corrupt-frame / slow-drip, per op-code) applied at
  response time so retries and write dedup are genuinely exercised;
* :mod:`repro.net.server` — ``TabletServerProcess`` wrapping the
  existing :class:`~repro.dbsim.server.TabletServer` machinery behind
  a threaded socket listener, plus a manager process owning table
  metadata and the locate index;
* :mod:`repro.net.client` — ``RemoteConnector``: the same API surface
  as :class:`~repro.dbsim.client.Connector` (Scanner / BatchScanner /
  BatchWriter drop in unchanged) over per-RPC deadlines, exponential
  backoff with decorrelated jitter, connection pooling, exactly-once
  write dedup, and automatic re-locate on ``NotHostedError``;
* :mod:`repro.net.cluster` — spawn / stop / crash / recover N server
  processes over localhost (``repro serve`` / ``repro cluster``).

Everything emits ``rpc.*`` spans and ``net.client.*`` /
``net.server.*`` counters through :mod:`repro.obs`, so ``repro
analyze``, the slowlog, and Prometheus exposition work on distributed
runs unchanged.  See ``docs/NET.md``.
"""

from repro.net.client import RemoteConnector, RemoteInstance, RetryPolicy
from repro.net.cluster import LocalCluster
from repro.net.faults import FaultPlan, FaultRule
from repro.net.server import ManagerProcess, TabletServerProcess
from repro.net.wire import (
    FrameCorruptError,
    ProtocolError,
    RpcError,
    WIRE_VERSION,
)

__all__ = [
    "RemoteConnector",
    "RemoteInstance",
    "RetryPolicy",
    "LocalCluster",
    "FaultPlan",
    "FaultRule",
    "ManagerProcess",
    "TabletServerProcess",
    "FrameCorruptError",
    "ProtocolError",
    "RpcError",
    "WIRE_VERSION",
]
