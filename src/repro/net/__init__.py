"""repro.net: a TCP RPC fabric for dbsim tablet servers.

Promotes :mod:`repro.dbsim` from an in-process simulator to a
multi-process client/server system with a real network boundary — the
part of the Graphulo story (client ↔ tablet-server round trips,
partial failure, retries) a single process cannot model:

* :mod:`repro.net.wire` — length-prefixed framed protocol (v3):
  versioned op-codes, CRC-checked payloads, an 8-byte request id for
  multiplexing, binary cell-block payloads (:mod:`repro.net.cells`)
  with optional per-frame zlib on the hot ops, streaming scan chunks,
  and structured error frames that map server-side exceptions back to
  the same typed errors the in-process backend raises;
* :mod:`repro.net.aio` — the asyncio multiplexed core: one persistent
  connection per server carrying every in-flight RPC, responses
  routed by request id;
* :mod:`repro.net.faults` — seeded in-path fault injector (drop /
  delay / reset / corrupt-frame / slow-drip / reorder, per op-code)
  applied at response time so retries and write dedup are genuinely
  exercised;
* :mod:`repro.net.server` — ``TabletServerProcess`` wrapping the
  existing :class:`~repro.dbsim.server.TabletServer` machinery behind
  a socket listener (per-connection reader + FIFO unary worker +
  capped scan threads, bounded-queue admission control with typed
  ``BusyError`` shedding), plus a manager process owning table
  metadata and the locate index;
* :mod:`repro.net.client` — ``RemoteConnector``: the same API surface
  as :class:`~repro.dbsim.client.Connector` (Scanner / BatchScanner /
  BatchWriter drop in unchanged) as a blocking facade over the async
  core — per-RPC deadlines, exponential backoff with decorrelated
  jitter, exactly-once write dedup, pipelined BatchWriter flushes,
  and automatic re-locate on ``NotHostedError``;
* :mod:`repro.net.cluster` — spawn / stop / crash / recover N server
  processes over localhost (``repro serve`` / ``repro cluster``);
* :mod:`repro.net.iterspec` — declarative, wire-serializable iterator
  stacks (``IterSpec``): filters, combiners, named Apply ops and row
  reduces validated against a whitelist and executed inside the
  tablet server's iterator stack, so filtered and folded scans ship
  only the surviving cells.

Everything emits ``rpc.*`` spans and ``net.client.*`` /
``net.server.*`` counters through :mod:`repro.obs`, so ``repro
analyze``, the slowlog, and Prometheus exposition work on distributed
runs unchanged.  See ``docs/NET.md``.
"""

from repro.dbsim.errors import BusyError
from repro.net.aio import AsyncRpcCore, StreamOverrunError
from repro.net.client import (
    RemoteConnector,
    RemoteInstance,
    RetryPolicy,
    WritePipeline,
)
from repro.net.cluster import LocalCluster
from repro.net.faults import FaultPlan, FaultRule
from repro.net.iterspec import (
    IterSpec,
    IterSpecError,
    NonSerializableIteratorError,
)
from repro.net.server import ManagerProcess, TabletServerProcess
from repro.net.wire import (
    CellsPayload,
    FrameCorruptError,
    ProtocolError,
    RpcError,
    WIRE_VERSION,
)

__all__ = [
    "AsyncRpcCore",
    "BusyError",
    "CellsPayload",
    "RemoteConnector",
    "RemoteInstance",
    "RetryPolicy",
    "StreamOverrunError",
    "WritePipeline",
    "LocalCluster",
    "FaultPlan",
    "FaultRule",
    "IterSpec",
    "IterSpecError",
    "NonSerializableIteratorError",
    "ManagerProcess",
    "TabletServerProcess",
    "FrameCorruptError",
    "ProtocolError",
    "RpcError",
    "WIRE_VERSION",
]
