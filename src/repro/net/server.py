"""Server side of the RPC fabric: tablet-server and manager services.

Two services, each a threaded TCP listener speaking
:mod:`repro.net.wire` frames:

* :class:`TabletServerService` wraps one
  :class:`~repro.dbsim.server.TabletServer` and its hosted
  :class:`~repro.dbsim.tablet.Tablet`\\ s.  It owns the *data path*:
  ``write_batch`` and streaming ``scan``, plus the hosting ops the
  manager drives (host / split / migrate) and the failure-simulation
  ops (crash / recover).
* :class:`ManagerService` owns what Accumulo's master + ZooKeeper own:
  table configurations, the tablet → server assignment (round-robin,
  matching the in-process :class:`~repro.dbsim.server.Instance`), and
  the locate index clients cache.  Splits run through the manager: the
  owning server splits in place, then the manager migrates each child
  to its round-robin home — which is what makes ``NotHostedError`` a
  real event remote clients must handle.

Concurrency model (wire v3, multiplexed): each connection gets a
*reader* thread that only parses frames and routes them — unary
requests onto a bounded FIFO queue drained by one worker thread
(arrival order preserved, which is what keeps per-tablet logical-clock
timestamps deterministic under pipelined writes), streaming scans onto
short-lived per-stream threads (capped per connection).  Admission
control is the bound itself: a full unary queue or the scan cap
rejects the request *before it runs* with a typed ``BusyError`` frame
the client retries after backoff.  Every response carries the request
id of the frame that opened it, so unary acks and several scans'
``CHUNK`` streams interleave freely on one socket.

Every non-scan handler still runs under one per-service lock (a crash
can never interleave halfway through a write batch), while scan
*streaming* happens outside the lock over the stack's immutable
snapshots — a concurrent crash surfaces mid-stream as a typed error
frame via the tablet's crash guard.

Exactly-once writes: mutating requests carry ``(session, seq)``; the
service keeps a bounded per-session window of sequence number →
cached response and replays the cached ack when a retry of an
already-applied sequence arrives.  A *window* (not just the last seq)
because a pipelining client has several sequence numbers in flight at
once — any of them may need replay after a dropped ack.  The dedup
table survives a simulated crash, as a real server's would via its
write-ahead log.

:class:`TabletServerProcess` / :class:`ManagerProcess` run a service in
a child process via the multiprocessing ``spawn`` context (thread-safe,
and the 3.13-forward default), reporting the bound address back on a
queue.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import socket
import threading
import time
import zlib
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dbsim.errors import BusyError, NotHostedError
from repro.dbsim.iterators import VisibilityFilterIterator
from repro.dbsim.key import Key, Range
from repro.dbsim.server import TableConfig, TabletServer
from repro.dbsim.sstable import SSTable
from repro.dbsim.stats import OpStats
from repro.dbsim.tablet import Tablet
from repro.dbsim.visibility import Authorizations
from repro.net import cells
from repro.net import iterspec as _iterspec
from repro.net import wire
from repro.net.client import (
    Addr,
    RetryPolicy,
    RpcCore,
    format_addr,
    parse_addr,
)
from repro.net.faults import FaultPlan, apply_fault
from repro.net.telemetry import ClusterTelemetry
from repro.obs import sampling as _sampling
from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry

#: cells per CHUNK frame on a streamed scan (bigger frames amortize
#: framing + syscalls now that chunks are packed binary, not JSON)
SCAN_CHUNK_CELLS = 2048

#: adaptive scan compression: CHUNK blocks below this size skip zlib
#: outright (a compressed tiny frame saves no meaningful wire bytes but
#: still costs a deflate pass on the scan hot path)
SCAN_COMPRESS_MIN_BYTES = 1024

#: ...and a stream only keeps compressing if a trial pass over its
#: first eligible chunk shrinks it by at least this fraction
SCAN_COMPRESS_MIN_SAVINGS = 0.10

#: admission control: unary requests queued per connection before the
#: server sheds with BusyError
UNARY_QUEUE_DEPTH = 128

#: admission control: concurrent scan streams per connection
MAX_CONN_SCANS = 16

#: (seq → cached ack) entries kept per client session for exactly-once
#: replay; must exceed any client's in-flight mutation count
DEDUP_WINDOW = 256

#: handler span names, precomputed per op-code (per-request f-strings
#: are measurable on the traced RPC hot path)
_SERVER_SPAN_NAMES = {code: f"rpc.server.{name}"
                      for code, name in wire.OP_NAMES.items()}


class _CellCounter:
    """Pass-through :class:`~repro.dbsim.iterators.SortedKVIterator`
    installed *below* a pushed-down stack: counts every cell the chain
    consumes, so ``cells_folded = consumed - emitted`` prices what the
    push-down kept off the wire."""

    __slots__ = ("_source", "count")

    def __init__(self, source):
        self._source = source
        self.count = 0

    def seek(self, rng, columns=None):
        self._source.seek(rng, columns)

    def has_top(self):
        return self._source.has_top()

    def top(self):
        return self._source.top()

    def advance(self):
        self.count += 1
        self._source.advance()


class _ConnState:
    """Shared per-connection state: the socket, its send lock (unary
    worker and scan threads interleave whole frames, never bytes), the
    admission bounds, and the reorder fault's held-frame slot."""

    __slots__ = ("sock", "send_lock", "unary", "scans", "scan_lock",
                 "cancelled", "held", "alive")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.send_lock = threading.Lock()
        #: bounded FIFO of unary requests → the connection's worker
        self.unary: "queue.Queue" = queue.Queue(maxsize=UNARY_QUEUE_DEPTH)
        self.scans = 0
        self.scan_lock = threading.Lock()
        #: request ids whose scans the client cancelled (CANCEL_SCAN)
        self.cancelled: set = set()
        #: reorder fault: one (frame, op) response awaiting the swap
        self.held: Optional[Tuple[bytes, int]] = None
        self.alive = True


class _BaseService:
    """Framed-RPC listener: accept loop, per-connection multiplexed
    dispatch, admission control, response-time fault injection, and
    windowed session/seq write dedup."""

    def __init__(self, name: str, faults: Optional[FaultPlan] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.name = name
        self.faults = faults
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.RLock()
        self._listener: Optional[socket.socket] = None
        self._stopped = threading.Event()
        self._threads: List[threading.Thread] = []
        #: session → OrderedDict of seq → (response code, payload),
        #: FIFO-evicted past DEDUP_WINDOW entries
        self._dedup: Dict[str, "OrderedDict"] = {}
        self.addr: Optional[Addr] = None

    # -- lifecycle --------------------------------------------------------

    def start(self, host: str = "127.0.0.1", port: int = 0) -> Addr:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(64)
        listener.settimeout(0.2)  # so the accept loop notices stop()
        self._listener = listener
        self.addr = listener.getsockname()
        thread = threading.Thread(target=self._accept_loop,
                                  name=f"{self.name}-accept", daemon=True)
        thread.start()
        self._threads.append(thread)
        return self.addr

    def stop(self) -> None:
        self._stopped.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass

    def wait(self) -> None:
        """Block until :meth:`stop` (used by server-process mains)."""
        self._stopped.wait()

    # -- connection handling ----------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(target=self._conn_loop, args=(conn,),
                                      name=f"{self.name}-conn", daemon=True)
            thread.start()

    def _conn_loop(self, conn: socket.socket) -> None:
        """The connection's reader: parse frames, admit or shed, route.
        Never runs a handler itself — a slow request must not stop the
        reader from seeing the requests multiplexed behind it."""
        counters = self.metrics.counter
        inflight = self.metrics.gauge("net.server.inflight")
        state = _ConnState(conn)
        worker = threading.Thread(target=self._unary_loop, args=(state,),
                                  name=f"{self.name}-unary", daemon=True)
        worker.start()
        reader = wire.FrameReader(conn)
        try:
            while not self._stopped.is_set() and state.alive:
                try:
                    code, payload, nread, tc, req = reader.read()
                except (wire.ConnectionClosedError, OSError):
                    return
                except wire.ProtocolError as exc:
                    # garbage in: answer with a typed error, then drop
                    # the connection (framing state is unrecoverable)
                    self._respond(state, wire.ERROR,
                                  wire.error_payload(exc), 0, 0)
                    return
                arrived = time.perf_counter()
                opname = wire.OP_NAMES.get(code, hex(code))
                counters("net.server.requests").inc()
                counters("net.server.bytes_received").inc(nread)
                counters(f"net.server.op.{opname}.bytes_received").inc(nread)
                if code == wire.CANCEL_SCAN:
                    # fire-and-forget: no response frame; the stream's
                    # thread notices at its next chunk boundary
                    if isinstance(payload, dict) and payload.get("req"):
                        state.cancelled.add(payload["req"])
                    continue
                if self._stream_handler(code) is not None:
                    with state.scan_lock:
                        admitted = state.scans < MAX_CONN_SCANS
                        if admitted:
                            state.scans += 1
                    if not admitted:
                        counters("net.server.busy_rejects").inc()
                        self._respond(state, wire.ERROR, wire.error_payload(
                            BusyError(
                                f"scan admission: {MAX_CONN_SCANS} streams "
                                f"already active on this connection")),
                            code, req)
                        continue
                    inflight.add(1)
                    threading.Thread(
                        target=self._scan_entry,
                        args=(state, code, payload, tc, req, arrived),
                        name=f"{self.name}-scan", daemon=True).start()
                    continue
                try:
                    state.unary.put_nowait((code, payload, tc, req, arrived))
                except queue.Full:
                    counters("net.server.busy_rejects").inc()
                    self._respond(state, wire.ERROR, wire.error_payload(
                        BusyError(
                            f"admission queue of {UNARY_QUEUE_DEPTH} "
                            f"requests is full")), code, req)
                else:
                    inflight.add(1)
        finally:
            state.alive = False
            worker.join(timeout=5.0)
            try:
                conn.close()
            except OSError:
                pass

    def _unary_loop(self, state: _ConnState) -> None:
        """One worker per connection drains the unary queue in FIFO
        order — admitted requests execute in exactly the order they
        arrived, which pipelined writers rely on for deterministic
        timestamp stamping."""
        inflight = self.metrics.gauge("net.server.inflight")
        while True:
            try:
                item = state.unary.get(timeout=0.2)
            except queue.Empty:
                if not state.alive or self._stopped.is_set():
                    return
                continue
            try:
                self._serve_one(state, *item)
            finally:
                inflight.add(-1)

    def _scan_entry(self, state: _ConnState, code: int, payload, tc,
                    req: int, arrived: float) -> None:
        try:
            if not _trace.ENABLED:
                self._run_stream(state, code, payload, req, arrived)
            else:
                ctx = _trace.TraceContext(*tc) if tc else None
                name = _SERVER_SPAN_NAMES.get(code) or \
                    f"rpc.server.{wire.OP_NAMES.get(code, hex(code))}"
                with _trace.span(name, parent_ctx=ctx, server=self.name):
                    self._run_stream(state, code, payload, req, arrived)
        finally:
            with state.scan_lock:
                state.scans -= 1
            state.cancelled.discard(req)
            self.metrics.gauge("net.server.inflight").add(-1)

    def _run_stream(self, state: _ConnState, code: int, payload,
                    req: int, arrived: float) -> None:
        dispatched = time.perf_counter()
        self._stream_handler(code)(state, payload, req)
        self._observe_times(arrived, dispatched)

    def _serve_one(self, state: _ConnState, code: int, payload, tc,
                   req: int, arrived: float) -> None:
        """Handle one unary request.  ``tc`` is the frame's trace
        context: activating it makes the handler span a child of the
        originating client span, even across processes."""
        if not _trace.ENABLED:
            self._serve_inner(state, code, payload, req, arrived)
            return
        ctx = _trace.TraceContext(*tc) if tc else None
        name = _SERVER_SPAN_NAMES.get(code) or \
            f"rpc.server.{wire.OP_NAMES.get(code, hex(code))}"
        with _trace.span(name, parent_ctx=ctx, server=self.name):
            self._serve_inner(state, code, payload, req, arrived)

    def _serve_inner(self, state: _ConnState, code: int, payload,
                     req: int, arrived: float) -> None:
        meta = payload.meta if isinstance(payload, wire.CellsPayload) \
            else payload
        session = meta.get("session") if isinstance(meta, dict) else None
        seq = meta.get("seq") if isinstance(meta, dict) else None
        with self._lock:
            # dispatch = the service lock is ours; everything before
            # this was queueing behind other requests
            dispatched = time.perf_counter()
            if session is not None:
                window = self._dedup.get(session)
                cached = window.get(seq) if window is not None else None
                if cached is not None:
                    # a retry of an already-processed mutation: replay
                    # the recorded ack, do not re-apply
                    self.metrics.counter("net.server.dedup_hits").inc()
                    self._respond(state, cached[0], cached[1], code, req)
                    self._observe_times(arrived, dispatched)
                    return
            handler = self._handlers().get(code)
            try:
                if handler is None:
                    raise wire.ProtocolError(
                        f"unsupported op-code {code:#x}")
                out_code, out_payload = wire.OK, handler(payload)
            except Exception as exc:  # noqa: BLE001 - wire boundary
                self.metrics.counter("net.server.errors").inc()
                out_code, out_payload = wire.ERROR, wire.error_payload(exc)
            if session is not None and out_code == wire.OK:
                # only *applied* mutations are replay-worthy: a failed
                # handler applied nothing (write_batch prechecks the
                # whole batch), and caching a transient error (e.g.
                # ServerCrashedError before a recover) would replay the
                # failure at the client forever
                window = self._dedup.setdefault(session, OrderedDict())
                window[seq] = (out_code, out_payload)
                while len(window) > DEDUP_WINDOW:
                    window.popitem(last=False)
        self._respond(state, out_code, out_payload, code, req)
        self._observe_times(arrived, dispatched)
        if code == wire.SHUTDOWN and out_code == wire.OK:
            self.stop()
            state.alive = False
            try:  # unblock the reader without killing in-flight sends
                state.sock.shutdown(socket.SHUT_RD)
            except OSError:
                pass

    def _observe_times(self, arrived: float, dispatched: float) -> None:
        """Record queue (arrival → dispatch) and service (dispatch →
        reply) time, and mirror them onto the open handler span so the
        stitched-trace breakdown can separate wait from work."""
        done = time.perf_counter()
        queue_s = max(dispatched - arrived, 0.0)
        service_s = max(done - dispatched, 0.0)
        self.metrics.histogram("net.server.queue_seconds").observe(queue_s)
        self.metrics.histogram("net.server.service_seconds").observe(
            service_s)
        sp = _trace.current_span()
        if sp is not None:
            sp.attrs["queue_s"] = queue_s
            sp.attrs["service_s"] = service_s

    @staticmethod
    def _kill(state: _ConnState) -> None:
        """Tear the connection down *actively*: the reader thread is
        blocked in recv, so a flag alone would leave the socket open
        and the client waiting out its deadline instead of seeing the
        close and retrying immediately."""
        state.alive = False
        try:
            state.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def _count_sent(self, request_op: int, nbytes: int) -> None:
        opname = wire.OP_NAMES.get(request_op, hex(request_op))
        self.metrics.counter("net.server.bytes_sent").inc(nbytes)
        self.metrics.counter(
            f"net.server.op.{opname}.bytes_sent").inc(nbytes)

    def _respond(self, state: _ConnState, code: int, payload,
                 request_op: int, req: int, compress: bool = False) -> int:
        """Send one response frame (tagged with its request id), with
        fault injection in the path.  Returns the frame's byte length,
        or 0 (falsy) when a fault destroyed the connection.

        The reorder fault lives here: a fired reorder *holds* a unary
        response in the connection's one-frame slot; whatever response
        goes out next flushes it afterwards — so the client observes
        two responses in swapped arrival order and must route by
        request id.  Stream frames (CHUNK/DONE) are never held: order
        within a stream is contractual.
        """
        frame = wire.encode_frame(code, payload, req=req, compress=compress)
        rule = self.faults.draw(request_op) if self.faults else None
        hold = (rule is not None and rule.kind == "reorder"
                and code in (wire.OK, wire.ERROR) and state.held is None)
        try:
            with state.send_lock:
                if hold:
                    self.metrics.counter(
                        "net.server.faults.reorder").inc()
                    state.held = (frame, request_op)
                else:
                    if rule is not None:
                        if not apply_fault(rule, state.sock, frame,
                                           self.metrics):
                            self._kill(state)
                            return 0
                    else:
                        state.sock.sendall(frame)
                    if state.held is not None:
                        hframe, hop = state.held
                        state.held = None
                        state.sock.sendall(hframe)
                        self._count_sent(hop, len(hframe))
        except OSError:
            self._kill(state)
            return 0
        if not hold:
            self._count_sent(request_op, len(frame))
        return len(frame)

    # -- subclass hooks ---------------------------------------------------

    def _handlers(self) -> Dict[int, Callable[[dict], dict]]:
        raise NotImplementedError

    def _stream_handler(self, code: int):
        """Streaming ops (many response frames) bypass the normal
        request/response path; None means 'not a streaming op'."""
        return None


# -- tablet server ----------------------------------------------------------


class TabletServerService(_BaseService):
    """One dbsim :class:`~repro.dbsim.server.TabletServer` behind a
    socket: the data path (writes, streaming scans) plus hosting,
    migration, and failure-simulation ops."""

    def __init__(self, name: str, faults: Optional[FaultPlan] = None,
                 metrics: Optional[MetricsRegistry] = None):
        super().__init__(name, faults, metrics)
        self.tserver = TabletServer(name)
        #: tablet_id → (table, Tablet)
        self._hosted: Dict[str, Tuple[str, Tablet]] = {}
        #: table → TableConfig (authoritative copy pushed at host time)
        self._configs: Dict[str, TableConfig] = {}

    def _handlers(self):
        return {
            wire.PING: lambda p: {},
            wire.HOST_TABLET: self._host_tablet,
            wire.DROP_TABLE: self._drop_table,
            wire.SPLIT_TABLET: self._split_tablet,
            wire.MIGRATE_OUT: self._migrate_out,
            wire.MIGRATE_IN: self._migrate_in,
            wire.WRITE_BATCH: self._write_batch,
            wire.FLUSH: self._flush,
            wire.COMPACT: self._compact,
            wire.CRASH: self._crash,
            wire.RECOVER: self._recover,
            wire.STATS: lambda p: self.tserver.stats.as_dict(),
            wire.METRICS: lambda p: self.metrics.export(),
            wire.TABLET_INFO: self._tablet_info,
            wire.STATUS: self._status,
            wire.SHUTDOWN: lambda p: {},
        }

    def _stream_handler(self, code: int):
        return self._scan_stream if code == wire.SCAN else None

    # -- hosting ----------------------------------------------------------

    def _get(self, payload: dict) -> Tuple[str, Tablet]:
        entry = self._hosted.get(payload["tablet_id"])
        if entry is None or entry[0] != payload.get("table", entry[0]):
            raise NotHostedError(
                f"server {self.name} does not host tablet "
                f"{payload['tablet_id']!r} of table "
                f"{payload.get('table')!r} (split or migrated?)")
        return entry

    def _host(self, table: str, tablet_id: str, tablet: Tablet) -> None:
        self.tserver.host(table, tablet)
        tablet.bind_metrics(self.metrics, table)
        self._hosted[tablet_id] = (table, tablet)

    def _unhost(self, tablet_id: str) -> Tuple[str, Tablet]:
        table, tablet = self._hosted.pop(tablet_id)
        tablet.unbind_metrics()
        self.tserver.unhost(table, tablet)
        return table, tablet

    def _host_tablet(self, p: dict) -> dict:
        config = wire.wire_to_config(p["config"]) or TableConfig()
        self._configs[p["table"]] = config
        tablet = Tablet(wire.wire_to_range(p["extent"]),
                        config.max_versions, config.flush_bytes)
        self._host(p["table"], p["tablet_id"], tablet)
        return {}

    def _drop_table(self, p: dict) -> dict:
        doomed = [tid for tid, (table, _) in self._hosted.items()
                  if table == p["table"]]
        for tid in doomed:
            self._unhost(tid)
        self._configs.pop(p["table"], None)
        return {"dropped": len(doomed)}

    def _split_tablet(self, p: dict) -> dict:
        table, tablet = self._get(p)
        left, right = tablet.split(p["split_row"])  # flushes; may raise
        self._unhost(p["tablet_id"])
        self._host(table, p["left_id"], left)
        self._host(table, p["right_id"], right)
        return {"left": wire.range_to_wire(left.extent),
                "right": wire.range_to_wire(right.extent)}

    # -- migration --------------------------------------------------------

    def _migrate_out(self, p: dict) -> dict:
        _, tablet = self._get(p)
        state = {
            "extent": wire.range_to_wire(tablet.extent),
            "clock": tablet._clock,
            "memtable": [wire.cell_to_wire(c)
                         for c in tablet.memtable.snapshot()],
            "wal": [wire.cell_to_wire(c) for c in tablet.wal],
            "sstables": [[wire.cell_to_wire(c) for c in run.cells()]
                         for run in tablet.sstables],
        }
        self._unhost(p["tablet_id"])
        return {"state": state}

    def _migrate_in(self, p: dict) -> dict:
        config = wire.wire_to_config(p["config"]) or TableConfig()
        self._configs[p["table"]] = config
        state = p["state"]
        tablet = Tablet(wire.wire_to_range(state["extent"]),
                        config.max_versions, config.flush_bytes)
        tablet._clock = state["clock"]
        for run in state["sstables"]:
            tablet.sstables.append(
                SSTable([wire.wire_to_cell(c) for c in run],
                        _presorted=True))
        tablet.wal.extend(wire.wire_to_cell(c) for c in state["wal"])
        tablet.memtable.extend([wire.wire_to_cell(c)
                                for c in state["memtable"]])
        self._host(p["table"], p["tablet_id"], tablet)
        return {}

    # -- data path --------------------------------------------------------

    def _write_batch(self, p) -> dict:
        if isinstance(p, wire.CellsPayload):
            meta = p.meta
            muts = cells.decode_mutations(p.block)
        else:  # JSON fallback (hand-rolled clients / old tooling)
            meta = p
            muts = [tuple(m) for m in p["mutations"]]
        table, tablet = self._get(meta)
        extent = tablet.extent
        for mut in muts:
            if not extent.contains_row(mut[0]):
                # stale client routing (split landed between the
                # client's bisect and this request): reject the WHOLE
                # batch before applying anything, so the re-binned
                # retry is exactly-once
                raise NotHostedError(
                    f"row {mut[0]!r} outside tablet "
                    f"{meta['tablet_id']!r} extent "
                    f"[{extent.start_row!r}, {extent.stop_row!r})")
        applied = tablet.write_raw_batch(muts)
        return {"applied": applied}

    def _scan_stream(self, state: _ConnState, p: dict, req: int) -> None:
        counters = self.metrics.counter
        compress = bool(p.get("compress"))
        #: trial verdict for this stream: None until the first chunk
        #: big enough to be worth testing, then sticky True/False
        trial: Optional[bool] = None
        # scans run concurrently, and the tablet's shared OpStats sink
        # updates with non-atomic += — each scan counts into a private
        # block folded back under the service lock when it finishes
        scan_stats = OpStats()
        tablet = None
        cell_counter: Optional[_CellCounter] = None
        emitted = 0
        try:
            # validate the push-down spec BEFORE touching the tablet: a
            # bad spec is a typed IterSpecError frame, never a stack
            spec_factories = _iterspec.build_scan_iterators(
                p.get("iterspec"))
            push: Tuple = ()
            if spec_factories:
                holder: List[_CellCounter] = []

                def _counted(src, _h=holder):
                    c = _CellCounter(src)
                    _h.append(c)
                    return c

                # the scan's authorizations ride the payload alongside
                # the spec: visibility filtering moves server-side and
                # runs *under* the pushed-down chain, the Accumulo
                # ordering (system visibility filter below user
                # iterators) — a combiner/reduce must never fold cells
                # the scan is not authorized to see
                auths = Authorizations(p.get("auths") or ())
                push = (_counted,
                        (lambda src: VisibilityFilterIterator(src, auths)),
                        ) + spec_factories
            with self._lock:
                table, tablet = self._get(p)
                config = self._configs.get(table, TableConfig())
                rng = wire.wire_to_range(p["range"])
                columns = ([tuple(c) for c in p["columns"]]
                           if p.get("columns") else None)
                # columnar drain: the merged stack's cells go straight
                # into ColumnBatch columns, and the CHUNK block is
                # encoded from those columns — no List[Cell] staging,
                # no cells_to_block re-walk.  A pushed-down stack makes
                # the tablet fall back from the fused columnar runs to
                # the per-cell iterator chain; framing stays columnar.
                batches = tablet.scan_columns(
                    rng, columns, config.table_iterators,
                    scan_iterators=push,
                    batch_cells=SCAN_CHUNK_CELLS, sink=scan_stats)
            if spec_factories:
                counters("net.server.pushdown.stacks").inc()
                counters("net.server.pushdown.ops").inc(
                    len(spec_factories))
                if holder:
                    cell_counter = holder[0]
            resume = p.get("resume")
            skip_past = Key(*resume).sort_tuple() if resume else None
            scan_bytes = counters(f"net.server.table.{table}.scan_bytes")
            scan_chunks = counters("net.server.scan_chunks")

            # one-batch lookahead so the final CHUNK can carry a "last"
            # marker: the client completes the segment on that chunk
            # and never pays a wakeup for the DONE frame (still sent —
            # it remains the protocol's source of truth)
            batch_iter = iter(batches)  # crash check raises on next()
            pending = next(batch_iter, None)
            while pending is not None:
                batch, pending = pending, next(batch_iter, None)
                emitted += len(batch)
                last = pending is None
                if req in state.cancelled or not state.alive:
                    return  # client stopped listening: stop producing
                if skip_past is not None:
                    # the stream is sorted, so everything already
                    # delivered before the resume is a prefix
                    rows, fams = batch.rows, batch.families
                    quals, viss = batch.qualifiers, batch.visibilities
                    ts, dels = batch.timestamps, batch.deletes
                    n = len(rows)
                    i = 0
                    while i < n and (rows[i], fams[i], quals[i], viss[i],
                                     -ts[i],
                                     0 if dels[i] else 1) <= skip_past:
                        i += 1
                    if i == n:
                        continue
                    if i:
                        batch = batch.select(range(i, n))
                    skip_past = None
                block = batch.to_block()
                do_comp = False
                if compress:
                    if len(block) < SCAN_COMPRESS_MIN_BYTES:
                        counters(
                            "net.server.scan_compress.skipped_small").inc()
                    else:
                        if trial is None:
                            trial = (len(zlib.compress(block, 1))
                                     <= (1.0 - SCAN_COMPRESS_MIN_SAVINGS)
                                     * len(block))
                        if trial:
                            do_comp = True
                            counters(
                                "net.server.scan_compress.compressed").inc()
                        else:
                            counters(
                                "net.server.scan_compress.skipped_trial"
                            ).inc()
                meta = {"last": True} if last else {}
                nsent = self._respond(state, wire.CHUNK,
                                      wire.CellsPayload(meta, block),
                                      wire.SCAN, req, compress=do_comp)
                if not nsent:
                    return
                scan_chunks.inc()
                scan_bytes.inc(nsent - wire.FRAME_OVERHEAD)
            self._respond(state, wire.DONE, None, wire.SCAN, req)
        except Exception as exc:  # noqa: BLE001 - wire boundary
            counters("net.server.errors").inc()
            self._respond(state, wire.ERROR, wire.error_payload(exc),
                          wire.SCAN, req)
        finally:
            if cell_counter is not None:
                counters("net.server.pushdown.cells_folded").inc(
                    max(0, cell_counter.count - emitted))
            if tablet is not None and (scan_stats.seeks
                                       or scan_stats.entries_read):
                with self._lock:
                    tablet.absorb_scan_stats(scan_stats)

    # -- maintenance / failure sim ----------------------------------------

    def _tablets_of(self, table: str) -> List[Tablet]:
        return [t for tid, (tab, t) in sorted(self._hosted.items())
                if tab == table]

    def _flush(self, p: dict) -> dict:
        for tablet in self._tablets_of(p["table"]):
            tablet.flush()
        return {}

    def _compact(self, p: dict) -> dict:
        config = self._configs.get(p["table"], TableConfig())
        for tablet in self._tablets_of(p["table"]):
            tablet.compact(config.table_iterators)
        return {}

    def _crash(self, p: dict) -> dict:
        self.tserver.crash()
        return {}

    def _recover(self, p: dict) -> dict:
        self.tserver.recover(replay_wal=p.get("replay_wal", True))
        return {}

    def _tablet_info(self, p: dict) -> dict:
        _, tablet = self._get(p)
        return {
            "extent": wire.range_to_wire(tablet.extent),
            "entries": tablet.entry_estimate(),
            "memtable_entries": len(tablet.memtable),
            "sstables": [len(run) for run in tablet.sstables],
        }

    def _status(self, p: dict) -> dict:
        return {
            "name": self.name,
            "crashed": self.tserver.crashed,
            "tablets": {
                tid: {"table": table,
                      "extent": wire.range_to_wire(tablet.extent)}
                for tid, (table, tablet) in sorted(self._hosted.items())},
        }


# -- manager ----------------------------------------------------------------


class _IndexEntry:
    """One tablet's slot in a table's locate index."""

    __slots__ = ("tablet_id", "extent", "server", "addr")

    def __init__(self, tablet_id: str, extent: Range, server: str,
                 addr: Addr):
        self.tablet_id = tablet_id
        self.extent = extent
        self.server = server
        self.addr = addr


class ManagerService(_BaseService):
    """Cluster metadata owner: table configs, round-robin tablet
    assignment, the locate index, and split/migration orchestration."""

    def __init__(self, servers: Sequence[Tuple[str, Addr]],
                 faults: Optional[FaultPlan] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 name: str = "manager", telemetry_interval: float = 0.0,
                 telemetry_window: int = 120):
        super().__init__(name, faults, metrics)
        if not servers:
            raise ValueError("manager needs at least one tablet server")
        self.servers: List[Tuple[str, Addr]] = [
            (n, parse_addr(a)) for n, a in servers]
        # fan-out client: fewer, faster attempts than an end client —
        # a dead server should fail the management op, not hang it
        self.core = RpcCore(metrics=self.metrics,
                            retry=RetryPolicy(attempts=3, base=0.01,
                                              cap=0.1))
        self._tables: Dict[str, Optional[dict]] = {}  # wire-form configs
        self._index: Dict[str, List[_IndexEntry]] = {}
        self._versions: Dict[str, int] = {}
        self._rr = 0
        self._next_id = 0
        #: ring-buffered per-server metric history; the TELEMETRY op
        #: serves it, and a background sampler feeds it when
        #: ``telemetry_interval`` > 0 (off by default: deterministic
        #: tests must not see surprise fan-out RPCs)
        self.telemetry = ClusterTelemetry(self._sample_cluster,
                                          window=telemetry_window)
        self.telemetry_interval = telemetry_interval

    def _handlers(self):
        return {
            wire.PING: lambda p: {},
            wire.CREATE_TABLE: self._create_table,
            wire.DELETE_TABLE: self._delete_table,
            wire.TABLE_EXISTS: self._table_exists,
            wire.LIST_TABLES: lambda p: {"tables": sorted(self._tables)},
            wire.ADD_SPLIT: self._add_split,
            wire.SPLITS: self._splits,
            wire.LOCATE: self._locate,
            wire.FLUSH: self._fan_flush,
            wire.COMPACT: self._fan_compact,
            wire.STATS: self._fan_stats,
            wire.METRICS: self._fan_metrics,
            wire.CRASH: self._crash_server,
            wire.RECOVER: self._recover_server,
            wire.STATUS: self._status,
            wire.TELEMETRY: self._telemetry,
            wire.SHUTDOWN: self._shutdown_cluster,
        }

    def start(self, host: str = "127.0.0.1", port: int = 0) -> Addr:
        addr = super().start(host=host, port=port)
        if self.telemetry_interval > 0:
            thread = threading.Thread(target=self._telemetry_loop,
                                      name=f"{self.name}-telemetry",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        return addr

    def _telemetry_loop(self) -> None:
        while not self._stopped.wait(self.telemetry_interval):
            try:
                self.telemetry.sample()
            except Exception:  # noqa: BLE001 - sampling is best-effort
                pass

    # -- assignment helpers -----------------------------------------------

    def _pick(self) -> Tuple[str, Addr]:
        server = self.servers[self._rr % len(self.servers)]
        self._rr += 1
        return server

    def _new_id(self, table: str) -> str:
        self._next_id += 1
        return f"{table}!{self._next_id:04d}"

    def _require(self, name: str) -> None:
        if name not in self._tables:
            raise KeyError(f"no such table: {name!r}")

    def _bump(self, table: str) -> None:
        self._versions[table] = self._versions.get(table, 0) + 1

    # -- table lifecycle --------------------------------------------------

    def _create_table(self, p: dict) -> dict:
        name = p["name"]
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        config = p["config"]
        if config is None:  # normalise: the index always serves a real config
            config = wire.config_to_wire(TableConfig())
        else:
            wire.wire_to_config(config)  # validate early
        self._tables[name] = config
        tablet_id = self._new_id(name)
        sname, addr = self._pick()
        self.core.mutate(addr, wire.HOST_TABLET, {
            "table": name, "tablet_id": tablet_id,
            "extent": [None, None], "config": p["config"]})
        self._index[name] = [_IndexEntry(tablet_id, Range(), sname, addr)]
        self._bump(name)
        for split in p.get("splits", ()):
            self._do_add_split(name, split)
        return {}

    def _delete_table(self, p: dict) -> dict:
        name = p["name"]
        self._require(name)
        for sname, addr in self._hosting_servers(name):
            self.core.mutate(addr, wire.DROP_TABLE, {"table": name})
        del self._tables[name]
        del self._index[name]
        self._versions.pop(name, None)
        return {}

    def _table_exists(self, p: dict) -> dict:
        return {"exists": p["name"] in self._tables}

    def _locate(self, p: dict) -> dict:
        name = p["table"]
        self._require(name)
        return {
            "version": self._versions.get(name, 0),
            "config": self._tables[name],
            "tablets": [{"tablet_id": e.tablet_id,
                         "extent": wire.range_to_wire(e.extent),
                         "addr": format_addr(e.addr)}
                        for e in self._index[name]],
        }

    def _splits(self, p: dict) -> dict:
        self._require(p["table"])
        return {"splits": [e.extent.start_row
                           for e in self._index[p["table"]]
                           if e.extent.start_row is not None]}

    # -- splits + migration -----------------------------------------------

    def _add_split(self, p: dict) -> dict:
        self._require(p["table"])
        self._do_add_split(p["table"], p["row"])
        return {}

    def _do_add_split(self, table: str, row: str) -> None:
        entries = self._index[table]
        idx = next(i for i, e in enumerate(entries)
                   if e.extent.contains_row(row))
        entry = entries[idx]
        if entry.extent.start_row == row:
            return  # already a split point
        left_id, right_id = self._new_id(table), self._new_id(table)
        resp = self.core.mutate(entry.addr, wire.SPLIT_TABLET, {
            "table": table, "tablet_id": entry.tablet_id,
            "split_row": row, "left_id": left_id, "right_id": right_id})
        left = _IndexEntry(left_id, wire.wire_to_range(resp["left"]),
                           entry.server, entry.addr)
        right = _IndexEntry(right_id, wire.wire_to_range(resp["right"]),
                            entry.server, entry.addr)
        entries[idx:idx + 1] = [left, right]
        # both children re-enter round-robin assignment, mirroring the
        # in-process Instance (each may land on a different server —
        # the migration that makes a client's cached routing go stale)
        for child in (left, right):
            self._migrate(table, child, self._pick())
        self._bump(table)

    def _migrate(self, table: str, entry: _IndexEntry,
                 dest: Tuple[str, Addr]) -> None:
        dname, daddr = dest
        if dname == entry.server:
            return
        state = self.core.mutate(entry.addr, wire.MIGRATE_OUT, {
            "table": table, "tablet_id": entry.tablet_id})["state"]
        self.core.mutate(daddr, wire.MIGRATE_IN, {
            "table": table, "tablet_id": entry.tablet_id,
            "config": self._tables[table], "state": state})
        entry.server, entry.addr = dname, daddr

    # -- fan-out ops ------------------------------------------------------

    def _hosting_servers(self, table: str) -> List[Tuple[str, Addr]]:
        seen: Dict[str, Addr] = {}
        for e in self._index[table]:
            seen.setdefault(e.server, e.addr)
        return list(seen.items())

    def _fan_flush(self, p: dict) -> dict:
        self._require(p["table"])
        for _, addr in self._hosting_servers(p["table"]):
            self.core.call(addr, wire.FLUSH, {"table": p["table"]})
        return {}

    def _fan_compact(self, p: dict) -> dict:
        self._require(p["table"])
        for _, addr in self._hosting_servers(p["table"]):
            self.core.call(addr, wire.COMPACT, {"table": p["table"]})
        return {}

    def _fan_stats(self, p: dict) -> dict:
        total = OpStats()
        per_server = {}
        for sname, addr in self.servers:
            stats = self.core.call(addr, wire.STATS, {})
            per_server[sname] = stats
            total = total.merge(OpStats.from_dict(stats))
        return {"total": total.as_dict(), "servers": per_server}

    def _fan_metrics(self, p: dict) -> dict:
        return {
            "manager": self.metrics.export(),
            "servers": {sname: self.core.call(addr, wire.METRICS, {})
                        for sname, addr in self.servers},
        }

    def _sample_cluster(self) -> Dict[str, dict]:
        """One telemetry tick: every reachable registry, by component
        name (a down server is skipped, not fatal)."""
        out: Dict[str, dict] = {"manager": self.metrics.export()}
        for sname, addr in self.servers:
            try:
                out[sname] = self.core.call(addr, wire.METRICS, {})
            except Exception:  # noqa: BLE001 - down server: skip tick
                continue
        return out

    def _telemetry(self, p: dict) -> dict:
        # take a fresh sample on demand so `repro top` works (and tests
        # are deterministic) even with the background sampler off
        if p.get("sample", True):
            self.telemetry.sample()
        out = self.telemetry.as_dict()
        # SLO evaluation over the freshest samples rides along so `repro
        # top` and dashboards get per-server health without a second op
        out["health"] = self.telemetry.health()
        return out

    def _server_addr(self, name: str) -> Addr:
        for sname, addr in self.servers:
            if sname == name:
                return addr
        raise KeyError(f"no such tablet server: {name!r}")

    def _crash_server(self, p: dict) -> dict:
        self.core.call(self._server_addr(p["server"]), wire.CRASH, {})
        return {}

    def _recover_server(self, p: dict) -> dict:
        self.core.call(self._server_addr(p["server"]), wire.RECOVER,
                       {"replay_wal": p.get("replay_wal", True)})
        return {}

    def _status(self, p: dict) -> dict:
        statuses = {}
        for sname, addr in self.servers:
            try:
                statuses[sname] = self.core.call(addr, wire.STATUS, {})
            except Exception as exc:  # noqa: BLE001 - a down server
                statuses[sname] = {"error": str(exc)}
            statuses[sname]["addr"] = format_addr(addr)
        return {"manager": self.name, "tables": sorted(self._tables),
                "servers": statuses}

    def _shutdown_cluster(self, p: dict) -> dict:
        for _, addr in self.servers:
            try:
                self.core.call(addr, wire.SHUTDOWN, {})
            except Exception:  # noqa: BLE001 - best effort on teardown
                pass
        return {}


# -- process wrappers --------------------------------------------------------


def _run_service(service: _BaseService, queue, trace_path: Optional[str],
                 host: str, port: int, sample_rate: float = 1.0) -> None:
    if sample_rate < 1.0:
        # head sampling + tail retention for this server process; the
        # counters land on the service registry so cluster metric
        # fan-outs report per-server sampling activity
        _sampling.configure(sample_rate, registry=service.metrics)
    if trace_path:
        # distinct per-process seeds (derived from the service name)
        # keep seeded runs reproducible without id collisions between
        # cooperating processes
        _trace.seed_ids(zlib.crc32(service.name.encode("utf-8")))
        _trace.enable(_trace.JSONLSink(trace_path, process=service.name))
    addr = service.start(host=host, port=port)
    queue.put(addr)
    service.wait()
    if trace_path:
        _trace.disable(close=True)


def _tablet_server_main(name: str, queue, fault_specs: Sequence[str],
                        fault_seed: int, trace_path: Optional[str],
                        host: str, port: int,
                        sample_rate: float = 1.0) -> None:
    faults = (FaultPlan.from_specs(fault_specs, seed=fault_seed)
              if fault_specs else None)
    _run_service(TabletServerService(name, faults=faults), queue,
                 trace_path, host, port, sample_rate=sample_rate)


def _manager_main(queue, servers: List[Tuple[str, Tuple[str, int]]],
                  fault_specs: Sequence[str], fault_seed: int,
                  trace_path: Optional[str], host: str, port: int,
                  telemetry_interval: float = 0.0,
                  sample_rate: float = 1.0) -> None:
    faults = (FaultPlan.from_specs(fault_specs, seed=fault_seed)
              if fault_specs else None)
    servers = [(n, (a[0], a[1])) for n, a in servers]
    _run_service(ManagerService(servers, faults=faults,
                                telemetry_interval=telemetry_interval),
                 queue, trace_path, host, port, sample_rate=sample_rate)


class _ServiceProcess:
    """Parent-side handle on a service child process (spawn context)."""

    def __init__(self):
        self.process: Optional[mp.process.BaseProcess] = None
        self.addr: Optional[Addr] = None

    def stop(self, timeout: float = 5.0) -> None:
        if self.process is None:
            return
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        self.process = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class TabletServerProcess(_ServiceProcess):
    """A tablet server running as a real OS process on localhost."""

    def __init__(self, name: str, fault_specs: Sequence[str] = (),
                 fault_seed: int = 0, trace_path: Optional[str] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 sample_rate: float = 1.0):
        super().__init__()
        self.name = name
        self._args = (name, list(fault_specs), fault_seed, trace_path,
                      host, port, sample_rate)

    def start(self, start_timeout: float = 30.0) -> Addr:
        ctx = mp.get_context("spawn")
        queue = ctx.Queue()
        (name, fault_specs, fault_seed, trace_path, host, port,
         sample_rate) = self._args
        self.process = ctx.Process(
            target=_tablet_server_main,
            args=(name, queue, fault_specs, fault_seed, trace_path,
                  host, port, sample_rate),
            name=f"repro-tserver-{name}", daemon=True)
        self.process.start()
        self.addr = tuple(queue.get(timeout=start_timeout))
        return self.addr


class ManagerProcess(_ServiceProcess):
    """The manager running as a real OS process on localhost."""

    def __init__(self, servers: Sequence[Tuple[str, Addr]],
                 fault_specs: Sequence[str] = (), fault_seed: int = 0,
                 trace_path: Optional[str] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 telemetry_interval: float = 0.0,
                 sample_rate: float = 1.0):
        super().__init__()
        self._args = ([(n, tuple(a)) for n, a in servers],
                      list(fault_specs), fault_seed, trace_path, host, port,
                      telemetry_interval, sample_rate)

    def start(self, start_timeout: float = 30.0) -> Addr:
        ctx = mp.get_context("spawn")
        queue = ctx.Queue()
        (servers, fault_specs, fault_seed, trace_path, host, port,
         telemetry_interval, sample_rate) = self._args
        self.process = ctx.Process(
            target=_manager_main,
            args=(queue, servers, fault_specs, fault_seed, trace_path,
                  host, port, telemetry_interval, sample_rate),
            name="repro-manager", daemon=True)
        self.process.start()
        self.addr = tuple(queue.get(timeout=start_timeout))
        return self.addr
