"""The framed wire protocol spoken between repro.net clients and servers.

Every message is one *frame*::

    !I   body_length          (frame header, 4 bytes, network order)
    !B   wire version         (body starts here)
    !B   op-code
    !I   CRC-32 of trace context + payload
    !16s trace id             (trace context block, 24 bytes;
    !8s  span id               all zeros = no context attached)
    ...  payload              (UTF-8 JSON)

Wire version 2 added the fixed 24-byte trace-context block: the raw
bytes of the sender's :class:`~repro.obs.trace.TraceContext`, so a
server can parent its handler spans under the originating client span
(``repro.obs.stitch`` later merges the per-process trace files by
``trace_id``).  An all-zero block means "no context" — tracing off
costs no branches on the framing path, only 24 constant bytes.

The CRC covers the trace-context block *and* the payload, and turns
the fault injector's corrupt-frame fault (and any real transport
corruption) into a typed :class:`FrameCorruptError` the client
retries, instead of a JSON parse error deep in a handler.
Payloads are JSON because every value crossing this wire (cells as
7-lists, ranges as 2-lists, configs as named-iterator dicts) is
strings and numbers; the length prefix, not the payload encoding, is
what makes the protocol streamable.

Request op-codes occupy 1..0x3F; response codes 0x40..0x4F.  A normal
RPC is one request frame → one ``OK`` (or ``ERROR``) frame; a scan is
one request frame → N ``CHUNK`` frames → one ``DONE`` frame, any of
which may be replaced by ``ERROR`` mid-stream.

Error frames carry ``{"type", "message"}`` and are decoded back into
the *same* exception types the in-process backend raises
(``KeyError`` for a missing table, ``ValueError`` for a bad split,
:class:`~repro.dbsim.errors.ServerCrashedError`, ...), which is what
lets the existing client test suite pass unmodified against the
remote backend.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Any, List, Optional, Sequence, Tuple

from repro.dbsim.errors import (
    NotHostedError,
    ServerCrashedError,
    TabletServerError,
)
from repro.dbsim.iterators import MaxCombiner, MinCombiner, SummingCombiner
from repro.dbsim.key import Cell, Key, Range
from repro.dbsim.server import TableConfig

WIRE_VERSION = 2

#: frame header: body length
_LEN = struct.Struct("!I")
#: body header: version, op-code, CRC-32 of (trace context + payload)
_BODY = struct.Struct("!BBI")
#: trace-context block: 16-byte trace id + 8-byte span id (zeros = none)
_TC = struct.Struct("!16s8s")
_TC_NONE = _TC.pack(b"\x00" * 16, b"\x00" * 8)

#: bytes a frame spends on framing (length prefix + body header +
#: trace-context block); ``frame_len - FRAME_OVERHEAD`` is payload bytes
FRAME_OVERHEAD = _LEN.size + _BODY.size + _TC.size

#: refuse to allocate for absurd lengths (garbage or version skew)
MAX_FRAME_BYTES = 64 << 20

# -- op-codes ---------------------------------------------------------------

# requests (client → server / manager)
PING = 0x01
CREATE_TABLE = 0x02
DELETE_TABLE = 0x03
TABLE_EXISTS = 0x04
LIST_TABLES = 0x05
ADD_SPLIT = 0x06
SPLITS = 0x07
FLUSH = 0x08
COMPACT = 0x09
LOCATE = 0x0A
STATS = 0x0B
METRICS = 0x0C
SCAN = 0x0D
WRITE_BATCH = 0x0E
HOST_TABLET = 0x0F
DROP_TABLE = 0x10
SPLIT_TABLET = 0x11
MIGRATE_OUT = 0x12
MIGRATE_IN = 0x13
CRASH = 0x14
RECOVER = 0x15
TABLET_INFO = 0x16
STATUS = 0x17
SHUTDOWN = 0x18
TELEMETRY = 0x19

# responses (server → client)
OK = 0x40
ERROR = 0x41
CHUNK = 0x42
DONE = 0x43

OP_NAMES = {
    PING: "ping", CREATE_TABLE: "create_table",
    DELETE_TABLE: "delete_table", TABLE_EXISTS: "table_exists",
    LIST_TABLES: "list_tables", ADD_SPLIT: "add_split", SPLITS: "splits",
    FLUSH: "flush", COMPACT: "compact", LOCATE: "locate", STATS: "stats",
    METRICS: "metrics", SCAN: "scan", WRITE_BATCH: "write_batch",
    HOST_TABLET: "host_tablet", DROP_TABLE: "drop_table",
    SPLIT_TABLET: "split_tablet", MIGRATE_OUT: "migrate_out",
    MIGRATE_IN: "migrate_in", CRASH: "crash", RECOVER: "recover",
    TABLET_INFO: "tablet_info", STATUS: "status", SHUTDOWN: "shutdown",
    TELEMETRY: "telemetry",
    OK: "ok", ERROR: "error", CHUNK: "chunk", DONE: "done",
}


# -- protocol errors --------------------------------------------------------


class ProtocolError(RuntimeError):
    """The byte stream violated the framing contract (bad version,
    oversized frame, unknown op-code)."""


class FrameCorruptError(ProtocolError):
    """Payload CRC mismatch — the frame was damaged in flight.
    Retryable: the sender's copy was fine."""


class ConnectionClosedError(ConnectionError):
    """The peer closed the socket mid-frame (crash, reset fault, or
    orderly shutdown racing a request)."""


class RpcError(RuntimeError):
    """A server-side failure with no richer client-side type."""


# -- frame I/O --------------------------------------------------------------


def encode_frame(code: int, payload: Any,
                 tc: Optional[Tuple[str, str]] = None) -> bytes:
    """One wire frame for ``payload`` (any JSON-serializable value).

    ``tc`` is an optional ``(trace_id, span_id)`` hex pair (e.g. a
    :class:`~repro.obs.trace.TraceContext`) packed into the frame's
    trace-context block; ``None`` sends the all-zero block."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if tc is None:
        tcb = _TC_NONE
    else:
        tcb = _TC.pack(bytes.fromhex(tc[0]), bytes.fromhex(tc[1]))
    crc = zlib.crc32(body, zlib.crc32(tcb))
    return (_LEN.pack(_BODY.size + _TC.size + len(body))
            + _BODY.pack(WIRE_VERSION, code, crc) + tcb + body)


def decode_body(body: bytes) -> Tuple[int, Any, Optional[Tuple[str, str]]]:
    """Parse a frame body (everything after the length prefix) into
    ``(op_code, payload, trace_context)``, verifying version and CRC.
    ``trace_context`` is ``(trace_id, span_id)`` hex or ``None`` when
    the sender attached no context."""
    if len(body) < _BODY.size + _TC.size:
        raise ProtocolError(f"frame body too short: {len(body)} bytes")
    version, code, crc = _BODY.unpack_from(body)
    if version != WIRE_VERSION:
        raise ProtocolError(
            f"wire version {version} != supported {WIRE_VERSION}")
    tcb = body[_BODY.size:_BODY.size + _TC.size]
    payload_bytes = body[_BODY.size + _TC.size:]
    if zlib.crc32(payload_bytes, zlib.crc32(tcb)) != crc:
        raise FrameCorruptError(
            f"payload CRC mismatch on {OP_NAMES.get(code, hex(code))} frame")
    if tcb == _TC_NONE:
        tc: Optional[Tuple[str, str]] = None
    else:
        trace_raw, span_raw = _TC.unpack(tcb)
        tc = (trace_raw.hex(), span_raw.hex())
    try:
        payload = json.loads(payload_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        # CRC passed but JSON didn't: the *sender* framed garbage
        raise ProtocolError(f"undecodable payload: {exc}") from exc
    return code, payload, tc


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionClosedError(
                f"peer closed connection ({n - remaining}/{n} bytes read)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, code: int, payload: Any,
               tc: Optional[Tuple[str, str]] = None) -> int:
    """Write one frame; returns bytes put on the wire."""
    data = encode_frame(code, payload, tc=tc)
    sock.sendall(data)
    return len(data)


def recv_frame(sock: socket.socket
               ) -> Tuple[int, Any, int, Optional[Tuple[str, str]]]:
    """Read one frame; returns ``(op_code, payload, bytes_read,
    trace_context)``."""
    header = _recv_exact(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds "
                            f"{MAX_FRAME_BYTES} byte cap")
    body = _recv_exact(sock, length)
    code, payload, tc = decode_body(body)
    return code, payload, _LEN.size + length, tc


# -- error frames -----------------------------------------------------------

#: exception type ↔ wire name, in both directions.  Anything not here
#: degrades to :class:`RpcError` client-side (message preserved).
_ERROR_TYPES = {
    "KeyError": KeyError,
    "ValueError": ValueError,
    "RuntimeError": RuntimeError,
    "NotImplementedError": NotImplementedError,
    "TabletServerError": TabletServerError,
    "ServerCrashedError": ServerCrashedError,
    "NotHostedError": NotHostedError,
}
_ERROR_NAMES = {cls: name for name, cls in _ERROR_TYPES.items()}


def error_payload(exc: BaseException) -> dict:
    name = _ERROR_NAMES.get(type(exc))
    if name is None:  # subclasses / exotic types degrade gracefully
        matches = [cls for cls in _ERROR_NAMES if isinstance(exc, cls)]
        if matches:
            # most-derived match, so a ServerCrashedError subclass maps
            # to the retryable crash type rather than bare RuntimeError
            name = _ERROR_NAMES[max(matches,
                                    key=lambda cls: len(cls.__mro__))]
        else:
            name = "RpcError"
    # KeyError's str() is repr(args[0]) — carry the bare message so the
    # round trip doesn't nest quotes
    message = exc.args[0] if exc.args else str(exc)
    return {"type": name, "message": str(message)}


def raise_error(payload: dict) -> None:
    """Re-raise the exception an ``ERROR`` frame describes."""
    cls = _ERROR_TYPES.get(payload.get("type", ""), RpcError)
    raise cls(payload.get("message", "remote error"))


# -- value codecs -----------------------------------------------------------


def cell_to_wire(cell: Cell) -> list:
    k = cell.key
    return [k.row, k.family, k.qualifier, k.visibility, k.timestamp,
            k.delete, cell.value]


def wire_to_cell(item: Sequence) -> Cell:
    row, family, qualifier, visibility, timestamp, delete, value = item
    return Cell(Key(row, family, qualifier, visibility, timestamp,
                    delete=bool(delete)), value)


def range_to_wire(rng: Range) -> list:
    return [rng.start_row, rng.stop_row]


def wire_to_range(item: Sequence) -> Range:
    return Range(item[0], item[1])


#: the named table-iterator registry: the only iterator factories that
#: may cross the wire.  User *scan* iterators (arbitrary callables)
#: never need to — they run client-side — but *table* iterators run in
#: the server's compaction and scan stacks, so a remote table config
#: must name them.
COMBINER_REGISTRY = {
    "sum": SummingCombiner,
    "min": MinCombiner,
    "max": MaxCombiner,
}
_COMBINER_NAMES = {cls: name for name, cls in COMBINER_REGISTRY.items()}


def config_to_wire(config: Optional[TableConfig]) -> Optional[dict]:
    if config is None:
        return None
    iterators: List[str] = []
    for factory in config.table_iterators:
        name = _COMBINER_NAMES.get(factory)
        if name is None:
            raise ValueError(
                f"table iterator {factory!r} is not wire-serializable: "
                f"remote tables support the named combiners "
                f"{sorted(COMBINER_REGISTRY)} (attach arbitrary iterators "
                f"at scan time instead — they run client-side)")
        iterators.append(name)
    return {"max_versions": config.max_versions,
            "table_iterators": iterators,
            "flush_bytes": config.flush_bytes}


def wire_to_config(item: Optional[dict]) -> Optional[TableConfig]:
    if item is None:
        return None
    unknown = [n for n in item["table_iterators"] if n not in COMBINER_REGISTRY]
    if unknown:
        raise ValueError(f"unknown table iterator name(s) {unknown!r}; "
                         f"known: {sorted(COMBINER_REGISTRY)}")
    return TableConfig(
        max_versions=item["max_versions"],
        table_iterators=tuple(COMBINER_REGISTRY[n]
                              for n in item["table_iterators"]),
        flush_bytes=item["flush_bytes"])
