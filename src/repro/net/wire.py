"""The framed wire protocol spoken between repro.net clients and servers.

Every message is one *frame*::

    !I   body_length          (frame header, 4 bytes, network order)
    !B   wire version         (body starts here)
    !B   op-code
    !B   flags                (payload encoding: bit0 cells, bit1 zlib)
    !I   CRC-32 of trace context + request id + payload
    !16s trace id             (trace context block, 25 bytes;
    !8s  span id               all zeros = no context attached)
    !B   tc flags             (bit0: trace is head-sampled)
    !Q   request id           (multiplexing tag; 0 = unmultiplexed)
    ...  payload              (UTF-8 JSON, or binary — see flags)

Wire version 3 is the multiplexed protocol: every frame carries an
8-byte request id inside the CRC-covered region, so one persistent
socket can interleave hundreds of in-flight RPCs — responses route
back to their callers by id instead of by socket ownership, and scan
``CHUNK`` streams interleave with write acks on the same connection.
Version 2 added the fixed trace-context block (the raw bytes of the
sender's :class:`~repro.obs.trace.TraceContext`) so a server can
parent its handler spans under the originating client span;
``repro.obs.stitch`` later merges per-process trace files by
``trace_id``.  The block's trailing flags byte carries the head-
sampling decision (``TC_SAMPLED``), CRC-covered like the ids, so every
process in a request's path records — or skips recording — the same
trace without re-deciding.  All-zero blocks mean "no context" (real
contexts always have nonzero ids) — tracing off costs no branches on
the framing path, only constant bytes.

The flags byte selects the payload encoding.  ``0`` is UTF-8 JSON —
control-plane ops are strings-and-numbers and stay readable.
``FLAG_CELLS`` marks the packed binary cell-block payload of
:mod:`repro.net.cells` (optionally prefixed by a JSON meta dict) used
on the hot ops: scan ``CHUNK`` frames and ``WRITE_BATCH`` mutation
batches, where JSON spends most of the frame on quoting.
``FLAG_ZLIB`` means the payload bytes (after the meta split) are
zlib-compressed; senders apply it per-frame when asked and the
payload is big enough to win.

The CRC covers trace context + request id + payload, and turns the
fault injector's corrupt-frame fault (and any real transport
corruption) into a typed :class:`FrameCorruptError`, instead of a
parse error deep in a handler.  On a multiplexed connection a CRC
failure is fatal to the *connection* (the request id itself is
untrusted), so the client fails all pending requests and retries them
on a fresh socket.

Request op-codes occupy 1..0x3F; response codes 0x40..0x4F.  A normal
RPC is one request frame → one ``OK`` (or ``ERROR``) frame; a scan is
one request frame → N ``CHUNK`` frames → one ``DONE`` frame, any of
which may be replaced by ``ERROR`` mid-stream — all tagged with the
request id of the frame that opened them.

Error frames carry ``{"type", "message"}`` and are decoded back into
the *same* exception types the in-process backend raises
(``KeyError`` for a missing table, ``ValueError`` for a bad split,
:class:`~repro.dbsim.errors.ServerCrashedError`,
:class:`~repro.dbsim.errors.BusyError` for admission-control
rejections, ...), which is what lets the existing client test suite
pass unmodified against the remote backend.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.dbsim.errors import (
    BusyError,
    NotHostedError,
    ServerCrashedError,
    TabletServerError,
)
from repro.dbsim.iterators import MaxCombiner, MinCombiner, SummingCombiner
from repro.dbsim.key import Cell, Key, Range
from repro.dbsim.server import TableConfig
from repro.net.iterspec import IterSpecError, NonSerializableIteratorError

WIRE_VERSION = 3

#: frame header: body length
_LEN = struct.Struct("!I")
#: body header: version, op-code, flags, CRC-32 of (tc + req id + payload)
_BODY = struct.Struct("!BBBI")
#: trace-context block: 16-byte trace id + 8-byte span id + flags byte
#: (all zeros = none)
_TC = struct.Struct("!16s8sB")
_TC_NONE = _TC.pack(b"\x00" * 16, b"\x00" * 8, 0)
#: trace-context flag bit: the sender head-sampled this trace (record it)
TC_SAMPLED = 0x01
#: request-id block: multiplexing tag (0 = unmultiplexed)
_REQ = struct.Struct("!Q")
_REQ_NONE = _REQ.pack(0)

# payload-encoding flags
FLAG_CELLS = 0x01  #: payload is a binary cell block (+ optional JSON meta)
FLAG_ZLIB = 0x02   #: payload bytes are zlib-compressed
_KNOWN_FLAGS = FLAG_CELLS | FLAG_ZLIB

#: bytes a frame spends on framing (length prefix + body header +
#: trace-context block + request id); ``frame_len - FRAME_OVERHEAD``
#: is payload bytes
FRAME_OVERHEAD = _LEN.size + _BODY.size + _TC.size + _REQ.size

#: refuse to allocate for absurd lengths (garbage or version skew)
MAX_FRAME_BYTES = 64 << 20

#: only compress payloads big enough for zlib to plausibly win
COMPRESS_MIN_BYTES = 512

#: cell-block payloads prefix the block with a JSON meta dict
_META_LEN = struct.Struct("!I")

# -- op-codes ---------------------------------------------------------------

# requests (client → server / manager)
PING = 0x01
CREATE_TABLE = 0x02
DELETE_TABLE = 0x03
TABLE_EXISTS = 0x04
LIST_TABLES = 0x05
ADD_SPLIT = 0x06
SPLITS = 0x07
FLUSH = 0x08
COMPACT = 0x09
LOCATE = 0x0A
STATS = 0x0B
METRICS = 0x0C
SCAN = 0x0D
WRITE_BATCH = 0x0E
HOST_TABLET = 0x0F
DROP_TABLE = 0x10
SPLIT_TABLET = 0x11
MIGRATE_OUT = 0x12
MIGRATE_IN = 0x13
CRASH = 0x14
RECOVER = 0x15
TABLET_INFO = 0x16
STATUS = 0x17
SHUTDOWN = 0x18
TELEMETRY = 0x19
CANCEL_SCAN = 0x1A

# responses (server → client)
OK = 0x40
ERROR = 0x41
CHUNK = 0x42
DONE = 0x43

OP_NAMES = {
    PING: "ping", CREATE_TABLE: "create_table",
    DELETE_TABLE: "delete_table", TABLE_EXISTS: "table_exists",
    LIST_TABLES: "list_tables", ADD_SPLIT: "add_split", SPLITS: "splits",
    FLUSH: "flush", COMPACT: "compact", LOCATE: "locate", STATS: "stats",
    METRICS: "metrics", SCAN: "scan", WRITE_BATCH: "write_batch",
    HOST_TABLET: "host_tablet", DROP_TABLE: "drop_table",
    SPLIT_TABLET: "split_tablet", MIGRATE_OUT: "migrate_out",
    MIGRATE_IN: "migrate_in", CRASH: "crash", RECOVER: "recover",
    TABLET_INFO: "tablet_info", STATUS: "status", SHUTDOWN: "shutdown",
    TELEMETRY: "telemetry", CANCEL_SCAN: "cancel_scan",
    OK: "ok", ERROR: "error", CHUNK: "chunk", DONE: "done",
}


# -- protocol errors --------------------------------------------------------


class ProtocolError(RuntimeError):
    """The byte stream violated the framing contract (bad version,
    oversized frame, unknown op-code)."""


class FrameCorruptError(ProtocolError):
    """Payload CRC mismatch — the frame was damaged in flight.
    Retryable: the sender's copy was fine."""


class ConnectionClosedError(ConnectionError):
    """The peer closed the socket mid-frame (crash, reset fault, or
    orderly shutdown racing a request)."""


class RpcError(RuntimeError):
    """A server-side failure with no richer client-side type."""


# -- binary payloads --------------------------------------------------------


class CellsPayload:
    """A frame payload carrying a packed binary cell block.

    ``meta`` is a small JSON-serializable dict riding ahead of the
    block (chunk resume keys, batch session/seq, ...); ``block`` is the
    :mod:`repro.net.cells` bytes — kept opaque here so framing never
    touches cell internals, and exposed as a ``memoryview``-sliceable
    buffer on decode (zero-copy into the codec).
    """

    __slots__ = ("meta", "block")

    def __init__(self, meta: dict, block) -> None:
        self.meta = meta
        self.block = block

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CellsPayload(meta={self.meta!r}, block={len(self.block)}B)"


def _encode_payload(payload: Any, compress: bool) -> Tuple[bytes, int]:
    """Serialize ``payload`` → (bytes, flags)."""
    if isinstance(payload, CellsPayload):
        meta = json.dumps(payload.meta, separators=(",", ":")).encode("utf-8")
        body = _META_LEN.pack(len(meta)) + meta + bytes(payload.block)
        flags = FLAG_CELLS
    else:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        flags = 0
    if compress and len(body) >= COMPRESS_MIN_BYTES:
        packed = zlib.compress(body, 1)
        if len(packed) < len(body):
            return packed, flags | FLAG_ZLIB
    return body, flags


def _decode_payload(raw, flags: int) -> Any:
    if flags & ~_KNOWN_FLAGS:
        raise ProtocolError(f"unknown payload flags 0x{flags:02x}")
    if flags & FLAG_ZLIB:
        try:
            raw = zlib.decompress(bytes(raw))
        except zlib.error as exc:
            raise ProtocolError(f"undecompressable payload: {exc}") from exc
    view = memoryview(raw)
    try:
        if flags & FLAG_CELLS:
            if len(view) < _META_LEN.size:
                raise ProtocolError(
                    f"cell payload too short: {len(view)} bytes")
            (meta_len,) = _META_LEN.unpack_from(view, 0)
            end = _META_LEN.size + meta_len
            if end > len(view):
                raise ProtocolError(f"cell payload meta length {meta_len} "
                                    f"overruns frame")
            meta = json.loads(str(view[_META_LEN.size:end], "utf-8"))
            return CellsPayload(meta, view[end:])
        return json.loads(str(view, "utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        # CRC passed but the encoding didn't: the *sender* framed garbage
        raise ProtocolError(f"undecodable payload: {exc}") from exc


# -- frame I/O --------------------------------------------------------------


def encode_frame(code: int, payload: Any,
                 tc: Optional[Tuple[str, ...]] = None,
                 req: int = 0, compress: bool = False) -> bytes:
    """One wire frame for ``payload`` (any JSON-serializable value, or
    a :class:`CellsPayload` for the binary cell encoding).

    ``tc`` is an optional ``(trace_id, span_id[, sampled])`` hex tuple
    (e.g. a :class:`~repro.obs.trace.TraceContext`) packed into the
    frame's trace-context block — the sampled flag defaults to True
    for bare pairs; ``None`` sends the all-zero block.  ``req`` is the
    multiplexing request id (0 = unmultiplexed).  ``compress`` permits
    per-frame zlib when the payload is large enough to win.
    """
    body, flags = _encode_payload(payload, compress)
    if tc is None:
        tcb = _TC_NONE
    else:
        sampled = tc[2] if len(tc) > 2 else True
        tcb = _TC.pack(bytes.fromhex(tc[0]), bytes.fromhex(tc[1]),
                       TC_SAMPLED if sampled else 0)
    reqb = _REQ_NONE if req == 0 else _REQ.pack(req)
    crc = zlib.crc32(body, zlib.crc32(reqb, zlib.crc32(tcb)))
    return (_LEN.pack(_BODY.size + _TC.size + _REQ.size + len(body))
            + _BODY.pack(WIRE_VERSION, code, flags, crc) + tcb + reqb + body)


def decode_body(body) -> Tuple[int, Any,
                               Optional[Tuple[str, str, bool]], int]:
    """Parse a frame body (everything after the length prefix) into
    ``(op_code, payload, trace_context, request_id)``, verifying
    version and CRC.  ``trace_context`` is ``(trace_id, span_id,
    sampled)`` or ``None`` when the sender attached no context."""
    fixed = _BODY.size + _TC.size + _REQ.size
    if len(body) < fixed:
        raise ProtocolError(f"frame body too short: {len(body)} bytes")
    view = memoryview(body)
    version, code, flags, crc = _BODY.unpack_from(view)
    if version != WIRE_VERSION:
        raise ProtocolError(
            f"wire version {version} != supported {WIRE_VERSION}")
    tcb = view[_BODY.size:_BODY.size + _TC.size]
    reqb = view[_BODY.size + _TC.size:fixed]
    payload_bytes = view[fixed:]
    if zlib.crc32(payload_bytes,
                  zlib.crc32(reqb, zlib.crc32(tcb))) != crc:
        raise FrameCorruptError(
            f"payload CRC mismatch on {OP_NAMES.get(code, hex(code))} frame")
    if tcb == _TC_NONE:
        tc: Optional[Tuple[str, str, bool]] = None
    else:
        trace_raw, span_raw, tc_flags = _TC.unpack(tcb)
        tc = (trace_raw.hex(), span_raw.hex(),
              bool(tc_flags & TC_SAMPLED))
    (req,) = _REQ.unpack(reqb)
    payload = _decode_payload(payload_bytes, flags)
    return code, payload, tc, req


class FrameReader:
    """Reads frames off one socket with ``recv_into`` — no per-recv
    ``bytes`` objects, no O(n²) concatenation on large chunks.

    The 4-byte length header lands in a reused buffer; each body gets
    a fresh ``bytearray`` sized exactly to the frame, because decoded
    payloads (cell-block memoryviews) may outlive the next read on a
    multiplexed connection.
    """

    __slots__ = ("_sock", "_hdr", "_hdr_view")

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._hdr = bytearray(_LEN.size)
        self._hdr_view = memoryview(self._hdr)

    def _fill(self, view: memoryview, n: int) -> None:
        got = 0
        recv_into = self._sock.recv_into
        while got < n:
            k = recv_into(view[got:n])
            if not k:
                raise ConnectionClosedError(
                    f"peer closed connection ({got}/{n} bytes read)")
            got += k

    def read(self) -> Tuple[int, Any, int,
                            Optional[Tuple[str, str, bool]], int]:
        """Read one frame; returns ``(op_code, payload, bytes_read,
        trace_context, request_id)``."""
        self._fill(self._hdr_view, _LEN.size)
        (length,) = _LEN.unpack(self._hdr)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame length {length} exceeds "
                                f"{MAX_FRAME_BYTES} byte cap")
        body = bytearray(length)
        self._fill(memoryview(body), length)
        code, payload, tc, req = decode_body(body)
        return code, payload, _LEN.size + length, tc, req


def send_frame(sock: socket.socket, code: int, payload: Any,
               tc: Optional[Tuple[str, ...]] = None,
               req: int = 0, compress: bool = False) -> int:
    """Write one frame; returns bytes put on the wire."""
    data = encode_frame(code, payload, tc=tc, req=req, compress=compress)
    sock.sendall(data)
    return len(data)


def recv_frame(sock: socket.socket
               ) -> Tuple[int, Any, int,
                          Optional[Tuple[str, str, bool]], int]:
    """Read one frame; returns ``(op_code, payload, bytes_read,
    trace_context, request_id)``.  One-shot convenience over
    :class:`FrameReader` — connection loops hold a reader instead."""
    return FrameReader(sock).read()


# -- error frames -----------------------------------------------------------

#: exception type ↔ wire name, in both directions.  Anything not here
#: degrades to :class:`RpcError` client-side (message preserved).
_ERROR_TYPES = {
    "KeyError": KeyError,
    "ValueError": ValueError,
    "RuntimeError": RuntimeError,
    "NotImplementedError": NotImplementedError,
    "TabletServerError": TabletServerError,
    "ServerCrashedError": ServerCrashedError,
    "NotHostedError": NotHostedError,
    "BusyError": BusyError,
    "IterSpecError": IterSpecError,
    "NonSerializableIteratorError": NonSerializableIteratorError,
}
_ERROR_NAMES = {cls: name for name, cls in _ERROR_TYPES.items()}


def error_payload(exc: BaseException) -> dict:
    name = _ERROR_NAMES.get(type(exc))
    if name is None:  # subclasses / exotic types degrade gracefully
        matches = [cls for cls in _ERROR_NAMES if isinstance(exc, cls)]
        if matches:
            # most-derived match, so a ServerCrashedError subclass maps
            # to the retryable crash type rather than bare RuntimeError
            name = _ERROR_NAMES[max(matches,
                                    key=lambda cls: len(cls.__mro__))]
        else:
            name = "RpcError"
    # KeyError's str() is repr(args[0]) — carry the bare message so the
    # round trip doesn't nest quotes
    message = exc.args[0] if exc.args else str(exc)
    return {"type": name, "message": str(message)}


def raise_error(payload: dict) -> None:
    """Re-raise the exception an ``ERROR`` frame describes."""
    cls = _ERROR_TYPES.get(payload.get("type", ""), RpcError)
    raise cls(payload.get("message", "remote error"))


def error_from_payload(payload: dict) -> BaseException:
    """The exception an ``ERROR`` frame describes, unraised (the async
    core attaches it to the waiting future instead of raising)."""
    cls = _ERROR_TYPES.get(payload.get("type", ""), RpcError)
    return cls(payload.get("message", "remote error"))


# -- value codecs -----------------------------------------------------------


def cell_to_wire(cell: Cell) -> list:
    k = cell.key
    return [k.row, k.family, k.qualifier, k.visibility, k.timestamp,
            k.delete, cell.value]


def wire_to_cell(item: Sequence) -> Cell:
    row, family, qualifier, visibility, timestamp, delete, value = item
    return Cell(Key(row, family, qualifier, visibility, timestamp,
                    delete=bool(delete)), value)


def range_to_wire(rng: Range) -> list:
    return [rng.start_row, rng.stop_row]


def wire_to_range(item: Sequence) -> Range:
    return Range(item[0], item[1])


#: the named table-iterator registry: the only iterator factories that
#: may cross the wire.  User *scan* iterators (arbitrary callables)
#: never need to — they run client-side — but *table* iterators run in
#: the server's compaction and scan stacks, so a remote table config
#: must name them.
COMBINER_REGISTRY = {
    "sum": SummingCombiner,
    "min": MinCombiner,
    "max": MaxCombiner,
}
_COMBINER_NAMES = {cls: name for name, cls in COMBINER_REGISTRY.items()}


def config_to_wire(config: Optional[TableConfig]) -> Optional[dict]:
    if config is None:
        return None
    iterators: List[str] = []
    for factory in config.table_iterators:
        name = _COMBINER_NAMES.get(factory)
        if name is None:
            raise ValueError(
                f"table iterator {factory!r} is not wire-serializable: "
                f"remote tables support the named combiners "
                f"{sorted(COMBINER_REGISTRY)} (attach arbitrary iterators "
                f"at scan time instead — they run client-side)")
        iterators.append(name)
    return {"max_versions": config.max_versions,
            "table_iterators": iterators,
            "flush_bytes": config.flush_bytes}


def wire_to_config(item: Optional[dict]) -> Optional[TableConfig]:
    if item is None:
        return None
    unknown = [n for n in item["table_iterators"] if n not in COMBINER_REGISTRY]
    if unknown:
        raise ValueError(f"unknown table iterator name(s) {unknown!r}; "
                         f"known: {sorted(COMBINER_REGISTRY)}")
    return TableConfig(
        max_versions=item["max_versions"],
        table_iterators=tuple(COMBINER_REGISTRY[n]
                              for n in item["table_iterators"]),
        flush_bytes=item["flush_bytes"])
