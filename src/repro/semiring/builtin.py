"""Standard operators, monoids, and semirings, plus a name registry.

These mirror the GraphBLAS "built-ins" the paper assumes: the arithmetic
semiring for counting walks and NMF, the tropical (min-plus) semiring
for shortest paths, the boolean semiring for reachability/BFS, and
structural semirings (``plus_pair``) for triangle/support counting.
"""

from __future__ import annotations

import numpy as np

from repro.semiring.ops import BinaryOp, Monoid, Semiring, UnaryOp

_INF = float("inf")


# ---------------------------------------------------------------------------
# Unary operators (for Apply)
# ---------------------------------------------------------------------------

IDENTITY = UnaryOp("identity", lambda x: x)
AINV = UnaryOp("ainv", np.negative)  # additive inverse
ABS = UnaryOp("abs", np.abs)
ONE = UnaryOp("one", lambda x: np.ones_like(np.asarray(x)))


def _minv(x):
    with np.errstate(divide="ignore"):
        return 1.0 / np.asarray(x, dtype=np.float64)


MINV = UnaryOp("minv", _minv)  # multiplicative inverse


# ---------------------------------------------------------------------------
# Binary operators
# ---------------------------------------------------------------------------

def _first(x, y):
    x, y = np.asarray(x), np.asarray(y)
    return np.broadcast_arrays(x, y)[0]


def _second(x, y):
    x, y = np.asarray(x), np.asarray(y)
    return np.broadcast_arrays(x, y)[1]


def _pair(x, y):
    x, y = np.asarray(x), np.asarray(y)
    shape = np.broadcast_shapes(x.shape, y.shape)
    return np.ones(shape, dtype=np.result_type(x, y))


PLUS = BinaryOp("plus", np.add, commutative=True, associative=True)
TIMES = BinaryOp("times", np.multiply, commutative=True, associative=True)
MINUS = BinaryOp("minus", np.subtract)


def _safe_div(x, y):
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.divide(x, y)


DIV = BinaryOp("div", _safe_div)
MIN = BinaryOp("min", np.minimum, commutative=True, associative=True)
MAX = BinaryOp("max", np.maximum, commutative=True, associative=True)
LOR = BinaryOp("lor", np.logical_or, commutative=True, associative=True)
LAND = BinaryOp("land", np.logical_and, commutative=True, associative=True)
LXOR = BinaryOp("lxor", np.logical_xor, commutative=True, associative=True)
EQ = BinaryOp("eq", np.equal, commutative=True)
FIRST = BinaryOp("first", _first, associative=True)
SECOND = BinaryOp("second", _second, associative=True)
PAIR = BinaryOp("pair", _pair, commutative=True)
#: "any" picks an arbitrary operand; implemented as max, which is a valid
#: refinement (deterministic and associative) for the structural uses here.
ANY = BinaryOp("any", np.maximum, commutative=True, associative=True)


# ---------------------------------------------------------------------------
# Monoids
# ---------------------------------------------------------------------------

PLUS_MONOID = Monoid.from_binaryop(PLUS, identity=0.0)
TIMES_MONOID = Monoid.from_binaryop(TIMES, identity=1.0, terminal=0.0)
MIN_MONOID = Monoid.from_binaryop(MIN, identity=_INF, terminal=-_INF)
MAX_MONOID = Monoid.from_binaryop(MAX, identity=-_INF, terminal=_INF)
LOR_MONOID = Monoid.from_binaryop(LOR, identity=False, terminal=True)
LAND_MONOID = Monoid.from_binaryop(LAND, identity=True, terminal=False)
ANY_MONOID = Monoid.from_binaryop(ANY, identity=-_INF)


# ---------------------------------------------------------------------------
# Semirings
# ---------------------------------------------------------------------------

#: Ordinary arithmetic — walk counting, NMF, Jaccard numerators.
PLUS_TIMES = Semiring("plus_times", PLUS_MONOID, TIMES, one=1.0)
#: Tropical semiring — single/all-pairs shortest paths (paper §I).
MIN_PLUS = Semiring("min_plus", MIN_MONOID, PLUS, one=0.0)
#: Longest-path / critical-path algebra.
MAX_PLUS = Semiring("max_plus", MAX_MONOID, PLUS, one=0.0)
MIN_TIMES = Semiring("min_times", MIN_MONOID, TIMES, one=1.0)
MAX_TIMES = Semiring("max_times", MAX_MONOID, TIMES, one=1.0)
#: Bottleneck ("widest path") algebras.
MAX_MIN = Semiring("max_min", MAX_MONOID, MIN, one=_INF)
MIN_MAX = Semiring("min_max", MIN_MONOID, MAX, one=-_INF)
#: Boolean semiring — reachability, BFS frontiers.
LOR_LAND = Semiring("lor_land", LOR_MONOID, LAND, one=True)
#: Structural semirings — count/aggregate over the intersection pattern.
PLUS_PAIR = Semiring("plus_pair", PLUS_MONOID, PAIR, one=1.0)
ANY_PAIR = Semiring("any_pair", ANY_MONOID, PAIR, one=1.0)
PLUS_MIN = Semiring("plus_min", PLUS_MONOID, MIN, one=_INF)
PLUS_LAND = Semiring("plus_land", PLUS_MONOID, LAND, one=True)
#: Parent-selection semirings for BFS trees / Bellman-Ford predecessors.
MIN_FIRST = Semiring("min_first", MIN_MONOID, FIRST)
MIN_SECOND = Semiring("min_second", MIN_MONOID, SECOND)


_REGISTRY = {
    s.name: s
    for s in (
        PLUS_TIMES,
        MIN_PLUS,
        MAX_PLUS,
        MIN_TIMES,
        MAX_TIMES,
        MAX_MIN,
        MIN_MAX,
        LOR_LAND,
        PLUS_PAIR,
        ANY_PAIR,
        PLUS_MIN,
        PLUS_LAND,
        MIN_FIRST,
        MIN_SECOND,
    )
}


def get_semiring(name: str) -> Semiring:
    """Look up a built-in semiring by name (e.g. ``"min_plus"``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown semiring {name!r}; known: {known}") from None


def list_semirings() -> list:
    """Names of all registered built-in semirings, sorted."""
    return sorted(_REGISTRY)
