"""Operator classes: UnaryOp, BinaryOp, Monoid, Semiring.

Each operator wraps a vectorised NumPy callable so kernels stay free of
Python-level per-entry loops.  Binary operators preferentially carry a
true ``numpy.ufunc`` — that unlocks ``ufunc.reduceat`` for the segmented
reductions at the heart of SpGEMM/SpMV.  Operators built from plain
Python callables are promoted with ``numpy.frompyfunc`` (object-dtype
internally, cast back on the way out), so user-defined algebra still
works, just slower.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np


class UnaryOp:
    """A named elementwise function of one argument.

    ``fn`` must accept and return NumPy arrays (elementwise).  Used by the
    GraphBLAS ``Apply`` kernel — e.g. the paper's k-truss support count
    applies ``x == 2 ? 1 : 0`` to every entry of ``R = EA``.
    """

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable):
        if not callable(fn):
            raise TypeError(f"fn for UnaryOp {name!r} must be callable")
        self.name = name
        self.fn = fn

    def __call__(self, x):
        return self.fn(np.asarray(x))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnaryOp({self.name})"


class BinaryOp:
    """A named elementwise function of two arguments.

    Parameters
    ----------
    name:
        Identifier used in reprs and the registry.
    fn:
        Vectorised callable ``(x, y) -> z``.  If it is a ``numpy.ufunc``
        it is used directly; otherwise it is assumed to be array-capable.
    ufunc:
        Optional true ufunc enabling ``reduceat``.  Defaults to ``fn``
        when ``fn`` already is one.
    commutative / associative:
        Declared algebraic properties (checked by the property-based
        tests, trusted by the kernels).
    """

    __slots__ = ("name", "fn", "ufunc", "commutative", "associative")

    def __init__(
        self,
        name: str,
        fn: Callable,
        ufunc: Optional[np.ufunc] = None,
        commutative: bool = False,
        associative: bool = False,
    ):
        if not callable(fn):
            raise TypeError(f"fn for BinaryOp {name!r} must be callable")
        self.name = name
        self.fn = fn
        if ufunc is None and isinstance(fn, np.ufunc):
            ufunc = fn
        self.ufunc = ufunc
        self.commutative = commutative
        self.associative = associative

    @classmethod
    def from_python(
        cls,
        name: str,
        fn: Callable,
        commutative: bool = False,
        associative: bool = False,
    ) -> "BinaryOp":
        """Promote a scalar Python function to a (slow) vectorised op."""
        ufunc = np.frompyfunc(fn, 2, 1)

        def vectorised(x, y, _uf=ufunc):
            out = _uf(np.asarray(x), np.asarray(y))
            return np.asarray(out, dtype=np.result_type(x, y))

        return cls(name, vectorised, ufunc=ufunc, commutative=commutative,
                   associative=associative)

    def __call__(self, x, y):
        return self.fn(np.asarray(x), np.asarray(y))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BinaryOp({self.name})"


class Monoid(BinaryOp):
    """An associative, commutative BinaryOp with an identity element.

    Monoids drive reductions: the GraphBLAS ``Reduce`` kernel and the
    ⊕-accumulation inside SpGEMM/SpMV.  ``identity`` doubles as the
    implicit value of absent sparse entries under this algebra (0 for
    plus, +inf for min, ...).
    """

    __slots__ = ("identity", "terminal")

    def __init__(
        self,
        name: str,
        fn: Callable,
        identity,
        ufunc: Optional[np.ufunc] = None,
        terminal=None,
    ):
        super().__init__(name, fn, ufunc=ufunc, commutative=True, associative=True)
        self.identity = identity
        #: absorbing element, if any (e.g. True for LOR) — lets kernels
        #: short-circuit; purely an optimisation hint.
        self.terminal = terminal

    @classmethod
    def from_binaryop(cls, op: BinaryOp, identity, terminal=None) -> "Monoid":
        return cls(op.name, op.fn, identity, ufunc=op.ufunc, terminal=terminal)

    def reduce(self, values: np.ndarray, axis=None):
        """Fold ``values`` with ⊕ along ``axis`` (all axes when None)."""
        values = np.asarray(values)
        if values.size == 0:
            if axis is None:
                return self.identity
            shape = list(values.shape)
            del shape[axis if axis >= 0 else axis + values.ndim]
            return np.full(shape, self.identity, dtype=values.dtype)
        if self.ufunc is not None and self.ufunc.nin == 2:
            out = self.ufunc.reduce(values, axis=axis)
            if values.dtype != object:
                return out
            return np.asarray(out, dtype=values.dtype) if axis is not None else out
        raise TypeError(f"monoid {self.name} has no reducible ufunc")

    def reduceat(self, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """Segmented reduce: fold each slice ``values[starts[i]:starts[i+1]]``.

        Segments must be non-empty (callers guarantee this by only
        emitting segment starts for keys that occur).  This is the single
        hottest operation in the library — it is what makes semiring
        SpGEMM vectorisable.
        """
        values = np.asarray(values)
        starts = np.asarray(starts, dtype=np.intp)
        if starts.size == 0:
            return values[:0]
        if self.ufunc is None or self.ufunc.nin != 2:
            raise TypeError(f"monoid {self.name} has no reducible ufunc")
        out = self.ufunc.reduceat(values, starts)
        if out.dtype == object and values.dtype != object:
            out = np.asarray(out, dtype=values.dtype)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Monoid({self.name}, identity={self.identity!r})"


class Semiring:
    """``(V, ⊕, ⊗, 0, 1)``: an add monoid paired with a multiply op.

    ``zero`` is the add identity / multiply annihilator — the implicit
    value of missing sparse entries.  ``one`` is the multiply identity,
    used to build identity matrices under the semiring.
    """

    __slots__ = ("name", "add", "mul", "one")

    def __init__(self, name: str, add: Monoid, mul: BinaryOp, one=1):
        if not isinstance(add, Monoid):
            raise TypeError(f"add for semiring {name!r} must be a Monoid")
        if not isinstance(mul, BinaryOp):
            raise TypeError(f"mul for semiring {name!r} must be a BinaryOp")
        self.name = name
        self.add = add
        self.mul = mul
        self.one = one

    @property
    def zero(self):
        """Additive identity / multiplicative annihilator."""
        return self.add.identity

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Semiring) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Semiring", self.name))
