"""Semiring algebra: unary/binary operators, monoids, and semirings.

The GraphBLAS design (and this paper's Section I) parameterises every
kernel by a semiring ``(V, ⊕, ⊗, 0, 1)``: SpGEMM/SpMV replace scalar
``+``/``*`` with the semiring's add-monoid and multiply operator.  The
paper leans on this to get, e.g., BFS from the boolean semiring and
shortest paths from the tropical (min-plus) semiring.

This package provides the operator classes plus a registry of the
standard instances used throughout :mod:`repro.sparse` and
:mod:`repro.algorithms`.
"""

from repro.semiring.ops import BinaryOp, Monoid, Semiring, UnaryOp
from repro.semiring.builtin import (
    # unary ops
    ABS,
    IDENTITY,
    AINV,
    MINV,
    ONE,
    # binary ops
    ANY,
    DIV,
    FIRST,
    LAND,
    LOR,
    LXOR,
    MAX,
    MIN,
    MINUS,
    PAIR,
    PLUS,
    SECOND,
    TIMES,
    EQ,
    # monoids
    LAND_MONOID,
    LOR_MONOID,
    MAX_MONOID,
    MIN_MONOID,
    PLUS_MONOID,
    TIMES_MONOID,
    ANY_MONOID,
    # semirings
    ANY_PAIR,
    LOR_LAND,
    MAX_MIN,
    MAX_PLUS,
    MAX_TIMES,
    MIN_FIRST,
    MIN_MAX,
    MIN_PLUS,
    MIN_SECOND,
    MIN_TIMES,
    PLUS_LAND,
    PLUS_MIN,
    PLUS_PAIR,
    PLUS_TIMES,
    get_semiring,
    list_semirings,
)

__all__ = [
    "BinaryOp",
    "Monoid",
    "Semiring",
    "UnaryOp",
    "ABS",
    "IDENTITY",
    "AINV",
    "MINV",
    "ONE",
    "ANY",
    "DIV",
    "FIRST",
    "LAND",
    "LOR",
    "LXOR",
    "MAX",
    "MIN",
    "MINUS",
    "PAIR",
    "PLUS",
    "SECOND",
    "TIMES",
    "EQ",
    "LAND_MONOID",
    "LOR_MONOID",
    "MAX_MONOID",
    "MIN_MONOID",
    "PLUS_MONOID",
    "TIMES_MONOID",
    "ANY_MONOID",
    "ANY_PAIR",
    "LOR_LAND",
    "MAX_MIN",
    "MAX_PLUS",
    "MAX_TIMES",
    "MIN_FIRST",
    "MIN_MAX",
    "MIN_PLUS",
    "MIN_SECOND",
    "MIN_TIMES",
    "PLUS_LAND",
    "PLUS_MIN",
    "PLUS_PAIR",
    "PLUS_TIMES",
    "get_semiring",
    "list_semirings",
]
