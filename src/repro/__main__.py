"""``python -m repro`` entry point (see :mod:`repro.cli`)."""

import sys

from repro.cli import main

# The guard matters: repro.net spawns server processes with the
# multiprocessing "spawn" start method, which re-imports __main__ in
# each child — without it every child would re-run the CLI.
if __name__ == "__main__":
    sys.exit(main())
