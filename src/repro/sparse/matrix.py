"""The CSR sparse matrix container.

``Matrix`` is a plain data holder with canonical CSR invariants; all
real work lives in the kernel modules (:mod:`repro.sparse.spgemm`,
...).  Convenience methods delegate there so user code can read like
the paper's pseudocode (``E.T().mxm(E)``, ``R.apply(...)`` ...).

Canonical form invariants (enforced at construction):

* ``indptr`` has length ``nrows + 1``, is non-decreasing, starts at 0
  and ends at ``nnz``;
* within each row, column ``indices`` are strictly increasing (sorted,
  no duplicates);
* ``values`` is a 1-D array aligned with ``indices``.

Explicit entries may hold any value, including the semiring zero;
:meth:`Matrix.prune` drops explicit zeros when an algorithm needs the
stored pattern to equal the logical support (e.g. the paper's k-truss
edge removal).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.semiring import BinaryOp, Monoid, Semiring, UnaryOp


class Matrix:
    """Immutable-by-convention CSR sparse matrix over a value set.

    Construct via :mod:`repro.sparse.construct` helpers (``from_coo``,
    ``from_dense``, ``from_edges``) rather than this raw constructor,
    which expects canonical CSR arrays.
    """

    __slots__ = ("nrows", "ncols", "indptr", "indices", "values")

    def __init__(
        self,
        nrows: int,
        ncols: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
        _validate: bool = True,
    ):
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.indptr = np.asarray(indptr, dtype=np.intp)
        self.indices = np.asarray(indices, dtype=np.intp)
        self.values = np.asarray(values)
        if _validate:
            self._check_canonical()

    # -- construction / validation ----------------------------------------

    def _check_canonical(self) -> None:
        if self.nrows < 0 or self.ncols < 0:
            raise ValueError(f"negative shape ({self.nrows}, {self.ncols})")
        if self.indptr.shape != (self.nrows + 1,):
            raise ValueError(
                f"indptr length {self.indptr.shape[0]} != nrows+1 = {self.nrows + 1}"
            )
        if self.indices.shape != self.values.shape:
            raise ValueError("indices and values length mismatch")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr does not span the index arrays")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices):
            if self.indices.min() < 0 or self.indices.max() >= self.ncols:
                raise ValueError("column index out of range")
            # strictly increasing within each row <=> diffs positive except
            # at row boundaries
            d = np.diff(self.indices)
            row_starts = self.indptr[1:-1]
            boundary = np.zeros(len(d), dtype=bool)
            inner = row_starts[(row_starts > 0) & (row_starts < len(self.indices))]
            boundary[inner - 1] = True
            if np.any((d <= 0) & ~boundary):
                raise ValueError("column indices must be sorted and unique per row")

    # -- basic properties ---------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nnz(self) -> int:
        """Number of stored entries (including explicit zeros)."""
        return len(self.indices)

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def row_lengths(self) -> np.ndarray:
        """Stored entries per row, shape ``(nrows,)``."""
        return np.diff(self.indptr)

    def row_ids(self) -> np.ndarray:
        """COO row index for every stored entry (expanded from indptr)."""
        return np.repeat(np.arange(self.nrows, dtype=np.intp), self.row_lengths)

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` in row-major sorted order."""
        return self.row_ids(), self.indices.copy(), self.values.copy()

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Column indices and values of stored entries in row ``i``."""
        if not 0 <= i < self.nrows:
            raise IndexError(f"row {i} out of range for {self.nrows} rows")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def get(self, i: int, j: int, default=0.0):
        """Stored value at ``(i, j)`` or ``default`` when absent."""
        cols, vals = self.row(i)
        if not 0 <= j < self.ncols:
            raise IndexError(f"column {j} out of range for {self.ncols} columns")
        k = np.searchsorted(cols, j)
        if k < len(cols) and cols[k] == j:
            return vals[k]
        return default

    def to_dense(self, fill=0.0) -> np.ndarray:
        """Materialise as a dense array, absent entries set to ``fill``.

        ``fill`` should be the relevant semiring's zero (0 for
        arithmetic, +inf for min-plus).
        """
        dtype = np.result_type(self.values.dtype, type(fill)) if self.nnz else np.float64
        out = np.full(self.shape, fill, dtype=dtype)
        out[self.row_ids(), self.indices] = self.values
        return out

    def copy(self) -> "Matrix":
        return Matrix(
            self.nrows,
            self.ncols,
            self.indptr.copy(),
            self.indices.copy(),
            self.values.copy(),
            _validate=False,
        )

    def astype(self, dtype) -> "Matrix":
        return Matrix(
            self.nrows,
            self.ncols,
            self.indptr,
            self.indices,
            self.values.astype(dtype),
            _validate=False,
        )

    def with_values(self, values: np.ndarray) -> "Matrix":
        """Same pattern, new values (must align with stored entries)."""
        values = np.asarray(values)
        if values.shape != self.values.shape:
            raise ValueError(
                f"values length {values.shape} != nnz pattern {self.values.shape}"
            )
        return Matrix(self.nrows, self.ncols, self.indptr, self.indices, values,
                      _validate=False)

    # -- structural ops -----------------------------------------------------

    def transpose(self) -> "Matrix":
        """Return Aᵀ (O(nnz) counting transpose, canonical output)."""
        rows, cols, vals = self.to_coo()
        # counting sort by (new row = old col); indices within each new row
        # come out sorted because the COO stream is row-major sorted.
        order = np.argsort(cols, kind="stable")
        new_cols = rows[order]
        new_vals = vals[order]
        indptr = np.zeros(self.ncols + 1, dtype=np.intp)
        np.cumsum(np.bincount(cols, minlength=self.ncols), out=indptr[1:])
        return Matrix(self.ncols, self.nrows, indptr, new_cols, new_vals,
                      _validate=False)

    @property
    def T(self) -> "Matrix":
        return self.transpose()

    def pattern(self, one=1.0) -> "Matrix":
        """Structure-only copy: every stored entry becomes ``one``."""
        return self.with_values(np.full(self.nnz, one,
                                        dtype=np.result_type(type(one))))

    def prune(self, zero=0.0) -> "Matrix":
        """Drop stored entries equal to ``zero`` (restores support)."""
        keep = self.values != zero
        if keep.all():
            return self
        rows = self.row_ids()[keep]
        indptr = np.zeros(self.nrows + 1, dtype=np.intp)
        np.cumsum(np.bincount(rows, minlength=self.nrows), out=indptr[1:])
        return Matrix(self.nrows, self.ncols, indptr, self.indices[keep],
                      self.values[keep], _validate=False)

    def iter_entries(self) -> Iterator[Tuple[int, int, object]]:
        """Yield ``(i, j, value)`` in row-major order (test/debug helper)."""
        rows = self.row_ids()
        for i, j, v in zip(rows, self.indices, self.values):
            yield int(i), int(j), v

    # -- kernel delegation (reads like the paper's pseudocode) --------------

    def mxm(self, other: "Matrix", semiring: Optional[Semiring] = None,
            mask: Optional["Matrix"] = None, strategy: str = "auto",
            expansion_budget: Optional[int] = None) -> "Matrix":
        """SpGEMM: ``self ⊕.⊗ other`` (defaults to plus-times).

        ``strategy`` / ``expansion_budget`` select and bound the
        adaptive engine (see :func:`repro.sparse.spgemm.mxm`)."""
        from repro.sparse.spgemm import mxm as _mxm

        return _mxm(self, other, semiring=semiring, mask=mask,
                    strategy=strategy, expansion_budget=expansion_budget)

    def mxv(self, x, semiring: Optional[Semiring] = None) -> np.ndarray:
        from repro.sparse.spmv import mxv as _mxv

        return _mxv(self, x, semiring=semiring)

    def ewise_mult(self, other: "Matrix", op: Optional[BinaryOp] = None) -> "Matrix":
        from repro.sparse.ewise import ewise_mult as _em

        return _em(self, other, op=op)

    def ewise_add(self, other: "Matrix", op: Optional[BinaryOp] = None) -> "Matrix":
        from repro.sparse.ewise import ewise_add as _ea

        return _ea(self, other, op=op)

    def apply(self, op: UnaryOp) -> "Matrix":
        from repro.sparse.apply import apply as _apply

        return _apply(self, op)

    def scale(self, scalar, op: Optional[BinaryOp] = None) -> "Matrix":
        from repro.sparse.apply import scale as _scale

        return _scale(self, scalar, op=op)

    def reduce_rows(self, monoid: Optional[Monoid] = None, dense: bool = True):
        from repro.sparse.reduce import reduce_rows as _rr

        return _rr(self, monoid=monoid, dense=dense)

    def reduce_cols(self, monoid: Optional[Monoid] = None, dense: bool = True):
        from repro.sparse.reduce import reduce_cols as _rc

        return _rc(self, monoid=monoid, dense=dense)

    def reduce_scalar(self, monoid: Optional[Monoid] = None):
        from repro.sparse.reduce import reduce_scalar as _rs

        return _rs(self, monoid=monoid)

    def extract(self, rows=None, cols=None) -> "Matrix":
        from repro.sparse.select import extract as _extract

        return _extract(self, rows=rows, cols=cols)

    def select_values(self, predicate) -> "Matrix":
        from repro.sparse.select import select_values as _sv

        return _sv(self, predicate)

    def triu(self, k: int = 0) -> "Matrix":
        from repro.sparse.select import triu as _triu

        return _triu(self, k=k)

    def tril(self, k: int = 0) -> "Matrix":
        from repro.sparse.select import tril as _tril

        return _tril(self, k=k)

    def diag(self) -> np.ndarray:
        from repro.sparse.select import diag as _diag

        return _diag(self)

    def offdiag(self) -> "Matrix":
        from repro.sparse.select import offdiag as _od

        return _od(self)

    # -- operator sugar (arithmetic semiring) --------------------------------

    def __matmul__(self, other):
        if isinstance(other, Matrix):
            return self.mxm(other)
        return self.mxv(other)

    def __add__(self, other: "Matrix") -> "Matrix":
        return self.ewise_add(other)

    def __sub__(self, other: "Matrix") -> "Matrix":
        # a - b over the union support: negate b, then union-add.
        from repro.semiring import AINV

        return self.ewise_add(other.apply(AINV))

    def __mul__(self, other):
        if isinstance(other, Matrix):
            return self.ewise_mult(other)
        return self.scale(other)

    def __rmul__(self, scalar):
        return self.scale(scalar)

    # -- comparison / repr ----------------------------------------------------

    def equal(self, other: "Matrix", rtol: float = 0.0, atol: float = 0.0) -> bool:
        """Structural + value equality (optionally with tolerance)."""
        if not isinstance(other, Matrix) or self.shape != other.shape:
            return False
        a, b = self.prune(), other.prune()
        if a.nnz != b.nnz:
            return False
        if not (np.array_equal(a.indptr, b.indptr)
                and np.array_equal(a.indices, b.indices)):
            return False
        if rtol == 0.0 and atol == 0.0:
            return bool(np.array_equal(a.values, b.values))
        return bool(np.allclose(a.values, b.values, rtol=rtol, atol=atol))

    def __repr__(self) -> str:
        return (f"Matrix(shape=({self.nrows}, {self.ncols}), nnz={self.nnz}, "
                f"dtype={self.dtype})")
