"""Matrix exchange I/O: numeric-triple TSV and MatrixMarket coordinate.

Complements :mod:`repro.assoc.io` (string-keyed triples) with the two
formats graph-processing pipelines actually trade in: 0-indexed
``i<TAB>j<TAB>v`` TSV and 1-indexed MatrixMarket ``%%MatrixMarket
matrix coordinate real general`` files.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.semiring import Monoid
from repro.sparse.construct import from_coo
from repro.sparse.matrix import Matrix


def write_tsv_matrix(m: Matrix, path: str) -> int:
    """Write 0-indexed ``i<TAB>j<TAB>v`` lines; returns entries written."""
    rows, cols, vals = m.to_coo()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# shape {m.nrows} {m.ncols}\n")
        for i, j, v in zip(rows, cols, vals):
            fh.write(f"{i}\t{j}\t{v}\n")
    return m.nnz


def read_tsv_matrix(path: str, dup: Optional[Monoid] = None) -> Matrix:
    """Read a matrix written by :func:`write_tsv_matrix`.

    The ``# shape R C`` header is required (it preserves empty trailing
    rows/columns that triples alone cannot represent).
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    rows, cols, vals = [], [], []
    shape = None
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 3 and parts[0] == "shape":
                    shape = (int(parts[1]), int(parts[2]))
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{lineno}: expected 3 tab-separated fields")
            rows.append(int(parts[0]))
            cols.append(int(parts[1]))
            vals.append(float(parts[2]))
    if shape is None:
        raise ValueError(f"{path}: missing '# shape R C' header")
    return from_coo(shape[0], shape[1], np.asarray(rows, dtype=np.intp),
                    np.asarray(cols, dtype=np.intp), np.asarray(vals),
                    dup=dup)


def write_matrix_market(m: Matrix, path: str, comment: str = "") -> int:
    """Write MatrixMarket coordinate format (1-indexed, real, general)."""
    rows, cols, vals = m.to_coo()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        fh.write(f"{m.nrows} {m.ncols} {m.nnz}\n")
        for i, j, v in zip(rows, cols, vals):
            fh.write(f"{i + 1} {j + 1} {v}\n")
    return m.nnz


def read_matrix_market(path: str, dup: Optional[Monoid] = None) -> Matrix:
    """Read a MatrixMarket coordinate file (real or integer, general)."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: not a MatrixMarket file")
        fields = header.lower().split()
        if "coordinate" not in fields:
            raise ValueError(f"{path}: only coordinate format is supported")
        if not ({"real", "integer"} & set(fields)):
            raise ValueError(f"{path}: only real/integer values supported")
        if "general" not in fields:
            raise ValueError(f"{path}: only 'general' symmetry supported")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        nrows, ncols, nnz = map(int, line.split())
        rows = np.empty(nnz, dtype=np.intp)
        cols = np.empty(nnz, dtype=np.intp)
        vals = np.empty(nnz, dtype=np.float64)
        for k in range(nnz):
            parts = fh.readline().split()
            if len(parts) != 3:
                raise ValueError(f"{path}: truncated at entry {k + 1}/{nnz}")
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            vals[k] = float(parts[2])
    return from_coo(nrows, ncols, rows, cols, vals, dup=dup)
