"""Semiring-generic sparse linear algebra: the GraphBLAS kernel substrate.

Implements the kernel set the paper builds on (Section I):

================  =============================================
GraphBLAS kernel  Here
================  =============================================
SpGEMM            :func:`repro.sparse.spgemm.mxm`
SpM{Sp}V          :func:`repro.sparse.spmv.mxv` / ``mxv_sparse``
SpEWiseX          :func:`repro.sparse.ewise.ewise_mult`
(SpEWiseAdd)      :func:`repro.sparse.ewise.ewise_add`
SpRef             :func:`repro.sparse.select.extract`
SpAsgn            :func:`repro.sparse.select.assign`
Scale             :func:`repro.sparse.apply.scale`
Apply             :func:`repro.sparse.apply.apply`
Reduce            :func:`repro.sparse.reduce.reduce_rows` et al.
================  =============================================

Matrices are CSR with canonically sorted, duplicate-free indices; all
kernels are parameterised by :class:`repro.semiring.Semiring` (or a
monoid / binary op where that is the natural signature) and implemented
with vectorised NumPy — no per-entry Python loops.
"""

from repro.sparse.matrix import Matrix
from repro.sparse.vector import Vector
from repro.sparse.construct import (
    diag_matrix,
    from_coo,
    from_dense,
    from_edges,
    identity,
    zeros,
)
from repro.sparse.spgemm import (
    DEFAULT_EXPANSION_BUDGET,
    STRATEGIES,
    mxm,
    plan_tiles,
    predict_row_flops,
    set_expansion_probe,
)
from repro.sparse.spmv import mxd, mxv, mxv_sparse, vxm
from repro.sparse.ewise import ewise_add, ewise_mult
from repro.sparse.select import (
    assign,
    diag,
    extract,
    offdiag,
    select_values,
    tril,
    triu,
)
from repro.sparse.apply import apply, prune, scale
from repro.sparse.reduce import reduce_cols, reduce_rows, reduce_scalar
from repro.sparse.kron import kron
from repro.sparse.symmetric import mxm_triu, symmetric_square_upper
from repro.sparse.blocked import blocked_mxm, row_blocks, vstack
from repro.sparse.io import (
    read_matrix_market,
    read_tsv_matrix,
    write_matrix_market,
    write_tsv_matrix,
)

__all__ = [
    "Matrix",
    "Vector",
    "diag_matrix",
    "from_coo",
    "from_dense",
    "from_edges",
    "identity",
    "zeros",
    "mxm",
    "DEFAULT_EXPANSION_BUDGET",
    "STRATEGIES",
    "plan_tiles",
    "predict_row_flops",
    "set_expansion_probe",
    "mxd",
    "mxv",
    "mxv_sparse",
    "vxm",
    "ewise_add",
    "ewise_mult",
    "assign",
    "diag",
    "extract",
    "offdiag",
    "select_values",
    "tril",
    "triu",
    "apply",
    "prune",
    "scale",
    "reduce_cols",
    "reduce_rows",
    "reduce_scalar",
    "kron",
    "mxm_triu",
    "symmetric_square_upper",
    "read_matrix_market",
    "read_tsv_matrix",
    "write_matrix_market",
    "write_tsv_matrix",
    "blocked_mxm",
    "row_blocks",
    "vstack",
]
