"""SpMV / SpMSpV: semiring matrix–vector multiply.

``mxv`` takes a dense NumPy vector and returns a dense vector (rows with
no stored entries get the semiring zero).  ``mxv_sparse`` is the
SpM{Sp}V variant: a sparse frontier in, a sparse result out, touching
only matrix entries whose column is in the frontier — the operation BFS
and Bellman–Ford iterate (paper §III-A's centrality loops use the dense
form).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.obs import trace as _trace
from repro.semiring import Semiring
from repro.semiring.builtin import PLUS_TIMES
from repro.sparse.matrix import Matrix
from repro.sparse.vector import Vector


def mxv(a: Matrix, x, semiring: Optional[Semiring] = None) -> np.ndarray:
    """Dense ``y = A ⊕.⊗ x``; ``y[i] = ⊕_t A(i,t) ⊗ x[t]``.

    Implicit entries of ``A`` act as the semiring zero (annihilator), so
    only stored entries contribute.
    """
    semiring = semiring or PLUS_TIMES
    x = np.asarray(x)
    if x.shape != (a.ncols,):
        raise ValueError(f"x has shape {x.shape}, expected ({a.ncols},)")
    if _trace.ENABLED:
        with _trace.span("kernel.spmv", rows=a.nrows, cols=a.ncols,
                         nnz=a.nnz, semiring=semiring.name):
            return _mxv(a, x, semiring)
    return _mxv(a, x, semiring)


def _mxv(a: Matrix, x: np.ndarray, semiring: Semiring) -> np.ndarray:
    products = np.asarray(semiring.mul(a.values, x[a.indices]))
    out_dtype = products.dtype if products.size else np.result_type(a.dtype, x.dtype)
    y = np.full(a.nrows, semiring.zero, dtype=np.result_type(out_dtype,
                                                             type(semiring.zero)))
    if products.size == 0:
        return y
    lens = a.row_lengths
    nonempty = np.flatnonzero(lens)
    starts = a.indptr[nonempty]
    y[nonempty] = semiring.add.reduceat(products, starts)
    return y


def vxm(x, a: Matrix, semiring: Optional[Semiring] = None) -> np.ndarray:
    """Dense row-vector multiply ``y = x ⊕.⊗ A`` (≡ ``Aᵀ ⊕.⊗ x``).

    Computed without materialising the transpose: scatter-reduce the
    per-entry products into columns.  Requires the add monoid to carry a
    true ufunc (all built-ins do).
    """
    semiring = semiring or PLUS_TIMES
    x = np.asarray(x)
    if x.shape != (a.nrows,):
        raise ValueError(f"x has shape {x.shape}, expected ({a.nrows},)")
    if _trace.ENABLED:
        with _trace.span("kernel.vxm", rows=a.nrows, cols=a.ncols,
                         nnz=a.nnz, semiring=semiring.name):
            return _vxm(x, a, semiring)
    return _vxm(x, a, semiring)


def _vxm(x: np.ndarray, a: Matrix, semiring: Semiring) -> np.ndarray:
    products = np.asarray(semiring.mul(x[a.row_ids()], a.values))
    out_dtype = products.dtype if products.size else np.result_type(a.dtype, x.dtype)
    y = np.full(a.ncols, semiring.zero, dtype=np.result_type(out_dtype,
                                                             type(semiring.zero)))
    if products.size == 0:
        return y
    if semiring.add.ufunc is None:
        raise TypeError(f"monoid {semiring.add.name} has no ufunc for scatter")
    semiring.add.ufunc.at(y, a.indices, products)
    return y


def mxd(a: Matrix, d: np.ndarray) -> np.ndarray:
    """Sparse × dense-matrix product ``A @ D`` (arithmetic semiring).

    One SpMV per column, batched: the per-entry products form an
    ``(nnz, k)`` block reduced row-wise with one ``reduceat``.  Used by
    NMF, where ``A`` is the big sparse term matrix and ``D`` a thin
    dense factor.
    """
    d = np.asarray(d, dtype=np.float64)
    if d.ndim != 2 or d.shape[0] != a.ncols:
        raise ValueError(f"D has shape {d.shape}, expected ({a.ncols}, k)")
    out = np.zeros((a.nrows, d.shape[1]))
    if a.nnz == 0:
        return out
    products = a.values[:, None] * d[a.indices, :]
    lens = a.row_lengths
    nonempty = np.flatnonzero(lens)
    out[nonempty, :] = np.add.reduceat(products, a.indptr[nonempty], axis=0)
    return out


def mxv_sparse(a: Matrix, x: Vector, semiring: Optional[Semiring] = None) -> Vector:
    """SpMSpV: sparse ``y = A ⊕.⊗ x`` touching only active columns.

    Pull-style: stored entries of ``A`` whose column lies in ``x``'s
    support are selected with a sorted-membership test, multiplied, and
    reduced by output row.  Cost is O(nnz(A) · log nnz(x)) worst case but
    proportional to the frontier work for the CSR rows actually hit.
    """
    semiring = semiring or PLUS_TIMES
    if not isinstance(x, Vector):
        raise TypeError(f"x must be a Vector, got {type(x).__name__}")
    if x.n != a.ncols:
        raise ValueError(f"x has length {x.n}, expected {a.ncols}")
    if _trace.ENABLED:
        with _trace.span("kernel.spmspv", rows=a.nrows, cols=a.ncols,
                         nnz=a.nnz, frontier=x.nnz,
                         semiring=semiring.name) as sp:
            y = _mxv_sparse(a, x, semiring)
            sp.set(nnz_out=y.nnz)
            return y
    return _mxv_sparse(a, x, semiring)


def _mxv_sparse(a: Matrix, x: Vector, semiring: Semiring) -> Vector:
    if x.nnz == 0 or a.nnz == 0:
        return Vector(a.nrows, np.empty(0, dtype=np.intp),
                      np.empty(0, dtype=a.dtype), _validate=False)
    # membership of each stored column index in the frontier support
    pos = np.searchsorted(x.indices, a.indices)
    pos_c = np.minimum(pos, x.nnz - 1)
    hit = x.indices[pos_c] == a.indices
    if not hit.any():
        return Vector(a.nrows, np.empty(0, dtype=np.intp),
                      np.empty(0, dtype=a.dtype), _validate=False)
    rows = a.row_ids()[hit]
    products = np.asarray(semiring.mul(a.values[hit], x.values[pos_c[hit]]))
    # rows are already sorted (CSR row-major order is preserved by masking)
    starts = np.flatnonzero(np.r_[True, np.diff(rows) != 0])
    out_idx = rows[starts]
    out_val = semiring.add.reduceat(products, starts)
    return Vector(a.nrows, out_idx, out_val, _validate=False)
