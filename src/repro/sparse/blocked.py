"""Block-partitioned SpGEMM — the tablet-parallel execution shape.

Accumulo splits a table into tablets by row range; Graphulo's server-
side multiply runs per tablet.  :func:`blocked_mxm` mirrors that on a
matrix: partition A's rows into blocks, multiply each block against B
independently (optionally across a process pool), and stack the
results.  Output is bit-identical to :func:`repro.sparse.spgemm.mxm`
because SpGEMM is row-independent in A.

With ``workers > 1`` the shared operand B is handed to the pool through
``multiprocessing.shared_memory``: its CSR arrays are published once
and every worker attaches zero-copy views, so per-task pickling cost is
just the (small) A block.  Set ``share_b=False`` to fall back to
pickling B with every task (e.g. when a platform lacks POSIX shared
memory).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.obs import trace as _trace
from repro.semiring import Semiring
from repro.sparse.matrix import Matrix
from repro.sparse.spgemm import mxm
from repro.util.timing import Timer
from repro.util.validation import check_positive


def row_blocks(a: Matrix, n_blocks: int) -> List[Matrix]:
    """Split A into ≤ ``n_blocks`` contiguous row-range sub-matrices
    (the matrix analogue of tablet split points)."""
    check_positive(n_blocks, "n_blocks")
    n_blocks = min(n_blocks, max(a.nrows, 1))
    bounds = np.linspace(0, a.nrows, n_blocks + 1).astype(int)
    out = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi <= lo:
            continue
        indptr = a.indptr[lo:hi + 1] - a.indptr[lo]
        s, e = a.indptr[lo], a.indptr[hi]
        out.append(Matrix(hi - lo, a.ncols, indptr, a.indices[s:e],
                          a.values[s:e], _validate=False))
    return out


def vstack(blocks: List[Matrix]) -> Matrix:
    """Stack row-block matrices back into one (inverse of row_blocks)."""
    if not blocks:
        raise ValueError("need at least one block")
    ncols = blocks[0].ncols
    if any(b.ncols != ncols for b in blocks):
        raise ValueError("blocks must share a column count")
    indptr = [np.zeros(1, dtype=np.intp)]
    offset = 0
    for b in blocks:
        indptr.append(b.indptr[1:] + offset)
        offset += b.nnz
    return Matrix(sum(b.nrows for b in blocks), ncols,
                  np.concatenate(indptr),
                  np.concatenate([b.indices for b in blocks]),
                  np.concatenate([b.values for b in blocks]),
                  _validate=False)


def _mxm_block(block: Matrix, b: Matrix, semiring_name: Optional[str],
               strategy: str = "auto",
               expansion_budget: Optional[int] = None) -> Matrix:
    """Pool worker: multiply one row block against a pickled B."""
    from repro.semiring import get_semiring

    sr = get_semiring(semiring_name) if semiring_name else None
    return mxm(block, b, semiring=sr, strategy=strategy,
               expansion_budget=expansion_budget)


def _mxm_block_shm(block: Matrix, b_shape, b_meta,
                   semiring_name: Optional[str], strategy: str,
                   expansion_budget: Optional[int]) -> Matrix:
    """Pool worker: multiply one row block against a shared-memory B.

    Attaches zero-copy views onto B's published CSR arrays; every array
    of the result is freshly allocated by the kernel, so the views can
    be detached before returning.
    """
    from repro.parallel.pool import attach_arrays
    from repro.semiring import get_semiring

    arrays, handles = attach_arrays(b_meta)
    try:
        b = Matrix(b_shape[0], b_shape[1], arrays["indptr"],
                   arrays["indices"], arrays["values"], _validate=False)
        sr = get_semiring(semiring_name) if semiring_name else None
        return mxm(block, b, semiring=sr, strategy=strategy,
                   expansion_budget=expansion_budget)
    finally:
        for shm in handles:
            shm.close()


def blocked_mxm(a: Matrix, b: Matrix, n_blocks: int = 4, workers: int = 1,
                semiring: Optional[Semiring] = None, strategy: str = "auto",
                expansion_budget: Optional[int] = None,
                share_b: bool = True,
                timer: Optional[Timer] = None) -> Matrix:
    """``C = A ⊕.⊗ B`` computed block-row-wise, optionally in parallel.

    ``workers > 1`` fans blocks across a process pool (built-in
    semirings only — custom operator objects don't round-trip a process
    boundary); results equal :func:`repro.sparse.spgemm.mxm` exactly.
    By default B travels to the pool through shared memory (one publish,
    zero-copy attach per worker); ``share_b=False`` pickles B per task
    instead.  ``strategy`` / ``expansion_budget`` are forwarded to the
    per-block :func:`~repro.sparse.spgemm.mxm` engine, and ``timer``
    aggregates per-worker chunk timings via
    :func:`repro.parallel.pool.parallel_map`.
    """
    if _trace.ENABLED:
        with _trace.span("kernel.spgemm.blocked", rows=a.nrows,
                         cols=b.ncols, n_blocks=n_blocks, workers=workers,
                         shared_memory=bool(share_b and workers > 1),
                         strategy=strategy) as sp:
            c = _blocked_mxm(a, b, n_blocks, workers, semiring, strategy,
                             expansion_budget, share_b, timer)
            sp.set(nnz_out=c.nnz)
            return c
    return _blocked_mxm(a, b, n_blocks, workers, semiring, strategy,
                        expansion_budget, share_b, timer)


def _blocked_mxm(a: Matrix, b: Matrix, n_blocks: int, workers: int,
                 semiring: Optional[Semiring], strategy: str,
                 expansion_budget: Optional[int], share_b: bool,
                 timer: Optional[Timer]) -> Matrix:
    from repro.parallel.pool import parallel_map, share_arrays, unlink_arrays

    if workers > 1 and semiring is not None:
        from repro.semiring.builtin import _REGISTRY

        if semiring.name not in _REGISTRY:
            raise ValueError(
                "parallel blocked_mxm supports built-in semirings only")
    sr_name = semiring.name if semiring is not None else None
    blocks = row_blocks(a, n_blocks)
    if workers == 1 or len(blocks) <= 1:
        results = [mxm(blk, b, semiring=semiring, strategy=strategy,
                       expansion_budget=expansion_budget) for blk in blocks]
    elif share_b:
        handles, meta = share_arrays({"indptr": b.indptr,
                                      "indices": b.indices,
                                      "values": b.values})
        try:
            results = parallel_map(
                _mxm_block_shm,
                [(blk, b.shape, meta, sr_name, strategy, expansion_budget)
                 for blk in blocks],
                workers=workers, timer=timer)
        finally:
            unlink_arrays(handles)
    else:
        results = parallel_map(
            _mxm_block,
            [(blk, b, sr_name, strategy, expansion_budget)
             for blk in blocks],
            workers=workers, timer=timer)
    if not results:
        from repro.sparse.construct import zeros

        return zeros(a.nrows, b.ncols)
    return vstack(results)
