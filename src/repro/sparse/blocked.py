"""Block-partitioned SpGEMM — the tablet-parallel execution shape.

Accumulo splits a table into tablets by row range; Graphulo's server-
side multiply runs per tablet.  :func:`blocked_mxm` mirrors that on a
matrix: partition A's rows into blocks, multiply each block against B
independently (optionally across a process pool), and stack the
results.  Output is bit-identical to :func:`repro.sparse.spgemm.mxm`
because SpGEMM is row-independent in A.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.semiring import Semiring
from repro.sparse.matrix import Matrix
from repro.sparse.spgemm import mxm
from repro.util.validation import check_positive


def row_blocks(a: Matrix, n_blocks: int) -> List[Matrix]:
    """Split A into ≤ ``n_blocks`` contiguous row-range sub-matrices
    (the matrix analogue of tablet split points)."""
    check_positive(n_blocks, "n_blocks")
    n_blocks = min(n_blocks, max(a.nrows, 1))
    bounds = np.linspace(0, a.nrows, n_blocks + 1).astype(int)
    out = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi <= lo:
            continue
        indptr = a.indptr[lo:hi + 1] - a.indptr[lo]
        s, e = a.indptr[lo], a.indptr[hi]
        out.append(Matrix(hi - lo, a.ncols, indptr, a.indices[s:e],
                          a.values[s:e], _validate=False))
    return out


def vstack(blocks: List[Matrix]) -> Matrix:
    """Stack row-block matrices back into one (inverse of row_blocks)."""
    if not blocks:
        raise ValueError("need at least one block")
    ncols = blocks[0].ncols
    if any(b.ncols != ncols for b in blocks):
        raise ValueError("blocks must share a column count")
    indptr = [np.zeros(1, dtype=np.intp)]
    offset = 0
    for b in blocks:
        indptr.append(b.indptr[1:] + offset)
        offset += b.nnz
    return Matrix(sum(b.nrows for b in blocks), ncols,
                  np.concatenate(indptr),
                  np.concatenate([b.indices for b in blocks]),
                  np.concatenate([b.values for b in blocks]),
                  _validate=False)


def _mxm_block(block: Matrix, b: Matrix, semiring_name: Optional[str]) -> Matrix:
    from repro.semiring import get_semiring

    sr = get_semiring(semiring_name) if semiring_name else None
    return mxm(block, b, semiring=sr)


def blocked_mxm(a: Matrix, b: Matrix, n_blocks: int = 4, workers: int = 1,
                semiring: Optional[Semiring] = None) -> Matrix:
    """``C = A ⊕.⊗ B`` computed block-row-wise, optionally in parallel.

    ``workers > 1`` fans blocks across a process pool (built-in
    semirings only — custom operator objects don't round-trip a process
    boundary); results equal :func:`repro.sparse.spgemm.mxm` exactly.
    """
    from repro.parallel.pool import parallel_map

    if workers > 1 and semiring is not None:
        from repro.semiring.builtin import _REGISTRY

        if semiring.name not in _REGISTRY:
            raise ValueError(
                "parallel blocked_mxm supports built-in semirings only")
    sr_name = semiring.name if semiring is not None else None
    blocks = row_blocks(a, n_blocks)
    if workers == 1:
        results = [mxm(blk, b, semiring=semiring) for blk in blocks]
    else:
        results = parallel_map(_mxm_block, [(blk, b, sr_name)
                                            for blk in blocks],
                               workers=workers)
    if not results:
        from repro.sparse.construct import zeros

        return zeros(a.nrows, b.ncols)
    return vstack(results)
