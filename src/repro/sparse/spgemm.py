"""SpGEMM: adaptive, memory-bounded semiring sparse matrix–matrix multiply.

Four execution strategies, one bit-identical result:

* ``"esc"`` — the original monolithic expand-sort-compress path: every
  multiplication ``A(i,t) ⊗ B(t,j)`` that Gustavson's algorithm would
  perform is materialised as one COO product entry (grouped-arange
  gather, no Python loop), then lexsorted by ``(i, j)`` and folded with
  the semiring's ⊕ monoid via ``ufunc.reduceat``.  Peak memory is
  O(flops).
* ``"tiled"`` — rows of A are split into contiguous tiles whose exact
  predicted flop count (:func:`predict_row_flops`, O(nnz(A))) stays
  under ``expansion_budget``; ESC runs per tile and the CSR blocks are
  stitched.  Peak memory is O(budget) (single rows whose own flops
  exceed the budget get a tile of their own — the hard floor).
* ``"hash"`` — a fused-key Gustavson accumulation path for tiles whose
  predicted flops rival the tile's dense output size (dense-ish rows
  multiplying hub columns).  Products are binned by the flat key
  ``row * ncols + col`` with NumPy's stable integer sort (LSB radix —
  O(f) bucketing, no comparisons) and folded per key, replacing the
  two-pass comparison lexsort that dominates ESC on duplicate-heavy
  tiles.
* ``"auto"`` — plans tiles under the budget and picks ESC or hash per
  tile from the flops/density prediction.  This is the default.

All strategies produce byte-for-byte identical CSR (``indptr``,
``indices``, ``values``): tiles preserve the per-``(i, j)`` product
order (increasing inner index ``t``), every path folds duplicates with
the same ``⊕.reduceat`` over identically-ordered segments, and a stable
sort of the fused hash key reproduces ESC's lexsort stream exactly.

An optional structural ``mask`` restricts output to the mask's stored
pattern *before* the reduction, which is how Graphulo fuses filtering
into server-side multiplies.

When tracing is enabled the ``kernel.spgemm`` span records the chosen
strategy, tile count, per-strategy tile split and peak expansion size
(see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import trace as _trace
from repro.semiring import Semiring
from repro.semiring.builtin import PLUS_TIMES
from repro.sparse.construct import _coo_to_csr
from repro.sparse.matrix import Matrix

#: Strategy names accepted by :func:`mxm`.
STRATEGIES = ("auto", "esc", "hash", "tiled")

#: Default cap on materialised Gustavson products per tile (``auto`` /
#: ``tiled``).  2^22 products ≈ 130 MB of transient expansion arrays at
#: float64 — small enough to stay cache-friendly, large enough that
#: every matrix in the test/benchmark zoo fits in one tile.
DEFAULT_EXPANSION_BUDGET = 1 << 22

#: ``auto`` picks the hash path for a tile when
#: ``predicted_flops >= hash_ratio * tile_rows * ncols`` — i.e. the
#: dense accumulator is no larger than the expansion arrays we would
#: materialise anyway, so the choice is memory-neutral and saves the
#: O(f log f) sort.
DEFAULT_HASH_RATIO = 1.0

#: Test probe: a callable invoked with every tile's expansion size
#: (number of materialised products).  Install via
#: :func:`set_expansion_probe`; used by tests to assert the budget holds.
_EXPANSION_PROBE: Optional[Callable[[int], None]] = None


def set_expansion_probe(fn: Optional[Callable[[int], None]]):
    """Install ``fn`` as the expansion-size probe (``None`` clears it).

    Returns the previous probe so tests can restore it.
    """
    global _EXPANSION_PROBE
    previous, _EXPANSION_PROBE = _EXPANSION_PROBE, fn
    return previous


def _probe(size: int) -> None:
    if _EXPANSION_PROBE is not None:
        _EXPANSION_PROBE(int(size))


def grouped_arange(counts: np.ndarray, starts: Optional[np.ndarray] = None) -> np.ndarray:
    """Concatenate ``arange(starts[k], starts[k] + counts[k])`` for all k.

    The standard vectorised "ragged ranges" trick: one global arange with
    per-group offset corrections.  With ``starts=None`` groups start at 0.

    >>> grouped_arange(np.array([2, 0, 3]), np.array([5, 9, 1]))
    array([5, 6, 1, 2, 3])
    """
    counts = np.asarray(counts, dtype=np.intp)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    ends = np.cumsum(counts)
    group_starts_in_output = ends - counts
    out = np.arange(total, dtype=np.intp)
    out -= np.repeat(group_starts_in_output, counts)
    if starts is not None:
        out += np.repeat(np.asarray(starts, dtype=np.intp), counts)
    return out


def expand_products(a: Matrix, b: Matrix):
    """Materialise all Gustavson products as COO arrays.

    Returns ``(out_rows, out_cols, a_vals_expanded, b_vals_gathered)``
    so callers can choose the ⊗ operator (and SpMSpV can reuse this).
    """
    # For each stored A(i, t): how many entries does row t of B have?
    b_row_len = np.diff(b.indptr)
    counts = b_row_len[a.indices]
    out_rows = np.repeat(a.row_ids(), counts)
    gather = grouped_arange(counts, starts=b.indptr[a.indices])
    out_cols = b.indices[gather]
    a_expanded = np.repeat(a.values, counts)
    b_gathered = b.values[gather]
    return out_rows, out_cols, a_expanded, b_gathered


# -- flop prediction and tile planning ----------------------------------------

def predict_row_flops(a: Matrix, b: Matrix) -> np.ndarray:
    """Exact Gustavson multiply count per row of ``A @ B`` in O(nnz(A)).

    ``flops[i] = Σ_{t ∈ row i of A} nnz(B[t, :])`` — this is the exact
    size of the expansion the ESC path would materialise for row ``i``,
    not an estimate, so tile planning gives a hard memory cap.
    """
    counts = np.diff(b.indptr)[a.indices]
    prefix = np.concatenate((np.zeros(1, dtype=np.int64),
                             np.cumsum(counts, dtype=np.int64)))
    return prefix[a.indptr[1:]] - prefix[a.indptr[:-1]]


def plan_tiles(row_flops: np.ndarray, budget: int) -> List[Tuple[int, int]]:
    """Greedy contiguous row tiles whose flop sums stay ≤ ``budget``.

    Every tile holds at least one row, so a single row whose own flops
    exceed the budget becomes its own (over-budget) tile — the minimum
    granularity SpGEMM-by-rows admits.  Returns ``[(lo, hi), ...)``
    covering ``[0, nrows)``.
    """
    if budget < 1:
        raise ValueError(f"expansion budget must be >= 1, got {budget}")
    n = len(row_flops)
    if n == 0:
        return []
    prefix = np.concatenate((np.zeros(1, dtype=np.int64),
                             np.cumsum(row_flops, dtype=np.int64)))
    tiles: List[Tuple[int, int]] = []
    lo = 0
    while lo < n:
        # largest hi with prefix[hi] - prefix[lo] <= budget, but >= lo+1
        hi = int(np.searchsorted(prefix, prefix[lo] + budget, side="right")) - 1
        hi = min(max(hi, lo + 1), n)
        tiles.append((lo, hi))
        lo = hi
    return tiles


def _slice_rows(a: Matrix, lo: int, hi: int) -> Matrix:
    """Zero-copy row-range view ``A[lo:hi, :]`` (tile extraction)."""
    s, e = a.indptr[lo], a.indptr[hi]
    return Matrix(hi - lo, a.ncols, a.indptr[lo:hi + 1] - a.indptr[lo],
                  a.indices[s:e], a.values[s:e], _validate=False)


# -- the public kernel --------------------------------------------------------

def mxm(a: Matrix, b: Matrix, semiring: Optional[Semiring] = None,
        mask: Optional[Matrix] = None, strategy: str = "auto",
        expansion_budget: Optional[int] = None,
        hash_ratio: Optional[float] = None) -> Matrix:
    """``C = A ⊕.⊗ B`` (GraphBLAS SpGEMM).

    Parameters
    ----------
    semiring:
        Defaults to arithmetic plus-times.
    mask:
        Optional structural mask; only positions stored in ``mask`` are
        kept in the output (applied pre-reduction).
    strategy:
        ``"auto"`` (default) plans row tiles under the expansion budget
        and picks ESC or the hash accumulator per tile; ``"esc"``,
        ``"hash"`` and ``"tiled"`` force a single path.  All strategies
        return bit-identical CSR.
    expansion_budget:
        Cap on materialised products per tile for ``auto``/``tiled``
        (default :data:`DEFAULT_EXPANSION_BUDGET`).  Peak transient
        memory is O(budget) instead of O(flops), up to single-row
        granularity.
    hash_ratio:
        ``auto`` dispatch knob: hash when
        ``flops >= ratio * tile_rows * ncols``
        (default :data:`DEFAULT_HASH_RATIO`).
    """
    semiring = semiring or PLUS_TIMES
    if a.ncols != b.nrows:
        raise ValueError(
            f"dimension mismatch: A is {a.shape}, B is {b.shape}")
    if mask is not None and mask.shape != (a.nrows, b.ncols):
        raise ValueError(
            f"mask shape {mask.shape} != output shape {(a.nrows, b.ncols)}")
    if strategy not in STRATEGIES:
        raise ValueError(
            f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    budget = DEFAULT_EXPANSION_BUDGET if expansion_budget is None \
        else int(expansion_budget)
    ratio = DEFAULT_HASH_RATIO if hash_ratio is None else float(hash_ratio)
    if _trace.ENABLED:
        with _trace.span("kernel.spgemm", rows=a.nrows, inner=a.ncols,
                         cols=b.ncols, nnz_a=a.nnz, nnz_b=b.nnz,
                         semiring=semiring.name,
                         masked=mask is not None) as sp:
            c, info = _mxm_dispatch(a, b, semiring, mask, strategy, budget,
                                    ratio)
            sp.set(nnz_out=c.nnz, **info)
            return c
    c, _ = _mxm_dispatch(a, b, semiring, mask, strategy, budget, ratio)
    return c


def _mxm_dispatch(a: Matrix, b: Matrix, semiring: Semiring,
                  mask: Optional[Matrix], strategy: str, budget: int,
                  ratio: float) -> Tuple[Matrix, Dict[str, object]]:
    """Pick and run per-tile execution paths; returns (C, trace attrs)."""
    if mask is not None:
        _check_mask_key_range(mask)
    if strategy == "esc":
        flops = int(predict_row_flops(a, b).sum())
        _probe(flops)
        return _mxm_esc(a, b, semiring, mask), {
            "strategy": "esc", "n_tiles": 1, "peak_expansion": flops}
    if strategy == "hash":
        c = _hash_tile(a, 0, a.nrows, b, semiring, mask)
        return c, {"strategy": "hash", "n_tiles": 1,
                   "peak_expansion": int(predict_row_flops(a, b).sum())}

    row_flops = predict_row_flops(a, b)
    tiles = plan_tiles(row_flops, budget)
    if not tiles:
        return _mxm_esc(a, b, semiring, mask), {
            "strategy": strategy, "n_tiles": 0, "peak_expansion": 0,
            "expansion_budget": budget}
    prefix = np.concatenate((np.zeros(1, dtype=np.int64),
                             np.cumsum(row_flops, dtype=np.int64)))
    tile_flops = [int(prefix[hi] - prefix[lo]) for lo, hi in tiles]
    peak = max(tile_flops)

    if strategy == "tiled":
        choices = ["esc"] * len(tiles)
    else:  # auto: per-tile regime dispatch
        choices = []
        for (lo, hi), f in zip(tiles, tile_flops):
            dense_size = (hi - lo) * b.ncols
            hash_ok = (f > 0 and dense_size > 0
                       and dense_size - 1 <= np.iinfo(np.intp).max
                       and f >= ratio * dense_size)
            choices.append("hash" if hash_ok else "esc")

    if len(tiles) == 1 and choices[0] == "esc":
        # single-tile fast path: identical to the monolithic kernel
        _probe(tile_flops[0])
        return _mxm_esc(a, b, semiring, mask), {
            "strategy": strategy, "n_tiles": 1, "tiles_esc": 1,
            "tiles_hash": 0, "peak_expansion": peak,
            "expansion_budget": budget}

    parts: List[Matrix] = []
    for (lo, hi), choice in zip(tiles, choices):
        if choice == "hash":
            parts.append(_hash_tile(a, lo, hi, b, semiring, mask))
        else:
            parts.append(_esc_tile(a, lo, hi, b, semiring, mask))
    c = _stack_tiles(a.nrows, b.ncols, a.dtype, b.dtype, tiles, parts)
    return c, {"strategy": strategy, "n_tiles": len(tiles),
               "tiles_esc": choices.count("esc"),
               "tiles_hash": choices.count("hash"),
               "peak_expansion": peak, "expansion_budget": budget}


# -- execution paths ----------------------------------------------------------

def _mxm_esc(a: Matrix, b: Matrix, semiring: Semiring,
             mask: Optional[Matrix]) -> Matrix:
    """Monolithic expand-sort-compress (the original kernel)."""
    out_rows, out_cols, av, bv = expand_products(a, b)
    if out_rows.size == 0:
        return _coo_to_csr(a.nrows, b.ncols, out_rows, out_cols,
                           np.empty(0, dtype=np.result_type(a.dtype, b.dtype)),
                           semiring.add)
    products = np.asarray(semiring.mul(av, bv))

    if mask is not None:
        keep = _mask_filter(mask, out_rows, out_cols)
        out_rows, out_cols, products = out_rows[keep], out_cols[keep], products[keep]

    return _coo_to_csr(a.nrows, b.ncols, out_rows, out_cols, products,
                       semiring.add)


def _esc_tile(a: Matrix, lo: int, hi: int, b: Matrix, semiring: Semiring,
              mask: Optional[Matrix]) -> Matrix:
    """ESC on the row tile ``A[lo:hi]`` → tile-local CSR block."""
    tile = _slice_rows(a, lo, hi)
    out_rows, out_cols, av, bv = expand_products(tile, b)
    _probe(out_rows.size)
    if out_rows.size == 0:
        return _coo_to_csr(tile.nrows, b.ncols, out_rows, out_cols,
                           np.empty(0, dtype=np.result_type(a.dtype, b.dtype)),
                           semiring.add)
    products = np.asarray(semiring.mul(av, bv))
    if mask is not None:
        keep = _mask_filter(mask, out_rows + lo, out_cols)
        out_rows, out_cols, products = out_rows[keep], out_cols[keep], products[keep]
    return _coo_to_csr(tile.nrows, b.ncols, out_rows, out_cols, products,
                       semiring.add)


def _hash_tile(a: Matrix, lo: int, hi: int, b: Matrix, semiring: Semiring,
               mask: Optional[Matrix]) -> Matrix:
    """Fused-key Gustavson accumulation for the row tile ``A[lo:hi]``.

    Products are binned by the flat key ``row * ncols + col`` with a
    *stable integer argsort* — NumPy's LSB radix sort for integer keys,
    O(f) bucket binning rather than the two-pass comparison lexsort of
    ESC — then folded per key with the same ``⊕.reduceat``.  A stable
    sort of the fused key yields exactly the ``(row, col, position)``
    stream ESC's ``lexsort((cols, rows))`` produces, so segment
    contents, fold order, and hence every output bit are identical;
    sorted flat keys are already canonical CSR, so rows/cols/indptr
    fall out with two integer divisions and a bincount.

    Wins in the duplicate-heavy regime (predicted flops ≳ the tile's
    dense output size: dense-ish rows of A hitting hub columns of B),
    where the per-product constant of the sort dominates ESC.
    """
    tile = _slice_rows(a, lo, hi)
    ncols = b.ncols
    if tile.nrows and ncols and tile.nrows * ncols - 1 > np.iinfo(np.intp).max:
        raise ValueError(
            f"hash strategy cannot fuse keys for a {tile.nrows} x {ncols} "
            "tile: the flat index space overflows; use strategy='tiled' "
            "(or a smaller expansion budget) instead")
    out_rows, out_cols, av, bv = expand_products(tile, b)
    _probe(out_rows.size)
    if out_rows.size == 0:
        return _coo_to_csr(tile.nrows, ncols, out_rows, out_cols,
                           np.empty(0, dtype=np.result_type(a.dtype, b.dtype)),
                           semiring.add)
    products = np.asarray(semiring.mul(av, bv))
    if mask is not None:
        keep = _mask_filter(mask, out_rows + lo, out_cols)
        out_rows, out_cols, products = out_rows[keep], out_cols[keep], products[keep]
        if out_rows.size == 0:
            return _coo_to_csr(tile.nrows, ncols, out_rows, out_cols,
                               products, semiring.add)

    key = out_rows * ncols + out_cols
    order = np.argsort(key, kind="stable")          # radix bin, not lexsort
    key = key[order]
    vals = products[order]
    seg_start = np.r_[True, np.diff(key) != 0]
    starts = np.flatnonzero(seg_start)
    uniq = key[starts]
    if len(starts) == len(vals):
        out_vals = vals                 # no duplicates: skip the reduce
    else:
        out_vals = semiring.add.reduceat(vals, starts)

    local_rows = uniq // ncols
    indptr = np.zeros(tile.nrows + 1, dtype=np.intp)
    np.cumsum(np.bincount(local_rows, minlength=tile.nrows), out=indptr[1:])
    return Matrix(tile.nrows, ncols, indptr, uniq % ncols, out_vals,
                  _validate=False)


def _stack_tiles(nrows: int, ncols: int, a_dtype, b_dtype,
                 tiles: List[Tuple[int, int]],
                 parts: List[Matrix]) -> Matrix:
    """Stitch contiguous tile CSR blocks into the full output matrix.

    Zero-nnz tiles are skipped when concatenating values so an empty
    tile's placeholder dtype never promotes the result dtype.
    """
    indptr_parts = [np.zeros(1, dtype=np.intp)]
    offset = 0
    for part in parts:
        indptr_parts.append(part.indptr[1:] + offset)
        offset += part.nnz
    live = [p for p in parts if p.nnz]
    if live:
        indices = np.concatenate([p.indices for p in live])
        values = np.concatenate([p.values for p in live])
    else:
        indices = np.empty(0, dtype=np.intp)
        values = np.empty(0, dtype=np.result_type(a_dtype, b_dtype))
    return Matrix(nrows, ncols, np.concatenate(indptr_parts), indices, values,
                  _validate=False)


# -- masking ------------------------------------------------------------------

def _check_mask_key_range(mask: Matrix) -> None:
    """Reject masks whose flat ``row * ncols + col`` key would overflow
    int64 — a silent wraparound would drop/keep the wrong entries."""
    if mask.nrows and mask.ncols \
            and mask.nrows * mask.ncols - 1 > np.iinfo(np.int64).max:
        raise ValueError(
            f"mask of shape {mask.shape} cannot be key-encoded: "
            f"nrows * ncols = {mask.nrows * mask.ncols} exceeds the int64 "
            "flat-index range")


def _mask_filter(mask: Matrix, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Boolean keep-array: which (rows, cols) positions are stored in mask.

    Relies on the :class:`Matrix` canonical-CSR invariant: the mask's
    ``(row, col)`` keys are row-major sorted with no duplicates, so the
    flat keys ``row * ncols + col`` are strictly increasing and a single
    ``searchsorted`` decides membership — no pre-sort is ever needed.
    Callers must run :func:`_check_mask_key_range` first (the flat
    encoding overflows int64 for pathologically wide masks).
    """
    key = rows.astype(np.int64) * mask.ncols + cols
    mkey = mask.row_ids().astype(np.int64) * mask.ncols + mask.indices
    if len(mkey) == 0:
        return np.zeros(len(key), dtype=bool)
    pos = np.minimum(np.searchsorted(mkey, key), len(mkey) - 1)
    return mkey[pos] == key


def mxm_dense_reference(a: Matrix, b: Matrix,
                        semiring: Optional[Semiring] = None) -> np.ndarray:
    """O(n³) dense semiring multiply — the test oracle for :func:`mxm`.

    Kept in the library (not tests) because benchmarks also use it as
    the naive baseline.
    """
    semiring = semiring or PLUS_TIMES
    zero = semiring.zero
    ad = a.to_dense(fill=zero)
    bd = b.to_dense(fill=zero)
    m, k = ad.shape
    k2, n = bd.shape
    if k != k2:
        raise ValueError(f"dimension mismatch: {ad.shape} @ {bd.shape}")
    out = np.full((m, n), zero, dtype=np.result_type(ad, bd))
    for t in range(k):  # single Python loop over the shared dimension
        # outer "product" of A[:, t] and B[t, :] under ⊗, folded with ⊕
        contrib = np.asarray(semiring.mul(ad[:, t][:, None], bd[t, :][None, :]))
        out = np.asarray(semiring.add(out, contrib))
    return out
