"""SpGEMM: semiring sparse matrix–matrix multiply.

Strategy (vectorised expansion, a.k.a. "ESC" — expand, sort, compress):

1. **Expand** — every multiplication ``A(i,t) ⊗ B(t,j)`` that Gustavson's
   algorithm would perform is materialised as one COO product entry.
   For each stored entry of ``A`` we gather the whole corresponding row
   of ``B`` using a grouped-arange (no Python loop).
2. **Sort/compress** — products are lexsorted by ``(i, j)`` and folded
   with the semiring's ⊕ monoid via ``ufunc.reduceat``.

Peak memory is O(#multiplications); for the sparse graphs here that is
the same asymptotic cost a hash-based Gustavson pays in time, and the
constant factors are NumPy's, not CPython's.

An optional structural ``mask`` restricts output to the mask's stored
pattern *before* the sort/compress step, which is how Graphulo fuses
filtering into server-side multiplies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.obs import trace as _trace
from repro.semiring import Semiring
from repro.semiring.builtin import PLUS_TIMES
from repro.sparse.construct import _coo_to_csr
from repro.sparse.matrix import Matrix


def grouped_arange(counts: np.ndarray, starts: Optional[np.ndarray] = None) -> np.ndarray:
    """Concatenate ``arange(starts[k], starts[k] + counts[k])`` for all k.

    The standard vectorised "ragged ranges" trick: one global arange with
    per-group offset corrections.  With ``starts=None`` groups start at 0.

    >>> grouped_arange(np.array([2, 0, 3]), np.array([5, 9, 1]))
    array([5, 6, 1, 2, 3])
    """
    counts = np.asarray(counts, dtype=np.intp)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    ends = np.cumsum(counts)
    group_starts_in_output = ends - counts
    out = np.arange(total, dtype=np.intp)
    out -= np.repeat(group_starts_in_output, counts)
    if starts is not None:
        out += np.repeat(np.asarray(starts, dtype=np.intp), counts)
    return out


def expand_products(a: Matrix, b: Matrix):
    """Materialise all Gustavson products as COO arrays.

    Returns ``(out_rows, out_cols, a_vals_expanded, b_vals_gathered)``
    so callers can choose the ⊗ operator (and SpMSpV can reuse this).
    """
    # For each stored A(i, t): how many entries does row t of B have?
    b_row_len = np.diff(b.indptr)
    counts = b_row_len[a.indices]
    out_rows = np.repeat(a.row_ids(), counts)
    gather = grouped_arange(counts, starts=b.indptr[a.indices])
    out_cols = b.indices[gather]
    a_expanded = np.repeat(a.values, counts)
    b_gathered = b.values[gather]
    return out_rows, out_cols, a_expanded, b_gathered


def mxm(a: Matrix, b: Matrix, semiring: Optional[Semiring] = None,
        mask: Optional[Matrix] = None) -> Matrix:
    """``C = A ⊕.⊗ B`` (GraphBLAS SpGEMM).

    Parameters
    ----------
    semiring:
        Defaults to arithmetic plus-times.
    mask:
        Optional structural mask; only positions stored in ``mask`` are
        kept in the output (applied pre-reduction).
    """
    semiring = semiring or PLUS_TIMES
    if a.ncols != b.nrows:
        raise ValueError(
            f"dimension mismatch: A is {a.shape}, B is {b.shape}")
    if mask is not None and mask.shape != (a.nrows, b.ncols):
        raise ValueError(
            f"mask shape {mask.shape} != output shape {(a.nrows, b.ncols)}")
    if _trace.ENABLED:
        with _trace.span("kernel.spgemm", rows=a.nrows, inner=a.ncols,
                         cols=b.ncols, nnz_a=a.nnz, nnz_b=b.nnz,
                         semiring=semiring.name,
                         masked=mask is not None) as sp:
            c = _mxm(a, b, semiring, mask)
            sp.set(nnz_out=c.nnz)
            return c
    return _mxm(a, b, semiring, mask)


def _mxm(a: Matrix, b: Matrix, semiring: Semiring,
         mask: Optional[Matrix]) -> Matrix:
    out_rows, out_cols, av, bv = expand_products(a, b)
    if out_rows.size == 0:
        return _coo_to_csr(a.nrows, b.ncols, out_rows, out_cols,
                           np.empty(0, dtype=np.result_type(a.dtype, b.dtype)),
                           semiring.add)
    products = np.asarray(semiring.mul(av, bv))

    if mask is not None:
        keep = _mask_filter(mask, out_rows, out_cols)
        out_rows, out_cols, products = out_rows[keep], out_cols[keep], products[keep]

    return _coo_to_csr(a.nrows, b.ncols, out_rows, out_cols, products,
                       semiring.add)


def _mask_filter(mask: Matrix, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Boolean keep-array: which (rows, cols) positions are stored in mask."""
    # Encode (i, j) as a single int64 key; safe because indices < 2**31.
    key = rows.astype(np.int64) * mask.ncols + cols
    mkey = mask.row_ids().astype(np.int64) * mask.ncols + mask.indices
    # mask keys are already sorted (row-major CSR order)
    pos = np.searchsorted(mkey, key)
    pos_clipped = np.minimum(pos, len(mkey) - 1) if len(mkey) else pos
    if len(mkey) == 0:
        return np.zeros(len(key), dtype=bool)
    return mkey[pos_clipped] == key


def mxm_dense_reference(a: Matrix, b: Matrix,
                        semiring: Optional[Semiring] = None) -> np.ndarray:
    """O(n³) dense semiring multiply — the test oracle for :func:`mxm`.

    Kept in the library (not tests) because benchmarks also use it as
    the naive baseline.
    """
    semiring = semiring or PLUS_TIMES
    zero = semiring.zero
    ad = a.to_dense(fill=zero)
    bd = b.to_dense(fill=zero)
    m, k = ad.shape
    k2, n = bd.shape
    if k != k2:
        raise ValueError(f"dimension mismatch: {ad.shape} @ {bd.shape}")
    out = np.full((m, n), zero, dtype=np.result_type(ad, bd))
    for t in range(k):  # single Python loop over the shared dimension
        # outer "product" of A[:, t] and B[t, :] under ⊗, folded with ⊕
        contrib = np.asarray(semiring.mul(ad[:, t][:, None], bd[t, :][None, :]))
        out = np.asarray(semiring.add(out, contrib))
    return out
