"""SpRef / SpAsgn and structural selections (triu/tril/diag).

``extract``/``assign`` implement the GraphBLAS sub-matrix reference and
assignment kernels the paper lists; ``triu``/``tril`` provide the
MATLAB-style triangular extraction Algorithm 2 relies on, implemented —
as the paper suggests (§III-C) — as an Apply-style predicate on entry
coordinates.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.semiring.builtin import PLUS_MONOID
from repro.semiring.ops import Monoid
from repro.sparse.construct import _coo_to_csr
from repro.sparse.matrix import Matrix


def _normalise_index(sel, n: int, what: str) -> np.ndarray:
    if sel is None:
        return np.arange(n, dtype=np.intp)
    if isinstance(sel, slice):
        return np.arange(n, dtype=np.intp)[sel]
    sel = np.asarray(sel, dtype=np.intp)
    if sel.ndim != 1:
        raise ValueError(f"{what} selector must be 1-D")
    out = np.where(sel < 0, sel + n, sel)
    if len(out) and (out.min() < 0 or out.max() >= n):
        raise IndexError(f"{what} selector out of range for size {n}")
    return out


def extract(a: Matrix, rows=None, cols=None) -> Matrix:
    """SpRef: ``C = A(rows, cols)``.

    ``rows`` may repeat or permute (each selected row is copied in
    order); ``cols`` must be duplicate-free (a column *selection*).
    ``None`` or a slice selects everything.
    """
    rsel = _normalise_index(rows, a.nrows, "row")
    csel = _normalise_index(cols, a.ncols, "col")
    if len(np.unique(csel)) != len(csel):
        raise ValueError("duplicate column selectors are not supported")

    # Row gather: ragged copy of the selected rows, preserving order.
    lens = a.row_lengths[rsel]
    from repro.sparse.spgemm import grouped_arange

    src = grouped_arange(lens, starts=a.indptr[rsel])
    new_rows = np.repeat(np.arange(len(rsel), dtype=np.intp), lens)
    new_cols = a.indices[src]
    new_vals = a.values[src]

    # Column filter + relabel via a lookup table.
    lookup = np.full(a.ncols, -1, dtype=np.intp)
    lookup[csel] = np.arange(len(csel), dtype=np.intp)
    mapped = lookup[new_cols]
    keep = mapped >= 0
    return _coo_to_csr(len(rsel), len(csel), new_rows[keep], mapped[keep],
                       new_vals[keep], PLUS_MONOID)


def assign(c: Matrix, b: Matrix, rows=None, cols=None,
           dup: Optional[Monoid] = None) -> Matrix:
    """SpAsgn: return a new matrix equal to ``C`` with ``C(rows, cols) = B``.

    The addressed region is cleared first (GraphBLAS replace semantics),
    then ``B``'s entries are scattered in.  Row/col selectors must be
    duplicate-free.  ``dup`` only matters if selectors alias (disallowed),
    so it defaults to "second wins".
    """
    rsel = _normalise_index(rows, c.nrows, "row")
    csel = _normalise_index(cols, c.ncols, "col")
    if (len(np.unique(rsel)) != len(rsel)) or (len(np.unique(csel)) != len(csel)):
        raise ValueError("duplicate selectors are not supported in assign")
    if b.shape != (len(rsel), len(csel)):
        raise ValueError(
            f"B shape {b.shape} != selected region ({len(rsel)}, {len(csel)})")

    # Keep C entries outside the addressed rectangle.
    in_rows = np.zeros(c.nrows, dtype=bool)
    in_rows[rsel] = True
    in_cols = np.zeros(c.ncols, dtype=bool)
    in_cols[csel] = True
    crows = c.row_ids()
    keep = ~(in_rows[crows] & in_cols[c.indices])

    # Remap B entries into C coordinates.
    brows = rsel[b.row_ids()]
    bcols = csel[b.indices]

    rows_all = np.concatenate([crows[keep], brows])
    cols_all = np.concatenate([c.indices[keep], bcols])
    vals_all = np.concatenate([c.values[keep], b.values])
    # Region was cleared and selectors are unique, so no key collides;
    # the dup monoid is only exercised if a caller passes aliased input.
    return _coo_to_csr(c.nrows, c.ncols, rows_all, cols_all, vals_all,
                       dup or PLUS_MONOID)


def select_values(a: Matrix, predicate: Callable[[np.ndarray], np.ndarray]) -> Matrix:
    """Keep entries whose value satisfies ``predicate`` (vectorised).

    E.g. ``select_values(R, lambda v: v == 2)`` for the k-truss support
    pattern.
    """
    keep = np.asarray(predicate(a.values), dtype=bool)
    if keep.shape != a.values.shape:
        raise ValueError("predicate must return one bool per stored entry")
    rows = a.row_ids()[keep]
    indptr = np.zeros(a.nrows + 1, dtype=np.intp)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return Matrix(a.nrows, a.ncols, indptr, a.indices[keep], a.values[keep],
                  _validate=False)


def _select_coords(a: Matrix, keep: np.ndarray) -> Matrix:
    rows = a.row_ids()[keep]
    indptr = np.zeros(a.nrows + 1, dtype=np.intp)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return Matrix(a.nrows, a.ncols, indptr, a.indices[keep], a.values[keep],
                  _validate=False)


def triu(a: Matrix, k: int = 0) -> Matrix:
    """Upper-triangular part: keep entries with ``j - i >= k``.

    Matches MATLAB ``triu`` as used in Algorithm 2 (``k=1`` gives the
    *strictly* upper part ``U`` of ``A = L + U``).
    """
    return _select_coords(a, a.indices - a.row_ids() >= k)


def tril(a: Matrix, k: int = 0) -> Matrix:
    """Lower-triangular part: keep entries with ``j - i <= k``."""
    return _select_coords(a, a.indices - a.row_ids() <= k)


def diag(a: Matrix) -> np.ndarray:
    """Dense main diagonal of ``a`` (absent entries read as 0)."""
    n = min(a.nrows, a.ncols)
    out = np.zeros(n, dtype=a.dtype if a.nnz else np.float64)
    on = a.indices == a.row_ids()
    rows = a.row_ids()[on]
    out_idx = rows[rows < n]
    out[out_idx] = a.values[on][rows < n]
    return out


def offdiag(a: Matrix) -> Matrix:
    """``A − diag(A)``: drop main-diagonal entries.

    Used for the paper's ``A = EᵀE − diag(EᵀE)`` incidence→adjacency
    relation (§III-B).
    """
    return _select_coords(a, a.indices != a.row_ids())
