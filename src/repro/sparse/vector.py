"""Sparse vector container (for SpMSpV frontiers and reductions)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.semiring import Monoid
from repro.semiring.builtin import PLUS_MONOID


class Vector:
    """Sparse vector: sorted unique ``indices`` with aligned ``values``.

    BFS and Bellman–Ford keep their frontier / distance updates in this
    form so SpMSpV touches only the active part of the graph.
    """

    __slots__ = ("n", "indices", "values")

    def __init__(self, n: int, indices, values, _validate: bool = True):
        self.n = int(n)
        self.indices = np.asarray(indices, dtype=np.intp)
        self.values = np.asarray(values)
        if _validate:
            self._check_canonical()

    def _check_canonical(self) -> None:
        if self.n < 0:
            raise ValueError(f"negative length {self.n}")
        if self.indices.shape != self.values.shape or self.indices.ndim != 1:
            raise ValueError("indices/values must be aligned 1-D arrays")
        if len(self.indices):
            if self.indices.min() < 0 or self.indices.max() >= self.n:
                raise ValueError("index out of range")
            if np.any(np.diff(self.indices) <= 0):
                raise ValueError("indices must be strictly increasing")

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_coo(cls, n: int, indices, values, dup: Optional[Monoid] = None) -> "Vector":
        """Build from possibly unsorted/duplicated COO, combining dups with
        ``dup`` (default: plus monoid)."""
        dup = dup or PLUS_MONOID
        indices = np.asarray(indices, dtype=np.intp)
        values = np.asarray(values)
        if indices.size == 0:
            return cls(n, indices, values, _validate=True)
        order = np.argsort(indices, kind="stable")
        si, sv = indices[order], values[order]
        starts = np.flatnonzero(np.r_[True, np.diff(si) != 0])
        out_idx = si[starts]
        out_val = dup.reduceat(sv, starts)
        v = cls(n, out_idx, out_val, _validate=False)
        v._check_canonical()
        return v

    @classmethod
    def from_dense(cls, dense, zero=0.0) -> "Vector":
        """Sparsify a dense array, treating ``zero`` as absent."""
        dense = np.asarray(dense)
        if np.isnan(zero) if isinstance(zero, float) else False:  # pragma: no cover
            keep = ~np.isnan(dense)
        else:
            keep = dense != zero
        idx = np.flatnonzero(keep)
        return cls(len(dense), idx, dense[idx], _validate=False)

    @classmethod
    def sparse_ones(cls, n: int, indices, one=1.0) -> "Vector":
        indices = np.unique(np.asarray(indices, dtype=np.intp))
        return cls(n, indices, np.full(len(indices), one), _validate=True)

    # -- properties ------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return len(self.indices)

    @property
    def shape(self) -> Tuple[int]:
        return (self.n,)

    def to_dense(self, fill=0.0) -> np.ndarray:
        dtype = np.result_type(self.values.dtype, type(fill)) if self.nnz else np.float64
        out = np.full(self.n, fill, dtype=dtype)
        out[self.indices] = self.values
        return out

    def copy(self) -> "Vector":
        return Vector(self.n, self.indices.copy(), self.values.copy(),
                      _validate=False)

    def get(self, i: int, default=0.0):
        k = np.searchsorted(self.indices, i)
        if k < self.nnz and self.indices[k] == i:
            return self.values[k]
        return default

    # -- algebra -----------------------------------------------------------------

    def ewise_add(self, other: "Vector", op=None) -> "Vector":
        """Union combine (default plus)."""
        from repro.semiring.builtin import PLUS

        op = op or PLUS
        if self.n != other.n:
            raise ValueError(f"length mismatch {self.n} vs {other.n}")
        common, ia, ib = np.intersect1d(self.indices, other.indices,
                                        assume_unique=True, return_indices=True)
        only_a = np.setdiff1d(np.arange(self.nnz), ia, assume_unique=True)
        only_b = np.setdiff1d(np.arange(other.nnz), ib, assume_unique=True)
        idx = np.concatenate([common, self.indices[only_a], other.indices[only_b]])
        if len(common):
            both = op(self.values[ia], other.values[ib])
        else:
            both = self.values[:0]
        vals = np.concatenate([np.asarray(both),
                               self.values[only_a], other.values[only_b]])
        order = np.argsort(idx, kind="stable")
        return Vector(self.n, idx[order], vals[order], _validate=False)

    def ewise_mult(self, other: "Vector", op=None) -> "Vector":
        """Intersection combine (default times)."""
        from repro.semiring.builtin import TIMES

        op = op or TIMES
        if self.n != other.n:
            raise ValueError(f"length mismatch {self.n} vs {other.n}")
        common, ia, ib = np.intersect1d(self.indices, other.indices,
                                        assume_unique=True, return_indices=True)
        vals = np.asarray(op(self.values[ia], other.values[ib])) if len(common) \
            else self.values[:0]
        return Vector(self.n, common, vals, _validate=False)

    def reduce(self, monoid: Optional[Monoid] = None):
        monoid = monoid or PLUS_MONOID
        return monoid.reduce(self.values)

    def select_complement(self, universe_mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Indices NOT in this vector's support (dense complement)."""
        mask = np.ones(self.n, dtype=bool)
        mask[self.indices] = False
        if universe_mask is not None:
            mask &= universe_mask
        return np.flatnonzero(mask)

    def __repr__(self) -> str:
        return f"Vector(n={self.n}, nnz={self.nnz}, dtype={self.values.dtype})"
