"""Apply and Scale kernels (elementwise transforms of stored entries).

GraphBLAS ``Apply`` maps a unary function over every stored entry;
``Scale`` is SpEWiseX with a scalar (paper's kernel list).  Because the
function only sees *stored* entries, an op that sends the semiring zero
to itself preserves semantics — otherwise callers must prune afterwards
(helper provided).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.semiring import BinaryOp, UnaryOp
from repro.semiring.builtin import TIMES
from repro.sparse.matrix import Matrix


def apply(a: Matrix, op: UnaryOp) -> Matrix:
    """``C(i,j) = op(A(i,j))`` on the stored pattern of A."""
    if not isinstance(op, UnaryOp):
        raise TypeError(f"op must be a UnaryOp, got {type(op).__name__}")
    return a.with_values(np.asarray(op(a.values)))


def scale(a: Matrix, scalar, op: Optional[BinaryOp] = None) -> Matrix:
    """``C(i,j) = A(i,j) ⊗ scalar`` (GraphBLAS Scale; default ⊗=times)."""
    op = op or TIMES
    if a.nnz == 0:
        return a.copy()
    return a.with_values(np.asarray(op(a.values, scalar)))


def prune(a: Matrix, zero=0.0) -> Matrix:
    """Drop stored entries equal to ``zero`` (alias of ``Matrix.prune``)."""
    return a.prune(zero)
