"""Matrix constructors: COO/dense/edge-list ingestion, identity, diag.

``from_coo`` is the canonical entry point: it sorts, deduplicates (with
a configurable combining monoid — NoSQL ingest semantics, where writing
the same key twice combines under the table's combiner iterator), and
produces canonical CSR.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.semiring import Monoid
from repro.semiring.builtin import PLUS_MONOID
from repro.sparse.matrix import Matrix


def _coo_to_csr(nrows: int, ncols: int, rows: np.ndarray, cols: np.ndarray,
                vals: np.ndarray, dup: Monoid) -> Matrix:
    """Sort + deduplicate COO triples into canonical CSR.

    This is shared by every kernel that produces COO output (SpGEMM,
    eWiseAdd, assign), so it is written carefully: one lexsort, one
    segmented reduce.
    """
    if rows.size == 0:
        indptr = np.zeros(nrows + 1, dtype=np.intp)
        return Matrix(nrows, ncols, indptr, rows.astype(np.intp), vals,
                      _validate=False)
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    # new (row, col) key starts where either component changes
    new_key = np.r_[True, (np.diff(rows) != 0) | (np.diff(cols) != 0)]
    starts = np.flatnonzero(new_key)
    out_rows = rows[starts]
    out_cols = cols[starts]
    if len(starts) == len(vals):
        out_vals = vals  # no duplicates: skip the reduce entirely
    else:
        out_vals = dup.reduceat(vals, starts)
    # bincount + cumsum, not np.add.at: add.at's unbuffered fancy-index
    # loop is ~10x slower and this runs on every kernel's output path.
    indptr = np.zeros(nrows + 1, dtype=np.intp)
    np.cumsum(np.bincount(out_rows, minlength=nrows), out=indptr[1:])
    return Matrix(nrows, ncols, indptr, out_cols.astype(np.intp), out_vals,
                  _validate=False)


def from_coo(nrows: int, ncols: int, rows, cols, values=None,
             dup: Optional[Monoid] = None) -> Matrix:
    """Build a Matrix from COO triples.

    Parameters
    ----------
    rows, cols:
        Integer index arrays (any order, duplicates allowed).
    values:
        Aligned value array; defaults to all-ones (pattern matrix).
    dup:
        Monoid combining duplicate ``(i, j)`` entries (default: plus).
    """
    rows = np.asarray(rows, dtype=np.intp)
    cols = np.asarray(cols, dtype=np.intp)
    if rows.shape != cols.shape or rows.ndim != 1:
        raise ValueError("rows/cols must be aligned 1-D arrays")
    if values is None:
        values = np.ones(len(rows), dtype=np.float64)
    else:
        values = np.asarray(values)
        if values.shape != rows.shape:
            raise ValueError("values must align with rows/cols")
    if len(rows):
        if rows.min() < 0 or rows.max() >= nrows:
            raise ValueError(f"row index out of range for nrows={nrows}")
        if cols.min() < 0 or cols.max() >= ncols:
            raise ValueError(f"col index out of range for ncols={ncols}")
    return _coo_to_csr(nrows, ncols, rows, cols, values, dup or PLUS_MONOID)


def from_dense(dense, zero=0.0) -> Matrix:
    """Sparsify a dense 2-D array; entries equal to ``zero`` are dropped."""
    dense = np.asarray(dense)
    if dense.ndim != 2:
        raise ValueError(f"expected 2-D array, got ndim={dense.ndim}")
    if isinstance(zero, float) and np.isnan(zero):
        rows, cols = np.nonzero(~np.isnan(dense))
    else:
        rows, cols = np.nonzero(dense != zero)
    return from_coo(dense.shape[0], dense.shape[1], rows, cols,
                    dense[rows, cols])


def from_edges(n: int, edges, weights=None, undirected: bool = False,
               dup: Optional[Monoid] = None) -> Matrix:
    """Adjacency matrix from an edge list (paper §II-B1 schema).

    ``edges`` is an iterable/array of ``(u, v)`` pairs.  Parallel edges
    accumulate under ``dup`` (default plus — matching the paper's
    "A(i,j) = # edges from vi to vj").  With ``undirected=True``, each
    edge is mirrored; self loops are not double-counted.
    """
    edges = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                       dtype=np.intp)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must be an (m, 2) array of pairs")
    u, v = edges[:, 0], edges[:, 1]
    if weights is None:
        w = np.ones(len(u), dtype=np.float64)
    else:
        w = np.asarray(weights)
        if w.shape != u.shape:
            raise ValueError("weights must align with edges")
    if undirected:
        keep = u != v  # don't mirror self loops
        u = np.concatenate([u, v[keep]])
        v = np.concatenate([v, edges[:, 0][keep]])
        w = np.concatenate([w, w[keep]])
    return from_coo(n, n, u, v, w, dup=dup)


def identity(n: int, one=1.0) -> Matrix:
    """The n×n identity under a semiring whose multiplicative one is ``one``."""
    idx = np.arange(n, dtype=np.intp)
    indptr = np.arange(n + 1, dtype=np.intp)
    return Matrix(n, n, indptr, idx, np.full(n, one), _validate=False)


def diag_matrix(d) -> Matrix:
    """Square matrix with vector ``d`` on the diagonal (zeros dropped)."""
    d = np.asarray(d)
    if d.ndim != 1:
        raise ValueError("d must be 1-D")
    n = len(d)
    keep = np.flatnonzero(d != 0)
    indptr = np.zeros(n + 1, dtype=np.intp)
    np.cumsum(np.bincount(keep, minlength=n), out=indptr[1:])
    return Matrix(n, n, indptr, keep, d[keep], _validate=False)


def zeros(nrows: int, ncols: int, dtype=np.float64) -> Matrix:
    """Matrix with no stored entries."""
    return Matrix(nrows, ncols, np.zeros(nrows + 1, dtype=np.intp),
                  np.empty(0, dtype=np.intp), np.empty(0, dtype=dtype),
                  _validate=False)
