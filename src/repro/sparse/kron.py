"""Kronecker product of sparse matrices (powers the Graph500-style
Kronecker graph generator in :mod:`repro.generators.kronecker`)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.semiring import BinaryOp
from repro.semiring.builtin import PLUS_MONOID, TIMES
from repro.sparse.construct import _coo_to_csr
from repro.sparse.matrix import Matrix


def kron(a: Matrix, b: Matrix, op: Optional[BinaryOp] = None) -> Matrix:
    """``C = A ⊗_kron B`` with values combined by ``op`` (default times).

    ``C`` has shape ``(a.nrows * b.nrows, a.ncols * b.ncols)`` and one
    entry per pair of stored entries, at
    ``(ia * b.nrows + ib, ja * b.ncols + jb)``.
    """
    op = op or TIMES
    ar, ac, av = a.to_coo()
    br, bc, bv = b.to_coo()
    na, nb = a.nnz, b.nnz
    if na == 0 or nb == 0:
        from repro.sparse.construct import zeros

        return zeros(a.nrows * b.nrows, a.ncols * b.ncols)
    rows = (np.repeat(ar, nb) * b.nrows + np.tile(br, na)).astype(np.intp)
    cols = (np.repeat(ac, nb) * b.ncols + np.tile(bc, na)).astype(np.intp)
    vals = np.asarray(op(np.repeat(av, nb), np.tile(bv, na)))
    return _coo_to_csr(a.nrows * b.nrows, a.ncols * b.ncols, rows, cols, vals,
                       PLUS_MONOID)
