"""SpEWiseX / eWiseAdd: elementwise multiply (intersection) and add (union).

Both operate on the sorted COO key streams that CSR canonical form
already provides, so intersection/union reduce to one
``numpy.intersect1d`` / concatenate-and-sort over int64-encoded keys.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.semiring import BinaryOp
from repro.semiring.builtin import PLUS, TIMES
from repro.sparse.construct import _coo_to_csr
from repro.sparse.matrix import Matrix
from repro.semiring.builtin import PLUS_MONOID


def _keys(m: Matrix) -> np.ndarray:
    """Row-major int64 key per stored entry (sorted by CSR invariant)."""
    return m.row_ids().astype(np.int64) * m.ncols + m.indices


def ewise_mult(a: Matrix, b: Matrix, op: Optional[BinaryOp] = None) -> Matrix:
    """Intersection elementwise combine: ``C(i,j) = a(i,j) ⊗ b(i,j)``
    only where *both* store an entry (GraphBLAS SpEWiseX / Hadamard).

    The default ⊗ is arithmetic times.
    """
    op = op or TIMES
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    ka, kb = _keys(a), _keys(b)
    common, ia, ib = np.intersect1d(ka, kb, assume_unique=True,
                                    return_indices=True)
    if len(common) == 0:
        vals = np.empty(0, dtype=np.result_type(a.dtype, b.dtype))
    else:
        vals = np.asarray(op(a.values[ia], b.values[ib]))
    rows = (common // a.ncols).astype(np.intp)
    cols = (common % a.ncols).astype(np.intp)
    # keys were sorted and unique, so the COO stream is already canonical
    indptr = np.zeros(a.nrows + 1, dtype=np.intp)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return Matrix(a.nrows, a.ncols, indptr, cols, vals, _validate=False)


def ewise_add(a: Matrix, b: Matrix, op: Optional[BinaryOp] = None) -> Matrix:
    """Union elementwise combine: present-in-one entries pass through,
    present-in-both combine with ``op`` (default arithmetic plus).

    This is the associative-array "summation is union" operation from
    paper §II-A.
    """
    op = op or PLUS
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    ka, kb = _keys(a), _keys(b)
    common, ia, ib = np.intersect1d(ka, kb, assume_unique=True,
                                    return_indices=True)
    mask_a = np.ones(a.nnz, dtype=bool)
    mask_a[ia] = False
    mask_b = np.ones(b.nnz, dtype=bool)
    mask_b[ib] = False
    if len(common):
        both_vals = np.asarray(op(a.values[ia], b.values[ib]))
    else:
        both_vals = a.values[:0]
    keys = np.concatenate([common, ka[mask_a], kb[mask_b]])
    vals = np.concatenate([both_vals, a.values[mask_a], b.values[mask_b]])
    order = np.argsort(keys, kind="stable")
    keys, vals = keys[order], vals[order]
    rows = (keys // a.ncols).astype(np.intp)
    cols = (keys % a.ncols).astype(np.intp)
    # already unique + sorted; use shared builder for the indptr
    return _coo_to_csr(a.nrows, a.ncols, rows, cols, vals, PLUS_MONOID)
