"""Reduce kernel: fold rows, columns, or the whole matrix with a monoid.

Degree centrality (paper §III-A) is exactly ``reduce_rows(PLUS)`` /
``reduce_cols(PLUS)`` on the adjacency matrix.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.semiring import Monoid
from repro.semiring.builtin import PLUS_MONOID
from repro.sparse.matrix import Matrix
from repro.sparse.vector import Vector


def reduce_rows(a: Matrix, monoid: Optional[Monoid] = None,
                dense: bool = True) -> Union[np.ndarray, Vector]:
    """``y[i] = ⊕_j A(i, j)`` over stored entries.

    Dense output fills empty rows with the monoid identity; sparse
    output omits them.
    """
    monoid = monoid or PLUS_MONOID
    lens = a.row_lengths
    nonempty = np.flatnonzero(lens)
    if len(nonempty):
        vals = monoid.reduceat(a.values, a.indptr[nonempty])
    else:
        vals = a.values[:0]
    if dense:
        out = np.full(a.nrows, monoid.identity,
                      dtype=np.result_type(a.dtype if a.nnz else np.float64,
                                           type(monoid.identity)))
        out[nonempty] = vals
        return out
    return Vector(a.nrows, nonempty, vals, _validate=False)


def reduce_cols(a: Matrix, monoid: Optional[Monoid] = None,
                dense: bool = True) -> Union[np.ndarray, Vector]:
    """``y[j] = ⊕_i A(i, j)`` (scatter-reduce; no transpose built)."""
    monoid = monoid or PLUS_MONOID
    if monoid.ufunc is None:
        raise TypeError(f"monoid {monoid.name} has no ufunc for scatter")
    out = np.full(a.ncols, monoid.identity,
                  dtype=np.result_type(a.dtype if a.nnz else np.float64,
                                       type(monoid.identity)))
    if a.nnz:
        monoid.ufunc.at(out, a.indices, a.values)
    if dense:
        return out
    seen = np.zeros(a.ncols, dtype=bool)
    seen[a.indices] = True
    idx = np.flatnonzero(seen)
    return Vector(a.ncols, idx, out[idx], _validate=False)


def reduce_scalar(a: Matrix, monoid: Optional[Monoid] = None):
    """``⊕`` over every stored entry (identity when empty)."""
    monoid = monoid or PLUS_MONOID
    return monoid.reduce(a.values)
