"""Symmetry-exploiting multiply — the paper's §IV wish-list item.

    "Since it is fairly common to work with undirected graphs, providing
    a version of matrix multiplication that exploits the symmetry, only
    stores the upper-triangular part, and only computes the
    upper-triangular part of pairwise statistics, would be a welcome
    contribution to this effort."

:func:`mxm_triu` is that contribution: an SpGEMM that discards
lower-triangle products *before* the sort/compress step, so the
dominant cost (lexsort + reduce of the expanded product stream) is paid
only for the upper-triangular half.  For a symmetric statistic
``S = f(A·Aᵀ)`` this halves the compress work and the output memory;
callers reconstruct the full matrix with ``C + Cᵀ`` when needed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.semiring import Semiring
from repro.semiring.builtin import PLUS_TIMES
from repro.sparse.construct import _coo_to_csr
from repro.sparse.matrix import Matrix
from repro.sparse.spgemm import expand_products


def mxm_triu(a: Matrix, b: Matrix, semiring: Optional[Semiring] = None,
             k: int = 0) -> Matrix:
    """``C = triu(A ⊕.⊗ B, k)`` computed without forming the lower part.

    Products landing strictly below diagonal ``k`` are dropped during
    expansion, before any sorting or ⊕-reduction happens — unlike
    ``triu(mxm(A, B))``, which pays full compress cost first.
    """
    semiring = semiring or PLUS_TIMES
    if a.ncols != b.nrows:
        raise ValueError(f"dimension mismatch: A is {a.shape}, B is {b.shape}")
    rows, cols, av, bv = expand_products(a, b)
    keep = cols - rows >= k
    rows, cols = rows[keep], cols[keep]
    if rows.size == 0:
        return _coo_to_csr(a.nrows, b.ncols, rows, cols,
                           np.empty(0, dtype=np.result_type(a.dtype, b.dtype)),
                           semiring.add)
    products = np.asarray(semiring.mul(av[keep], bv[keep]))
    return _coo_to_csr(a.nrows, b.ncols, rows, cols, products, semiring.add)


def symmetric_square_upper(a: Matrix, semiring: Optional[Semiring] = None,
                           k: int = 1) -> Matrix:
    """Upper part of ``A²`` for symmetric A via the Algorithm 2 split:

        ``triu(A², k≥1) = U² + triu(U·Uᵀ, k) + triu(Uᵀ·U, k)``

    with ``U = triu(A, 1)`` — three half-sized triangular multiplies
    instead of one full square.  Returns the strictly-upper (``k=1``)
    or upper-including-diagonal (``k=0``) part.
    """
    from repro.sparse.select import triu

    if not a.equal(a.T):
        raise ValueError("symmetric_square_upper requires a symmetric matrix")
    u = triu(a, 1)
    ut = u.T
    first = mxm_triu(u, u, semiring=semiring, k=k)
    second = mxm_triu(u, ut, semiring=semiring, k=k)
    third = mxm_triu(ut, u, semiring=semiring, k=k)
    return first.ewise_add(second, op=semiring.add if semiring else None) \
        .ewise_add(third, op=semiring.add if semiring else None)
