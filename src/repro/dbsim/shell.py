"""An Accumulo-shell-style command processor for the simulated database.

Mirrors the subset of the real ``accumulo shell`` used in graph
workflows: table lifecycle, inserts/deletes (with visibility labels),
ranged scans (with authorizations), flush/compact, and size estimates.
Commands are processed one line at a time — scriptable in tests and
usable interactively via :func:`repl`.

>>> sh = Shell(Connector(Instance()))
>>> sh.execute("createtable t")
'created table t'
>>> sh.execute("insert r f q 5")
'inserted 1 cell into t'
>>> sh.execute("scan")
'r f:q []\\t5'
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List, Optional

from repro.dbsim.client import Connector
from repro.dbsim.key import Range
from repro.dbsim.visibility import Authorizations


class ShellError(ValueError):
    """Raised for malformed or out-of-context shell commands."""


class Shell:
    """Stateful command processor bound to one Connector."""

    def __init__(self, conn: Connector):
        self.conn = conn
        self.current: Optional[str] = None
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "createtable": self._createtable,
            "deletetable": self._deletetable,
            "tables": self._tables,
            "table": self._table,
            "insert": self._insert,
            "delete": self._delete,
            "scan": self._scan,
            "flush": self._flush,
            "compact": self._compact,
            "addsplits": self._addsplits,
            "du": self._du,
            "help": self._help,
        }

    # -- dispatch ---------------------------------------------------------

    def execute(self, line: str) -> str:
        """Run one command line; returns its printable output."""
        parts = shlex.split(line)
        if not parts:
            return ""
        cmd, args = parts[0], parts[1:]
        handler = self._commands.get(cmd)
        if handler is None:
            raise ShellError(f"unknown command {cmd!r}; try 'help'")
        return handler(args)

    def _need_table(self) -> str:
        if self.current is None:
            raise ShellError("no table selected; use 'table <name>' or "
                             "'createtable <name>'")
        return self.current

    @staticmethod
    def _flag(args: List[str], name: str) -> Optional[str]:
        """Pop ``name value`` from args; returns value or None."""
        if name in args:
            i = args.index(name)
            if i + 1 >= len(args):
                raise ShellError(f"flag {name} needs a value")
            value = args[i + 1]
            del args[i:i + 2]
            return value
        return None

    # -- table lifecycle -----------------------------------------------------

    def _createtable(self, args: List[str]) -> str:
        if len(args) != 1:
            raise ShellError("usage: createtable <name>")
        self.conn.create_table(args[0])
        self.current = args[0]
        return f"created table {args[0]}"

    def _deletetable(self, args: List[str]) -> str:
        if len(args) != 1:
            raise ShellError("usage: deletetable <name>")
        self.conn.delete_table(args[0])
        if self.current == args[0]:
            self.current = None
        return f"deleted table {args[0]}"

    def _tables(self, args: List[str]) -> str:
        return "\n".join(self.conn.instance.list_tables())

    def _table(self, args: List[str]) -> str:
        if len(args) != 1:
            raise ShellError("usage: table <name>")
        if not self.conn.table_exists(args[0]):
            raise ShellError(f"no such table {args[0]!r}")
        self.current = args[0]
        return f"using table {args[0]}"

    # -- data path ----------------------------------------------------------------

    def _insert(self, args: List[str]) -> str:
        vis = self._flag(args, "-l") or ""
        if len(args) != 4:
            raise ShellError("usage: insert <row> <family> <qualifier> "
                             "<value> [-l visibility]")
        table = self._need_table()
        row, fam, qual, value = args
        with self.conn.batch_writer(table) as w:
            w.put(row, fam, qual, value, visibility=vis)
        return f"inserted 1 cell into {table}"

    def _delete(self, args: List[str]) -> str:
        vis = self._flag(args, "-l") or ""
        if len(args) != 3:
            raise ShellError("usage: delete <row> <family> <qualifier> "
                             "[-l visibility]")
        table = self._need_table()
        with self.conn.batch_writer(table) as w:
            w.delete(args[0], args[1], args[2], visibility=vis)
        return f"deleted 1 cell from {table}"

    def _scan(self, args: List[str]) -> str:
        begin = self._flag(args, "-b")
        end = self._flag(args, "-e")
        auths = self._flag(args, "-s")
        if args:
            raise ShellError("usage: scan [-b begin] [-e end] [-s a,b,...]")
        table = self._need_table()
        authorizations = Authorizations(auths.split(",")) if auths else None
        scanner = self.conn.scanner(table, authorizations=authorizations)
        scanner.set_range(Range(begin, end))
        lines = []
        for cell in scanner:
            k = cell.key
            lines.append(f"{k.row} {k.family}:{k.qualifier} "
                         f"[{k.visibility}]\t{cell.value}")
        return "\n".join(lines)

    # -- maintenance -------------------------------------------------------------------

    def _flush(self, args: List[str]) -> str:
        table = args[0] if args else self._need_table()
        self.conn.flush(table)
        return f"flushed {table}"

    def _compact(self, args: List[str]) -> str:
        table = args[0] if args else self._need_table()
        self.conn.compact(table)
        return f"compacted {table}"

    def _addsplits(self, args: List[str]) -> str:
        if not args:
            raise ShellError("usage: addsplits <row> [<row> ...]")
        table = self._need_table()
        for row in args:
            self.conn.add_split(table, row)
        return f"added {len(args)} split(s) to {table}"

    def _du(self, args: List[str]) -> str:
        table = args[0] if args else self._need_table()
        est = self.conn.instance.table_entry_estimate(table)
        tablets = len(self.conn.instance.tablets(table))
        return f"{table}: ~{est} stored entries across {tablets} tablet(s)"

    def _help(self, args: List[str]) -> str:
        return "commands: " + ", ".join(sorted(self._commands))


def repl(conn: Connector) -> None:  # pragma: no cover - interactive
    """Minimal interactive loop (``python -c "...; repl(conn)"``)."""
    sh = Shell(conn)
    while True:
        try:
            line = input(f"{sh.current or '(no table)'}> ")
        except EOFError:
            break
        if line.strip() in ("exit", "quit"):
            break
        try:
            out = sh.execute(line)
            if out:
                print(out)
        except (ShellError, KeyError, ValueError) as exc:
            print(f"error: {exc}")
