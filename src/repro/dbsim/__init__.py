"""Simulated Accumulo: a single-process NoSQL tablet-server substrate.

The paper's thesis is that GraphBLAS kernels can execute *inside* a
NoSQL database because its sorted key-value storage is isomorphic to
sparse-triple storage.  Real Apache Accumulo is a distributed Java
system; this package simulates the parts the thesis depends on, with
the same architecture:

* :mod:`repro.dbsim.key` — ``Key(row, family, qualifier, visibility,
  timestamp) → Value`` cells with Accumulo's sort order (timestamps
  descend);
* :mod:`repro.dbsim.memtable` / :mod:`repro.dbsim.sstable` — an
  in-memory write buffer flushed into immutable sorted runs;
* :mod:`repro.dbsim.iterators` — the server-side
  ``SortedKVIterator`` framework (seek/next/top contract): merging,
  versioning, filtering, combining, transforming — the exact extension
  point Graphulo uses;
* :mod:`repro.dbsim.tablet` / :mod:`repro.dbsim.server` — tablets with
  split points hosted across simulated tablet servers, plus an
  ``Instance`` with table configuration (combiners, splits);
* :mod:`repro.dbsim.client` — Connector / Scanner / BatchScanner /
  BatchWriter;
* :mod:`repro.dbsim.graphulo` — the Graphulo server-side operations:
  TableMult (SpGEMM through iterators), degree tables, apply/filter,
  and table-level BFS;
* :mod:`repro.dbsim.d4m_bridge` — AssocArray ↔ table binding;
* :mod:`repro.dbsim.stats` — the cost model (seeks, entries
  read/written) reported by the benchmark harness in lieu of
  cluster wall-clock numbers.
"""

from repro.dbsim.backend import ConnectorBackend, TabletBackend
from repro.dbsim.errors import (
    NotHostedError,
    ServerCrashedError,
    TabletServerError,
)
from repro.dbsim.key import Cell, Key, Range, decode_number, encode_number
from repro.dbsim.iterators import (
    AgeOffIterator,
    ApplyIterator,
    ColumnFilterIterator,
    DeleteFilterIterator,
    RegexFilterIterator,
    VisibilityFilterIterator,
    ListIterator,
    MergeIterator,
    PredicateFilterIterator,
    SortedKVIterator,
    SummingCombiner,
    MinCombiner,
    MaxCombiner,
    VersioningIterator,
    drain,
)
from repro.dbsim.sstable import RowBloomFilter, SSTable, SSTableIterator
from repro.dbsim.tablet import Tablet
from repro.dbsim.server import Instance, TabletServer, TableConfig
from repro.dbsim.client import BatchScanner, BatchWriter, Connector, Scanner
from repro.dbsim.graphulo import (
    apply_to_table,
    degree_table,
    filter_table,
    table_bfs,
    table_mult,
)
from repro.dbsim.graphulo_algorithms import (
    table_intersect,
    table_jaccard,
    table_ktruss,
    table_pagerank,
)
from repro.dbsim.d4m_bridge import assoc_to_table, table_to_assoc
from repro.dbsim.stats import OpStats
from repro.dbsim.visibility import (
    PUBLIC,
    Authorizations,
    VisibilityError,
    check_expression,
    parse_visibility,
)

__all__ = [
    "ConnectorBackend",
    "TabletBackend",
    "TabletServerError",
    "ServerCrashedError",
    "NotHostedError",
    "Cell",
    "Key",
    "Range",
    "decode_number",
    "encode_number",
    "AgeOffIterator",
    "ApplyIterator",
    "ColumnFilterIterator",
    "DeleteFilterIterator",
    "RegexFilterIterator",
    "VisibilityFilterIterator",
    "ListIterator",
    "MergeIterator",
    "PredicateFilterIterator",
    "SortedKVIterator",
    "SummingCombiner",
    "MinCombiner",
    "MaxCombiner",
    "VersioningIterator",
    "drain",
    "RowBloomFilter",
    "SSTable",
    "SSTableIterator",
    "Tablet",
    "Instance",
    "TabletServer",
    "TableConfig",
    "BatchScanner",
    "BatchWriter",
    "Connector",
    "Scanner",
    "apply_to_table",
    "degree_table",
    "filter_table",
    "table_bfs",
    "table_intersect",
    "table_jaccard",
    "table_ktruss",
    "table_mult",
    "table_pagerank",
    "assoc_to_table",
    "table_to_assoc",
    "OpStats",
    "PUBLIC",
    "Authorizations",
    "VisibilityError",
    "check_expression",
    "parse_visibility",
]
