"""Tablet servers and the Instance (the simulation's master + ZooKeeper).

An :class:`Instance` owns table configurations (iterator stacks, split
points, versioning policy) and assigns tablets round-robin across a
fleet of :class:`TabletServer`\\ s.  Splitting a table redistributes the
new tablets, so scans and Graphulo ops exercise the same
locate-tablet → per-server scan flow a real client library performs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dbsim.key import Range
from repro.dbsim.stats import OpStats
from repro.dbsim.tablet import IteratorFactory, Tablet
from repro.obs.metrics import MetricsRegistry, global_registry


@dataclass
class TableConfig:
    """Per-table configuration: versioning, iterator stack, flush policy."""

    max_versions: int = 1
    table_iterators: Tuple[IteratorFactory, ...] = ()
    flush_bytes: int = 1 << 20


class TabletServer:
    """Hosts tablets; all per-tablet I/O lands in this server's stats."""

    def __init__(self, name: str):
        self.name = name
        self.stats = OpStats()
        #: True between :meth:`crash` and :meth:`recover`.  While set,
        #: every data op on a hosted tablet (write, scan, flush,
        #: compact) raises :class:`ServerCrashedError` — the typed
        #: signal a remote client's retry loop keys off.
        self.crashed = False
        #: (table, tablet) pairs hosted here
        self.tablets: List[Tuple[str, Tablet]] = []

    def host(self, table: str, tablet: Tablet) -> None:
        tablet.stats = self.stats
        tablet.server = self
        self.tablets.append((table, tablet))

    def unhost(self, table: str, tablet: Tablet) -> None:
        self.tablets.remove((table, tablet))
        tablet.server = None

    def crash(self) -> None:
        """Simulated process failure: every hosted tablet loses its
        memtable; sorted runs and WALs are durable.  The server stays
        down (data ops raise :class:`ServerCrashedError`, including
        scans already open) until :meth:`recover`."""
        self.crashed = True
        for _, tablet in self.tablets:
            tablet.crash()

    def recover(self, replay_wal: bool = True) -> None:
        """Bring the server back up, replaying each hosted tablet's WAL
        (Accumulo's log recovery).  ``replay_wal=False`` restarts
        without recovery — modelling a server whose write-ahead logs
        are not (yet) replayed; the WALs themselves stay durable, so a
        later ``recover()`` can still replay them."""
        if replay_wal:
            for _, tablet in self.tablets:
                tablet.recover()
        self.crashed = False

    def __repr__(self) -> str:
        return f"TabletServer({self.name}, tablets={len(self.tablets)})"


class Instance:
    """The database: tables, their tablets, and the server fleet."""

    def __init__(self, n_servers: int = 3,
                 metrics: Optional[MetricsRegistry] = None):
        if n_servers < 1:
            raise ValueError(f"need at least one tablet server, got {n_servers}")
        self.servers = [TabletServer(f"tserver{i}") for i in range(n_servers)]
        #: per-table work breakdown (``dbsim.table.<name>.*``); defaults
        #: to the process-global registry so ad-hoc instances aggregate
        self.metrics = metrics if metrics is not None else global_registry()
        self._tables: Dict[str, TableConfig] = {}
        #: per table: tablets sorted by extent start (None first)
        self._tablets: Dict[str, List[Tablet]] = {}
        #: per table: cached extent-start keys ("" for the unbounded
        #: first tablet), parallel to ``_tablets[name]`` — the bisect
        #: index ``locate`` uses; invalidated on split/create/delete
        self._locate_index: Dict[str, List[str]] = {}
        self._rr = 0  # round-robin assignment cursor

    # -- table lifecycle -----------------------------------------------------

    def table_exists(self, name: str) -> bool:
        return name in self._tables

    def list_tables(self) -> List[str]:
        return sorted(self._tables)

    def create_table(self, name: str, config: Optional[TableConfig] = None,
                     splits: Sequence[str] = ()) -> None:
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        config = config or TableConfig()
        self._tables[name] = config
        tablet = Tablet(Range(), config.max_versions, config.flush_bytes)
        self._tablets[name] = [tablet]
        self._locate_index.pop(name, None)
        self._assign(name, tablet)
        for split in splits:
            self.add_split(name, split)

    def delete_table(self, name: str) -> None:
        self._require(name)
        for tablet in self._tablets[name]:
            tablet.unbind_metrics()
            for server in self.servers:
                if (name, tablet) in server.tablets:
                    server.unhost(name, tablet)
                    self.metrics.gauge(
                        f"dbsim.server.{server.name}.tablets").set(
                            len(server.tablets))
        del self._tablets[name]
        del self._tables[name]
        self._locate_index.pop(name, None)

    def config(self, name: str) -> TableConfig:
        self._require(name)
        return self._tables[name]

    def _require(self, name: str) -> None:
        if name not in self._tables:
            raise KeyError(f"no such table: {name!r}")

    def _assign(self, table: str, tablet: Tablet) -> None:
        server = self.servers[self._rr % len(self.servers)]
        self._rr += 1
        server.host(table, tablet)
        tablet.bind_metrics(self.metrics, table)
        self.metrics.gauge(f"dbsim.server.{server.name}.tablets").set(
            len(server.tablets))

    # -- tablet management ------------------------------------------------------

    def tablets(self, name: str) -> List[Tablet]:
        self._require(name)
        return list(self._tablets[name])

    def add_split(self, name: str, split_row: str) -> None:
        """Split the tablet containing ``split_row`` (no-op if it is
        already a split point)."""
        self._require(name)
        tablet = self.locate(name, split_row)
        if tablet.extent.start_row == split_row:
            return
        left, right = tablet.split(split_row)
        tablet.unbind_metrics()
        tablets = self._tablets[name]
        idx = tablets.index(tablet)
        tablets[idx:idx + 1] = [left, right]
        self._locate_index.pop(name, None)  # split moved the boundaries
        for server in self.servers:
            if (name, tablet) in server.tablets:
                server.unhost(name, tablet)
        self._assign(name, left)
        self._assign(name, right)

    def splits(self, name: str) -> List[str]:
        self._require(name)
        return [t.extent.start_row for t in self._tablets[name]
                if t.extent.start_row is not None]

    def _starts(self, name: str) -> List[str]:
        """The cached bisect index: one sorted start key per tablet
        (rebuilt lazily after a split invalidates it)."""
        starts = self._locate_index.get(name)
        if starts is None:
            starts = [t.extent.start_row or "" for t in self._tablets[name]]
            self._locate_index[name] = starts
            self.metrics.counter("dbsim.locate.index_builds").inc()
        return starts

    def locate_index(self, name: str) -> Tuple[List[str], List[Tablet]]:
        """The table's location index: parallel (start keys, tablets)
        lists for client-side bisect routing (what a real client's
        tablet-location cache holds).  The start-key list is replaced —
        never mutated — when a split invalidates it, so callers may use
        its identity as a staleness token."""
        self._require(name)
        return self._starts(name), self._tablets[name]

    def locate(self, name: str, row: str) -> Tablet:
        """Find the tablet whose extent contains ``row`` — a bisect
        over the table's sorted split points, not a tablet walk."""
        self._require(name)
        self.metrics.counter("dbsim.locate.requests").inc()
        starts = self._starts(name)
        idx = bisect.bisect_right(starts, row) - 1
        tablet = self._tablets[name][max(idx, 0)]
        if not tablet.extent.contains_row(row):  # pragma: no cover
            raise AssertionError(f"no tablet covers row {row!r}")
        return tablet

    def tablets_for_range(self, name: str, rng: Range) -> List[Tablet]:
        self._require(name)
        tablets = self._tablets[name]
        starts = self._starts(name)
        # first candidate: the tablet containing rng's start row
        lo = 0 if rng.start_row is None else \
            max(bisect.bisect_right(starts, rng.start_row) - 1, 0)
        out: List[Tablet] = []
        for tablet in tablets[lo:]:
            if (rng.stop_row is not None
                    and tablet.extent.start_row is not None
                    and tablet.extent.start_row >= rng.stop_row):
                break  # tablets are in extent order; the rest are past rng
            if tablet.extent.clip(rng) is not None:
                out.append(tablet)
        return out

    # -- maintenance ----------------------------------------------------------------

    def flush_table(self, name: str) -> None:
        for tablet in self.tablets(name):
            tablet.flush()

    def compact_table(self, name: str) -> None:
        config = self.config(name)
        for tablet in self.tablets(name):
            tablet.compact(config.table_iterators)

    # -- observability ------------------------------------------------------------------

    def total_stats(self) -> OpStats:
        out = OpStats()
        for server in self.servers:
            out = out.merge(server.stats)
        return out

    def observability_export(self) -> Dict[str, object]:
        """One JSON-ready report: the per-table/per-server metrics
        registry plus the merged OpStats cost model."""
        return {
            "metrics": self.metrics.export(),
            "servers": {s.name: s.stats.as_dict() for s in self.servers},
            "total": self.total_stats().as_dict(),
        }

    def write_metrics_snapshot(self, path: str) -> Dict[str, object]:
        """Atomically write a timestamped snapshot of this instance's
        metrics (plus the per-server/total OpStats) to ``path`` — the
        file a concurrent ``repro monitor`` polls for live counter
        deltas while a workload runs.  Returns the record written."""
        from repro.obs.expose import write_snapshot

        return write_snapshot(
            self.metrics, path,
            extra={"servers": {s.name: s.stats.as_dict()
                               for s in self.servers},
                   "total": self.total_stats().as_dict()})

    def table_entry_estimate(self, name: str) -> int:
        return sum(t.entry_estimate() for t in self.tablets(name))
